// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per artifact), plus microbenchmarks of the
// substrates. Run with:
//
//	go test -bench=. -benchmem
//
// Figure-level benchmarks execute the same experiment drivers as
// cmd/contigsim at a reduced scale so a full -bench=. pass stays
// tractable; the reported custom metrics carry the headline values so
// regressions in *results*, not just runtime, are visible.
package contiguitas

import (
	"context"
	"io"
	"sync"
	"testing"
	"time"

	"contiguitas/internal/core"
	"contiguitas/internal/fleet"
	"contiguitas/internal/hw"
	"contiguitas/internal/hw/contighw"
	"contiguitas/internal/hw/cpu"
	"contiguitas/internal/hw/platform"
	"contiguitas/internal/hw/tlb"
	"contiguitas/internal/kernel"
	"contiguitas/internal/mem"
	"contiguitas/internal/obsv"
	"contiguitas/internal/resultcache"
	"contiguitas/internal/slab"
	"contiguitas/internal/telemetry"
	"contiguitas/internal/workload"
)

// benchExp is the benchmark experiment scale.
func benchExp() core.ExpConfig {
	return core.ExpConfig{
		MemBytes:    1 << 30,
		WarmupTicks: 150,
		Seed:        9,
		Max1GPages:  0,
	}
}

func BenchmarkFig2TLBTrends(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := core.Fig2()
		if len(rows) != 5 {
			b.Fatal("bad rows")
		}
	}
}

func BenchmarkFig3PageWalkCycles(b *testing.B) {
	var last []core.Fig3Row
	for i := 0; i < b.N; i++ {
		last = core.Fig3()
	}
	b.ReportMetric(last[0].DataPct, "web4K-data-%")
}

func BenchmarkFig4ContiguityCDF(b *testing.B) {
	cfg := fleet.DefaultConfig()
	cfg.Servers = 8
	cfg.MemBytes = 256 << 20
	cfg.TicksMin, cfg.TicksMax = 40, 120
	var zero float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		s := fleet.Run(cfg)
		zero = s.NoContigFraction(mem.Order2M)
	}
	b.ReportMetric(zero*100, "zero-2M-%servers")
}

// benchCampaignCfg is the fixed-seed fleet configuration the result
// cache benchmarks share: cold pays the full simulation per run, warm
// serves every shard from the cache, and the pair's ratio is the
// whole-shard-skip speedup BENCH_PR7.json records.
func benchCampaignCfg() fleet.Config {
	cfg := fleet.DefaultConfig()
	cfg.Servers = 8
	cfg.MemBytes = 256 << 20
	cfg.TicksMin, cfg.TicksMax = 40, 120
	cfg.Seed = 7
	cfg.Shards = 4
	return cfg
}

func BenchmarkFleetCampaignCold(b *testing.B) {
	cfg := benchCampaignCfg()
	for i := 0; i < b.N; i++ {
		cache := resultcache.NewLRU(16, fleet.CacheSchemaVersion)
		res, err := fleet.RunSupervised(context.Background(), fleet.SupervisedConfig{Fleet: cfg, Cache: cache})
		if err != nil || !res.Report.Complete {
			b.Fatalf("campaign: %v %v", err, res.Report)
		}
		if res.CacheHits != 0 {
			b.Fatal("cold run hit the cache")
		}
	}
}

func BenchmarkFleetCampaignWarm(b *testing.B) {
	cfg := benchCampaignCfg()
	cache := resultcache.NewLRU(16, fleet.CacheSchemaVersion)
	if _, err := fleet.RunSupervised(context.Background(), fleet.SupervisedConfig{Fleet: cfg, Cache: cache}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := fleet.RunSupervised(context.Background(), fleet.SupervisedConfig{Fleet: cfg, Cache: cache})
		if err != nil || !res.Report.Complete {
			b.Fatalf("campaign: %v %v", err, res.Report)
		}
		if res.CacheHits != uint64(cfg.Shards) {
			b.Fatalf("warm run hit %d/%d shards", res.CacheHits, cfg.Shards)
		}
	}
}

func BenchmarkFig5UnmovableCDF(b *testing.B) {
	cfg := fleet.DefaultConfig()
	cfg.Servers = 8
	cfg.MemBytes = 256 << 20
	cfg.TicksMin, cfg.TicksMax = 40, 120
	var med float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		s := fleet.Run(cfg)
		med = s.MedianUnmovBlockFrac(mem.Order2M)
	}
	b.ReportMetric(med*100, "median-unmov-2M-%")
}

func BenchmarkFig6Sources(b *testing.B) {
	cfg := fleet.DefaultConfig()
	cfg.Servers = 6
	cfg.MemBytes = 256 << 20
	cfg.TicksMin, cfg.TicksMax = 40, 100
	var net float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		s := fleet.Run(cfg)
		net = s.SourceBreakdown()[mem.SrcNetworking]
	}
	b.ReportMetric(net*100, "networking-%")
}

func BenchmarkUptimeCorrelation(b *testing.B) {
	cfg := fleet.DefaultConfig()
	cfg.Servers = 10
	cfg.MemBytes = 256 << 20
	cfg.TicksMin, cfg.TicksMax = 40, 200
	var r float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		s := fleet.Run(cfg)
		r = s.UptimeCorrelation()
	}
	b.ReportMetric(r, "pearson-r")
}

func BenchmarkFig10EndToEnd(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		cfg := benchExp()
		cfg.Seed = uint64(i + 1) // defeat the scenario cache
		rows := core.Fig10(cfg)
		gain = rows[0].GainOverFull
	}
	b.ReportMetric((gain-1)*100, "web-gain-vs-full-%")
}

func BenchmarkFig11Unmovable(b *testing.B) {
	var lin, con float64
	for i := 0; i < b.N; i++ {
		cfg := benchExp()
		cfg.Seed = uint64(100 + i)
		rows := core.Fig11(cfg)
		lin, con = 0, 0
		for _, r := range rows {
			lin += r.LinuxPct / float64(len(rows))
			con += r.ContiguitasPct / float64(len(rows))
		}
	}
	b.ReportMetric(lin, "linux-avg-%")
	b.ReportMetric(con, "contiguitas-avg-%")
}

func BenchmarkFig12Potential(b *testing.B) {
	var con float64
	for i := 0; i < b.N; i++ {
		cfg := benchExp()
		cfg.Seed = uint64(200 + i)
		rows := core.Fig12(cfg)
		for _, r := range rows {
			if r.Order == mem.Order2M && r.Service == "Web" {
				con = r.Contig
			}
		}
	}
	b.ReportMetric(con, "web-2M-potential-%")
}

func BenchmarkInternalFragmentation(b *testing.B) {
	var free float64
	for i := 0; i < b.N; i++ {
		cfg := benchExp()
		cfg.Seed = uint64(300 + i)
		rows := core.Fig11(cfg)
		free = rows[0].InternalFragFree
	}
	b.ReportMetric(free*100, "free-inside-unmov-%")
}

func BenchmarkFig13Unavailable(b *testing.B) {
	var pts []platform.Fig13Point
	for i := 0; i < b.N; i++ {
		pts = platform.Fig13Series(8)
	}
	b.ReportMetric(float64(pts[7].LinuxSim), "linux-8core-cycles")
	b.ReportMetric(float64(pts[7].Contiguitas), "contiguitas-cycles")
}

func BenchmarkSec53MigrationImpact(b *testing.B) {
	var loss float64
	for i := 0; i < b.N; i++ {
		rows := core.Sec53(600_000)
		for _, r := range rows {
			if r.App == "memcached" && r.Mode == contighw.Noncacheable && r.Rate == 1000 {
				loss = r.LossPct
			}
		}
	}
	b.ReportMetric(loss, "veryhigh-loss-%")
}

func BenchmarkTableSizing(b *testing.B) {
	var area float64
	for i := 0; i < b.N; i++ {
		s := core.Sizing()
		area = s.Area.AreaMM2()
	}
	b.ReportMetric(area*1000, "area-um2x1000")
}

// --- substrate microbenchmarks ---

func BenchmarkBuddyAllocFree4K(b *testing.B) {
	pm := mem.NewPhysMem(256 << 20)
	bd := mem.NewBuddy(pm, 0, pm.NPages, mem.PolicyLIFO, true, mem.MigrateMovable)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pfn, ok := bd.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcUser)
		if !ok {
			b.Fatal("oom")
		}
		bd.Free(pfn)
	}
}

func BenchmarkBuddyAllocFree2M(b *testing.B) {
	pm := mem.NewPhysMem(256 << 20)
	bd := mem.NewBuddy(pm, 0, pm.NPages, mem.PolicyLIFO, true, mem.MigrateMovable)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pfn, ok := bd.Alloc(mem.Order2M, mem.MigrateMovable, mem.SrcUser)
		if !ok {
			b.Fatal("oom")
		}
		bd.Free(pfn)
	}
}

func BenchmarkKernelPinMigration(b *testing.B) {
	cfg := kernel.DefaultConfig(kernel.ModeContiguitas)
	cfg.MemBytes = 256 << 20
	cfg.InitialUnmovableBytes = 32 << 20
	cfg.MinUnmovableBytes = 16 << 20
	cfg.MaxUnmovableBytes = 128 << 20
	k := kernel.New(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := k.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcNetworking)
		if err != nil {
			b.Fatal(err)
		}
		if err := k.Pin(p); err != nil {
			b.Fatal(err)
		}
		k.Unpin(p)
		k.Free(p)
	}
}

func BenchmarkWorkloadTick(b *testing.B) {
	cfg := kernel.DefaultConfig(kernel.ModeContiguitas)
	cfg.MemBytes = 512 << 20
	cfg.InitialUnmovableBytes = 32 << 20
	cfg.MinUnmovableBytes = 16 << 20
	cfg.MaxUnmovableBytes = 256 << 20
	k := kernel.New(cfg)
	r := workload.NewRunner(k, workload.Web(), 1)
	r.Run(20) // warmup
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step()
	}
}

// BenchmarkTickTelemetryOff is the disabled-tracer overhead witness: the
// exact BenchmarkWorkloadTick setup with no tracer or sampler attached.
// Every tracepoint reduces to one nil-receiver branch, so this must stay
// within noise (<2%) of BenchmarkWorkloadTick's pre-telemetry medians
// (BENCH_PR2.json; the comparison is recorded in BENCH_PR3.json).
func BenchmarkTickTelemetryOff(b *testing.B) {
	cfg := kernel.DefaultConfig(kernel.ModeContiguitas)
	cfg.MemBytes = 512 << 20
	cfg.InitialUnmovableBytes = 32 << 20
	cfg.MinUnmovableBytes = 16 << 20
	cfg.MaxUnmovableBytes = 256 << 20
	k := kernel.New(cfg)
	r := workload.NewRunner(k, workload.Web(), 1)
	r.Run(20) // warmup
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step()
	}
}

// BenchmarkTickTelemetryOn measures the enabled cost: tracepoint ring,
// bound-counter registry, and per-tick sampling all active.
func BenchmarkTickTelemetryOn(b *testing.B) {
	cfg := kernel.DefaultConfig(kernel.ModeContiguitas)
	cfg.MemBytes = 512 << 20
	cfg.InitialUnmovableBytes = 32 << 20
	cfg.MinUnmovableBytes = 16 << 20
	cfg.MaxUnmovableBytes = 256 << 20
	k := kernel.New(cfg)
	k.SetTracer(telemetry.NewRing(1 << 14))
	k.AttachSampler(1 << 12)
	r := workload.NewRunner(k, workload.Web(), 1)
	r.Run(20) // warmup
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step()
	}
}

func BenchmarkFullScan(b *testing.B) {
	pm := mem.NewPhysMem(1 << 30)
	bd := mem.NewBuddy(pm, 0, pm.NPages, mem.PolicyLIFO, true, mem.MigrateMovable)
	for i := 0; i < 10000; i++ {
		bd.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcUser)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pm.Scan(mem.ScanOrders)
	}
}

// BenchmarkFullScanCold measures a from-scratch index rebuild: every
// pageblock is marked dirty before each scan, exercising the sharded
// parallel recompute instead of the O(dirty) warm path BenchmarkFullScan
// hits on an unchanged machine.
func BenchmarkFullScanCold(b *testing.B) {
	pm := mem.NewPhysMem(1 << 30)
	bd := mem.NewBuddy(pm, 0, pm.NPages, mem.PolicyLIFO, true, mem.MigrateMovable)
	for i := 0; i < 10000; i++ {
		bd.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcUser)
	}
	pm.Scan(mem.ScanOrders) // build the index once
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pm.DirtyAll()
		pm.Scan(mem.ScanOrders)
	}
}

// BenchmarkAllocHead measures the covering-head lookup that compaction,
// defrag, and region resizing lean on — O(1) via per-frame stamped
// covering orders, where it used to walk candidate orders per query.
func BenchmarkAllocHead(b *testing.B) {
	pm := mem.NewPhysMem(256 << 20)
	bd := mem.NewBuddy(pm, 0, pm.NPages, mem.PolicyLIFO, true, mem.MigrateMovable)
	var pfns []uint64
	for o := 0; o <= mem.PageblockOrder; o++ {
		for i := 0; i < 64; i++ {
			if pfn, ok := bd.Alloc(o, mem.MigrateMovable, mem.SrcUser); ok {
				// Query the last frame of the block: the worst case for
				// the old walk, identical cost for the stamped lookup.
				pfns = append(pfns, pfn+mem.OrderPages(o)-1)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := pm.AllocHead(pfns[i%len(pfns)]); !ok {
			b.Fatal("no covering head")
		}
	}
}

func BenchmarkHWMigration4K(b *testing.B) {
	md := contighw.Noncacheable
	for i := 0; i < b.N; i++ {
		m := platform.NewMachine(hw.DefaultParams(), &md)
		m.MapPage(10, 100)
		if _, err := m.HWMigrate(10, 100, 200, platform.HWMigrateOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSoftwareMigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := platform.NewMachine(hw.DefaultParams(), nil)
		m.MapPage(10, 100)
		m.SoftwareMigrate(0, 10, 100, 200, []int{1, 2, 3, 4, 5, 6, 7})
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	md := contighw.Noncacheable
	m := platform.NewMachine(hw.DefaultParams(), &md)
	b.ResetTimer()
	var now uint64
	for i := 0; i < b.N; i++ {
		va := uint64(i%4096) << 12
		_, now = m.Access(i%8, va, i%3 == 0, uint64(i), now)
	}
}

func BenchmarkSlabAllocFree(b *testing.B) {
	cfg := kernel.DefaultConfig(kernel.ModeContiguitas)
	cfg.MemBytes = 256 << 20
	cfg.InitialUnmovableBytes = 64 << 20
	cfg.MinUnmovableBytes = 16 << 20
	cfg.MaxUnmovableBytes = 128 << 20
	k := kernel.New(cfg)
	c, err := slab.NewCache("dentry", 320, k)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := c.Alloc()
		if err != nil {
			b.Fatal(err)
		}
		c.Free(o)
	}
}

func BenchmarkTLBTranslate(b *testing.B) {
	pc := tlb.NewPerCore(hw.DefaultParams())
	resolve := func(vpn uint64) (uint64, bool) { return vpn, false }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc.Translate(uint64(i%4096), resolve)
	}
}

func BenchmarkTranslationStudy(b *testing.B) {
	cfg := cpu.DefaultConfig()
	cfg.Accesses = 20000
	cfg.FootprintPages = 8192
	var frac float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		r := cpu.TranslationStudy(cfg)
		frac = r.WalkFrac
	}
	b.ReportMetric(frac*100, "walk-%")
}

// BenchmarkMetricsExposition measures one /metrics render: translating
// a populated snapshot (a warmed Contiguitas kernel's full registry)
// into Prometheus text. This is pure reader-side cost — it runs against
// an already-captured snapshot, so the number is what each scrape
// charges the HTTP handler, not the simulation.
func BenchmarkMetricsExposition(b *testing.B) {
	cfg := kernel.DefaultConfig(kernel.ModeContiguitas)
	cfg.MemBytes = 512 << 20
	cfg.InitialUnmovableBytes = 32 << 20
	cfg.MinUnmovableBytes = 16 << 20
	cfg.MaxUnmovableBytes = 256 << 20
	k := kernel.New(cfg)
	k.SetTracer(telemetry.NewRing(1 << 14))
	k.AttachSampler(1 << 12)
	r := workload.NewRunner(k, workload.Web(), 1)
	r.Run(200)
	snap := k.Metrics().Capture(200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := obsv.WritePromText(io.Discard, snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTickScrapeUnderLoad is BenchmarkTickTelemetryOn with a live
// scraper attached: a background goroutine continuously demands fresh
// snapshots and renders them while the writer ticks and pumps. The
// per-tick cost must stay within noise of BenchmarkTickTelemetryOn —
// the observed process paying for its observer would violate the
// plane's core design constraint.
func BenchmarkTickScrapeUnderLoad(b *testing.B) {
	cfg := kernel.DefaultConfig(kernel.ModeContiguitas)
	cfg.MemBytes = 512 << 20
	cfg.InitialUnmovableBytes = 32 << 20
	cfg.MinUnmovableBytes = 16 << 20
	cfg.MaxUnmovableBytes = 256 << 20
	k := kernel.New(cfg)
	k.SetTracer(telemetry.NewRing(1 << 14))
	k.AttachSampler(1 << 12)
	r := workload.NewRunner(k, workload.Web(), 1)
	r.Run(20) // warmup
	pub := telemetry.NewPublisher(k.Metrics())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if s := pub.Fresh(time.Millisecond); s != nil {
				_ = obsv.WritePromText(io.Discard, s)
			}
		}
	}()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step()
		pub.Pump(uint64(i))
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}
