package contiguitas_test

import (
	"fmt"
	"testing"

	"contiguitas"
)

func TestPublicAPISmoke(t *testing.T) {
	cfg := contiguitas.DefaultMachineConfig(contiguitas.DesignContiguitas)
	cfg.MemBytes = 256 << 20
	m := contiguitas.NewMachine(cfg)
	r := m.Attach(contiguitas.Web(), 1)
	r.Run(30)
	st := m.Scan()
	if st.FreePages == 0 {
		t.Fatal("scan empty")
	}
	if st.UnmovableBlockFraction(contiguitas.Order2M) <= 0 {
		t.Fatal("no unmovable blocks recorded")
	}
	if r.THPCoverage() <= 0 {
		t.Fatal("no THP coverage")
	}
	r.TearDown()
}

func TestPublicProfiles(t *testing.T) {
	names := map[string]bool{}
	for _, p := range contiguitas.Profiles() {
		names[p.Name] = true
	}
	for _, want := range []string{"Web", "Cache A", "Cache B", "CI"} {
		if !names[want] {
			t.Fatalf("missing profile %q", want)
		}
	}
	if contiguitas.Ads().Name != "Ads" {
		t.Fatal("Ads profile missing")
	}
}

func TestPublicKernelHandles(t *testing.T) {
	cfg := contiguitas.DefaultMachineConfig(contiguitas.DesignContiguitasHW)
	cfg.MemBytes = 128 << 20
	m := contiguitas.NewMachine(cfg)
	p, err := m.K.Alloc(contiguitas.Order4K, contiguitas.MigrateMovable, contiguitas.SrcNetworking)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.K.Pin(p); err != nil {
		t.Fatal(err)
	}
	if p.PFN >= m.K.Boundary() {
		t.Fatal("pin must confine the page")
	}
	m.K.Unpin(p)
	m.K.Free(p)
}

func TestPublicExperimentDrivers(t *testing.T) {
	if len(contiguitas.Fig2()) != 5 {
		t.Fatal("fig2")
	}
	if len(contiguitas.Fig3()) != 9 {
		t.Fatal("fig3")
	}
	if len(contiguitas.Fig13()) != 8 {
		t.Fatal("fig13")
	}
	if g := contiguitas.MemcachedHugePageGain(); g <= 1 {
		t.Fatal("memcached gain")
	}
	if s := contiguitas.Sizing(); s.Entries != 16 {
		t.Fatal("sizing")
	}
}

func ExampleNewMachine() {
	cfg := contiguitas.DefaultMachineConfig(contiguitas.DesignContiguitas)
	cfg.MemBytes = 256 << 20
	cfg.Seed = 1
	m := contiguitas.NewMachine(cfg)

	// Allocate an unmovable slab page: it is confined below the
	// region boundary by construction.
	p, err := m.K.Alloc(contiguitas.Order4K, contiguitas.MigrateUnmovable, contiguitas.SrcSlab)
	if err != nil {
		panic(err)
	}
	fmt.Println("confined:", p.PFN < m.K.Boundary())
	// Output: confined: true
}

func ExampleFragmenter() {
	cfg := contiguitas.DefaultMachineConfig(contiguitas.DesignLinux)
	cfg.MemBytes = 128 << 20
	m := contiguitas.NewMachine(cfg)
	contiguitas.DefaultFragmenter(1).Run(m.K)

	// A fully fragmented Linux machine cannot assemble a 2MB page.
	_, err := m.K.Alloc(contiguitas.Order2M, contiguitas.MigrateMovable, contiguitas.SrcUser)
	fmt.Println("huge page allocation failed:", err != nil)
	// Output: huge page allocation failed: true
}
