// Package contiguitas is a reproduction, in pure Go, of "Contiguitas:
// The Pursuit of Physical Memory Contiguity in Datacenters" (Zhao et
// al., ISCA 2023).
//
// Contiguitas attacks memory fragmentation caused by unmovable kernel
// allocations with two coordinated mechanisms:
//
//   - an operating-system redesign that confines unmovable allocations
//     into a dedicated, continuous region of physical memory whose
//     boundary is resized dynamically from per-region memory pressure
//     (Algorithm 1 of the paper), and
//   - hardware extensions in the last-level cache (Contiguitas-HW) that
//     migrate "unmovable" pages transparently while they remain in use —
//     no blocked accesses, no IPI-based TLB shootdowns.
//
// This package is the public face of the repository: it re-exports the
// simulated machine (kernel memory manager with buddy allocator,
// migratetypes, THP/HugeTLB, reclaim, and compaction), the production
// workload profiles, the fleet study, the cycle-approximate hardware
// platform, and the experiment drivers that regenerate every figure and
// table of the paper's evaluation. See DESIGN.md for the system
// inventory and EXPERIMENTS.md for paper-versus-measured results.
//
// # Quick start
//
//	m := contiguitas.NewMachine(contiguitas.DefaultMachineConfig(contiguitas.DesignContiguitas))
//	r := m.Attach(contiguitas.Web(), 1)
//	r.Run(500)
//	st := m.Scan()
//	fmt.Printf("unmovable 2MB blocks: %.1f%%\n", 100*st.UnmovableBlockFraction(contiguitas.Order2M))
//
// The four executables (cmd/contigsim, cmd/fleetscan, cmd/migbench,
// cmd/contigtrace) and the examples directory show the API on the
// paper's scenarios.
package contiguitas

import (
	"contiguitas/internal/core"
	"contiguitas/internal/fleet"
	"contiguitas/internal/hw/platform"
	"contiguitas/internal/kernel"
	"contiguitas/internal/mem"
	"contiguitas/internal/slab"
	"contiguitas/internal/trans"
	"contiguitas/internal/workload"
)

// Design selects the memory-management system under test.
type Design = core.Design

// The three designs the paper compares.
const (
	DesignLinux         = core.DesignLinux
	DesignContiguitas   = core.DesignContiguitas
	DesignContiguitasHW = core.DesignContiguitasHW
)

// Machine is one simulated server.
type Machine = core.Machine

// MachineConfig sizes a simulated server.
type MachineConfig = core.MachineConfig

// NewMachine boots a simulated server.
func NewMachine(mc MachineConfig) *Machine { return core.NewMachine(mc) }

// DefaultMachineConfig returns the simulation-scale defaults.
func DefaultMachineConfig(d Design) MachineConfig { return core.DefaultMachineConfig(d) }

// SteadyState is a machine's scanned state after workload warmup.
type SteadyState = core.SteadyState

// Profile describes a service's memory behaviour.
type Profile = workload.Profile

// Runner drives a kernel with a profile.
type Runner = workload.Runner

// Fragmenter reproduces the paper's Full-Fragmentation setup.
type Fragmenter = workload.Fragmenter

// The paper's production services plus the Figure 3 extra.
func Web() Profile    { return workload.Web() }
func CacheA() Profile { return workload.CacheA() }
func CacheB() Profile { return workload.CacheB() }
func CI() Profile     { return workload.CI() }
func Ads() Profile    { return workload.Ads() }

// Profiles returns the Figure 11/12 service set.
func Profiles() []Profile { return workload.Profiles() }

// DefaultFragmenter fully fragments a machine before deployment.
func DefaultFragmenter(seed uint64) Fragmenter { return workload.DefaultFragmenter(seed) }

// Kernel is the simulated memory manager (advanced use).
type Kernel = kernel.Kernel

// Page is a relocatable allocation handle.
type Page = kernel.Page

// Block orders of interest, re-exported from the physical memory model.
const (
	Order4K  = mem.Order4K
	Order2M  = mem.Order2M
	Order4M  = mem.Order4M
	Order32M = mem.Order32M
	Order1G  = mem.Order1G
)

// MigrateType classifies allocations; Source attributes them.
type (
	MigrateType = mem.MigrateType
	Source      = mem.Source
)

// Allocation classes and sources (Figure 6 vocabulary).
const (
	MigrateUnmovable   = mem.MigrateUnmovable
	MigrateReclaimable = mem.MigrateReclaimable
	MigrateMovable     = mem.MigrateMovable

	SrcUser       = mem.SrcUser
	SrcNetworking = mem.SrcNetworking
	SrcSlab       = mem.SrcSlab
	SrcFilesystem = mem.SrcFilesystem
	SrcPageTable  = mem.SrcPageTable
	SrcKernelCode = mem.SrcKernelCode
	SrcOther      = mem.SrcOther
)

// FleetConfig parameterises the §2 fleet study.
type FleetConfig = fleet.Config

// FleetStudy is the aggregated fleet scan.
type FleetStudy = fleet.Study

// RunFleet executes the fleet study (Figures 4, 5, 6 and the uptime
// correlation analysis).
func RunFleet(cfg FleetConfig) *FleetStudy { return fleet.Run(cfg) }

// DefaultFleetConfig returns an interactive-scale study.
func DefaultFleetConfig() FleetConfig { return fleet.DefaultConfig() }

// FleetTimePoint is one instant of a young server's fragmentation
// history (§2.4).
type FleetTimePoint = fleet.TimePoint

// YoungServerSeries scans a freshly booted server at fixed intervals,
// reproducing the paper's fragmentation-within-the-first-hour finding.
func YoungServerSeries(cfg FleetConfig, p Profile, points int, interval uint64) []FleetTimePoint {
	return fleet.YoungServerSeries(cfg, p, points, interval)
}

// TLBConfig and Workload drive the analytic translation model.
type (
	TLBConfig     = trans.TLBConfig
	TransWorkload = trans.Workload
	Coverage      = trans.Coverage
)

// DefaultTLB matches the paper's simulated platform (Table 1).
func DefaultTLB() TLBConfig { return trans.DefaultTLB() }

// HWMachine is the cycle-approximate hardware platform with optional
// Contiguitas-HW attached (Figure 13 and §5.3 run on it).
type HWMachine = platform.Machine

// ExpConfig scales the experiment drivers.
type ExpConfig = core.ExpConfig

// DefaultExpConfig is the simulation scale used by cmd/contigsim.
func DefaultExpConfig() ExpConfig { return core.DefaultExpConfig() }

// Experiment drivers: one per figure/table of the paper's evaluation.
// Row types are re-exported below.
func Fig2() []Fig2Row                        { return core.Fig2() }
func Fig3() []Fig3Row                        { return core.Fig3() }
func Fig10(cfg ExpConfig) []Fig10Row         { return core.Fig10(cfg) }
func Fig11(cfg ExpConfig) []Fig11Row         { return core.Fig11(cfg) }
func Fig12(cfg ExpConfig) []Fig12Row         { return core.Fig12(cfg) }
func Fig13() []Fig13Point                    { return core.Fig13() }
func Sec53(durationCycles uint64) []Sec53Row { return core.Sec53(durationCycles) }

// Result row types of the experiment drivers.
type (
	Fig2Row    = core.Fig2Row
	Fig3Row    = core.Fig3Row
	Fig10Row   = core.Fig10Row
	Fig11Row   = core.Fig11Row
	Fig12Row   = core.Fig12Row
	Fig13Point = platform.Fig13Point
	Sec53Row   = core.Sec53Row
)

// SlabCache is a SLUB-style size-class cache; SlabManager bundles the
// standard kernel object classes. Slab is the paper's second-largest
// unmovable source: one live object pins a whole backing page.
type (
	SlabCache   = slab.Cache
	SlabManager = slab.Manager
	SlabObj     = slab.Obj
)

// NewSlabCache builds one size class over a kernel's page allocator.
func NewSlabCache(name string, objSize int, k *Kernel) (*SlabCache, error) {
	return slab.NewCache(name, objSize, k)
}

// NewSlabManager builds the standard kernel object caches.
func NewSlabManager(k *Kernel) *SlabManager { return slab.NewManager(k) }

// MemcachedHugePageGain reproduces the §5.3 memcached +7% claim.
func MemcachedHugePageGain() float64 { return core.MemcachedHugePageGain() }

// Sizing reproduces the §5.3 metadata-table sizing analysis.
func Sizing() core.SizingReport { return core.Sizing() }
