#!/usr/bin/env bash
# Hot-path benchmark smoke: runs the simulator's key benchmarks —
# warm/cold physical-memory scans, the Figure 4 fleet study, the
# cold/warm result-cache campaign pair, buddy alloc/free, a workload
# tick, and the covering-head lookup — and writes the parsed results
# (ns/op, B/op, allocs/op) as JSON. With COUNT > 1 each benchmark's
# fields are the medians across the repetitions.
#
# Usage: scripts/bench.sh [out.json]
#        scripts/bench.sh -compare baseline.json post.json [out.json]
# Env:   BENCHTIME (default 3x), COUNT (default 1), NOTE (compare note)
#
# -compare merges two runs of this script into the BENCH_PR2.json
# before/after shape: every benchmark present in both files gets a
# speedup_vs_baseline on its post entry. CI runs the plain mode as a
# smoke job; for PR-quality numbers use COUNT=3 (medians) and -compare.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "-compare" ]; then
    if [ $# -lt 3 ]; then
        echo "usage: scripts/bench.sh -compare baseline.json post.json [out.json]" >&2
        exit 1
    fi
    baseline="$2" post="$3" out="${4:-BENCH_COMPARE.json}"
    NOTE="${NOTE:-}" python3 - "$baseline" "$post" "$out" <<'PYEOF'
import json, os, sys

base_path, post_path, out_path = sys.argv[1:4]
base = json.load(open(base_path))
post = json.load(open(post_path))
by_name = {b["name"]: b for b in base["benchmarks"]}

merged_post = []
for b in post["benchmarks"]:
    row = dict(b)
    ref = by_name.get(b["name"])
    if ref and b["ns_per_op"]:
        row["speedup_vs_baseline"] = round(ref["ns_per_op"] / b["ns_per_op"], 2)
    merged_post.append(row)

doc = {
    "note": os.environ.get("NOTE", ""),
    "benchtime": post.get("benchtime", base.get("benchtime", "")),
    "count": post.get("count", 1),
    "aggregation": post.get("aggregation", "median"),
    "baseline": {k: base[k] for k in ("commit", "benchmarks") if k in base},
    "post": {"benchmarks": merged_post},
}
json.dump(doc, open(out_path, "w"), indent=2)
open(out_path, "a").write("\n")
print(f"wrote {out_path}", file=sys.stderr)
PYEOF
    exit 0
fi

out="${1:-BENCH.json}"
benchtime="${BENCHTIME:-3x}"
count="${COUNT:-1}"
pattern='^(BenchmarkFullScan|BenchmarkFullScanCold|BenchmarkFig4ContiguityCDF|BenchmarkFleetCampaignCold|BenchmarkFleetCampaignWarm|BenchmarkBuddyAllocFree4K|BenchmarkWorkloadTick|BenchmarkAllocHead|BenchmarkTickTelemetryOff|BenchmarkTickTelemetryOn|BenchmarkMetricsExposition|BenchmarkTickScrapeUnderLoad)$'

raw="$(go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" -count "$count" .)"
printf '%s\n' "$raw"

# A renamed or deleted benchmark makes go test exit 0 with nothing to
# run; an empty JSON would sail through CI looking green. Require every
# name in the pattern to have produced at least one result line.
missing=0
for name in $(printf '%s' "$pattern" | tr -d '^()$' | tr '|' ' '); do
    if ! printf '%s\n' "$raw" | grep -q "^${name}\b"; then
        echo "bench.sh: benchmark $name matched nothing — renamed or deleted?" >&2
        missing=1
    fi
done
if [ "$missing" -ne 0 ]; then
    echo "bench.sh: refusing to write $out from an incomplete run" >&2
    exit 1
fi

rawfile="$(mktemp)"
trap 'rm -f "$rawfile"' EXIT
printf '%s\n' "$raw" > "$rawfile"
BENCHTIME="$benchtime" COUNT="$count" python3 - "$out" "$rawfile" <<'PYEOF'
import json, os, re, sys
from statistics import median

rows = {}       # name -> {"iters": [...], "ns": [...], "bytes": [...], "allocs": [...]}
order = []
for line in open(sys.argv[2]):
    if not line.startswith("Benchmark"):
        continue
    fields = line.split()
    name = re.sub(r"-\d+$", "", fields[0])
    rec = rows.setdefault(name, {"iters": [], "ns": [], "bytes": [], "allocs": []})
    if name not in order:
        order.append(name)
    rec["iters"].append(int(fields[1]))
    for value, unit in zip(fields[2:], fields[3:]):
        if unit == "ns/op":
            rec["ns"].append(float(value))
        elif unit == "B/op":
            rec["bytes"].append(int(value))
        elif unit == "allocs/op":
            rec["allocs"].append(int(value))

def agg(values, integral):
    if not values:
        return None
    m = median(values)
    return int(m) if integral or m == int(m) else m

benchmarks = []
for name in order:
    rec = rows[name]
    benchmarks.append({
        "name": name,
        "iters": agg(rec["iters"], True),
        "ns_per_op": agg(rec["ns"], False),
        "bytes_per_op": agg(rec["bytes"], True),
        "allocs_per_op": agg(rec["allocs"], True),
    })

doc = {
    "benchtime": os.environ["BENCHTIME"],
    "count": int(os.environ["COUNT"]),
    "aggregation": "median",
    "benchmarks": benchmarks,
}
json.dump(doc, open(sys.argv[1], "w"), indent=2)
open(sys.argv[1], "a").write("\n")
PYEOF
echo "wrote $out" >&2
