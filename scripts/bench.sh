#!/usr/bin/env bash
# Hot-path benchmark smoke: runs the simulator's key benchmarks —
# warm/cold physical-memory scans, the Figure 4 fleet study, buddy
# alloc/free, a workload tick, and the covering-head lookup — and writes
# the parsed results (ns/op, B/op, allocs/op) as JSON.
#
# Usage: scripts/bench.sh [out.json]
# Env:   BENCHTIME (default 3x), COUNT (default 1)
#
# CI runs this as a smoke job; for PR-quality numbers use COUNT=3 and
# take medians (see BENCH_PR2.json for the recorded pre/post pair).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH.json}"
benchtime="${BENCHTIME:-3x}"
count="${COUNT:-1}"
pattern='^(BenchmarkFullScan|BenchmarkFullScanCold|BenchmarkFig4ContiguityCDF|BenchmarkBuddyAllocFree4K|BenchmarkWorkloadTick|BenchmarkAllocHead|BenchmarkTickTelemetryOff|BenchmarkTickTelemetryOn)$'

raw="$(go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" -count "$count" .)"
printf '%s\n' "$raw"

# A renamed or deleted benchmark makes go test exit 0 with nothing to
# run; an empty JSON would sail through CI looking green. Require every
# name in the pattern to have produced at least one result line.
missing=0
for name in $(printf '%s' "$pattern" | tr -d '^()$' | tr '|' ' '); do
    if ! printf '%s\n' "$raw" | grep -q "^${name}\b"; then
        echo "bench.sh: benchmark $name matched nothing — renamed or deleted?" >&2
        missing=1
    fi
done
if [ "$missing" -ne 0 ]; then
    echo "bench.sh: refusing to write $out from an incomplete run" >&2
    exit 1
fi

printf '%s\n' "$raw" | awk -v benchtime="$benchtime" '
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = "null"; allocs = "null"
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        else if ($(i + 1) == "B/op") bytes = $i
        else if ($(i + 1) == "allocs/op") allocs = $i
    }
    rows[n++] = sprintf("    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                        name, $2, ns, bytes, allocs)
}
END {
    printf "{\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", benchtime
    for (i = 0; i < n; i++) printf "%s%s\n", rows[i], (i < n - 1 ? "," : "")
    printf "  ]\n}\n"
}
' > "$out"
echo "wrote $out" >&2
