#!/usr/bin/env bash
# The storage-fault chaos gate: contigd under the fault-injecting
# filesystem (-chaos-fs), proving the three storage-robustness claims
# the in-process tests can only state per-layer:
#
#   1. probabilistic write/fsync/rename faults across EVERY durable
#      write site are absorbed by the retry budgets — the campaign
#      completes, nothing degrades, and the merged result is
#      BYTE-IDENTICAL to a fault-free run;
#   2. a persistent write failure on the cell/result journal
#      (path=.bin) fails the campaign with the typed storage error and
#      flips the daemon into read-only degraded mode: new admissions
#      get 503 + Retry-After, reads keep serving, /healthz reports
#      "degraded" — and the background probe lifts degraded mode on its
#      own once the op-count window heals the disk;
#   3. offline bit-rot in a cell journal is caught by the startup
#      scrubber: the rotted file is quarantined (preserved under
#      .quarantine/, gone from the live tree), the campaign is
#      requeued, and the recompute converges on byte-identical results.
#
# Throughout: zero panics in any daemon log, zero silent corruption
# (every divergence is a typed error, a quarantine, or a recompute).
#
# Usage: scripts/disk-chaos.sh [path-to-contigd-binary]
# Builds a race-instrumented binary when no path is given.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${1:-}"
if [ -z "$BIN" ]; then
  go build -race -o contigd-race ./cmd/contigd
  BIN=./contigd-race
fi

WORK="${CHAOS_DIR:-results/disk-chaos}"
rm -rf "$WORK"
mkdir -p "$WORK"

# A failed assertion must not leak a daemon holding the port into the
# next run.
DPID=""
trap '[ -n "$DPID" ] && kill -9 "$DPID" 2>/dev/null || true' EXIT

# Small enough to finish in seconds, big enough that a campaign crosses
# many durable writes (cells, checkpoints, record transitions).
SPEC='{"spec":{"name":"chaos","servers":48,"mems_mib":[64],"ticks_min":30,"ticks_max":90,"seed":7,"shards":4}}'
ADDR=127.0.0.1:18437

submit() { # submit <key> -> campaign id
  curl -sf -X POST "http://$ADDR/api/campaigns" -H "Idempotency-Key: $1" -d "$SPEC" \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["campaign"]["id"])'
}

field() { # field <id> <json-field>
  curl -sf "http://$ADDR/api/campaigns/$1" \
    | python3 -c "import json,sys; print(json.load(sys.stdin)[\"$2\"])"
}

wait_state() { # wait_state <id> <state> <tries>
  local s=unreachable
  for _ in $(seq 1 "$3"); do
    s=$(field "$1" state || echo unreachable)
    [ "$s" = "$2" ] && return 0
    if [ "$2" != failed ] && [ "$s" = failed ]; then
      echo "campaign $1 failed instead of reaching $2"
      curl -s "http://$ADDR/api/campaigns/$1"
      return 1
    fi
    sleep 0.2
  done
  echo "campaign $1 never reached $2 (last: $s)"
  return 1
}

healthz() { curl -sf "http://$ADDR/healthz" | python3 -c 'import json,sys; print(json.load(sys.stdin)["status"])'; }

start_daemon() { # start_daemon <log> <extra flags...>
  local log="$1"; shift
  "$BIN" -addr "$ADDR" "$@" >"$log" 2>&1 &
  DPID=$!
  for _ in $(seq 1 100); do
    curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "daemon never came up"; cat "$log"; return 1
}

stop_daemon() { # stop_daemon <log>
  kill -TERM "$DPID"
  local code=0; wait "$DPID" || code=$?
  if [ "$code" -ne 0 ]; then echo "SIGTERM exit code $code, want 0"; cat "$1"; exit 1; fi
}

echo '== reference: fault-free run =='
start_daemon "$WORK/ref.log" -state-dir "$WORK/state-ref"
[ "$(healthz)" = ok ]
ID_REF=$(submit ref)
wait_state "$ID_REF" done 300
curl -sf -o "$WORK/ref.bin" "http://$ADDR/api/campaigns/$ID_REF/result"
stop_daemon "$WORK/ref.log"

echo '== scenario 1: probabilistic faults on every durable write site =='
start_daemon "$WORK/prob.log" -state-dir "$WORK/state-prob" \
  -chaos-fs 'seed=11,write=0.02,fsync=0.02,rename=0.01' -store-retries 10
grep -q 'CHAOS: filesystem fault injection armed' "$WORK/prob.log"
ID_P=$(submit prob)
wait_state "$ID_P" done 600
curl -sf -o "$WORK/prob.bin" "http://$ADDR/api/campaigns/$ID_P/result"
cmp "$WORK/ref.bin" "$WORK/prob.bin"
curl -sf "http://$ADDR/api/stats" | python3 -c '
import json, sys
st = json.load(sys.stdin)
assert st["completed"] == 1, st
assert not st["degraded"], "daemon degraded under faults the retry budget should absorb: %s" % st
print("stats: store_retried=%d store_errors=%d cells_healed=%d" % (
    st["store_retried"], st["store_errors"], st["cells_healed"]))
'
stop_daemon "$WORK/prob.log"
echo 'PASS: probabilistic-fault result byte-identical to fault-free run'

echo '== scenario 2: persistent journal failure -> degraded -> probe recovery =='
# write=1 on .bin paths: the first cell journal write fails past the
# retry budget. The op-count window (until=80) means the disk heals
# after enough crossings — which only the probe loop generates while
# degraded, so recovery is the probe's doing, not luck.
start_daemon "$WORK/deg.log" -state-dir "$WORK/state-deg" \
  -chaos-fs 'seed=3,write=1,from=0,until=80,path=.bin' \
  -store-retries 2 -probe-interval 200ms
ID_D=$(submit doomed)
wait_state "$ID_D" failed 300
ERR=$(field "$ID_D" error)
case "$ERR" in
  *"storage backend failing"*) echo "typed failure: $ERR" ;;
  *) echo "campaign failed without the typed storage error: $ERR"; exit 1 ;;
esac
[ "$(healthz)" = degraded ] || { echo "/healthz not degraded"; exit 1; }
# New admissions: 503 with Retry-After. Reads: still served.
HDRS=$(curl -s -D - -o "$WORK/degraded-submit.json" -X POST "http://$ADDR/api/campaigns" \
  -H 'Idempotency-Key: while-degraded' -d "$SPEC")
echo "$HDRS" | grep -q '^HTTP/1.1 503' || { echo "degraded submit not 503:"; echo "$HDRS"; exit 1; }
echo "$HDRS" | grep -qi '^Retry-After:' || { echo "degraded 503 missing Retry-After"; exit 1; }
grep -q 'degraded' "$WORK/degraded-submit.json"
curl -sf "http://$ADDR/api/campaigns/$ID_D" >/dev/null || { echo "reads not served while degraded"; exit 1; }
# The probe loop advances the fault clock past the window and lifts
# degraded mode without any outside help.
for _ in $(seq 1 100); do
  [ "$(healthz)" = ok ] && break
  sleep 0.2
done
[ "$(healthz)" = ok ] || { echo "degraded mode never lifted"; cat "$WORK/deg.log"; exit 1; }
ID_H=$(submit after-heal)
wait_state "$ID_H" done 600
curl -sf -o "$WORK/healed.bin" "http://$ADDR/api/campaigns/$ID_H/result"
cmp "$WORK/ref.bin" "$WORK/healed.bin"
stop_daemon "$WORK/deg.log"
echo 'PASS: degraded mode entered with typed errors, probe recovered, post-heal result byte-identical'

echo '== scenario 3: offline bit-rot caught by the startup scrubber =='
start_daemon "$WORK/rot1.log" -state-dir "$WORK/state-rot"
ID_R=$(submit rot)
wait_state "$ID_R" done 300
curl -sf -o "$WORK/rot-ref.bin" "http://$ADDR/api/campaigns/$ID_R/result"
stop_daemon "$WORK/rot1.log"
CELL="$WORK/state-rot/campaigns/$ID_R/cell-000.bin"
cp "$CELL" "$WORK/rot-ref-cell.bin"
python3 - "$CELL" <<'EOF'
import sys
path = sys.argv[1]
data = bytearray(open(path, 'rb').read())
data[len(data) // 2] ^= 0x10
open(path, 'wb').write(data)
print('rotted one bit of', path)
EOF
start_daemon "$WORK/rot2.log" -state-dir "$WORK/state-rot" -scrub
grep -q '^contigd: scrub: scanned=[1-9][0-9]* quarantined=1 requeued=1 lost=0$' "$WORK/rot2.log" \
  || { echo 'scrub summary missing or wrong:'; cat "$WORK/rot2.log"; exit 1; }
# The rotted bytes are preserved in quarantine. (The live-tree copy is
# checked indirectly: the requeued campaign rewrites it and the result
# must match the pre-rot reference.)
Q="$WORK/state-rot/.quarantine/campaigns/$ID_R/cell-000.bin"
[ -f "$Q" ] || { echo "quarantine copy missing: $Q"; exit 1; }
cmp -s "$Q" "$WORK/rot-ref-cell.bin" && { echo "quarantine holds clean bytes, not the rotted ones"; exit 1; }
wait_state "$ID_R" done 600
curl -sf -o "$WORK/rot-healed.bin" "http://$ADDR/api/campaigns/$ID_R/result"
cmp "$WORK/rot-ref.bin" "$WORK/rot-healed.bin"
stop_daemon "$WORK/rot2.log"
echo 'PASS: rotted cell quarantined with evidence preserved, recompute byte-identical'

# No daemon may ever panic under injected storage faults.
if grep -il 'panic' "$WORK"/*.log; then
  echo 'FAIL: panic in a chaos daemon log'; exit 1
fi

echo 'PASS: disk chaos gate complete'
