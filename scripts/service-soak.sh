#!/usr/bin/env bash
# The contigd service soak: the process-level proof of the campaign
# service's durability contract. An in-process test can only simulate a
# kill; this script SIGKILLs a real race-built daemon twice mid-campaign
# and requires:
#
#   1. every restart re-admits the interrupted campaign (recovery scan),
#   2. the finished campaign's merged result is BYTE-IDENTICAL to an
#      uninterrupted same-spec run in a fresh state directory, and
#   3. SIGTERM drains gracefully: exit code 0, the drain summary line,
#      no completed shard lost (the drained campaign resumes — again to
#      identical bytes — in the next process lifetime).
#
# Usage: scripts/service-soak.sh [path-to-contigd-binary]
# Builds a race-instrumented binary when no path is given.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${1:-}"
if [ -z "$BIN" ]; then
  go build -race -o contigd-race ./cmd/contigd
  BIN=./contigd-race
fi

WORK="${SOAK_DIR:-results/service-soak}"
rm -rf "$WORK"
mkdir -p "$WORK"

# The campaign spec: big enough that a race-built daemon needs tens of
# seconds per run, so the kills reliably land mid-campaign.
SPEC='{"spec":{"name":"soak","servers":240,"mems_mib":[128],"ticks_min":100,"ticks_max":300,"seed":11,"shards":16}}'
ADDR=127.0.0.1:18431

submit() { # submit <key> -> campaign id
  curl -sf -X POST "http://$ADDR/api/campaigns" -H "Idempotency-Key: $1" -d "$SPEC" \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["campaign"]["id"])'
}

state() { # state <id>
  curl -sf "http://$ADDR/api/campaigns/$1" \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])'
}

wait_state() { # wait_state <id> <state> <tries>
  for _ in $(seq 1 "$3"); do
    s=$(state "$1" || echo unreachable)
    [ "$s" = "$2" ] && return 0
    if [ "$2" != failed ] && [ "$s" = failed ]; then
      echo "campaign $1 failed instead of reaching $2"
      curl -s "http://$ADDR/api/campaigns/$1"
      return 1
    fi
    sleep 0.5
  done
  echo "campaign $1 never reached $2 (last: $s)"
  return 1
}

start_daemon() { # start_daemon <state-dir> <log>
  "$BIN" -addr "$ADDR" -state-dir "$1" >"$2" 2>&1 &
  DPID=$!
  for _ in $(seq 1 100); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
      # A daemon that came up (including every post-kill recovery) must
      # report healthy — recovery never leaves it degraded.
      status=$(curl -sf "http://$ADDR/healthz" \
        | python3 -c 'import json,sys; print(json.load(sys.stdin)["status"])')
      if [ "$status" != ok ]; then
        echo "/healthz status $status, want ok"; cat "$2"; return 1
      fi
      return 0
    fi
    sleep 0.1
  done
  echo "daemon never came up"; cat "$2"; return 1
}

echo '== reference: uninterrupted run + SIGTERM drain =='
start_daemon "$WORK/state-ref" "$WORK/ref.log"
ID_REF=$(submit ref)
wait_state "$ID_REF" done 360
curl -sf -o "$WORK/ref.bin" "http://$ADDR/api/campaigns/$ID_REF/result"
kill -TERM "$DPID"
code=0; wait "$DPID" || code=$?
if [ "$code" -ne 0 ]; then echo "SIGTERM exit code $code, want 0"; cat "$WORK/ref.log"; exit 1; fi
grep -q '^contigd: drained in .* completed=1 ' "$WORK/ref.log"
echo 'reference drained: exit 0, completed=1 preserved'

echo '== crash run: SIGKILL twice mid-campaign, recover each time =='
start_daemon "$WORK/state-crash" "$WORK/crash1.log"
ID=$(submit crash)
wait_state "$ID" running 60
sleep 1
kill -9 "$DPID"; wait "$DPID" 2>/dev/null || true
echo "first SIGKILL landed"

start_daemon "$WORK/state-crash" "$WORK/crash2.log"
grep -q '^contigd: recovered 1 campaign(s)$' "$WORK/crash2.log"
wait_state "$ID" running 60
kill -9 "$DPID"; wait "$DPID" 2>/dev/null || true
echo "second SIGKILL landed"

start_daemon "$WORK/state-crash" "$WORK/crash3.log"
grep -q '^contigd: recovered 1 campaign(s)$' "$WORK/crash3.log"
wait_state "$ID" done 360
curl -sf -o "$WORK/crash.bin" "http://$ADDR/api/campaigns/$ID/result"
cmp "$WORK/ref.bin" "$WORK/crash.bin"
echo 'PASS: result after two SIGKILLs byte-identical to uninterrupted run'
kill -TERM "$DPID"; wait "$DPID"

echo '== drain run: SIGTERM mid-campaign, resume in next lifetime =='
start_daemon "$WORK/state-drain" "$WORK/drain1.log"
ID_D=$(submit drain)
wait_state "$ID_D" running 60
kill -TERM "$DPID"
code=0; wait "$DPID" || code=$?
if [ "$code" -ne 0 ]; then echo "mid-campaign SIGTERM exit code $code, want 0"; cat "$WORK/drain1.log"; exit 1; fi
grep -q '^contigd: .*: draining (admission stopped, checkpointing in-flight shards)$' "$WORK/drain1.log"

start_daemon "$WORK/state-drain" "$WORK/drain2.log"
grep -q '^contigd: recovered 1 campaign(s)$' "$WORK/drain2.log"
wait_state "$ID_D" done 360
curl -sf -o "$WORK/drain.bin" "http://$ADDR/api/campaigns/$ID_D/result"
cmp "$WORK/ref.bin" "$WORK/drain.bin"
echo 'PASS: result after mid-campaign SIGTERM drain byte-identical to uninterrupted run'

# Terminal health: after two SIGKILLs, a drain, and a full resume, the
# daemon's last word on /healthz is still "ok" — the soak never leaves
# the service degraded.
status=$(curl -sf "http://$ADDR/healthz" \
  | python3 -c 'import json,sys; print(json.load(sys.stdin)["status"])')
if [ "$status" != ok ]; then echo "terminal /healthz status $status, want ok"; exit 1; fi
echo "terminal /healthz status: $status"
kill -TERM "$DPID"; wait "$DPID"

echo 'PASS: service soak complete'
