// Fleetstudy: a miniature version of the paper's §2 fleet analysis.
// Dozens of simulated servers run randomized service mixes for
// randomized uptimes; a full physical-memory scan of each server yields
// the contiguity and unmovable-memory distributions of Figures 4-6 and
// the (absence of) correlation between uptime and fragmentation.
package main

import (
	"fmt"

	"contiguitas"
	"contiguitas/internal/mem"
)

func main() {
	cfg := contiguitas.DefaultFleetConfig()
	cfg.Servers = 48
	cfg.MemBytes = 512 << 20
	cfg.TicksMin = 50
	cfg.TicksMax = 400

	fmt.Printf("scanning %d simulated servers...\n\n", cfg.Servers)
	study := contiguitas.RunFleet(cfg)

	fmt.Println("contiguity (share of free memory in fully-free blocks), fleet percentiles:")
	for _, o := range []int{contiguitas.Order2M, contiguitas.Order32M} {
		cdf := study.ContigCDF(o)
		name := map[int]string{contiguitas.Order2M: "2MB", contiguitas.Order32M: "32MB"}[o]
		fmt.Printf("  %-5s p25=%.2f  p50=%.2f  p75=%.2f  (servers at zero: %.0f%%)\n",
			name, cdf.Quantile(0.25), cdf.Quantile(0.50), cdf.Quantile(0.75),
			study.NoContigFraction(o)*100)
	}

	fmt.Println("\nunmovable memory at 2MB granularity:")
	fmt.Printf("  median blocks poisoned: %.0f%%   median 4KB frames: %.1f%%  (scatter amplification %.1fx)\n",
		study.MedianUnmovBlockFrac(contiguitas.Order2M)*100,
		study.MedianUnmovFrameFrac()*100,
		study.MedianUnmovBlockFrac(contiguitas.Order2M)/study.MedianUnmovFrameFrac())

	fmt.Println("\nwhere unmovable memory comes from (Figure 6):")
	src := study.SourceBreakdown()
	for _, c := range []mem.Source{mem.SrcNetworking, mem.SrcSlab, mem.SrcFilesystem, mem.SrcPageTable, mem.SrcOther} {
		fmt.Printf("  %-12s %5.1f%%\n", c, src[c]*100)
	}

	fmt.Printf("\nuptime vs free 2MB blocks: Pearson r = %+.4f — fragmentation is not an uptime story\n",
		study.UptimeCorrelation())
}
