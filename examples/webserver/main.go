// Webserver: the paper's headline Web result (§5.1). A Web-like service
// lands on a fully fragmented server. Under Linux, the scattered
// unmovable residue makes every 1GB HugeTLB reservation fail and holds
// THP coverage down. Under Contiguitas the movable region stays
// compactable: the service dynamically reserves 1GB pages — worth a
// 7.5% performance win in production — and keeps full 2MB coverage.
package main

import (
	"fmt"

	"contiguitas"
)

func main() {
	const memBytes = 8 << 30
	web := contiguitas.Web()
	tlb := contiguitas.DefaultTLB()

	type outcome struct {
		design contiguitas.Design
		thp    float64
		huge1g int
		walk   float64
	}
	var results []outcome

	for _, design := range []contiguitas.Design{
		contiguitas.DesignLinux,
		contiguitas.DesignContiguitas,
	} {
		cfg := contiguitas.DefaultMachineConfig(design)
		cfg.MemBytes = memBytes
		m := contiguitas.NewMachine(cfg)

		// The server is fully fragmented before the service deploys —
		// the state 23% of the production fleet is in.
		contiguitas.DefaultFragmenter(7).Run(m.K)

		// Deploy Web and run it to steady state, then attempt a dynamic
		// 1GB HugeTLB reservation for the hottest heap.
		ss, runner := m.RunToSteadyState(web, 200, 11, 2)

		walk, _ := ss.EndToEnd(tlb, web.Trans, uint64(float64(memBytes)*web.UserFrac))
		results = append(results, outcome{design, ss.THPCoverage, ss.Huge1GPages, walk})

		fmt.Printf("=== %s on a fully fragmented server ===\n", design)
		fmt.Printf("  THP (2MB) coverage:        %5.1f%%\n", ss.THPCoverage*100)
		fmt.Printf("  dynamic 1GB pages:         %d\n", ss.Huge1GPages)
		fmt.Printf("  page-walk cycles:          %5.1f%%\n\n", walk)
		_ = runner
	}

	lin, con := results[0], results[1]
	gain := (1 - con.walk/100) / (1 - lin.walk/100)
	fmt.Printf("end-to-end: Contiguitas is %.1f%% faster than fragmented Linux\n", (gain-1)*100)
	fmt.Println("(paper: +18% on fully fragmented servers, 7.5% of it from 1GB pages)")
}
