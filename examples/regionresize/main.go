// Regionresize: watch Algorithm 1 drive the unmovable-region boundary
// (§3.2). A bursty workload's unmovable demand swings up and down; the
// resizer expands the region under unmovable pressure and gives memory
// back to applications when demand recedes. The ASCII map shows the
// physical address space at 2MB granularity: the '|' is the boundary,
// 'U' blocks hold unmovable memory, 'm' movable, '.' free.
package main

import (
	"fmt"

	"contiguitas"
	"contiguitas/internal/mem"
)

func main() {
	cfg := contiguitas.DefaultMachineConfig(contiguitas.DesignContiguitas)
	cfg.MemBytes = 1 << 30
	m := contiguitas.NewMachine(cfg)

	profile := contiguitas.CI() // the burstiest service
	profile.UnmovBurst = 0.6
	profile.UnmovBurstPeriod = 100

	runner := m.Attach(profile, 7)

	fmt.Println("tick   boundary   unmovable-region   demand-phase")
	for step := 0; step < 6; step++ {
		runner.Run(50)
		phase := "rising"
		if (step*50)%int(profile.UnmovBurstPeriod) >= 50 {
			phase = "falling"
		}
		fmt.Printf("%4d   %8d   %6d MiB         %s\n",
			(step+1)*50, m.K.Boundary(), m.K.UnmovableRegionBytes()>>20, phase)
	}

	fmt.Println("\nphysical memory map (2MB blocks, '|' = region boundary):")
	fmt.Print(m.K.PM().RenderMap(64, m.K.Boundary()))

	st := m.K.PM().Scan([]int{mem.Order2M})
	fmt.Printf("\nunmovable blocks: %.1f%% of memory, confined left of the boundary\n",
		st.UnmovableBlockFraction(mem.Order2M)*100)
	fmt.Printf("boundary moved %d pages total across %d expansions and %d shrinks (%d failed)\n",
		m.K.BoundaryMovedPages, m.K.Expands, m.K.Shrinks, m.K.ShrinkFails)

	// The OS-only design cannot shrink past unmovable pages parked near
	// the boundary — the limitation §3.3 motivates. With Contiguitas-HW
	// those pages are live-migrated downward and shrinking succeeds.
	hwCfg := contiguitas.DefaultMachineConfig(contiguitas.DesignContiguitasHW)
	hwCfg.MemBytes = 1 << 30
	hwMachine := contiguitas.NewMachine(hwCfg)
	hwRunner := hwMachine.Attach(profile, 7)
	hwRunner.Run(300)
	fmt.Printf("\nwith Contiguitas-HW: %d expansions, %d shrinks (%d failed), %d HW migrations\n",
		hwMachine.K.Expands, hwMachine.K.Shrinks, hwMachine.K.ShrinkFails, hwMachine.K.HWMigrations)
}
