// Cachemigration: Contiguitas-HW live-migrating the unmovable pages of
// a memcached-like server while it serves traffic at peak throughput
// (§3.3, §5.3). The NIC keeps DMA-writing request payloads into pinned
// networking buffers; the metadata table in the LLC redirects every
// access line-by-line as the copy progresses, so the pages are never
// unavailable — the thing software page migration fundamentally cannot
// do. Both hardware design points (noncacheable and cacheable) run at
// the paper's Regular and Very High migration rates.
package main

import (
	"fmt"

	"contiguitas/internal/hw"
	"contiguitas/internal/hw/contighw"
	"contiguitas/internal/hw/platform"
)

func main() {
	const window = 6_000_000 // cycles at 2GHz = 3ms of serving

	fmt.Println("memcached-like server at peak throughput; unmovable buffers under live migration")
	fmt.Println()

	for _, mode := range []contighw.Mode{contighw.Noncacheable, contighw.Cacheable} {
		fmt.Printf("=== Contiguitas-HW, %s design point ===\n", mode)
		var base float64
		for _, rate := range []float64{0, 100, 1000} {
			md := mode
			machine := platform.NewMachine(hw.DefaultParams(), &md)
			cfg := platform.DefaultServeConfig()
			cfg.DurationCycles = window
			cfg.MigrationsPerSec = rate

			res := platform.ServeBenchmark(machine, cfg)
			label := "baseline  "
			switch rate {
			case 100:
				label = "regular   "
			case 1000:
				label = "very high "
			}
			if rate == 0 {
				base = res.RequestsPerMCycle
				fmt.Printf("  %s (%4.0f mig/s): %7d requests\n", label, rate, res.Requests)
				continue
			}
			loss := (1 - res.RequestsPerMCycle/base) * 100
			fmt.Printf("  %s (%4.0f mig/s): %7d requests, %d migrations, throughput loss %.2f%%\n",
				label, rate, res.Requests, res.Migrations, loss)
		}
		fmt.Println()
	}

	// One migration under the microscope: every line of the page is
	// written by the NIC *during* the copy, and nothing is lost.
	md := contighw.Cacheable
	machine := platform.NewMachine(hw.DefaultParams(), &md)
	machine.MapPage(42, 1000)
	for i := 0; i < 64; i++ {
		machine.DeviceAccess(42<<12+uint64(i)*64, true, uint64(1000+i), 0)
	}
	rep, err := machine.HWMigrate(42, 1000, 2000, platform.HWMigrateOptions{})
	if err != nil {
		panic(err)
	}
	ok := true
	for i := 0; i < 64; i++ {
		v, _ := machine.Access(0, 42<<12+uint64(i)*64, false, 0, machine.Eng.Now())
		if v != uint64(1000+i) {
			ok = false
		}
	}
	fmt.Printf("single-page check: migrated in %d cycles end-to-end, unavailable for %d cycles, data intact: %v\n",
		rep.TotalCycles, rep.UnavailableCycles, ok)
	fmt.Println("(software migration would have blocked the page for the whole shootdown + copy)")
}
