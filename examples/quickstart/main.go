// Quickstart: boot the same server twice — once with the Linux memory
// layout, once with Contiguitas confinement — run the Web workload on
// both, and compare what a full physical-memory scan sees. This is the
// paper's core observation in ~40 lines: the same unmovable allocation
// stream scatters across the Linux address space but stays confined
// under Contiguitas, preserving contiguity.
package main

import (
	"fmt"

	"contiguitas"
)

func main() {
	for _, design := range []contiguitas.Design{
		contiguitas.DesignLinux,
		contiguitas.DesignContiguitas,
	} {
		cfg := contiguitas.DefaultMachineConfig(design)
		cfg.MemBytes = 2 << 30 // 2 GiB keeps the demo fast
		m := contiguitas.NewMachine(cfg)

		runner := m.Attach(contiguitas.Web(), 1)
		runner.Run(300) // ~5 simulated minutes of service activity

		st := m.Scan()
		fmt.Printf("=== %s ===\n", design)
		fmt.Printf("  unmovable 4KB frames:     %5.1f%% of memory\n",
			st.UnmovableFrameFraction()*100)
		fmt.Printf("  unmovable 2MB blocks:     %5.1f%% of memory\n",
			st.UnmovableBlockFraction(contiguitas.Order2M)*100)
		fmt.Printf("  free 2MB contiguity:      %5.1f%% of free memory\n",
			st.FreeContigFraction(contiguitas.Order2M)*100)
		fmt.Printf("  compactable at 32MB:      %5.1f%% of memory\n",
			st.PotentialFraction(contiguitas.Order32M)*100)
		fmt.Printf("  THP coverage of the heap: %5.1f%%\n\n",
			runner.THPCoverage()*100)
	}
	fmt.Println("A handful of scattered unmovable pages poisons a much larger")
	fmt.Println("share of 2MB blocks under Linux; Contiguitas confines them.")
}
