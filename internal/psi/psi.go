// Package psi implements pressure-stall-information accounting in the
// style of the Linux kernel's PSI subsystem: the percentage of wall time
// some task wasted waiting on memory. Contiguitas extends PSI to track
// the movable and unmovable regions separately (§3.2); its resizing
// algorithm consumes the two per-region pressures.
//
// The simulator advances in discrete ticks. Each tick the kernel reports
// the fraction of the tick spent stalled on memory; the tracker keeps
// exponentially-decayed averages analogous to the kernel's avg10/60/300
// windows.
package psi

import (
	"fmt"
	"math"
)

// Tracker keeps an exponentially-weighted average of stall fractions.
type Tracker struct {
	halfLife float64 // ticks until a sample's weight halves
	decay    float64
	avg      float64
	total    float64 // lifetime stall ticks, for accounting
	ticks    uint64
}

// NewTracker creates a tracker whose average halves in halfLifeTicks.
func NewTracker(halfLifeTicks float64) *Tracker {
	if halfLifeTicks <= 0 {
		panic("psi: half life must be positive")
	}
	return &Tracker{
		halfLife: halfLifeTicks,
		decay:    math.Exp2(-1 / halfLifeTicks),
	}
}

// Tick records one tick with the given stalled fraction in [0, 1];
// out-of-range values are clamped.
func (t *Tracker) Tick(stalledFraction float64) {
	if stalledFraction < 0 {
		stalledFraction = 0
	} else if stalledFraction > 1 {
		stalledFraction = 1
	}
	t.avg = t.avg*t.decay + stalledFraction*(1-t.decay)
	t.total += stalledFraction
	t.ticks++
}

// Pressure returns the current windowed stall percentage in [0, 100].
func (t *Tracker) Pressure() float64 { return t.avg * 100 }

// TotalStallTicks returns the lifetime sum of stall fractions.
func (t *Tracker) TotalStallTicks() float64 { return t.total }

// Ticks returns how many ticks have been recorded.
func (t *Tracker) Ticks() uint64 { return t.ticks }

// String renders the tracker compactly.
func (t *Tracker) String() string {
	return fmt.Sprintf("psi{avg=%.3f%% total=%.1f ticks=%d}", t.Pressure(), t.total, t.ticks)
}

// Snapshot is a point-in-time copy of a tracker's observable state,
// safe to retain after the tracker moves on. A zero-tick tracker
// snapshots as all zeros.
type Snapshot struct {
	Pressure   float64 // windowed stall percentage, [0, 100]
	TotalStall float64 // lifetime sum of stall fractions, in ticks
	Ticks      uint64  // ticks recorded
}

// Snapshot captures the tracker's current state.
func (t *Tracker) Snapshot() Snapshot {
	return Snapshot{Pressure: t.Pressure(), TotalStall: t.total, Ticks: t.ticks}
}

// TrackerState is the full serializable state of a Tracker: everything
// needed to resume the exponentially-decayed average bit-for-bit. The
// half-life is configuration, not state — SetState assumes the tracker
// was constructed with the same half-life as the one exported.
type TrackerState struct {
	Avg   float64
	Total float64
	Ticks uint64
}

// State captures the tracker's mutable state for checkpointing.
func (t *Tracker) State() TrackerState {
	return TrackerState{Avg: t.avg, Total: t.total, Ticks: t.ticks}
}

// SetState restores mutable state captured by State.
func (t *Tracker) SetState(s TrackerState) {
	t.avg = s.Avg
	t.total = s.Total
	t.ticks = s.Ticks
}

// Region identifies which physical-memory region a pressure reading
// belongs to.
type Region uint8

const (
	RegionMovable Region = iota
	RegionUnmovable
	NumRegions
)

// String returns the printable region name.
func (r Region) String() string {
	switch r {
	case RegionMovable:
		return "movable"
	case RegionUnmovable:
		return "unmovable"
	}
	return fmt.Sprintf("region(%d)", uint8(r))
}

// Triple mirrors the kernel's three PSI windows (avg10, avg60, avg300):
// the same stall stream smoothed over three half-lives, so consumers can
// distinguish a transient spike from sustained pressure.
type Triple struct {
	Avg10  *Tracker
	Avg60  *Tracker
	Avg300 *Tracker
}

// NewTriple builds the three windows. tickMs converts the kernel-style
// window lengths (seconds) into simulation ticks (1 tick = tickMs ms).
func NewTriple(tickMs float64) *Triple {
	if tickMs <= 0 {
		tickMs = 1
	}
	perSecond := 1000 / tickMs
	return &Triple{
		Avg10:  NewTracker(10 * perSecond),
		Avg60:  NewTracker(60 * perSecond),
		Avg300: NewTracker(300 * perSecond),
	}
}

// Tick feeds one tick's stall fraction into all three windows.
func (t *Triple) Tick(stalledFraction float64) {
	t.Avg10.Tick(stalledFraction)
	t.Avg60.Tick(stalledFraction)
	t.Avg300.Tick(stalledFraction)
}

// Pressures returns the three window percentages (10s, 60s, 300s).
func (t *Triple) Pressures() (p10, p60, p300 float64) {
	return t.Avg10.Pressure(), t.Avg60.Pressure(), t.Avg300.Pressure()
}

// PerRegion tracks pressure separately for the movable and unmovable
// regions — the paper's extension of kernel PSI.
type PerRegion struct {
	trackers [NumRegions]*Tracker
	pending  [NumRegions]float64
}

// NewPerRegion creates per-region trackers with the given half-life.
func NewPerRegion(halfLifeTicks float64) *PerRegion {
	p := &PerRegion{}
	for i := range p.trackers {
		p.trackers[i] = NewTracker(halfLifeTicks)
	}
	return p
}

// AddStall accumulates stall time (in tick fractions) against a region
// within the current tick. Multiple events within one tick add up and
// are clamped at a full tick when the tick closes.
func (p *PerRegion) AddStall(r Region, fraction float64) {
	if fraction > 0 {
		p.pending[r] += fraction
	}
}

// EndTick closes the current tick, feeding the accumulated stall
// fractions into the trackers.
func (p *PerRegion) EndTick() {
	for i := range p.trackers {
		p.trackers[i].Tick(p.pending[i])
		p.pending[i] = 0
	}
}

// PerRegionState is the full serializable state of a PerRegion tracker.
// Pending stall fractions are included so a checkpoint taken mid-tick
// (before EndTick) still round-trips, though the simulator checkpoints
// at the tick barrier where they are always zero.
type PerRegionState struct {
	Trackers [NumRegions]TrackerState
	Pending  [NumRegions]float64
}

// State captures the per-region tracker state for checkpointing.
func (p *PerRegion) State() PerRegionState {
	var s PerRegionState
	for i, t := range p.trackers {
		s.Trackers[i] = t.State()
	}
	s.Pending = p.pending
	return s
}

// SetState restores state captured by State. The trackers must have been
// constructed with the same half-life as the exported ones.
func (p *PerRegion) SetState(s PerRegionState) {
	for i, t := range p.trackers {
		t.SetState(s.Trackers[i])
	}
	p.pending = s.Pending
}

// Pressure returns the windowed stall percentage for the region.
func (p *PerRegion) Pressure(r Region) float64 { return p.trackers[r].Pressure() }

// Pending returns the stall fraction accumulated against the region so
// far in the current (not yet closed) tick. The admission gate samples
// it at the tick barrier to feed its own short-half-life tracker.
func (p *PerRegion) Pending(r Region) float64 { return p.pending[r] }

// Tracker exposes the underlying tracker for a region.
func (p *PerRegion) Tracker(r Region) *Tracker { return p.trackers[r] }

// Snapshot captures the region's tracker state.
func (p *PerRegion) Snapshot(r Region) Snapshot { return p.trackers[r].Snapshot() }
