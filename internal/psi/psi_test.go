package psi

import (
	"math"
	"testing"
)

func TestTrackerRisesUnderStall(t *testing.T) {
	tr := NewTracker(10)
	for i := 0; i < 200; i++ {
		tr.Tick(1)
	}
	if p := tr.Pressure(); p < 99 {
		t.Fatalf("pressure after sustained stall = %v, want ~100", p)
	}
}

func TestTrackerDecays(t *testing.T) {
	tr := NewTracker(10)
	for i := 0; i < 100; i++ {
		tr.Tick(1)
	}
	high := tr.Pressure()
	for i := 0; i < 10; i++ {
		tr.Tick(0)
	}
	mid := tr.Pressure()
	// After exactly one half-life of zero samples, pressure halves.
	if math.Abs(mid-high/2) > 1 {
		t.Fatalf("pressure after one half-life = %v, want ~%v", mid, high/2)
	}
	for i := 0; i < 500; i++ {
		tr.Tick(0)
	}
	if p := tr.Pressure(); p > 0.01 {
		t.Fatalf("pressure should decay to ~0, got %v", p)
	}
}

func TestTrackerClampsInput(t *testing.T) {
	tr := NewTracker(5)
	tr.Tick(5)
	tr.Tick(-3)
	if tr.TotalStallTicks() != 1 {
		t.Fatalf("total stall = %v, want 1 (clamped)", tr.TotalStallTicks())
	}
	if tr.Ticks() != 2 {
		t.Fatalf("ticks = %d, want 2", tr.Ticks())
	}
}

func TestTrackerBounds(t *testing.T) {
	tr := NewTracker(3)
	for i := 0; i < 1000; i++ {
		tr.Tick(float64(i%2) * 0.7)
		if p := tr.Pressure(); p < 0 || p > 100 {
			t.Fatalf("pressure out of bounds: %v", p)
		}
	}
}

func TestNewTrackerPanicsOnBadHalfLife(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTracker(0)
}

func TestPerRegionIndependence(t *testing.T) {
	p := NewPerRegion(10)
	for i := 0; i < 100; i++ {
		p.AddStall(RegionUnmovable, 1)
		p.EndTick()
	}
	if p.Pressure(RegionUnmovable) < 99 {
		t.Fatalf("unmovable pressure = %v", p.Pressure(RegionUnmovable))
	}
	if p.Pressure(RegionMovable) != 0 {
		t.Fatalf("movable pressure = %v, want 0", p.Pressure(RegionMovable))
	}
}

func TestPerRegionAccumulatesWithinTick(t *testing.T) {
	p := NewPerRegion(10)
	p.AddStall(RegionMovable, 0.3)
	p.AddStall(RegionMovable, 0.4)
	p.EndTick()
	want := 0.7 * (1 - math.Exp2(-0.1)) * 100
	if got := p.Pressure(RegionMovable); math.Abs(got-want) > 1e-9 {
		t.Fatalf("pressure = %v, want %v", got, want)
	}
	// Pending resets after EndTick.
	p.EndTick()
	if p.Tracker(RegionMovable).Ticks() != 2 {
		t.Fatal("EndTick must always record a tick")
	}
}

func TestPerRegionClampsAtFullTick(t *testing.T) {
	// Multiple stall events within one tick accumulate but are clamped
	// at a full tick when fed to the tracker: total stall can never
	// exceed wall time.
	p := NewPerRegion(10)
	p.AddStall(RegionMovable, 0.8)
	p.AddStall(RegionMovable, 0.9)
	p.AddStall(RegionMovable, 2.5)
	p.EndTick()
	if total := p.Tracker(RegionMovable).TotalStallTicks(); total != 1 {
		t.Fatalf("total stall = %v, want 1 (clamped at a full tick)", total)
	}
	// Negative fractions are ignored at AddStall, not subtracted.
	p.AddStall(RegionMovable, -0.5)
	p.AddStall(RegionMovable, 0.25)
	p.EndTick()
	if total := p.Tracker(RegionMovable).TotalStallTicks(); total != 1.25 {
		t.Fatalf("total stall = %v, want 1.25", total)
	}
}

func TestTrackerHalfLifeParameterized(t *testing.T) {
	// The defining property of the decay constant: after saturating the
	// average, exactly halfLife ticks of zero samples halve it —
	// whatever the half-life.
	for _, halfLife := range []int{2, 10, 100} {
		tr := NewTracker(float64(halfLife))
		for i := 0; i < 100*halfLife; i++ {
			tr.Tick(1)
		}
		before := tr.Pressure()
		for i := 0; i < halfLife; i++ {
			tr.Tick(0)
		}
		after := tr.Pressure()
		if math.Abs(after-before/2) > before*0.01 {
			t.Fatalf("halfLife=%d: pressure %v -> %v, want ~%v", halfLife, before, after, before/2)
		}
	}
}

func TestSnapshotZeroTicks(t *testing.T) {
	// A tracker that never ticked snapshots as all zeros — consumers
	// (exporters, the resizer) must not see NaN or garbage at boot.
	tr := NewTracker(10)
	s := tr.Snapshot()
	if s != (Snapshot{}) {
		t.Fatalf("zero-tick snapshot = %+v, want zero value", s)
	}
	p := NewPerRegion(10)
	if got := p.Snapshot(RegionUnmovable); got != (Snapshot{}) {
		t.Fatalf("zero-tick region snapshot = %+v", got)
	}
}

func TestSnapshotTracksState(t *testing.T) {
	tr := NewTracker(10)
	tr.Tick(0.5)
	tr.Tick(0.25)
	s := tr.Snapshot()
	if s.Ticks != 2 || s.TotalStall != 0.75 || s.Pressure != tr.Pressure() {
		t.Fatalf("snapshot = %+v", s)
	}
	// The snapshot is a copy: the tracker moving on must not change it.
	tr.Tick(1)
	if s.Ticks != 2 {
		t.Fatal("snapshot mutated by later ticks")
	}
}

func TestRegionString(t *testing.T) {
	if RegionMovable.String() != "movable" || RegionUnmovable.String() != "unmovable" {
		t.Fatal("region names wrong")
	}
	if Region(9).String() == "" {
		t.Fatal("unknown region must stringify")
	}
}

func TestTripleWindows(t *testing.T) {
	tr := NewTriple(1) // 1ms ticks: windows 10000/60000/300000 ticks
	for i := 0; i < 5000; i++ {
		tr.Tick(1)
	}
	p10, p60, p300 := tr.Pressures()
	// Shorter windows react faster to the same stall burst.
	if !(p10 > p60 && p60 > p300) {
		t.Fatalf("window ordering broken: %v %v %v", p10, p60, p300)
	}
	for i := 0; i < 20000; i++ {
		tr.Tick(0)
	}
	q10, q60, _ := tr.Pressures()
	if q10 >= p10 || q60 >= p60 {
		t.Fatal("windows must decay when stalls stop")
	}
}

func TestNewTripleDefaultsTickMs(t *testing.T) {
	tr := NewTriple(0)
	tr.Tick(0.5)
	if tr.Avg10.Ticks() != 1 {
		t.Fatal("triple not ticking")
	}
}
