// Package resize implements the dynamic region-resizing policy of
// Contiguitas (Algorithm 1 in the paper). Given per-region memory
// pressure — the PSI extension of §3.2 — the policy decides the next
// target size of the unmovable region: expand when the unmovable region
// is under pressure while the movable region has slack, shrink in every
// other case, with coefficients that fine-tune how aggressively each
// direction reacts.
package resize

import "fmt"

// Coefficients fine-tune the expansion and shrinkage factors. The paper
// names them c_ue (unmovable-expand), c_me (movable-expand), c_us
// (unmovable-shrink) and c_ms (movable-shrink), chosen empirically from
// fleet-wide allocation patterns and shared by all workloads.
type Coefficients struct {
	UnmovExpand float64 // c_ue
	MovExpand   float64 // c_me
	UnmovShrink float64 // c_us
	MovShrink   float64 // c_ms
}

// DefaultCoefficients are conservative settings that expand quickly under
// genuine unmovable pressure but shrink gently, matching the paper's
// stated goal of keeping the unmovable region small without failing
// unmovable allocations.
var DefaultCoefficients = Coefficients{
	UnmovExpand: 0.10,
	MovExpand:   0.02,
	UnmovShrink: 0.02,
	MovShrink:   0.05,
}

// Thresholds are the pressure levels (percent of time stalled) above
// which a region is considered under memory pressure.
type Thresholds struct {
	Unmovable float64
	Movable   float64
}

// DefaultThresholds match the kernel's practical PSI trigger levels.
var DefaultThresholds = Thresholds{Unmovable: 1.0, Movable: 1.0}

// Input carries one evaluation of the resizing policy.
type Input struct {
	PressureUnmov float64 // per-region PSI pressure, percent
	PressureMov   float64
	Thresholds    Thresholds
	Coeff         Coefficients
	MemUnmov      uint64 // current unmovable-region size (any unit)
}

// Decision reports what the policy chose.
type Decision struct {
	Target uint64 // new unmovable-region size, same unit as MemUnmov
	Expand bool   // true when the region should grow
	Factor float64
}

// String renders the decision for logs.
func (d Decision) String() string {
	dir := "shrink"
	if d.Expand {
		dir = "expand"
	}
	return fmt.Sprintf("%s to %d (factor %.4f)", dir, d.Target, d.Factor)
}

// Resize is Algorithm 1, line for line. It expands the unmovable region
// when it is under pressure and the movable region is not; in all other
// cases it shrinks. The factor F combines how far each region's pressure
// sits from its threshold.
func Resize(in Input) Decision {
	th := in.Thresholds
	c := in.Coeff
	if in.PressureUnmov >= th.Unmovable && in.PressureMov < th.Movable {
		// Expand unmovable upon high pressure.
		f := in.PressureUnmov/th.Unmovable*c.UnmovExpand +
			th.Movable/max1(in.PressureMov)*c.MovExpand
		return Decision{
			Target: scale(in.MemUnmov, 1+f),
			Expand: true,
			Factor: f,
		}
	}
	// Shrink for all other cases.
	f := in.PressureMov/th.Movable*c.MovShrink +
		th.Unmovable/max1(in.PressureUnmov)*c.UnmovShrink
	return Decision{
		Target: scale(in.MemUnmov, 1-f),
		Expand: false,
		Factor: f,
	}
}

// max1 is the paper's max(pressure, 1) guard against division by zero.
func max1(p float64) float64 {
	if p < 1 {
		return 1
	}
	return p
}

// scale multiplies a size by a factor, clamping at zero.
func scale(mem uint64, factor float64) uint64 {
	if factor <= 0 {
		return 0
	}
	return uint64(float64(mem) * factor)
}

// Clamp bounds a target size to [lo, hi].
func Clamp(target, lo, hi uint64) uint64 {
	if target < lo {
		return lo
	}
	if target > hi {
		return hi
	}
	return target
}

// EmergencyStep sizes an emergency shrink of the unmovable region: the
// pressure ladder wants `want` pages back for the movable region, but
// the boundary may not drop below `floor` (the configured minimum
// unmovable size) and no single step may exceed `maxStep` (the same
// per-evaluation bound Algorithm 1 honors). Sizes are in pages measured
// from the region base; `align` rounds the step up to pageblock
// granularity before clamping. Returns 0 when no shrink is permitted.
func EmergencyStep(boundary, want, floor, maxStep, align uint64) uint64 {
	if boundary <= floor || want == 0 {
		return 0
	}
	step := want
	if align > 1 {
		step = (step + align - 1) / align * align
	}
	if room := boundary - floor; step > room {
		step = room
	}
	if maxStep > 0 && step > maxStep {
		step = maxStep
	}
	// Clamping may have broken alignment; round down so the boundary
	// stays pageblock-aligned (round to zero rather than exceed room).
	if align > 1 {
		step = step / align * align
	}
	return step
}
