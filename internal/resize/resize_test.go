package resize

import (
	"testing"
	"testing/quick"
)

func base(in *Input) {
	in.Thresholds = DefaultThresholds
	in.Coeff = DefaultCoefficients
	in.MemUnmov = 1 << 30
}

func TestExpandsUnderUnmovablePressure(t *testing.T) {
	in := Input{PressureUnmov: 5, PressureMov: 0}
	base(&in)
	d := Resize(in)
	if !d.Expand {
		t.Fatal("must expand when only the unmovable region is pressured")
	}
	if d.Target <= in.MemUnmov {
		t.Fatalf("target %d must exceed current %d", d.Target, in.MemUnmov)
	}
}

func TestShrinksWhenIdle(t *testing.T) {
	in := Input{PressureUnmov: 0, PressureMov: 0}
	base(&in)
	d := Resize(in)
	if d.Expand {
		t.Fatal("must shrink when nothing is pressured")
	}
	if d.Target >= in.MemUnmov {
		t.Fatalf("target %d must be below current %d", d.Target, in.MemUnmov)
	}
}

func TestShrinksUnderMovablePressure(t *testing.T) {
	in := Input{PressureUnmov: 0, PressureMov: 10}
	base(&in)
	d := Resize(in)
	if d.Expand {
		t.Fatal("must shrink when the movable region is pressured")
	}
	// Shrinking under movable pressure must be more aggressive than
	// shrinking when idle.
	idle := Input{PressureUnmov: 0, PressureMov: 0}
	base(&idle)
	if Resize(idle).Target < d.Target {
		t.Fatal("movable pressure must shrink harder than idle")
	}
}

func TestBothPressuredShrinks(t *testing.T) {
	// Algorithm 1's else-branch covers the both-pressured conflict: the
	// movable region (application memory) wins.
	in := Input{PressureUnmov: 10, PressureMov: 10}
	base(&in)
	if Resize(in).Expand {
		t.Fatal("both-pressured case must not expand")
	}
}

func TestExpansionScalesWithPressure(t *testing.T) {
	lo := Input{PressureUnmov: 2, PressureMov: 0}
	hi := Input{PressureUnmov: 20, PressureMov: 0}
	base(&lo)
	base(&hi)
	if Resize(hi).Target <= Resize(lo).Target {
		t.Fatal("higher unmovable pressure must expand more")
	}
}

func TestMax1Guard(t *testing.T) {
	// Zero pressures must not divide by zero: factor stays finite.
	in := Input{PressureUnmov: 0, PressureMov: 0}
	base(&in)
	d := Resize(in)
	if d.Factor <= 0 || d.Factor > 1 {
		t.Fatalf("factor = %v, want small positive", d.Factor)
	}
}

func TestPropertyTargetPositiveAndDirectional(t *testing.T) {
	f := func(pu, pm uint16) bool {
		in := Input{PressureUnmov: float64(pu % 100), PressureMov: float64(pm % 100)}
		base(&in)
		d := Resize(in)
		if d.Expand {
			return d.Target >= in.MemUnmov
		}
		return d.Target <= in.MemUnmov
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 10, 20) != 10 || Clamp(25, 10, 20) != 20 || Clamp(15, 10, 20) != 15 {
		t.Fatal("clamp wrong")
	}
}

func TestScaleClampsNegative(t *testing.T) {
	in := Input{PressureUnmov: 0, PressureMov: 1e9}
	base(&in)
	d := Resize(in)
	_ = d.String()
	if d.Target > in.MemUnmov {
		t.Fatal("huge movable pressure must not expand")
	}
}

func TestDecisionString(t *testing.T) {
	d := Decision{Target: 42, Expand: true, Factor: 0.5}
	if d.String() == "" {
		t.Fatal("empty string")
	}
}

func TestEmergencyStep(t *testing.T) {
	const pb = 512 // pageblock pages
	cases := []struct {
		name                               string
		boundary, want, floor, maxStep, in uint64
	}{
		{"at floor rejected", 2 * pb, pb, 2 * pb, 8 * pb, 0},
		{"below floor rejected", pb, pb, 2 * pb, 8 * pb, 0},
		{"zero want rejected", 8 * pb, 0, 2 * pb, 8 * pb, 0},
		{"want rounded up to pageblock", 8 * pb, 10, 2 * pb, 8 * pb, pb},
		{"aligned want passes through", 8 * pb, 2 * pb, 2 * pb, 8 * pb, 2 * pb},
		{"clamped to room above floor", 3 * pb, 4 * pb, 2 * pb, 8 * pb, pb},
		{"clamped to max step", 32 * pb, 16 * pb, 2 * pb, 4 * pb, 4 * pb},
		{"unaligned room rounds down", 2*pb + 100, 2 * pb, 2 * pb, 8 * pb, 0},
	}
	for _, c := range cases {
		if got := EmergencyStep(c.boundary, c.want, c.floor, c.maxStep, pb); got != c.in {
			t.Errorf("%s: EmergencyStep(%d,%d,%d,%d) = %d, want %d",
				c.name, c.boundary, c.want, c.floor, c.maxStep, got, c.in)
		}
	}
}

func TestEmergencyStepNeverCrossesFloor(t *testing.T) {
	const pb = 512
	f := func(boundary, want, floor, maxStep uint64) bool {
		boundary %= 1 << 24
		want %= 1 << 24
		floor %= 1 << 24
		maxStep %= 1 << 24
		step := EmergencyStep(boundary, want, floor, maxStep, pb)
		if step == 0 {
			return true
		}
		return step <= boundary-floor && step%pb == 0 &&
			(maxStep == 0 || step <= maxStep)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
