package mem

import (
	"reflect"
	"testing"

	"contiguitas/internal/stats"
)

// equivOrders exercises sub-pageblock orders (served from cached per-
// pageblock counts) alongside the paper's orders (pageblock groups).
var equivOrders = []int{0, 3, Order2M, Order4M, Order32M, Order1G}

func requireScanEquiv(t *testing.T, pm *PhysMem, step int, orders []int) {
	t.Helper()
	inc := pm.Scan(orders)
	full := pm.ScanFull(orders)
	if !reflect.DeepEqual(inc, full) {
		t.Fatalf("step %d: incremental scan diverged from full scan\nincremental: %+v\nfull:        %+v", step, inc, full)
	}
}

// TestScanEquivalenceRandomised drives a random mix of every frame-table
// mutation — allocations across migratetypes and sources, frees, pins,
// restamps, carves into limbo, claims, and donations — and requires the
// incremental ContigIndex-backed Scan to stay identical (DeepEqual, all
// fields) to the from-scratch ScanFull at every checkpoint.
func TestScanEquivalenceRandomised(t *testing.T) {
	pm, b := newTestBuddy(t, 64*testMB, PolicyLIFO, true)
	rng := stats.NewRNG(0x5EED5CA)

	type block struct {
		pfn    uint64
		order  int
		pinned bool
	}
	var live []block
	type carved struct {
		pfn   uint64
		order int
	}
	var limbo []carved

	findFreeAligned := func(order int) (uint64, bool) {
		bp := OrderPages(order)
		nblocks := pm.NPages / bp
		start := rng.Uint64() % nblocks
		for i := uint64(0); i < nblocks; i++ {
			base := ((start + i) % nblocks) * bp
			free := true
			for f := base; f < base+bp; f++ {
				if !pm.IsFree(f) {
					free = false
					break
				}
			}
			if free {
				return base, true
			}
		}
		return 0, false
	}

	mts := []MigrateType{MigrateMovable, MigrateUnmovable, MigrateReclaimable}
	srcs := []Source{SrcUser, SrcSlab, SrcNetworking, SrcPageTable, SrcFilesystem}

	for step := 0; step < 6000; step++ {
		switch r := rng.Float64(); {
		case r < 0.40:
			order := rng.Intn(11)
			mt := mts[rng.Intn(len(mts))]
			src := srcs[rng.Intn(len(srcs))]
			if pfn, ok := b.Alloc(order, mt, src); ok {
				live = append(live, block{pfn, order, false})
			}
		case r < 0.65 && len(live) > 0:
			i := rng.Intn(len(live))
			if live[i].pinned {
				pm.SetPinned(live[i].pfn, false)
			}
			b.Free(live[i].pfn)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		case r < 0.75 && len(live) > 0:
			i := rng.Intn(len(live))
			live[i].pinned = !live[i].pinned
			pm.SetPinned(live[i].pfn, live[i].pinned)
		case r < 0.82 && len(live) > 0:
			i := rng.Intn(len(live))
			pm.Restamp(live[i].pfn, live[i].order, mts[rng.Intn(len(mts))], srcs[rng.Intn(len(srcs))])
		case r < 0.90:
			order := rng.Intn(7)
			if base, ok := findFreeAligned(order); ok {
				if err := b.Carve(base, OrderPages(order)); err != nil {
					t.Fatalf("step %d: carve of verified-free block: %v", step, err)
				}
				limbo = append(limbo, carved{base, order})
			}
		case len(limbo) > 0:
			i := rng.Intn(len(limbo))
			c := limbo[i]
			limbo[i] = limbo[len(limbo)-1]
			limbo = limbo[:len(limbo)-1]
			if rng.Bool(0.5) {
				b.ClaimCarved(c.pfn, c.order, mts[rng.Intn(len(mts))], srcs[rng.Intn(len(srcs))])
				live = append(live, block{c.pfn, c.order, false})
			} else {
				b.Donate(c.pfn, OrderPages(c.order))
			}
		}
		if step%500 == 499 {
			requireScanEquiv(t, pm, step, equivOrders)
		}
	}
	requireScanEquiv(t, pm, -1, ScanOrders)

	// Consecutive scans with no mutations in between must also agree
	// (the fully-clean fast path).
	requireScanEquiv(t, pm, -2, equivOrders)

	// A forced cold rescan from an invalidated index must land on the
	// same result again.
	warm := pm.Scan(equivOrders)
	pm.DirtyAll()
	cold := pm.Scan(equivOrders)
	if !reflect.DeepEqual(warm, cold) {
		t.Fatalf("cold rescan diverged from warm scan\nwarm: %+v\ncold: %+v", warm, cold)
	}
}

// TestScanParallelRebuildDeterministic forces the sharded parallel
// rebuild path (dirty count above parallelDirtyThreshold) and checks it
// produces exactly the sequential result, twice in a row.
func TestScanParallelRebuildDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("5 GB frame table")
	}
	const size = 5 << 30 // 2560 pageblocks > parallelDirtyThreshold
	pm := NewPhysMem(size)
	b := NewBuddy(pm, 0, pm.NPages, PolicyLIFO, true, MigrateMovable)
	rng := stats.NewRNG(42)
	var live []uint64
	for i := 0; i < 30000; i++ {
		if rng.Bool(0.6) || len(live) == 0 {
			mt := MigrateMovable
			if rng.Bool(0.25) {
				mt = MigrateUnmovable
			}
			if pfn, ok := b.Alloc(rng.Intn(10), mt, SrcUser); ok {
				live = append(live, pfn)
			}
		} else {
			j := rng.Intn(len(live))
			b.Free(live[j])
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	if pm.NumPageblocks() <= parallelDirtyThreshold {
		t.Fatalf("test machine too small to force the parallel path: %d pageblocks", pm.NumPageblocks())
	}

	full := pm.ScanFull(equivOrders)
	pm.DirtyAll()
	first := pm.Scan(equivOrders) // parallel: dirtyCount == npb > threshold
	pm.DirtyAll()
	second := pm.Scan(equivOrders)
	if !reflect.DeepEqual(first, full) {
		t.Fatalf("parallel rebuild diverged from full scan\nparallel: %+v\nfull:     %+v", first, full)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("parallel rebuild not deterministic\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

// TestPageblockInfoAt checks the on-demand single-pageblock refresh
// against a frame walk, before and after mutations.
func TestPageblockInfoAt(t *testing.T) {
	pm, b := newTestBuddy(t, 8*testMB, PolicyLIFO, true)
	rng := stats.NewRNG(7)
	var live []uint64
	for i := 0; i < 800; i++ {
		mt := MigrateMovable
		if rng.Bool(0.3) {
			mt = MigrateUnmovable
		}
		if pfn, ok := b.Alloc(rng.Intn(6), mt, SrcSlab); ok {
			live = append(live, pfn)
		}
	}
	for _, pfn := range live {
		if rng.Bool(0.5) {
			b.Free(pfn)
		}
	}
	for pb := uint64(0); pb < pm.NumPageblocks(); pb++ {
		info := pm.PageblockInfoAt(pb * PageblockPages)
		var wantFree, wantUnmov, wantLimbo uint64
		for i := uint64(0); i < PageblockPages; i++ {
			p := pb*PageblockPages + i
			switch {
			case pm.IsFree(p):
				wantFree++
			case metaCov(pm.meta[p]) < 0:
				wantLimbo++
			default:
				if pm.isUnmovableFrame(p) {
					wantUnmov++
				}
			}
		}
		if info.FreePages != wantFree || info.UnmovFrames != wantUnmov || info.LimboFrames != wantLimbo {
			t.Fatalf("pageblock %d: info %+v, frame walk free=%d unmov=%d limbo=%d",
				pb, info, wantFree, wantUnmov, wantLimbo)
		}
	}
}

// TestAllocHead cross-checks the O(1) cov-based covering-head lookup
// against a brute-force search over heads.
func TestAllocHead(t *testing.T) {
	pm, b := newTestBuddy(t, 8*testMB, PolicyLIFO, true)
	rng := stats.NewRNG(11)
	type blk struct {
		pfn   uint64
		order int
	}
	var live []blk
	for i := 0; i < 500; i++ {
		o := rng.Intn(10)
		if pfn, ok := b.Alloc(o, MigrateMovable, SrcUser); ok {
			live = append(live, blk{pfn, o})
		}
	}
	covered := make(map[uint64]uint64) // frame -> head
	for _, bl := range live {
		for i := uint64(0); i < OrderPages(bl.order); i++ {
			covered[bl.pfn+i] = bl.pfn
		}
	}
	for p := uint64(0); p < pm.NPages; p++ {
		head, ok := pm.AllocHead(p)
		wantHead, wantOK := covered[p]
		if ok != wantOK || (ok && head != wantHead) {
			t.Fatalf("frame %d: AllocHead=(%d,%v), want (%d,%v)", p, head, ok, wantHead, wantOK)
		}
	}
}
