package mem

import (
	"fmt"
	"math/bits"
)

// AllocPolicy selects the order in which free blocks of equal order are
// handed out.
type AllocPolicy uint8

const (
	// PolicyLIFO returns the most recently freed block first, like Linux.
	PolicyLIFO AllocPolicy = iota
	// PolicyLowestPFN returns the lowest-addressed block first. The
	// Contiguitas unmovable region uses it so long-lived allocations
	// land far from the region boundary (§3.2).
	PolicyLowestPFN
	// PolicyHighestPFN returns the highest-addressed block first. The
	// Contiguitas movable region uses it so the low end (adjacent to
	// the boundary) stays empty and cheap to take over.
	PolicyHighestPFN
)

// Buddy is a binary buddy allocator over the PFN range [Start, End) of a
// shared frame table. Free blocks are naturally aligned powers of two;
// coalescing never crosses the range bounds, so two Buddy instances over
// disjoint ranges of the same PhysMem behave as independent regions —
// exactly the property Contiguitas' confinement needs.
type Buddy struct {
	pm         *PhysMem
	start, end uint64

	lists  [MaxOrder + 1][NumMigrateTypes]freeList
	policy AllocPolicy

	// freeByList counts the free pages currently sitting on each
	// migratetype's lists (not the same as pages in pageblocks of that
	// type once stealing has occurred).
	freeByList [NumMigrateTypes]uint64
	freeTotal  uint64

	// blockCount counts the free blocks on each (order, migratetype)
	// list; mtMask[mt] has bit o set iff blockCount[o][mt] > 0. They
	// make LargestFreeOrder and FreeBlocks O(1), and let the allocation
	// paths jump straight to the next non-empty list with one bit scan
	// instead of probing every order (the probe loops dominated
	// overcommitted study profiles, where most allocations fail).
	blockCount [MaxOrder + 1][NumMigrateTypes]uint32
	mtMask     [NumMigrateTypes]uint32

	// fallback enables Linux-style stealing between migratetypes. It is
	// on for the Linux baseline (and is the mechanism that scatters
	// unmovable allocations) and off for Contiguitas regions.
	fallback bool

	// stealWholeBlocks records how many fallback steals converted an
	// entire pageblock, versus polluted one (scatter events).
	StealsConverting uint64
	StealsPolluting  uint64
}

// fallbackOrder mirrors Linux's fallbacks[] table: which other
// migratetypes an allocation may steal from, in preference order.
var fallbackOrder = [NumMigrateTypes][]MigrateType{
	MigrateUnmovable:   {MigrateReclaimable, MigrateMovable},
	MigrateReclaimable: {MigrateUnmovable, MigrateMovable},
	MigrateMovable:     {MigrateReclaimable, MigrateUnmovable},
}

// NewBuddy creates a buddy allocator over [start, end) of pm, donating the
// whole range as free memory. Every pageblock fully inside the range is
// stamped with initialMT. The policy selects same-order block ordering;
// fallback enables inter-migratetype stealing.
func NewBuddy(pm *PhysMem, start, end uint64, policy AllocPolicy, fallback bool, initialMT MigrateType) *Buddy {
	if end > pm.NPages || start >= end {
		// Boot-time configuration validation, not a runtime error path:
		// region bounds are fixed by Kernel.New before any workload runs.
		panic(fmt.Sprintf("mem: invalid buddy range [%d, %d)", start, end))
	}
	b := &Buddy{pm: pm, start: start, end: end, fallback: fallback, policy: policy}
	for o := 0; o <= MaxOrder; o++ {
		for mt := 0; mt < NumMigrateTypes; mt++ {
			switch policy {
			case PolicyLIFO:
				b.lists[o][mt] = &lifoList{}
			case PolicyLowestPFN:
				b.lists[o][mt] = &heapList{}
			case PolicyHighestPFN:
				b.lists[o][mt] = &heapList{desc: true}
			default:
				// Boot-time configuration validation: AllocPolicy is a
				// closed enum chosen by Kernel.New, never workload input.
				panic("mem: unknown alloc policy")
			}
		}
	}
	for pb := start / PageblockPages; pb < (end+PageblockPages-1)/PageblockPages; pb++ {
		pm.pbMT[pb] = uint8(initialMT)
	}
	if err := b.Donate(start, end-start); err != nil {
		// Provably unreachable: the donated range equals the region
		// bounds validated above.
		panic(err)
	}
	return b
}

// Start returns the inclusive lower PFN bound of the region.
func (b *Buddy) Start() uint64 { return b.start }

// End returns the exclusive upper PFN bound of the region.
func (b *Buddy) End() uint64 { return b.end }

// Pages returns the number of frames the region spans.
func (b *Buddy) Pages() uint64 { return b.end - b.start }

// Owns reports whether pfn falls inside the region.
func (b *Buddy) Owns(pfn uint64) bool { return pfn >= b.start && pfn < b.end }

// FreePages returns the total number of free frames in the region.
func (b *Buddy) FreePages() uint64 { return b.freeTotal }

// FreePagesOf returns the free frames currently on mt's lists.
func (b *Buddy) FreePagesOf(mt MigrateType) uint64 { return b.freeByList[mt] }

// LargestFreeOrder returns the order of the largest free block, or -1 when
// the region is completely allocated. O(1) via the maintained order masks.
func (b *Buddy) LargestFreeOrder() int {
	var m uint32
	for mt := 0; mt < NumMigrateTypes; mt++ {
		m |= b.mtMask[mt]
	}
	return bits.Len32(m) - 1
}

// FreeBlocks returns the number of free blocks of exactly the given order
// across all migratetype lists. O(1) via the maintained histogram.
func (b *Buddy) FreeBlocks(order int) int {
	n := 0
	for mt := 0; mt < NumMigrateTypes; mt++ {
		n += int(b.blockCount[order][mt])
	}
	return n
}

// noteBlockAdd records a block entering the (order, mt) free list.
func (b *Buddy) noteBlockAdd(order int, mt MigrateType) {
	b.blockCount[order][mt]++
	b.mtMask[mt] |= 1 << uint(order)
}

// noteBlockDel records a block leaving the (order, mt) free list.
func (b *Buddy) noteBlockDel(order int, mt MigrateType) {
	b.blockCount[order][mt]--
	if b.blockCount[order][mt] == 0 {
		b.mtMask[mt] &^= 1 << uint(order)
	}
}

// pushFree places a free block on listMT's list of the given order and
// records the owning list in the frame table (pm.mt doubles as the
// owning-list tag for free heads).
func (b *Buddy) pushFree(pfn uint64, order int, listMT MigrateType) {
	b.pm.setFreeHead(pfn, order, listMT)
	b.lists[order][listMT].push(b.pm, pfn)
	b.freeByList[listMT] += OrderPages(order)
	b.freeTotal += OrderPages(order)
	b.noteBlockAdd(order, listMT)
}

// takeFree removes a known free head from its list without changing frame
// marks; the caller re-stamps the block.
func (b *Buddy) takeFree(pfn uint64) (order int, listMT MigrateType) {
	m := b.pm.meta[pfn]
	order = metaOrder(m)
	listMT = metaMT(m)
	b.lists[order][listMT].remove(b.pm, pfn)
	b.freeByList[listMT] -= OrderPages(order)
	b.freeTotal -= OrderPages(order)
	b.noteBlockDel(order, listMT)
	return order, listMT
}

// popFree pops the preferred free block of (order, mt), if any.
func (b *Buddy) popFree(order int, mt MigrateType) (uint64, bool) {
	pfn, ok := b.lists[order][mt].pop(b.pm)
	if !ok {
		return 0, false
	}
	b.freeByList[mt] -= OrderPages(order)
	b.freeTotal -= OrderPages(order)
	b.noteBlockDel(order, mt)
	return pfn, true
}

// Alloc allocates a block of the given order for migratetype mt and
// source src, returning its head PFN. It fails (ok == false) when no
// block of sufficient size exists even after fallback stealing.
func (b *Buddy) Alloc(order int, mt MigrateType, src Source) (pfn uint64, ok bool) {
	if order < 0 || order > MaxOrder {
		// An impossible order can never be satisfied; report it as an
		// ordinary allocation failure rather than crashing the caller.
		return 0, false
	}
	pfn, ok = b.allocFrom(order, mt)
	if !ok && b.fallback {
		if b.steal(order, mt) {
			pfn, ok = b.allocFrom(order, mt)
		}
	}
	if !ok {
		return 0, false
	}
	b.pm.setAllocated(pfn, order, mt, src)
	return pfn, true
}

// allocFrom serves an allocation from mt's own lists, splitting a larger
// block when necessary (remainders stay on mt's lists, as in Linux). The
// order mask jumps straight to the smallest non-empty qualifying list.
func (b *Buddy) allocFrom(order int, mt MigrateType) (uint64, bool) {
	avail := b.mtMask[mt] >> uint(order) << uint(order)
	if avail == 0 {
		return 0, false
	}
	o := bits.TrailingZeros32(avail)
	pfn, ok := b.popFree(o, mt)
	if ok {
		// No clearBlock here: every frame of the popped block is restamped
		// before Alloc returns — the peeled halves by pushFree/setFreeHead
		// below, the served block by the caller's setAllocated — so the
		// intermediate limbo pass would be pure overhead on the hot path.
		for o > order {
			o--
			if b.policy == PolicyHighestPFN {
				// Keep the upper half so allocations stay at the top
				// of the region, away from the boundary below.
				b.pushFree(pfn, o, mt)
				pfn += OrderPages(o)
			} else {
				b.pushFree(pfn+OrderPages(o), o, mt)
			}
		}
		return pfn, true
	}
	return 0, false
}

// steal implements Linux's __rmqueue_fallback: take the largest available
// block from a fallback migratetype. Blocks of at least half a pageblock
// convert the pageblocks they span to mt (concentrating the damage);
// smaller steals leave the pageblock type untouched — this is the scatter
// event that plants, e.g., one unmovable 4 KB page inside a movable 2 MB
// block and defeats compaction (§2.5).
func (b *Buddy) steal(order int, mt MigrateType) bool {
	// Largest qualifying order across the fallbacks; earlier fallbacks
	// win ties — identical to the original order-major, fallback-minor
	// probe loop, found with two bit scans instead of ~2*MaxOrder pops.
	bestO := -1
	bestFB := MigrateType(0)
	for _, fb := range fallbackOrder[mt] {
		if m := b.mtMask[fb] >> uint(order) << uint(order); m != 0 {
			if o := bits.Len32(m) - 1; o > bestO {
				bestO, bestFB = o, fb
			}
		}
	}
	if bestO < 0 {
		return false
	}
	o := bestO
	pfn, _ := b.popFree(o, bestFB)
	if o >= PageblockOrder-1 {
		// Claim: convert the covered pageblocks to mt and requeue the
		// block on mt's list.
		first := pfn / PageblockPages
		last := (pfn + OrderPages(o) - 1) / PageblockPages
		for pb := first; pb <= last; pb++ {
			b.pm.pbMT[pb] = uint8(mt)
		}
		b.StealsConverting++
	} else {
		// Pollute: hand the block to mt's list without converting the
		// pageblock.
		b.StealsPolluting++
	}
	b.freeByList[mt] += OrderPages(o)
	b.freeTotal += OrderPages(o)
	b.pm.setHeadMT(pfn, mt)
	b.lists[o][mt].push(b.pm, pfn)
	b.noteBlockAdd(o, mt)
	return true
}

// Free releases the allocated block headed at pfn, coalescing with free
// buddies. The merged block lands on the list of its head pageblock's
// migratetype, as in Linux. A PFN outside the region or not heading an
// allocated block returns a typed error and changes nothing.
func (b *Buddy) Free(pfn uint64) error {
	if !b.Owns(pfn) {
		return fmt.Errorf("%w: Free(%d) outside [%d, %d)", ErrOutOfRange, pfn, b.start, b.end)
	}
	m := b.pm.meta[pfn]
	order := metaOrder(m)
	if order < 0 || m&flagFree != 0 {
		return fmt.Errorf("%w: Free(%d)", ErrNotAllocated, pfn)
	}
	// The block keeps its allocated stamps until freeBlock's final
	// pushFree restamps the whole merged block; the merge checks only
	// ever inspect buddy blocks, never the block being freed.
	b.freeBlock(pfn, order)
	return nil
}

// freeBlock inserts a (currently unmarked) block as free, coalescing
// upward while the buddy block is free, same-order, and inside the region.
func (b *Buddy) freeBlock(pfn uint64, order int) {
	for order < MaxOrder {
		buddy := pfn ^ OrderPages(order)
		if buddy < b.start || buddy+OrderPages(order) > b.end {
			break
		}
		bm := b.pm.meta[buddy]
		if bm&(flagFree|flagHead) != flagFree|flagHead || metaOrder(bm) != order {
			break
		}
		// No clearBlock of the absorbed buddy: the merged block's final
		// setFreeHead restamps every frame it covers.
		b.takeFree(buddy)
		if buddy < pfn {
			pfn = buddy
		}
		order++
	}
	b.pushFree(pfn, order, b.pm.PageblockMT(pfn))
}

// Donate adds the frame range [start, start+n) to the region as free
// memory, splitting it into maximal naturally-aligned blocks and
// coalescing with existing free neighbours. The range must lie inside
// the region bounds and must not currently be marked free or allocated;
// an out-of-range donation returns a typed error and changes nothing.
func (b *Buddy) Donate(start, n uint64) error {
	if start < b.start || start+n > b.end {
		return fmt.Errorf("%w: Donate [%d, %d) outside [%d, %d)", ErrOutOfRange, start, start+n, b.start, b.end)
	}
	p := start
	end := start + n
	for p < end {
		o := maxAlignedOrder(p, end-p)
		b.freeBlock(p, o)
		p += OrderPages(o)
	}
	return nil
}

// maxAlignedOrder returns the largest order such that a block at pfn is
// naturally aligned and fits within avail pages (capped at MaxOrder).
func maxAlignedOrder(pfn, avail uint64) int {
	o := 0
	for o < MaxOrder {
		next := o + 1
		if pfn&(OrderPages(next)-1) != 0 || OrderPages(next) > avail {
			break
		}
		o = next
	}
	return o
}

// Carve removes the fully-free frame range [start, start+n) from the
// region's free lists, leaving the frames in limbo (neither free nor
// allocated) so the caller can donate them to another region. It returns
// an error if any frame in the range is not free. Partially-overlapping
// free blocks are split; their out-of-range remainders stay free.
func (b *Buddy) Carve(start, n uint64) error {
	if start < b.start || start+n > b.end {
		return fmt.Errorf("mem: carve range [%d, %d) outside region [%d, %d)", start, start+n, b.start, b.end)
	}
	end := start + n
	for p := start; p < end; p++ {
		if !b.pm.IsFree(p) {
			return fmt.Errorf("mem: carve: frame %d is not free", p)
		}
	}
	for p := start; p < end; {
		head, order := b.findFreeHead(p)
		b.takeFree(head)
		b.pm.clearBlock(head, order)
		blockEnd := head + OrderPages(order)
		// Re-free the portions of the block outside [start, end).
		if head < start {
			b.donateRaw(head, start-head)
		}
		if blockEnd > end {
			b.donateRaw(end, blockEnd-end)
		}
		p = blockEnd
	}
	return nil
}

// donateRaw re-inserts a cleared range as free blocks (no bounds check
// beyond region ownership; used by Carve for remainders).
func (b *Buddy) donateRaw(start, n uint64) {
	p := start
	end := start + n
	for p < end {
		o := maxAlignedOrder(p, end-p)
		b.freeBlock(p, o)
		p += OrderPages(o)
	}
}

// findFreeHead locates the free block head covering pfn. The covering
// order is stamped on every frame (pm.cov) and free blocks are naturally
// aligned, so the head is pfn rounded down to the block size: O(1).
func (b *Buddy) findFreeHead(pfn uint64) (head uint64, order int) {
	m := b.pm.meta[pfn]
	o := metaCov(m)
	if o < 0 || m&flagFree == 0 {
		// Provably unreachable: Carve verified every frame in the range
		// is free before walking it, and free frames always carry a
		// covering-order stamp (CheckInvariants enforces both).
		panic(fmt.Sprintf("mem: findFreeHead(%d): no covering free block", pfn))
	}
	return pfn &^ (OrderPages(o) - 1), o
}

// ClaimCarved stamps a previously carved (limbo) range as an allocated
// block of the given order. The range must be order-aligned, inside the
// region, and fully in limbo (neither free nor allocated); violations
// return a typed error and change nothing. It is how compaction claims
// the block it just evacuated.
func (b *Buddy) ClaimCarved(pfn uint64, order int, mt MigrateType, src Source) error {
	if pfn&(OrderPages(order)-1) != 0 {
		return fmt.Errorf("%w: ClaimCarved(%d) order %d", ErrMisaligned, pfn, order)
	}
	if pfn < b.start || pfn+OrderPages(order) > b.end {
		return fmt.Errorf("%w: ClaimCarved [%d, %d)", ErrOutOfRange, pfn, pfn+OrderPages(order))
	}
	for i := uint64(0); i < OrderPages(order); i++ {
		p := pfn + i
		if b.pm.meta[p]&(flagFree|flagHead) != 0 || metaOrder(b.pm.meta[p]) >= 0 {
			return fmt.Errorf("%w: ClaimCarved frame %d", ErrNotInLimbo, p)
		}
	}
	b.pm.setAllocated(pfn, order, mt, src)
	return nil
}

// AdjustBounds changes the region's bounds after a boundary move. The new
// range must be non-empty and within the frame table; violations return
// a typed error and leave the bounds untouched. The caller is
// responsible for having carved frames leaving the region and donating
// frames entering it.
func (b *Buddy) AdjustBounds(start, end uint64) error {
	if end > b.pm.NPages || start >= end {
		return fmt.Errorf("%w: AdjustBounds(%d, %d)", ErrBadBounds, start, end)
	}
	b.start, b.end = start, end
	return nil
}

// CheckInvariants validates internal consistency: free accounting matches
// the lists, every listed head is marked free with the right order, and
// no two blocks overlap. It is O(region size) and intended for tests.
func (b *Buddy) CheckInvariants() error {
	var listed uint64
	seen := make(map[uint64]bool)
	for o := 0; o <= MaxOrder; o++ {
		for mt := 0; mt < NumMigrateTypes; mt++ {
			blocksAt := b.lists[o][mt].len()
			if blocksAt != int(b.blockCount[o][mt]) {
				return fmt.Errorf("order %d mt %d histogram %d, list holds %d blocks", o, mt, b.blockCount[o][mt], blocksAt)
			}
			if got := b.mtMask[mt]&(1<<uint(o)) != 0; got != (blocksAt > 0) {
				return fmt.Errorf("order %d mt %d mask bit %v, list holds %d blocks", o, mt, got, blocksAt)
			}
		}
		for mt := 0; mt < NumMigrateTypes; mt++ {
			for _, pfn := range b.lists[o][mt].peekAll() {
				if !b.Owns(pfn) {
					return fmt.Errorf("free head %d outside region", pfn)
				}
				if !b.pm.IsFree(pfn) || !b.pm.IsHead(pfn) {
					return fmt.Errorf("free head %d not marked free+head", pfn)
				}
				if metaOrder(b.pm.meta[pfn]) != o {
					return fmt.Errorf("free head %d order %d, listed at %d", pfn, metaOrder(b.pm.meta[pfn]), o)
				}
				if metaMT(b.pm.meta[pfn]) != MigrateType(mt) {
					return fmt.Errorf("free head %d list tag %d, on list %d", pfn, metaMT(b.pm.meta[pfn]), mt)
				}
				if pfn&(OrderPages(o)-1) != 0 {
					return fmt.Errorf("free head %d misaligned for order %d", pfn, o)
				}
				for i := uint64(0); i < OrderPages(o); i++ {
					if seen[pfn+i] {
						return fmt.Errorf("frame %d covered twice", pfn+i)
					}
					seen[pfn+i] = true
					if !b.pm.IsFree(pfn + i) {
						return fmt.Errorf("tail frame %d of free block not marked free", pfn+i)
					}
					if metaCov(b.pm.meta[pfn+i]) != o {
						return fmt.Errorf("frame %d cov %d, covering free order %d", pfn+i, metaCov(b.pm.meta[pfn+i]), o)
					}
				}
				listed += OrderPages(o)
			}
		}
	}
	if listed != b.freeTotal {
		return fmt.Errorf("freeTotal %d, lists hold %d", b.freeTotal, listed)
	}
	var byList uint64
	for mt := 0; mt < NumMigrateTypes; mt++ {
		byList += b.freeByList[mt]
	}
	if byList != b.freeTotal {
		return fmt.Errorf("freeByList sums to %d, freeTotal %d", byList, b.freeTotal)
	}
	for p := b.start; p < b.end; p++ {
		if b.pm.IsFree(p) && !seen[p] {
			return fmt.Errorf("frame %d marked free but not on any list", p)
		}
	}
	return nil
}
