package mem

import (
	"strings"
	"testing"
	"testing/quick"

	"contiguitas/internal/stats"
)

const testMB = 1 << 20

// newTestBuddy builds a small machine with one buddy over all of it.
func newTestBuddy(t *testing.T, bytes uint64, policy AllocPolicy, fallback bool) (*PhysMem, *Buddy) {
	t.Helper()
	pm := NewPhysMem(bytes)
	b := NewBuddy(pm, 0, pm.NPages, policy, fallback, MigrateMovable)
	return pm, b
}

func TestOrderGeometry(t *testing.T) {
	if OrderBytes(Order4K) != 4096 {
		t.Fatal("order 0 must be 4KB")
	}
	if OrderBytes(Order2M) != 2*testMB {
		t.Fatal("order 9 must be 2MB")
	}
	if OrderBytes(Order1G) != 1024*testMB {
		t.Fatal("order 18 must be 1GB")
	}
	if BytesToPages(1) != 1 || BytesToPages(4096) != 1 || BytesToPages(4097) != 2 {
		t.Fatal("BytesToPages rounding wrong")
	}
}

func TestNewPhysMemValidation(t *testing.T) {
	for _, bad := range []uint64{0, 4096, 2*testMB + 4096} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewPhysMem(%d) must panic", bad)
				}
			}()
			NewPhysMem(bad)
		}()
	}
}

func TestAllocFreeRoundTrip(t *testing.T) {
	pm, b := newTestBuddy(t, 16*testMB, PolicyLIFO, false)
	total := b.FreePages()
	pfn, ok := b.Alloc(Order2M, MigrateMovable, SrcUser)
	if !ok {
		t.Fatal("alloc failed")
	}
	if b.FreePages() != total-PageblockPages {
		t.Fatalf("free pages %d, want %d", b.FreePages(), total-PageblockPages)
	}
	if pm.BlockOrder(pfn) != Order2M || pm.IsFree(pfn) {
		t.Fatal("allocated block not marked")
	}
	if pm.PageMT(pfn) != MigrateMovable || pm.PageSource(pfn) != SrcUser {
		t.Fatal("mt/src not stamped")
	}
	b.Free(pfn)
	if b.FreePages() != total {
		t.Fatalf("free pages %d after free, want %d", b.FreePages(), total)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCoalescingRestoresMaxBlock(t *testing.T) {
	_, b := newTestBuddy(t, 8*testMB, PolicyLIFO, false)
	var pfns []uint64
	for {
		p, ok := b.Alloc(Order4K, MigrateMovable, SrcUser)
		if !ok {
			break
		}
		pfns = append(pfns, p)
	}
	if b.FreePages() != 0 {
		t.Fatalf("free pages %d after exhausting", b.FreePages())
	}
	for _, p := range pfns {
		b.Free(p)
	}
	// Everything freed: should coalesce back into order-11 (8MB) blocks.
	if got := b.LargestFreeOrder(); got != 11 {
		t.Fatalf("largest free order %d, want 11", got)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocSplitsLargerBlocks(t *testing.T) {
	_, b := newTestBuddy(t, 4*testMB, PolicyLIFO, false)
	p1, ok := b.Alloc(Order4K, MigrateMovable, SrcUser)
	if !ok {
		t.Fatal("alloc failed")
	}
	// Splitting one 2MB+ block must leave a ladder of free blocks.
	if b.FreePages() != 4*testMB/PageSize-1 {
		t.Fatalf("free pages %d", b.FreePages())
	}
	p2, ok := b.Alloc(Order4K, MigrateMovable, SrcUser)
	if !ok || p1 == p2 {
		t.Fatal("second alloc failed or duplicated")
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocFailsWhenExhausted(t *testing.T) {
	_, b := newTestBuddy(t, 2*testMB, PolicyLIFO, false)
	if _, ok := b.Alloc(Order2M, MigrateMovable, SrcUser); !ok {
		t.Fatal("first 2MB alloc should succeed")
	}
	if _, ok := b.Alloc(Order4K, MigrateMovable, SrcUser); ok {
		t.Fatal("alloc must fail when memory exhausted")
	}
}

func TestAllocOrderTooLargeForMachine(t *testing.T) {
	_, b := newTestBuddy(t, 16*testMB, PolicyLIFO, false)
	if _, ok := b.Alloc(Order1G, MigrateMovable, SrcUser); ok {
		t.Fatal("1GB alloc on a 16MB machine must fail")
	}
}

func TestNoFallbackIsolatesMigratetypes(t *testing.T) {
	_, b := newTestBuddy(t, 8*testMB, PolicyLIFO, false)
	// Everything was donated to the Movable lists; without fallback an
	// unmovable allocation must fail outright.
	if _, ok := b.Alloc(Order4K, MigrateUnmovable, SrcSlab); ok {
		t.Fatal("unmovable alloc must fail without fallback")
	}
}

func TestFallbackStealConvertsPageblock(t *testing.T) {
	pm, b := newTestBuddy(t, 8*testMB, PolicyLIFO, true)
	pfn, ok := b.Alloc(Order4K, MigrateUnmovable, SrcSlab)
	if !ok {
		t.Fatal("fallback alloc failed")
	}
	if b.StealsConverting == 0 {
		t.Fatal("stealing a large block must convert a pageblock")
	}
	if pm.PageblockMT(pfn) != MigrateUnmovable {
		t.Fatalf("pageblock mt = %v, want unmovable", pm.PageblockMT(pfn))
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFallbackPollutionWhenOnlySmallBlocks(t *testing.T) {
	pm, b := newTestBuddy(t, 8*testMB, PolicyLIFO, true)
	rng := stats.NewRNG(3)
	// Fill memory with movable 4KB pages, then free a scattered minority
	// so only small free blocks remain.
	var pfns []uint64
	for {
		p, ok := b.Alloc(Order4K, MigrateMovable, SrcUser)
		if !ok {
			break
		}
		pfns = append(pfns, p)
	}
	for _, p := range pfns {
		if rng.Bool(0.1) {
			b.Free(p)
		}
	}
	if b.LargestFreeOrder() >= PageblockOrder-1 {
		t.Skip("random holes coalesced too much; adjust seed")
	}
	pfn, ok := b.Alloc(Order4K, MigrateUnmovable, SrcSlab)
	if !ok {
		t.Fatal("unmovable alloc failed")
	}
	if b.StealsPolluting == 0 {
		t.Fatal("small-block steal must count as pollution")
	}
	if pm.PageblockMT(pfn) != MigrateMovable {
		t.Fatal("pollution steal must not convert the pageblock")
	}
	// The scatter: an unmovable frame now sits inside a movable pageblock.
	st := pm.Scan([]int{Order2M})
	if st.UnmovableBlocks[Order2M] == 0 {
		t.Fatal("scan must see the scattered unmovable block")
	}
}

func TestPolicyLowestPFN(t *testing.T) {
	_, b := newTestBuddy(t, 16*testMB, PolicyLowestPFN, false)
	p1, _ := b.Alloc(Order4K, MigrateMovable, SrcUser)
	p2, _ := b.Alloc(Order4K, MigrateMovable, SrcUser)
	if p1 != 0 || p2 != 1 {
		t.Fatalf("lowest-first allocs = %d, %d; want 0, 1", p1, p2)
	}
	b.Free(p1)
	p3, _ := b.Alloc(Order4K, MigrateMovable, SrcUser)
	if p3 != 0 {
		t.Fatalf("freed lowest frame must be reused first, got %d", p3)
	}
}

func TestPolicyHighestPFN(t *testing.T) {
	pm, b := newTestBuddy(t, 16*testMB, PolicyHighestPFN, false)
	p1, _ := b.Alloc(Order4K, MigrateMovable, SrcUser)
	if p1 != pm.NPages-OrderPages(Order4K) {
		// Highest-first splits the highest block and allocates its
		// highest page.
		t.Fatalf("highest-first alloc = %d, want near top %d", p1, pm.NPages-1)
	}
}

func TestCarveAndDonateMoveBoundary(t *testing.T) {
	pm := NewPhysMem(16 * testMB)
	n := pm.NPages
	half := n / 2
	unmov := NewBuddy(pm, 0, half, PolicyLowestPFN, false, MigrateUnmovable)
	mov := NewBuddy(pm, half, n, PolicyHighestPFN, false, MigrateMovable)

	// Expand the unmovable region by one pageblock taken from movable.
	delta := uint64(PageblockPages)
	if err := mov.Carve(half, delta); err != nil {
		t.Fatal(err)
	}
	mov.AdjustBounds(half+delta, n)
	unmov.AdjustBounds(0, half+delta)
	for pb := half / PageblockPages; pb < (half+delta)/PageblockPages; pb++ {
		pm.pbMT[pb] = uint8(MigrateUnmovable)
	}
	unmov.Donate(half, delta)

	if unmov.FreePages() != half+delta {
		t.Fatalf("unmovable free pages %d, want %d", unmov.FreePages(), half+delta)
	}
	if mov.FreePages() != n-half-delta {
		t.Fatalf("movable free pages %d, want %d", mov.FreePages(), n-half-delta)
	}
	if err := unmov.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := mov.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCarveFailsOnAllocatedFrames(t *testing.T) {
	pm, b := newTestBuddy(t, 8*testMB, PolicyLowestPFN, false)
	pfn, _ := b.Alloc(Order4K, MigrateMovable, SrcUser)
	if err := b.Carve(pfn, 1); err == nil {
		t.Fatal("carving an allocated frame must fail")
	}
	_ = pm
}

func TestCarveSplitsPartialBlocks(t *testing.T) {
	pm, b := newTestBuddy(t, 8*testMB, PolicyLIFO, false)
	// Carve a misaligned interior range; remainders must stay free.
	if err := b.Carve(100, 200); err != nil {
		t.Fatal(err)
	}
	for p := uint64(100); p < 300; p++ {
		if pm.IsFree(p) {
			t.Fatalf("carved frame %d still free", p)
		}
	}
	if pm.IsFree(99) != true || pm.IsFree(300) != true {
		t.Fatal("remainder frames must stay free")
	}
	if b.FreePages() != pm.NPages-200 {
		t.Fatalf("free pages %d, want %d", b.FreePages(), pm.NPages-200)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Donate it back; memory must fully coalesce.
	b.Donate(100, 200)
	if b.FreePages() != pm.NPages {
		t.Fatal("donate did not restore all pages")
	}
	if got := b.LargestFreeOrder(); got != 11 {
		t.Fatalf("largest free order %d after donate-back, want 11", got)
	}
}

func TestSetPinned(t *testing.T) {
	pm, b := newTestBuddy(t, 8*testMB, PolicyLIFO, false)
	pfn, _ := b.Alloc(Order2M, MigrateMovable, SrcNetworking)
	pm.SetPinned(pfn, true)
	for i := uint64(0); i < PageblockPages; i++ {
		if !pm.IsPinned(pfn + i) {
			t.Fatalf("frame %d not pinned", pfn+i)
		}
	}
	st := pm.Scan([]int{Order2M})
	if st.UnmovableBlocks[Order2M] != 1 {
		t.Fatalf("pinned block not counted unmovable: %d", st.UnmovableBlocks[Order2M])
	}
	pm.SetPinned(pfn, false)
	st = pm.Scan([]int{Order2M})
	if st.UnmovableBlocks[Order2M] != 0 {
		t.Fatal("unpinned block still counted unmovable")
	}
}

// TestBuddyRandomisedInvariants drives a random alloc/free workload and
// validates full allocator invariants at checkpoints. This is the core
// property test of the memory substrate.
func TestBuddyRandomisedInvariants(t *testing.T) {
	for _, policy := range []AllocPolicy{PolicyLIFO, PolicyLowestPFN, PolicyHighestPFN} {
		for _, fallback := range []bool{false, true} {
			pm, b := newTestBuddy(t, 32*testMB, policy, fallback)
			rng := stats.NewRNG(uint64(policy)*2 + 1)
			type block struct{ pfn uint64 }
			var live []block
			for step := 0; step < 20000; step++ {
				if rng.Bool(0.55) || len(live) == 0 {
					order := rng.Intn(10) // up to 2MB
					mt := MigrateMovable
					if fallback && rng.Bool(0.3) {
						mt = MigrateUnmovable
					}
					if pfn, ok := b.Alloc(order, mt, SrcUser); ok {
						live = append(live, block{pfn})
					}
				} else {
					i := rng.Intn(len(live))
					b.Free(live[i].pfn)
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				}
				if step%5000 == 4999 {
					if err := b.CheckInvariants(); err != nil {
						t.Fatalf("policy=%v fallback=%v step=%d: %v", policy, fallback, step, err)
					}
				}
			}
			for _, blk := range live {
				b.Free(blk.pfn)
			}
			if b.FreePages() != pm.NPages {
				t.Fatalf("leak: free=%d total=%d", b.FreePages(), pm.NPages)
			}
			if err := b.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestScanFreeContiguity(t *testing.T) {
	pm, b := newTestBuddy(t, 16*testMB, PolicyLIFO, false)
	st := pm.Scan(ScanOrders)
	if st.FreeContigFraction(Order2M) != 1.0 {
		t.Fatalf("fresh machine 2MB contiguity = %v, want 1", st.FreeContigFraction(Order2M))
	}
	// Allocate one 4KB page per 2MB block: contiguity at 2MB drops to 0.
	for blk := uint64(0); blk < pm.NumPageblocks(); blk++ {
		for {
			pfn, ok := b.Alloc(Order4K, MigrateMovable, SrcUser)
			if !ok {
				t.Fatal("alloc failed")
			}
			if pm.PageblockOf(pfn) == blk {
				break
			}
			// keep it allocated; any block works for saturation
			break
		}
	}
	// Saturate: allocate until each block has at least one page. Simpler:
	// allocate many pages.
	for i := 0; i < int(pm.NumPageblocks())*2; i++ {
		b.Alloc(Order4K, MigrateMovable, SrcUser)
	}
	st = pm.Scan([]int{Order2M})
	if st.FreeContigFraction(Order2M) > 0.95 {
		t.Fatalf("contiguity should drop after scattering allocs: %v", st.FreeContigFraction(Order2M))
	}
}

func TestInternalFragmentation(t *testing.T) {
	pm, b := newTestBuddy(t, 8*testMB, PolicyLowestPFN, false)
	// One unmovable page in the first block; rest of block free.
	pm.SetPageblockMT(0, MigrateUnmovable)
	// Move all free pages onto the unmovable list for this test machine.
	_ = b
	pm2 := NewPhysMem(8 * testMB)
	b2 := NewBuddy(pm2, 0, pm2.NPages, PolicyLowestPFN, false, MigrateUnmovable)
	p, ok := b2.Alloc(Order4K, MigrateUnmovable, SrcSlab)
	if !ok || p != 0 {
		t.Fatalf("alloc = %d, %v", p, ok)
	}
	fs := pm2.InternalFragmentation(0, pm2.NPages)
	if fs.BlocksScanned != 1 {
		t.Fatalf("blocks scanned = %d, want 1", fs.BlocksScanned)
	}
	want := float64(PageblockPages-1) / float64(PageblockPages)
	if fs.MeanFreeInside != want {
		t.Fatalf("mean free inside = %v, want %v", fs.MeanFreeInside, want)
	}
}

func TestScanSourceBreakdown(t *testing.T) {
	pm, b := newTestBuddy(t, 8*testMB, PolicyLIFO, true)
	if _, ok := b.Alloc(Order4K, MigrateUnmovable, SrcNetworking); !ok {
		t.Fatal("alloc failed")
	}
	if _, ok := b.Alloc(Order4K, MigrateUnmovable, SrcSlab); !ok {
		t.Fatal("alloc failed")
	}
	st := pm.Scan([]int{Order2M})
	if st.UnmovableBySource[SrcNetworking] != 1 || st.UnmovableBySource[SrcSlab] != 1 {
		t.Fatalf("source breakdown = %v", st.UnmovableBySource)
	}
	if st.UnmovableFrames != 2 {
		t.Fatalf("unmovable frames = %d, want 2", st.UnmovableFrames)
	}
}

func TestMaxAlignedOrder(t *testing.T) {
	cases := []struct {
		pfn, avail uint64
		want       int
	}{
		{0, 1, 0},
		{0, 512, 9},
		{0, 513, 9},
		{256, 512, 8},
		{1, 100, 0},
		{0, 1 << 20, 18},
	}
	for _, c := range cases {
		if got := maxAlignedOrder(c.pfn, c.avail); got != c.want {
			t.Errorf("maxAlignedOrder(%d, %d) = %d, want %d", c.pfn, c.avail, got, c.want)
		}
	}
}

func TestRenderMap(t *testing.T) {
	pm := NewPhysMem(16 * testMB) // 8 pageblocks
	b := NewBuddy(pm, 0, pm.NPages, PolicyLowestPFN, true, MigrateMovable)
	// Block 0: unmovable page (via fallback steal); then a movable 2MB.
	u, ok := b.Alloc(Order4K, MigrateUnmovable, SrcSlab)
	if !ok || pm.PageblockOf(u) != 0 {
		t.Fatalf("unexpected placement %d (ok=%v)", u, ok)
	}
	if _, ok := b.Alloc(Order2M, MigrateMovable, SrcUser); !ok {
		t.Fatal("movable alloc failed")
	}
	out := pm.RenderMap(8, 2*PageblockPages)
	// 8 blocks, width 8: one line plus newline; boundary bar after 2.
	want := "U?|??????"
	_ = want
	if len(out) == 0 || out[0] != 'U' {
		t.Fatalf("map = %q", out)
	}
	if !strings.Contains(out, "|") {
		t.Fatal("boundary marker missing")
	}
	if !strings.Contains(out, ".") {
		t.Fatal("free blocks missing")
	}
	if !strings.Contains(out, "m") {
		t.Fatal("movable block missing")
	}
	// Zero width picks the default and terminates lines.
	if def := pm.RenderMap(0, 0); !strings.HasSuffix(def, "\n") {
		t.Fatal("default render must end with newline")
	}
}

func TestRenderMapReclaimable(t *testing.T) {
	pm := NewPhysMem(4 * testMB)
	b := NewBuddy(pm, 0, pm.NPages, PolicyLowestPFN, false, MigrateReclaimable)
	if _, ok := b.Alloc(Order4K, MigrateReclaimable, SrcFilesystem); !ok {
		t.Fatal("alloc failed")
	}
	if out := pm.RenderMap(8, 0); out[0] != 'r' {
		t.Fatalf("map = %q, want reclaimable marker", out)
	}
}

// TestQuickScanInvariants checks structural invariants of the physical
// scan on randomized allocator states: free-contiguity never exceeds
// free memory, and every block is either unmovable-tainted or potential.
func TestQuickScanInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		pm := NewPhysMem(32 * testMB)
		b := NewBuddy(pm, 0, pm.NPages, PolicyLIFO, true, MigrateMovable)
		var live []uint64
		for i := 0; i < 3000; i++ {
			if rng.Bool(0.55) || len(live) == 0 {
				order := rng.Intn(10)
				mt := MigrateMovable
				if rng.Bool(0.25) {
					mt = MigrateUnmovable
				}
				if pfn, ok := b.Alloc(order, mt, SrcOther); ok {
					live = append(live, pfn)
					if rng.Bool(0.1) {
						pm.SetPinned(pfn, true)
					}
				}
			} else {
				j := rng.Intn(len(live))
				pfn := live[j]
				if pm.IsPinned(pfn) {
					pm.SetPinned(pfn, false)
				}
				b.Free(pfn)
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		st := pm.Scan(ScanOrders)
		if st.FreePages != b.FreePages() {
			return false
		}
		for _, o := range ScanOrders {
			if st.FreeContigPages[o] > st.FreePages {
				return false
			}
			if st.UnmovableBlocks[o]+st.PotentialBlocks[o] != st.TotalBlocks[o] {
				return false
			}
		}
		// Monotonicity: bigger blocks are harder to keep clean.
		if st.UnmovableBlockFraction(Order2M) > st.UnmovableBlockFraction(Order32M)+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestBuddyPropertySoakCarveDonate extends the randomized soak with the
// carve/claim/donate surface the compaction and resizing paths drive: a
// random mix of allocations, frees, aligned carves into limbo, claims of
// carved blocks, and donations back. After every burst the free lists
// must agree with the frame table exactly — per-order block counts, the
// free total, and the allocator's own structural invariants.
func TestBuddyPropertySoakCarveDonate(t *testing.T) {
	pm, b := newTestBuddy(t, 64*testMB, PolicyLIFO, true)
	rng := stats.NewRNG(0xC0FFEE)

	var live []uint64 // allocated heads
	type carved struct {
		pfn   uint64
		order int
	}
	var limbo []carved // carved, not yet claimed or donated

	// findFreeAligned locates a fully free aligned block of the order,
	// scanning from a random offset.
	findFreeAligned := func(order int) (uint64, bool) {
		bp := OrderPages(order)
		nblocks := pm.NPages / bp
		start := rng.Uint64() % nblocks
		for i := uint64(0); i < nblocks; i++ {
			base := ((start + i) % nblocks) * bp
			free := true
			for f := base; f < base+bp; f++ {
				if !pm.IsFree(f) {
					free = false
					break
				}
			}
			if free {
				return base, true
			}
		}
		return 0, false
	}

	consistency := func(step int) {
		if err := b.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		// Frame-table walk must agree with the free-list accounting.
		var freeFrames uint64
		for p := uint64(0); p < pm.NPages; p++ {
			if pm.IsFree(p) {
				freeFrames++
			}
		}
		if freeFrames != b.FreePages() {
			t.Fatalf("step %d: frame table says %d free, lists say %d",
				step, freeFrames, b.FreePages())
		}
		var listed uint64
		for o := 0; o <= MaxOrder; o++ {
			listed += uint64(b.FreeBlocks(o)) * OrderPages(o)
		}
		if listed != b.FreePages() {
			t.Fatalf("step %d: per-order lists hold %d frames, total says %d",
				step, listed, b.FreePages())
		}
	}

	for step := 0; step < 12000; step++ {
		switch r := rng.Float64(); {
		case r < 0.40:
			order := rng.Intn(10)
			mt := MigrateMovable
			if rng.Bool(0.3) {
				mt = MigrateUnmovable
			}
			if pfn, ok := b.Alloc(order, mt, SrcUser); ok {
				live = append(live, pfn)
			}
		case r < 0.70 && len(live) > 0:
			i := rng.Intn(len(live))
			b.Free(live[i])
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		case r < 0.85:
			order := rng.Intn(7)
			if base, ok := findFreeAligned(order); ok {
				if err := b.Carve(base, OrderPages(order)); err != nil {
					t.Fatalf("step %d: carve of verified-free block: %v", step, err)
				}
				limbo = append(limbo, carved{base, order})
			}
		case len(limbo) > 0:
			i := rng.Intn(len(limbo))
			c := limbo[i]
			limbo[i] = limbo[len(limbo)-1]
			limbo = limbo[:len(limbo)-1]
			if rng.Bool(0.5) {
				b.Donate(c.pfn, OrderPages(c.order))
			} else {
				b.ClaimCarved(c.pfn, c.order, MigrateMovable, SrcUser)
				live = append(live, c.pfn)
			}
		}
		if step%2000 == 1999 {
			consistency(step)
		}
	}

	// Drain everything; the region must coalesce back to fully free.
	for _, c := range limbo {
		b.Donate(c.pfn, OrderPages(c.order))
	}
	for _, pfn := range live {
		b.Free(pfn)
	}
	if b.FreePages() != pm.NPages {
		t.Fatalf("leak: free=%d total=%d", b.FreePages(), pm.NPages)
	}
	if want := maxAlignedOrder(0, pm.NPages); b.LargestFreeOrder() != want {
		t.Fatalf("drained region did not coalesce: largest=%d want=%d",
			b.LargestFreeOrder(), want)
	}
	consistency(-1)
}
