package mem

// freeList stores the heads of free buddy blocks of one (order,
// migratetype) class. Two implementations exist:
//
//   - lifoList picks the most recently freed block first, matching the
//     Linux free-list behaviour that the baseline simulates, and
//   - heapList is an indexed binary heap keyed by PFN (ascending or
//     descending), implementing the address bias of §3.2: the Contiguitas
//     unmovable region allocates lowest-first (away from the region
//     boundary) and the movable region highest-first, so the boundary
//     between them stays easy to move.
//
// Both track each head's position in the frame table's flIdx column so
// arbitrary removal (needed by buddy coalescing and boundary carving)
// is O(1) / O(log n).
type freeList interface {
	push(pm *PhysMem, pfn uint64)
	pop(pm *PhysMem) (uint64, bool)
	remove(pm *PhysMem, pfn uint64)
	len() int
	// peekAll returns the backing slice for scanning; callers must not
	// mutate it.
	peekAll() []uint64
}

// lifoList is a stack of PFNs.
type lifoList struct{ pfns []uint64 }

func (l *lifoList) len() int          { return len(l.pfns) }
func (l *lifoList) peekAll() []uint64 { return l.pfns }

func (l *lifoList) push(pm *PhysMem, pfn uint64) {
	pm.flIdx[pfn] = int32(len(l.pfns))
	l.pfns = append(l.pfns, pfn)
}

func (l *lifoList) pop(pm *PhysMem) (uint64, bool) {
	if len(l.pfns) == 0 {
		return 0, false
	}
	pfn := l.pfns[len(l.pfns)-1]
	l.pfns = l.pfns[:len(l.pfns)-1]
	return pfn, true
}

func (l *lifoList) remove(pm *PhysMem, pfn uint64) {
	i := int(pm.flIdx[pfn])
	last := len(l.pfns) - 1
	if i != last {
		moved := l.pfns[last]
		l.pfns[i] = moved
		pm.flIdx[moved] = int32(i)
	}
	l.pfns = l.pfns[:last]
}

// heapList is an indexed binary heap of PFNs. With desc == false the pop
// order is lowest PFN first; with desc == true, highest first.
type heapList struct {
	pfns []uint64
	desc bool
}

func (l *heapList) len() int          { return len(l.pfns) }
func (l *heapList) peekAll() []uint64 { return l.pfns }

// before reports whether a should be popped before b.
func (l *heapList) before(a, b uint64) bool {
	if l.desc {
		return a > b
	}
	return a < b
}

func (l *heapList) push(pm *PhysMem, pfn uint64) {
	l.pfns = append(l.pfns, pfn)
	i := len(l.pfns) - 1
	pm.flIdx[pfn] = int32(i)
	l.siftUp(pm, i)
}

func (l *heapList) pop(pm *PhysMem) (uint64, bool) {
	if len(l.pfns) == 0 {
		return 0, false
	}
	top := l.pfns[0]
	l.removeAt(pm, 0)
	return top, true
}

func (l *heapList) remove(pm *PhysMem, pfn uint64) {
	l.removeAt(pm, int(pm.flIdx[pfn]))
}

func (l *heapList) removeAt(pm *PhysMem, i int) {
	last := len(l.pfns) - 1
	if i != last {
		l.swap(pm, i, last)
	}
	l.pfns = l.pfns[:last]
	if i < last {
		if !l.siftDown(pm, i) {
			l.siftUp(pm, i)
		}
	}
}

func (l *heapList) swap(pm *PhysMem, i, j int) {
	l.pfns[i], l.pfns[j] = l.pfns[j], l.pfns[i]
	pm.flIdx[l.pfns[i]] = int32(i)
	pm.flIdx[l.pfns[j]] = int32(j)
}

func (l *heapList) siftUp(pm *PhysMem, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !l.before(l.pfns[i], l.pfns[parent]) {
			return
		}
		l.swap(pm, i, parent)
		i = parent
	}
}

func (l *heapList) siftDown(pm *PhysMem, i int) bool {
	moved := false
	for {
		left := 2*i + 1
		if left >= len(l.pfns) {
			return moved
		}
		first := left
		if right := left + 1; right < len(l.pfns) && l.before(l.pfns[right], l.pfns[left]) {
			first = right
		}
		if !l.before(l.pfns[first], l.pfns[i]) {
			return moved
		}
		l.swap(pm, i, first)
		i = first
		moved = true
	}
}
