package mem

import (
	"testing"
)

// FuzzBuddyAllocFree drives a buddy allocator with an arbitrary
// alloc/free op stream and checks the structural invariants after
// every few ops. The allocator must never panic and never corrupt its
// free lists, whatever interleaving (including frees of arbitrary —
// possibly interior or already-free — pfns) the fuzzer invents.
func FuzzBuddyAllocFree(f *testing.F) {
	f.Add([]byte{0x00, 0x81, 0x02, 0x93, 0x44, 0xff})
	f.Add([]byte{0x80, 0x80, 0x80, 0x00, 0x01, 0x02, 0x03})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		pm := NewPhysMem(16 << 20) // 4096 pages
		b := NewBuddy(pm, 0, pm.NPages, PolicyLIFO, true, MigrateMovable)

		var live []uint64
		for i, op := range data {
			if op&0x80 == 0 {
				// Alloc: low bits pick order and migratetype.
				order := int(op) % 10
				mt := MigrateType(op>>4) % NumMigrateTypes
				if pfn, ok := b.Alloc(order, mt, SrcUser); ok {
					live = append(live, pfn)
				}
			} else if op&0x40 == 0 && len(live) > 0 {
				// Free a tracked allocation head — must succeed exactly once.
				idx := int(op&0x3f) % len(live)
				pfn := live[idx]
				live = append(live[:idx], live[idx+1:]...)
				if err := b.Free(pfn); err != nil {
					t.Fatalf("op %d: free of live head %d: %v", i, pfn, err)
				}
			} else {
				// Free an arbitrary pfn — interior pages, free pages, and
				// out-of-range pfns must all be rejected with an error, never
				// a panic or silent corruption. Skip tracked heads: those are
				// the one class of pfn this Free would legitimately release,
				// which would desync the drain below.
				pfn := uint64(op&0x3f) * 67 % pm.NPages
				tracked := false
				for _, h := range live {
					if h == pfn {
						tracked = true
						break
					}
				}
				if !tracked {
					if err := b.Free(pfn); err == nil {
						t.Fatalf("op %d: free of untracked pfn %d succeeded", i, pfn)
					}
				}
			}
			if i%16 == 15 {
				if err := b.CheckInvariants(); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			}
		}
		if err := b.CheckInvariants(); err != nil {
			t.Fatalf("final: %v", err)
		}
		for _, pfn := range live {
			if err := b.Free(pfn); err != nil {
				t.Fatalf("drain free %d: %v", pfn, err)
			}
		}
		if err := b.CheckInvariants(); err != nil {
			t.Fatalf("after drain: %v", err)
		}
		if b.FreePages() != b.Pages() {
			t.Fatalf("after drain: %d of %d pages free", b.FreePages(), b.Pages())
		}
	})
}
