package mem

import "fmt"

// Checkpoint/restore codec for the frame table and buddy allocators.
//
// What is serialized versus re-derived:
//
//   - The packed per-frame meta words and per-pageblock migratetypes are
//     serialized raw: they are the ground truth every scanner reads.
//   - Free-list contents are serialized in exact backing-slice order.
//     LIFO lists pop from the slice end, so the stack order IS the
//     future allocation order; heap lists always pop the extreme PFN,
//     but removal paths (coalescing, carving) sift from slice positions,
//     so the array layout still shapes subsequent rebalancing. Restoring
//     the slices verbatim reproduces both bit-for-bit.
//   - flIdx (each free head's position inside its list) is re-derived
//     while the lists are rebuilt, and the serialized copy is kept as an
//     equivalence witness: VerifyFlIdxWitness proves the rebuilt index
//     matches the original over every free head.
//   - The per-(order,migratetype) block histograms, order masks, and
//     free-page totals are re-derived from the restored lists; the
//     serialized totals are cross-checked against them.
//   - The ContigIndex (dirty-pageblock summaries) is NOT serialized:
//     restore marks every pageblock dirty and the next Scan rebuilds it
//     from the restored meta words. The kernel layer proves equivalence
//     against a serialized pre-checkpoint scan witness.

// PhysMemState is the serializable state of a frame table.
type PhysMemState struct {
	NPages uint64
	Meta   []uint32
	PbMT   []uint8
	// FlIdx is an equivalence witness, not an input: restore rebuilds
	// the free-list index from the buddy lists and then proves it
	// matches this serialized original (VerifyFlIdxWitness).
	FlIdx []int32
}

// ExportState deep-copies the frame table's persistent state.
func (pm *PhysMem) ExportState() PhysMemState {
	st := PhysMemState{
		NPages: pm.NPages,
		Meta:   append([]uint32(nil), pm.meta...),
		PbMT:   append([]uint8(nil), pm.pbMT...),
		FlIdx:  append([]int32(nil), pm.flIdx...),
	}
	return st
}

// RestorePhysMem rebuilds a frame table from serialized state. The
// ContigIndex is left cold (every pageblock dirty); flIdx starts zeroed
// and is repopulated by RestoreBuddy.
func RestorePhysMem(st PhysMemState) (*PhysMem, error) {
	if st.NPages == 0 || st.NPages%PageblockPages != 0 {
		return nil, fmt.Errorf("mem: restore: NPages %d not a positive pageblock multiple", st.NPages)
	}
	npb := st.NPages / PageblockPages
	if uint64(len(st.Meta)) != st.NPages {
		return nil, fmt.Errorf("mem: restore: meta length %d, want %d", len(st.Meta), st.NPages)
	}
	if uint64(len(st.PbMT)) != npb {
		return nil, fmt.Errorf("mem: restore: pbMT length %d, want %d", len(st.PbMT), npb)
	}
	if uint64(len(st.FlIdx)) != st.NPages {
		return nil, fmt.Errorf("mem: restore: flIdx witness length %d, want %d", len(st.FlIdx), st.NPages)
	}
	pm := &PhysMem{
		NPages: st.NPages,
		meta:   append([]uint32(nil), st.Meta...),
		flIdx:  make([]int32, st.NPages),
		pbMT:   append([]uint8(nil), st.PbMT...),
		dirty:  make([]uint64, (npb+63)/64),
	}
	pm.DirtyAll()
	return pm, nil
}

// VerifyFlIdxWitness proves the re-derived free-list index matches the
// serialized original over every free head (the only frames for which
// flIdx carries meaning). Call after every buddy region is restored.
func (pm *PhysMem) VerifyFlIdxWitness(witness []int32) error {
	if uint64(len(witness)) != pm.NPages {
		return fmt.Errorf("mem: flIdx witness length %d, want %d", len(witness), pm.NPages)
	}
	for pfn := uint64(0); pfn < pm.NPages; pfn++ {
		m := pm.meta[pfn]
		if m&flagFree != 0 && m&flagHead != 0 && pm.flIdx[pfn] != witness[pfn] {
			return fmt.Errorf("mem: flIdx mismatch at free head %d: rebuilt %d, witness %d",
				pfn, pm.flIdx[pfn], witness[pfn])
		}
	}
	return nil
}

// VerifyCoveringStamps proves the covering-order stamps are consistent
// with the block structure encoded in the head frames: every frame of a
// block carries its head's order, every uncovered (limbo) frame carries
// none. One linear pass over the frame table.
func (pm *PhysMem) VerifyCoveringStamps() error {
	for p := uint64(0); p < pm.NPages; {
		m := pm.meta[p]
		o := metaOrder(m)
		if o < 0 {
			// Not a head: must be limbo (tails were skipped below).
			if m&(flagFree|flagHead) != 0 {
				return fmt.Errorf("mem: frame %d flagged free/head without an order", p)
			}
			if metaCov(m) != -1 {
				return fmt.Errorf("mem: limbo frame %d carries covering order %d", p, metaCov(m))
			}
			p++
			continue
		}
		n := OrderPages(o)
		if p&(n-1) != 0 || p+n > pm.NPages {
			return fmt.Errorf("mem: block head %d order %d misaligned or out of range", p, o)
		}
		free := m&flagFree != 0
		for i := uint64(0); i < n; i++ {
			fm := pm.meta[p+i]
			if metaCov(fm) != o {
				return fmt.Errorf("mem: frame %d covering order %d, block order %d", p+i, metaCov(fm), o)
			}
			if (fm&flagFree != 0) != free {
				return fmt.Errorf("mem: frame %d free flag disagrees with head %d", p+i, p)
			}
		}
		p += n
	}
	return nil
}

// BuddyState is the serializable state of one buddy region.
type BuddyState struct {
	Start, End uint64
	Policy     uint8
	Fallback   bool

	FreeByList       [NumMigrateTypes]uint64
	FreeTotal        uint64
	StealsConverting uint64
	StealsPolluting  uint64

	// Lists[o][mt] is the free list's backing slice in exact order (see
	// the package comment above for why order matters for both list
	// kinds). Nil and empty are equivalent.
	Lists [MaxOrder + 1][NumMigrateTypes][]uint64
}

// ExportState deep-copies the buddy region's state. The frame table is
// exported separately (shared between regions).
func (b *Buddy) ExportState() BuddyState {
	st := BuddyState{
		Start:            b.start,
		End:              b.end,
		Policy:           uint8(b.policy),
		Fallback:         b.fallback,
		FreeByList:       b.freeByList,
		FreeTotal:        b.freeTotal,
		StealsConverting: b.StealsConverting,
		StealsPolluting:  b.StealsPolluting,
	}
	for o := 0; o <= MaxOrder; o++ {
		for mt := 0; mt < NumMigrateTypes; mt++ {
			if all := b.lists[o][mt].peekAll(); len(all) > 0 {
				st.Lists[o][mt] = append([]uint64(nil), all...)
			}
		}
	}
	return st
}

// RestoreBuddy rebuilds a buddy region over an already-restored frame
// table. The free lists are restored in exact serialized order; flIdx,
// block histograms, order masks, and free totals are re-derived, with
// the serialized totals cross-checked. Every listed head is validated
// against the frame table before being accepted.
func RestoreBuddy(pm *PhysMem, st BuddyState) (*Buddy, error) {
	if st.End > pm.NPages || st.Start >= st.End {
		return nil, fmt.Errorf("%w: restore buddy [%d, %d)", ErrBadBounds, st.Start, st.End)
	}
	policy := AllocPolicy(st.Policy)
	b := &Buddy{
		pm: pm, start: st.Start, end: st.End,
		policy: policy, fallback: st.Fallback,
		StealsConverting: st.StealsConverting,
		StealsPolluting:  st.StealsPolluting,
	}
	for o := 0; o <= MaxOrder; o++ {
		for mt := 0; mt < NumMigrateTypes; mt++ {
			switch policy {
			case PolicyLIFO:
				b.lists[o][mt] = &lifoList{}
			case PolicyLowestPFN:
				b.lists[o][mt] = &heapList{}
			case PolicyHighestPFN:
				b.lists[o][mt] = &heapList{desc: true}
			default:
				return nil, fmt.Errorf("mem: restore: unknown alloc policy %d", st.Policy)
			}
		}
	}
	for o := 0; o <= MaxOrder; o++ {
		for mt := 0; mt < NumMigrateTypes; mt++ {
			pfns := st.Lists[o][mt]
			if len(pfns) == 0 {
				continue
			}
			backing := append([]uint64(nil), pfns...)
			for i, pfn := range backing {
				if pfn < st.Start || pfn+OrderPages(o) > st.End {
					return nil, fmt.Errorf("%w: restore: listed head %d (order %d)", ErrOutOfRange, pfn, o)
				}
				m := pm.meta[pfn]
				if m&(flagFree|flagHead) != flagFree|flagHead || metaOrder(m) != o || metaMT(m) != MigrateType(mt) {
					return nil, fmt.Errorf("mem: restore: frame table disagrees with list entry pfn=%d order=%d mt=%d", pfn, o, mt)
				}
				pm.flIdx[pfn] = int32(i)
				b.noteBlockAdd(o, MigrateType(mt))
				b.freeByList[mt] += OrderPages(o)
				b.freeTotal += OrderPages(o)
			}
			switch l := b.lists[o][mt].(type) {
			case *lifoList:
				l.pfns = backing
			case *heapList:
				if err := verifyHeap(l, backing); err != nil {
					return nil, err
				}
				l.pfns = backing
			}
		}
	}
	if b.freeTotal != st.FreeTotal {
		return nil, fmt.Errorf("mem: restore: re-derived freeTotal %d, serialized %d", b.freeTotal, st.FreeTotal)
	}
	if b.freeByList != st.FreeByList {
		return nil, fmt.Errorf("mem: restore: re-derived freeByList %v, serialized %v", b.freeByList, st.FreeByList)
	}
	return b, nil
}

// verifyHeap proves a serialized heap slice still satisfies the heap
// property before it is adopted verbatim (a corrupted snapshot would
// otherwise silently change pop order).
func verifyHeap(l *heapList, pfns []uint64) error {
	for i := 1; i < len(pfns); i++ {
		parent := (i - 1) / 2
		if l.before(pfns[i], pfns[parent]) {
			return fmt.Errorf("mem: restore: heap property violated at index %d (pfn %d vs parent %d)",
				i, pfns[i], pfns[parent])
		}
	}
	return nil
}
