package mem

import "strings"

// RenderMap draws an ASCII map of physical memory at pageblock (2 MB)
// granularity, the way the paper's Figure 7 sketches the address space.
// Each character is one pageblock:
//
//	'.'  completely free
//	'm'  movable allocations only (still compactable)
//	'U'  contains unmovable or pinned memory (blocks huge pages)
//	'r'  reclaimable only (droppable)
//
// width is characters per line (0 picks 64). The optional boundary PFN
// is marked with a '|' between the characters on each side.
func (pm *PhysMem) RenderMap(width int, boundary uint64) string {
	if width <= 0 {
		width = 64
	}
	var b strings.Builder
	nblocks := pm.NumPageblocks()
	boundaryBlock := boundary / PageblockPages
	for blk := uint64(0); blk < nblocks; blk++ {
		if boundary > 0 && blk == boundaryBlock {
			b.WriteByte('|')
		}
		b.WriteByte(pm.blockChar(blk))
		if (blk+1)%uint64(width) == 0 {
			b.WriteByte('\n')
		}
	}
	if nblocks%uint64(width) != 0 {
		b.WriteByte('\n')
	}
	return b.String()
}

// blockChar classifies one pageblock for RenderMap.
func (pm *PhysMem) blockChar(blk uint64) byte {
	base := blk * PageblockPages
	anyAlloc, anyUnmov, anyMov, anyRecl := false, false, false, false
	for i := uint64(0); i < PageblockPages; i++ {
		p := base + i
		if pm.IsFree(p) {
			continue
		}
		if pm.isUnmovableFrame(p) {
			anyUnmov = true
			break
		}
		if pm.isAllocatedFrame(p) {
			anyAlloc = true
			switch metaMT(pm.meta[p]) {
			case MigrateMovable:
				anyMov = true
			case MigrateReclaimable:
				anyRecl = true
			}
		}
	}
	switch {
	case anyUnmov:
		return 'U'
	case anyMov:
		return 'm'
	case anyRecl:
		return 'r'
	case anyAlloc:
		return 'm'
	default:
		return '.'
	}
}
