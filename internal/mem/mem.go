// Package mem models physical memory the way an operating system's page
// allocator sees it: an array of 4 KB page frames grouped into 2 MB
// pageblocks, managed by buddy allocators with per-pageblock migratetypes.
//
// It provides the two layouts the Contiguitas paper compares:
//
//   - the Linux layout — one buddy allocator over all of memory, with
//     fallback stealing between migratetypes (the mechanism that scatters
//     unmovable allocations across the address space), and
//   - the Contiguitas layout — two buddy allocators over two continuous
//     regions (unmovable and movable) separated by a movable boundary.
//
// The package also implements the physical-memory scanners used by the
// paper's fleet study: free-contiguity counts, unmovable-block statistics,
// and potential-contiguity-under-perfect-compaction estimates.
package mem

import "fmt"

// Fundamental geometry. Orders are powers of two of the 4 KB base page:
// order 0 = 4 KB, order 9 = 2 MB (one pageblock), order 18 = 1 GB.
const (
	PageShift = 12
	PageSize  = 1 << PageShift // 4 KB

	PageblockOrder = 9                   // 2 MB
	PageblockPages = 1 << PageblockOrder // 512 base pages

	MaxOrder = 18 // 1 GB, the largest allocation the simulator serves

	Order4K  = 0
	Order2M  = 9
	Order4M  = 10
	Order32M = 13
	Order1G  = 18
)

// OrderBytes returns the size in bytes of a block of the given order.
func OrderBytes(order int) uint64 { return uint64(PageSize) << order }

// OrderPages returns the number of base pages in a block of the given order.
func OrderPages(order int) uint64 { return 1 << order }

// BytesToPages converts a byte count to base pages, rounding up.
func BytesToPages(b uint64) uint64 { return (b + PageSize - 1) / PageSize }

// MigrateType classifies an allocation by how the kernel may relocate it,
// mirroring Linux's MIGRATE_* free-list classes.
type MigrateType uint8

const (
	// MigrateUnmovable marks allocations the kernel cannot relocate:
	// slab, page tables, networking buffers, DMA-pinned memory.
	MigrateUnmovable MigrateType = iota
	// MigrateReclaimable marks allocations that cannot be moved but can
	// be reclaimed and re-created (e.g. clean file caches, inode caches).
	MigrateReclaimable
	// MigrateMovable marks allocations the kernel can migrate at will
	// (almost all userspace memory).
	MigrateMovable

	NumMigrateTypes = 3
)

// String returns the Linux-style name of the migratetype.
func (mt MigrateType) String() string {
	switch mt {
	case MigrateUnmovable:
		return "unmovable"
	case MigrateReclaimable:
		return "reclaimable"
	case MigrateMovable:
		return "movable"
	}
	return fmt.Sprintf("migratetype(%d)", uint8(mt))
}

// Source records what subsystem performed an allocation. The paper's
// fleet study (Figure 6) breaks unmovable memory down by these sources.
type Source uint8

const (
	SrcUser Source = iota // regular application memory
	SrcNetworking
	SrcSlab
	SrcFilesystem
	SrcPageTable
	SrcKernelCode
	SrcOther

	NumSources = 7
)

// String returns a printable name for the allocation source.
func (s Source) String() string {
	switch s {
	case SrcUser:
		return "user"
	case SrcNetworking:
		return "networking"
	case SrcSlab:
		return "slab"
	case SrcFilesystem:
		return "filesystems"
	case SrcPageTable:
		return "page tables"
	case SrcKernelCode:
		return "kernel code"
	case SrcOther:
		return "others"
	}
	return fmt.Sprintf("source(%d)", uint8(s))
}

// Per-page flag bits (the low bits of the packed meta word).
const (
	flagFree   = 1 << 0 // page belongs to a free buddy block
	flagHead   = 1 << 1 // page is the head of its (free or allocated) block
	flagPinned = 1 << 2 // page is pinned (DMA, RDMA): strictly unmovable
)

// Layout of the packed per-frame meta word. Orders are stored biased by
// one (0 means "none"/-1) so the zero word describes a boot-state frame:
// not free, no head, no covering block.
const (
	metaOrdShift = 3  // bits 3-7: block order + 1 if head, else 0
	metaCovShift = 8  // bits 8-12: covering block order + 1, 0 in limbo
	metaMTShift  = 13 // bits 13-14: MigrateType (valid while allocated;
	//                   on a free head: the owning free list's tag)
	metaSrcShift = 15 // bits 15-17: Source (valid while allocated)

	metaOrdMask = 0x1f << metaOrdShift
	metaCovMask = 0x1f << metaCovShift
	metaMTMask  = 0x3 << metaMTShift
	metaSrcMask = 0x7 << metaSrcShift
)

// metaOrder unpacks the block order of a head frame, or -1.
func metaOrder(m uint32) int { return int((m>>metaOrdShift)&0x1f) - 1 }

// metaCov unpacks the covering-block order of a frame, or -1 in limbo.
func metaCov(m uint32) int { return int((m>>metaCovShift)&0x1f) - 1 }

// metaMT unpacks the migratetype stamp.
func metaMT(m uint32) MigrateType { return MigrateType((m >> metaMTShift) & 0x3) }

// metaSrc unpacks the source stamp.
func metaSrc(m uint32) Source { return Source((m >> metaSrcShift) & 0x7) }

// PhysMem is the shared frame table for one simulated machine. The
// per-frame state lives in one packed word per frame (plus a free-list
// index), so the stampers and scanners on the allocation hot path touch
// a single cache line per frame instead of one line per parallel array,
// and a simulated fleet of machines stays cheap.
type PhysMem struct {
	NPages uint64

	// meta packs flags, head order, covering order, migratetype, and
	// source per frame — see the meta* constants above.
	meta  []uint32
	flIdx []int32 // index within the owning free list (valid while free head)
	pbMT  []uint8 // migratetype of each 2 MB pageblock

	// dirty is a bitset over pageblocks: a set bit means the pageblock's
	// cached contiguity summary (see ContigIndex) is stale. Every frame
	// mutation marks its pageblocks dirty; Scan revisits only dirty ones.
	dirty      []uint64
	dirtyCount uint64
	idx        *ContigIndex // lazily built on first Scan
}

// NewPhysMem creates a frame table for a machine with the given memory
// size in bytes. The size must be a positive multiple of the pageblock
// size (2 MB) so pageblock accounting is exact.
func NewPhysMem(bytes uint64) *PhysMem {
	if bytes == 0 || bytes%OrderBytes(PageblockOrder) != 0 {
		panic("mem: machine size must be a positive multiple of 2MB")
	}
	n := bytes / PageSize
	npb := n / PageblockPages
	pm := &PhysMem{
		NPages: n,
		// The zero meta word already encodes the boot state (no head,
		// no covering block), so no initialisation pass is needed.
		meta:  make([]uint32, n),
		flIdx: make([]int32, n),
		pbMT:  make([]uint8, npb),
		dirty: make([]uint64, (npb+63)/64),
	}
	pm.DirtyAll()
	return pm
}

// markDirty flags every pageblock overlapping [pfn, pfn+n) as needing a
// summary recompute. Single-pageblock spans (the common case: order < 9
// buddy operations) take the early path.
func (pm *PhysMem) markDirty(pfn, n uint64) {
	first := pfn / PageblockPages
	last := (pfn + n - 1) / PageblockPages
	for pb := first; pb <= last; pb++ {
		w, b := pb>>6, uint64(1)<<(pb&63)
		if pm.dirty[w]&b == 0 {
			pm.dirty[w] |= b
			pm.dirtyCount++
		}
	}
}

// DirtyAll invalidates every cached pageblock summary, forcing the next
// Scan to recompute from the frame table (used at boot and by tests that
// exercise the cold-scan path).
func (pm *PhysMem) DirtyAll() {
	npb := pm.NPages / PageblockPages
	for i := range pm.dirty {
		pm.dirty[i] = ^uint64(0)
	}
	// Clear the tail bits beyond the last pageblock so popcount-style
	// accounting stays exact.
	if rem := npb & 63; rem != 0 {
		pm.dirty[len(pm.dirty)-1] = (uint64(1) << rem) - 1
	}
	pm.dirtyCount = npb
}

// Bytes returns the machine's memory size in bytes.
func (pm *PhysMem) Bytes() uint64 { return pm.NPages * PageSize }

// NumPageblocks returns the number of 2 MB pageblocks.
func (pm *PhysMem) NumPageblocks() uint64 { return pm.NPages / PageblockPages }

// PageblockOf returns the pageblock index containing pfn.
func (pm *PhysMem) PageblockOf(pfn uint64) uint64 { return pfn / PageblockPages }

// PageblockMT returns the migratetype of the pageblock containing pfn.
func (pm *PhysMem) PageblockMT(pfn uint64) MigrateType {
	return MigrateType(pm.pbMT[pfn/PageblockPages])
}

// SetPageblockMT sets the migratetype of the pageblock containing pfn.
func (pm *PhysMem) SetPageblockMT(pfn uint64, mt MigrateType) {
	pm.pbMT[pfn/PageblockPages] = uint8(mt)
}

// IsFree reports whether the frame is part of a free buddy block.
func (pm *PhysMem) IsFree(pfn uint64) bool { return pm.meta[pfn]&flagFree != 0 }

// IsHead reports whether the frame is the head of its block.
func (pm *PhysMem) IsHead(pfn uint64) bool { return pm.meta[pfn]&flagHead != 0 }

// IsPinned reports whether the frame is pinned.
func (pm *PhysMem) IsPinned(pfn uint64) bool { return pm.meta[pfn]&flagPinned != 0 }

// BlockOrder returns the order of the block headed at pfn, or -1 if pfn is
// not a block head.
func (pm *PhysMem) BlockOrder(pfn uint64) int { return metaOrder(pm.meta[pfn]) }

// PageMT returns the migratetype recorded for an allocated frame.
func (pm *PhysMem) PageMT(pfn uint64) MigrateType { return metaMT(pm.meta[pfn]) }

// PageSource returns the source recorded for an allocated frame.
func (pm *PhysMem) PageSource(pfn uint64) Source { return metaSrc(pm.meta[pfn]) }

// SetPinned marks or unmarks the whole block headed at pfn as pinned.
// Pinned frames are treated as strictly unmovable by every scanner and by
// software compaction; only Contiguitas-HW can relocate them.
func (pm *PhysMem) SetPinned(pfn uint64, pinned bool) {
	order := metaOrder(pm.meta[pfn])
	if order < 0 {
		panic("mem: SetPinned on a non-head frame")
	}
	n := OrderPages(order)
	mw := pm.meta[pfn : pfn+n]
	for i := range mw {
		if pinned {
			mw[i] |= flagPinned
		} else {
			mw[i] &^= flagPinned
		}
	}
	pm.markDirty(pfn, n)
}

// Restamp rewrites the migratetype/source stamps of an allocated block
// (after a migration relocates an allocation whose class differs from
// what the destination was allocated as).
func (pm *PhysMem) Restamp(pfn uint64, order int, mt MigrateType, src Source) {
	if metaOrder(pm.meta[pfn]) != order || pm.IsFree(pfn) {
		panic("mem: Restamp of a non-matching block")
	}
	n := OrderPages(order)
	stamp := uint32(mt)<<metaMTShift | uint32(src)<<metaSrcShift
	mw := pm.meta[pfn : pfn+n]
	for i := range mw {
		mw[i] = mw[i]&^(metaMTMask|metaSrcMask) | stamp
	}
	pm.markDirty(pfn, n)
}

// setAllocated stamps block metadata for an allocation: one packed-word
// store per frame (this stamper is the single hottest function in study
// profiles). The full overwrite also drops any pinned bit, as before.
func (pm *PhysMem) setAllocated(pfn uint64, order int, mt MigrateType, src Source) {
	n := OrderPages(order)
	w := uint32(order+1)<<metaCovShift | uint32(mt)<<metaMTShift | uint32(src)<<metaSrcShift
	mw := pm.meta[pfn : pfn+n]
	for i := range mw {
		mw[i] = w
	}
	mw[0] = w | flagHead | uint32(order+1)<<metaOrdShift
	pm.markDirty(pfn, n)
}

// setFreeHead stamps a block as a free buddy block of the given order,
// owned by listMT's free list (the tag takeFree reads back). The mt/src
// stamps of the frames' past lives are dropped; nothing reads them on
// free frames.
func (pm *PhysMem) setFreeHead(pfn uint64, order int, listMT MigrateType) {
	n := OrderPages(order)
	w := uint32(flagFree) | uint32(order+1)<<metaCovShift
	mw := pm.meta[pfn : pfn+n]
	for i := range mw {
		mw[i] = w
	}
	mw[0] = w | flagHead | uint32(order+1)<<metaOrdShift | uint32(listMT)<<metaMTShift
	pm.markDirty(pfn, n)
}

// setHeadMT retags the owning free list of a free head in place.
func (pm *PhysMem) setHeadMT(pfn uint64, mt MigrateType) {
	pm.meta[pfn] = pm.meta[pfn]&^uint32(metaMTMask) | uint32(mt)<<metaMTShift
}

// clearBlock removes head/free marks from a block, sending its frames to
// limbo: cov loses its covering block until a setAllocated/setFreeHead
// re-stamps it. Only the carve path needs it — the buddy split/merge
// loops skip it because they restamp every frame before returning.
func (pm *PhysMem) clearBlock(pfn uint64, order int) {
	n := OrderPages(order)
	mw := pm.meta[pfn : pfn+n]
	for i := range mw {
		mw[i] = 0
	}
	pm.markDirty(pfn, n)
}
