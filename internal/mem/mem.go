// Package mem models physical memory the way an operating system's page
// allocator sees it: an array of 4 KB page frames grouped into 2 MB
// pageblocks, managed by buddy allocators with per-pageblock migratetypes.
//
// It provides the two layouts the Contiguitas paper compares:
//
//   - the Linux layout — one buddy allocator over all of memory, with
//     fallback stealing between migratetypes (the mechanism that scatters
//     unmovable allocations across the address space), and
//   - the Contiguitas layout — two buddy allocators over two continuous
//     regions (unmovable and movable) separated by a movable boundary.
//
// The package also implements the physical-memory scanners used by the
// paper's fleet study: free-contiguity counts, unmovable-block statistics,
// and potential-contiguity-under-perfect-compaction estimates.
package mem

import "fmt"

// Fundamental geometry. Orders are powers of two of the 4 KB base page:
// order 0 = 4 KB, order 9 = 2 MB (one pageblock), order 18 = 1 GB.
const (
	PageShift = 12
	PageSize  = 1 << PageShift // 4 KB

	PageblockOrder = 9                   // 2 MB
	PageblockPages = 1 << PageblockOrder // 512 base pages

	MaxOrder = 18 // 1 GB, the largest allocation the simulator serves

	Order4K  = 0
	Order2M  = 9
	Order4M  = 10
	Order32M = 13
	Order1G  = 18
)

// OrderBytes returns the size in bytes of a block of the given order.
func OrderBytes(order int) uint64 { return uint64(PageSize) << order }

// OrderPages returns the number of base pages in a block of the given order.
func OrderPages(order int) uint64 { return 1 << order }

// BytesToPages converts a byte count to base pages, rounding up.
func BytesToPages(b uint64) uint64 { return (b + PageSize - 1) / PageSize }

// MigrateType classifies an allocation by how the kernel may relocate it,
// mirroring Linux's MIGRATE_* free-list classes.
type MigrateType uint8

const (
	// MigrateUnmovable marks allocations the kernel cannot relocate:
	// slab, page tables, networking buffers, DMA-pinned memory.
	MigrateUnmovable MigrateType = iota
	// MigrateReclaimable marks allocations that cannot be moved but can
	// be reclaimed and re-created (e.g. clean file caches, inode caches).
	MigrateReclaimable
	// MigrateMovable marks allocations the kernel can migrate at will
	// (almost all userspace memory).
	MigrateMovable

	NumMigrateTypes = 3
)

// String returns the Linux-style name of the migratetype.
func (mt MigrateType) String() string {
	switch mt {
	case MigrateUnmovable:
		return "unmovable"
	case MigrateReclaimable:
		return "reclaimable"
	case MigrateMovable:
		return "movable"
	}
	return fmt.Sprintf("migratetype(%d)", uint8(mt))
}

// Source records what subsystem performed an allocation. The paper's
// fleet study (Figure 6) breaks unmovable memory down by these sources.
type Source uint8

const (
	SrcUser Source = iota // regular application memory
	SrcNetworking
	SrcSlab
	SrcFilesystem
	SrcPageTable
	SrcKernelCode
	SrcOther

	NumSources = 7
)

// String returns a printable name for the allocation source.
func (s Source) String() string {
	switch s {
	case SrcUser:
		return "user"
	case SrcNetworking:
		return "networking"
	case SrcSlab:
		return "slab"
	case SrcFilesystem:
		return "filesystems"
	case SrcPageTable:
		return "page tables"
	case SrcKernelCode:
		return "kernel code"
	case SrcOther:
		return "others"
	}
	return fmt.Sprintf("source(%d)", uint8(s))
}

// Per-page flag bits.
const (
	flagFree   = 1 << 0 // page belongs to a free buddy block
	flagHead   = 1 << 1 // page is the head of its (free or allocated) block
	flagPinned = 1 << 2 // page is pinned (DMA, RDMA): strictly unmovable
)

// PhysMem is the shared frame table for one simulated machine. It is
// deliberately struct-of-arrays with a few bytes per frame so that a 64 GB
// machine (16 M frames) costs tens of megabytes and a simulated fleet of
// thousands of smaller machines stays cheap.
type PhysMem struct {
	NPages uint64

	order []int8  // block order if head (free or allocated); -1 on tails
	flags []uint8 // flagFree | flagHead | flagPinned
	mt    []uint8 // MigrateType of the allocation (valid while allocated)
	src   []uint8 // Source of the allocation (valid while allocated)
	flIdx []int32 // index within the owning free list (valid while free head)
	pbMT  []uint8 // migratetype of each 2 MB pageblock
}

// NewPhysMem creates a frame table for a machine with the given memory
// size in bytes. The size must be a positive multiple of the pageblock
// size (2 MB) so pageblock accounting is exact.
func NewPhysMem(bytes uint64) *PhysMem {
	if bytes == 0 || bytes%OrderBytes(PageblockOrder) != 0 {
		panic("mem: machine size must be a positive multiple of 2MB")
	}
	n := bytes / PageSize
	pm := &PhysMem{
		NPages: n,
		order:  make([]int8, n),
		flags:  make([]uint8, n),
		mt:     make([]uint8, n),
		src:    make([]uint8, n),
		flIdx:  make([]int32, n),
		pbMT:   make([]uint8, n/PageblockPages),
	}
	for i := range pm.order {
		pm.order[i] = -1
	}
	return pm
}

// Bytes returns the machine's memory size in bytes.
func (pm *PhysMem) Bytes() uint64 { return pm.NPages * PageSize }

// NumPageblocks returns the number of 2 MB pageblocks.
func (pm *PhysMem) NumPageblocks() uint64 { return pm.NPages / PageblockPages }

// PageblockOf returns the pageblock index containing pfn.
func (pm *PhysMem) PageblockOf(pfn uint64) uint64 { return pfn / PageblockPages }

// PageblockMT returns the migratetype of the pageblock containing pfn.
func (pm *PhysMem) PageblockMT(pfn uint64) MigrateType {
	return MigrateType(pm.pbMT[pfn/PageblockPages])
}

// SetPageblockMT sets the migratetype of the pageblock containing pfn.
func (pm *PhysMem) SetPageblockMT(pfn uint64, mt MigrateType) {
	pm.pbMT[pfn/PageblockPages] = uint8(mt)
}

// IsFree reports whether the frame is part of a free buddy block.
func (pm *PhysMem) IsFree(pfn uint64) bool { return pm.flags[pfn]&flagFree != 0 }

// IsHead reports whether the frame is the head of its block.
func (pm *PhysMem) IsHead(pfn uint64) bool { return pm.flags[pfn]&flagHead != 0 }

// IsPinned reports whether the frame is pinned.
func (pm *PhysMem) IsPinned(pfn uint64) bool { return pm.flags[pfn]&flagPinned != 0 }

// BlockOrder returns the order of the block headed at pfn, or -1 if pfn is
// not a block head.
func (pm *PhysMem) BlockOrder(pfn uint64) int { return int(pm.order[pfn]) }

// PageMT returns the migratetype recorded for an allocated frame.
func (pm *PhysMem) PageMT(pfn uint64) MigrateType { return MigrateType(pm.mt[pfn]) }

// PageSource returns the source recorded for an allocated frame.
func (pm *PhysMem) PageSource(pfn uint64) Source { return Source(pm.src[pfn]) }

// SetPinned marks or unmarks the whole block headed at pfn as pinned.
// Pinned frames are treated as strictly unmovable by every scanner and by
// software compaction; only Contiguitas-HW can relocate them.
func (pm *PhysMem) SetPinned(pfn uint64, pinned bool) {
	if pm.order[pfn] < 0 {
		panic("mem: SetPinned on a non-head frame")
	}
	n := OrderPages(int(pm.order[pfn]))
	for i := uint64(0); i < n; i++ {
		if pinned {
			pm.flags[pfn+i] |= flagPinned
		} else {
			pm.flags[pfn+i] &^= flagPinned
		}
	}
}

// Restamp rewrites the migratetype/source stamps of an allocated block
// (after a migration relocates an allocation whose class differs from
// what the destination was allocated as).
func (pm *PhysMem) Restamp(pfn uint64, order int, mt MigrateType, src Source) {
	if int(pm.order[pfn]) != order || pm.IsFree(pfn) {
		panic("mem: Restamp of a non-matching block")
	}
	n := OrderPages(order)
	for i := uint64(0); i < n; i++ {
		pm.mt[pfn+i] = uint8(mt)
		pm.src[pfn+i] = uint8(src)
	}
}

// setAllocated stamps block metadata for an allocation.
func (pm *PhysMem) setAllocated(pfn uint64, order int, mt MigrateType, src Source) {
	n := OrderPages(order)
	for i := uint64(0); i < n; i++ {
		pm.flags[pfn+i] &^= flagFree | flagHead | flagPinned
		pm.mt[pfn+i] = uint8(mt)
		pm.src[pfn+i] = uint8(src)
		pm.order[pfn+i] = -1
	}
	pm.flags[pfn] |= flagHead
	pm.order[pfn] = int8(order)
}

// setFreeHead stamps a block as a free buddy block of the given order.
func (pm *PhysMem) setFreeHead(pfn uint64, order int) {
	n := OrderPages(order)
	for i := uint64(0); i < n; i++ {
		pm.flags[pfn+i] |= flagFree
		pm.flags[pfn+i] &^= flagHead | flagPinned
		pm.order[pfn+i] = -1
	}
	pm.flags[pfn] |= flagHead
	pm.order[pfn] = int8(order)
}

// clearBlock removes head/free marks from a block (used while splitting
// and merging inside the buddy allocator).
func (pm *PhysMem) clearBlock(pfn uint64, order int) {
	n := OrderPages(order)
	for i := uint64(0); i < n; i++ {
		pm.flags[pfn+i] &^= flagFree | flagHead
		pm.order[pfn+i] = -1
	}
}
