package mem

import "errors"

// Typed sentinel errors for reachable buddy-allocator failure paths,
// mirroring internal/kernel/errors.go. Each is recoverable: the buddy
// state is untouched when one is returned, so callers may retry, route
// around, or surface the condition. Panics remain only for boot-time
// configuration validation (NewBuddy, NewPhysMem) and provably
// unreachable invariant violations, each marked with a comment at the
// panic site.
var (
	// ErrOutOfRange reports an operation on a PFN range that falls
	// outside the buddy region's [start, end) bounds.
	ErrOutOfRange = errors.New("mem: range outside buddy region")

	// ErrNotAllocated reports a Free of a block that is not currently
	// allocated (already free, a tail frame, or limbo).
	ErrNotAllocated = errors.New("mem: block not allocated")

	// ErrNotInLimbo reports a ClaimCarved over frames that are not in
	// the carved limbo state (still free, or already allocated).
	ErrNotInLimbo = errors.New("mem: frames not in limbo")

	// ErrMisaligned reports a block operation whose PFN is not naturally
	// aligned for the requested order.
	ErrMisaligned = errors.New("mem: misaligned block")

	// ErrBadBounds reports an AdjustBounds to an empty or out-of-table
	// range.
	ErrBadBounds = errors.New("mem: invalid region bounds")
)
