package mem

// This file implements the physical-memory scanners behind the paper's
// fleet study and steady-state characterisation: Figure 4 (free-memory
// contiguity), Figure 5/11 (unmovable blocks), Figure 12 (potential
// contiguity under perfect compaction), and the §5.2 internal-
// fragmentation analysis of the unmovable region.
//
// Scan is incremental: allocator events mark pageblocks dirty and the
// ContigIndex (contigindex.go) re-summarises only those, so a scan of a
// mostly-clean machine costs O(dirty pageblocks) instead of O(frames).
// ScanFull keeps the original recompute-everything sweep as the
// equivalence oracle: the two must agree exactly, always.

// isUnmovableFrame reports whether a frame blocks compaction entirely:
// it is allocated and either carries the unmovable migratetype or is
// pinned (DMA/RDMA-style).
func (pm *PhysMem) isUnmovableFrame(pfn uint64) bool {
	m := pm.meta[pfn]
	if m&flagFree != 0 {
		return false
	}
	if m&flagPinned != 0 {
		return true
	}
	// setAllocated stamps mt onto every frame of a block (tails
	// included), so pm.mt is valid here for allocated frames. A frame
	// in limbo (carved, neither free nor allocated) carries a stale mt
	// from its past life, so gate on the covering allocated head; limbo
	// frames are transient and treating them as movable is the
	// conservative choice for the Linux baseline.
	return metaMT(m) == MigrateUnmovable && metaCov(m) >= 0
}

// isAllocatedFrame reports whether the frame belongs to an allocated
// block: not free, and covered by a block (limbo frames have cov == -1).
func (pm *PhysMem) isAllocatedFrame(pfn uint64) bool {
	m := pm.meta[pfn]
	return m&flagFree == 0 && metaCov(m) >= 0
}

const noHead = ^uint64(0)

// allocHead returns the head PFN of the allocated block covering pfn, or
// noHead if pfn is not inside an allocated block. The covering order is
// stamped on every frame (pm.cov), so the lookup is O(1): blocks are
// naturally aligned, so the head is pfn rounded down to the block size.
func (pm *PhysMem) allocHead(pfn uint64) uint64 {
	m := pm.meta[pfn]
	o := metaCov(m)
	if o < 0 || m&flagFree != 0 {
		return noHead
	}
	return pfn &^ (OrderPages(o) - 1)
}

// AllocHead returns the head PFN of the allocated block covering pfn and
// whether one exists. Free and limbo frames have no allocated head.
func (pm *PhysMem) AllocHead(pfn uint64) (uint64, bool) {
	h := pm.allocHead(pfn)
	return h, h != noHead
}

// ContiguityStats summarises one full scan of physical memory.
type ContiguityStats struct {
	TotalPages uint64
	FreePages  uint64
	// FreeContigPages[order] is the number of free pages that sit inside
	// fully-free naturally-aligned blocks of the given order.
	FreeContigPages map[int]uint64
	// UnmovableBlocks[order] is the number of aligned blocks of the
	// given order containing at least one unmovable frame.
	UnmovableBlocks map[int]uint64
	// TotalBlocks[order] is the number of aligned blocks of that order.
	TotalBlocks map[int]uint64
	// PotentialBlocks[order] counts aligned blocks with no unmovable
	// frame — blocks a perfect compactor could empty (Figure 12).
	PotentialBlocks map[int]uint64
	// UnmovableBySource counts unmovable frames per allocation source.
	UnmovableBySource [NumSources]uint64
	UnmovableFrames   uint64
}

// reset prepares st for reuse, clearing counters and (re)creating maps.
func (st *ContiguityStats) reset(totalPages uint64, orders []int) {
	st.TotalPages = totalPages
	st.FreePages = 0
	st.UnmovableFrames = 0
	st.UnmovableBySource = [NumSources]uint64{}
	if st.FreeContigPages == nil {
		st.FreeContigPages = make(map[int]uint64, len(orders))
		st.UnmovableBlocks = make(map[int]uint64, len(orders))
		st.TotalBlocks = make(map[int]uint64, len(orders))
		st.PotentialBlocks = make(map[int]uint64, len(orders))
	}
	for _, m := range []map[int]uint64{st.FreeContigPages, st.UnmovableBlocks, st.TotalBlocks, st.PotentialBlocks} {
		for k := range m {
			delete(m, k)
		}
	}
	for _, o := range orders {
		st.FreeContigPages[o] = 0
		st.UnmovableBlocks[o] = 0
		st.TotalBlocks[o] = totalPages / OrderPages(o)
		st.PotentialBlocks[o] = 0
	}
}

// ScanOrders are the block sizes the paper reports: 2 MB, 4 MB, 32 MB, 1 GB.
var ScanOrders = []int{Order2M, Order4M, Order32M, Order1G}

// Scan performs a scan of physical memory at the given block orders,
// revisiting only pageblocks whose state changed since the last scan and
// merging cached summaries for the rest. The result is identical to
// ScanFull (enforced by the equivalence tests and the chaos oracle).
func (pm *PhysMem) Scan(orders []int) *ContiguityStats {
	st := &ContiguityStats{}
	pm.ScanInto(st, orders)
	return st
}

// ScanInto is Scan with a caller-owned result, so per-sample allocations
// vanish from tight study loops (fleet.Run reuses one per worker).
func (pm *PhysMem) ScanInto(st *ContiguityStats, orders []int) {
	if pm.idx == nil {
		pm.idx = newContigIndex(pm)
	}
	pm.idx.update(pm)
	pm.idx.aggregate(pm, st, orders)
}

// ScanFull performs the original recompute-everything sweep, ignoring
// and leaving untouched the incremental index. It is the equivalence
// oracle for Scan and the reference implementation of the statistics.
func (pm *PhysMem) ScanFull(orders []int) *ContiguityStats {
	st := &ContiguityStats{}
	st.reset(pm.NPages, orders)
	// Precompute per-frame classes once; reuse across orders.
	free := make([]bool, pm.NPages)
	unmov := make([]bool, pm.NPages)
	for p := uint64(0); p < pm.NPages; p++ {
		if pm.IsFree(p) {
			free[p] = true
			st.FreePages++
			continue
		}
		m := pm.meta[p]
		if m&flagPinned != 0 || metaMT(m) == MigrateUnmovable {
			// Distinguish allocated frames from limbo by checking the
			// covering block order: limbo frames have none.
			if metaCov(m) >= 0 {
				unmov[p] = true
				st.UnmovableFrames++
				st.UnmovableBySource[metaSrc(m)]++
			}
		}
	}
	for _, o := range orders {
		bp := OrderPages(o)
		nblocks := pm.NPages / bp
		st.TotalBlocks[o] = nblocks
		for blk := uint64(0); blk < nblocks; blk++ {
			base := blk * bp
			allFree, anyUnmov := true, false
			for i := uint64(0); i < bp; i++ {
				if !free[base+i] {
					allFree = false
				}
				if unmov[base+i] {
					anyUnmov = true
					// A single unmovable frame decides both counters
					// for this block; allFree is already false.
					break
				}
			}
			if allFree {
				st.FreeContigPages[o] += bp
			}
			if anyUnmov {
				st.UnmovableBlocks[o]++
			} else {
				st.PotentialBlocks[o]++
			}
		}
	}
	return st
}

// FreeContigFraction returns free contiguity at the order as a fraction
// of free memory — the x-axis metric of Figure 4.
func (st *ContiguityStats) FreeContigFraction(order int) float64 {
	if st.FreePages == 0 {
		return 0
	}
	return float64(st.FreeContigPages[order]) / float64(st.FreePages)
}

// UnmovableBlockFraction returns the fraction of aligned blocks of the
// order containing unmovable memory — the metric of Figures 5 and 11.
func (st *ContiguityStats) UnmovableBlockFraction(order int) float64 {
	if st.TotalBlocks[order] == 0 {
		return 0
	}
	return float64(st.UnmovableBlocks[order]) / float64(st.TotalBlocks[order])
}

// PotentialFraction returns the fraction of memory that perfect
// compaction could turn into contiguous blocks of the order (Figure 12).
func (st *ContiguityStats) PotentialFraction(order int) float64 {
	if st.TotalBlocks[order] == 0 {
		return 0
	}
	return float64(st.PotentialBlocks[order]) / float64(st.TotalBlocks[order])
}

// UnmovableFrameFraction returns unmovable frames over all frames (§2.5
// quotes a median of 7.6 % of 4 KB pages making 34 % of 2 MB blocks
// unmovable).
func (st *ContiguityStats) UnmovableFrameFraction() float64 {
	return float64(st.UnmovableFrames) / float64(st.TotalPages)
}

// InternalFragStats reports the §5.2 analysis of the unmovable region:
// among 2 MB blocks holding at least one unmovable frame, what fraction
// of their frames is free.
type InternalFragStats struct {
	BlocksScanned  uint64
	MeanFreeInside float64
}

// InternalFragmentation scans [start, end) at 2 MB granularity.
func (pm *PhysMem) InternalFragmentation(start, end uint64) InternalFragStats {
	var blocks uint64
	var fracSum float64
	for base := start &^ (PageblockPages - 1); base+PageblockPages <= end; base += PageblockPages {
		var freeN, unmovN uint64
		for i := uint64(0); i < PageblockPages; i++ {
			p := base + i
			if pm.IsFree(p) {
				freeN++
			} else if pm.isUnmovableFrame(p) {
				unmovN++
			}
		}
		if unmovN == 0 {
			continue
		}
		blocks++
		fracSum += float64(freeN) / float64(PageblockPages)
	}
	st := InternalFragStats{BlocksScanned: blocks}
	if blocks > 0 {
		st.MeanFreeInside = fracSum / float64(blocks)
	}
	return st
}
