package mem

// This file implements the physical-memory scanners behind the paper's
// fleet study and steady-state characterisation: Figure 4 (free-memory
// contiguity), Figure 5/11 (unmovable blocks), Figure 12 (potential
// contiguity under perfect compaction), and the §5.2 internal-
// fragmentation analysis of the unmovable region. Each scan is a single
// O(frames) pass, mirroring the full physical-memory scans the authors
// ran across sampled production servers.

// isUnmovableFrame reports whether a frame blocks compaction entirely:
// it is allocated and either carries the unmovable migratetype or is
// pinned (DMA/RDMA-style).
func (pm *PhysMem) isUnmovableFrame(pfn uint64) bool {
	if pm.IsFree(pfn) {
		return false
	}
	if pm.flags[pfn]&flagPinned != 0 {
		return true
	}
	// setAllocated stamps mt onto every frame of a block (tails
	// included), so pm.mt is valid here for allocated frames. A frame
	// in limbo (carved, neither free nor allocated) carries a stale mt
	// from its past life, so gate on the covering allocated head; limbo
	// frames are transient and treating them as movable is the
	// conservative choice for the Linux baseline.
	return MigrateType(pm.mt[pfn]) == MigrateUnmovable && pm.isAllocatedFrame(pfn)
}

// isAllocatedFrame reports whether the frame belongs to an allocated block.
// Allocated heads have order >= 0 and are not free; tails are not free and
// not heads. Limbo frames (carved) also look like tails, so PhysMem tracks
// allocation via the mt validity rule: setAllocated stamps every frame,
// clearBlock leaves marks cleared. To distinguish, allocated frames are
// those not free and covered by an allocated head.
func (pm *PhysMem) isAllocatedFrame(pfn uint64) bool {
	return !pm.IsFree(pfn) && pm.allocHead(pfn) != noHead
}

const noHead = ^uint64(0)

// allocHead returns the head PFN of the allocated block covering pfn, or
// noHead if pfn is not inside an allocated block. Allocated blocks are
// naturally aligned, so only aligned candidates need checking.
func (pm *PhysMem) allocHead(pfn uint64) uint64 {
	for o := 0; o <= MaxOrder; o++ {
		h := pfn &^ (OrderPages(o) - 1)
		if pm.IsHead(h) && !pm.IsFree(h) {
			if ho := int(pm.order[h]); ho >= 0 && h+OrderPages(ho) > pfn {
				return h
			}
			return noHead
		}
	}
	return noHead
}

// ContiguityStats summarises one full scan of physical memory.
type ContiguityStats struct {
	TotalPages uint64
	FreePages  uint64
	// FreeContigPages[order] is the number of free pages that sit inside
	// fully-free naturally-aligned blocks of the given order.
	FreeContigPages map[int]uint64
	// UnmovableBlocks[order] is the number of aligned blocks of the
	// given order containing at least one unmovable frame.
	UnmovableBlocks map[int]uint64
	// TotalBlocks[order] is the number of aligned blocks of that order.
	TotalBlocks map[int]uint64
	// PotentialBlocks[order] counts aligned blocks with no unmovable
	// frame — blocks a perfect compactor could empty (Figure 12).
	PotentialBlocks map[int]uint64
	// UnmovableBySource counts unmovable frames per allocation source.
	UnmovableBySource [NumSources]uint64
	UnmovableFrames   uint64
}

// ScanOrders are the block sizes the paper reports: 2 MB, 4 MB, 32 MB, 1 GB.
var ScanOrders = []int{Order2M, Order4M, Order32M, Order1G}

// Scan performs a full scan of physical memory at the given block orders.
func (pm *PhysMem) Scan(orders []int) *ContiguityStats {
	st := &ContiguityStats{
		TotalPages:      pm.NPages,
		FreeContigPages: make(map[int]uint64, len(orders)),
		UnmovableBlocks: make(map[int]uint64, len(orders)),
		TotalBlocks:     make(map[int]uint64, len(orders)),
		PotentialBlocks: make(map[int]uint64, len(orders)),
	}
	// Precompute per-frame classes once; reuse across orders.
	free := make([]bool, pm.NPages)
	unmov := make([]bool, pm.NPages)
	for p := uint64(0); p < pm.NPages; p++ {
		if pm.IsFree(p) {
			free[p] = true
			st.FreePages++
			continue
		}
		if pm.flags[p]&flagPinned != 0 || MigrateType(pm.mt[p]) == MigrateUnmovable {
			// Distinguish allocated frames from limbo by checking the
			// covering allocated head lazily only for candidates.
			if pm.isAllocatedFrame(p) {
				unmov[p] = true
				st.UnmovableFrames++
				st.UnmovableBySource[pm.src[p]]++
			}
		}
	}
	for _, o := range orders {
		bp := OrderPages(o)
		nblocks := pm.NPages / bp
		st.TotalBlocks[o] = nblocks
		for blk := uint64(0); blk < nblocks; blk++ {
			base := blk * bp
			allFree, anyUnmov := true, false
			for i := uint64(0); i < bp; i++ {
				if !free[base+i] {
					allFree = false
				}
				if unmov[base+i] {
					anyUnmov = true
					// A single unmovable frame decides both counters
					// for this block; allFree is already false.
					break
				}
			}
			if allFree {
				st.FreeContigPages[o] += bp
			}
			if anyUnmov {
				st.UnmovableBlocks[o]++
			} else {
				st.PotentialBlocks[o]++
			}
		}
	}
	return st
}

// FreeContigFraction returns free contiguity at the order as a fraction
// of free memory — the x-axis metric of Figure 4.
func (st *ContiguityStats) FreeContigFraction(order int) float64 {
	if st.FreePages == 0 {
		return 0
	}
	return float64(st.FreeContigPages[order]) / float64(st.FreePages)
}

// UnmovableBlockFraction returns the fraction of aligned blocks of the
// order containing unmovable memory — the metric of Figures 5 and 11.
func (st *ContiguityStats) UnmovableBlockFraction(order int) float64 {
	if st.TotalBlocks[order] == 0 {
		return 0
	}
	return float64(st.UnmovableBlocks[order]) / float64(st.TotalBlocks[order])
}

// PotentialFraction returns the fraction of memory that perfect
// compaction could turn into contiguous blocks of the order (Figure 12).
func (st *ContiguityStats) PotentialFraction(order int) float64 {
	if st.TotalBlocks[order] == 0 {
		return 0
	}
	return float64(st.PotentialBlocks[order]) / float64(st.TotalBlocks[order])
}

// UnmovableFrameFraction returns unmovable frames over all frames (§2.5
// quotes a median of 7.6 % of 4 KB pages making 34 % of 2 MB blocks
// unmovable).
func (st *ContiguityStats) UnmovableFrameFraction() float64 {
	return float64(st.UnmovableFrames) / float64(st.TotalPages)
}

// InternalFragStats reports the §5.2 analysis of the unmovable region:
// among 2 MB blocks holding at least one unmovable frame, what fraction
// of their frames is free.
type InternalFragStats struct {
	BlocksScanned  uint64
	MeanFreeInside float64
}

// InternalFragmentation scans [start, end) at 2 MB granularity.
func (pm *PhysMem) InternalFragmentation(start, end uint64) InternalFragStats {
	var blocks uint64
	var fracSum float64
	for base := start &^ (PageblockPages - 1); base+PageblockPages <= end; base += PageblockPages {
		var freeN, unmovN uint64
		for i := uint64(0); i < PageblockPages; i++ {
			p := base + i
			if pm.IsFree(p) {
				freeN++
			} else if pm.isUnmovableFrame(p) {
				unmovN++
			}
		}
		if unmovN == 0 {
			continue
		}
		blocks++
		fracSum += float64(freeN) / float64(PageblockPages)
	}
	st := InternalFragStats{BlocksScanned: blocks}
	if blocks > 0 {
		st.MeanFreeInside = fracSum / float64(blocks)
	}
	return st
}
