package mem

import (
	"math/bits"
	"runtime"
	"sync"
)

// ContigIndex is the event-driven incremental contiguity accountant
// behind Scan. The frame table marks pageblocks dirty on every state
// change (alloc/free/steal/carve/donate/restamp/pin); the index keeps a
// per-pageblock summary — free-frame and unmovable-frame populations plus
// fully-free / contains-unmovable counts for every sub-pageblock order —
// and recomputes only dirty pageblocks when a scan is taken. Orders above
// a pageblock aggregate across consecutive pageblock summaries, so every
// statistic ScanFull derives from frames is derivable from summaries.
//
// The design follows Mansi & Swift's observation (PAPERS.md) that
// fragmentation statistics can be maintained from allocator events
// rather than recomputed: the summary is a pure function of the frames
// in its pageblock, so a scan of a mostly-clean machine is O(dirty)
// instead of O(NPages), and the result is bit-identical to ScanFull.
type ContigIndex struct {
	summaries []pbSummary
}

// pbSummary caches everything scans need to know about one 2 MB
// pageblock. fullyFree[o] / anyUnmov[o] count the aligned order-o blocks
// inside the pageblock that are entirely free / contain at least one
// unmovable frame (o = PageblockOrder describes the pageblock itself).
type pbSummary struct {
	freePages   uint16
	unmovFrames uint16
	limboFrames uint16
	unmovBySrc  [NumSources]uint16
	fullyFree   [PageblockOrder + 1]uint16
	anyUnmov    [PageblockOrder + 1]uint16
}

func newContigIndex(pm *PhysMem) *ContigIndex {
	return &ContigIndex{summaries: make([]pbSummary, pm.NPages/PageblockPages)}
}

// recompute rebuilds the summary of one pageblock from its frames. The
// per-frame classification matches ScanFull exactly: free, unmovable
// (allocated with unmovable migratetype, or pinned), or limbo.
func (ci *ContigIndex) recompute(pm *PhysMem, pb uint64) {
	s := &ci.summaries[pb]
	*s = pbSummary{}
	base := pb * PageblockPages
	var freeL, unmovL [PageblockPages]bool
	for i := uint64(0); i < PageblockPages; i++ {
		m := pm.meta[base+i]
		if m&flagFree != 0 {
			freeL[i] = true
			s.freePages++
			continue
		}
		if metaCov(m) < 0 {
			s.limboFrames++
			continue
		}
		if m&flagPinned != 0 || metaMT(m) == MigrateUnmovable {
			unmovL[i] = true
			s.unmovFrames++
			s.unmovBySrc[metaSrc(m)]++
		}
	}
	s.fullyFree[0] = s.freePages
	s.anyUnmov[0] = s.unmovFrames
	n := PageblockPages
	for o := 1; o <= PageblockOrder; o++ {
		n >>= 1
		var ff, au uint16
		for b := 0; b < n; b++ {
			f := freeL[2*b] && freeL[2*b+1]
			u := unmovL[2*b] || unmovL[2*b+1]
			freeL[b], unmovL[b] = f, u
			if f {
				ff++
			}
			if u {
				au++
			}
		}
		s.fullyFree[o], s.anyUnmov[o] = ff, au
	}
}

// parallelDirtyThreshold is the dirty-pageblock count above which update
// shards the rebuild across CPUs (2048 pageblocks = 4 GB of stale
// summaries; below that goroutine overhead beats the win).
const parallelDirtyThreshold = 2048

// update re-summarises every dirty pageblock and clears the dirty set.
// Large backlogs (cold starts, whole-machine churn) rebuild in parallel:
// workers own disjoint contiguous pageblock ranges and write disjoint
// summary slots, so the result is deterministic regardless of scheduling
// — the merge order is fixed by construction.
func (ci *ContigIndex) update(pm *PhysMem) {
	if pm.dirtyCount == 0 {
		return
	}
	npb := pm.NPages / PageblockPages
	if workers := runtime.GOMAXPROCS(0); pm.dirtyCount >= parallelDirtyThreshold && workers > 1 {
		if workers > 16 {
			workers = 16
		}
		shard := (npb + uint64(workers) - 1) / uint64(workers)
		// Align shards to 64-pageblock dirty words so no word is shared.
		shard = (shard + 63) &^ 63
		var wg sync.WaitGroup
		for lo := uint64(0); lo < npb; lo += shard {
			hi := lo + shard
			if hi > npb {
				hi = npb
			}
			wg.Add(1)
			go func(lo, hi uint64) {
				defer wg.Done()
				ci.rebuildRange(pm, lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	} else {
		ci.rebuildRange(pm, 0, npb)
	}
	for i := range pm.dirty {
		pm.dirty[i] = 0
	}
	pm.dirtyCount = 0
}

// rebuildRange recomputes the dirty pageblocks in [lo, hi), walking the
// dirty bitset a word at a time. lo must be 64-aligned unless the range
// covers the whole bitset.
func (ci *ContigIndex) rebuildRange(pm *PhysMem, lo, hi uint64) {
	for w := lo >> 6; w<<6 < hi; w++ {
		word := pm.dirty[w]
		if word == 0 {
			continue
		}
		base := w << 6
		for word != 0 {
			pb := base + uint64(bits.TrailingZeros64(word))
			word &= word - 1
			if pb < lo || pb >= hi {
				continue
			}
			ci.recompute(pm, pb)
		}
	}
}

// aggregate folds the pageblock summaries into ContiguityStats for the
// requested orders, matching ScanFull's definitions exactly. Orders at or
// below a pageblock read the cached sub-block counts; larger orders
// combine 2^(order-PageblockOrder) consecutive pageblocks.
func (ci *ContigIndex) aggregate(pm *PhysMem, st *ContiguityStats, orders []int) {
	st.reset(pm.NPages, orders)
	npb := pm.NPages / PageblockPages
	for pb := uint64(0); pb < npb; pb++ {
		s := &ci.summaries[pb]
		st.FreePages += uint64(s.freePages)
		st.UnmovableFrames += uint64(s.unmovFrames)
		for src, n := range s.unmovBySrc {
			st.UnmovableBySource[src] += uint64(n)
		}
	}
	for _, o := range orders {
		if o <= PageblockOrder {
			var ff, au uint64
			for pb := uint64(0); pb < npb; pb++ {
				ff += uint64(ci.summaries[pb].fullyFree[o])
				au += uint64(ci.summaries[pb].anyUnmov[o])
			}
			st.FreeContigPages[o] = ff * OrderPages(o)
			st.UnmovableBlocks[o] = au
			st.PotentialBlocks[o] = st.TotalBlocks[o] - au
			continue
		}
		g := uint64(1) << uint(o-PageblockOrder)
		nblocks := npb / g
		for blk := uint64(0); blk < nblocks; blk++ {
			allFree, anyUnmov := true, false
			for j := blk * g; j < (blk+1)*g; j++ {
				s := &ci.summaries[j]
				if s.freePages != PageblockPages {
					allFree = false
				}
				if s.unmovFrames > 0 {
					anyUnmov = true
					break
				}
			}
			if allFree {
				st.FreeContigPages[o] += OrderPages(o)
			}
			if anyUnmov {
				st.UnmovableBlocks[o]++
			} else {
				st.PotentialBlocks[o]++
			}
		}
	}
}

// PageblockInfo is the cached occupancy summary of one 2 MB pageblock,
// refreshed on demand. Compaction's candidate scanner uses it to price
// or reject whole pageblocks without touching their 512 frames.
type PageblockInfo struct {
	FreePages   uint64
	UnmovFrames uint64
	LimboFrames uint64
}

// PageblockInfoAt returns the summary of the pageblock containing pfn,
// recomputing it first if the pageblock is dirty.
func (pm *PhysMem) PageblockInfoAt(pfn uint64) PageblockInfo {
	if pm.idx == nil {
		pm.idx = newContigIndex(pm)
	}
	pb := pfn / PageblockPages
	w, b := pb>>6, uint64(1)<<(pb&63)
	if pm.dirty[w]&b != 0 {
		pm.idx.recompute(pm, pb)
		pm.dirty[w] &^= b
		pm.dirtyCount--
	}
	s := &pm.idx.summaries[pb]
	return PageblockInfo{
		FreePages:   uint64(s.freePages),
		UnmovFrames: uint64(s.unmovFrames),
		LimboFrames: uint64(s.limboFrames),
	}
}
