package workload

import (
	"contiguitas/internal/kernel"
	"contiguitas/internal/mem"
	"contiguitas/internal/stats"
)

// Fragmenter reproduces the paper's Full-Fragmentation setup: a
// fragmentation process churns the machine before the workload is
// deployed, leaving unmovable kernel residue scattered through the
// address space. The mechanism mirrors how production machines decay:
// memory fills with short-lived pages, holes open everywhere, and
// unmovable allocations (networking buffers, slab growth) land in the
// holes via fallback stealing. On the Linux layout the residue poisons
// nearly every 2 MB block; on Contiguitas it is confined by design.
type Fragmenter struct {
	// PoisonFraction is the fraction of 2 MB pageblocks that receive an
	// unmovable allocation in a freshly punched hole.
	PoisonFraction float64
	Seed           uint64
}

// DefaultFragmenter fully fragments a machine: nearly every pageblock is
// poisoned, so no 2 MB (let alone 1 GB) page can ever be assembled on
// the Linux layout.
func DefaultFragmenter(seed uint64) Fragmenter {
	return Fragmenter{PoisonFraction: 0.98, Seed: seed}
}

// Run executes the fragmentation pass. It returns the unmovable residue
// handles; production kernels would keep such allocations alive
// indefinitely, so callers normally retain (and never free) them.
func (f Fragmenter) Run(k *kernel.Kernel) []*kernel.Page {
	rng := stats.NewRNG(f.Seed)
	pm := k.PM()

	// Phase 1: fill the machine with short-lived movable pages, indexed
	// by pageblock so holes can be punched precisely.
	byBlock := make(map[uint64][]*kernel.Page)
	var all []*kernel.Page
	for {
		p, err := k.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcUser)
		if err != nil {
			break
		}
		blk := pm.PageblockOf(p.PFN)
		byBlock[blk] = append(byBlock[blk], p)
		all = append(all, p)
	}

	// Phase 2: per pageblock, free one movable page and immediately
	// allocate an unmovable one. With memory otherwise full, the buddy
	// hands the freshly freed frame to the unmovable request (a
	// polluting fallback steal on Linux; a confined allocation on
	// Contiguitas).
	var residue []*kernel.Page
	freed := make(map[*kernel.Page]bool)
	for blk := uint64(0); blk < pm.NumPageblocks(); blk++ {
		pages := byBlock[blk]
		if len(pages) == 0 || !rng.Bool(f.PoisonFraction) {
			continue
		}
		victim := pages[rng.Intn(len(pages))]
		if freed[victim] {
			continue
		}
		k.Free(victim)
		freed[victim] = true
		src := mem.SrcNetworking
		if rng.Bool(0.25) {
			src = mem.SrcSlab
		}
		p, err := k.Alloc(mem.Order4K, mem.MigrateUnmovable, src)
		if err != nil {
			continue
		}
		residue = append(residue, p)
	}

	// Phase 3: the process exits — its movable memory is freed in
	// random order, leaving scattered free 4 KB holes plus whatever
	// larger runs happen to coalesce.
	shuffle(rng, all)
	for _, p := range all {
		if !freed[p] {
			k.Free(p)
			freed[p] = true
		}
	}
	return residue
}

// PartialFragmenter models the paper's Partial-Fragmentation setup: the
// workload itself is run to steady state and restarted, so the machine
// carries that workload's own unmovable residue and hole pattern.
func PartialFragmenter(k *kernel.Kernel, p Profile, warmupTicks uint64, seed uint64) {
	r := NewRunner(k, p, seed)
	r.Run(warmupTicks)
	// Restart: user memory and page cache are released; the unmovable
	// pool persists (kernel state survives a service restart).
	for _, m := range r.mappings {
		k.FreeMapping(m)
	}
	r.mappings = nil
}

func shuffle(rng *stats.RNG, ps []*kernel.Page) {
	for i := len(ps) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		ps[i], ps[j] = ps[j], ps[i]
	}
}
