package workload

import (
	"fmt"
	"io"
	"reflect"

	"contiguitas/internal/fault"
	"contiguitas/internal/kernel"
	"contiguitas/internal/mem"
	"contiguitas/internal/pressure"
	"contiguitas/internal/trace"
)

// ChaosOptions configures a chaos soak: a service profile driven against
// a kernel whose fault points misfire at the given rates, with periodic
// invariant checkpoints and a post-fault recovery phase.
type ChaosOptions struct {
	Mode     kernel.Mode
	MemBytes uint64
	Profile  Profile
	// Seed drives both the fault schedule and the workload; the same seed
	// reproduces the same soak exactly.
	Seed uint64
	// Ticks is the faulted phase length; RecoveryTicks runs after every
	// fault point is disarmed.
	Ticks         uint64
	RecoveryTicks uint64
	// CheckEvery is the invariant-checkpoint cadence in ticks.
	CheckEvery uint64

	// Per-point fault probabilities (0 disarms the point).
	MoverFaultRate  float64
	CarveFaultRate  float64
	SWFaultRate     float64
	ResizeFaultRate float64
	// ReclaimFaultRate misfires the reclaim-makes-no-progress point,
	// which starves the throttle rung and drives allocations deeper into
	// the pressure ladder.
	ReclaimFaultRate float64

	// Pressure enables the kernel's exhaustion ladder (admission control,
	// throttling, emergency shrink, OOM killer). Nil keeps the legacy
	// fail-fast slow path.
	Pressure *pressure.Config

	// Hook, when set, runs after each tick's pulse in both the faulted
	// and recovery phases — test instrumentation (e.g. the injected
	// invariant-break regression) that must fire identically in golden
	// and resumed runs.
	Hook func(tick uint64, k *kernel.Kernel)

	// DefragEvery runs a hardware defrag pass of the unmovable region
	// every N ticks (0 disables): steady mover traffic, so mover faults
	// have something to hit. ProbeEvery requests and releases a 2 MB
	// HugeTLB pair every N ticks (0 disables), forcing direct compaction
	// — and with it the carve fault point — under fragmentation.
	DefragEvery uint64
	ProbeEvery  uint64
	// WobbleEvery alternately expands and shrinks the unmovable region by
	// one pageblock every N ticks (0 disables; ModeContiguitas only):
	// every move evacuates a range, crossing the carve fault point and
	// migrating whatever lives there.
	WobbleEvery uint64

	// Checkpoint, when set, observes every invariant checkpoint as it
	// happens (the CLI uses it for live progress lines).
	Checkpoint func(ChaosCheckpoint)

	// OnKernel, when set, is called with the freshly booted kernel before
	// the soak starts — the hook the CLI uses to attach telemetry
	// (tracer, sampler) to a kernel RunChaos creates internally. On a
	// resumed soak it receives the restored kernel instead, so telemetry
	// is re-attached fresh (rings and samplers are not checkpointed).
	OnKernel func(*kernel.Kernel)

	// Export, when set, runs exactly once on every exit path — normal
	// completion, a KillAtTick crash, and error returns — so telemetry
	// artifacts are always flushed complete, never truncated.
	Export func()

	// SnapshotEvery, when >0, invokes OnSnapshot at the end of every
	// N-th tick — the EndTick quiesce boundary, where migrations have
	// drained and compaction's cross-tick state is serializable.
	SnapshotEvery uint64
	// OnSnapshot observes the quiesced machine at each snapshot point.
	OnSnapshot func(tick uint64, k *kernel.Kernel, r *Runner, inj *fault.Injector)

	// KillAtTick, when >0, terminates the soak right after completing
	// that tick (and its snapshot, if aligned), simulating a crash
	// mid-run. The returned report has Killed set and is partial.
	KillAtTick uint64

	// Resume, when set, continues a previous soak from restored state
	// instead of booting fresh: ticks 1..StartTick are skipped and the
	// machinery picks up at StartTick+1.
	Resume *ChaosResume
}

// ChaosResume carries the restored machine a resumed soak continues
// from. The injector must be the one wired into the kernel's config
// (kernel.Restore re-binds its clock); StartTick is how many ticks of
// the faulted phase had completed at the checkpoint.
type ChaosResume struct {
	K         *kernel.Kernel
	Runner    *Runner
	Injector  *fault.Injector
	StartTick uint64
}

// DefaultChaosOptions is the acceptance soak: a Contiguitas kernel under
// the Web profile with every fault point misfiring at a few percent.
func DefaultChaosOptions() ChaosOptions {
	// An overcommitted Web profile: demand exceeds the movable region, so
	// the free space fragments, compaction probes must evacuate live
	// movable pages, and the hardware-to-software degradation ladder sees
	// real traffic. Allocation failures under overcommit are expected and
	// reported, not errors.
	p := Web()
	p.UserFrac = 0.79
	p.PageCacheFrac = 0.09
	return ChaosOptions{
		Mode:             kernel.ModeContiguitas,
		MemBytes:         512 << 20,
		Profile:          p,
		Seed:             1,
		Ticks:            600,
		RecoveryTicks:    100,
		CheckEvery:       50,
		MoverFaultRate:   0.05,
		CarveFaultRate:   0.02,
		SWFaultRate:      0.01,
		ResizeFaultRate:  0.02,
		ReclaimFaultRate: 0.01,
		Pressure:         pressure.DefaultConfig(),
		DefragEvery:      10,
		ProbeEvery:       25,
		WobbleEvery:      15,
	}
}

// ChaosCheckpoint is one periodic invariant check during the soak.
type ChaosCheckpoint struct {
	Tick       uint64
	Events     uint64
	Robustness trace.Robustness
	Violation  error
}

// ChaosReport summarises a completed soak.
type ChaosReport struct {
	Ticks       uint64
	Events      uint64
	Checkpoints int
	// Violations holds every invariant failure observed (empty on a
	// healthy kernel).
	Violations []string
	// Faults is the per-point injection accounting; TotalInjected sums
	// the fired counts.
	Faults        []fault.PointStats
	TotalInjected uint64
	Robustness    trace.Robustness

	UnmovableAllocFailures uint64

	// Recovery evidence: with faults disarmed the kernel must still be
	// able to manufacture contiguity.
	Recovered           bool
	Huge2MAfterRecovery int
	FreeContig2MAfter   float64

	// Killed marks a soak terminated early by KillAtTick; every field
	// past the kill point is unset.
	Killed bool
	// FinalStateHash is the kernel's canonical state digest at the end
	// of the run (zero when killed) — the kill-and-resume equivalence
	// witness. FinalCounters is the full counter set at the same point,
	// compared field-by-field by the recovery CI job. OOMHistory is the
	// kernel's kill log, a third equivalence witness when the pressure
	// ladder is active.
	FinalStateHash uint64
	FinalCounters  kernel.Counters
	OOMHistory     []pressure.Kill
}

// maxViolations bounds the report; a corrupted kernel would otherwise
// fail every remaining checkpoint identically.
const maxViolations = 10

// scanEquivalence checks that the incremental Scan matches a fresh full
// scan exactly — the correctness witness for the event-driven contiguity
// accounting under chaos.
func scanEquivalence(k *kernel.Kernel) error {
	inc := k.PM().Scan(mem.ScanOrders)
	full := k.PM().ScanFull(mem.ScanOrders)
	if !reflect.DeepEqual(inc, full) {
		return fmt.Errorf("incremental scan diverged from full scan: incremental %+v, full %+v", inc, full)
	}
	return nil
}

// ChaosKernelConfig is the machine configuration RunChaos boots for the
// given options. It is exported so resume paths can rebuild the same
// machine around restored state: the snapshot fingerprint (size, mode,
// seed, HW mover) must match what the original soak booted.
func ChaosKernelConfig(opts ChaosOptions) kernel.Config {
	cfg := kernel.DefaultConfig(opts.Mode)
	cfg.MemBytes = opts.MemBytes
	cfg.InitialUnmovableBytes = opts.MemBytes / 8
	cfg.MinUnmovableBytes = 4 << 20
	cfg.MaxUnmovableBytes = opts.MemBytes / 2
	cfg.HWMover = kernel.NewAnalyticMover()
	// Chaos runs with a tight retry budget: exhaustion — and with it the
	// fallback and deferral ladders — must actually occur at realistic
	// fault rates, not only in the p^4 tail.
	cfg.MigrateRetryLimit = 1
	cfg.Seed = opts.Seed
	cfg.Pressure = opts.Pressure
	return cfg
}

// ArmChaosFaults arms the soak's fault points on an injector at the
// configured rates.
func ArmChaosFaults(inj *fault.Injector, opts ChaosOptions) {
	arm := func(point string, rate float64) {
		if rate > 0 {
			inj.Arm(point, fault.Trigger{Prob: rate})
		}
	}
	arm(fault.PointHWMover, opts.MoverFaultRate)
	arm(fault.PointCompactCarve, opts.CarveFaultRate)
	arm(fault.PointSWMigrate, opts.SWFaultRate)
	arm(fault.PointRegionResize, opts.ResizeFaultRate)
	arm(fault.PointReclaimProgress, opts.ReclaimFaultRate)
}

// RunChaos drives one full chaos soak and reports the outcome. The soak
// is deterministic in ChaosOptions: fault schedules and workload churn
// both derive from the seed. A resumed soak (opts.Resume) continues a
// checkpointed one and reaches the same final kernel state hash as an
// uninterrupted run; only trace-layer event counts differ (the trace
// writer restarts at resume).
func RunChaos(opts ChaosOptions) (*ChaosReport, error) {
	if opts.Export != nil {
		defer opts.Export()
	}
	if opts.Ticks == 0 {
		return nil, fmt.Errorf("chaos: zero-tick soak")
	}
	if opts.CheckEvery == 0 {
		opts.CheckEvery = 50
	}

	var (
		k         *kernel.Kernel
		inj       *fault.Injector
		startTick uint64
	)
	if opts.Resume != nil {
		if opts.Resume.K == nil || opts.Resume.Runner == nil || opts.Resume.Injector == nil {
			return nil, fmt.Errorf("chaos: resume requires kernel, runner, and injector")
		}
		k, inj, startTick = opts.Resume.K, opts.Resume.Injector, opts.Resume.StartTick
	} else {
		cfg := ChaosKernelConfig(opts)
		inj = fault.New(opts.Seed)
		ArmChaosFaults(inj, opts)
		cfg.Faults = inj
		k = kernel.New(cfg)
	}
	if opts.OnKernel != nil {
		opts.OnKernel(k)
	}

	// Count every public kernel event through the trace layer; the soak
	// discards the bytes and keeps the counter.
	tw, err := trace.NewWriter(io.Discard)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	rec := trace.Attach(k, tw)

	var r *Runner
	if opts.Resume != nil {
		r = opts.Resume.Runner
	} else {
		r = NewRunner(k, opts.Profile, opts.Seed+1)
	}
	rep := &ChaosReport{}

	checkpoint := func(tick uint64) {
		rep.Checkpoints++
		var verr error
		if len(rep.Violations) < maxViolations {
			verr = k.CheckInvariants()
			if verr == nil {
				// Scan-equivalence oracle: the incremental contiguity
				// accounting must agree exactly with a from-scratch sweep,
				// including in whatever state the injected faults left.
				verr = scanEquivalence(k)
			}
			if verr != nil {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("tick %d: %v", tick, verr))
			}
		}
		if opts.Checkpoint != nil {
			opts.Checkpoint(ChaosCheckpoint{
				Tick:       tick,
				Events:     tw.Events(),
				Robustness: trace.SnapshotRobustness(k),
				Violation:  verr,
			})
		}
	}

	// pulse injects deterministic mover and compaction traffic on top of
	// the profile, so every armed fault point sees regular crossings.
	pulse := func(tick uint64) {
		if opts.DefragEvery > 0 && tick%opts.DefragEvery == 0 {
			k.DefragUnmovable()
		}
		if opts.ProbeEvery > 0 && tick%opts.ProbeEvery == 0 {
			huge := k.AllocHugeTLB(mem.Order2M, 2)
			k.FreeHugeTLB(&huge)
		}
		if opts.WobbleEvery > 0 && opts.Mode == kernel.ModeContiguitas &&
			tick%opts.WobbleEvery == 0 {
			if (tick/opts.WobbleEvery)%2 == 0 {
				k.ShrinkUnmovable(mem.PageblockPages)
			} else {
				k.ExpandUnmovable(mem.PageblockPages)
			}
		}
	}

	for tick := startTick + 1; tick <= opts.Ticks; tick++ {
		r.Step()
		pulse(tick)
		if opts.Hook != nil {
			opts.Hook(tick, k)
		}
		if tick%opts.CheckEvery == 0 || tick == opts.Ticks {
			checkpoint(tick)
		}
		// Snapshots and the simulated crash both happen at the end of
		// the tick body — the EndTick quiesce boundary — so a resumed
		// run re-enters the loop at exactly the state the golden run
		// carried into the next iteration.
		if opts.SnapshotEvery > 0 && opts.OnSnapshot != nil && tick%opts.SnapshotEvery == 0 {
			opts.OnSnapshot(tick, k, r, inj)
		}
		if opts.KillAtTick > 0 && tick >= opts.KillAtTick {
			rep.Killed = true
			rep.Ticks = tick
			rep.Events = tw.Events()
			return rep, nil
		}
	}

	// Recovery phase: lift every fault and let the deferred work drain.
	inj.DisarmAll()
	for tick := uint64(1); tick <= opts.RecoveryTicks; tick++ {
		r.Step()
		pulse(opts.Ticks + tick)
		if opts.Hook != nil {
			opts.Hook(opts.Ticks+tick, k)
		}
	}
	checkpoint(opts.Ticks + opts.RecoveryTicks)

	// The recovered kernel must still manufacture contiguity on demand.
	huge := k.AllocHugeTLB(mem.Order2M, 4)
	rep.Huge2MAfterRecovery = huge.Allocated
	k.FreeHugeTLB(&huge)

	scan := k.PM().Scan([]int{mem.Order2M})
	rep.FreeContig2MAfter = scan.FreeContigFraction(mem.Order2M)

	rep.Ticks = opts.Ticks + opts.RecoveryTicks
	rep.Events = tw.Events()
	rep.Faults = inj.Snapshot()
	rep.TotalInjected = inj.TotalFired()
	rep.Robustness = trace.SnapshotRobustness(k)
	rep.UnmovableAllocFailures = r.UnmovableAllocFailures
	rep.Recovered = len(rep.Violations) == 0 && rep.Huge2MAfterRecovery > 0
	rep.FinalStateHash = k.StateHash()
	rep.FinalCounters = k.Counters
	rep.OOMHistory = k.OOMHistory()
	if rerr := rec.Err(); rerr != nil {
		return rep, fmt.Errorf("chaos: trace: %w", rerr)
	}
	return rep, nil
}
