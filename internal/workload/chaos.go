package workload

import (
	"fmt"
	"io"
	"reflect"

	"contiguitas/internal/fault"
	"contiguitas/internal/kernel"
	"contiguitas/internal/mem"
	"contiguitas/internal/trace"
)

// ChaosOptions configures a chaos soak: a service profile driven against
// a kernel whose fault points misfire at the given rates, with periodic
// invariant checkpoints and a post-fault recovery phase.
type ChaosOptions struct {
	Mode     kernel.Mode
	MemBytes uint64
	Profile  Profile
	// Seed drives both the fault schedule and the workload; the same seed
	// reproduces the same soak exactly.
	Seed uint64
	// Ticks is the faulted phase length; RecoveryTicks runs after every
	// fault point is disarmed.
	Ticks         uint64
	RecoveryTicks uint64
	// CheckEvery is the invariant-checkpoint cadence in ticks.
	CheckEvery uint64

	// Per-point fault probabilities (0 disarms the point).
	MoverFaultRate  float64
	CarveFaultRate  float64
	SWFaultRate     float64
	ResizeFaultRate float64

	// DefragEvery runs a hardware defrag pass of the unmovable region
	// every N ticks (0 disables): steady mover traffic, so mover faults
	// have something to hit. ProbeEvery requests and releases a 2 MB
	// HugeTLB pair every N ticks (0 disables), forcing direct compaction
	// — and with it the carve fault point — under fragmentation.
	DefragEvery uint64
	ProbeEvery  uint64
	// WobbleEvery alternately expands and shrinks the unmovable region by
	// one pageblock every N ticks (0 disables; ModeContiguitas only):
	// every move evacuates a range, crossing the carve fault point and
	// migrating whatever lives there.
	WobbleEvery uint64

	// Checkpoint, when set, observes every invariant checkpoint as it
	// happens (the CLI uses it for live progress lines).
	Checkpoint func(ChaosCheckpoint)

	// OnKernel, when set, is called with the freshly booted kernel before
	// the soak starts — the hook the CLI uses to attach telemetry
	// (tracer, sampler) to a kernel RunChaos creates internally.
	OnKernel func(*kernel.Kernel)
}

// DefaultChaosOptions is the acceptance soak: a Contiguitas kernel under
// the Web profile with every fault point misfiring at a few percent.
func DefaultChaosOptions() ChaosOptions {
	// An overcommitted Web profile: demand exceeds the movable region, so
	// the free space fragments, compaction probes must evacuate live
	// movable pages, and the hardware-to-software degradation ladder sees
	// real traffic. Allocation failures under overcommit are expected and
	// reported, not errors.
	p := Web()
	p.UserFrac = 0.79
	p.PageCacheFrac = 0.09
	return ChaosOptions{
		Mode:            kernel.ModeContiguitas,
		MemBytes:        512 << 20,
		Profile:         p,
		Seed:            1,
		Ticks:           600,
		RecoveryTicks:   100,
		CheckEvery:      50,
		MoverFaultRate:  0.05,
		CarveFaultRate:  0.02,
		SWFaultRate:     0.01,
		ResizeFaultRate: 0.02,
		DefragEvery:     10,
		ProbeEvery:      25,
		WobbleEvery:     15,
	}
}

// ChaosCheckpoint is one periodic invariant check during the soak.
type ChaosCheckpoint struct {
	Tick       uint64
	Events     uint64
	Robustness trace.Robustness
	Violation  error
}

// ChaosReport summarises a completed soak.
type ChaosReport struct {
	Ticks       uint64
	Events      uint64
	Checkpoints int
	// Violations holds every invariant failure observed (empty on a
	// healthy kernel).
	Violations []string
	// Faults is the per-point injection accounting; TotalInjected sums
	// the fired counts.
	Faults        []fault.PointStats
	TotalInjected uint64
	Robustness    trace.Robustness

	UnmovableAllocFailures uint64

	// Recovery evidence: with faults disarmed the kernel must still be
	// able to manufacture contiguity.
	Recovered           bool
	Huge2MAfterRecovery int
	FreeContig2MAfter   float64
}

// maxViolations bounds the report; a corrupted kernel would otherwise
// fail every remaining checkpoint identically.
const maxViolations = 10

// scanEquivalence checks that the incremental Scan matches a fresh full
// scan exactly — the correctness witness for the event-driven contiguity
// accounting under chaos.
func scanEquivalence(k *kernel.Kernel) error {
	inc := k.PM().Scan(mem.ScanOrders)
	full := k.PM().ScanFull(mem.ScanOrders)
	if !reflect.DeepEqual(inc, full) {
		return fmt.Errorf("incremental scan diverged from full scan: incremental %+v, full %+v", inc, full)
	}
	return nil
}

// RunChaos drives one full chaos soak and reports the outcome. The soak
// is deterministic in ChaosOptions: fault schedules and workload churn
// both derive from the seed.
func RunChaos(opts ChaosOptions) (*ChaosReport, error) {
	if opts.Ticks == 0 {
		return nil, fmt.Errorf("chaos: zero-tick soak")
	}
	if opts.CheckEvery == 0 {
		opts.CheckEvery = 50
	}

	cfg := kernel.DefaultConfig(opts.Mode)
	cfg.MemBytes = opts.MemBytes
	cfg.InitialUnmovableBytes = opts.MemBytes / 8
	cfg.MinUnmovableBytes = 4 << 20
	cfg.MaxUnmovableBytes = opts.MemBytes / 2
	cfg.HWMover = kernel.NewAnalyticMover()
	// Chaos runs with a tight retry budget: exhaustion — and with it the
	// fallback and deferral ladders — must actually occur at realistic
	// fault rates, not only in the p^4 tail.
	cfg.MigrateRetryLimit = 1

	inj := fault.New(opts.Seed)
	arm := func(point string, rate float64) {
		if rate > 0 {
			inj.Arm(point, fault.Trigger{Prob: rate})
		}
	}
	arm(fault.PointHWMover, opts.MoverFaultRate)
	arm(fault.PointCompactCarve, opts.CarveFaultRate)
	arm(fault.PointSWMigrate, opts.SWFaultRate)
	arm(fault.PointRegionResize, opts.ResizeFaultRate)
	cfg.Faults = inj

	k := kernel.New(cfg)
	if opts.OnKernel != nil {
		opts.OnKernel(k)
	}

	// Count every public kernel event through the trace layer; the soak
	// discards the bytes and keeps the counter.
	tw, err := trace.NewWriter(io.Discard)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	rec := trace.Attach(k, tw)

	r := NewRunner(k, opts.Profile, opts.Seed+1)
	rep := &ChaosReport{}

	checkpoint := func(tick uint64) {
		rep.Checkpoints++
		var verr error
		if len(rep.Violations) < maxViolations {
			verr = k.CheckInvariants()
			if verr == nil {
				// Scan-equivalence oracle: the incremental contiguity
				// accounting must agree exactly with a from-scratch sweep,
				// including in whatever state the injected faults left.
				verr = scanEquivalence(k)
			}
			if verr != nil {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("tick %d: %v", tick, verr))
			}
		}
		if opts.Checkpoint != nil {
			opts.Checkpoint(ChaosCheckpoint{
				Tick:       tick,
				Events:     tw.Events(),
				Robustness: trace.SnapshotRobustness(k),
				Violation:  verr,
			})
		}
	}

	// pulse injects deterministic mover and compaction traffic on top of
	// the profile, so every armed fault point sees regular crossings.
	pulse := func(tick uint64) {
		if opts.DefragEvery > 0 && tick%opts.DefragEvery == 0 {
			k.DefragUnmovable()
		}
		if opts.ProbeEvery > 0 && tick%opts.ProbeEvery == 0 {
			huge := k.AllocHugeTLB(mem.Order2M, 2)
			k.FreeHugeTLB(&huge)
		}
		if opts.WobbleEvery > 0 && opts.Mode == kernel.ModeContiguitas &&
			tick%opts.WobbleEvery == 0 {
			if (tick/opts.WobbleEvery)%2 == 0 {
				k.ShrinkUnmovable(mem.PageblockPages)
			} else {
				k.ExpandUnmovable(mem.PageblockPages)
			}
		}
	}

	for tick := uint64(1); tick <= opts.Ticks; tick++ {
		r.Step()
		pulse(tick)
		if tick%opts.CheckEvery == 0 || tick == opts.Ticks {
			checkpoint(tick)
		}
	}

	// Recovery phase: lift every fault and let the deferred work drain.
	inj.DisarmAll()
	for tick := uint64(1); tick <= opts.RecoveryTicks; tick++ {
		r.Step()
		pulse(opts.Ticks + tick)
	}
	checkpoint(opts.Ticks + opts.RecoveryTicks)

	// The recovered kernel must still manufacture contiguity on demand.
	huge := k.AllocHugeTLB(mem.Order2M, 4)
	rep.Huge2MAfterRecovery = huge.Allocated
	k.FreeHugeTLB(&huge)

	scan := k.PM().Scan([]int{mem.Order2M})
	rep.FreeContig2MAfter = scan.FreeContigFraction(mem.Order2M)

	rep.Ticks = opts.Ticks + opts.RecoveryTicks
	rep.Events = tw.Events()
	rep.Faults = inj.Snapshot()
	rep.TotalInjected = inj.TotalFired()
	rep.Robustness = trace.SnapshotRobustness(k)
	rep.UnmovableAllocFailures = r.UnmovableAllocFailures
	rep.Recovered = len(rep.Violations) == 0 && rep.Huge2MAfterRecovery > 0
	if rerr := rec.Err(); rerr != nil {
		return rep, fmt.Errorf("chaos: trace: %w", rerr)
	}
	return rep, nil
}
