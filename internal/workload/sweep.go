package workload

import (
	"fmt"

	"contiguitas/internal/kernel"
	"contiguitas/internal/pressure"
)

// SweepOptions configures a pressure sweep: a Web-profile service whose
// footprint target ramps linearly from StartFactor to PeakFactor times
// machine memory, driving the kernel deliberately past exhaustion. The
// sweep is the acceptance experiment for the pressure ladder — the
// machine must degrade (throttle, shed, shrink, kill) and keep running,
// never panic or corrupt state.
type SweepOptions struct {
	MemBytes uint64
	Ticks    uint64
	Seed     uint64
	// CheckEvery is the invariant-checkpoint cadence (default 50).
	CheckEvery uint64
	// StartFactor and PeakFactor are the demand ramp endpoints as
	// multiples of machine memory (defaults 0.5 and 2.0).
	StartFactor float64
	PeakFactor  float64
	// Pressure configures the ladder; nil takes pressure.DefaultConfig.
	// The sweep refuses to run without the ladder — that is the point.
	Pressure *pressure.Config
	// OnKernel observes the freshly booted kernel (telemetry attach).
	OnKernel func(*kernel.Kernel)
	// Progress, when set, observes each invariant checkpoint.
	Progress func(tick uint64, factor float64, violation error)
}

// SweepReport summarises a completed pressure sweep.
type SweepReport struct {
	Ticks      uint64
	Completed  bool
	Violations []string
	Counters   kernel.Counters

	// StallP99 is the 99th-percentile per-allocation ladder stall in
	// cycles; StallCeiling is the configured per-allocation bound it must
	// stay under.
	StallP99     uint64
	StallCeiling uint64

	// Escalation is the ladder-usage profile; EscalationOrdered reports
	// whether the emergency rungs were first reached in ladder order
	// (throttle before resize before OOM).
	Escalation        pressure.Escalation
	EscalationOrdered bool

	OOMHistory     []pressure.Kill
	OOMKillsTaken  uint64
	FinalStateHash uint64
}

// RunPressureSweep drives the exhaustion ramp and reports how the
// ladder degraded. Deterministic in SweepOptions.
func RunPressureSweep(opts SweepOptions) (*SweepReport, error) {
	if opts.Ticks == 0 {
		return nil, fmt.Errorf("sweep: zero-tick sweep")
	}
	if opts.CheckEvery == 0 {
		opts.CheckEvery = 50
	}
	if opts.StartFactor == 0 {
		opts.StartFactor = 0.5
	}
	if opts.PeakFactor == 0 {
		opts.PeakFactor = 2.0
	}
	pcfg := opts.Pressure
	if pcfg == nil {
		pcfg = pressure.DefaultConfig()
	}

	cfg := kernel.DefaultConfig(kernel.ModeContiguitas)
	cfg.MemBytes = opts.MemBytes
	cfg.InitialUnmovableBytes = opts.MemBytes / 8
	cfg.MinUnmovableBytes = opts.MemBytes / 32
	cfg.MaxUnmovableBytes = opts.MemBytes / 2
	cfg.HWMover = kernel.NewAnalyticMover()
	cfg.Seed = opts.Seed
	cfg.Pressure = pcfg
	k := kernel.New(cfg)
	// Build the registry up front so the alloc-stall histogram observes
	// from the first tick even when no tracer is attached.
	k.Metrics()
	if opts.OnKernel != nil {
		opts.OnKernel(k)
	}

	base := Web()
	baseTotal := base.UserFrac + base.PageCacheFrac + base.UnmovableFrac
	r := NewRunner(k, base, opts.Seed+1)

	rep := &SweepReport{StallCeiling: k.PressureConfig().ThrottleCeilingCycles}
	for tick := uint64(1); tick <= opts.Ticks; tick++ {
		// Linear demand ramp: scale every footprint fraction so the
		// combined target is factor × machine memory.
		frac := float64(tick-1) / float64(opts.Ticks-1)
		if opts.Ticks == 1 {
			frac = 1
		}
		factor := opts.StartFactor + (opts.PeakFactor-opts.StartFactor)*frac
		scale := factor / baseTotal
		r.P.UserFrac = base.UserFrac * scale
		r.P.SmallUserFrac = base.SmallUserFrac * scale
		r.P.PageCacheFrac = base.PageCacheFrac * scale
		r.P.UnmovableFrac = base.UnmovableFrac * scale

		r.Step()

		if tick%opts.CheckEvery == 0 || tick == opts.Ticks {
			verr := k.CheckInvariants()
			if verr == nil {
				verr = scanEquivalence(k)
			}
			if verr != nil && len(rep.Violations) < maxViolations {
				rep.Violations = append(rep.Violations, fmt.Sprintf("tick %d: %v", tick, verr))
			}
			if opts.Progress != nil {
				opts.Progress(tick, factor, verr)
			}
		}
	}

	rep.Ticks = opts.Ticks
	rep.Completed = true
	rep.Counters = k.Counters
	if h := k.Metrics().Histogram("alloc_stall_cycles"); h != nil {
		rep.StallP99 = h.Quantile(0.99)
	}
	rep.Escalation = k.Escalation()
	rep.EscalationOrdered = rep.Escalation.Ordered()
	rep.OOMHistory = k.OOMHistory()
	rep.OOMKillsTaken = r.OOMKillsTaken
	rep.FinalStateHash = k.StateHash()
	return rep, nil
}
