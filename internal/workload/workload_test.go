package workload

import (
	"testing"

	"contiguitas/internal/kernel"
	"contiguitas/internal/mem"
)

const mb = uint64(1) << 20

func testKernel(mode kernel.Mode, memBytes uint64) *kernel.Kernel {
	cfg := kernel.DefaultConfig(mode)
	cfg.MemBytes = memBytes
	cfg.InitialUnmovableBytes = memBytes / 16
	cfg.MinUnmovableBytes = memBytes / 64
	cfg.MaxUnmovableBytes = memBytes / 4
	cfg.MaxResizeStepBytes = 32 * mb
	cfg.ResizePeriodTicks = 50
	return kernel.New(cfg)
}

func TestProfilesWellFormed(t *testing.T) {
	for _, p := range append(Profiles(), Ads()) {
		if p.Name == "" {
			t.Fatal("unnamed profile")
		}
		if p.UserFrac+p.PageCacheFrac+p.UnmovableFrac >= 1 {
			t.Fatalf("%s: fractions %v sum past 1", p.Name,
				p.UserFrac+p.PageCacheFrac+p.UnmovableFrac)
		}
		var mix float64
		for _, w := range p.SourceMix {
			mix += w
		}
		if mix < 0.99 || mix > 1.01 {
			t.Fatalf("%s: source mix sums to %v", p.Name, mix)
		}
		if p.SourceMix[mem.SrcUser] != 0 {
			t.Fatalf("%s: user memory is not an unmovable source", p.Name)
		}
		if p.Trans.BaseWalkPctData <= 0 {
			t.Fatalf("%s: missing translation anchors", p.Name)
		}
	}
}

func TestFig6MixNetworkingDominates(t *testing.T) {
	m := standardMix()
	if m[mem.SrcNetworking] != 0.73 {
		t.Fatalf("networking share = %v, want 0.73 (Figure 6)", m[mem.SrcNetworking])
	}
	if m[mem.SrcSlab] != 0.12 {
		t.Fatalf("slab share = %v, want 0.12", m[mem.SrcSlab])
	}
}

func TestRunnerReachesSteadyState(t *testing.T) {
	k := testKernel(kernel.ModeContiguitas, 512*mb)
	r := NewRunner(k, Web(), 42)
	r.Run(30)
	total := float64(k.PM().NPages)
	if got := float64(r.userPages()) / total; got < 0.6 {
		t.Fatalf("user fraction = %v, want ~0.70", got)
	}
	if got := float64(r.unmovablePages()) / total; got < 0.03 || got > 0.09 {
		t.Fatalf("unmovable fraction = %v, want ~0.055", got)
	}
	if r.THPCoverage() < 0.8 {
		t.Fatalf("fresh-machine THP coverage = %v, want high", r.THPCoverage())
	}
	r.TearDown()
	if st := k.PM().Scan([]int{mem.Order2M}); st.UnmovableFrames != 0 {
		t.Fatalf("teardown left %d unmovable frames", st.UnmovableFrames)
	}
}

func TestRunnerScattersUnderLinux(t *testing.T) {
	k := testKernel(kernel.ModeLinux, 512*mb)
	r := NewRunner(k, CacheA(), 7)
	r.Run(120)
	st := k.PM().Scan([]int{mem.Order2M})
	frameFrac := st.UnmovableFrameFraction()
	blockFrac := st.UnmovableBlockFraction(mem.Order2M)
	// The paper's scatter observation: a small unmovable frame fraction
	// spoils a much larger fraction of 2MB blocks.
	if frameFrac > 0.2 {
		t.Fatalf("unmovable frames = %v, should be small", frameFrac)
	}
	if blockFrac < frameFrac*1.5 {
		t.Fatalf("no scatter amplification: frames=%v blocks=%v", frameFrac, blockFrac)
	}
}

func TestRunnerConfinedUnderContiguitas(t *testing.T) {
	k := testKernel(kernel.ModeContiguitas, 512*mb)
	r := NewRunner(k, CacheA(), 7)
	r.Run(120)
	st := k.PM().Scan([]int{mem.Order2M})
	blockFrac := st.UnmovableBlockFraction(mem.Order2M)
	regionFrac := float64(k.Boundary()) / float64(k.PM().NPages)
	if blockFrac > regionFrac+0.01 {
		t.Fatalf("unmovable blocks %v exceed region fraction %v: confinement broken",
			blockFrac, regionFrac)
	}
}

func TestLinuxVsContiguitasUnmovableBlocks(t *testing.T) {
	// The Figure 11 effect at small scale: Linux's unmovable 2MB block
	// share is a multiple of Contiguitas's.
	results := map[kernel.Mode]float64{}
	for _, mode := range []kernel.Mode{kernel.ModeLinux, kernel.ModeContiguitas} {
		k := testKernel(mode, 512*mb)
		r := NewRunner(k, Web(), 11)
		r.Run(150)
		st := k.PM().Scan([]int{mem.Order2M})
		results[mode] = st.UnmovableBlockFraction(mem.Order2M)
	}
	if results[kernel.ModeLinux] < 1.5*results[kernel.ModeContiguitas] {
		t.Fatalf("linux=%v contiguitas=%v: expected clear separation",
			results[kernel.ModeLinux], results[kernel.ModeContiguitas])
	}
}

func TestRedeployChurnsMappings(t *testing.T) {
	k := testKernel(kernel.ModeContiguitas, 256*mb)
	p := Web()
	p.RedeployPeriodTicks = 10
	r := NewRunner(k, p, 5)
	r.Run(25)
	if r.userPages() == 0 {
		t.Fatal("mappings must be refilled after redeploy")
	}
}

func TestPinnedNetworkingConfined(t *testing.T) {
	k := testKernel(kernel.ModeContiguitas, 256*mb)
	p := CacheA()
	p.PinFraction = 1.0 // every networking buffer pinned
	r := NewRunner(k, p, 13)
	r.Run(40)
	for _, pg := range r.unmov {
		if pg.Pinned && pg.PFN >= k.Boundary() {
			t.Fatalf("pinned page %d escaped the unmovable region", pg.PFN)
		}
	}
	if k.PinMigrations == 0 {
		t.Fatal("pin migrations must have occurred")
	}
}

func TestFragmenterFullyFragmentsLinux(t *testing.T) {
	k := testKernel(kernel.ModeLinux, 512*mb)
	DefaultFragmenter(3).Run(k)
	st := k.PM().Scan([]int{mem.Order2M})
	// Paper: 23% of servers cannot allocate a single 2MB page. The
	// fragmenter must reproduce that state: almost no free contiguity
	// and widespread unmovable blocks.
	if got := st.FreeContigFraction(mem.Order2M); got > 0.05 {
		t.Fatalf("post-fragmenter 2MB contiguity = %v, want ~0", got)
	}
	if got := st.UnmovableBlockFraction(mem.Order2M); got < 0.5 {
		t.Fatalf("unmovable block fraction = %v, want widespread scatter", got)
	}
	// And a dynamic 1GB allocation is impossible.
	res := k.AllocHugeTLB(mem.Order1G, 1)
	if res.Allocated != 0 {
		t.Fatal("1GB allocation must fail on a fully fragmented server")
	}
}

func TestFragmenterConfinedUnderContiguitas(t *testing.T) {
	k := testKernel(kernel.ModeContiguitas, 512*mb)
	DefaultFragmenter(3).Run(k)
	st := k.PM().Scan([]int{mem.Order2M})
	regionFrac := float64(k.Boundary()) / float64(k.PM().NPages)
	if got := st.UnmovableBlockFraction(mem.Order2M); got > regionFrac+0.01 {
		t.Fatalf("unmovable blocks %v exceed region %v after fragmenter", got, regionFrac)
	}
}

func TestSourceOrderDistribution(t *testing.T) {
	if sourceOrder(mem.SrcNetworking, 0.0) != 0 || sourceOrder(mem.SrcNetworking, 0.95) != 2 {
		t.Fatal("networking order distribution wrong")
	}
	if sourceOrder(mem.SrcPageTable, 0.99) != 0 {
		t.Fatal("page tables allocate base pages")
	}
	if sourceOrder(mem.SrcSlab, 0.9) != 1 {
		t.Fatal("slab occasionally uses order-1")
	}
}

func TestCoverageWith1G(t *testing.T) {
	k := testKernel(kernel.ModeContiguitas, 512*mb)
	r := NewRunner(k, Web(), 42)
	r.Run(20)
	cov := r.Coverage(nil)
	if cov.Frac1G != 0 {
		t.Fatal("no 1G reservation yet")
	}
	// Simulate a 1GB reservation covering part of the heap. On this
	// small machine a real 1GB alloc cannot fit, so fabricate the
	// result shape.
	res := &kernel.HugeTLBResult{Requested: 1, Allocated: 1}
	cov = r.Coverage(res)
	if cov.Frac1G <= 0 || cov.Frac1G > 1 {
		t.Fatalf("Frac1G = %v", cov.Frac1G)
	}
	if cov.Frac2M+cov.Frac1G > 1+1e-9 {
		t.Fatalf("coverage overflow: %+v", cov)
	}
}

func TestKhugepagedRecoversTHP(t *testing.T) {
	// Fragment a machine so THP faults fail, then give khugepaged
	// budget: coverage must recover over time as compaction + collapse
	// rebuild 2MB backing.
	k := testKernel(kernel.ModeContiguitas, 512*mb)
	p := Web()
	p.KhugepagedCollapses = 8
	r := NewRunner(k, p, 21)
	r.Run(50)
	before := r.THPCoverage()
	r.Run(150)
	after := r.THPCoverage()
	if after < before-0.05 {
		t.Fatalf("khugepaged let coverage decay: %.2f -> %.2f", before, after)
	}
}

func TestKhugepagedDisabled(t *testing.T) {
	k := testKernel(kernel.ModeContiguitas, 256*mb)
	p := Web()
	p.KhugepagedCollapses = 0
	r := NewRunner(k, p, 5)
	r.Run(20)
	// Sanity: runs fine without promotion.
	if r.userPages() == 0 {
		t.Fatal("no user memory")
	}
}

func TestSlabShareDrivenByObjects(t *testing.T) {
	k := testKernel(kernel.ModeContiguitas, 256*mb)
	p := CI() // slab-heavy mix (30%)
	r := NewRunner(k, p, 31)
	r.Run(60)
	if r.slabMgr == nil {
		t.Fatal("slab manager must exist for a slab-weighted profile")
	}
	held := r.slabPages()
	target := uint64(float64(r.unmovableTarget()) * r.slabFrac)
	if held == 0 {
		t.Fatal("no slab pages held")
	}
	// The page population tracks the slab share of the unmovable target
	// (it may overshoot slightly: object packing is coarse).
	if held < target/2 || held > target*3 {
		t.Fatalf("slab pages %d vs share target %d", held, target)
	}
	// Fragmentation is emergent: utilization below 100%.
	util := float64(r.slabMgr.Objects()) / float64(r.slabMgr.PagesHeld()*8)
	_ = util
	r.TearDown()
	if r.slabMgr.PagesHeld() != 0 {
		t.Fatal("teardown must drain the slab caches")
	}
}

func TestNoSlabManagerWithoutSlabWeight(t *testing.T) {
	k := testKernel(kernel.ModeContiguitas, 128*mb)
	p := Web()
	p.SourceMix[mem.SrcSlab] = 0
	p.SourceMix[mem.SrcNetworking] += 0.12
	r := NewRunner(k, p, 3)
	r.Run(10)
	if r.slabMgr != nil {
		t.Fatal("no slab weight must mean no slab manager")
	}
}
