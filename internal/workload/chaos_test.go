package workload

import (
	"bytes"
	"testing"

	"contiguitas/internal/fault"
	"contiguitas/internal/kernel"
	"contiguitas/internal/trace"
)

// traceRun drives a fixed workload against a Contiguitas kernel and
// returns the recorded trace bytes plus the kernel for counter checks.
// With faulty set, the mover and the software migrator misfire; the
// machine is sized so no allocation outcome depends on it.
func traceRun(t *testing.T, seed uint64, faulty bool) ([]byte, *kernel.Kernel) {
	t.Helper()
	cfg := kernel.DefaultConfig(kernel.ModeContiguitas)
	cfg.MemBytes = 128 * mb
	cfg.InitialUnmovableBytes = 16 * mb
	cfg.MinUnmovableBytes = 4 * mb
	cfg.MaxUnmovableBytes = 64 * mb
	cfg.HWMover = kernel.NewAnalyticMover()
	inj := fault.New(seed)
	if faulty {
		inj.Arm(fault.PointHWMover, fault.Trigger{Prob: 0.3})
		inj.Arm(fault.PointSWMigrate, fault.Trigger{Prob: 0.05})
		inj.Arm(fault.PointRegionResize, fault.Trigger{Prob: 0.1})
	}
	cfg.Faults = inj
	k := kernel.New(cfg)

	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.Attach(k, tw)

	// A light profile: ample headroom on both sides of the boundary, so
	// every allocation succeeds whether or not migrations misfire.
	p := Web()
	p.UserFrac = 0.30
	p.SmallUserFrac = 0.08
	p.PageCacheFrac = 0.04
	p.UnmovableFrac = 0.04
	r := NewRunner(k, p, seed)
	r.Run(150)

	if rec.Err() != nil {
		t.Fatal(rec.Err())
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	// The byte-identity guarantee holds only while allocation outcomes
	// are fault-independent; a failed allocation would invalidate the
	// premise, not the property.
	if k.AllocFail != 0 || r.UnmovableAllocFailures != 0 {
		t.Fatalf("machine too small for the determinism premise: allocfail=%d unmovfail=%d",
			k.AllocFail, r.UnmovableAllocFailures)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), k
}

// TestTraceDeterministicUnderFaults is the determinism regression: the
// trace records the workload's public behaviour, so the same seed must
// produce byte-identical traces with faults off, with faults on, and
// across repeated faulty runs — fault handling may change internal
// placement, never externally visible behaviour.
func TestTraceDeterministicUnderFaults(t *testing.T) {
	clean, _ := traceRun(t, 42, false)
	faulty1, k1 := traceRun(t, 42, true)
	faulty2, _ := traceRun(t, 42, true)

	if !bytes.Equal(faulty1, faulty2) {
		t.Fatal("same seed, same faults: traces differ")
	}
	if !bytes.Equal(clean, faulty1) {
		t.Fatal("injected faults leaked into the public event stream")
	}
	// The faulty run must actually have exercised the failure paths —
	// otherwise the comparison is vacuous.
	if k1.MigrationRetries == 0 && k1.SWFallbacks == 0 && k1.ResizeAborts == 0 {
		t.Fatal("faulty run never hit a fault point")
	}
	// And a different seed must change the trace (the format is not
	// degenerate).
	other, _ := traceRun(t, 43, false)
	if bytes.Equal(clean, other) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestRunChaosSoak is a scaled-down acceptance soak: faults at a few
// percent, invariants clean at every checkpoint, failure paths exercised,
// and contiguity recoverable after the faults lift.
func TestRunChaosSoak(t *testing.T) {
	opts := DefaultChaosOptions()
	opts.MemBytes = 128 * mb
	opts.Ticks = 200
	opts.RecoveryTicks = 50
	opts.CheckEvery = 25
	var checkpoints int
	opts.Checkpoint = func(ck ChaosCheckpoint) { checkpoints++ }

	rep, err := RunChaos(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("invariant violations: %v", rep.Violations)
	}
	if rep.TotalInjected == 0 {
		t.Fatal("soak injected no faults")
	}
	if rep.Robustness.Value("migration_retries") == 0 {
		t.Fatal("soak never exercised the retry path")
	}
	if !rep.Recovered {
		t.Fatalf("kernel did not recover: huge2m=%d violations=%d",
			rep.Huge2MAfterRecovery, len(rep.Violations))
	}
	if rep.Events == 0 {
		t.Fatal("event accounting missing")
	}
	if checkpoints != rep.Checkpoints || checkpoints == 0 {
		t.Fatalf("checkpoint callback mismatch: %d vs %d", checkpoints, rep.Checkpoints)
	}
}

// TestRunChaosDeterministic: the same options reproduce the same soak.
func TestRunChaosDeterministic(t *testing.T) {
	opts := DefaultChaosOptions()
	opts.MemBytes = 128 * mb
	opts.Ticks = 120
	opts.RecoveryTicks = 30
	a, err := RunChaos(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events || a.TotalInjected != b.TotalInjected ||
		!a.Robustness.Equal(b.Robustness) {
		t.Fatalf("soak not reproducible:\n  a: events=%d injected=%d %v\n  b: events=%d injected=%d %v",
			a.Events, a.TotalInjected, a.Robustness,
			b.Events, b.TotalInjected, b.Robustness)
	}
}
