package workload

import (
	"math"

	"contiguitas/internal/kernel"
	"contiguitas/internal/mem"
	"contiguitas/internal/slab"
	"contiguitas/internal/stats"
	"contiguitas/internal/trans"
)

// Runner drives one simulated kernel with a service profile: every tick
// it churns the unmovable pool toward its steady-state target, tops up
// the page cache, and periodically redeploys the service (freeing and
// re-faulting its mappings — the fragmentation driver the paper calls
// out for partial fragmentation).
type Runner struct {
	K   *kernel.Kernel
	P   Profile
	rng *stats.RNG

	mappings []*kernel.Mapping
	unmov    []*kernel.Page
	small    []*kernel.Page
	// unmovHeld and mappingHeld cache the frame counts of the unmovable
	// pool and the user mappings (both are refilled in loops; recomputing
	// the sums would be quadratic in pool size).
	unmovHeld   uint64
	mappingHeld uint64

	// The slab share of unmovable memory is driven as real object churn
	// through the slab allocator, so its page population emerges from
	// object lifetimes and packing (one survivor pins a page).
	slabMgr  *slab.Manager
	slabObjs []slabObj
	slabFrac float64

	srcWeights []float64
	srcValues  []mem.Source

	// UnmovableAllocFailures counts unmovable allocations the kernel
	// could not serve — the cost of a mis-sized unmovable region.
	UnmovableAllocFailures uint64
	// OOMKillsTaken counts kills the kernel's OOM killer landed on this
	// runner's pools (see oom.go).
	OOMKillsTaken uint64
	ticksRun      uint64
	churnCarry    float64

	// oomBackoffUntil[pool] is the tick at which the pool may refill
	// again after an OOM kill (nil when the ladder is disabled);
	// promoting guards the mappings victim against a kill landing under
	// an in-flight khugepaged collapse.
	oomBackoffUntil []uint64
	promoting       bool
}

// slabObj pairs a live slab object with its cache index.
type slabObj struct {
	obj   slab.Obj
	cache int
}

// NewRunner attaches a profile to a kernel.
func NewRunner(k *kernel.Kernel, p Profile, seed uint64) *Runner {
	r := &Runner{K: k, P: p, rng: stats.NewRNG(seed)}
	for src, w := range p.SourceMix {
		if src == int(mem.SrcSlab) && w > 0 {
			// Slab demand goes through the object allocator below.
			r.slabFrac = w
			r.slabMgr = slab.NewManager(k)
			continue
		}
		if w > 0 {
			r.srcWeights = append(r.srcWeights, w)
			r.srcValues = append(r.srcValues, mem.Source(src))
		}
	}
	r.registerVictims()
	return r
}

// targetPages converts a fraction of machine memory into frames.
func (r *Runner) targetPages(frac float64) uint64 {
	return uint64(frac * float64(r.K.PM().NPages))
}

// unmovablePages returns the frames currently held by the unmovable pool.
func (r *Runner) unmovablePages() uint64 { return r.unmovHeld }

// Step advances one tick of service activity: all churn first (opening
// holes, including whole freed mappings), then refills — kernel
// allocations first, users last. The freed pageblocks are partially
// consumed by base-page allocations before the THP refill sees them,
// which is how huge-page coverage decays on packed machines.
func (r *Runner) Step() {
	r.churnMappings()
	r.churnSmall()
	r.stepSlab()
	r.stepUnmovable()
	r.stepPageCache()
	r.fillSmall()
	r.stepUser()
	r.K.EndTick()
	r.ticksRun++
}

// Run advances n ticks.
func (r *Runner) Run(n uint64) {
	for i := uint64(0); i < n; i++ {
		r.Step()
	}
}

// stepUnmovable churns the unmovable pool: a fraction is freed and the
// pool refilled to target with fresh allocations drawn from the source
// mix. Under ModeLinux the refill lands wherever fallback stealing puts
// it — the scattering mechanism; under ModeContiguitas it is confined.
func (r *Runner) stepUnmovable() {
	churn := int(float64(len(r.unmov)) * r.P.UnmovableChurn)
	for i := 0; i < churn && len(r.unmov) > 0; i++ {
		j := r.rng.Intn(len(r.unmov))
		p := r.unmov[j]
		if p.Pinned {
			r.K.Unpin(p)
		}
		r.K.Free(p)
		r.unmovHeld -= p.Pages()
		r.unmov[j] = r.unmov[len(r.unmov)-1]
		r.unmov = r.unmov[:len(r.unmov)-1]
	}
	target := r.unmovableTarget()
	// The slab allocator holds its share as backing pages; direct
	// unmovable allocations cover the remainder.
	if held := r.slabPages(); held >= target {
		target = 0
	} else {
		target -= held
	}
	for r.unmovablePages() < target && !r.suppressed(vicUnmov) {
		src := r.srcValues[r.rng.WeightedChoice(r.srcWeights)]
		order := sourceOrder(src, r.rng.Float64())
		if src == mem.SrcNetworking && r.rng.Bool(r.P.PinFraction) {
			// Pinned networking buffer: allocated movable (it starts
			// life as a regular buffer) and then pinned for DMA.
			p, err := r.K.Alloc(order, mem.MigrateMovable, src)
			if err != nil {
				r.UnmovableAllocFailures++
				return
			}
			if err := r.K.Pin(p); err != nil {
				r.K.Free(p)
				r.UnmovableAllocFailures++
				return
			}
			r.unmov = append(r.unmov, p)
			r.unmovHeld += p.Pages()
			continue
		}
		p, err := r.K.Alloc(order, mem.MigrateUnmovable, src)
		if err != nil {
			r.UnmovableAllocFailures++
			return
		}
		r.unmov = append(r.unmov, p)
		r.unmovHeld += p.Pages()
	}
}

// slabPages returns the frames held by the slab allocator.
func (r *Runner) slabPages() uint64 {
	if r.slabMgr == nil {
		return 0
	}
	return uint64(r.slabMgr.PagesHeld())
}

// stepSlab churns kernel objects through the slab caches: a fraction of
// live objects dies each tick (random lifetimes — survivors pin their
// pages) and the population refills until the slab share of the
// unmovable target is held as backing pages.
func (r *Runner) stepSlab() {
	if r.slabMgr == nil {
		return
	}
	if r.slabObjs == nil {
		// Presize for roughly one object per target frame; the append
		// doubling from nil was a visible slice-growth churn source in
		// study heap profiles.
		r.slabObjs = make([]slabObj, 0, uint64(float64(r.unmovableTarget())*r.slabFrac))
	}
	churn := int(float64(len(r.slabObjs)) * r.P.UnmovableChurn)
	for i := 0; i < churn && len(r.slabObjs) > 0; i++ {
		j := r.rng.Intn(len(r.slabObjs))
		so := r.slabObjs[j]
		r.slabMgr.Cache(so.cache).Free(so.obj)
		r.slabObjs[j] = r.slabObjs[len(r.slabObjs)-1]
		r.slabObjs = r.slabObjs[:len(r.slabObjs)-1]
	}
	target := uint64(float64(r.unmovableTarget()) * r.slabFrac)
	// Track held frames incrementally: most object allocations land in an
	// existing backing page, so recomputing the per-cache sum every
	// iteration would make the refill quadratic in object count.
	held := r.slabPages()
	for held < target {
		ci := r.rng.Intn(r.slabMgr.NumCaches())
		c := r.slabMgr.Cache(ci)
		before := c.Frames()
		o, err := c.Alloc()
		if err != nil {
			r.UnmovableAllocFailures++
			return
		}
		held += uint64(c.Frames() - before)
		r.slabObjs = append(r.slabObjs, slabObj{obj: o, cache: ci})
	}
}

// unmovableTarget modulates the steady-state unmovable footprint with
// the profile's demand burst: swings force the allocator to repeatedly
// grow into movable memory and hand blocks back, stranding residue.
func (r *Runner) unmovableTarget() uint64 {
	base := float64(r.targetPages(r.P.UnmovableFrac))
	if r.P.UnmovBurst > 0 && r.P.UnmovBurstPeriod > 0 {
		phase := 2 * math.Pi * float64(r.ticksRun%r.P.UnmovBurstPeriod) / float64(r.P.UnmovBurstPeriod)
		base *= 1 + r.P.UnmovBurst*math.Sin(phase)
	}
	return uint64(base)
}

// churnSmall frees a slice of the 4 KB user pool, punching base-page
// holes across the address space.
func (r *Runner) churnSmall() {
	churn := int(float64(len(r.small)) * r.P.SmallChurn)
	for i := 0; i < churn && len(r.small) > 0; i++ {
		j := r.rng.Intn(len(r.small))
		r.K.Free(r.small[j])
		r.small[j] = r.small[len(r.small)-1]
		r.small = r.small[:len(r.small)-1]
	}
}

// fillSmall tops the 4 KB user pool back up to target.
func (r *Runner) fillSmall() {
	target := r.targetPages(r.P.SmallUserFrac)
	if r.small == nil && target > 0 {
		r.small = make([]*kernel.Page, 0, target)
	}
	for uint64(len(r.small)) < target && !r.suppressed(vicSmall) {
		p, err := r.K.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcUser)
		if err != nil {
			return
		}
		r.small = append(r.small, p)
	}
}

// stepPageCache tops the page cache up to target; the kernel reclaims it
// under pressure, so overshoot self-corrects.
func (r *Runner) stepPageCache() {
	target := r.targetPages(r.P.PageCacheFrac)
	have := r.cachePagesEstimate()
	for have < target {
		p, err := r.K.AllocPageCache(mem.Order4K, mem.SrcFilesystem)
		if err != nil {
			return
		}
		have += p.Pages()
	}
}

// cachePagesEstimate asks the kernel how much reclaimable memory is
// live; the runner does not keep cache handles (the kernel owns them).
func (r *Runner) cachePagesEstimate() uint64 {
	return r.K.ReclaimablePages()
}

// stepUser maintains the service's anonymous memory and handles the
// periodic redeploy.
func (r *Runner) stepUser() {
	if r.P.RedeployPeriodTicks > 0 && r.ticksRun > 0 &&
		r.ticksRun%r.P.RedeployPeriodTicks == 0 {
		r.Redeploy()
		return
	}
	r.fillUser()
	r.khugepaged()
}

// khugepaged runs the background promotion pass: a bounded number of
// base-page groups in existing mappings collapse into 2 MB blocks.
func (r *Runner) khugepaged() {
	budget := r.P.KhugepagedCollapses
	if budget <= 0 || len(r.mappings) == 0 {
		return
	}
	// Rotate through mappings so promotion pressure spreads.
	r.promoting = true
	start := r.rng.Intn(len(r.mappings))
	for i := 0; i < len(r.mappings) && budget > 0; i++ {
		m := r.mappings[(start+i)%len(r.mappings)]
		budget -= r.K.Promote(m, budget)
	}
	r.promoting = false
}

// churnMappings releases a fraction of mappings each tick (arena
// turnover); the refill happens at the end of the tick in stepUser, so
// base-page noise gets first pick of the freed pageblocks.
func (r *Runner) churnMappings() {
	r.churnCarry += r.P.UserChurn * float64(len(r.mappings))
	for r.churnCarry >= 1 && len(r.mappings) > 0 {
		r.churnCarry--
		i := r.rng.Intn(len(r.mappings))
		r.mappingHeld -= pagesOf(r.mappings[i])
		r.K.FreeMapping(r.mappings[i])
		r.mappings[i] = r.mappings[len(r.mappings)-1]
		r.mappings = r.mappings[:len(r.mappings)-1]
	}
}

// fillUser allocates user mappings up to the target footprint (the
// THP-eligible share; the small-page pool covers the rest).
func (r *Runner) fillUser() {
	target := r.targetPages(r.P.UserFrac - r.P.SmallUserFrac)
	have := r.mappingPages()
	chunk := r.P.MappingChunkBytes
	if chunk == 0 {
		chunk = 64 << 20
	}
	// Keep at least ~32 mappings on small simulated machines so churn
	// granularity stays meaningful.
	if maxChunk := r.K.Config().MemBytes / 32; chunk > maxChunk && maxChunk >= mem.PageSize {
		chunk = maxChunk
	}
	for have < target && !r.suppressed(vicMappings) {
		want := chunk
		if deficit := (target - have) * mem.PageSize; deficit < want {
			want = deficit
		}
		if want < mem.PageSize {
			break
		}
		m, err := r.K.AllocUser(want, true)
		if err != nil {
			break
		}
		r.mappings = append(r.mappings, m)
		// AllocUser delivers exactly the requested pages or fails whole.
		r.mappingHeld += mem.BytesToPages(want)
		have = r.mappingHeld
	}
}

// mappingPages returns frames held in THP-eligible user mappings. The
// count is maintained incrementally as mappings come and go; promotion
// preserves it (512 base pages collapse into one 512-page block).
func (r *Runner) mappingPages() uint64 { return r.mappingHeld }

// pagesOf sums the frames backing one mapping.
func pagesOf(m *kernel.Mapping) uint64 {
	var n uint64
	for _, b := range m.Blocks {
		n += b.Pages()
	}
	return n
}

// userPages returns all frames held as user memory (mappings plus the
// small-page pool).
func (r *Runner) userPages() uint64 {
	return r.mappingPages() + uint64(len(r.small))
}

// Redeploy simulates a code push: all mappings are torn down and
// re-faulted.
func (r *Runner) Redeploy() {
	for _, m := range r.mappings {
		r.K.FreeMapping(m)
	}
	r.mappings = r.mappings[:0]
	r.mappingHeld = 0
	r.fillUser()
}

// THPCoverage returns the fraction of user memory backed by 2 MB pages.
func (r *Runner) THPCoverage() float64 {
	var total, covered uint64
	for _, m := range r.mappings {
		for _, b := range m.Blocks {
			total += b.Pages()
			if b.Order >= mem.Order2M {
				covered += b.Pages()
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(covered) / float64(total)
}

// Coverage converts the runner's achieved huge-page backing into the
// translation model's coverage terms, optionally adding a dynamically
// allocated 1 GB HugeTLB reservation.
func (r *Runner) Coverage(huge1G *kernel.HugeTLBResult) trans.Coverage {
	cov := trans.Coverage{Frac2M: r.THPCoverage()}
	if huge1G != nil && huge1G.Allocated > 0 {
		user := r.userPages()
		if user > 0 {
			f1g := float64(uint64(huge1G.Allocated)*mem.OrderPages(mem.Order1G)) / float64(user)
			if f1g > 1 {
				f1g = 1
			}
			cov.Frac1G = f1g
			cov.Frac2M *= 1 - f1g // 1GB pages replace part of the heap
		}
	}
	return cov
}

// TearDown frees everything the runner holds.
func (r *Runner) TearDown() {
	for _, m := range r.mappings {
		r.K.FreeMapping(m)
	}
	r.mappings = nil
	r.mappingHeld = 0
	for _, p := range r.small {
		r.K.Free(p)
	}
	r.small = nil
	for _, p := range r.unmov {
		if p.Pinned {
			r.K.Unpin(p)
		}
		r.K.Free(p)
	}
	r.unmov = nil
	r.unmovHeld = 0
	for _, so := range r.slabObjs {
		r.slabMgr.Cache(so.cache).Free(so.obj)
	}
	r.slabObjs = nil
}
