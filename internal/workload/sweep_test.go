package workload

import (
	"testing"
)

// TestPressureSweepAcceptance runs a reduced-scale pressure sweep and
// asserts the full acceptance profile: completion past 2x overcommit
// with zero invariant violations, at least one OOM kill and one
// emergency shrink, p99 per-allocation stall within the throttle
// ceiling, and the emergency rungs first reached in ladder order.
func TestPressureSweepAcceptance(t *testing.T) {
	rep, err := RunPressureSweep(SweepOptions{
		MemBytes: 128 << 20,
		Ticks:    300,
		Seed:     7,
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if !rep.Completed {
		t.Fatal("sweep did not complete")
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violation: %s", v)
	}
	c := rep.Counters
	if c.OOMKills < 1 {
		t.Error("no OOM kill observed at 2x overcommit")
	}
	if c.EmergencyShrinks < 1 {
		t.Error("no emergency shrink observed at 2x overcommit")
	}
	if c.AllocThrottled < 1 {
		t.Error("no allocation throttled at 2x overcommit")
	}
	if rep.StallP99 > rep.StallCeiling {
		t.Errorf("p99 alloc stall %d cycles exceeds ceiling %d", rep.StallP99, rep.StallCeiling)
	}
	if !rep.EscalationOrdered {
		t.Errorf("ladder escalated out of order: %+v", rep.Escalation)
	}
	if rep.OOMKillsTaken != uint64(len(rep.OOMHistory)) {
		t.Errorf("runner absorbed %d kills, kernel logged %d", rep.OOMKillsTaken, len(rep.OOMHistory))
	}
}

// TestPressureSweepDeterministic pins the sweep to its inputs: same
// options, same final state hash and counters.
func TestPressureSweepDeterministic(t *testing.T) {
	opts := SweepOptions{MemBytes: 64 << 20, Ticks: 150, Seed: 11}
	a, err := RunPressureSweep(opts)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	b, err := RunPressureSweep(opts)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if a.FinalStateHash != b.FinalStateHash {
		t.Errorf("state hash diverged: %016x vs %016x", a.FinalStateHash, b.FinalStateHash)
	}
	if a.Counters != b.Counters {
		t.Errorf("counters diverged:\n%+v\n%+v", a.Counters, b.Counters)
	}
}
