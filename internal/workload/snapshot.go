package workload

import (
	"fmt"

	"contiguitas/internal/kernel"
	"contiguitas/internal/slab"
	"contiguitas/internal/stats"
)

// Checkpoint/restore codec for the workload runner.
//
// The runner's behavior-bearing state is its RNG stream, the exact
// order of its handle pools (churn picks a random index and swaps with
// the last element, so slice order IS future behavior), the slab cache
// occupancy with the object-handle list, and the churn/tick
// accumulators. The profile and the derived source-mix tables are
// configuration, re-created by NewRunner. Handle identities do not
// survive a restore; every pool is rehydrated through kernel.PageAt and
// slab.(*Cache).ObjAt from serialized head-PFN coordinates.

// MappingState is one serialized user mapping: its size and the head
// PFNs of its backing blocks in exact slice order.
type MappingState struct {
	Bytes  uint64
	Blocks []uint64
}

// SlabObjState is one live slab object in the runner's churn list.
type SlabObjState struct {
	Cache int
	PFN   uint64
	Slot  int
}

// RunnerState is the serializable state of one workload runner.
type RunnerState struct {
	RNGS0, RNGS1 uint64

	Mappings []MappingState
	// Unmov and Small hold head PFNs in exact pool order.
	Unmov []uint64
	Small []uint64

	UnmovHeld   uint64
	MappingHeld uint64

	// Slab holds one CacheState per manager class, in class order;
	// SlabObjs is the runner's live-object churn list in exact order.
	Slab     []slab.CacheState
	SlabObjs []SlabObjState

	UnmovableAllocFailures uint64
	TicksRun               uint64
	ChurnCarry             float64

	// OOMBackoffUntil holds the per-pool post-kill refill deadlines (nil
	// when the pressure ladder is disabled); OOMKillsTaken counts kills
	// landed on this runner. The victim registrations themselves are not
	// state — NewRunner re-registers in the same fixed order.
	OOMBackoffUntil []uint64
	OOMKillsTaken   uint64
}

// ExportState serializes the runner. Call at the same quiesce boundary
// as kernel.ExportState (between Steps).
func (r *Runner) ExportState() *RunnerState {
	st := &RunnerState{
		UnmovHeld:              r.unmovHeld,
		MappingHeld:            r.mappingHeld,
		UnmovableAllocFailures: r.UnmovableAllocFailures,
		TicksRun:               r.ticksRun,
		ChurnCarry:             r.churnCarry,
		OOMBackoffUntil:        append([]uint64(nil), r.oomBackoffUntil...),
		OOMKillsTaken:          r.OOMKillsTaken,
	}
	st.RNGS0, st.RNGS1 = r.rng.State()
	for _, m := range r.mappings {
		ms := MappingState{Bytes: m.Bytes}
		for _, b := range m.Blocks {
			ms.Blocks = append(ms.Blocks, b.PFN)
		}
		st.Mappings = append(st.Mappings, ms)
	}
	for _, p := range r.unmov {
		st.Unmov = append(st.Unmov, p.PFN)
	}
	for _, p := range r.small {
		st.Small = append(st.Small, p.PFN)
	}
	if r.slabMgr != nil {
		// Group live handles per cache so each ExportState sees exactly
		// the full pages it owns.
		byCache := make([][]slab.Obj, r.slabMgr.NumCaches())
		for _, so := range r.slabObjs {
			byCache[so.cache] = append(byCache[so.cache], so.obj)
		}
		for ci := 0; ci < r.slabMgr.NumCaches(); ci++ {
			st.Slab = append(st.Slab, r.slabMgr.Cache(ci).ExportState(byCache[ci]))
		}
		for _, so := range r.slabObjs {
			pfn, slot := so.obj.PageOf()
			st.SlabObjs = append(st.SlabObjs, SlabObjState{Cache: so.cache, PFN: pfn, Slot: slot})
		}
	}
	return st
}

// RestoreRunner rebuilds a runner over an already-restored kernel. p
// and seed must match the original NewRunner call (seed only seeds the
// stream; the serialized stream state overrides it). Every handle is
// rehydrated from the restored kernel's live table.
func RestoreRunner(k *kernel.Kernel, p Profile, seed uint64, st *RunnerState) (*Runner, error) {
	r := NewRunner(k, p, seed)
	r.rng = stats.NewRNG(seed)
	r.rng.SetState(st.RNGS0, st.RNGS1)
	r.unmovHeld = st.UnmovHeld
	r.mappingHeld = st.MappingHeld
	r.UnmovableAllocFailures = st.UnmovableAllocFailures
	r.ticksRun = st.TicksRun
	r.churnCarry = st.ChurnCarry
	r.OOMKillsTaken = st.OOMKillsTaken
	if st.OOMBackoffUntil != nil {
		if r.oomBackoffUntil == nil {
			return nil, fmt.Errorf("workload: restore: serialized OOM backoff but kernel has no pressure config")
		}
		if len(st.OOMBackoffUntil) != len(r.oomBackoffUntil) {
			return nil, fmt.Errorf("workload: restore: %d OOM backoff slots, runner has %d",
				len(st.OOMBackoffUntil), len(r.oomBackoffUntil))
		}
		copy(r.oomBackoffUntil, st.OOMBackoffUntil)
	}

	page := func(pfn uint64, what string) (*kernel.Page, error) {
		h := k.PageAt(pfn)
		if h == nil {
			return nil, fmt.Errorf("workload: restore: %s handle at pfn %d is not live", what, pfn)
		}
		return h, nil
	}
	for _, ms := range st.Mappings {
		m := &kernel.Mapping{Bytes: ms.Bytes}
		for _, pfn := range ms.Blocks {
			b, err := page(pfn, "mapping block")
			if err != nil {
				return nil, err
			}
			m.Blocks = append(m.Blocks, b)
		}
		r.mappings = append(r.mappings, m)
	}
	for _, pfn := range st.Unmov {
		h, err := page(pfn, "unmovable pool")
		if err != nil {
			return nil, err
		}
		r.unmov = append(r.unmov, h)
	}
	for _, pfn := range st.Small {
		h, err := page(pfn, "small pool")
		if err != nil {
			return nil, err
		}
		r.small = append(r.small, h)
	}

	if len(st.Slab) > 0 {
		if r.slabMgr == nil {
			return nil, fmt.Errorf("workload: restore: serialized slab state but profile has no slab share")
		}
		if len(st.Slab) != r.slabMgr.NumCaches() {
			return nil, fmt.Errorf("workload: restore: %d slab cache states, manager has %d",
				len(st.Slab), r.slabMgr.NumCaches())
		}
		for ci, cs := range st.Slab {
			err := r.slabMgr.Cache(ci).ImportState(cs, func(pfn uint64) *kernel.Page {
				return k.PageAt(pfn)
			})
			if err != nil {
				return nil, err
			}
		}
		r.slabObjs = make([]slabObj, 0, len(st.SlabObjs))
		for _, os := range st.SlabObjs {
			if os.Cache < 0 || os.Cache >= r.slabMgr.NumCaches() {
				return nil, fmt.Errorf("workload: restore: slab object names cache %d", os.Cache)
			}
			o, err := r.slabMgr.Cache(os.Cache).ObjAt(os.PFN, os.Slot)
			if err != nil {
				return nil, err
			}
			r.slabObjs = append(r.slabObjs, slabObj{obj: o, cache: os.Cache})
		}
		for ci := 0; ci < r.slabMgr.NumCaches(); ci++ {
			r.slabMgr.Cache(ci).EndRestore()
		}
	} else if len(st.SlabObjs) > 0 {
		return nil, fmt.Errorf("workload: restore: slab objects without cache state")
	}
	return r, nil
}
