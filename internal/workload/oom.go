package workload

// OOM-victim adapters: the runner's handle pools double as the kill
// candidates the kernel's pressure ladder selects among. A kill frees
// the whole pool synchronously (Free/FreeMapping only — never Alloc, so
// kills cannot re-enter the ladder) and arms a per-pool backoff; the
// pool's refill loops sit out until the backoff tick passes, modelling
// the killed service staying down before the supervisor restarts it.
//
// Victims register in NewRunner in a fixed order — registration order
// is the kernel's deterministic tie-break — and are rebuilt the same
// way on restore; only the backoff deadlines serialize.

// Pool indices, also the victim registration order.
const (
	vicMappings = iota // THP-backed anonymous memory: the big, killable heap
	vicSmall           // 4 KB user pool
	vicUnmov           // kernel/unmovable pool, badness-protected
	numVictims
)

// oomScoreAdj per pool, in thousandths of machine memory (the
// oom_score_adj convention): user pools are fair game, the unmovable
// pool is protected the way kernel memory is — it only scores positive
// if it somehow exceeds half the machine.
var victimAdj = [numVictims]int64{0, 0, -500}

var victimNames = [numVictims]string{"user-mappings", "user-small", "unmov-pool"}

// poolVictim adapts one runner pool to kernel.OOMVictim.
type poolVictim struct {
	r   *Runner
	idx int
}

func (v *poolVictim) OOMName() string    { return victimNames[v.idx] }
func (v *poolVictim) OOMScoreAdj() int64 { return victimAdj[v.idx] }

func (v *poolVictim) OOMPages() uint64 {
	r := v.r
	switch v.idx {
	case vicMappings:
		if r.promoting {
			// khugepaged is mid-collapse over a mapping; killing the pool
			// under it would orphan the collapse's target block. The other
			// victims remain eligible.
			return 0
		}
		return r.mappingHeld
	case vicSmall:
		return uint64(len(r.small))
	default:
		return r.unmovHeld
	}
}

func (v *poolVictim) OOMKill(tick uint64) uint64 {
	r := v.r
	var freed uint64
	switch v.idx {
	case vicMappings:
		freed = r.mappingHeld
		for _, m := range r.mappings {
			r.K.FreeMapping(m)
		}
		r.mappings = r.mappings[:0]
		r.mappingHeld = 0
	case vicSmall:
		freed = uint64(len(r.small))
		for _, p := range r.small {
			r.K.Free(p)
		}
		r.small = r.small[:0]
	default:
		freed = r.unmovHeld
		for _, p := range r.unmov {
			if p.Pinned {
				r.K.Unpin(p)
			}
			r.K.Free(p)
		}
		r.unmov = r.unmov[:0]
		r.unmovHeld = 0
	}
	r.oomBackoffUntil[v.idx] = tick + r.K.PressureConfig().OOMBackoffTicks
	r.OOMKillsTaken++
	return freed
}

// registerVictims wires the runner's pools into the kernel's OOM killer
// when the pressure ladder is enabled. Called from NewRunner, so plain
// and restored runners register identically.
func (r *Runner) registerVictims() {
	if r.K.PressureConfig() == nil {
		return
	}
	r.oomBackoffUntil = make([]uint64, numVictims)
	for i := 0; i < numVictims; i++ {
		r.K.RegisterOOMVictim(&poolVictim{r: r, idx: i})
	}
}

// suppressed reports whether the pool is sitting out its post-kill
// backoff; refill loops check it each iteration so a kill fired from
// inside the loop's own allocation stops the refill immediately.
func (r *Runner) suppressed(idx int) bool {
	return r.oomBackoffUntil != nil && r.K.Tick() < r.oomBackoffUntil[idx]
}
