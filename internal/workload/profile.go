// Package workload generates the allocation behaviour of the paper's
// production services. Each Profile describes a service's steady-state
// memory composition — user anonymous memory (THP-backed), reclaimable
// page cache, and unmovable kernel allocations with the source mix of
// Figure 6 (networking ~73 %, slab ~12 %, filesystems, page tables,
// other) — together with churn rates and pinning behaviour. A Runner
// drives a simulated kernel with that behaviour; the Fragmenter
// reproduces the paper's Full-Fragmentation experimental setup.
package workload

import (
	"contiguitas/internal/mem"
	"contiguitas/internal/trans"
)

const gb = uint64(1) << 30

// Profile describes one service's memory behaviour as fractions of
// machine memory, so the same profile scales from simulation-sized
// machines to the paper's 64 GB servers.
type Profile struct {
	Name string

	// Steady-state composition, fractions of total machine memory.
	UserFrac      float64 // anonymous memory, THP-eligible
	PageCacheFrac float64 // reclaimable page cache
	UnmovableFrac float64 // unmovable kernel allocations

	// SourceMix weights unmovable allocations by subsystem; indexes are
	// mem.Source values. User and kernel-code entries stay zero.
	SourceMix [mem.NumSources]float64

	// UnmovableChurn is the fraction of the unmovable pool replaced per
	// tick — networking buffers turn over fast, slab slower.
	UnmovableChurn float64
	// PinFraction is the probability a networking allocation is pinned
	// (RDMA / zero-copy), exercising the §3.2 pin-migration path.
	PinFraction float64
	// RedeployPeriodTicks: every period the service restarts —
	// mappings are freed and reallocated (the paper: "this behavior is
	// common in production due to frequent code deployments").
	RedeployPeriodTicks uint64
	// UserChurn is the fraction of user mappings released and
	// re-faulted each tick (arena turnover, fork/exec of helpers).
	UserChurn float64
	// SmallUserFrac carves part of UserFrac into individually allocated
	// and freed 4 KB pages (stacks, small mmaps, COW pages). Their
	// churn punches base-page holes across the address space — the
	// holes fallback stealing then fills with unmovable allocations on
	// the Linux layout (the scatter mechanism of §2.5).
	SmallUserFrac float64
	// SmallChurn is the fraction of the small-page pool replaced per tick.
	SmallChurn float64
	// UnmovBurst and UnmovBurstPeriod modulate unmovable demand
	// sinusoidally: target × (1 ± UnmovBurst). Demand swings force the
	// allocator to repeatedly grow into movable memory and give blocks
	// back — the migratetype ping-pong that strands unmovable residue.
	UnmovBurst       float64
	UnmovBurstPeriod uint64
	// MappingChunkBytes sizes the user mappings (services map memory
	// in large arenas).
	MappingChunkBytes uint64
	// KhugepagedCollapses bounds background huge-page promotion per
	// tick (khugepaged, §2.1): base-page runs in existing mappings are
	// collapsed into 2 MB blocks when contiguity allows.
	KhugepagedCollapses int

	// Trans anchors the translation model for this service (Figure 3).
	Trans trans.Workload
}

// standardMix is the fleet-wide unmovable source mix of Figure 6.
func standardMix() [mem.NumSources]float64 {
	var m [mem.NumSources]float64
	m[mem.SrcNetworking] = 0.73
	m[mem.SrcSlab] = 0.12
	m[mem.SrcFilesystem] = 0.07
	m[mem.SrcPageTable] = 0.04
	m[mem.SrcOther] = 0.04
	return m
}

// Web is one of Meta's largest services: large anonymous heap, heavy
// instruction footprint, benefits from both 2 MB and 1 GB pages.
func Web() Profile {
	return Profile{
		Name:                "Web",
		UserFrac:            0.70,
		PageCacheFrac:       0.06,
		UnmovableFrac:       0.055,
		SourceMix:           standardMix(),
		UnmovableChurn:      0.02,
		UserChurn:           0.02,
		SmallUserFrac:       0.12,
		SmallChurn:          0.03,
		UnmovBurst:          0.30,
		UnmovBurstPeriod:    120,
		PinFraction:         0.10,
		RedeployPeriodTicks: 4000,
		MappingChunkBytes:   64 << 20,
		KhugepagedCollapses: 2,
		Trans: trans.Workload{
			Name:             "Web",
			DataFootprint:    48 * gb,
			InstrFootprint:   512 << 20,
			BaseWalkPctData:  14,
			BaseWalkPctInstr: 6,
			HotTheta:         0.5,
		},
	}
}

// CacheA is the largest in-memory caching service: huge value heap,
// extreme networking-buffer turnover.
func CacheA() Profile {
	mix := standardMix()
	mix[mem.SrcNetworking] = 0.80
	mix[mem.SrcSlab] = 0.09
	mix[mem.SrcFilesystem] = 0.04
	return Profile{
		Name:                "Cache A",
		UserFrac:            0.76,
		PageCacheFrac:       0.03,
		UnmovableFrac:       0.075,
		SourceMix:           mix,
		UnmovableChurn:      0.05,
		UserChurn:           0.03,
		SmallUserFrac:       0.10,
		SmallChurn:          0.05,
		UnmovBurst:          0.40,
		UnmovBurstPeriod:    100,
		PinFraction:         0.20,
		RedeployPeriodTicks: 6000,
		MappingChunkBytes:   128 << 20,
		KhugepagedCollapses: 2,
		Trans: trans.Workload{
			Name:             "Cache A",
			DataFootprint:    52 * gb,
			InstrFootprint:   128 << 20,
			BaseWalkPctData:  10,
			BaseWalkPctInstr: 1.5,
			HotTheta:         0.7,
		},
	}
}

// CacheB is a memcached fork: similar shape to Cache A with a slightly
// smaller heap and lower translation pressure.
func CacheB() Profile {
	mix := standardMix()
	mix[mem.SrcNetworking] = 0.78
	mix[mem.SrcSlab] = 0.07
	return Profile{
		Name:                "Cache B",
		UserFrac:            0.72,
		PageCacheFrac:       0.04,
		UnmovableFrac:       0.06,
		SourceMix:           mix,
		UnmovableChurn:      0.04,
		UserChurn:           0.03,
		SmallUserFrac:       0.10,
		SmallChurn:          0.05,
		UnmovBurst:          0.35,
		UnmovBurstPeriod:    100,
		PinFraction:         0.15,
		RedeployPeriodTicks: 6000,
		MappingChunkBytes:   128 << 20,
		KhugepagedCollapses: 2,
		Trans: trans.Workload{
			Name:             "Cache B",
			DataFootprint:    46 * gb,
			InstrFootprint:   128 << 20,
			BaseWalkPctData:  8,
			BaseWalkPctInstr: 1.2,
			HotTheta:         0.7,
		},
	}
}

// CI is the continuous-integration workload: bursty build/test jobs,
// heavy filesystem and slab pressure, large page cache.
func CI() Profile {
	mix := standardMix()
	mix[mem.SrcNetworking] = 0.40
	mix[mem.SrcSlab] = 0.30
	mix[mem.SrcFilesystem] = 0.20
	mix[mem.SrcPageTable] = 0.06
	mix[mem.SrcOther] = 0.04
	return Profile{
		Name:                "CI",
		UserFrac:            0.45,
		PageCacheFrac:       0.28,
		UnmovableFrac:       0.09,
		SourceMix:           mix,
		UnmovableChurn:      0.08,
		UserChurn:           0.08,
		SmallUserFrac:       0.15,
		SmallChurn:          0.10,
		UnmovBurst:          0.50,
		UnmovBurstPeriod:    80,
		PinFraction:         0.02,
		RedeployPeriodTicks: 1500,
		MappingChunkBytes:   32 << 20,
		KhugepagedCollapses: 1,
		Trans: trans.Workload{
			Name:             "CI",
			DataFootprint:    30 * gb,
			InstrFootprint:   256 << 20,
			BaseWalkPctData:  6,
			BaseWalkPctInstr: 2,
			HotTheta:         0.8,
		},
	}
}

// Ads appears in Figure 3 only (page-walk characterisation).
func Ads() Profile {
	return Profile{
		Name:              "Ads",
		UserFrac:          0.74,
		PageCacheFrac:     0.05,
		UnmovableFrac:     0.05,
		SourceMix:         standardMix(),
		UnmovableChurn:    0.02,
		UserChurn:         0.02,
		SmallUserFrac:     0.12,
		SmallChurn:        0.03,
		UnmovBurst:        0.30,
		UnmovBurstPeriod:  120,
		MappingChunkBytes: 64 << 20,
		Trans: trans.Workload{
			Name:             "Ads",
			DataFootprint:    44 * gb,
			InstrFootprint:   384 << 20,
			BaseWalkPctData:  11,
			BaseWalkPctInstr: 4,
			HotTheta:         0.6,
		},
	}
}

// Profiles returns the Figure 11/12 service set.
func Profiles() []Profile {
	return []Profile{CI(), Web(), CacheA(), CacheB()}
}

// sourceOrder returns the block order a given unmovable source
// allocates at: networking rings and slabs use small compound pages,
// everything else base pages.
func sourceOrder(src mem.Source, roll float64) int {
	switch src {
	case mem.SrcNetworking:
		// rx/tx buffers: mostly order-0/1, some order-2 rings.
		switch {
		case roll < 0.6:
			return 0
		case roll < 0.9:
			return 1
		default:
			return 2
		}
	case mem.SrcSlab:
		if roll < 0.7 {
			return 0
		}
		return 1
	default:
		return 0
	}
}
