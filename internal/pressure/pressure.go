// Package pressure holds the policy half of the memory-exhaustion
// survival subsystem: the allocation ladder's rung ordering, throttle
// pricing, the admission gate's hysteresis, and the OOM killer's
// badness arithmetic. Everything here is pure state-machine code with
// no kernel dependencies, so each policy is unit-testable in isolation
// and the kernel integration (internal/kernel/pressure.go) stays a
// thin mechanism layer. All state is exported through plain structs so
// it round-trips through CTGSNAP snapshots.
package pressure

// Rung identifies how far down the allocation ladder a request had to
// descend before it was satisfied (or finally failed). The order is
// the escalation order: a well-formed pressure profile only ever moves
// to higher rungs as footprint grows past capacity.
type Rung uint8

const (
	// RungFast: satisfied from the buddy free lists immediately.
	RungFast Rung = iota
	// RungReclaim: needed direct reclaim of page cache.
	RungReclaim
	// RungCompact: needed compaction to manufacture contiguity.
	RungCompact
	// RungThrottle: entered the throttle loop — cycle-priced stalls
	// with escalating backoff while reclaim retries make progress.
	RungThrottle
	// RungResize: needed an emergency region resize (unmovable shrink
	// for movable requests, expand for unmovable requests).
	RungResize
	// RungOOM: needed the OOM killer to free a victim's pages.
	RungOOM

	NumRungs = int(RungOOM) + 1
)

func (r Rung) String() string {
	switch r {
	case RungFast:
		return "fast"
	case RungReclaim:
		return "reclaim"
	case RungCompact:
		return "compact"
	case RungThrottle:
		return "throttle"
	case RungResize:
		return "resize"
	case RungOOM:
		return "oom"
	default:
		return "rung?"
	}
}

// Config parameterizes every rung of the ladder plus the admission
// gate. The zero value is usable: Normalized fills unset fields with
// the defaults, so callers can override only what they care about.
type Config struct {
	// ThrottleRounds bounds the throttle loop: each round stalls the
	// allocation, reclaims, and retries. Zero means DefaultConfig's.
	ThrottleRounds int
	// ThrottleBaseCycles is the stall charged on the first throttle
	// round; each further round doubles it.
	ThrottleBaseCycles uint64
	// ThrottleCeilingCycles caps the cumulative stall charged to one
	// allocation across all ladder rungs — the bounded-stall guarantee
	// the pressure sweep asserts (p99 alloc stall <= ceiling).
	ThrottleCeilingCycles uint64
	// CyclesPerTick converts stall cycles into the tick fractions the
	// PSI trackers consume (1 tick of full stall == CyclesPerTick).
	CyclesPerTick uint64

	// GateHalfLifeTicks is the half-life of the dedicated admission
	// PSI tracker. It is much shorter than the kernel's reporting
	// trackers so the gate both trips and reopens within tens of
	// ticks instead of sticking shut for a whole run.
	GateHalfLifeTicks uint64
	// ShedEnterPSI / ShedExitPSI are the admission hysteresis band in
	// PSI percent: shedding starts when the gate tracker crosses
	// ShedEnterPSI and stops only once it decays below ShedExitPSI.
	ShedEnterPSI float64
	ShedExitPSI  float64

	// MaxKillsPerAlloc bounds OOM kills charged to a single
	// allocation attempt.
	MaxKillsPerAlloc int
	// OOMBackoffTicks is how long the runner keeps a killed pool
	// shedded before re-admitting its demand.
	OOMBackoffTicks uint64
}

// DefaultConfig returns the ladder tuning used by the chaos soak and
// the pressure sweep.
func DefaultConfig() *Config {
	return &Config{
		ThrottleRounds:        4,
		ThrottleBaseCycles:    50_000,
		ThrottleCeilingCycles: 2_000_000,
		CyclesPerTick:         2_000_000,
		GateHalfLifeTicks:     25,
		ShedEnterPSI:          85,
		ShedExitPSI:           55,
		MaxKillsPerAlloc:      1,
		OOMBackoffTicks:       50,
	}
}

// Normalized returns a copy with every zero field replaced by its
// default, so partially specified configs behave predictably.
func (c *Config) Normalized() *Config {
	d := DefaultConfig()
	n := *c
	if n.ThrottleRounds <= 0 {
		n.ThrottleRounds = d.ThrottleRounds
	}
	if n.ThrottleBaseCycles == 0 {
		n.ThrottleBaseCycles = d.ThrottleBaseCycles
	}
	if n.ThrottleCeilingCycles == 0 {
		n.ThrottleCeilingCycles = d.ThrottleCeilingCycles
	}
	if n.CyclesPerTick == 0 {
		n.CyclesPerTick = d.CyclesPerTick
	}
	if n.GateHalfLifeTicks == 0 {
		n.GateHalfLifeTicks = d.GateHalfLifeTicks
	}
	if n.ShedEnterPSI == 0 {
		n.ShedEnterPSI = d.ShedEnterPSI
	}
	if n.ShedExitPSI == 0 {
		n.ShedExitPSI = d.ShedExitPSI
	}
	if n.ShedExitPSI > n.ShedEnterPSI {
		n.ShedExitPSI = n.ShedEnterPSI
	}
	if n.MaxKillsPerAlloc <= 0 {
		n.MaxKillsPerAlloc = d.MaxKillsPerAlloc
	}
	if n.OOMBackoffTicks == 0 {
		n.OOMBackoffTicks = d.OOMBackoffTicks
	}
	return &n
}

// ThrottleStall prices one throttle round: base << round, with the
// cumulative total (spent so far + this round) clamped to the ceiling.
// A zero return means the budget is exhausted and the ladder must
// escalate instead of stalling again.
func (c *Config) ThrottleStall(round int, spent uint64) uint64 {
	if spent >= c.ThrottleCeilingCycles {
		return 0
	}
	stall := c.ThrottleBaseCycles
	if round > 0 && round < 64 {
		stall = c.ThrottleBaseCycles << uint(round)
	}
	if spent+stall > c.ThrottleCeilingCycles {
		stall = c.ThrottleCeilingCycles - spent
	}
	return stall
}

// Gate is the admission-control state machine: a Schmitt trigger over
// the short-half-life PSI signal. While shedding, new movable
// allocations without a bypass flag fail fast with ErrAllocShed
// instead of descending the ladder, letting pressure decay.
type Gate struct {
	shedding bool
	since    uint64 // tick of the last state change
}

// Update feeds the gate one end-of-tick PSI sample (percent) against
// the hysteresis band. It reports whether the gate changed state.
func (g *Gate) Update(tick uint64, psiPct, enter, exit float64) bool {
	switch {
	case !g.shedding && psiPct >= enter:
		g.shedding = true
		g.since = tick
		return true
	case g.shedding && psiPct < exit:
		g.shedding = false
		g.since = tick
		return true
	}
	return false
}

// Shedding reports whether the gate is currently refusing admission.
func (g *Gate) Shedding() bool { return g.shedding }

// Since returns the tick of the last gate transition.
func (g *Gate) Since() uint64 { return g.since }

// GateState is the serializable gate snapshot.
type GateState struct {
	Shedding bool
	Since    uint64
}

// State exports the gate for a snapshot.
func (g *Gate) State() GateState { return GateState{Shedding: g.shedding, Since: g.since} }

// SetState restores the gate from a snapshot.
func (g *Gate) SetState(s GateState) { g.shedding = s.Shedding; g.since = s.Since }

// Badness scores an OOM victim the way Linux's oom_badness does:
// points proportional to the victim's resident pages, adjusted by an
// oom_score_adj-style bias expressed in thousandths of total memory.
// Higher is more killable; non-positive scores are never killed.
func Badness(pages, totalPages uint64, adj int64) int64 {
	points := int64(pages)
	points += adj * int64(totalPages) / 1000
	return points
}

// Kill records one OOM killer invocation for snapshots and reports.
type Kill struct {
	Tick       uint64
	Victim     string
	Badness    int64
	PagesFreed uint64
}

// Escalation accumulates the ladder profile of a run: how many times
// each rung was reached and the first tick it was reached at. The
// sweep asserts the profile is monotone — rungs are first reached in
// escalation order as footprint ramps past capacity.
type Escalation struct {
	Hits [NumRungs]uint64
	// FirstTick holds tick+1 of the first hit (0 = never reached), so
	// the zero value is meaningful and hashes deterministically.
	FirstTick [NumRungs]uint64
}

// Note records one visit to rung r at the given tick.
func (e *Escalation) Note(r Rung, tick uint64) {
	e.Hits[r]++
	if e.FirstTick[r] == 0 {
		e.FirstTick[r] = tick + 1
	}
}

// MaxRung returns the deepest rung reached.
func (e *Escalation) MaxRung() Rung {
	max := RungFast
	for r := 0; r < NumRungs; r++ {
		if e.Hits[r] > 0 {
			max = Rung(r)
		}
	}
	return max
}

// Ordered reports whether the escalation profile is monotone: among
// the emergency rungs (throttle, resize, OOM), each rung that was
// reached was first reached no earlier than the rung before it. The
// light rungs (reclaim/compact) fire routinely from tick 0, so they
// are excluded from the ordering requirement.
func (e *Escalation) Ordered() bool {
	last := uint64(0)
	for r := int(RungThrottle); r < NumRungs; r++ {
		if e.FirstTick[r] == 0 {
			continue
		}
		if e.FirstTick[r] < last {
			return false
		}
		last = e.FirstTick[r]
	}
	return true
}
