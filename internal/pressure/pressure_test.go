package pressure

import "testing"

func TestNormalizedFillsDefaults(t *testing.T) {
	d := DefaultConfig()
	n := (&Config{}).Normalized()
	if *n != *d {
		t.Fatalf("zero config normalized to %+v, want defaults %+v", n, d)
	}
	// Overrides survive; only zero fields are filled.
	c := (&Config{ThrottleRounds: 9, ShedEnterPSI: 70}).Normalized()
	if c.ThrottleRounds != 9 || c.ShedEnterPSI != 70 {
		t.Fatalf("overrides clobbered: %+v", c)
	}
	if c.ThrottleBaseCycles != d.ThrottleBaseCycles || c.OOMBackoffTicks != d.OOMBackoffTicks {
		t.Fatalf("defaults not filled: %+v", c)
	}
	// Exit threshold above enter would make the gate flap open/shut on
	// the same sample; Normalized clamps it down to enter.
	c = (&Config{ShedEnterPSI: 40, ShedExitPSI: 80}).Normalized()
	if c.ShedExitPSI != 40 {
		t.Fatalf("exit %v not clamped to enter %v", c.ShedExitPSI, c.ShedEnterPSI)
	}
}

func TestThrottleStallDoublesAndCaps(t *testing.T) {
	c := &Config{ThrottleBaseCycles: 100, ThrottleCeilingCycles: 1000}
	spent := uint64(0)
	var got []uint64
	for round := 0; ; round++ {
		s := c.ThrottleStall(round, spent)
		if s == 0 {
			break
		}
		got = append(got, s)
		spent += s
	}
	// 100, 200, 400, then 300 (clamped to the 1000 ceiling), then 0.
	want := []uint64{100, 200, 400, 300}
	if len(got) != len(want) {
		t.Fatalf("stall sequence %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stall sequence %v, want %v", got, want)
		}
	}
	if spent != c.ThrottleCeilingCycles {
		t.Fatalf("total spent %d != ceiling %d", spent, c.ThrottleCeilingCycles)
	}
	if s := c.ThrottleStall(10, spent); s != 0 {
		t.Fatalf("stall after ceiling = %d, want 0", s)
	}
}

func TestGateHysteresis(t *testing.T) {
	var g Gate
	const enter, exit = 85, 55
	if g.Shedding() {
		t.Fatal("zero gate shedding")
	}
	// Below enter: no transition.
	if g.Update(1, 80, enter, exit) || g.Shedding() {
		t.Fatal("gate tripped below enter threshold")
	}
	// Cross enter: sheds.
	if !g.Update(2, 90, enter, exit) || !g.Shedding() || g.Since() != 2 {
		t.Fatalf("gate did not trip at enter: %+v", g)
	}
	// Inside the band: stays shedding (hysteresis, no flap).
	if g.Update(3, 70, enter, exit) || !g.Shedding() {
		t.Fatal("gate reopened inside hysteresis band")
	}
	// Re-crossing enter while already shedding is not a transition.
	if g.Update(4, 95, enter, exit) {
		t.Fatal("spurious transition while already shedding")
	}
	// Below exit: reopens.
	if !g.Update(5, 50, enter, exit) || g.Shedding() || g.Since() != 5 {
		t.Fatalf("gate did not reopen below exit: %+v", g)
	}
}

func TestGateStateRoundTrip(t *testing.T) {
	var g Gate
	g.Update(7, 99, 85, 55)
	var h Gate
	h.SetState(g.State())
	if h.Shedding() != g.Shedding() || h.Since() != g.Since() {
		t.Fatalf("round trip lost state: %+v vs %+v", h.State(), g.State())
	}
}

func TestBadness(t *testing.T) {
	const total = 10_000
	// Pure size: bigger pool is more killable.
	if Badness(500, total, 0) >= Badness(900, total, 0) {
		t.Fatal("badness not monotone in pages")
	}
	// A -500 adj (kernel-ish pool) subtracts half of total memory:
	// such a pool is only killable once it dwarfs everything else.
	if b := Badness(900, total, -500); b != 900-5000 {
		t.Fatalf("adj badness = %d, want %d", b, 900-5000)
	}
	if Badness(6000, total, -500) <= 0 {
		t.Fatal("huge pool with negative adj should still score positive")
	}
}

func TestEscalationProfile(t *testing.T) {
	var e Escalation
	if e.MaxRung() != RungFast || !e.Ordered() {
		t.Fatalf("zero escalation: max=%v ordered=%v", e.MaxRung(), e.Ordered())
	}
	// Reclaim/compact fire early and routinely — never affect ordering.
	e.Note(RungReclaim, 0)
	e.Note(RungCompact, 1)
	e.Note(RungThrottle, 100)
	e.Note(RungResize, 120)
	e.Note(RungOOM, 150)
	e.Note(RungThrottle, 200) // later revisits don't disturb FirstTick
	if e.MaxRung() != RungOOM {
		t.Fatalf("max rung %v, want oom", e.MaxRung())
	}
	if !e.Ordered() {
		t.Fatalf("monotone profile reported unordered: %+v", e)
	}
	if e.Hits[RungThrottle] != 2 || e.FirstTick[RungThrottle] != 101 {
		t.Fatalf("throttle accounting: %+v", e)
	}

	// OOM before throttle: out of order.
	var bad Escalation
	bad.Note(RungOOM, 10)
	bad.Note(RungThrottle, 20)
	if bad.Ordered() {
		t.Fatalf("inverted profile reported ordered: %+v", bad)
	}

	// A skipped rung is fine (e.g. unmovable requests expand instead
	// of throttling first).
	var skip Escalation
	skip.Note(RungThrottle, 5)
	skip.Note(RungOOM, 9)
	if !skip.Ordered() {
		t.Fatalf("gap profile reported unordered: %+v", skip)
	}
}

func TestRungString(t *testing.T) {
	want := []string{"fast", "reclaim", "compact", "throttle", "resize", "oom"}
	for r := 0; r < NumRungs; r++ {
		if Rung(r).String() != want[r] {
			t.Fatalf("Rung(%d) = %q, want %q", r, Rung(r), want[r])
		}
	}
	if Rung(200).String() != "rung?" {
		t.Fatal("out-of-range rung string")
	}
}
