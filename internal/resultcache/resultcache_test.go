package resultcache

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDirRoundTrip(t *testing.T) {
	c := NewDir(t.TempDir(), 3)
	if _, err := c.Get(42); !errors.Is(err, ErrMiss) {
		t.Fatalf("empty cache Get = %v, want ErrMiss", err)
	}
	want := []byte("shard samples")
	if err := c.Put(42, want); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("payload %q, want %q", got, want)
	}
	// Overwrite is last-writer-wins.
	if err := c.Put(42, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Get(42); string(got) != "v2" {
		t.Fatalf("after overwrite: %q", got)
	}
}

// TestDirRejectsEveryByteFlip corrupts the entry file at several offsets
// and requires every flip to be refused as ErrCorrupt (a gob break, a
// broken digest, or a broken self-digest — never trusted bytes).
func TestDirRejectsEveryByteFlip(t *testing.T) {
	c := NewDir(t.TempDir(), 1)
	payload := bytes.Repeat([]byte("abcdefgh"), 32)
	if err := c.Put(7, payload); err != nil {
		t.Fatal(err)
	}
	path := c.EntryPath(7)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{0, 1, len(orig) / 4, len(orig) / 2, len(orig) - 1} {
		bad := append([]byte(nil), orig...)
		bad[off] ^= 0xFF
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := c.Get(7)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: Get = %v, want ErrCorrupt", off, err)
		}
		if !IsReject(err) {
			t.Fatalf("flip at %d not classified as reject", off)
		}
	}
	// A truncated (torn) file is also refused.
	if err := os.WriteFile(path, orig[:len(orig)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(7); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated Get = %v, want ErrCorrupt", err)
	}
	// Recompute heals in place: Put overwrites, Get trusts again.
	if err := c.Put(7, payload); err != nil {
		t.Fatal(err)
	}
	if got, err := c.Get(7); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("healed Get = %q, %v", got, err)
	}
}

// TestDirRejectsStaleSchema: an intact entry written under schema N is
// refused by a schema N+1 reader with the dedicated sentinel, and a
// recompute under the new schema overwrites it.
func TestDirRejectsStaleSchema(t *testing.T) {
	dir := t.TempDir()
	old := NewDir(dir, 1)
	if err := old.Put(9, []byte("old model")); err != nil {
		t.Fatal(err)
	}
	cur := NewDir(dir, 2)
	_, err := cur.Get(9)
	if !errors.Is(err, ErrStaleSchema) {
		t.Fatalf("Get = %v, want ErrStaleSchema", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatal("stale schema must not be conflated with corruption")
	}
	if !IsReject(err) {
		t.Fatal("stale schema must classify as reject")
	}
	if err := cur.Put(9, []byte("new model")); err != nil {
		t.Fatal(err)
	}
	if got, err := cur.Get(9); err != nil || string(got) != "new model" {
		t.Fatalf("after re-Put: %q, %v", got, err)
	}
	// The old reader now sees the entry as stale from its side.
	if _, err := old.Get(9); !errors.Is(err, ErrStaleSchema) {
		t.Fatalf("old reader Get = %v, want ErrStaleSchema", err)
	}
}

// TestDirRejectsSwappedKey: a valid entry file renamed over another
// key's path carries the wrong content address and must be refused.
func TestDirRejectsSwappedKey(t *testing.T) {
	c := NewDir(t.TempDir(), 1)
	if err := c.Put(1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(c.EntryPath(1), c.EntryPath(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("swapped Get = %v, want ErrCorrupt", err)
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := NewLRU(2, 1)
	for k := uint64(1); k <= 2; k++ {
		if err := c.Put(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	// Touch 1 so 2 becomes the eviction victim.
	if _, err := c.Get(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(3, []byte{3}); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, err := c.Get(2); !errors.Is(err, ErrMiss) {
		t.Fatalf("evicted Get = %v, want ErrMiss", err)
	}
	for _, k := range []uint64{1, 3} {
		if _, err := c.Get(k); err != nil {
			t.Fatalf("retained key %d: %v", k, err)
		}
	}
}

// TestLRUCopiesPayload: the cache must not alias the caller's buffer —
// fleet reuses encode buffers across shards.
func TestLRUCopiesPayload(t *testing.T) {
	c := NewLRU(4, 1)
	buf := []byte("original")
	if err := c.Put(5, buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "CLOBBER!")
	got, err := c.Get(5)
	if err != nil || string(got) != "original" {
		t.Fatalf("Get = %q, %v; cache aliased the caller's buffer", got, err)
	}
}

func TestLRUConcurrentAccess(t *testing.T) {
	c := NewLRU(64, 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := uint64(i % 32)
				if err := c.Put(k, []byte{byte(g), byte(i)}); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Get(k); err != nil && !errors.Is(err, ErrMiss) {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestFlightSingleComputation: many goroutines race to compute one key;
// exactly one becomes the leader, everyone else waits and then reads the
// leader's Put.
func TestFlightSingleComputation(t *testing.T) {
	f := NewFlight()
	c := NewLRU(8, 1)
	const goroutines = 16
	var computations atomic.Uint64
	var wg sync.WaitGroup
	results := make([][]byte, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			owner := fmt.Sprintf("owner-%d", g)
			for {
				if payload, err := c.Get(1); err == nil {
					results[g] = payload
					return
				}
				leader, wait := f.Join(1, owner)
				if leader {
					computations.Add(1)
					time.Sleep(10 * time.Millisecond) // widen the race window
					if err := c.Put(1, []byte("computed")); err != nil {
						t.Error(err)
					}
					f.Finish(1, owner)
					results[g] = []byte("computed")
					return
				}
				wait(0) // no timeout: the leader is guaranteed to Finish
			}
		}(g)
	}
	wg.Wait()
	if n := computations.Load(); n != 1 {
		t.Fatalf("%d computations, want exactly 1", n)
	}
	for g, r := range results {
		if string(r) != "computed" {
			t.Fatalf("goroutine %d got %q", g, r)
		}
	}
}

// TestFlightLeaderRetryAndOwnerScoping: a leader's retry re-Joins as
// leader (no self-deadlock), a different owner stays a follower, and
// Finish by a non-leader is a no-op.
func TestFlightLeaderRetryAndOwnerScoping(t *testing.T) {
	f := NewFlight()
	if leader, _ := f.Join(7, "a"); !leader {
		t.Fatal("first Join must lead")
	}
	if leader, _ := f.Join(7, "a"); !leader {
		t.Fatal("same-owner re-Join must still lead")
	}
	leader, wait := f.Join(7, "b")
	if leader {
		t.Fatal("second owner must follow")
	}
	f.Finish(7, "b") // non-leader: no-op
	if finished := wait(time.Millisecond); finished {
		t.Fatal("non-leader Finish released the followers")
	}
	f.Finish(7, "a")
	if finished := wait(time.Second); !finished {
		t.Fatal("leader Finish did not release the follower")
	}
	f.Finish(7, "a") // idempotent
	// Key is free again: a new owner leads immediately.
	if leader, _ := f.Join(7, "c"); !leader {
		t.Fatal("released key must elect a fresh leader")
	}
}

// TestFlightWaitTimeout: a follower's bounded wait returns false when
// the leader never finishes — the no-deadlock guarantee.
func TestFlightWaitTimeout(t *testing.T) {
	f := NewFlight()
	if leader, _ := f.Join(3, "wedged"); !leader {
		t.Fatal("setup: first Join must lead")
	}
	_, wait := f.Join(3, "victim")
	start := time.Now()
	if wait(5 * time.Millisecond) {
		t.Fatal("wait reported finished under a wedged leader")
	}
	if time.Since(start) > time.Second {
		t.Fatal("timeout wait blocked far past its bound")
	}
}
