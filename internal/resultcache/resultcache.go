// Package resultcache is a content-addressed store for deterministic
// simulation results. A key is the canonical digest of a computation's
// full input closure (the fleet layer derives it from the result-relevant
// config fields, the shard's stats.ShardSeed stream, the shard span, and
// a cache-schema version); the value is an opaque payload the owner
// serialises. Because the simulator is a pure function of its inputs, a
// hit may replace the whole computation — the BuildKit-LLB idea applied
// to sweep campaigns that revisit configurations.
//
// Trust model. Cached bytes are never trusted on faith:
//
//   - the on-disk backend wraps every entry in a CTGCACH envelope with
//     the snapshot package's temp-file-plus-rename write discipline and
//     verifies magic, format version, key binding, a payload digest, and
//     an envelope self-digest on every Get — a tampered, torn, or
//     swapped file is rejected with ErrCorrupt, never decoded into
//     results;
//   - an entry written under an older cache-schema version (the
//     simulator's generative model changed) is internally intact but
//     semantically stale and is rejected with ErrStaleSchema;
//   - rejection is always recoverable: callers treat it exactly like a
//     miss (recompute, then Put to overwrite the bad entry) and account
//     for it separately (the fleet's cache_rejects counter).
//
// Concurrency. Both backends are safe for concurrent use. Flight adds
// singleflight deduplication on top: concurrent computations of the same
// key elect one leader, and followers wait for the leader's Put instead
// of simulating the same inputs again.
package resultcache

import (
	"bytes"
	"container/list"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"path/filepath"
	"sync"
	"time"

	"contiguitas/internal/vfs"
)

// Magic identifies an on-disk cache entry; FormatVersion is the envelope
// format revision (distinct from the caller's cache-schema version,
// which versions the *meaning* of payloads, not their framing).
const (
	Magic         = "CTGCACH"
	FormatVersion = 1
)

// Typed lookup outcomes. ErrMiss is the only benign one; the other two
// mean an entry existed and was refused.
var (
	// ErrMiss reports that no entry exists for the key.
	ErrMiss = errors.New("resultcache: miss")
	// ErrCorrupt reports an entry whose envelope failed verification —
	// truncation, corruption, tampering, or a file stored under the
	// wrong key. The entry must not be trusted.
	ErrCorrupt = errors.New("resultcache: entry corrupt")
	// ErrStaleSchema reports an intact entry written under a different
	// cache-schema version: the simulator's generative model changed, so
	// the payload no longer means what the key promises.
	ErrStaleSchema = errors.New("resultcache: entry schema stale")
)

// IsReject reports whether a Get error is a rejection (a present but
// untrustworthy entry) rather than a plain miss. Callers recompute in
// both cases; rejections are additionally counted as integrity events.
func IsReject(err error) bool {
	return errors.Is(err, ErrCorrupt) || errors.Is(err, ErrStaleSchema)
}

// Cache is a content-addressed payload store. Implementations must be
// safe for concurrent use.
type Cache interface {
	// Get returns the payload stored under key: ErrMiss when absent,
	// ErrCorrupt/ErrStaleSchema when present but refused. The returned
	// slice must be treated as read-only.
	Get(key uint64) ([]byte, error)
	// Put stores payload under key, overwriting any existing entry
	// (including a rejected one — recompute heals the cache in place).
	Put(key uint64, payload []byte) error
}

// payloadDigest is the FNV-1a digest of the payload bytes.
func payloadDigest(p []byte) uint64 {
	h := fnv.New64a()
	h.Write(p)
	return h.Sum64()
}

// entry is the CTGCACH on-disk envelope.
type entry struct {
	Magic   string
	Version uint32
	// Schema is the caller's cache-schema version (bumped whenever the
	// generative model behind the payloads changes).
	Schema uint32
	// Key binds the entry to its content address; a file renamed over
	// another key's path fails this check.
	Key uint64
	// PayloadHash digests Payload; SelfHash digests every header field
	// plus PayloadHash, so editing any single field is detected.
	PayloadHash uint64
	SelfHash    uint64
	Payload     []byte
}

// selfDigest computes the envelope self-digest over every field but
// SelfHash itself.
func (e *entry) selfDigest() uint64 {
	h := fnv.New64a()
	h.Write([]byte(e.Magic))
	var buf [8]byte
	for _, v := range []uint64{uint64(e.Version), uint64(e.Schema), e.Key, e.PayloadHash} {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Dir is the durable backend: one CTGCACH file per key inside a
// directory, written atomically and verified on every read. Safe for
// concurrent use by any number of processes — atomic renames make
// concurrent Puts last-writer-wins, never torn.
type Dir struct {
	dir    string
	schema uint32
}

// NewDir returns a disk cache rooted at dir, accepting only entries
// written under the given cache-schema version.
func NewDir(dir string, schema uint32) *Dir {
	return &Dir{dir: dir, schema: schema}
}

// EntryPath returns the file path an entry for key lives at.
func (d *Dir) EntryPath(key uint64) string {
	return filepath.Join(d.dir, fmt.Sprintf("%016x.ctgcach", key))
}

// Get implements Cache. The read goes through the active FS, so
// injected read faults surface as plain errors and injected bit-rot is
// caught by the envelope digests below.
func (d *Dir) Get(key uint64) ([]byte, error) {
	path := d.EntryPath(key)
	data, err := vfs.Active().ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrMiss
	}
	if err != nil {
		return nil, err
	}
	e := &entry{}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(e); err != nil {
		return nil, fmt.Errorf("%w: decode %s: %v", ErrCorrupt, path, err)
	}
	if e.Magic != Magic {
		return nil, fmt.Errorf("%w: bad magic %q in %s", ErrCorrupt, e.Magic, path)
	}
	if e.Version != FormatVersion {
		return nil, fmt.Errorf("%w: format version %d (support %d) in %s",
			ErrCorrupt, e.Version, FormatVersion, path)
	}
	if got := e.selfDigest(); got != e.SelfHash {
		return nil, fmt.Errorf("%w: recomputed self-digest %016x, recorded %016x in %s",
			ErrCorrupt, got, e.SelfHash, path)
	}
	if e.Key != key {
		return nil, fmt.Errorf("%w: entry for key %016x stored under %016x in %s",
			ErrCorrupt, e.Key, key, path)
	}
	if got := payloadDigest(e.Payload); got != e.PayloadHash {
		return nil, fmt.Errorf("%w: payload digest %016x, recorded %016x in %s",
			ErrCorrupt, got, e.PayloadHash, path)
	}
	if e.Schema != d.schema {
		return nil, fmt.Errorf("%w: entry schema %d, want %d in %s",
			ErrStaleSchema, e.Schema, d.schema, path)
	}
	return e.Payload, nil
}

// Put implements Cache: seal the envelope and write it with the full
// durable-write discipline on the active FS — temp file, file fsync,
// rename into place, directory fsync; without the directory fsync a
// power loss after the rename could silently drop the entry (see
// internal/vfs).
func (d *Dir) Put(key uint64, payload []byte) error {
	e := &entry{
		Magic:       Magic,
		Version:     FormatVersion,
		Schema:      d.schema,
		Key:         key,
		PayloadHash: payloadDigest(payload),
		Payload:     payload,
	}
	e.SelfHash = e.selfDigest()
	return vfs.WriteDurable(vfs.Active(), d.EntryPath(key), func(w io.Writer) error {
		if err := gob.NewEncoder(w).Encode(e); err != nil {
			return fmt.Errorf("resultcache: encode: %w", err)
		}
		return nil
	})
}

// LRU is the in-process backend: a bounded map evicting the
// least-recently-used entry, for sweeps that revisit configurations
// within one process. Entries cannot rot in memory, so Get can only
// miss or hit — the schema version is recorded per entry anyway to keep
// the two backends interchangeable in tests.
type LRU struct {
	mu     sync.Mutex
	cap    int
	schema uint32
	byKey  map[uint64]*list.Element
	order  *list.List // front = most recent
}

type lruEntry struct {
	key     uint64
	schema  uint32
	payload []byte
}

// NewLRU returns an in-memory cache bounded to capacity entries
// (minimum 1).
func NewLRU(capacity int, schema uint32) *LRU {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU{
		cap:    capacity,
		schema: schema,
		byKey:  make(map[uint64]*list.Element),
		order:  list.New(),
	}
}

// Get implements Cache.
func (c *LRU) Get(key uint64) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, ErrMiss
	}
	c.order.MoveToFront(el)
	e := el.Value.(*lruEntry)
	if e.schema != c.schema {
		return nil, fmt.Errorf("%w: entry schema %d, want %d", ErrStaleSchema, e.schema, c.schema)
	}
	return e.payload, nil
}

// Put implements Cache.
func (c *LRU) Put(key uint64, payload []byte) error {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*lruEntry).payload = cp
		el.Value.(*lruEntry).schema = c.schema
		c.order.MoveToFront(el)
		return nil
	}
	c.byKey[key] = c.order.PushFront(&lruEntry{key: key, schema: c.schema, payload: cp})
	for len(c.byKey) > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*lruEntry).key)
	}
	return nil
}

// Len returns the number of live entries.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byKey)
}

// Flight deduplicates concurrent computations of one key: the first
// Join for a key becomes the leader and computes; later Joins become
// followers and wait for the leader's Finish, then re-Get the value the
// leader cached.
//
// Flight is an optimization, never a correctness gate: followers wait
// with a bounded timeout and fall back to computing themselves, so a
// crashed or wedged leader can delay followers but can never deadlock
// them. Leadership is owner-scoped (owner is any comparable value, e.g.
// a campaign pointer): a leader's retry attempt re-Joins as leader
// instead of deadlocking on itself, and Finish only releases entries the
// caller actually leads.
type Flight struct {
	mu    sync.Mutex
	calls map[uint64]*flightCall
}

type flightCall struct {
	owner any
	done  chan struct{}
}

// NewFlight returns an empty dedup group.
func NewFlight() *Flight {
	return &Flight{calls: make(map[uint64]*flightCall)}
}

// Join registers interest in key. leader=true means the caller (or a
// previous attempt of the same owner) owns the computation and must call
// Finish on every exit path. leader=false returns a wait function that
// blocks until the leader finishes or the timeout expires; its return
// reports whether the leader actually finished.
func (f *Flight) Join(key uint64, owner any) (leader bool, wait func(timeout time.Duration) bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.calls[key]
	if !ok {
		f.calls[key] = &flightCall{owner: owner, done: make(chan struct{})}
		return true, nil
	}
	if c.owner == owner {
		return true, nil
	}
	done := c.done
	return false, func(timeout time.Duration) bool {
		if timeout <= 0 {
			<-done
			return true
		}
		t := time.NewTimer(timeout)
		defer t.Stop()
		select {
		case <-done:
			return true
		case <-t.C:
			return false
		}
	}
}

// Finish releases the followers of key. Idempotent, and a no-op unless
// owner is the current leader — so a blanket campaign-end sweep over
// every key an owner may lead is always safe.
func (f *Flight) Finish(key uint64, owner any) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.calls[key]; ok && c.owner == owner {
		close(c.done)
		delete(f.calls, key)
	}
}
