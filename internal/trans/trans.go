// Package trans models address-translation overhead analytically: given a
// workload's footprint, its TLB-miss pressure at 4 KB pages, and the mix
// of page sizes actually backing its memory, it estimates the percentage
// of CPU cycles lost to page walks (the paper's Figure 3) and converts
// overhead deltas into end-to-end performance ratios (Figure 10).
//
// The model's central quantity is the residual-miss factor r(P): the
// fraction of a workload's baseline (4 KB) page-walk cycles that survive
// when memory is backed by pages of size P. It combines TLB reach — a
// TLB with E entries of P-byte pages covers E·P bytes of the footprint,
// shrinking misses as (1-C)^Alpha — with the shorter walk of larger
// pages (fewer levels). Hot-first placement (services back their hottest
// heap with the biggest pages first) is modelled by an access-
// concentration exponent per workload.
//
// The per-workload anchors (page-walk percentages at 4 KB) play the role
// the authors' production perf counters played; the model then predicts
// how those percentages move with contiguity, which is what Figures 3
// and 10 report.
package trans

import (
	"fmt"
	"math"
)

// PageSize identifies a translation granularity.
type PageSize int

const (
	Page4K PageSize = iota
	Page2M
	Page1G
	NumPageSizes
)

// Bytes returns the page size in bytes.
func (p PageSize) Bytes() uint64 {
	switch p {
	case Page4K:
		return 4 << 10
	case Page2M:
		return 2 << 20
	case Page1G:
		return 1 << 30
	}
	panic(fmt.Sprintf("trans: unknown page size %d", p))
}

// String names the page size.
func (p PageSize) String() string {
	switch p {
	case Page4K:
		return "4KB"
	case Page2M:
		return "2MB"
	case Page1G:
		return "1GB"
	}
	return "?"
}

// TLBConfig describes the translation hardware (Table 1: 64-entry L1,
// 1536-entry unified L2, page-walk caches) at the level of abstraction
// the analytic model needs.
type TLBConfig struct {
	// L2Entries is the unified second-level TLB capacity, the reach
	// that matters for multi-gigabyte footprints.
	L2Entries int
	// Alpha shapes how misses fall with coverage: miss ∝ (1-C)^Alpha.
	Alpha float64
	// WalkCycleRatio[p] scales the cost of one page walk at size p
	// relative to a 4 KB walk (3-level vs 4-level vs 2-level walks,
	// page-walk-cache behaviour).
	WalkCycleRatio [NumPageSizes]float64
	// ResidualFloor is the surviving miss fraction even at full
	// coverage (cold misses, context switches, shootdowns).
	ResidualFloor float64
	// InstrResidual2M is the surviving fraction of instruction-side
	// walk cycles under 2 MB code backing. The paper observes 2 MB
	// pages halve Web's instruction page-walk cycles.
	InstrResidual2M float64
}

// DefaultTLB matches the paper's simulated platform.
func DefaultTLB() TLBConfig {
	return TLBConfig{
		L2Entries: 1536,
		Alpha:     1.0,
		WalkCycleRatio: [NumPageSizes]float64{
			Page4K: 1.0,
			Page2M: 0.95,
			Page1G: 0.50,
		},
		ResidualFloor:   0.02,
		InstrResidual2M: 0.50,
	}
}

// Workload captures the translation-relevant behaviour of one service.
// BaseWalkPct values are the page-walk cycle percentages measured with
// 4 KB pages only.
type Workload struct {
	Name string
	// DataFootprint / InstrFootprint are resident bytes touched.
	DataFootprint  uint64
	InstrFootprint uint64
	// BaseWalkPctData / Instr: % of cycles in page walks at 4 KB.
	BaseWalkPctData  float64
	BaseWalkPctInstr float64
	// HotTheta models hot-first placement: backing a fraction f of the
	// footprint with big pages captures f^HotTheta of the accesses
	// (theta < 1 means the hottest data goes first).
	HotTheta float64
}

// Coverage describes what fraction of the data footprint is backed by
// each page size; fractions must sum to <= 1, the rest is 4 KB.
type Coverage struct {
	Frac2M float64
	Frac1G float64
}

// Validate reports an error for inconsistent coverage.
func (c Coverage) Validate() error {
	if c.Frac2M < 0 || c.Frac1G < 0 || c.Frac2M+c.Frac1G > 1+1e-9 {
		return fmt.Errorf("trans: invalid coverage %+v", c)
	}
	return nil
}

// Residual returns the residual-miss factor for data backed by p-sized
// pages against the given footprint.
func (t TLBConfig) Residual(p PageSize, footprint uint64) float64 {
	if p == Page4K {
		return 1
	}
	if footprint == 0 {
		return t.ResidualFloor
	}
	reach := float64(t.L2Entries) * float64(p.Bytes())
	c := reach / float64(footprint)
	if c >= 1 {
		return t.ResidualFloor
	}
	r := math.Pow(1-c, t.Alpha) * t.WalkCycleRatio[p]
	if r < t.ResidualFloor {
		r = t.ResidualFloor
	}
	return r
}

// accessShare converts a footprint fraction into an access fraction
// under hot-first placement.
func accessShare(frac, theta float64) float64 {
	switch {
	case frac <= 0:
		return 0
	case frac >= 1:
		return 1
	}
	if theta <= 0 {
		theta = 1
	}
	return math.Pow(frac, theta)
}

// WalkPct estimates the data and instruction page-walk cycle
// percentages for the workload under the given coverage.
func (t TLBConfig) WalkPct(w Workload, cov Coverage) (data, instr float64) {
	if err := cov.Validate(); err != nil {
		panic(err)
	}
	// The hottest data lands on 1 GB pages first, then 2 MB.
	a1g := accessShare(cov.Frac1G, w.HotTheta)
	a2m := accessShare(cov.Frac1G+cov.Frac2M, w.HotTheta) - a1g
	a4k := 1 - a1g - a2m
	if a4k < 0 {
		a4k = 0
	}
	r2 := t.Residual(Page2M, w.DataFootprint)
	r1 := t.Residual(Page1G, w.DataFootprint)
	data = w.BaseWalkPctData * (a4k + a2m*r2 + a1g*r1)

	// Code rides on 2 MB pages whenever huge pages are available at
	// all; 1 GB pages are not used for text.
	icov := cov.Frac2M + cov.Frac1G
	if icov > 1 {
		icov = 1
	}
	instr = w.BaseWalkPctInstr * ((1 - icov) + icov*t.InstrResidual2M)
	return data, instr
}

// Perf converts a total walk percentage into useful-work throughput.
func Perf(walkPctTotal float64) float64 { return 1 - walkPctTotal/100 }

// RelativePerf returns the speedup of configuration b over a, given
// their total page-walk percentages.
func RelativePerf(walkPctA, walkPctB float64) float64 {
	return Perf(walkPctB) / Perf(walkPctA)
}

// Generation models one hardware generation for the Figure 2 trend:
// memory capacity grows ~8x across five generations while TLB entries
// stay in the low thousands.
type Generation struct {
	Name        string
	MemCapacity uint64
	TLBEntries  int
}

// Generations is the Figure 2 data model (capacities relative to Gen 1's
// 64 GB; TLB entries essentially flat).
var Generations = []Generation{
	{"Gen 1", 64 << 30, 1536},
	{"Gen 2", 128 << 30, 1536},
	{"Gen 3", 256 << 30, 2048},
	{"Gen 4", 384 << 30, 2048},
	{"Gen 5", 512 << 30, 2048},
}

// TLBCoverage returns the fraction of a generation's memory covered by
// its TLB at the given page size.
func (g Generation) TLBCoverage(p PageSize) float64 {
	cov := float64(g.TLBEntries) * float64(p.Bytes()) / float64(g.MemCapacity)
	if cov > 1 {
		return 1
	}
	return cov
}

// RelativeCapacity returns the generation's memory relative to base.
func (g Generation) RelativeCapacity(base Generation) float64 {
	return float64(g.MemCapacity) / float64(base.MemCapacity)
}
