package trans

import (
	"math"
	"testing"
	"testing/quick"
)

const gb = uint64(1) << 30

// webProfile mirrors the paper's Web service anchors from Figure 3:
// ~14% of cycles in data page walks and ~6% in instruction walks at 4 KB.
func webProfile() Workload {
	return Workload{
		Name:             "Web",
		DataFootprint:    48 * gb,
		InstrFootprint:   512 << 20,
		BaseWalkPctData:  14,
		BaseWalkPctInstr: 6,
		HotTheta:         0.5,
	}
}

func TestPageSizeBytes(t *testing.T) {
	if Page4K.Bytes() != 4096 || Page2M.Bytes() != 2<<20 || Page1G.Bytes() != 1<<30 {
		t.Fatal("page size bytes wrong")
	}
	if Page4K.String() != "4KB" || Page2M.String() != "2MB" || Page1G.String() != "1GB" {
		t.Fatal("page size names wrong")
	}
}

func TestResidualMonotoneInPageSize(t *testing.T) {
	tlb := DefaultTLB()
	foot := 48 * gb
	r4 := tlb.Residual(Page4K, foot)
	r2 := tlb.Residual(Page2M, foot)
	r1 := tlb.Residual(Page1G, foot)
	if !(r4 == 1 && r2 < r4 && r1 < r2) {
		t.Fatalf("residuals not monotone: %v %v %v", r4, r2, r1)
	}
}

func TestResidualFloorAtFullCoverage(t *testing.T) {
	tlb := DefaultTLB()
	// 1536 x 1GB covers any footprint below 1.5TB.
	if r := tlb.Residual(Page1G, 64*gb); r != tlb.ResidualFloor {
		t.Fatalf("full-coverage residual = %v, want floor %v", r, tlb.ResidualFloor)
	}
	if r := tlb.Residual(Page2M, 0); r != tlb.ResidualFloor {
		t.Fatal("zero footprint must hit the floor")
	}
}

func TestFigure3WebShape(t *testing.T) {
	tlb := DefaultTLB()
	w := webProfile()

	d4, i4 := tlb.WalkPct(w, Coverage{})
	if d4 != 14 || i4 != 6 {
		t.Fatalf("4K anchors: %v/%v", d4, i4)
	}
	// All-2MB: instruction walks roughly halve; data sees only a small
	// improvement (the paper: "2MB pages offer little improvement for
	// data page walk cycles").
	d2, i2 := tlb.WalkPct(w, Coverage{Frac2M: 1})
	if math.Abs(i2-3) > 0.5 {
		t.Fatalf("2MB instruction walk = %v, want ~3 (halved)", i2)
	}
	if d2 < 11 || d2 >= 14 {
		t.Fatalf("2MB data walk = %v, want small improvement below 14", d2)
	}
	// 2MB + 4GB of 1GB pages: data walks drop substantially
	// (paper: 14% -> 8%).
	frac1g := float64(4*gb) / float64(w.DataFootprint)
	d1, _ := tlb.WalkPct(w, Coverage{Frac2M: 1 - frac1g, Frac1G: frac1g})
	if d1 < 6 || d1 > 10 {
		t.Fatalf("1GB data walk = %v, want ~8", d1)
	}
	if d1 >= d2 {
		t.Fatal("1GB pages must beat 2MB for data")
	}
}

func TestFigure10WebOrdering(t *testing.T) {
	tlb := DefaultTLB()
	w := webProfile()
	total := func(c Coverage) float64 {
		d, i := tlb.WalkPct(w, c)
		return d + i
	}
	// Linux fully fragmented: no huge pages at all.
	full := total(Coverage{})
	// Linux partially fragmented: 14GB of 2MB pages (paper's measurement).
	partial := total(Coverage{Frac2M: float64(14*gb) / float64(w.DataFootprint)})
	// Contiguitas: 20GB of 2MB + 4GB of 1GB.
	cont := total(Coverage{
		Frac2M: float64(20*gb) / float64(w.DataFootprint),
		Frac1G: float64(4*gb) / float64(w.DataFootprint),
	})
	if !(cont < partial && partial < full) {
		t.Fatalf("ordering broken: cont=%v partial=%v full=%v", cont, partial, full)
	}
	// Relative performance: Contiguitas must beat fully-fragmented Linux
	// by a larger factor than partially-fragmented Linux, with gains in
	// the paper's ballpark (a few to ~20 percent).
	gFull := RelativePerf(full, cont)
	gPartial := RelativePerf(partial, cont)
	if gFull <= gPartial {
		t.Fatal("gain over full fragmentation must exceed gain over partial")
	}
	if gFull < 1.05 || gFull > 1.25 {
		t.Fatalf("gain over Linux-full = %v, want 5-25%%", gFull)
	}
	if gPartial < 1.02 || gPartial > 1.15 {
		t.Fatalf("gain over Linux-partial = %v, want 2-15%%", gPartial)
	}
}

func TestOneGBContribution(t *testing.T) {
	tlb := DefaultTLB()
	w := webProfile()
	frac1g := float64(4*gb) / float64(w.DataFootprint)
	with1g := Coverage{Frac2M: 1 - frac1g, Frac1G: frac1g}
	only2m := Coverage{Frac2M: 1}
	dA, iA := tlb.WalkPct(w, with1g)
	dB, iB := tlb.WalkPct(w, only2m)
	gain := RelativePerf(dB+iB, dA+iA)
	// The paper attributes a 7.5% win to 1GB pages.
	if gain < 1.03 || gain > 1.12 {
		t.Fatalf("1GB contribution = %v, want ~1.05-1.08", gain)
	}
}

func TestWalkPctInvalidCoveragePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DefaultTLB().WalkPct(webProfile(), Coverage{Frac2M: 0.8, Frac1G: 0.8})
}

func TestWalkPctMonotoneInCoverage(t *testing.T) {
	tlb := DefaultTLB()
	w := webProfile()
	f := func(a, b uint8) bool {
		c1 := float64(a%101) / 100
		c2 := float64(b%101) / 100
		if c1 > c2 {
			c1, c2 = c2, c1
		}
		d1, i1 := tlb.WalkPct(w, Coverage{Frac2M: c1})
		d2, i2 := tlb.WalkPct(w, Coverage{Frac2M: c2})
		return d2 <= d1+1e-9 && i2 <= i1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPerfHelpers(t *testing.T) {
	if Perf(0) != 1 || Perf(20) != 0.8 {
		t.Fatal("Perf wrong")
	}
	if got := RelativePerf(20, 10); math.Abs(got-0.9/0.8) > 1e-12 {
		t.Fatalf("RelativePerf = %v", got)
	}
}

func TestGenerationsTrend(t *testing.T) {
	if len(Generations) != 5 {
		t.Fatal("five generations expected")
	}
	base := Generations[0]
	// Capacity grows ~8x (Figure 2) while 4KB TLB coverage collapses.
	last := Generations[len(Generations)-1]
	if rc := last.RelativeCapacity(base); rc != 8 {
		t.Fatalf("Gen5 relative capacity = %v, want 8", rc)
	}
	prevCov := math.Inf(1)
	for _, g := range Generations {
		cov := g.TLBCoverage(Page4K)
		if cov > prevCov+1e-15 {
			t.Fatalf("4KB coverage must not grow across generations")
		}
		prevCov = cov
	}
	// 1GB pages keep full coverage even at Gen 5 (paper: "1GB pages do
	// provide sufficient coverage larger than main memory of Gen-5").
	if last.TLBCoverage(Page1G) != 1 {
		t.Fatalf("Gen5 1GB coverage = %v, want clamped 1", last.TLBCoverage(Page1G))
	}
}

func TestAccessShareProperties(t *testing.T) {
	if accessShare(0, 0.5) != 0 || accessShare(1, 0.5) != 1 {
		t.Fatal("bounds wrong")
	}
	// Concentration: theta<1 means small fractions capture outsized
	// access share.
	if accessShare(0.25, 0.5) <= 0.25 {
		t.Fatal("hot-first share must exceed footprint share")
	}
	// theta<=0 falls back to linear.
	if accessShare(0.3, 0) != 0.3 {
		t.Fatal("theta=0 must be linear")
	}
}
