// InjectFS: the fault-injecting FS decorator. Every write, fsync,
// rename, and read crossing consults an armed fault point
// (fault.PointFSWrite/Fsync/Rename/Read); the injector's seeded RNG
// streams make the whole failure schedule a deterministic function of
// the spec, so a chaos run that found a bug is a chaos run that
// reproduces it.
//
// Two failure shapes beyond plain EIO:
//
//   - ENOSPC mode turns write faults into wrapped syscall.ENOSPC — the
//     "disk full" path callers are most tempted to treat as impossible;
//   - bit-rot mode turns read faults into *silent* corruption: the read
//     succeeds and returns data with exactly one deterministically
//     chosen bit flipped. Nothing in the error channel announces it;
//     only digest verification can. This is the adversary the CTGSNAP /
//     CTGSHRD / CTGMANI / CTGCAMP / CTGCACH envelopes exist for.
//
// The injector's virtual clock is bound to the total op count, so
// window triggers (From/Until) express "the disk goes bad between op N
// and op M, then heals" — the script-level scenario behind the
// degraded-mode probe-and-recover gate.
package vfs

import (
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"strings"
	"sync"
	"syscall"

	"contiguitas/internal/fault"
)

// ErrInjected is the base sentinel every injected storage fault wraps;
// errors.Is(err, ErrInjected) distinguishes injected failures from real
// ones in soak logs and tests.
var ErrInjected = fmt.Errorf("vfs: injected storage fault")

// InjectConfig selects the failure shapes of an InjectFS.
type InjectConfig struct {
	// ENOSPC makes write faults wrap syscall.ENOSPC instead of
	// syscall.EIO.
	ENOSPC bool
	// BitRot makes read faults return successfully with one
	// deterministically chosen bit flipped instead of failing.
	BitRot bool
	// PathFilter, when non-empty, restricts injection to operations
	// whose path contains the substring; everything else passes
	// through untouched. This scopes a chaos scenario to one format
	// (e.g. ".bin" hits only the service store's cell/result journal).
	PathFilter string
}

// InjectFS wraps an inner FS with deterministic fault injection. Safe
// for concurrent use (the underlying fault.Injector is not; InjectFS
// serialises crossings).
type InjectFS struct {
	inner FS
	cfg   InjectConfig

	mu  sync.Mutex
	in  *fault.Injector
	ops uint64 // total injectable crossings; doubles as the fault clock
}

// NewInjectFS wraps inner with the armed injector. The injector's
// clock is bound to the InjectFS op count so window triggers work; do
// not share one injector across filesystems.
func NewInjectFS(inner FS, in *fault.Injector, cfg InjectConfig) *InjectFS {
	f := &InjectFS{inner: inner, in: in, cfg: cfg}
	in.SetClock(func() uint64 { return f.ops })
	return f
}

// Injector exposes the underlying injector for accounting (hits/fired
// per point) in reports and tests.
func (f *InjectFS) Injector() *fault.Injector { return f.in }

// Ops returns the total injectable operation crossings so far.
func (f *InjectFS) Ops() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// should records one crossing of point for path and reports whether
// the fault fires.
func (f *InjectFS) should(point, path string) bool {
	if f.cfg.PathFilter != "" && !strings.Contains(path, f.cfg.PathFilter) {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	return f.in.Should(point)
}

// errWrite is the injected write failure (ENOSPC mode honoured).
func (f *InjectFS) errWrite(path string) error {
	if f.cfg.ENOSPC {
		return fmt.Errorf("write %s: %w: %w", path, ErrInjected, syscall.ENOSPC)
	}
	return fmt.Errorf("write %s: %w: %w", path, ErrInjected, syscall.EIO)
}

func errInjected(op, path string) error {
	return fmt.Errorf("%s %s: %w: %w", op, path, ErrInjected, syscall.EIO)
}

// rotBit returns the bit position to flip in a file of n bytes,
// deterministic per path.
func rotBit(path string, n int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(path))
	return h.Sum64() % uint64(n*8)
}

// Rot flips the deterministic rot bit in data (a copy is returned; the
// input is not mutated). Exposed so offline bit-rot in tests and the
// scrub gate corrupt files exactly the way the injected read path does.
func Rot(path string, data []byte) []byte {
	if len(data) == 0 {
		return data
	}
	out := append([]byte(nil), data...)
	bit := rotBit(path, len(out))
	out[bit/8] ^= 1 << (bit % 8)
	return out
}

func (f *InjectFS) Open(path string) (File, error) {
	if f.should(fault.PointFSRead, path) {
		if f.cfg.BitRot {
			// Serve the whole file through an in-memory handle with the
			// rot bit flipped: the reader sees a clean successful read
			// of subtly wrong bytes.
			data, err := f.inner.ReadFile(path)
			if err != nil {
				return nil, err
			}
			return &memFile{name: path, data: Rot(path, data)}, nil
		}
		return nil, errInjected("open", path)
	}
	return f.inner.Open(path)
}

func (f *InjectFS) ReadFile(path string) ([]byte, error) {
	if f.should(fault.PointFSRead, path) {
		if f.cfg.BitRot {
			data, err := f.inner.ReadFile(path)
			if err != nil {
				return nil, err
			}
			return Rot(path, data), nil
		}
		return nil, errInjected("read", path)
	}
	return f.inner.ReadFile(path)
}

func (f *InjectFS) CreateTemp(dir, pattern string) (File, error) {
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injFile{File: file, fs: f}, nil
}

func (f *InjectFS) Rename(oldpath, newpath string) error {
	if f.should(fault.PointFSRename, newpath) {
		return errInjected("rename", newpath)
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *InjectFS) SyncDir(dir string) error {
	if f.should(fault.PointFSFsync, dir) {
		return errInjected("fsync dir", dir)
	}
	return f.inner.SyncDir(dir)
}

func (f *InjectFS) Remove(path string) error                { return f.inner.Remove(path) }
func (f *InjectFS) MkdirAll(p string, m fs.FileMode) error  { return f.inner.MkdirAll(p, m) }
func (f *InjectFS) ReadDir(p string) ([]fs.DirEntry, error) { return f.inner.ReadDir(p) }
func (f *InjectFS) Stat(p string) (fs.FileInfo, error)      { return f.inner.Stat(p) }

// injFile intercepts the write-side crossings of a temp file.
type injFile struct {
	File
	fs *InjectFS
}

func (f *injFile) Write(p []byte) (int, error) {
	if f.fs.should(fault.PointFSWrite, f.Name()) {
		return 0, f.fs.errWrite(f.Name())
	}
	return f.File.Write(p)
}

func (f *injFile) Sync() error {
	if f.fs.should(fault.PointFSFsync, f.Name()) {
		return errInjected("fsync", f.Name())
	}
	return f.File.Sync()
}

// memFile is a read-only in-memory File, used to serve bit-rotted
// contents through the streaming Open path.
type memFile struct {
	name string
	data []byte
	off  int
}

func (m *memFile) Read(p []byte) (int, error) {
	if m.off >= len(m.data) {
		return 0, io.EOF
	}
	n := copy(p, m.data[m.off:])
	m.off += n
	return n, nil
}

func (m *memFile) Write([]byte) (int, error) { return 0, fs.ErrInvalid }
func (m *memFile) Sync() error               { return nil }
func (m *memFile) Close() error              { return nil }
func (m *memFile) Name() string              { return m.name }
