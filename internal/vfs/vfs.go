// Package vfs is the storage plane's seam: a small filesystem
// abstraction every durable-write site in the repository goes through,
// so the deterministic fault injector (internal/fault) can sit under
// the real I/O exactly the way it already sits under the simulated
// hardware. The design follows errorfs-style wrappers (Pebble, CockroachDB):
// a passthrough OS implementation for production and an InjectFS
// decorator that consults armed fault points on every write, fsync,
// rename, and read — including an ENOSPC mode and deterministic bit-rot
// on reads, the two storage failures digest-verified formats must
// survive without panicking or silently trusting rotted bytes.
//
// The package-level default FS (Active/SetDefault) exists because the
// durable-write discipline is invoked from deep inside call chains
// (fleet checkpoint writers, telemetry exporters) whose signatures
// should not all grow an FS parameter; a daemon or test installs an
// InjectFS once at startup and every write site in the process is under
// injection. Production never touches it and pays one atomic load.
package vfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"
)

// File is the handle surface the durable-write discipline needs:
// stream in, fsync, close. Reads go through FS.Open for verification
// paths that stream-decode.
type File interface {
	io.Reader
	io.Writer
	// Sync flushes the file's bytes to stable storage.
	Sync() error
	Close() error
	// Name returns the path the handle was opened or created at.
	Name() string
}

// FS is the filesystem operation set the storage plane uses. Every
// method matches the os package's semantics; implementations must be
// safe for concurrent use.
type FS interface {
	// Open opens path for reading.
	Open(path string) (File, error)
	// CreateTemp creates a new temp file in dir (os.CreateTemp pattern
	// semantics).
	CreateTemp(dir, pattern string) (File, error)
	// ReadFile returns the whole contents of path.
	ReadFile(path string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// MkdirAll creates path and any missing parents.
	MkdirAll(path string, perm fs.FileMode) error
	// ReadDir lists path, sorted by filename.
	ReadDir(path string) ([]fs.DirEntry, error)
	// Stat describes path.
	Stat(path string) (fs.FileInfo, error)
	// SyncDir fsyncs the directory at dir so previously completed
	// renames inside it are durable. Filesystems that cannot fsync a
	// directory handle (EINVAL/ENOTSUP) must be treated as success —
	// the rename is still atomic, the power-loss guarantee was never
	// offered there.
	SyncDir(dir string) error
}

// OS is the passthrough production filesystem.
type OS struct{}

func (OS) Open(path string) (File, error)        { return os.Open(path) }
func (OS) CreateTemp(d, p string) (File, error)  { return os.CreateTemp(d, p) }
func (OS) ReadFile(path string) ([]byte, error)  { return os.ReadFile(path) }
func (OS) Rename(o, n string) error              { return os.Rename(o, n) }
func (OS) Remove(path string) error              { return os.Remove(path) }
func (OS) MkdirAll(p string, m fs.FileMode) error { return os.MkdirAll(p, m) }
func (OS) ReadDir(p string) ([]fs.DirEntry, error) { return os.ReadDir(p) }
func (OS) Stat(p string) (fs.FileInfo, error)    { return os.Stat(p) }

func (OS) SyncDir(dir string) error {
	if dir == "" {
		dir = "."
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil && !errors.Is(serr, syscall.EINVAL) && !errors.Is(serr, syscall.ENOTSUP) {
		return fmt.Errorf("vfs: fsync dir %s: %w", dir, serr)
	}
	return cerr
}

// active is the process-wide default FS. It starts as the passthrough
// OS and is swapped by chaos harnesses and tests.
var active atomic.Pointer[FS]

func init() {
	var f FS = OS{}
	active.Store(&f)
}

// Active returns the process-wide default FS.
func Active() FS { return *active.Load() }

// SetDefault installs f as the process-wide default FS and returns a
// restore function reinstating the previous one — shaped for
// `defer vfs.SetDefault(inj)()` in tests.
func SetDefault(f FS) (restore func()) {
	prev := active.Swap(&f)
	return func() { active.Store(prev) }
}

// WriteDurable streams fill into path with the full crash-durability
// discipline on fsys: create the parent directory, write a
// same-directory temp file, fsync it, rename it over path, fsync the
// parent directory. A failure at any step removes the temp file and
// leaves the previous complete version of path (or nothing) in place —
// never a torn target.
func WriteDurable(fsys FS, path string, fill func(io.Writer) error) error {
	dir := filepath.Dir(path)
	if dir != "." && dir != "" {
		if err := fsys.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := fill(f); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(dir)
}

// WriteFileDurable writes data to path with the durable-write
// discipline on fsys.
func WriteFileDurable(fsys FS, path string, data []byte) error {
	return WriteDurable(fsys, path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
