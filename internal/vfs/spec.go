// The chaos spec mini-language: one flag value arms a whole
// storage-fault scenario, shared verbatim between contigd's -chaos-fs
// flag, the disk-chaos CI gate, and tests, so a failing schedule is
// reproducible from the log line that announced it.
//
//	seed=7,write=0.05,fsync=0.05,rename=0.05      probabilistic faults
//	fsync_every=3                                 every 3rd fsync fails
//	from=100,until=400                            faults only between op
//	                                              100 and 400 (the disk
//	                                              goes bad, then heals)
//	enospc                                        write faults are ENOSPC
//	rot                                           read faults silently
//	                                              flip one bit
//	path=.bin                                     only paths containing
//	                                              ".bin" are injectable
package vfs

import (
	"fmt"
	"strconv"
	"strings"

	"contiguitas/internal/fault"
)

// specPoints maps spec keys to fault points.
var specPoints = map[string]string{
	"write":  fault.PointFSWrite,
	"fsync":  fault.PointFSFsync,
	"rename": fault.PointFSRename,
	"read":   fault.PointFSRead,
}

// ParseInjectSpec parses a chaos spec into an armed injector and its
// config. An empty spec is an error — callers gate on the flag being
// set.
func ParseInjectSpec(spec string) (*fault.Injector, InjectConfig, error) {
	var cfg InjectConfig
	seed := uint64(1)
	var from, until uint64
	trig := map[string]*fault.Trigger{}
	point := func(key string) *fault.Trigger {
		t, ok := trig[key]
		if !ok {
			t = &fault.Trigger{}
			trig[key] = t
		}
		return t
	}

	bad := func(tok string, err error) (*fault.Injector, InjectConfig, error) {
		return nil, InjectConfig{}, fmt.Errorf("vfs: bad chaos spec token %q: %v", tok, err)
	}
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key, val, hasVal := strings.Cut(tok, "=")
		switch {
		case key == "enospc" && !hasVal:
			cfg.ENOSPC = true
		case key == "rot" && !hasVal:
			cfg.BitRot = true
		case key == "path":
			cfg.PathFilter = val
		case key == "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return bad(tok, err)
			}
			seed = n
		case key == "from", key == "until":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return bad(tok, err)
			}
			if key == "from" {
				from = n
			} else {
				until = n
			}
		case specPoints[key] != "":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return bad(tok, fmt.Errorf("probability in [0,1] required"))
			}
			point(key).Prob = p
		case strings.HasSuffix(key, "_every") && specPoints[strings.TrimSuffix(key, "_every")] != "":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return bad(tok, err)
			}
			point(strings.TrimSuffix(key, "_every")).EveryN = n
		default:
			return bad(tok, fmt.Errorf("unknown key"))
		}
	}
	if len(trig) == 0 {
		return nil, InjectConfig{}, fmt.Errorf("vfs: chaos spec %q arms no fault point (want write=/fsync=/rename=/read= or *_every=)", spec)
	}
	in := fault.New(seed)
	for key, t := range trig {
		t.From, t.Until = from, until
		in.Arm(specPoints[key], *t)
	}
	return in, cfg, nil
}

// NewInjectFromSpec builds an InjectFS over inner from a chaos spec.
func NewInjectFromSpec(inner FS, spec string) (*InjectFS, error) {
	in, cfg, err := ParseInjectSpec(spec)
	if err != nil {
		return nil, err
	}
	return NewInjectFS(inner, in, cfg), nil
}
