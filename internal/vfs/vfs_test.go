package vfs

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"contiguitas/internal/fault"
)

func TestOSWriteFileDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "target.bin")
	want := []byte("durable payload")
	if err := WriteFileDurable(OS{}, path, want); err != nil {
		t.Fatal(err)
	}
	got, err := OS{}.ReadFile(path)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	// No stray temp files after a clean write.
	ents, _ := os.ReadDir(filepath.Dir(path))
	if len(ents) != 1 {
		t.Fatalf("dir has %d entries after durable write, want 1", len(ents))
	}
}

func TestWriteDurableFailureLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "target.bin")
	if err := WriteFileDurable(OS{}, path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	err := WriteDurable(OS{}, path, func(io.Writer) error {
		return errors.New("fill failed")
	})
	if err == nil {
		t.Fatal("fill failure not propagated")
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("dir has %d entries after failed write, want 1 (no temp litter)", len(ents))
	}
	got, _ := OS{}.ReadFile(path)
	if string(got) != "v1" {
		t.Fatalf("previous version clobbered: %q", got)
	}
}

// newInject arms a spec over a temp-dir-backed OS and fails the test on
// parse errors.
func newInject(t *testing.T, spec string) *InjectFS {
	t.Helper()
	f, err := NewInjectFromSpec(OS{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestInjectWriteENOSPC(t *testing.T) {
	f := newInject(t, "seed=3,write_every=1,enospc")
	err := WriteFileDurable(f, filepath.Join(t.TempDir(), "x.bin"), []byte("data"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want wrapped ENOSPC", err)
	}
}

func TestInjectFsyncAndRename(t *testing.T) {
	dir := t.TempDir()
	f := newInject(t, "fsync_every=1")
	if err := WriteFileDurable(f, filepath.Join(dir, "a.bin"), []byte("d")); !errors.Is(err, ErrInjected) {
		t.Fatalf("fsync fault: err = %v, want ErrInjected", err)
	}
	f = newInject(t, "rename_every=1")
	err := WriteFileDurable(f, filepath.Join(dir, "b.bin"), []byte("d"))
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("rename fault: err = %v, want ErrInjected+EIO", err)
	}
	// The failed rename removed its temp file and never published b.bin.
	if _, err := os.Stat(filepath.Join(dir, "b.bin")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("b.bin exists after failed rename: %v", err)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp litter after injected rename failure: %s", e.Name())
		}
	}
}

func TestInjectReadFault(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.bin")
	if err := WriteFileDurable(OS{}, path, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	f := newInject(t, "read_every=1")
	if _, err := f.ReadFile(path); !errors.Is(err, ErrInjected) {
		t.Fatalf("ReadFile = %v, want ErrInjected", err)
	}
	if _, err := f.Open(path); !errors.Is(err, ErrInjected) {
		t.Fatalf("Open = %v, want ErrInjected", err)
	}
}

func TestInjectBitRotSilentAndDeterministic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rot.bin")
	clean := []byte("integrity-protected payload bytes")
	if err := WriteFileDurable(OS{}, path, clean); err != nil {
		t.Fatal(err)
	}

	f := newInject(t, "read_every=1,rot")
	got, err := f.ReadFile(path)
	if err != nil {
		t.Fatalf("bit-rot read must succeed silently, got %v", err)
	}
	if bytes.Equal(got, clean) {
		t.Fatal("bit-rot read returned clean bytes")
	}
	diff := 0
	for i := range got {
		for b := 0; b < 8; b++ {
			if (got[i]^clean[i])&(1<<b) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("bit-rot flipped %d bits, want exactly 1", diff)
	}
	// Deterministic: a second rotted read and the streaming Open path
	// return the same corrupted bytes.
	again, err := f.ReadFile(path)
	if err != nil || !bytes.Equal(again, got) {
		t.Fatalf("rot not deterministic: %v", err)
	}
	h, err := f.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	streamed, _ := io.ReadAll(h)
	h.Close()
	if !bytes.Equal(streamed, got) {
		t.Fatal("Open path rot differs from ReadFile path rot")
	}
	// On-disk file untouched: rot is a read-side phenomenon.
	disk, _ := os.ReadFile(path)
	if !bytes.Equal(disk, clean) {
		t.Fatal("bit-rot mutated the file on disk")
	}
}

func TestInjectPathFilter(t *testing.T) {
	dir := t.TempDir()
	f := newInject(t, "write_every=1,path=.bin")
	if err := WriteFileDurable(f, filepath.Join(dir, "hit.bin"), []byte("d")); !errors.Is(err, ErrInjected) {
		t.Fatalf("matching path: err = %v, want ErrInjected", err)
	}
	if err := WriteFileDurable(f, filepath.Join(dir, "miss.txt"), []byte("d")); err != nil {
		t.Fatalf("non-matching path injected: %v", err)
	}
}

func TestInjectDeterministicSchedule(t *testing.T) {
	run := func() []bool {
		f := newInject(t, "seed=42,write=0.5")
		var fires []bool
		for i := 0; i < 64; i++ {
			fires = append(fires, f.should(fault.PointFSWrite, "p"))
		}
		return fires
	}
	a, b := run(), c2b(run())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at crossing %d", i)
		}
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("degenerate schedule: %d/%d fired", fired, len(a))
	}
}

func c2b(b []bool) []bool { return b }

func TestInjectWindowHeals(t *testing.T) {
	// Faults fire only between op 3 and op 6; before and after, writes
	// succeed — the probe-and-recover scenario.
	f := newInject(t, "write=1,from=3,until=6")
	dir := t.TempDir()
	write := func() error {
		return WriteFileDurable(f, filepath.Join(dir, "w.bin"), []byte("d"))
	}
	if err := write(); err != nil { // ops 1..4 (write hits op 2 area)
		// The first durable write may already cross into the window
		// depending on op layout; tolerate either, the loop below is
		// the real assertion.
		if !errors.Is(err, ErrInjected) {
			t.Fatal(err)
		}
	}
	sawFail := false
	var lastErr error
	for i := 0; i < 10; i++ {
		lastErr = write()
		if lastErr != nil {
			if !errors.Is(lastErr, ErrInjected) {
				t.Fatal(lastErr)
			}
			sawFail = true
		}
	}
	if !sawFail {
		t.Fatal("window never fired")
	}
	if lastErr != nil {
		t.Fatalf("writes still failing after the window closed: %v", lastErr)
	}
}

func TestParseInjectSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"",                 // arms nothing
		"seed=7",           // arms nothing
		"bogus=1",          // unknown key
		"write=2",          // probability out of range
		"write_every=abc",  // not a number
		"teleport_every=2", // unknown point
	} {
		if _, _, err := ParseInjectSpec(spec); err == nil {
			t.Errorf("ParseInjectSpec(%q) accepted", spec)
		}
	}
	in, cfg, err := ParseInjectSpec("seed=9,write=0.25,fsync_every=3,read=0.1,rot,enospc,path=cell-")
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.BitRot || !cfg.ENOSPC || cfg.PathFilter != "cell-" {
		t.Fatalf("cfg = %+v", cfg)
	}
	if in == nil {
		t.Fatal("nil injector")
	}
}

func TestSetDefaultRestore(t *testing.T) {
	if _, ok := Active().(OS); !ok {
		t.Fatalf("default FS is %T, want OS", Active())
	}
	inj := newInject(t, "write=0.1")
	restore := SetDefault(inj)
	if Active() != FS(inj) {
		t.Fatal("SetDefault did not install")
	}
	restore()
	if _, ok := Active().(OS); !ok {
		t.Fatalf("restore left %T", Active())
	}
}

func TestRotHelperMatchesReadPath(t *testing.T) {
	data := []byte("0123456789abcdef")
	r1 := Rot("some/path", data)
	r2 := Rot("some/path", data)
	if !bytes.Equal(r1, r2) {
		t.Fatal("Rot not deterministic")
	}
	if bytes.Equal(r1, data) {
		t.Fatal("Rot did not flip a bit")
	}
	if !bytes.Equal(data, []byte("0123456789abcdef")) {
		t.Fatal("Rot mutated its input")
	}
}
