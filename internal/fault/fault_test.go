package fault

import "testing"

func firePattern(in *Injector, name string, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = in.Should(name)
	}
	return out
}

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	if in.Should(PointHWMover) {
		t.Fatal("nil injector fired")
	}
	if in.Hits(PointHWMover) != 0 || in.Fired(PointHWMover) != 0 {
		t.Fatal("nil injector has accounting")
	}
	in.Disarm(PointHWMover)
	in.DisarmAll()
	in.SetClock(nil)
	if in.Snapshot() != nil || in.TotalFired() != 0 {
		t.Fatal("nil injector has state")
	}
}

func TestUnarmedPointNeverFires(t *testing.T) {
	in := New(1)
	for i := 0; i < 100; i++ {
		if in.Should("nonexistent") {
			t.Fatal("unarmed point fired")
		}
	}
	if in.Hits("nonexistent") != 0 {
		t.Fatal("unarmed point counted hits")
	}
}

func TestProbDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	a.Arm(PointHWMover, Trigger{Prob: 0.3})
	b.Arm(PointHWMover, Trigger{Prob: 0.3})
	pa := firePattern(a, PointHWMover, 1000)
	pb := firePattern(b, PointHWMover, 1000)
	fired := 0
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("schedules diverge at hit %d", i)
		}
		if pa[i] {
			fired++
		}
	}
	if fired < 200 || fired > 400 {
		t.Fatalf("p=0.3 fired %d/1000 times", fired)
	}
	if a.Hits(PointHWMover) != 1000 || a.Fired(PointHWMover) != uint64(fired) {
		t.Fatalf("accounting: hits=%d fired=%d", a.Hits(PointHWMover), a.Fired(PointHWMover))
	}
}

func TestSeedsSeparateSchedules(t *testing.T) {
	a, b := New(1), New(2)
	a.Arm(PointHWMover, Trigger{Prob: 0.5})
	b.Arm(PointHWMover, Trigger{Prob: 0.5})
	pa := firePattern(a, PointHWMover, 256)
	pb := firePattern(b, PointHWMover, 256)
	same := true
	for i := range pa {
		if pa[i] != pb[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// Arming a second point must not perturb the first point's schedule:
// streams are per-point, keyed by name.
func TestPointStreamsIndependent(t *testing.T) {
	solo := New(11)
	solo.Arm(PointSWMigrate, Trigger{Prob: 0.4})
	want := firePattern(solo, PointSWMigrate, 500)

	both := New(11)
	both.Arm(PointSWMigrate, Trigger{Prob: 0.4})
	both.Arm(PointCompactCarve, Trigger{Prob: 0.9})
	for i := 0; i < 500; i++ {
		// Interleave crossings of the other point.
		both.Should(PointCompactCarve)
		if got := both.Should(PointSWMigrate); got != want[i] {
			t.Fatalf("interleaved crossings changed the schedule at hit %d", i)
		}
	}
}

func TestEveryN(t *testing.T) {
	in := New(3)
	in.Arm(PointCompactCarve, Trigger{EveryN: 5})
	for i := 1; i <= 25; i++ {
		got := in.Should(PointCompactCarve)
		if want := i%5 == 0; got != want {
			t.Fatalf("hit %d: fired=%v", i, got)
		}
	}
}

func TestOnHits(t *testing.T) {
	in := New(3)
	in.Arm(PointSWMigrate, Trigger{OnHits: []uint64{2, 3}})
	want := []bool{false, true, true, false, false}
	for i, w := range want {
		if got := in.Should(PointSWMigrate); got != w {
			t.Fatalf("hit %d: fired=%v, want %v", i+1, got, w)
		}
	}
}

func TestClockWindow(t *testing.T) {
	in := New(9)
	now := uint64(0)
	in.SetClock(func() uint64 { return now })
	in.Arm(PointRegionResize, Trigger{EveryN: 1, From: 10, Until: 20})
	for ; now < 30; now++ {
		got := in.Should(PointRegionResize)
		if want := now >= 10 && now < 20; got != want {
			t.Fatalf("clock %d: fired=%v, want %v", now, got, want)
		}
	}
}

// The in-window probability schedule must not depend on where the window
// starts: one draw is consumed per hit whether or not the window is open.
func TestWindowPreservesDrawSequence(t *testing.T) {
	open := New(5)
	open.Arm(PointHWMover, Trigger{Prob: 0.5})
	all := firePattern(open, PointHWMover, 100)

	now := uint64(0)
	windowed := New(5)
	windowed.SetClock(func() uint64 { return now })
	windowed.Arm(PointHWMover, Trigger{Prob: 0.5, From: 50, Until: 0})
	for i := 0; i < 100; i++ {
		now = uint64(i)
		got := windowed.Should(PointHWMover)
		if i < 50 && got {
			t.Fatalf("fired before window at hit %d", i)
		}
		if i >= 50 && got != all[i] {
			t.Fatalf("window shifted the draw sequence at hit %d", i)
		}
	}
}

func TestDisarmKeepsAccounting(t *testing.T) {
	in := New(4)
	in.Arm(PointHWMover, Trigger{EveryN: 2})
	for i := 0; i < 10; i++ {
		in.Should(PointHWMover)
	}
	in.Disarm(PointHWMover)
	if in.Should(PointHWMover) {
		t.Fatal("disarmed point fired")
	}
	if in.Hits(PointHWMover) != 10 || in.Fired(PointHWMover) != 5 {
		t.Fatalf("retired accounting lost: hits=%d fired=%d",
			in.Hits(PointHWMover), in.Fired(PointHWMover))
	}
	// Re-arm and cross again: totals accumulate across arm generations.
	in.Arm(PointHWMover, Trigger{EveryN: 1})
	in.Should(PointHWMover)
	if in.Hits(PointHWMover) != 11 || in.Fired(PointHWMover) != 6 {
		t.Fatalf("re-armed accounting wrong: hits=%d fired=%d",
			in.Hits(PointHWMover), in.Fired(PointHWMover))
	}
	snap := in.Snapshot()
	if len(snap) != 1 || snap[0].Hits != 11 || snap[0].Fired != 6 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if in.TotalFired() != 6 {
		t.Fatalf("TotalFired = %d", in.TotalFired())
	}
}

func TestSnapshotSorted(t *testing.T) {
	in := New(1)
	in.Arm("zzz", Trigger{})
	in.Arm("aaa", Trigger{})
	in.Arm("mmm", Trigger{})
	snap := in.Snapshot()
	if len(snap) != 3 || snap[0].Name != "aaa" || snap[1].Name != "mmm" || snap[2].Name != "zzz" {
		t.Fatalf("snapshot not sorted: %+v", snap)
	}
}
