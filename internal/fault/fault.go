// Package fault provides deterministic, seedable fault injection for
// the simulators. Code under test declares named fault points and asks
// the injector whether the fault should fire at each crossing; tests and
// the chaos driver arm points with triggers — per-hit probability,
// every-Nth-hit, specific hit numbers, or a virtual-clock window.
//
// Determinism is the design constraint: every armed point draws from its
// own RNG stream (derived from the injector seed and the point name), so
// the firing pattern of one point never depends on how often other
// points are crossed, and the same seed reproduces the same fault
// schedule bit-for-bit. Unarmed points never draw and cost one map
// lookup.
//
// A nil *Injector is valid and never fires, so production code can keep
// an injector field without nil checks at every point.
package fault

import (
	"fmt"
	"sort"
	"strings"

	"contiguitas/internal/stats"
)

// Well-known fault points wired into the kernel simulator. Points are
// plain strings, so packages may also declare their own.
const (
	// PointHWMover fails a Contiguitas-HW assisted migration (the copy
	// engine aborts: in-flight DMA conflict, metadata-table overflow).
	PointHWMover = "hw.mover.migrate"
	// PointSWMigrate fails a software page migration (racing access
	// re-faults the page mid-copy and the migration is aborted).
	PointSWMigrate = "kernel.migrate.sw"
	// PointCompactCarve fails a compaction carve (an allocation landed
	// in the target range between the scan and the carve).
	PointCompactCarve = "kernel.compact.carve"
	// PointRegionResize aborts a resizer evaluation before it moves the
	// boundary (resizer thread preempted / lock contention).
	PointRegionResize = "kernel.region.resize"
	// PointReclaimProgress makes a direct-reclaim pass reclaim nothing
	// (every cache page is being written back / re-referenced), forcing
	// the allocation ladder to escalate past the reclaim rung.
	PointReclaimProgress = "kernel.reclaim.progress"
	// PointFleetShardCrash kills a supervised fleet shard at a server
	// boundary (the whole shard worker dies mid-campaign and must be
	// restarted from its last checkpoint).
	PointFleetShardCrash = "fleet.shard.crash"
	// PointFleetCheckpointWrite fails a fleet shard's checkpoint write
	// (disk full, torn I/O); the shard treats it as fatal and the
	// supervisor retries the attempt from the last good checkpoint.
	PointFleetCheckpointWrite = "fleet.checkpoint.write"
	// PointFSWrite fails a write(2) into a temp file inside the
	// durable-write discipline (short write; ENOSPC when the injecting
	// filesystem is in ENOSPC mode).
	PointFSWrite = "vfs.fs.write"
	// PointFSFsync fails an fsync — of a temp file before its rename, or
	// of a parent directory after one (the failure mode behind
	// "fsyncgate": a write acknowledged but never durable).
	PointFSFsync = "vfs.fs.fsync"
	// PointFSRename fails the atomic rename that publishes a durable
	// file (EIO from the journal, torn directory update).
	PointFSRename = "vfs.fs.rename"
	// PointFSRead fails — or, in bit-rot mode, silently corrupts — a
	// read of a stored file, modelling latent sector errors and media
	// rot that only integrity verification can catch.
	PointFSRead = "vfs.fs.read"
)

// Trigger describes when an armed point fires. Conditions compose: the
// point must be inside the clock window (when one is set), and then any
// of Prob / EveryN / OnHits may fire it.
type Trigger struct {
	// Prob fires with this per-hit probability (0 disables).
	Prob float64
	// EveryN fires on every Nth hit of the point (0 disables).
	EveryN uint64
	// OnHits fires on these exact hit numbers (1-based).
	OnHits []uint64
	// From/Until restrict firing to clock values in [From, Until);
	// Until == 0 means unbounded. The clock is whatever the owner
	// registered with SetClock (the kernel registers its tick).
	From, Until uint64
}

// PointStats reports one point's lifetime accounting.
type PointStats struct {
	Name  string
	Hits  uint64 // times the point was crossed while armed
	Fired uint64 // times the fault fired
}

type point struct {
	trig  Trigger
	rng   *stats.RNG
	hits  uint64
	fired uint64
}

// Injector is a registry of armed fault points. It is not safe for
// concurrent use, matching the single-threaded simulators.
type Injector struct {
	seed   uint64
	clock  func() uint64
	points map[string]*point
	// retired keeps accounting for disarmed points so reports survive
	// Disarm.
	retired map[string]PointStats
}

// New returns an injector whose fault schedule is fully determined by
// seed.
func New(seed uint64) *Injector {
	return &Injector{
		seed:    seed,
		points:  make(map[string]*point),
		retired: make(map[string]PointStats),
	}
}

// SetClock registers the virtual-time source used by window triggers.
func (in *Injector) SetClock(fn func() uint64) {
	if in != nil {
		in.clock = fn
	}
}

// Arm registers (or replaces) the trigger for a point. Hit accounting
// restarts from zero; the point's RNG stream depends only on the
// injector seed and the point name, so arming order is irrelevant.
func (in *Injector) Arm(name string, t Trigger) {
	in.points[name] = &point{
		trig: t,
		rng:  stats.NewRNG(in.seed ^ hashName(name)),
	}
}

// Disarm removes a point; its accounting is preserved for Snapshot.
func (in *Injector) Disarm(name string) {
	if in == nil {
		return
	}
	if p, ok := in.points[name]; ok {
		st := in.retired[name]
		st.Name = name
		st.Hits += p.hits
		st.Fired += p.fired
		in.retired[name] = st
		delete(in.points, name)
	}
}

// DisarmAll disarms every point.
func (in *Injector) DisarmAll() {
	if in == nil {
		return
	}
	for name := range in.points {
		in.Disarm(name)
	}
}

// Should reports whether the named fault fires at this crossing. Safe on
// a nil injector (never fires) and on unarmed points.
func (in *Injector) Should(name string) bool {
	if in == nil {
		return false
	}
	p, ok := in.points[name]
	if !ok {
		return false
	}
	p.hits++
	t := &p.trig
	if t.From != 0 || t.Until != 0 {
		var now uint64
		if in.clock != nil {
			now = in.clock()
		}
		if now < t.From || (t.Until != 0 && now >= t.Until) {
			// Consume the draw so the sequence stays a pure function
			// of the hit number regardless of window placement.
			if t.Prob > 0 {
				p.rng.Float64()
			}
			return false
		}
	}
	fire := false
	if t.Prob > 0 && p.rng.Float64() < t.Prob {
		fire = true
	}
	if t.EveryN > 0 && p.hits%t.EveryN == 0 {
		fire = true
	}
	for _, h := range t.OnHits {
		if p.hits == h {
			fire = true
			break
		}
	}
	if fire {
		p.fired++
	}
	return fire
}

// Hits returns how many times the point was crossed while armed
// (including any disarmed accounting).
func (in *Injector) Hits(name string) uint64 {
	if in == nil {
		return 0
	}
	n := in.retired[name].Hits
	if p, ok := in.points[name]; ok {
		n += p.hits
	}
	return n
}

// Fired returns how many times the point's fault fired.
func (in *Injector) Fired(name string) uint64 {
	if in == nil {
		return 0
	}
	n := in.retired[name].Fired
	if p, ok := in.points[name]; ok {
		n += p.fired
	}
	return n
}

// TotalFired sums firings across all points, armed and retired.
func (in *Injector) TotalFired() uint64 {
	if in == nil {
		return 0
	}
	var n uint64
	for _, st := range in.Snapshot() {
		n += st.Fired
	}
	return n
}

// Snapshot returns per-point accounting sorted by name, merging armed
// and retired points, for deterministic reporting.
func (in *Injector) Snapshot() []PointStats {
	if in == nil {
		return nil
	}
	merged := make(map[string]PointStats, len(in.points)+len(in.retired))
	for name, st := range in.retired {
		merged[name] = st
	}
	for name, p := range in.points {
		st := merged[name]
		st.Name = name
		st.Hits += p.hits
		st.Fired += p.fired
		merged[name] = st
	}
	out := make([]PointStats, 0, len(merged))
	for _, st := range merged {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// String renders the snapshot as "name hits/fired" pairs.
func (in *Injector) String() string {
	var b strings.Builder
	for i, st := range in.Snapshot() {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d/%d", st.Name, st.Fired, st.Hits)
	}
	return b.String()
}

// PointState is the full serializable state of one armed fault point:
// its trigger, its private RNG stream position, and its accounting.
type PointState struct {
	Name   string
	Trig   Trigger
	S0, S1 uint64 // RNG stream position
	Hits   uint64
	Fired  uint64
}

// InjectorState is the full serializable state of an Injector. Points
// and Retired are sorted by name so the encoding is deterministic. The
// clock is configuration, not state: the restoring owner re-binds it
// with SetClock (the kernel does this in New).
type InjectorState struct {
	Seed    uint64
	Points  []PointState
	Retired []PointStats
}

// State captures the injector's full state for checkpointing. Nil
// injectors export nil, and FromState(nil) restores nil, so a faultless
// run round-trips without special cases.
func (in *Injector) State() *InjectorState {
	if in == nil {
		return nil
	}
	st := &InjectorState{Seed: in.seed}
	names := make([]string, 0, len(in.points))
	for name := range in.points {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := in.points[name]
		s0, s1 := p.rng.State()
		st.Points = append(st.Points, PointState{
			Name: name, Trig: p.trig, S0: s0, S1: s1,
			Hits: p.hits, Fired: p.fired,
		})
	}
	rnames := make([]string, 0, len(in.retired))
	for name := range in.retired {
		rnames = append(rnames, name)
	}
	sort.Strings(rnames)
	for _, name := range rnames {
		st.Retired = append(st.Retired, in.retired[name])
	}
	return st
}

// FromState rebuilds an injector from captured state, resuming every
// armed point's RNG stream exactly where it left off. The caller must
// re-bind the clock with SetClock before window triggers can see time.
func FromState(st *InjectorState) *Injector {
	if st == nil {
		return nil
	}
	in := New(st.Seed)
	for _, ps := range st.Points {
		p := &point{trig: ps.Trig, hits: ps.Hits, fired: ps.Fired}
		p.rng = stats.NewRNG(0)
		p.rng.SetState(ps.S0, ps.S1)
		in.points[ps.Name] = p
	}
	for _, rs := range st.Retired {
		in.retired[rs.Name] = rs
	}
	return in
}

// hashName is FNV-1a, folding the point name into the RNG seed.
func hashName(name string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001b3
	}
	return h
}
