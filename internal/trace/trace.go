// Package trace records and replays allocation traces: the sequence of
// allocation, free, pin and tick events a workload issues against the
// simulated kernel. Traces make experiments portable — a fleet-sampled
// allocation pattern can be captured once and replayed bit-identically
// against both memory-management designs — and serve as the golden
// inputs for regression tests.
//
// The format is a compact binary stream (little-endian, fixed-width
// records) with a versioned header.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"contiguitas/internal/kernel"
	"contiguitas/internal/mem"
)

// Kind discriminates events.
type Kind uint8

const (
	// KindAlloc allocates a block; ID names it for later events.
	KindAlloc Kind = iota
	// KindAllocCache allocates a reclaimable (page-cache) block.
	KindAllocCache
	// KindFree releases a block by ID.
	KindFree
	// KindPin pins a block by ID.
	KindPin
	// KindUnpin unpins a block by ID.
	KindUnpin
	// KindTick ends a simulation tick.
	KindTick
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindAlloc:
		return "alloc"
	case KindAllocCache:
		return "alloc-cache"
	case KindFree:
		return "free"
	case KindPin:
		return "pin"
	case KindUnpin:
		return "unpin"
	case KindTick:
		return "tick"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one trace record.
type Event struct {
	Kind  Kind
	ID    uint64
	Order uint8
	MT    mem.MigrateType
	Src   mem.Source
}

const (
	magic   = uint32(0xC0471AB5)
	version = uint16(1)
	// recordSize is the on-disk size of one event.
	recordSize = 1 + 8 + 1 + 1 + 1
)

// Writer streams events to an io.Writer.
type Writer struct {
	w      *bufio.Writer
	events uint64
}

// NewWriter writes the header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	var hdr [6]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint16(hdr[4:], version)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one event.
func (w *Writer) Write(e Event) error {
	var rec [recordSize]byte
	rec[0] = byte(e.Kind)
	binary.LittleEndian.PutUint64(rec[1:], e.ID)
	rec[9] = e.Order
	rec[10] = byte(e.MT)
	rec[11] = byte(e.Src)
	if _, err := w.w.Write(rec[:]); err != nil {
		return err
	}
	w.events++
	return nil
}

// Events returns the number written so far.
func (w *Writer) Events() uint64 { return w.events }

// Flush drains the buffer.
func (w *Writer) Flush() error { return w.w.Flush() }

// ErrBadHeader reports a stream that is not a trace.
var ErrBadHeader = errors.New("trace: bad header")

// Reader streams events from an io.Reader.
type Reader struct {
	r *bufio.Reader
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [6]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magic {
		return nil, ErrBadHeader
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadHeader, v)
	}
	return &Reader{r: br}, nil
}

// Read returns the next event or io.EOF.
func (r *Reader) Read() (Event, error) {
	var rec [recordSize]byte
	if _, err := io.ReadFull(r.r, rec[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Event{}, fmt.Errorf("trace: truncated record: %w", err)
		}
		return Event{}, err
	}
	return Event{
		Kind:  Kind(rec[0]),
		ID:    binary.LittleEndian.Uint64(rec[1:]),
		Order: rec[9],
		MT:    mem.MigrateType(rec[10]),
		Src:   mem.Source(rec[11]),
	}, nil
}

// Recorder is a kernel.EventSink that mirrors every public kernel
// operation into a trace. Attach it with Attach; from then on any
// driver of the kernel — including the workload runner — is recorded
// transparently.
type Recorder struct {
	W      *Writer
	nextID uint64
	ids    map[*kernel.Page]uint64
	err    error
}

// Attach creates a Recorder writing to w and registers it as k's event
// sink. Detach with k.SetEventSink(nil).
func Attach(k *kernel.Kernel, w *Writer) *Recorder {
	r := &Recorder{W: w, ids: make(map[*kernel.Page]uint64)}
	k.SetEventSink(r)
	return r
}

// Err returns the first write error, if any.
func (r *Recorder) Err() error { return r.err }

func (r *Recorder) emit(e Event) {
	if r.err == nil {
		r.err = r.W.Write(e)
	}
}

// OnAlloc implements kernel.EventSink.
func (r *Recorder) OnAlloc(p *kernel.Page, pageCache bool) {
	r.nextID++
	r.ids[p] = r.nextID
	kind := KindAlloc
	if pageCache {
		kind = KindAllocCache
	}
	r.emit(Event{Kind: kind, ID: r.nextID, Order: uint8(p.Order), MT: p.MT, Src: p.Src})
}

// OnFree implements kernel.EventSink.
func (r *Recorder) OnFree(p *kernel.Page) {
	id := r.ids[p]
	delete(r.ids, p)
	r.emit(Event{Kind: KindFree, ID: id})
}

// OnPin implements kernel.EventSink.
func (r *Recorder) OnPin(p *kernel.Page) { r.emit(Event{Kind: KindPin, ID: r.ids[p]}) }

// OnUnpin implements kernel.EventSink.
func (r *Recorder) OnUnpin(p *kernel.Page) { r.emit(Event{Kind: KindUnpin, ID: r.ids[p]}) }

// OnTick implements kernel.EventSink.
func (r *Recorder) OnTick() { r.emit(Event{Kind: KindTick}) }

// ReplayStats summarises a replay.
type ReplayStats struct {
	Events      uint64
	AllocFailed uint64
	Ticks       uint64
}

// Replay feeds a trace into a kernel. Allocation failures are tolerated
// (the receiving design may have different capacity behaviour); events
// referencing failed allocations are skipped.
func Replay(k *kernel.Kernel, r *Reader) (ReplayStats, error) {
	var st ReplayStats
	live := make(map[uint64]*kernel.Page)
	for {
		e, err := r.Read()
		if errors.Is(err, io.EOF) {
			return st, nil
		}
		if err != nil {
			return st, err
		}
		st.Events++
		switch e.Kind {
		case KindAlloc:
			p, err := k.Alloc(int(e.Order), e.MT, e.Src)
			if err != nil {
				st.AllocFailed++
				continue
			}
			live[e.ID] = p
		case KindAllocCache:
			p, err := k.AllocPageCache(int(e.Order), e.Src)
			if err != nil {
				st.AllocFailed++
				continue
			}
			live[e.ID] = p
		case KindFree:
			if p := live[e.ID]; p != nil {
				if k.Live(p) {
					if p.Pinned {
						k.Unpin(p)
					}
					k.Free(p)
				}
				delete(live, e.ID)
			}
		case KindPin:
			if p := live[e.ID]; p != nil && k.Live(p) {
				if err := k.Pin(p); err != nil {
					st.AllocFailed++
				}
			}
		case KindUnpin:
			if p := live[e.ID]; p != nil && k.Live(p) {
				k.Unpin(p)
			}
		case KindTick:
			k.EndTick()
			st.Ticks++
		default:
			return st, fmt.Errorf("trace: unknown event kind %d", e.Kind)
		}
	}
}
