package trace

import (
	"strconv"
	"strings"

	"contiguitas/internal/kernel"
	"contiguitas/internal/telemetry"
)

// Robustness is a snapshot of the kernel's failure-handling counters —
// the observability companion to the fault-injection machinery. The
// chaos driver takes one per checkpoint; deltas between snapshots show
// where the failure budget went.
//
// The snapshot is derived from the metric registry's TagRobustness set,
// so the counter names exist in exactly one place: the kernel's
// registration table (kernel.Metrics). Adding a failure counter there
// automatically extends every chaos report.
type Robustness struct {
	names []string
	vals  []uint64
}

// SnapshotRobustness captures the kernel's current failure counters.
func SnapshotRobustness(k *kernel.Kernel) Robustness {
	cs := k.Metrics().Tagged(telemetry.TagRobustness)
	r := Robustness{names: make([]string, len(cs)), vals: make([]uint64, len(cs))}
	for i, c := range cs {
		r.names[i] = c.Name()
		r.vals[i] = c.Value()
	}
	return r
}

// Value returns the named counter's value (0 when absent).
func (r Robustness) Value(name string) uint64 {
	for i, n := range r.names {
		if n == name {
			return r.vals[i]
		}
	}
	return 0
}

// Sub returns the per-counter delta since an earlier snapshot. Both
// snapshots must come from the same registry schema.
func (r Robustness) Sub(prev Robustness) Robustness {
	d := Robustness{names: r.names, vals: make([]uint64, len(r.vals))}
	for i, v := range r.vals {
		d.vals[i] = v - prev.Value(r.names[i])
	}
	return d
}

// Equal reports whether two snapshots agree on every counter.
func (r Robustness) Equal(o Robustness) bool {
	if len(r.names) != len(o.names) {
		return false
	}
	for i := range r.names {
		if r.names[i] != o.names[i] || r.vals[i] != o.vals[i] {
			return false
		}
	}
	return true
}

// String renders the snapshot as one stable, greppable line of
// name=value pairs in registration order.
func (r Robustness) String() string {
	var b strings.Builder
	for i, n := range r.names {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(strconv.FormatUint(r.vals[i], 10))
	}
	return b.String()
}
