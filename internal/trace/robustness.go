package trace

import (
	"fmt"

	"contiguitas/internal/kernel"
)

// Robustness is a snapshot of the kernel's failure-handling counters —
// the observability companion to the fault-injection machinery. The
// chaos driver takes one per checkpoint; deltas between snapshots show
// where the failure budget went.
type Robustness struct {
	MigrationFailures uint64
	MigrationRetries  uint64
	BackoffCycles     uint64
	SWFallbacks       uint64
	MigrationDeferred uint64
	CarveFails        uint64
	CompactRequeues   uint64
	ResizeAborts      uint64
	ShrinkFails       uint64
	AllocFail         uint64
}

// SnapshotRobustness captures the kernel's current failure counters.
func SnapshotRobustness(k *kernel.Kernel) Robustness {
	c := k.Counters
	return Robustness{
		MigrationFailures: c.MigrationFailures,
		MigrationRetries:  c.MigrationRetries,
		BackoffCycles:     c.BackoffCycles,
		SWFallbacks:       c.SWFallbacks,
		MigrationDeferred: c.MigrationDeferred,
		CarveFails:        c.CarveFails,
		CompactRequeues:   c.CompactRequeues,
		ResizeAborts:      c.ResizeAborts,
		ShrinkFails:       c.ShrinkFails,
		AllocFail:         c.AllocFail,
	}
}

// Sub returns the per-field delta since an earlier snapshot.
func (r Robustness) Sub(prev Robustness) Robustness {
	return Robustness{
		MigrationFailures: r.MigrationFailures - prev.MigrationFailures,
		MigrationRetries:  r.MigrationRetries - prev.MigrationRetries,
		BackoffCycles:     r.BackoffCycles - prev.BackoffCycles,
		SWFallbacks:       r.SWFallbacks - prev.SWFallbacks,
		MigrationDeferred: r.MigrationDeferred - prev.MigrationDeferred,
		CarveFails:        r.CarveFails - prev.CarveFails,
		CompactRequeues:   r.CompactRequeues - prev.CompactRequeues,
		ResizeAborts:      r.ResizeAborts - prev.ResizeAborts,
		ShrinkFails:       r.ShrinkFails - prev.ShrinkFails,
		AllocFail:         r.AllocFail - prev.AllocFail,
	}
}

// String renders the snapshot as one stable, greppable line.
func (r Robustness) String() string {
	return fmt.Sprintf(
		"migfail=%d migretry=%d backoff=%d swfallback=%d deferred=%d carvefail=%d requeue=%d resizeabort=%d shrinkfail=%d allocfail=%d",
		r.MigrationFailures, r.MigrationRetries, r.BackoffCycles, r.SWFallbacks,
		r.MigrationDeferred, r.CarveFails, r.CompactRequeues, r.ResizeAborts,
		r.ShrinkFails, r.AllocFail)
}
