package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"contiguitas/internal/kernel"
	"contiguitas/internal/mem"
	"contiguitas/internal/stats"
)

func testKernel(mode kernel.Mode) *kernel.Kernel {
	cfg := kernel.DefaultConfig(mode)
	cfg.MemBytes = 128 << 20
	cfg.InitialUnmovableBytes = 16 << 20
	cfg.MinUnmovableBytes = 8 << 20
	cfg.MaxUnmovableBytes = 64 << 20
	return kernel.New(cfg)
}

func TestRoundTripEncoding(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	events := []Event{
		{Kind: KindAlloc, ID: 1, Order: 9, MT: mem.MigrateMovable, Src: mem.SrcUser},
		{Kind: KindPin, ID: 1},
		{Kind: KindTick},
		{Kind: KindUnpin, ID: 1},
		{Kind: KindFree, ID: 1},
	}
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if w.Events() != uint64(len(events)) {
		t.Fatal("event count")
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range events {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("event %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestBadHeaderRejected(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace"))); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream must fail")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Event{Kind: KindTick})
	w.Flush()
	data := buf.Bytes()[:buf.Len()-2]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil {
		t.Fatal("truncated record must error")
	}
}

func TestRecordReplayEquivalence(t *testing.T) {
	// Record a random workload on one machine (through the event sink),
	// replay on a fresh machine of the same design: the physical-memory
	// state must match in aggregate (same design, same decisions).
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	k1 := testKernel(kernel.ModeContiguitas)
	rec := Attach(k1, w)
	rng := stats.NewRNG(5)
	var live []*kernel.Page
	for step := 0; step < 3000; step++ {
		switch {
		case rng.Bool(0.5) || len(live) == 0:
			mt := mem.MigrateMovable
			src := mem.SrcUser
			if rng.Bool(0.3) {
				mt = mem.MigrateUnmovable
				src = mem.SrcSlab
			}
			if p, err := k1.Alloc(rng.Intn(3), mt, src); err == nil {
				live = append(live, p)
				if mt == mem.MigrateMovable && rng.Bool(0.2) {
					k1.Pin(p)
				}
			}
		case rng.Bool(0.1):
			k1.AllocPageCache(0, mem.SrcFilesystem)
		case rng.Bool(0.05):
			k1.EndTick()
		default:
			i := rng.Intn(len(live))
			p := live[i]
			if p.Pinned {
				k1.Unpin(p)
			}
			k1.Free(p)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	if rec.Err() != nil {
		t.Fatal(rec.Err())
	}
	w.Flush()

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	k2 := testKernel(kernel.ModeContiguitas)
	st, err := Replay(k2, r)
	if err != nil {
		t.Fatal(err)
	}
	if st.AllocFailed != 0 {
		t.Fatalf("replay failed %d allocations on an identical machine", st.AllocFailed)
	}
	s1 := k1.PM().Scan([]int{mem.Order2M})
	s2 := k2.PM().Scan([]int{mem.Order2M})
	if s1.FreePages != s2.FreePages {
		t.Fatalf("free pages differ: %d vs %d", s1.FreePages, s2.FreePages)
	}
	if s1.UnmovableFrames != s2.UnmovableFrames {
		t.Fatalf("unmovable frames differ: %d vs %d", s1.UnmovableFrames, s2.UnmovableFrames)
	}
	if s1.UnmovableBlocks[mem.Order2M] != s2.UnmovableBlocks[mem.Order2M] {
		t.Fatalf("unmovable blocks differ")
	}
}

func TestReplayAcrossDesigns(t *testing.T) {
	// A trace captured on a Linux-layout machine replays on a
	// Contiguitas machine: this is the cross-design experiment the
	// trace format exists for.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	k1 := testKernel(kernel.ModeLinux)
	rec := Attach(k1, w)
	for i := 0; i < 500; i++ {
		mt := mem.MigrateMovable
		src := mem.SrcUser
		if i%5 == 0 {
			mt = mem.MigrateUnmovable
			src = mem.SrcNetworking
		}
		if _, err := k1.Alloc(0, mt, src); err != nil {
			t.Fatal(err)
		}
		if i%100 == 99 {
			k1.EndTick()
		}
	}
	if rec.Err() != nil {
		t.Fatal(rec.Err())
	}
	w.Flush()
	r, _ := NewReader(bytes.NewReader(buf.Bytes()))
	k2 := testKernel(kernel.ModeContiguitas)
	st, err := Replay(k2, r)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ticks != 5 {
		t.Fatalf("ticks = %d", st.Ticks)
	}
	// Confinement: the unmovable allocations must be below the boundary.
	scan := k2.PM().Scan([]int{mem.Order2M})
	limit := k2.Boundary() / mem.PageblockPages
	if scan.UnmovableBlocks[mem.Order2M] > limit {
		t.Fatal("replayed unmovable allocations escaped the region")
	}
}

func TestKindString(t *testing.T) {
	for k := KindAlloc; k <= KindTick; k++ {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind must stringify")
	}
}

func TestQuickEventRoundTrip(t *testing.T) {
	f := func(kind uint8, id uint64, order uint8, mt, src uint8) bool {
		e := Event{
			Kind:  Kind(kind % 6),
			ID:    id,
			Order: order % 19,
			MT:    mem.MigrateType(mt % 3),
			Src:   mem.Source(src % 7),
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		if w.Write(e) != nil || w.Flush() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.Read()
		return err == nil && got == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
