package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almost(got, 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); !almost(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almost(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("empty/singleton inputs must return 0")
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almost(got, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almost(got, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", got)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if Pearson([]float64{1, 2}, []float64{1}) != 0 {
		t.Fatal("length mismatch must return 0")
	}
	if Pearson([]float64{3, 3, 3}, []float64{1, 2, 3}) != 0 {
		t.Fatal("zero variance must return 0")
	}
}

func TestPearsonIndependentNearZero(t *testing.T) {
	rng := NewRNG(7)
	n := 20000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	if got := Pearson(xs, ys); math.Abs(got) > 0.03 {
		t.Fatalf("independent Pearson = %v, want ~0", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile must be 0")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3, 4})
	if got := c.At(0); got != 0 {
		t.Fatalf("At(0) = %v", got)
	}
	if got := c.At(2); !almost(got, 0.6, 1e-12) {
		t.Fatalf("At(2) = %v, want 0.6", got)
	}
	if got := c.At(100); got != 1 {
		t.Fatalf("At(100) = %v, want 1", got)
	}
	if got := c.Quantile(0.5); got != 2 {
		t.Fatalf("Quantile(0.5) = %v, want 2", got)
	}
	if got := c.Quantile(1); got != 4 {
		t.Fatalf("Quantile(1) = %v, want 4", got)
	}
	pts := c.Table([]float64{1, 3})
	if len(pts) != 2 || pts[0].Y != 0.2 || pts[1].Y != 0.8 {
		t.Fatalf("Table = %v", pts)
	}
}

func TestCDFMonotonicProperty(t *testing.T) {
	rng := NewRNG(11)
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		c := NewCDF(xs)
		prev := -1.0
		for q := -3.0; q <= 3.0; q += 0.25 {
			v := c.At(q)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Values: nil}
	_ = rng
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(11)
	for i := 0; i < 10; i++ {
		if h.Counts[i] != 1 {
			t.Fatalf("bin %d = %d, want 1", i, h.Counts[i])
		}
	}
	if h.Under != 1 || h.Over != 1 || h.NSamples != 12 {
		t.Fatalf("under=%d over=%d n=%d", h.Under, h.Over, h.NSamples)
	}
	if !almost(h.BinCenter(0), 0.5, 1e-12) {
		t.Fatalf("BinCenter(0) = %v", h.BinCenter(0))
	}
	if !almost(h.Fraction(3), 1.0/12, 1e-12) {
		t.Fatalf("Fraction(3) = %v", h.Fraction(3))
	}
	if h.String() == "" {
		t.Fatal("String must not be empty")
	}
}

func TestHistogramPanics(t *testing.T) {
	mustPanic := func(f func()) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { NewHistogram(0, 10, 0) })
	mustPanic(func() { NewHistogram(10, 0, 4) })
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
	c := NewRNG(43)
	same := 0
	a.Reseed(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnUniform(t *testing.T) {
	r := NewRNG(5)
	counts := make([]int, 10)
	n := 100000
	for i := 0; i < n; i++ {
		counts[r.Intn(10)]++
	}
	for i, c := range counts {
		frac := float64(c) / float64(n)
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("bucket %d fraction %v, want ~0.1", i, frac)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(9)
	n := 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	if m := Mean(xs); math.Abs(m) > 0.02 {
		t.Fatalf("normal mean = %v", m)
	}
	if sd := StdDev(xs); math.Abs(sd-1) > 0.02 {
		t.Fatalf("normal stddev = %v", sd)
	}
}

func TestRNGExponentialMean(t *testing.T) {
	r := NewRNG(13)
	n := 200000
	var s float64
	for i := 0; i < n; i++ {
		s += r.Exponential(2)
	}
	if m := s / float64(n); math.Abs(m-0.5) > 0.01 {
		t.Fatalf("exponential mean = %v, want 0.5", m)
	}
}

func TestRNGPoissonMean(t *testing.T) {
	r := NewRNG(17)
	for _, mean := range []float64{0.5, 4, 100} {
		n := 50000
		var s float64
		for i := 0; i < n; i++ {
			s += float64(r.Poisson(mean))
		}
		got := s / float64(n)
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Fatalf("poisson(%v) mean = %v", mean, got)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-3) != 0 {
		t.Fatal("non-positive mean must return 0")
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(21)
	z := NewZipf(r, 1000, 1.0)
	counts := make([]int, 1000)
	n := 200000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[100] {
		t.Fatalf("zipf not monotone: c0=%d c10=%d c100=%d", counts[0], counts[10], counts[100])
	}
	// Rank 0 should hold roughly 1/H(1000) ~ 13% of mass for s=1.
	frac0 := float64(counts[0]) / float64(n)
	if frac0 < 0.10 || frac0 > 0.17 {
		t.Fatalf("zipf rank0 fraction = %v", frac0)
	}
}

func TestWeightedChoice(t *testing.T) {
	r := NewRNG(23)
	w := []float64{1, 3, 6}
	counts := make([]int, 3)
	n := 100000
	for i := 0; i < n; i++ {
		counts[r.WeightedChoice(w)]++
	}
	fr := func(i int) float64 { return float64(counts[i]) / float64(n) }
	if math.Abs(fr(0)-0.1) > 0.01 || math.Abs(fr(1)-0.3) > 0.015 || math.Abs(fr(2)-0.6) > 0.015 {
		t.Fatalf("weighted fractions: %v %v %v", fr(0), fr(1), fr(2))
	}
}

func TestWeightedChoicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero weights")
		}
	}()
	NewRNG(1).WeightedChoice([]float64{0, 0})
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRNG(29)
	n := 100000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.LogNormal(2, 0.5)
	}
	med := Percentile(xs, 50)
	want := math.Exp(2)
	if math.Abs(med-want)/want > 0.03 {
		t.Fatalf("lognormal median = %v, want ~%v", med, want)
	}
}
