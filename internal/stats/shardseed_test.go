package stats

import "testing"

// ShardSeed now backs both shard plan streams and result-cache keys, so
// its separation properties are load-bearing: distinct (seed, shard)
// pairs must yield distinct seeds, and the streams they open must not
// share prefixes.

// TestShardSeedPure: same inputs, same output — the cache key contract.
func TestShardSeedPure(t *testing.T) {
	for _, seed := range []uint64{0, 1, 0xdeadbeef, ^uint64(0)} {
		for shard := 0; shard < 64; shard += 7 {
			if a, b := ShardSeed(seed, shard), ShardSeed(seed, shard); a != b {
				t.Fatalf("ShardSeed(%d, %d) unstable: %x vs %x", seed, shard, a, b)
			}
		}
	}
}

// TestShardSeedCollisionSmoke: no collisions across a grid of seeds and
// shard indices far wider than any real campaign. 64-bit outputs make
// accidental collisions in ~20k pairs astronomically unlikely, so any
// hit is a real mixing defect (e.g. a linear seed/shard combination).
func TestShardSeedCollisionSmoke(t *testing.T) {
	seeds := []uint64{0, 1, 2, 42, 0xdeadbeef, 1 << 32, ^uint64(0), ^uint64(0) - 1}
	const shards = 2048
	seen := make(map[uint64][2]uint64, len(seeds)*shards)
	for _, seed := range seeds {
		for shard := 0; shard < shards; shard++ {
			k := ShardSeed(seed, shard)
			if prev, dup := seen[k]; dup {
				t.Fatalf("collision: ShardSeed(%d, %d) == ShardSeed(%d, %d) == %016x",
					seed, shard, prev[0], prev[1], k)
			}
			seen[k] = [2]uint64{seed, uint64(shard)}
		}
	}
	// Adjacent seeds must not alias adjacent shards (seed+shard mixing
	// that is merely additive fails exactly here).
	if ShardSeed(1, 0) == ShardSeed(0, 1) {
		t.Fatal("ShardSeed(1, 0) == ShardSeed(0, 1): additive mixing")
	}
}

// TestShardSeedStreamIndependence: RNG streams opened from neighbouring
// shard seeds must diverge immediately and share no draws in their
// prefixes — a shard must never replay a sibling's plan stream.
func TestShardSeedStreamIndependence(t *testing.T) {
	const prefix = 64
	streams := make(map[int][]uint64)
	for shard := 0; shard < 8; shard++ {
		rng := NewRNG(ShardSeed(7, shard))
		draws := make([]uint64, prefix)
		for i := range draws {
			draws[i] = rng.Uint64()
		}
		streams[shard] = draws
	}
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			overlap := 0
			for i := 0; i < prefix; i++ {
				if streams[a][i] == streams[b][i] {
					overlap++
				}
			}
			if overlap > 0 {
				t.Fatalf("shards %d and %d share %d/%d aligned draws", a, b, overlap, prefix)
			}
		}
	}
	// Same shard under different study seeds is a different stream too.
	x, y := NewRNG(ShardSeed(1, 3)), NewRNG(ShardSeed(2, 3))
	if x.Uint64() == y.Uint64() {
		t.Fatal("different study seeds opened identical shard streams")
	}
}
