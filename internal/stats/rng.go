package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift128+ variant, splitmix64-seeded). Every simulator in this
// repository takes an explicit seed so runs are reproducible bit-for-bit;
// math/rand's global state is never used.
type RNG struct {
	s0, s1 uint64
}

// NewRNG returns a generator seeded from the given seed via splitmix64,
// so nearby seeds still yield well-separated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed re-initialises the generator state from seed.
func (r *RNG) Reseed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0 = next()
	r.s1 = next()
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1
	}
}

// State returns the raw xorshift128+ state words, for checkpointing.
// SetState with the same words resumes the exact stream.
func (r *RNG) State() (s0, s1 uint64) { return r.s0, r.s1 }

// SetState overwrites the generator state with previously captured words.
// An all-zero state is invalid for xorshift128+ and is nudged the same way
// Reseed does, so restore can never wedge the generator.
func (r *RNG) SetState(s0, s1 uint64) {
	if s0 == 0 && s1 == 0 {
		s0 = 1
	}
	r.s0, r.s1 = s0, s1
}

// ShardSeed derives a well-separated child seed for shard i of a
// campaign seeded with seed. The derivation is a splitmix64 finalizer
// over both words, so shard streams never overlap the campaign stream
// or each other even for adjacent shard indexes, and the mapping is a
// pure function of (seed, shard) — independent of worker count,
// scheduling, and GOMAXPROCS.
func ShardSeed(seed uint64, shard int) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(uint64(shard)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("stats: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// NormFloat64 returns a standard normal sample (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// LogNormal returns a log-normal sample with the given underlying normal
// mu and sigma. Used for allocation-lifetime distributions, which are
// heavy-tailed in production memory traces.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Exponential returns an exponential sample with the given rate lambda.
func (r *RNG) Exponential(lambda float64) float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		return -math.Log(u) / lambda
	}
}

// Poisson returns a Poisson sample with the given mean (Knuth's algorithm
// for small means, normal approximation above 64 to bound the loop).
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		n := int(mean + math.Sqrt(mean)*r.NormFloat64() + 0.5)
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Zipf draws ranks in [0, n) following a Zipf distribution with exponent s.
// It uses a precomputed cumulative table, so construction is O(n) and each
// draw is O(log n). Used for access-locality modelling (hot pages).
type Zipf struct {
	cum []float64
	rng *RNG
}

// NewZipf constructs a Zipf sampler over n ranks with exponent s > 0.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: Zipf with non-positive n")
	}
	cum := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum, rng: rng}
}

// Next returns the next rank in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// WeightedChoice picks an index in [0, len(weights)) with probability
// proportional to its weight. Zero or negative total weight panics.
func (r *RNG) WeightedChoice(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		panic("stats: WeightedChoice with non-positive total weight")
	}
	u := r.Float64() * total
	var acc float64
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}
