// Package stats provides the statistical primitives used throughout the
// Contiguitas simulators: descriptive statistics, empirical CDFs, histograms,
// Pearson correlation, and deterministic random distributions (Zipf,
// log-normal lifetimes) seeded explicitly so every experiment is reproducible.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns 0 when the slices differ in length, are shorter than two
// elements, or either has zero variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. xs does not need to be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// CDF is an empirical cumulative distribution function over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from samples (copied and sorted).
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// NewCDFInPlace builds an empirical CDF that takes ownership of samples,
// sorting them in place instead of copying. Use it when the caller built
// the slice solely for the CDF (study aggregation loops), where the copy
// in NewCDF would double the allocation per call.
func NewCDFInPlace(samples []float64) *CDF {
	sort.Float64s(samples)
	return &CDF{sorted: samples}
}

// N returns the number of samples underlying the CDF.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x), the fraction of samples less than or equal to x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the smallest sample value v with P(X <= v) >= q for
// q in (0, 1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return c.sorted[i]
}

// Table evaluates the CDF at each of the given x values, returning a series
// suitable for printing a paper-style CDF figure.
func (c *CDF) Table(xs []float64) []Point {
	pts := make([]Point, len(xs))
	for i, x := range xs {
		pts[i] = Point{X: x, Y: c.At(x)}
	}
	return pts
}

// Point is a single (x, y) datum of a printed series.
type Point struct{ X, Y float64 }

// Histogram counts samples into fixed-width bins over [Lo, Hi).
type Histogram struct {
	Lo, Hi   float64
	Counts   []uint64
	Under    uint64 // samples below Lo
	Over     uint64 // samples at or above Hi
	NSamples uint64
}

// NewHistogram creates a histogram with bins fixed-width bins over [lo, hi).
// It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram needs hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]uint64, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.NSamples++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i >= len(h.Counts) { // guard floating-point edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Fraction returns the fraction of all samples that landed in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.NSamples == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.NSamples)
}

// String renders a compact textual summary.
func (h *Histogram) String() string {
	return fmt.Sprintf("Histogram[%g,%g) bins=%d n=%d under=%d over=%d",
		h.Lo, h.Hi, len(h.Counts), h.NSamples, h.Under, h.Over)
}
