package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestNilPublisherIsInert(t *testing.T) {
	var p *Publisher
	p.Pump(1)
	p.Publish(2)
	if p.Latest() != nil || p.Fresh(time.Millisecond) != nil || p.Registry() != nil {
		t.Fatal("nil publisher leaked state")
	}
}

func TestPumpPublishesOnlyOnDemand(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("ticks")
	p := NewPublisher(reg)

	if p.Latest() != nil {
		t.Fatal("snapshot before any publication")
	}
	// No reader has asked: pumping is free and publishes nothing.
	for i := 0; i < 10; i++ {
		c.Inc()
		p.Pump(uint64(i))
	}
	if p.Latest() != nil {
		t.Fatal("Pump published without a waiting reader")
	}

	// A reader asks; the next pump satisfies exactly one request.
	done := make(chan *MetricsSnapshot, 1)
	go func() { done <- p.Fresh(time.Second) }()
	deadline := time.Now().Add(time.Second)
	for {
		c.Inc()
		p.Pump(99)
		select {
		case s := <-done:
			if s == nil {
				t.Fatal("Fresh returned nil with a live writer")
			}
			if s.Tick != 99 || s.Gen != 1 {
				t.Fatalf("snapshot tick=%d gen=%d, want 99/1", s.Tick, s.Gen)
			}
			if got := s.Counter("ticks"); got == nil || got.Value == 0 {
				t.Fatalf("counter missing from snapshot: %+v", s.Counters)
			}
			// The want flag was consumed: further pumps publish nothing.
			p.Pump(100)
			if p.Latest().Gen != 1 {
				t.Fatal("Pump published again without a new request")
			}
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("Fresh never completed")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFreshDegradesToStaleSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("x").Add(7)
	p := NewPublisher(reg)
	p.Publish(1)
	// No writer will ever pump again; Fresh must return the stale
	// snapshot after the wait, never block forever.
	start := time.Now()
	s := p.Fresh(20 * time.Millisecond)
	if s == nil || s.Counter("x").Value != 7 {
		t.Fatalf("stale snapshot lost: %+v", s)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Fresh blocked far past its wait")
	}
}

func TestCaptureIsImmutable(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("c")
	h := reg.NewHistogram("h")
	reg.GaugeFunc("g", func() float64 { return float64(c.Value()) })
	c.Add(3)
	h.Observe(10)
	h.Observe(100)

	s := reg.Capture(5)
	c.Add(100)
	h.Observe(1000)

	if got := s.Counter("c").Value; got != 3 {
		t.Fatalf("captured counter mutated: %d", got)
	}
	hs := s.Histogram("h")
	if hs.Count != 2 || hs.Sum != 110 {
		t.Fatalf("captured histogram mutated: count=%d sum=%d", hs.Count, hs.Sum)
	}
	var bucketSum uint64
	for _, b := range hs.Buckets {
		bucketSum += b[1]
	}
	if bucketSum != hs.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, hs.Count)
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Value != 3 {
		t.Fatalf("gauge captured wrong: %+v", s.Gauges)
	}
}

// TestScrapeNeverRacesWriter is the -race gate for the snapshot plane:
// one writer hammers plain-uint64 counters and histograms while many
// readers demand fresh snapshots. Readers must observe strictly
// monotonic generations and non-decreasing counter values.
func TestScrapeNeverRacesWriter(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("events")
	h := reg.NewHistogram("lat")
	p := NewPublisher(reg)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the single writer
		defer wg.Done()
		for tick := uint64(0); ; tick++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Inc()
			h.Observe(tick % 4096)
			p.Pump(tick)
		}
	}()

	const readers = 8
	wg.Add(readers)
	for i := 0; i < readers; i++ {
		go func() {
			defer wg.Done()
			var lastGen, lastVal uint64
			for n := 0; n < 200; n++ {
				s := p.Fresh(50 * time.Millisecond)
				if s == nil {
					continue
				}
				if s.Gen < lastGen {
					t.Errorf("generation went backwards: %d -> %d", lastGen, s.Gen)
					return
				}
				v := s.Counter("events").Value
				if v < lastVal {
					t.Errorf("counter went backwards: %d -> %d", lastVal, v)
					return
				}
				hs := s.Histogram("lat")
				var sum uint64
				for _, b := range hs.Buckets {
					sum += b[1]
				}
				if sum != hs.Count {
					t.Errorf("bucket sum %d != count %d", sum, hs.Count)
					return
				}
				lastGen, lastVal = s.Gen, v
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Let readers finish, then stop the writer.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("scrape test wedged")
	}
}

func TestRingSinkSeesEveryEmit(t *testing.T) {
	r := NewRing(8)
	var got []Record
	r.SetSink(func(rec Record) { got = append(got, rec) })
	for i := uint64(0); i < 20; i++ {
		r.Emit(i, EvAlloc, i, 0, 0)
	}
	// The ring overwrote (cap 8 < 20) but the sink saw all 20.
	if len(got) != 20 {
		t.Fatalf("sink saw %d records, want 20", len(got))
	}
	if got[19].Tick != 19 || got[19].A != 19 {
		t.Fatalf("last sunk record wrong: %+v", got[19])
	}
}
