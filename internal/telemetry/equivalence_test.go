package telemetry_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"contiguitas/internal/kernel"
	"contiguitas/internal/mem"
	"contiguitas/internal/telemetry"
	"contiguitas/internal/workload"
)

// pressuredWeb is an overcommitted Web profile (the chaos soak's): user
// demand exceeds the movable region, so allocation slow paths —
// reclaim, compaction, migration — see real traffic.
func pressuredWeb() workload.Profile {
	p := workload.Web()
	p.UserFrac = 0.79
	p.PageCacheFrac = 0.09
	return p
}

// TestMetricsJSONLEquivalence is the acceptance-criteria witness: a real
// workload run's exported per-tick JSONL series (header base + per-tick
// deltas) must sum to the kernel's end-of-run Counters totals for every
// registered counter — including when the sampler ring was small enough
// to overwrite early history.
func TestMetricsJSONLEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name       string
		samplerCap int
	}{
		{"full-history", 4096},
		{"ring-overwrote", 64}, // 300 ticks into 64 rows forces eviction
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := kernel.DefaultConfig(kernel.ModeContiguitas)
			cfg.MemBytes = 256 << 20
			cfg.InitialUnmovableBytes = 32 << 20
			cfg.MinUnmovableBytes = 8 << 20
			cfg.MaxUnmovableBytes = 128 << 20
			cfg.HWMover = kernel.NewAnalyticMover()
			k := kernel.New(cfg)
			k.SetTracer(telemetry.NewRing(1 << 14))
			s := k.AttachSampler(tc.samplerCap)

			r := workload.NewRunner(k, pressuredWeb(), 7)
			for tick := 0; tick < 300; tick++ {
				r.Step()
				if tick%25 == 0 {
					// HugeTLB probes force direct compaction under
					// fragmentation, so the compaction counters move.
					huge := k.AllocHugeTLB(mem.Order2M, 2)
					k.FreeHugeTLB(&huge)
				}
			}

			var buf bytes.Buffer
			if err := telemetry.WriteMetricsJSONL(&buf, s); err != nil {
				t.Fatal(err)
			}
			lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
			var header struct {
				Counters []string `json:"counters"`
				Base     []uint64 `json:"base"`
			}
			if err := json.Unmarshal([]byte(lines[0]), &header); err != nil {
				t.Fatal(err)
			}
			totals := append([]uint64(nil), header.Base...)
			for _, line := range lines[1:] {
				var row struct {
					D []uint64 `json:"d"`
				}
				if err := json.Unmarshal([]byte(line), &row); err != nil {
					t.Fatal(err)
				}
				for i, d := range row.D {
					totals[i] += d
				}
			}

			// Compare against the live registry (which reads the Counters
			// struct fields directly). No kernel activity has happened
			// since the last EndTick sample, so they must match exactly.
			for i, name := range header.Counters {
				want := k.Metrics().Counter(name).Value()
				if totals[i] != want {
					t.Errorf("counter %s: base+Σdeltas = %d, end-of-run total = %d",
						name, totals[i], want)
				}
			}

			// Sanity: the run must actually have moved the interesting
			// counters, or the equivalence is vacuous.
			for _, name := range []string{"alloc_ok", "sw_migrations", "compact_runs"} {
				if k.Metrics().Counter(name).Value() == 0 {
					t.Errorf("counter %s never moved; workload too idle for equivalence to mean anything", name)
				}
			}
		})
	}
}

// TestCountersMirrorRegistry pins the pointer-binding contract: the
// registry's counters ARE the kernel.Counters fields, not copies.
func TestCountersMirrorRegistry(t *testing.T) {
	cfg := kernel.DefaultConfig(kernel.ModeLinux)
	cfg.MemBytes = 64 << 20
	k := kernel.New(cfg)
	reg := k.Metrics()

	before := reg.Counter("alloc_ok").Value()
	if before != k.AllocOK {
		t.Fatalf("registry alloc_ok = %d, field = %d", before, k.AllocOK)
	}
	if _, err := k.Alloc(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("alloc_ok").Value(); got != before+1 || got != k.AllocOK {
		t.Fatalf("registry alloc_ok = %d after alloc, field = %d", got, k.AllocOK)
	}
}

// TestChromeTraceFromKernelRun drives an instrumented kernel and checks
// the exported Chrome trace parses and contains events on the three
// tracks the acceptance criteria name.
func TestChromeTraceFromKernelRun(t *testing.T) {
	cfg := kernel.DefaultConfig(kernel.ModeContiguitas)
	cfg.MemBytes = 256 << 20
	cfg.InitialUnmovableBytes = 32 << 20
	cfg.MinUnmovableBytes = 8 << 20
	cfg.MaxUnmovableBytes = 128 << 20
	cfg.HWMover = kernel.NewAnalyticMover()
	k := kernel.New(cfg)
	tp := telemetry.NewRing(1 << 15)
	k.SetTracer(tp)
	s := k.AttachSampler(1024)

	r := workload.NewRunner(k, pressuredWeb(), 3)
	for tick := 0; tick < 250; tick++ {
		r.Step()
		if tick%25 == 0 {
			huge := k.AllocHugeTLB(mem.Order2M, 2)
			k.FreeHugeTLB(&huge)
		}
	}
	// Force resize traffic so the resize track is populated regardless of
	// how calm the PSI signals were.
	k.ExpandUnmovable(512)
	k.ShrinkUnmovable(512)

	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, tp, s); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	// Map tids to track names from the metadata, then require events on
	// migration, compaction, and resize tracks.
	trackOf := map[float64]string{}
	for _, ev := range events {
		if ev["ph"] == "M" {
			trackOf[ev["tid"].(float64)] = ev["args"].(map[string]any)["name"].(string)
		}
	}
	seen := map[string]int{}
	for _, ev := range events {
		if ev["ph"] == "M" || ev["ph"] == "C" {
			continue
		}
		seen[trackOf[ev["tid"].(float64)]]++
	}
	for _, track := range []string{"migration", "compaction", "resize"} {
		if seen[track] == 0 {
			t.Errorf("no events on the %s track (got %v)", track, seen)
		}
	}
}
