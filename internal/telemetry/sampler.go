package telemetry

// SampleRow is one per-tick snapshot of the registry: the tick number,
// the cumulative value of every registered counter, and the value of
// every registered gauge, both in registration order.
type SampleRow struct {
	Tick     uint64
	Counters []uint64
	Gauges   []float64
}

// Sampler snapshots a Registry once per tick into a fixed-size ring of
// SampleRows. Rows are preallocated at construction; sampling copies
// values into the reused row storage and never allocates.
//
// Because a long run can overwrite old rows, the sampler also remembers
// the cumulative counter values just before its oldest retained row
// (base). Exporters emit base + per-tick deltas, so the invariant
//
//	base[i] + Σ deltas[i] == counter[i] end-of-run total
//
// holds regardless of how much history the ring dropped.
type Sampler struct {
	reg  *Registry
	rows []SampleRow
	head uint64 // total rows ever written
	// base holds the cumulative counter values of the last row evicted
	// from the ring (all zeros until the first eviction).
	base []uint64
}

// NewSampler creates a sampler retaining the next power-of-two ≥
// capacity rows (minimum 64) of the registry's metrics.
func NewSampler(reg *Registry, capacity int) *Sampler {
	n := 64
	for n < capacity {
		n <<= 1
	}
	s := &Sampler{
		reg:  reg,
		rows: make([]SampleRow, n),
		base: make([]uint64, len(reg.Counters())),
	}
	for i := range s.rows {
		s.rows[i].Counters = make([]uint64, len(reg.Counters()))
		s.rows[i].Gauges = make([]float64, len(reg.Gauges()))
	}
	return s
}

// Enabled reports whether a sampler is attached (valid on nil).
func (s *Sampler) Enabled() bool { return s != nil }

// Sample records one row for the tick. Call once per tick, ticks
// strictly increasing.
func (s *Sampler) Sample(tick uint64) {
	row := &s.rows[s.head&uint64(len(s.rows)-1)]
	if s.head >= uint64(len(s.rows)) {
		// Evicting the oldest row: its cumulative values become the new
		// base, keeping base + Σ retained deltas == totals.
		copy(s.base, row.Counters)
	}
	row.Tick = tick
	for i, c := range s.reg.Counters() {
		row.Counters[i] = c.Value()
	}
	for i, g := range s.reg.Gauges() {
		row.Gauges[i] = g.Value()
	}
	s.head++
}

// Len returns the number of retained rows.
func (s *Sampler) Len() int {
	if s.head < uint64(len(s.rows)) {
		return int(s.head)
	}
	return len(s.rows)
}

// Base returns the cumulative counter values immediately before the
// oldest retained row (all zeros when nothing was evicted).
func (s *Sampler) Base() []uint64 { return s.base }

// Rows calls fn for each retained row, oldest first. The row is reused
// ring storage — copy anything retained past the callback.
func (s *Sampler) Rows(fn func(*SampleRow)) {
	n := uint64(s.Len())
	for i := s.head - n; i < s.head; i++ {
		fn(&s.rows[i&uint64(len(s.rows)-1)])
	}
}

// Registry returns the registry being sampled.
func (s *Sampler) Registry() *Registry { return s.reg }
