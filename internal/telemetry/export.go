package telemetry

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"

	"contiguitas/internal/vfs"
)

// Timestamp conventions for the Chrome trace exporter. One simulator
// tick models one millisecond of wall time; cycle-stamped arguments and
// cycle-unit rings are converted at a nominal 2 GHz.
const (
	// TickMicros is the trace-time width of one tick, in microseconds.
	TickMicros = 1000
	// CyclesPerMicro converts cycle counts to microseconds (2 GHz).
	CyclesPerMicro = 2000
)

// WriteMetricsJSONL writes the sampler's time series as JSON Lines: a
// header object carrying the schema (counter and gauge names, and the
// base cumulative counter values preceding the oldest retained row),
// then one object per tick with per-tick counter deltas and gauge
// values. The contract exporters and tests rely on:
//
//	header.base[i] + Σ rows.d[i] == end-of-run counter total
//
// even when the sampler ring overwrote early history.
func WriteMetricsJSONL(w io.Writer, s *Sampler) error {
	bw := bufio.NewWriter(w)
	reg := s.Registry()

	bw.WriteString(`{"schema":"contiguitas-metrics-v1","counters":[`)
	for i, c := range reg.Counters() {
		if i > 0 {
			bw.WriteByte(',')
		}
		writeJSONString(bw, c.Name())
	}
	bw.WriteString(`],"gauges":[`)
	for i, g := range reg.Gauges() {
		if i > 0 {
			bw.WriteByte(',')
		}
		writeJSONString(bw, g.Name())
	}
	bw.WriteString(`],"base":[`)
	for i, v := range s.Base() {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(strconv.FormatUint(v, 10))
	}
	bw.WriteString("]}\n")

	prev := append([]uint64(nil), s.Base()...)
	s.Rows(func(row *SampleRow) {
		bw.WriteString(`{"tick":`)
		bw.WriteString(strconv.FormatUint(row.Tick, 10))
		bw.WriteString(`,"d":[`)
		for i, v := range row.Counters {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(strconv.FormatUint(v-prev[i], 10))
			prev[i] = v
		}
		bw.WriteString(`],"g":[`)
		for i, v := range row.Gauges {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(strconv.FormatFloat(v, 'g', 6, 64))
		}
		bw.WriteString("]}\n")
	})
	return bw.Flush()
}

// WriteMetricsCSV writes the sampler's time series as CSV: a header of
// column names, then one row per tick of cumulative counter values and
// gauge values.
func WriteMetricsCSV(w io.Writer, s *Sampler) error {
	bw := bufio.NewWriter(w)
	reg := s.Registry()

	bw.WriteString("tick")
	for _, c := range reg.Counters() {
		bw.WriteByte(',')
		bw.WriteString(c.Name())
	}
	for _, g := range reg.Gauges() {
		bw.WriteByte(',')
		bw.WriteString(g.Name())
	}
	bw.WriteByte('\n')

	s.Rows(func(row *SampleRow) {
		bw.WriteString(strconv.FormatUint(row.Tick, 10))
		for _, v := range row.Counters {
			bw.WriteByte(',')
			bw.WriteString(strconv.FormatUint(v, 10))
		}
		for _, v := range row.Gauges {
			bw.WriteByte(',')
			bw.WriteString(strconv.FormatFloat(v, 'g', 6, 64))
		}
		bw.WriteByte('\n')
	})
	return bw.Flush()
}

// WriteTimeline writes the ring as a stable, greppable text timeline,
// one event per line:
//
//	[tick 000042] migration       migrate-complete src=512 dst=1024 cycles=9000
//
// Column 1 is the timestamp (the ring's Unit), column 2 the track,
// column 3 the event name, then name=value args in schema order.
func WriteTimeline(w io.Writer, r *Ring) error {
	bw := bufio.NewWriter(w)
	if r.Overwritten() > 0 {
		fmt.Fprintf(bw, "# ring overwrote %d earlier records\n", r.Overwritten())
	}
	recs := r.Snapshot(nil)
	for i := range recs {
		rec := &recs[i]
		m := &Meta[rec.ID]
		fmt.Fprintf(bw, "[%s %06d] %-10s %-18s", r.Unit, rec.Tick, m.Track, m.Name)
		for ai, arg := range [3]uint64{rec.A, rec.B, rec.C} {
			if m.Args[ai] == "" {
				continue
			}
			fmt.Fprintf(bw, " %s=%d", m.Args[ai], arg)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// WriteChromeTrace writes the ring — and, when a sampler is supplied,
// its gauge series as counter tracks — as Chrome trace_event JSON
// (JSON Array Format) loadable in Perfetto and chrome://tracing. Each
// telemetry Track renders as its own named thread; events whose schema
// marks a cycles argument (DurArg) render as complete ("X") slices with
// real durations, the rest as instants.
func WriteChromeTrace(w io.Writer, r *Ring, s *Sampler) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("[\n")
	first := true
	emit := func() *bufio.Writer {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		return bw
	}

	// Thread-name metadata: one Perfetto track per telemetry Track.
	for t := Track(0); t < NumTracks; t++ {
		fmt.Fprintf(emit(),
			`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%q}}`,
			int(t)+1, t.String())
	}

	// Tick→µs conversion depends on the ring's unit.
	ts := func(tick uint64) float64 {
		if r.Unit == "cycle" {
			return float64(tick) / CyclesPerMicro
		}
		return float64(tick) * TickMicros
	}

	recs := r.Snapshot(nil)
	for i := range recs {
		rec := &recs[i]
		m := &Meta[rec.ID]
		bw := emit()
		fmt.Fprintf(bw, `{"name":%q,"pid":1,"tid":%d,"ts":%.3f`,
			m.Name, int(m.Track)+1, ts(rec.Tick))
		if m.DurArg >= 0 {
			dur := float64([3]uint64{rec.A, rec.B, rec.C}[m.DurArg]) / CyclesPerMicro
			if dur < 1 {
				dur = 1 // keep slices visible at any zoom
			}
			fmt.Fprintf(bw, `,"ph":"X","dur":%.3f`, dur)
		} else {
			bw.WriteString(`,"ph":"i","s":"t"`)
		}
		bw.WriteString(`,"args":{`)
		argFirst := true
		for ai, arg := range [3]uint64{rec.A, rec.B, rec.C} {
			if m.Args[ai] == "" {
				continue
			}
			if !argFirst {
				bw.WriteByte(',')
			}
			argFirst = false
			fmt.Fprintf(bw, `%q:%d`, m.Args[ai], arg)
		}
		bw.WriteString("}}")
	}

	// Gauge time series as Chrome counter ("C") tracks.
	if s.Enabled() {
		gauges := s.Registry().Gauges()
		s.Rows(func(row *SampleRow) {
			for gi, v := range row.Gauges {
				fmt.Fprintf(emit(),
					`{"name":%q,"ph":"C","pid":1,"ts":%.3f,"args":{"value":%g}}`,
					gauges[gi].Name(), float64(row.Tick)*TickMicros, v)
			}
		})
	}

	bw.WriteString("\n]\n")
	return bw.Flush()
}

// WriteHistograms writes every registered histogram as a human-readable
// latency breakdown: count/mean/min/max, key quantiles, and the
// non-empty log-linear buckets — the Fig. 13-style artifact.
func WriteHistograms(w io.Writer, reg *Registry, unit string) error {
	bw := bufio.NewWriter(w)
	for _, h := range reg.Histograms() {
		fmt.Fprintf(bw, "%s (unit=%s): count=%d mean=%.1f min=%d max=%d",
			h.Name(), unit, h.Count(), h.Mean(), h.Min(), h.Max())
		if h.Count() > 0 {
			fmt.Fprintf(bw, " p50=%d p90=%d p99=%d",
				h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99))
		}
		bw.WriteByte('\n')
		for _, b := range h.Buckets(nil) {
			fmt.Fprintf(bw, "  %12d+ %d\n", b[0], b[1])
		}
	}
	return bw.Flush()
}

// writeJSONString writes s as a JSON string. Metric and event names are
// plain identifiers; %q's escaping is sufficient.
func writeJSONString(w *bufio.Writer, s string) {
	fmt.Fprintf(w, "%q", s)
}

// writeFile writes path atomically and durably (making parent
// directories) through the active FS: fn streams into a same-directory
// temp file that is fsynced and renamed over path only after a
// successful close, then the parent directory is fsynced so the rename
// survives power loss. A crash or error mid-export can therefore never
// leave a truncated, unparseable artifact at the target path — at worst
// the previous complete version (or nothing) remains. internal/vfs
// carries the discipline (telemetry cannot import snapshot: the kernel
// imports telemetry and snapshot imports the kernel), which also puts
// every exporter under storage-fault injection.
func writeFile(path string, fn func(io.Writer) error) error {
	return vfs.WriteDurable(vfs.Active(), path, fn)
}

// Artifact is one pending export: a target path and the writer that
// produces it. A zero Path marks the artifact disabled (ExportAll skips
// it), so optional outputs thread through uniformly.
type Artifact struct {
	Path  string
	Write func(path string) error
}

// ChromeTraceArtifact defers an ExportChromeTraceFile.
func ChromeTraceArtifact(path string, r *Ring, s *Sampler) Artifact {
	return Artifact{Path: path, Write: func(p string) error { return ExportChromeTraceFile(p, r, s) }}
}

// MetricsJSONLArtifact defers an ExportMetricsJSONLFile.
func MetricsJSONLArtifact(path string, s *Sampler) Artifact {
	return Artifact{Path: path, Write: func(p string) error { return ExportMetricsJSONLFile(p, s) }}
}

// MetricsCSVArtifact defers an ExportMetricsCSVFile.
func MetricsCSVArtifact(path string, s *Sampler) Artifact {
	return Artifact{Path: path, Write: func(p string) error { return ExportMetricsCSVFile(p, s) }}
}

// TimelineArtifact defers an ExportTimelineFile.
func TimelineArtifact(path string, r *Ring) Artifact {
	return Artifact{Path: path, Write: func(p string) error { return ExportTimelineFile(p, r) }}
}

// ExportAll flushes every artifact, attempting each one regardless of
// earlier failures, and returns the per-path-annotated errors joined.
// writeFile already guarantees no artifact is ever left truncated; this
// guarantees a failure on one path can no longer leave a *sibling*
// artifact unwritten — the run's other outputs still land, and the
// caller gets one error naming exactly what did not.
func ExportAll(artifacts ...Artifact) error {
	var errs []error
	for _, a := range artifacts {
		if a.Path == "" {
			continue
		}
		if err := a.Write(a.Path); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", a.Path, err))
		}
	}
	return errors.Join(errs...)
}

// ExportMetricsJSONLFile writes the sampler's JSONL series to path.
func ExportMetricsJSONLFile(path string, s *Sampler) error {
	return writeFile(path, func(w io.Writer) error { return WriteMetricsJSONL(w, s) })
}

// ExportMetricsCSVFile writes the sampler's CSV series to path.
func ExportMetricsCSVFile(path string, s *Sampler) error {
	return writeFile(path, func(w io.Writer) error { return WriteMetricsCSV(w, s) })
}

// ExportTimelineFile writes the ring's text timeline to path.
func ExportTimelineFile(path string, r *Ring) error {
	return writeFile(path, func(w io.Writer) error { return WriteTimeline(w, r) })
}

// ExportChromeTraceFile writes the Chrome trace_event JSON to path.
func ExportChromeTraceFile(path string, r *Ring, s *Sampler) error {
	return writeFile(path, func(w io.Writer) error { return WriteChromeTrace(w, r, s) })
}
