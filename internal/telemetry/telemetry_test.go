package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestRingDisabledNil(t *testing.T) {
	var r *Ring
	if r.Enabled() {
		t.Fatal("nil ring reports enabled")
	}
}

func TestRingEmitSnapshot(t *testing.T) {
	r := NewRing(100) // rounds up to 128
	if r.Cap() != 128 {
		t.Fatalf("cap = %d, want 128", r.Cap())
	}
	for i := uint64(0); i < 50; i++ {
		r.Emit(i, EvAlloc, i, i*2, i*3)
	}
	if r.Len() != 50 || r.Overwritten() != 0 {
		t.Fatalf("len=%d overwritten=%d, want 50, 0", r.Len(), r.Overwritten())
	}
	recs := r.Snapshot(nil)
	if len(recs) != 50 {
		t.Fatalf("snapshot len = %d", len(recs))
	}
	for i, rec := range recs {
		if rec.Tick != uint64(i) || rec.A != uint64(i) || rec.B != uint64(i*2) || rec.C != uint64(i*3) {
			t.Fatalf("record %d = %+v", i, rec)
		}
	}
}

func TestRingOverwrite(t *testing.T) {
	r := NewRing(64)
	for i := uint64(0); i < 200; i++ {
		r.Emit(i, EvFree, i, 0, 0)
	}
	if r.Len() != 64 {
		t.Fatalf("len = %d, want 64", r.Len())
	}
	if got := r.Overwritten(); got != 136 {
		t.Fatalf("overwritten = %d, want 136", got)
	}
	recs := r.Snapshot(nil)
	// Oldest retained record is 200-64 = 136.
	if recs[0].Tick != 136 || recs[len(recs)-1].Tick != 199 {
		t.Fatalf("snapshot range [%d, %d], want [136, 199]", recs[0].Tick, recs[len(recs)-1].Tick)
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("len after reset = %d", r.Len())
	}
}

func TestEventMetaComplete(t *testing.T) {
	seen := map[string]EventID{}
	for id := EventID(0); id < NumEvents; id++ {
		m := Meta[id]
		if m.Name == "" {
			t.Fatalf("event %d has no name", id)
		}
		if prev, dup := seen[m.Name]; dup {
			t.Fatalf("events %d and %d share name %q", prev, id, m.Name)
		}
		seen[m.Name] = id
		if m.Track >= NumTracks {
			t.Fatalf("event %s has invalid track %d", m.Name, m.Track)
		}
		if m.DurArg < -1 || m.DurArg > 2 {
			t.Fatalf("event %s has invalid DurArg %d", m.Name, m.DurArg)
		}
		if m.DurArg >= 0 && m.Args[m.DurArg] == "" {
			t.Fatalf("event %s DurArg points at unused argument", m.Name)
		}
		if id.String() != m.Name {
			t.Fatalf("String() = %q, want %q", id.String(), m.Name)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	// Small values land in exact buckets.
	for v := uint64(0); v < histLinearMax; v++ {
		if got := histBucketIndex(v); got != int(v) {
			t.Fatalf("bucket(%d) = %d", v, got)
		}
		if lo := HistBucketLo(int(v)); lo != v {
			t.Fatalf("lo(%d) = %d", v, lo)
		}
	}
	// Every bucket's lower bound maps back to that bucket, and bounds
	// are strictly increasing.
	prev := uint64(0)
	for i := 0; i < histBuckets; i++ {
		lo := HistBucketLo(i)
		if i > 0 && lo <= prev {
			t.Fatalf("bucket %d lo %d not > previous %d", i, lo, prev)
		}
		prev = lo
		if got := histBucketIndex(lo); got != i {
			t.Fatalf("bucket(lo(%d)=%d) = %d", i, lo, got)
		}
	}
	// Relative bucket width above the linear range is ≤ 1/16.
	for _, v := range []uint64{17, 100, 1000, 1 << 20, 1<<40 + 12345} {
		i := histBucketIndex(v)
		lo, hi := HistBucketLo(i), HistBucketLo(i+1)
		if v < lo || v >= hi {
			t.Fatalf("value %d outside bucket [%d, %d)", v, lo, hi)
		}
		if rel := float64(hi-lo) / float64(lo); rel > 1.0/16+1e-9 {
			t.Fatalf("bucket width %d/%d rel error %f > 1/16", hi-lo, lo, rel)
		}
	}
}

func TestHistogramStats(t *testing.T) {
	h := &Histogram{name: "t"}
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not zero")
	}
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 || h.Sum() != 500500 || h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("count=%d sum=%d min=%d max=%d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if math.Abs(h.Mean()-500.5) > 1e-9 {
		t.Fatalf("mean = %f", h.Mean())
	}
	// Quantiles are bucket lower bounds: within 1/16 relative error.
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := q * 1000
		got := float64(h.Quantile(q))
		if got > exact || got < exact*(1-1.0/8) {
			t.Fatalf("q%.2f = %f, exact %f", q, got, exact)
		}
	}
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) < h.Quantile(0.99) {
		t.Fatal("quantile clamping broken")
	}
}

func TestRegistryBindAndTags(t *testing.T) {
	reg := NewRegistry()
	var field uint64
	c := reg.BindCounter("bound", &field, TagRobustness)
	field += 7
	if c.Value() != 7 {
		t.Fatalf("bound counter = %d, want 7", c.Value())
	}
	c.Add(3)
	if field != 10 {
		t.Fatalf("field = %d, want 10", field)
	}
	own := reg.NewCounter("own")
	own.Inc()
	if own.Value() != 1 {
		t.Fatalf("own = %d", own.Value())
	}
	reg.GaugeFunc("g", func() float64 { return 2.5 })
	reg.NewHistogram("h")

	tagged := reg.Tagged(TagRobustness)
	if len(tagged) != 1 || tagged[0].Name() != "bound" {
		t.Fatalf("tagged = %v", tagged)
	}
	if reg.Counter("bound") != c || reg.Counter("missing") != nil {
		t.Fatal("Counter lookup broken")
	}
	if reg.Histogram("h") == nil || reg.Histogram("missing") != nil {
		t.Fatal("Histogram lookup broken")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg.NewCounter("bound")
}

// sumJSONL decodes a metrics JSONL stream and returns base + Σ deltas
// per counter, checking structure along the way.
func sumJSONL(t *testing.T, data []byte) []uint64 {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	var header struct {
		Schema   string   `json:"schema"`
		Counters []string `json:"counters"`
		Gauges   []string `json:"gauges"`
		Base     []uint64 `json:"base"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil {
		t.Fatalf("header: %v", err)
	}
	if header.Schema != "contiguitas-metrics-v1" {
		t.Fatalf("schema = %q", header.Schema)
	}
	totals := append([]uint64(nil), header.Base...)
	for _, line := range lines[1:] {
		var row struct {
			Tick uint64    `json:"tick"`
			D    []uint64  `json:"d"`
			G    []float64 `json:"g"`
		}
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("row %q: %v", line, err)
		}
		if len(row.D) != len(header.Counters) || len(row.G) != len(header.Gauges) {
			t.Fatalf("row width mismatch: %d/%d counters, %d/%d gauges",
				len(row.D), len(header.Counters), len(row.G), len(header.Gauges))
		}
		for i, d := range row.D {
			totals[i] += d
		}
	}
	return totals
}

func TestSamplerDeltasSumToTotals(t *testing.T) {
	reg := NewRegistry()
	var a, b uint64
	reg.BindCounter("a", &a)
	reg.BindCounter("b", &b)
	gv := 0.0
	reg.GaugeFunc("g", func() float64 { return gv })

	// Capacity 64 with 300 ticks forces ring eviction, exercising the
	// base-tracking path.
	s := NewSampler(reg, 64)
	for tick := uint64(0); tick < 300; tick++ {
		a += tick % 7
		b += 3
		gv = float64(tick)
		s.Sample(tick)
	}
	if s.Len() != 64 {
		t.Fatalf("len = %d", s.Len())
	}

	var buf bytes.Buffer
	if err := WriteMetricsJSONL(&buf, s); err != nil {
		t.Fatal(err)
	}
	totals := sumJSONL(t, buf.Bytes())
	if totals[0] != a || totals[1] != b {
		t.Fatalf("base+deltas = %v, want [%d %d]", totals, a, b)
	}
}

func TestSamplerNilEnabled(t *testing.T) {
	var s *Sampler
	if s.Enabled() {
		t.Fatal("nil sampler reports enabled")
	}
}

func TestWriteMetricsCSV(t *testing.T) {
	reg := NewRegistry()
	var a uint64
	reg.BindCounter("a", &a)
	reg.GaugeFunc("g", func() float64 { return 1.5 })
	s := NewSampler(reg, 64)
	a = 5
	s.Sample(0)
	a = 9
	s.Sample(1)

	var buf bytes.Buffer
	if err := WriteMetricsCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	want := "tick,a,g\n0,5,1.5\n1,9,1.5\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

func TestWriteTimeline(t *testing.T) {
	r := NewRing(64)
	r.Emit(42, EvMigrateComplete, 512, 1024, 9000)
	r.Emit(43, EvResizeAbort, 777, 0, 0)
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"[tick 000042]", "migration", "migrate-complete", "src=512", "dst=1024", "cycles=9000",
		"resize-abort", "boundary=777",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
	// Unused args must not appear.
	if strings.Count(out, "=") != 4 {
		t.Fatalf("unexpected arg count in timeline:\n%s", out)
	}
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	r := NewRing(64)
	r.Emit(1, EvMigrateComplete, 512, 1024, 9000)
	r.Emit(2, EvCompactScan, 9, 10, 512)
	r.Emit(3, EvResizeGrow, 100, 200, 100)
	r.Emit(4, EvAllocFail, 9, 0, 1)

	reg := NewRegistry()
	var a uint64
	reg.BindCounter("a", &a)
	reg.GaugeFunc("free_pages", func() float64 { return 123 })
	s := NewSampler(reg, 64)
	s.Sample(1)
	s.Sample(2)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r, s); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}

	// All tracks get thread-name metadata; the three timeline tracks the
	// acceptance criteria name must be distinct.
	names := map[string]bool{}
	var migTid, compTid, resTid float64
	for _, ev := range events {
		if ev["ph"] == "M" {
			args := ev["args"].(map[string]any)
			name := args["name"].(string)
			names[name] = true
			switch name {
			case "migration":
				migTid = ev["tid"].(float64)
			case "compaction":
				compTid = ev["tid"].(float64)
			case "resize":
				resTid = ev["tid"].(float64)
			}
		}
	}
	for _, want := range []string{"alloc", "reclaim", "compaction", "migration", "resize", "hw-mover"} {
		if !names[want] {
			t.Fatalf("missing track %q", want)
		}
	}
	if migTid == compTid || compTid == resTid || migTid == resTid {
		t.Fatal("migration/compaction/resize tracks share a tid")
	}

	// The migrate-complete event is a complete slice with a real duration
	// on the migration track; the gauge appears as a counter event.
	var sawSlice, sawCounter, sawInstant bool
	for _, ev := range events {
		switch {
		case ev["name"] == "migrate-complete" && ev["ph"] == "X":
			sawSlice = true
			if ev["tid"].(float64) != migTid {
				t.Fatal("migrate-complete not on migration track")
			}
			if dur := ev["dur"].(float64); math.Abs(dur-9000.0/CyclesPerMicro) > 1e-9 {
				t.Fatalf("dur = %f", dur)
			}
		case ev["name"] == "free_pages" && ev["ph"] == "C":
			sawCounter = true
		case ev["name"] == "alloc-fail" && ev["ph"] == "i":
			sawInstant = true
		}
	}
	if !sawSlice || !sawCounter || !sawInstant {
		t.Fatalf("slice=%v counter=%v instant=%v", sawSlice, sawCounter, sawInstant)
	}
}

func TestWriteChromeTraceCycleUnit(t *testing.T) {
	r := NewRing(64)
	r.Unit = "cycle"
	r.Emit(4000, EvMoverEnd, 512, 2000, 1)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r, nil); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev["name"] == "mover-end" {
			// 4000 cycles at 2000 cycles/µs = 2 µs.
			if ts := ev["ts"].(float64); math.Abs(ts-2.0) > 1e-9 {
				t.Fatalf("ts = %f, want 2", ts)
			}
			return
		}
	}
	t.Fatal("mover-end event missing")
}

func TestWriteHistograms(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("mig_sw_cycles")
	for i := uint64(0); i < 100; i++ {
		h.Observe(1000 + i)
	}
	var buf bytes.Buffer
	if err := WriteHistograms(&buf, reg, "cycles"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"mig_sw_cycles", "count=100", "p50=", "p99="} {
		if !strings.Contains(out, want) {
			t.Fatalf("histogram dump missing %q:\n%s", want, out)
		}
	}
}

func TestExportFiles(t *testing.T) {
	dir := t.TempDir()
	r := NewRing(64)
	r.Emit(1, EvAlloc, 1, 0, 0)
	reg := NewRegistry()
	var a uint64
	reg.BindCounter("a", &a)
	s := NewSampler(reg, 64)
	s.Sample(1)

	for _, p := range []struct {
		path string
		fn   func(string) error
	}{
		{dir + "/sub/trace.json", func(p string) error { return ExportChromeTraceFile(p, r, s) }},
		{dir + "/metrics.jsonl", func(p string) error { return ExportMetricsJSONLFile(p, s) }},
		{dir + "/metrics.csv", func(p string) error { return ExportMetricsCSVFile(p, s) }},
		{dir + "/timeline.txt", func(p string) error { return ExportTimelineFile(p, r) }},
	} {
		if err := p.fn(p.path); err != nil {
			t.Fatalf("%s: %v", p.path, err)
		}
	}
}

func BenchmarkRingEmit(b *testing.B) {
	r := NewRing(8192)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(uint64(i), EvAlloc, uint64(i), 9, 1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := &Histogram{name: "b"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i) * 37)
	}
}
