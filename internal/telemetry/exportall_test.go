package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExportAllFlushesSiblingsOnFailure: one artifact pointed at an
// impossible path (its parent is a regular file) must not stop the
// others from being written, and the joined error must name the path
// that failed.
func TestExportAllFlushesSiblingsOnFailure(t *testing.T) {
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	badPath := filepath.Join(blocker, "trace.json") // parent is a file
	goodPath := filepath.Join(dir, "timeline.txt")

	r := NewRing(16)
	r.Emit(1, EvAlloc, 100, 0, 0)

	err := ExportAll(
		ChromeTraceArtifact(badPath, r, nil),
		TimelineArtifact(goodPath, r),
	)
	if err == nil {
		t.Fatal("ExportAll swallowed the bad-path failure")
	}
	if !strings.Contains(err.Error(), badPath) {
		t.Fatalf("error does not name the failed path: %v", err)
	}
	if st, statErr := os.Stat(goodPath); statErr != nil || st.Size() == 0 {
		t.Fatalf("sibling artifact not flushed after failure: %v", statErr)
	}
}

func TestExportAllSkipsEmptyPaths(t *testing.T) {
	r := NewRing(4)
	r.Emit(1, EvAlloc, 1, 0, 0)
	if err := ExportAll(
		TimelineArtifact("", r),
		ChromeTraceArtifact("", r, nil),
	); err != nil {
		t.Fatalf("empty-path artifacts must be skipped, got %v", err)
	}
}

func TestExportAllAllGood(t *testing.T) {
	dir := t.TempDir()
	r := NewRing(8)
	r.Emit(1, EvAlloc, 1, 0, 0)
	r.Emit(2, EvFree, 1, 0, 0)

	reg := NewRegistry()
	c := reg.NewCounter("n")
	s := NewSampler(reg, 8)
	s.Sample(0)
	c.Add(5)
	s.Sample(1)

	tl := filepath.Join(dir, "tl.txt")
	jl := filepath.Join(dir, "m.jsonl")
	if err := ExportAll(
		TimelineArtifact(tl, r),
		MetricsJSONLArtifact(jl, s),
	); err != nil {
		t.Fatalf("ExportAll: %v", err)
	}
	for _, p := range []string{tl, jl} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Fatalf("artifact %s missing or empty: %v", p, err)
		}
	}
}
