// Package telemetry is the simulator's observability substrate: an
// ftrace-style tracepoint ring buffer of packed event records, a typed
// metrics registry (counters, gauges, log-linear latency histograms)
// sampled per tick into ring-buffered time series, and exporters that
// turn both into artifacts — metrics JSONL/CSV, a greppable text
// timeline, and Chrome trace_event JSON that loads in Perfetto.
//
// The design goal is a tracer cheap enough to leave on: the ring is
// fixed-size and allocation-free, one Emit is a handful of stores into a
// preallocated slot, and the disabled path is a single predictable
// branch — Enabled() on a nil *Ring returns false, so instrumented code
// reads
//
//	if tp.Enabled() {
//		tp.Emit(tick, telemetry.EvMigrateComplete, src, dst, cycles)
//	}
//
// and costs nothing measurable when no tracer is attached.
package telemetry

// EventID identifies one tracepoint. The set mirrors the kernel's hot
// paths: allocation, fallback stealing, reclaim, the compaction scanner,
// the migration ladder (start/retry/fallback/defer/fail/complete), the
// hardware mover, TLB shootdowns, and region resizing.
type EventID uint8

const (
	// EvAlloc: a, b, c = pfn, order, migratetype.
	EvAlloc EventID = iota
	// EvAllocFail: a, b, c = order, migratetype, region.
	EvAllocFail
	// EvFree: a, b, c = pfn, order, migratetype.
	EvFree
	// EvFallbackSteal: a, b, c = pfn, converting-delta, polluting-delta.
	EvFallbackSteal
	// EvDirectReclaim: a, b, c = region, want-pages, freed-pages.
	EvDirectReclaim
	// EvKswapd: a, b, c = region, want-pages, freed-pages.
	EvKswapd
	// EvCompactScan: a, b, c = order, blocks-scanned, found-pfn (all-ones
	// when the scanner came up empty).
	EvCompactScan
	// EvCompactSuccess: a, b, c = pfn, order, evacuation-cost-pages.
	EvCompactSuccess
	// EvCompactDefer: a, b, c = order, deferred-until-tick, budget-used.
	EvCompactDefer
	// EvCompactRequeue: a, b, c = pfn, order, queue-length.
	EvCompactRequeue
	// EvMigrateStart: a, b, c = pfn, order, path (0 = software, 1 = hw).
	EvMigrateStart
	// EvMigrateRetry: a, b, c = pfn, attempt, backoff-cycles.
	EvMigrateRetry
	// EvMigrateFallback: a, b, c = pfn, order, 0 (hardware degraded to
	// the software path).
	EvMigrateFallback
	// EvMigrateDefer: a, b, c = pfn, order, 0 (unmovable page parked for
	// a later retry).
	EvMigrateDefer
	// EvMigrateFail: a, b, c = pfn, attempts, path.
	EvMigrateFail
	// EvMigrateComplete: a, b, c = src-pfn, dst-pfn, cycles. The cycles
	// arg renders as the event duration in the Chrome trace.
	EvMigrateComplete
	// EvTLBShootdown: a, b, c = pfn, victims, unavailable-cycles — the
	// software path's synchronous IPI broadcast.
	EvTLBShootdown
	// EvShootdownFree: a, b, c = pfn, victims-avoided, busy-cycles — a
	// hardware migration completing with no IPIs (§3.3).
	EvShootdownFree
	// EvMoverBegin: a, b, c = src-pfn, dst-pfn, order.
	EvMoverBegin
	// EvMoverEnd: a, b, c = src-pfn, busy-cycles, ok (1 = success).
	EvMoverEnd
	// EvResizeEval: a, b, c = psi-unmovable-milli%, psi-movable-milli%,
	// target-boundary-pfn — Algorithm 1's inputs and verdict.
	EvResizeEval
	// EvResizeGrow: a, b, c = old-boundary, new-boundary, moved-pages.
	EvResizeGrow
	// EvResizeShrink: a, b, c = old-boundary, new-boundary, moved-pages.
	EvResizeShrink
	// EvResizeShrinkFail: a, b, c = old-boundary, wanted-boundary, 0.
	EvResizeShrinkFail
	// EvResizeAbort: a, b, c = boundary, 0, 0 (injected fault dropped the
	// resizer's evaluation slot).
	EvResizeAbort
	// EvLivelock: a, b, c = pfn-or-region, stalled-cycles, deadline — the
	// progress watchdog detected a retry loop burning cycles past its
	// deadline and escalated to the fallback/defer path.
	EvLivelock
	// EvCheckpoint: a, b, c = sequence, state-hash, chain-hash — a
	// crash-consistent snapshot of the full simulator state was taken.
	EvCheckpoint
	// EvAllocThrottle: a, b, c = order, round, stall-cycles — one round
	// of the pressure ladder's direct-reclaim throttle.
	EvAllocThrottle
	// EvAllocShed: a, b, c = order, migratetype, gate-psi-milli% — the
	// admission gate refused a new allocation under sustained pressure.
	EvAllocShed
	// EvAdmissionGate: a, b, c = shedding (1 = shut), gate-psi-milli%,
	// ticks-in-previous-state — the gate changed state.
	EvAdmissionGate
	// EvEmergencyShrink: a, b, c = want-pages, moved-pages, new-boundary
	// — the ladder's emergency unmovable-region shrink.
	EvEmergencyShrink
	// EvOOMKill: a, b, c = victim-index, badness, freed-pages — the OOM
	// killer freed a workload pool.
	EvOOMKill
	// EvTHPFallback: a, b, c = want-order, remaining-pages, 0 — a THP
	// allocation fell back to base pages.
	EvTHPFallback
	// EvShardCrash: a, b, c = shard, attempt, reason (0 = error, 1 =
	// panic, 2 = watchdog expiry) — a supervised fleet shard died.
	EvShardCrash
	// EvShardResume: a, b, c = shard, attempt, resumed-from (work units
	// already completed by the checkpoint the attempt restarts from).
	EvShardResume
	// EvShardQuarantine: a, b, c = shard, attempts, done — the supervisor
	// gave up on a shard after exhausting its retry budget.
	EvShardQuarantine
	// EvCacheHit: a, b, c = shard, cache-key, units — a shard's whole
	// result was served from the content-addressed result cache and its
	// simulation was skipped.
	EvCacheHit
	// EvCacheMiss: a, b, c = shard, cache-key, units — no usable cache
	// entry existed; the shard simulated and populated the cache.
	EvCacheMiss
	// EvCacheReject: a, b, c = shard, cache-key, reason (0 = corrupt or
	// tampered, 1 = stale schema) — a cache entry existed but failed
	// verification and was recomputed instead of trusted.
	EvCacheReject
	// EvScrubCorrupt: a, b, c = kind (0 = record, 1 = cell, 2 = cache
	// entry), cell-or-key, digest-low — the integrity scrubber found a
	// stored artifact that failed verification and quarantined it.
	EvScrubCorrupt
	// EvStoreDegraded: a, b, c = consecutive-failures, 0, 0 — the store's
	// write path failed past the retry budget and the daemon entered
	// read-only degraded mode.
	EvStoreDegraded
	// EvStoreHealed: a, b, c = probes-failed, 0, 0 — the store's probe
	// succeeded and the daemon left degraded mode.
	EvStoreHealed

	// NumEvents bounds the ID space.
	NumEvents
)

// Track groups events into the timeline rows the Chrome trace exporter
// renders: one Perfetto track per Track value.
type Track uint8

const (
	TrackAlloc Track = iota
	TrackReclaim
	TrackCompact
	TrackMigrate
	TrackResize
	TrackHW
	TrackRecovery
	TrackPressure
	TrackCache
	TrackStorage
	NumTracks
)

// String names the track (the Perfetto thread name).
func (t Track) String() string {
	switch t {
	case TrackAlloc:
		return "alloc"
	case TrackReclaim:
		return "reclaim"
	case TrackCompact:
		return "compaction"
	case TrackMigrate:
		return "migration"
	case TrackResize:
		return "resize"
	case TrackHW:
		return "hw-mover"
	case TrackRecovery:
		return "recovery"
	case TrackPressure:
		return "pressure"
	case TrackCache:
		return "cache"
	case TrackStorage:
		return "storage"
	}
	return "track?"
}

// EventMeta is the schema of one event id: its stable name, timeline
// track, argument names, and which argument (if any) is a cycle count
// that should render as the event's duration.
type EventMeta struct {
	Name  string
	Track Track
	Args  [3]string // empty string = argument unused
	// DurArg is the index (0..2) of the cycles argument rendered as a
	// duration in the Chrome trace, or -1 for instantaneous events.
	DurArg int
}

// Meta is the event schema, indexed by EventID. Names and argument
// names are stable: the text timeline and the JSON exporters are
// greppable contracts.
var Meta = [NumEvents]EventMeta{
	EvAlloc:            {Name: "alloc", Track: TrackAlloc, Args: [3]string{"pfn", "order", "mt"}, DurArg: -1},
	EvAllocFail:        {Name: "alloc-fail", Track: TrackAlloc, Args: [3]string{"order", "mt", "region"}, DurArg: -1},
	EvFree:             {Name: "free", Track: TrackAlloc, Args: [3]string{"pfn", "order", "mt"}, DurArg: -1},
	EvFallbackSteal:    {Name: "fallback-steal", Track: TrackAlloc, Args: [3]string{"pfn", "converting", "polluting"}, DurArg: -1},
	EvDirectReclaim:    {Name: "direct-reclaim", Track: TrackReclaim, Args: [3]string{"region", "want", "freed"}, DurArg: -1},
	EvKswapd:           {Name: "kswapd", Track: TrackReclaim, Args: [3]string{"region", "want", "freed"}, DurArg: -1},
	EvCompactScan:      {Name: "compact-scan", Track: TrackCompact, Args: [3]string{"order", "scanned", "found"}, DurArg: -1},
	EvCompactSuccess:   {Name: "compact-success", Track: TrackCompact, Args: [3]string{"pfn", "order", "cost"}, DurArg: -1},
	EvCompactDefer:     {Name: "compact-defer", Track: TrackCompact, Args: [3]string{"order", "until", "used"}, DurArg: -1},
	EvCompactRequeue:   {Name: "compact-requeue", Track: TrackCompact, Args: [3]string{"pfn", "order", "queued"}, DurArg: -1},
	EvMigrateStart:     {Name: "migrate-start", Track: TrackMigrate, Args: [3]string{"pfn", "order", "path"}, DurArg: -1},
	EvMigrateRetry:     {Name: "migrate-retry", Track: TrackMigrate, Args: [3]string{"pfn", "attempt", "backoff"}, DurArg: 2},
	EvMigrateFallback:  {Name: "migrate-fallback", Track: TrackMigrate, Args: [3]string{"pfn", "order", ""}, DurArg: -1},
	EvMigrateDefer:     {Name: "migrate-defer", Track: TrackMigrate, Args: [3]string{"pfn", "order", ""}, DurArg: -1},
	EvMigrateFail:      {Name: "migrate-fail", Track: TrackMigrate, Args: [3]string{"pfn", "attempts", "path"}, DurArg: -1},
	EvMigrateComplete:  {Name: "migrate-complete", Track: TrackMigrate, Args: [3]string{"src", "dst", "cycles"}, DurArg: 2},
	EvTLBShootdown:     {Name: "tlb-shootdown", Track: TrackMigrate, Args: [3]string{"pfn", "victims", "cycles"}, DurArg: 2},
	EvShootdownFree:    {Name: "shootdown-free", Track: TrackHW, Args: [3]string{"pfn", "victims_avoided", "cycles"}, DurArg: 2},
	EvMoverBegin:       {Name: "mover-begin", Track: TrackHW, Args: [3]string{"src", "dst", "order"}, DurArg: -1},
	EvMoverEnd:         {Name: "mover-end", Track: TrackHW, Args: [3]string{"src", "busy", "ok"}, DurArg: 1},
	EvResizeEval:       {Name: "resize-eval", Track: TrackResize, Args: [3]string{"psi_unmov_m%", "psi_mov_m%", "target"}, DurArg: -1},
	EvResizeGrow:       {Name: "resize-grow", Track: TrackResize, Args: [3]string{"old", "new", "pages"}, DurArg: -1},
	EvResizeShrink:     {Name: "resize-shrink", Track: TrackResize, Args: [3]string{"old", "new", "pages"}, DurArg: -1},
	EvResizeShrinkFail: {Name: "resize-shrink-fail", Track: TrackResize, Args: [3]string{"old", "wanted", ""}, DurArg: -1},
	EvResizeAbort:      {Name: "resize-abort", Track: TrackResize, Args: [3]string{"boundary", "", ""}, DurArg: -1},
	EvLivelock:         {Name: "livelock", Track: TrackRecovery, Args: [3]string{"pfn", "stalled", "deadline"}, DurArg: 1},
	EvCheckpoint:       {Name: "checkpoint", Track: TrackRecovery, Args: [3]string{"seq", "state_hash", "chain_hash"}, DurArg: -1},
	EvAllocThrottle:    {Name: "alloc-throttle", Track: TrackPressure, Args: [3]string{"order", "round", "stall"}, DurArg: 2},
	EvAllocShed:        {Name: "alloc-shed", Track: TrackPressure, Args: [3]string{"order", "mt", "gate_psi_m%"}, DurArg: -1},
	EvAdmissionGate:    {Name: "admission-gate", Track: TrackPressure, Args: [3]string{"shedding", "gate_psi_m%", "held"}, DurArg: -1},
	EvEmergencyShrink:  {Name: "emergency-shrink", Track: TrackPressure, Args: [3]string{"want", "moved", "boundary"}, DurArg: -1},
	EvOOMKill:          {Name: "oom-kill", Track: TrackPressure, Args: [3]string{"victim", "badness", "freed"}, DurArg: -1},
	EvTHPFallback:      {Name: "thp-fallback", Track: TrackPressure, Args: [3]string{"order", "remaining", ""}, DurArg: -1},
	EvShardCrash:       {Name: "shard-crash", Track: TrackRecovery, Args: [3]string{"shard", "attempt", "reason"}, DurArg: -1},
	EvShardResume:      {Name: "shard-resume", Track: TrackRecovery, Args: [3]string{"shard", "attempt", "resumed_from"}, DurArg: -1},
	EvShardQuarantine:  {Name: "shard-quarantine", Track: TrackRecovery, Args: [3]string{"shard", "attempts", "done"}, DurArg: -1},
	EvCacheHit:         {Name: "cache-hit", Track: TrackCache, Args: [3]string{"shard", "key", "units"}, DurArg: -1},
	EvCacheMiss:        {Name: "cache-miss", Track: TrackCache, Args: [3]string{"shard", "key", "units"}, DurArg: -1},
	EvCacheReject:      {Name: "cache-reject", Track: TrackCache, Args: [3]string{"shard", "key", "reason"}, DurArg: -1},
	EvScrubCorrupt:     {Name: "scrub-corrupt", Track: TrackStorage, Args: [3]string{"kind", "cell", "digest"}, DurArg: -1},
	EvStoreDegraded:    {Name: "store-degraded", Track: TrackStorage, Args: [3]string{"failures", "", ""}, DurArg: -1},
	EvStoreHealed:      {Name: "store-healed", Track: TrackStorage, Args: [3]string{"probes_failed", "", ""}, DurArg: -1},
}

// String returns the event's stable name.
func (id EventID) String() string {
	if id < NumEvents {
		return Meta[id].Name
	}
	return "event?"
}

// Record is one packed trace entry: the tick it happened on, the event
// id, and up to three uint64 arguments whose meaning Meta defines.
type Record struct {
	Tick    uint64
	A, B, C uint64
	ID      EventID
}

// Ring is the fixed-size tracepoint buffer. Writes never allocate and
// never fail: when the buffer is full the oldest record is overwritten,
// exactly like the kernel's ftrace ring in overwrite mode. A nil *Ring
// is the disabled tracer — Enabled() is the guard the hot paths branch
// on.
//
// Ring is not synchronized; the simulator is single-threaded per kernel,
// which is the same contract the rest of the kernel state has.
type Ring struct {
	recs []Record
	mask uint64
	head uint64 // total records ever written
	// sink, when set, receives a copy of every record as it is emitted
	// (see SetSink).
	sink func(Record)
	// Unit documents the Tick field's unit for exporters ("tick" for the
	// kernel's virtual milliseconds, "cycle" for hardware-level rings).
	Unit string
}

// NewRing creates a tracer holding the next power-of-two ≥ capacity
// records (minimum 64).
func NewRing(capacity int) *Ring {
	n := uint64(64)
	for n < uint64(capacity) {
		n <<= 1
	}
	return &Ring{recs: make([]Record, n), mask: n - 1, Unit: "tick"}
}

// Enabled reports whether a tracer is attached. Valid on nil receivers:
// the disabled path is this single branch.
func (r *Ring) Enabled() bool { return r != nil }

// Emit appends one record, overwriting the oldest when full.
func (r *Ring) Emit(tick uint64, id EventID, a, b, c uint64) {
	rec := &r.recs[r.head&r.mask]
	rec.Tick, rec.ID, rec.A, rec.B, rec.C = tick, id, a, b, c
	r.head++
	if r.sink != nil {
		r.sink(*rec)
	}
}

// SetSink attaches a live tap: every subsequent Emit also passes a copy
// of the record to sink, on the emitting goroutine. The sink must never
// block — it sits on the same hot path the ring was designed to keep
// cheap; the obsv event bus satisfies this with non-blocking sends that
// drop on slow subscribers. nil detaches (the default), restoring Emit
// to its store-and-bump fast path plus one predictable nil check.
//
// SetSink follows the Ring's single-writer contract: call it from the
// goroutine that emits, before concurrent readers exist (attach time).
func (r *Ring) SetSink(sink func(Record)) { r.sink = sink }

// Cap returns the buffer capacity in records.
func (r *Ring) Cap() int { return len(r.recs) }

// Len returns the number of records currently retained.
func (r *Ring) Len() int {
	if r.head < uint64(len(r.recs)) {
		return int(r.head)
	}
	return len(r.recs)
}

// Overwritten returns how many records were lost to wraparound.
func (r *Ring) Overwritten() uint64 {
	if r.head < uint64(len(r.recs)) {
		return 0
	}
	return r.head - uint64(len(r.recs))
}

// Snapshot appends the retained records, oldest first, to dst and
// returns it. Pass a reused buffer to keep exports allocation-free.
func (r *Ring) Snapshot(dst []Record) []Record {
	n := uint64(r.Len())
	start := r.head - n
	for i := start; i < r.head; i++ {
		dst = append(dst, r.recs[i&r.mask])
	}
	return dst
}

// Reset drops every record (the buffer is retained).
func (r *Ring) Reset() { r.head = 0 }
