package telemetry

import (
	"fmt"
	"math/bits"
)

// Tag is a bitmask grouping registered counters. The kernel tags its
// failure-handling counters TagRobustness; trace.SnapshotRobustness
// selects them by tag, so counter names exist in exactly one place —
// the registration table.
type Tag uint8

const (
	// TagRobustness marks the failure-handling counters the chaos
	// machinery snapshots.
	TagRobustness Tag = 1 << iota
)

// Counter is a monotonically increasing uint64 metric. It may own its
// storage (NewCounter) or be bound to an existing struct field
// (BindCounter), which lets hot paths keep their plain `field++`
// increments while the registry still sees every value.
type Counter struct {
	name string
	v    *uint64
	tags Tag
}

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

// Value returns the current count.
func (c *Counter) Value() uint64 { return *c.v }

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { *c.v += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { *c.v++ }

// Has reports whether the counter carries the tag.
func (c *Counter) Has(t Tag) bool { return c.tags&t != 0 }

// Gauge is a point-in-time reading backed by a function, evaluated at
// sampling time — free pages, PSI pressures, the region boundary.
type Gauge struct {
	name string
	fn   func() float64
}

// Name returns the registered name.
func (g *Gauge) Name() string { return g.name }

// Value evaluates the gauge now.
func (g *Gauge) Value() float64 { return g.fn() }

// Histogram bucket layout: values below histLinearMax are recorded
// exactly; above, each power-of-two octave is divided into histSub
// linear sub-buckets (log-linear, the layout HDR histograms and the
// kernel's latency histograms use). Relative error is bounded by
// 1/histSub ≈ 6 %.
const (
	histSub       = 16
	histSubBits   = 4 // log2(histSub)
	histLinearMax = histSub
	// histBuckets covers values up to 2^63: 16 exact buckets plus 60
	// octaves of 16 sub-buckets.
	histBuckets = histLinearMax + (64-histSubBits)*histSub
)

// Histogram is a log-linear distribution of uint64 observations —
// migration latencies in cycles, backoff prices. Observe is a few
// arithmetic ops and two increments; there is no locking (same
// single-threaded contract as Ring).
type Histogram struct {
	name     string
	buckets  [histBuckets]uint64
	count    uint64
	sum      uint64
	min, max uint64
}

// Name returns the registered name.
func (h *Histogram) Name() string { return h.name }

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[histBucketIndex(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// histBucketIndex maps a value to its bucket.
func histBucketIndex(v uint64) int {
	if v < histLinearMax {
		return int(v)
	}
	o := bits.Len64(v) - 1 // floor(log2 v), ≥ histSubBits
	sub := (v >> (uint(o) - histSubBits)) & (histSub - 1)
	return histLinearMax + (o-histSubBits)*histSub + int(sub)
}

// HistBucketHi returns the largest value mapping to the same bucket as
// lo — the inclusive upper bound a cumulative (Prometheus-style `le`)
// rendering of the bucket needs. Exact because observations are
// integers: the bound is the next bucket's lo minus one.
func HistBucketHi(lo uint64) uint64 {
	i := histBucketIndex(lo)
	if i+1 >= histBuckets {
		return ^uint64(0)
	}
	return HistBucketLo(i+1) - 1
}

// HistBucketLo returns the smallest value mapping to bucket i.
func HistBucketLo(i int) uint64 {
	if i < histLinearMax {
		return uint64(i)
	}
	o := uint((i-histLinearMax)/histSub) + histSubBits
	sub := uint64((i - histLinearMax) % histSub)
	return (1 << o) + sub<<(o-histSubBits)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the total of all observations.
func (h *Histogram) Sum() uint64 { return h.sum }

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() uint64 { return h.min }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the lower bound of the bucket holding the q-quantile
// (q in [0, 1]); 0 when empty.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen uint64
	for i, n := range h.buckets {
		seen += n
		if seen > rank {
			return HistBucketLo(i)
		}
	}
	return h.max
}

// Buckets appends the non-empty buckets as (lo, count) pairs to dst.
func (h *Histogram) Buckets(dst [][2]uint64) [][2]uint64 {
	for i, n := range h.buckets {
		if n != 0 {
			dst = append(dst, [2]uint64{HistBucketLo(i), n})
		}
	}
	return dst
}

// Registry is the typed metric namespace: counters, gauges, and
// histograms registered under unique names, in registration order. The
// Sampler snapshots it per tick; the exporters serialize it.
type Registry struct {
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
	names    map[string]struct{}
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]struct{})}
}

// reserve panics on duplicate registration — names are a schema, and a
// silent second registration would fork a counter's identity.
func (r *Registry) reserve(name string) {
	if _, dup := r.names[name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	r.names[name] = struct{}{}
}

// BindCounter registers a counter whose storage is the given field, so
// existing `field++` hot paths feed the registry with zero indirection.
func (r *Registry) BindCounter(name string, p *uint64, tags ...Tag) *Counter {
	r.reserve(name)
	c := &Counter{name: name, v: p}
	for _, t := range tags {
		c.tags |= t
	}
	r.counters = append(r.counters, c)
	return c
}

// NewCounter registers a counter with its own storage.
func (r *Registry) NewCounter(name string, tags ...Tag) *Counter {
	v := new(uint64)
	return r.BindCounter(name, v, tags...)
}

// GaugeFunc registers a function-backed gauge.
func (r *Registry) GaugeFunc(name string, fn func() float64) *Gauge {
	r.reserve(name)
	g := &Gauge{name: name, fn: fn}
	r.gauges = append(r.gauges, g)
	return g
}

// NewHistogram registers a histogram.
func (r *Registry) NewHistogram(name string) *Histogram {
	r.reserve(name)
	h := &Histogram{name: name}
	r.hists = append(r.hists, h)
	return h
}

// Counters returns the registered counters in registration order.
func (r *Registry) Counters() []*Counter { return r.counters }

// Gauges returns the registered gauges in registration order.
func (r *Registry) Gauges() []*Gauge { return r.gauges }

// Histograms returns the registered histograms in registration order.
func (r *Registry) Histograms() []*Histogram { return r.hists }

// Tagged returns the counters carrying the tag, in registration order.
func (r *Registry) Tagged(t Tag) []*Counter {
	var out []*Counter
	for _, c := range r.counters {
		if c.Has(t) {
			out = append(out, c)
		}
	}
	return out
}

// Counter looks a counter up by name (nil when absent).
func (r *Registry) Counter(name string) *Counter {
	for _, c := range r.counters {
		if c.name == name {
			return c
		}
	}
	return nil
}

// Histogram looks a histogram up by name (nil when absent).
func (r *Registry) Histogram(name string) *Histogram {
	for _, h := range r.hists {
		if h.name == name {
			return h
		}
	}
	return nil
}
