// The lock-free-reader snapshot API: the observability plane's read
// path into a Registry whose counters and histograms are plain (not
// atomic) uint64s written by exactly one goroutine.
//
// The problem it solves: an HTTP /metrics scrape runs on an arbitrary
// goroutine, but reading a counter concurrently with its owner's
// `field++` is a data race, and wrapping every hot-path increment in an
// atomic would tax the very paths BENCH_PR3 proved free. Instead the
// *writer* publishes: at a boundary it already owns (end of tick, a
// supervision event) it captures the whole registry into an immutable
// MetricsSnapshot and stores the pointer atomically. Readers only ever
// load that pointer — they never touch the registry — so a scrape can
// neither race nor perturb the hot path.
//
// The idle cost is one atomic load per writer boundary: Pump publishes
// only when a reader has raised the want flag, so a run that is never
// scraped pays a single predictable branch (the same budget as a
// disabled tracepoint), which BenchmarkTickScrapeUnderLoad gates
// against the BenchmarkTickTelemetryOn bar.
package telemetry

import (
	"sync/atomic"
	"time"
)

// CounterSample is one counter's value at capture time.
type CounterSample struct {
	Name  string
	Value uint64
}

// GaugeSample is one gauge's evaluation at capture time.
type GaugeSample struct {
	Name  string
	Value float64
}

// HistogramSample is one histogram's state at capture time: summary
// fields plus the non-empty log-linear buckets as (lo, count) pairs in
// ascending order (the Buckets layout).
type HistogramSample struct {
	Name     string
	Count    uint64
	Sum      uint64
	Min, Max uint64
	Buckets  [][2]uint64
}

// MetricsSnapshot is an immutable copy of a Registry. Once published it
// is never written again, so any number of goroutines may read it.
type MetricsSnapshot struct {
	// Tick is the writer's clock at capture (whatever unit the writer
	// pumps with — ticks, supervision events).
	Tick uint64
	// Gen increments per publication; readers use it to tell a fresh
	// snapshot from the one they already saw.
	Gen        uint64
	Counters   []CounterSample
	Gauges     []GaugeSample
	Histograms []HistogramSample
}

// Capture copies the registry's current state. It reads counters,
// evaluates gauges, and walks histogram buckets, so it must be called
// from the goroutine that owns the registry's writers — that is the
// whole point of the publisher indirection.
func (r *Registry) Capture(tick uint64) *MetricsSnapshot {
	s := &MetricsSnapshot{Tick: tick}
	s.Counters = make([]CounterSample, 0, len(r.counters))
	for _, c := range r.counters {
		s.Counters = append(s.Counters, CounterSample{Name: c.Name(), Value: c.Value()})
	}
	s.Gauges = make([]GaugeSample, 0, len(r.gauges))
	for _, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSample{Name: g.Name(), Value: g.Value()})
	}
	s.Histograms = make([]HistogramSample, 0, len(r.hists))
	for _, h := range r.hists {
		s.Histograms = append(s.Histograms, HistogramSample{
			Name: h.Name(), Count: h.Count(), Sum: h.Sum(),
			Min: h.Min(), Max: h.Max(), Buckets: h.Buckets(nil),
		})
	}
	return s
}

// Publisher mediates between a registry's single writer goroutine and
// any number of reader goroutines. The writer calls Pump (conditional)
// or Publish (unconditional); readers call Latest or Fresh. A nil
// *Publisher is the disabled observability plane: every method is a
// cheap no-op, mirroring the nil-Ring contract.
type Publisher struct {
	reg  *Registry
	snap atomic.Pointer[MetricsSnapshot]
	want atomic.Bool
	gen  atomic.Uint64
}

// NewPublisher wraps reg. The registry stays fully owned by its writer;
// the publisher only adds the publication channel.
func NewPublisher(reg *Registry) *Publisher {
	return &Publisher{reg: reg}
}

// Registry returns the wrapped registry (writer-side use only).
func (p *Publisher) Registry() *Registry {
	if p == nil {
		return nil
	}
	return p.reg
}

// Pump is the writer's per-boundary check: publish a fresh snapshot iff
// a reader asked for one since the last publication. The no-reader cost
// is one atomic load — cheap enough to sit next to Sampler.Sample on
// the tick path.
func (p *Publisher) Pump(tick uint64) {
	if p == nil || !p.want.Load() {
		return
	}
	p.want.Store(false)
	p.publish(tick)
}

// Publish unconditionally captures and publishes. Writer-side only;
// typical at attach time (a baseline snapshot) and end of run (the
// final totals).
func (p *Publisher) Publish(tick uint64) {
	if p == nil {
		return
	}
	p.publish(tick)
}

func (p *Publisher) publish(tick uint64) {
	s := p.reg.Capture(tick)
	s.Gen = p.gen.Add(1)
	p.snap.Store(s)
}

// Latest returns the most recently published snapshot (nil before the
// first publication). Safe from any goroutine.
func (p *Publisher) Latest() *MetricsSnapshot {
	if p == nil {
		return nil
	}
	return p.snap.Load()
}

// Fresh raises the want flag and waits up to wait for the writer to
// pump a new snapshot, then returns the latest one — which is the
// previous (possibly nil) snapshot when the writer did not come around
// in time. Scrapes therefore degrade to slightly stale data instead of
// ever blocking the writer. Safe from any goroutine.
func (p *Publisher) Fresh(wait time.Duration) *MetricsSnapshot {
	if p == nil {
		return nil
	}
	before := p.gen.Load()
	p.want.Store(true)
	deadline := time.Now().Add(wait)
	for p.gen.Load() == before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	return p.snap.Load()
}

// Counter returns the sample with the given name (nil when absent).
func (s *MetricsSnapshot) Counter(name string) *CounterSample {
	for i := range s.Counters {
		if s.Counters[i].Name == name {
			return &s.Counters[i]
		}
	}
	return nil
}

// Histogram returns the sample with the given name (nil when absent).
func (s *MetricsSnapshot) Histogram(name string) *HistogramSample {
	for i := range s.Histograms {
		if s.Histograms[i].Name == name {
			return &s.Histograms[i]
		}
	}
	return nil
}
