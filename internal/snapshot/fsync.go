// Durable write discipline, shared by every on-disk format this
// repository renames into place (CTGSNAP envelopes, CTGMANI manifests,
// CTGSHRD checkpoints, the service layer's CTGCAMP records, and — via
// SyncDir — the resultcache's CTGCACH entries).
//
// Temp-file-plus-rename alone guarantees the target path never holds a
// torn file, but it does not guarantee the rename itself survives power
// loss: the new directory entry lives in the parent directory's pages,
// and until those are flushed a crash can resurrect the old file (or no
// file at all) even though the rename "succeeded". The full discipline
// is therefore:
//
//  1. write the temp file,
//  2. fsync the temp file (its bytes reach stable storage),
//  3. rename over the target (atomic replacement),
//  4. fsync the parent directory (the new entry reaches stable storage).
//
// Filesystems that cannot fsync a directory handle (some network and
// FUSE filesystems return EINVAL/ENOTSUP) degrade gracefully: the
// rename is still atomic, we just lose the power-loss guarantee those
// filesystems never offered in the first place.
//
// The mechanics live in internal/vfs so the whole discipline sits on
// the process-wide FS seam (vfs.Active) and every step — write, fsync,
// rename, parent-directory fsync — is individually injectable by the
// storage-fault layer. The helpers here keep the historical snapshot
// API and add gob encoding on top.
package snapshot

import (
	"encoding/gob"
	"fmt"
	"io"

	"contiguitas/internal/vfs"
)

// SyncDir fsyncs the directory at dir, making previously completed
// renames inside it durable across power loss. An empty dir means the
// current directory. Filesystems that do not support fsync on
// directories (EINVAL/ENOTSUP) are treated as success — see the package
// comment.
func SyncDir(dir string) error {
	return vfs.Active().SyncDir(dir)
}

// writeDurableWith streams fill into path with the full
// crash-durability discipline on the active FS.
func writeDurableWith(path string, fill func(io.Writer) error) error {
	return vfs.WriteDurable(vfs.Active(), path, fill)
}

// writeDurable gob-encodes v to path with the durable-write discipline.
func writeDurable(path string, v any) error {
	return writeDurableWith(path, func(w io.Writer) error {
		if err := gob.NewEncoder(w).Encode(v); err != nil {
			return fmt.Errorf("snapshot: encode: %w", err)
		}
		return nil
	})
}

// WriteFileDurable writes data to path with the durable-write
// discipline: temp file, file fsync, rename, parent-directory fsync.
// Other packages use it for non-gob payloads (e.g. the service layer's
// canonical result files).
func WriteFileDurable(path string, data []byte) error {
	return vfs.WriteFileDurable(vfs.Active(), path, data)
}
