// Durable write discipline, shared by every on-disk format this
// repository renames into place (CTGSNAP envelopes, CTGMANI manifests,
// CTGSHRD checkpoints, the service layer's CTGCAMP records, and — via
// SyncDir — the resultcache's CTGCACH entries).
//
// Temp-file-plus-rename alone guarantees the target path never holds a
// torn file, but it does not guarantee the rename itself survives power
// loss: the new directory entry lives in the parent directory's pages,
// and until those are flushed a crash can resurrect the old file (or no
// file at all) even though the rename "succeeded". The full discipline
// is therefore:
//
//  1. write the temp file,
//  2. fsync the temp file (its bytes reach stable storage),
//  3. rename over the target (atomic replacement),
//  4. fsync the parent directory (the new entry reaches stable storage).
//
// Filesystems that cannot fsync a directory handle (some network and
// FUSE filesystems return EINVAL/ENOTSUP) degrade gracefully: the
// rename is still atomic, we just lose the power-loss guarantee those
// filesystems never offered in the first place.
package snapshot

import (
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// SyncDir fsyncs the directory at dir, making previously completed
// renames inside it durable across power loss. An empty dir means the
// current directory. Filesystems that do not support fsync on
// directories (EINVAL/ENOTSUP) are treated as success — see the package
// comment.
func SyncDir(dir string) error {
	if dir == "" {
		dir = "."
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil && !errors.Is(serr, syscall.EINVAL) && !errors.Is(serr, syscall.ENOTSUP) {
		return fmt.Errorf("snapshot: fsync dir %s: %w", dir, serr)
	}
	return cerr
}

// writeDurableWith creates the parent directory, streams fill into a
// same-directory temp file, fsyncs it, renames it over path, and fsyncs
// the parent directory — the full crash-durability discipline.
func writeDurableWith(path string, fill func(*os.File) error) error {
	dir := filepath.Dir(path)
	if dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := fill(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return SyncDir(dir)
}

// writeDurable gob-encodes v to path with the durable-write discipline.
func writeDurable(path string, v any) error {
	return writeDurableWith(path, func(f *os.File) error {
		if err := gob.NewEncoder(f).Encode(v); err != nil {
			return fmt.Errorf("snapshot: encode: %w", err)
		}
		return nil
	})
}

// WriteFileDurable writes data to path with the durable-write
// discipline: temp file, file fsync, rename, parent-directory fsync.
// Other packages use it for non-gob payloads (e.g. the service layer's
// canonical result files).
func WriteFileDurable(path string, data []byte) error {
	return writeDurableWith(path, func(f *os.File) error {
		_, err := f.Write(data)
		return err
	})
}
