package snapshot

import (
	"errors"
	"path/filepath"
	"testing"
)

func shardCkpt(campaign uint64, shard int, seq, done uint64, payload []byte, prev uint64) *ShardCheckpoint {
	c := &ShardCheckpoint{Campaign: campaign, Shard: shard, Seq: seq, Done: done, Payload: payload}
	c.Seal(prev)
	return c
}

func TestShardCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard-000.ctgshrd")
	c1 := shardCkpt(42, 0, 1, 3, []byte("three servers"), 0)
	if err := WriteShard(path, c1); err != nil {
		t.Fatal(err)
	}
	got, err := ReadShard(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Campaign != 42 || got.Seq != 1 || got.Done != 3 || string(got.Payload) != "three servers" {
		t.Fatalf("round trip mismatch: %+v", got)
	}

	// The chain links: checkpoint 2 seals over checkpoint 1's chain, and
	// the recomputation must notice a severed link.
	c2 := shardCkpt(42, 0, 2, 6, []byte("six servers"), c1.ChainHash)
	if c2.PrevChainHash != c1.ChainHash {
		t.Fatalf("chain not linked: prev %016x, want %016x", c2.PrevChainHash, c1.ChainHash)
	}
	if c2.ChainHash == c1.ChainHash {
		t.Fatal("chain did not advance")
	}
}

func TestShardCheckpointCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard.ctgshrd")

	c := shardCkpt(1, 0, 1, 2, []byte("payload"), 0)
	c.Payload = []byte("pAyload") // bit flip after sealing
	if err := WriteShard(path, c); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadShard(path); !errors.Is(err, ErrShardCheckpoint) {
		t.Fatalf("payload corruption -> %v, want ErrShardCheckpoint", err)
	}

	c = shardCkpt(1, 0, 1, 2, []byte("payload"), 0)
	c.Done = 99 // identity edit after sealing breaks the chain recomputation
	if err := WriteShard(path, c); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadShard(path); !errors.Is(err, ErrShardCheckpoint) {
		t.Fatalf("field edit -> %v, want ErrShardCheckpoint", err)
	}

	if _, err := ReadShard(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file read succeeded")
	}
}

func sealedManifest(campaign uint64, shards int) *Manifest {
	m := &Manifest{Campaign: campaign, Shards: make([]ManifestShard, shards)}
	for i := range m.Shards {
		m.Shards[i] = ManifestShard{Shard: i, Units: 10, Done: uint64(i), Seq: uint64(i), Chain: uint64(1000 + i), Attempts: uint64(1 + i)}
	}
	m.Seal()
	return m
}

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.ctgmani")
	m := sealedManifest(7, 3)
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Campaign != 7 || len(got.Shards) != 3 || got.Shards[2].Chain != 1002 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestManifestTamperDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.ctgmani")
	tamper := []struct {
		name string
		edit func(m *Manifest)
	}{
		{"flipped chain digest", func(m *Manifest) { m.Shards[1].Chain ^= 1 }},
		{"rolled-back attempt count", func(m *Manifest) { m.Shards[1].Attempts-- }},
		{"rolled-back progress", func(m *Manifest) { m.Shards[2].Done = 0; m.Shards[2].Seq = 0 }},
		{"status edit", func(m *Manifest) { m.Shards[0].Status = ShardDone }},
		{"campaign swap", func(m *Manifest) { m.Campaign++ }},
	}
	for _, tc := range tamper {
		m := sealedManifest(7, 3)
		tc.edit(m) // after Seal: SelfHash no longer covers the edit
		if err := WriteManifest(path, m); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadManifest(path); !errors.Is(err, ErrManifestTamper) {
			t.Fatalf("%s -> %v, want ErrManifestTamper", tc.name, err)
		}
	}

	// Shard records must be indexed by position even when resealed.
	m := sealedManifest(7, 3)
	m.Shards[0].Shard = 2
	m.Seal()
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(path); !errors.Is(err, ErrManifestTamper) {
		t.Fatalf("record index swap -> want ErrManifestTamper")
	}
}

func TestVerifyShardAgainstManifest(t *testing.T) {
	m := &Manifest{Campaign: 9, Shards: make([]ManifestShard, 2)}
	ck := shardCkpt(9, 1, 3, 5, []byte("p"), 77)
	m.Shards[0] = ManifestShard{Shard: 0}
	m.Shards[1] = ManifestShard{Shard: 1, Units: 8, Done: 5, Seq: 3, Chain: ck.ChainHash}
	m.Seal()

	if err := VerifyShardAgainstManifest(m, ck); err != nil {
		t.Fatalf("agreeing checkpoint rejected: %v", err)
	}

	wrongCampaign := shardCkpt(10, 1, 3, 5, []byte("p"), 77)
	if err := VerifyShardAgainstManifest(m, wrongCampaign); !errors.Is(err, ErrCampaignMismatch) {
		t.Fatalf("campaign mismatch -> %v, want ErrCampaignMismatch", err)
	}

	stale := shardCkpt(9, 1, 2, 4, []byte("old"), 0)
	if err := VerifyShardAgainstManifest(m, stale); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("stale checkpoint -> %v, want ErrShardMismatch", err)
	}

	outOfRange := shardCkpt(9, 5, 1, 1, []byte("p"), 0)
	if err := VerifyShardAgainstManifest(m, outOfRange); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("out-of-range shard -> %v, want ErrShardMismatch", err)
	}
}
