package snapshot

import (
	"fmt"

	"contiguitas/internal/fault"
	"contiguitas/internal/kernel"
	"contiguitas/internal/pressure"
	"contiguitas/internal/telemetry"
	"contiguitas/internal/workload"
)

// Checkpointer takes chained checkpoints of a running machine and
// maintains the rolling on-disk copy. Each Take seals a fresh envelope
// against the running chain digest and (when Path is set) atomically
// replaces the checkpoint file, so the file always holds the newest
// complete checkpoint.
type Checkpointer struct {
	// Path is the checkpoint file ("" keeps checkpoints in memory only).
	Path string

	seq   uint64
	chain uint64
	last  *Envelope
}

// Take checkpoints the machine at the EndTick quiesce boundary. runner
// and inj may be nil (kernel-only runs, faultless runs). The checkpoint
// is announced on the kernel's tracepoint ring as an EvCheckpoint
// carrying (seq, state hash, chain hash).
func (c *Checkpointer) Take(tick uint64, k *kernel.Kernel, r *workload.Runner, inj *fault.Injector) (*Envelope, error) {
	e := &Envelope{
		Seq:  c.seq,
		Tick: tick,
		Machine: Machine{
			Kernel: k.ExportState(),
			Faults: inj.State(),
		},
	}
	if r != nil {
		e.Machine.Runner = r.ExportState()
	}
	c.chain = e.Seal(c.chain)
	c.seq++
	if tp := k.Tracer(); tp.Enabled() {
		tp.Emit(tick, telemetry.EvCheckpoint, e.Seq, e.StateHash, e.ChainHash)
	}
	if c.Path != "" {
		if err := Write(c.Path, e); err != nil {
			return nil, err
		}
	}
	c.last = e
	return e, nil
}

// Last returns the most recent checkpoint (nil before the first Take).
func (c *Checkpointer) Last() *Envelope { return c.last }

// Chain returns the running chain digest after the last Take.
func (c *Checkpointer) Chain() uint64 { return c.chain }

// SetChain seeds the running chain digest and sequence number — used
// when resuming, so checkpoints taken after the restore extend the
// original chain instead of starting a new one.
func (c *Checkpointer) SetChain(seq, chain uint64) {
	c.seq = seq
	c.chain = chain
}

// RestoreChaos rebuilds the full machine a chaos checkpoint captured:
// kernel, workload runner, and fault injector, re-wired together
// (injector into the kernel config with its clock re-bound, runner over
// the restored live table). opts must be the options of the original
// soak — the machine fingerprint is validated by kernel.Restore.
func RestoreChaos(opts workload.ChaosOptions, e *Envelope) (*kernel.Kernel, *workload.Runner, *fault.Injector, error) {
	if e.Machine.Runner == nil {
		return nil, nil, nil, fmt.Errorf("snapshot: chaos restore needs runner state (seq %d has none)", e.Seq)
	}
	inj := fault.FromState(e.Machine.Faults)
	if inj == nil {
		// A chaos soak always runs with an injector, armed or not.
		inj = fault.New(opts.Seed)
	}
	cfg := workload.ChaosKernelConfig(opts)
	cfg.Faults = inj
	k, err := kernel.Restore(cfg, e.Machine.Kernel)
	if err != nil {
		return nil, nil, nil, err
	}
	r, err := workload.RestoreRunner(k, opts.Profile, opts.Seed+1, e.Machine.Runner)
	if err != nil {
		return nil, nil, nil, err
	}
	return k, r, inj, nil
}

// ResumeChaos restores the machine from e and continues the soak to
// completion. Kill and snapshot options are cleared unless the caller
// re-arms them on the options it passes.
func ResumeChaos(opts workload.ChaosOptions, e *Envelope) (*workload.ChaosReport, error) {
	k, r, inj, err := RestoreChaos(opts, e)
	if err != nil {
		return nil, err
	}
	opts.Resume = &workload.ChaosResume{K: k, Runner: r, Injector: inj, StartTick: e.Tick}
	opts.KillAtTick = 0
	return workload.RunChaos(opts)
}

// KillResumeResult is the outcome of one kill-and-resume equivalence
// experiment.
type KillResumeResult struct {
	// Golden is the uninterrupted run; Killed the run crashed at
	// KillAtTick; Resumed the continuation restored from the last
	// checkpoint the killed run wrote.
	Golden, Killed, Resumed *workload.ChaosReport
	// Checkpoint is the envelope the resume started from.
	Checkpoint *Envelope
	// Match reports whether the resumed run's final state hash, full
	// counter set, and OOM-kill history equal the golden run's.
	Match bool
	// Violations aggregates every invariant failure either completed run
	// observed (golden and resumed; the killed run stops before its first
	// checkpoint when killAt < every). A non-empty list must fail the
	// caller even when Match holds — identical corruption is still
	// corruption.
	Violations []string
}

// KillAndResume runs the kill-and-resume equivalence experiment: a
// golden uninterrupted soak (no checkpointing — proving checkpoints are
// observation-only), then the same soak checkpointing every
// `every` ticks and killed at `killAt`, then a resume from the killed
// run's last on-disk checkpoint. The resumed run must land on exactly
// the golden run's final state hash and counters.
func KillAndResume(opts workload.ChaosOptions, every, killAt uint64, path string) (*KillResumeResult, error) {
	if every == 0 || killAt < every {
		return nil, fmt.Errorf("snapshot: kill-and-resume needs every>0 and killAt>=every (got %d, %d)", every, killAt)
	}
	res := &KillResumeResult{}

	gopts := opts
	gopts.SnapshotEvery, gopts.OnSnapshot, gopts.KillAtTick, gopts.Resume = 0, nil, 0, nil
	golden, err := workload.RunChaos(gopts)
	if err != nil {
		return nil, fmt.Errorf("snapshot: golden run: %w", err)
	}
	res.Golden = golden

	cp := &Checkpointer{Path: path}
	var cpErr error
	kopts := opts
	kopts.Resume = nil
	kopts.SnapshotEvery = every
	kopts.OnSnapshot = func(tick uint64, k *kernel.Kernel, r *workload.Runner, inj *fault.Injector) {
		if _, err := cp.Take(tick, k, r, inj); err != nil && cpErr == nil {
			cpErr = err
		}
	}
	kopts.KillAtTick = killAt
	killed, err := workload.RunChaos(kopts)
	if err != nil {
		return nil, fmt.Errorf("snapshot: killed run: %w", err)
	}
	if cpErr != nil {
		return nil, fmt.Errorf("snapshot: checkpointing: %w", cpErr)
	}
	res.Killed = killed

	e, err := Read(path)
	if err != nil {
		return nil, err
	}
	res.Checkpoint = e

	ropts := opts
	ropts.SnapshotEvery, ropts.OnSnapshot, ropts.KillAtTick = 0, nil, 0
	resumed, err := ResumeChaos(ropts, e)
	if err != nil {
		return nil, fmt.Errorf("snapshot: resume: %w", err)
	}
	res.Resumed = resumed

	res.Match = resumed.FinalStateHash == golden.FinalStateHash &&
		resumed.FinalCounters == golden.FinalCounters &&
		sameKills(resumed.OOMHistory, golden.OOMHistory)
	for _, rep := range []*workload.ChaosReport{golden, killed, resumed} {
		res.Violations = append(res.Violations, rep.Violations...)
	}
	return res, nil
}

// sameKills compares two OOM-kill logs entry by entry.
func sameKills(a, b []pressure.Kill) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
