package snapshot

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"contiguitas/internal/fault"
	"contiguitas/internal/kernel"
	"contiguitas/internal/stats"
	"contiguitas/internal/workload"
)

// propConfig is the small machine the property tests drive: big enough
// for real compaction/resize traffic, small enough to checkpoint in
// milliseconds.
func propConfig(withFaults bool, seed uint64) (kernel.Config, *fault.Injector) {
	cfg := kernel.DefaultConfig(kernel.ModeContiguitas)
	cfg.MemBytes = 128 << 20
	cfg.InitialUnmovableBytes = 16 << 20
	cfg.MinUnmovableBytes = 4 << 20
	cfg.MaxUnmovableBytes = 64 << 20
	cfg.HWMover = kernel.NewAnalyticMover()
	cfg.MigrateRetryLimit = 1
	cfg.LivelockCycleDeadline = 1 << 20
	cfg.Seed = seed
	inj := fault.New(seed)
	if withFaults {
		inj.Arm(fault.PointHWMover, fault.Trigger{Prob: 0.05})
		inj.Arm(fault.PointCompactCarve, fault.Trigger{Prob: 0.03})
		inj.Arm(fault.PointSWMigrate, fault.Trigger{Prob: 0.02})
		inj.Arm(fault.PointRegionResize, fault.Trigger{Prob: 0.03})
	}
	cfg.Faults = inj
	return cfg, inj
}

func propProfile() workload.Profile {
	p := workload.Web()
	p.UserFrac = 0.70
	p.PageCacheFrac = 0.08
	return p
}

func machineHash(k *kernel.Kernel, r *workload.Runner, inj *fault.Injector) uint64 {
	return HashMachine(&Machine{Kernel: k.ExportState(), Runner: r.ExportState(), Faults: inj.State()})
}

// TestEnvelopeRoundTrip proves a sealed envelope survives the disk:
// write, read, verify, restore, and land on the identical machine hash.
func TestEnvelopeRoundTrip(t *testing.T) {
	cfg, inj := propConfig(true, 21)
	k := kernel.New(cfg)
	r := workload.NewRunner(k, propProfile(), cfg.Seed+1)
	r.Run(40)

	path := filepath.Join(t.TempDir(), "snap.bin")
	cp := &Checkpointer{Path: path}
	e, err := cp.Take(k.Tick(), k, r, inj)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.StateHash != e.StateHash || got.ChainHash != e.ChainHash || got.Seq != e.Seq {
		t.Fatalf("read-back envelope differs: %+v vs %+v", got, e)
	}

	k2, r2, inj2, err := restoreProp(cfg, got)
	if err != nil {
		t.Fatal(err)
	}
	if h := machineHash(k2, r2, inj2); h != e.StateHash {
		t.Fatalf("restored machine hash %016x, checkpoint %016x", h, e.StateHash)
	}
}

// restoreProp rebuilds the property-test machine from an envelope.
func restoreProp(cfg kernel.Config, e *Envelope) (*kernel.Kernel, *workload.Runner, *fault.Injector, error) {
	inj := fault.FromState(e.Machine.Faults)
	rcfg := cfg
	rcfg.Faults = inj
	k, err := kernel.Restore(rcfg, e.Machine.Kernel)
	if err != nil {
		return nil, nil, nil, err
	}
	r, err := workload.RestoreRunner(k, propProfile(), cfg.Seed+1, e.Machine.Runner)
	if err != nil {
		return nil, nil, nil, err
	}
	return k, r, inj, nil
}

// TestCheckpointRestoreProperty is the satellite property test: for
// random workload prefixes, checkpoint → restore → run N ticks is
// state-hash-identical to the uninterrupted run, with fault injection
// active across the checkpoint boundary (and without).
func TestCheckpointRestoreProperty(t *testing.T) {
	rng := stats.NewRNG(2026)
	for trial := 0; trial < 4; trial++ {
		withFaults := trial%2 == 0
		seed := uint64(100 + trial)
		prefix := 10 + rng.Intn(40)
		suffix := uint64(25)

		cfg, inj := propConfig(withFaults, seed)
		k := kernel.New(cfg)
		r := workload.NewRunner(k, propProfile(), cfg.Seed+1)
		r.Run(uint64(prefix))

		cp := &Checkpointer{}
		e, err := cp.Take(k.Tick(), k, r, inj)
		if err != nil {
			t.Fatalf("trial %d: checkpoint: %v", trial, err)
		}

		// Golden: the same machine keeps running uninterrupted.
		r.Run(suffix)
		golden := machineHash(k, r, inj)

		// Restored: rebuilt from the checkpoint, runs the same suffix.
		k2, r2, inj2, err := restoreProp(cfg, e)
		if err != nil {
			t.Fatalf("trial %d (faults=%v, prefix=%d): restore: %v", trial, withFaults, prefix, err)
		}
		r2.Run(suffix)
		resumed := machineHash(k2, r2, inj2)

		if golden != resumed {
			t.Fatalf("trial %d (faults=%v, prefix=%d): golden %016x, resumed %016x",
				trial, withFaults, prefix, golden, resumed)
		}
	}
}

// TestChainHashLinksCheckpoints proves the chain digest depends on the
// whole checkpoint history, not just the newest state.
func TestChainHashLinksCheckpoints(t *testing.T) {
	cfg, inj := propConfig(false, 9)
	k := kernel.New(cfg)
	r := workload.NewRunner(k, propProfile(), cfg.Seed+1)

	cp := &Checkpointer{}
	var chains []uint64
	for i := 0; i < 3; i++ {
		r.Run(10)
		e, err := cp.Take(k.Tick(), k, r, inj)
		if err != nil {
			t.Fatal(err)
		}
		chains = append(chains, e.ChainHash)
	}
	if chains[0] == chains[1] || chains[1] == chains[2] {
		t.Fatal("chain digest did not advance across checkpoints")
	}
	// A chain seeded differently diverges even over identical state.
	alt := &Checkpointer{}
	alt.SetChain(7, 0xdeadbeef)
	e, err := alt.Take(k.Tick(), k, r, inj)
	if err != nil {
		t.Fatal(err)
	}
	if e.ChainHash == chains[2] {
		t.Fatal("chain digest ignores its history")
	}
}

// TestReadRejectsTampering covers the decode-side validation: bad
// magic, unsupported version, and any state edit after sealing must all
// be refused.
func TestReadRejectsTampering(t *testing.T) {
	cfg, inj := propConfig(false, 13)
	k := kernel.New(cfg)
	r := workload.NewRunner(k, propProfile(), cfg.Seed+1)
	r.Run(15)

	dir := t.TempDir()
	seal := func() *Envelope {
		e := &Envelope{Seq: 0, Tick: k.Tick(), Machine: Machine{
			Kernel: k.ExportState(), Runner: r.ExportState(), Faults: inj.State(),
		}}
		e.Seal(0)
		return e
	}

	good := filepath.Join(dir, "good.bin")
	if err := Write(good, seal()); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(good); err != nil {
		t.Fatalf("clean snapshot rejected: %v", err)
	}

	e := seal()
	e.Magic = "NOTASNAP"
	p := filepath.Join(dir, "magic.bin")
	if err := Write(p, e); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(p); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: got %v", err)
	}

	e = seal()
	e.Version = 99
	p = filepath.Join(dir, "version.bin")
	if err := Write(p, e); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(p); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: got %v", err)
	}

	e = seal()
	e.Machine.Kernel.Tick++ // state edited after sealing
	p = filepath.Join(dir, "state.bin")
	if err := Write(p, e); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(p); !errors.Is(err, ErrHashMismatch) {
		t.Fatalf("tampered state: got %v", err)
	}

	e = seal()
	e.ChainHash ^= 1
	p = filepath.Join(dir, "chain.bin")
	if err := Write(p, e); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(p); !errors.Is(err, ErrHashMismatch) {
		t.Fatalf("tampered chain: got %v", err)
	}
}

// killResumeOpts is the scaled-down chaos soak the equivalence tests
// run three times each (golden, killed, resumed).
func killResumeOpts(withFaults bool) workload.ChaosOptions {
	opts := workload.DefaultChaosOptions()
	opts.MemBytes = 128 << 20
	opts.Ticks = 120
	opts.RecoveryTicks = 30
	opts.CheckEvery = 40
	if !withFaults {
		opts.MoverFaultRate = 0
		opts.CarveFaultRate = 0
		opts.SWFaultRate = 0
		opts.ResizeFaultRate = 0
	}
	return opts
}

// TestKillAndResumeEquivalence is the acceptance experiment: kill a
// fault-injected soak mid-run, resume from its last checkpoint, and
// require the final state hash and full counter set to equal an
// uninterrupted golden run's.
func TestKillAndResumeEquivalence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chaos.snap")
	res, err := KillAndResume(killResumeOpts(true), 25, 75, path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Killed.Killed {
		t.Fatal("killed run did not report Killed")
	}
	if res.Checkpoint.Tick != 75 {
		t.Fatalf("resumed from tick %d, want the tick-75 checkpoint", res.Checkpoint.Tick)
	}
	if !res.Match {
		t.Fatalf("resumed run diverged: golden hash %016x counters %+v, resumed hash %016x counters %+v",
			res.Golden.FinalStateHash, res.Golden.FinalCounters,
			res.Resumed.FinalStateHash, res.Resumed.FinalCounters)
	}
}

// TestKillAndResumeEquivalenceNoFaults runs the same experiment with
// every fault point disarmed.
func TestKillAndResumeEquivalenceNoFaults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chaos.snap")
	res, err := KillAndResume(killResumeOpts(false), 30, 60, path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match {
		t.Fatalf("faultless resumed run diverged: golden %016x, resumed %016x",
			res.Golden.FinalStateHash, res.Resumed.FinalStateHash)
	}
}

// TestKillResumeSurfacesViolations is the regression test for the
// invariant-violation exit path: a deterministic mid-soak corruption
// (a live frame pinned behind the live table's back) must surface in
// KillResumeResult.Violations so the chaos driver can exit non-zero —
// even when golden and resumed runs corrupt identically and Match
// still holds.
func TestKillResumeSurfacesViolations(t *testing.T) {
	opts := killResumeOpts(false)
	// Corrupt after the kill point: a corruption the checkpoint itself
	// captures is already refused at restore time (the envelope's state
	// fails CheckInvariants), which is a different guarantee than the
	// one under test here.
	opts.Hook = func(tick uint64, k *kernel.Kernel) {
		if tick < 70 {
			return
		}
		// Deterministic corruption: pin a live unpinned movable head
		// directly in page metadata. The live table still says unpinned,
		// so CheckInvariants must trip at the next checkpoint. Re-applied
		// each tick because workload churn can free or migrate the frame
		// (both of which restamp the metadata and erase the corruption).
		pm := k.PM()
		for pfn := k.Boundary(); pfn < pm.NPages; pfn++ {
			if pm.IsHead(pfn) && !pm.IsFree(pfn) && !pm.IsPinned(pfn) {
				pm.SetPinned(pfn, true)
				return
			}
		}
		t.Fatalf("no live movable head to corrupt at tick %d", tick)
	}
	path := filepath.Join(t.TempDir(), "chaos.snap")
	res, err := KillAndResume(opts, 30, 60, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("mid-soak corruption did not surface any violation")
	}
	for _, v := range res.Violations {
		if !strings.Contains(v, "pinned") {
			t.Fatalf("unexpected violation kind: %s", v)
		}
	}
	if len(res.Golden.Violations) == 0 || len(res.Resumed.Violations) == 0 {
		t.Fatalf("corruption must trip both completed runs: golden %d, resumed %d",
			len(res.Golden.Violations), len(res.Resumed.Violations))
	}
}
