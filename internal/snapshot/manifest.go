// Campaign manifests and per-shard checkpoints: the on-disk state of a
// supervised sharded campaign (internal/supervise driving internal/fleet).
//
// A campaign directory holds one CTGMANI manifest plus one CTGSHRD
// checkpoint file per shard. Both reuse the CTGSNAP machinery: atomic
// temp-file-plus-rename writes, canonical FNV digests over every field,
// hash-chained shard checkpoints (chain_n = mix(chain_{n-1}, payload
// digest)), and typed sentinel errors for every way a file can lie.
//
// Trust model on resume, mirroring the envelope rules:
//
//   - a shard checkpoint must carry the campaign fingerprint, an intact
//     payload digest, and a chain value that recomputes from its fields
//     (ErrShardCheckpoint otherwise);
//   - the manifest must recompute to its own self-digest — flipping a
//     chain value, rolling back an attempt count, or editing a status
//     byte is detected before any shard state is trusted
//     (ErrManifestTamper);
//   - manifest and shard checkpoint must agree on (seq, chain, done) —
//     a stale or swapped checkpoint file is rejected (ErrShardMismatch);
//   - the campaign fingerprint must match the resuming configuration
//     (ErrCampaignMismatch).
package snapshot

import (
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"

	"contiguitas/internal/vfs"
)

// Magics and versions of the campaign formats.
const (
	ShardMagic      = "CTGSHRD"
	ManifestMagic   = "CTGMANI"
	ManifestVersion = 1
)

// Typed campaign decode/resume failures.
var (
	// ErrManifestTamper reports a manifest whose recorded self-digest
	// disagrees with its fields — corruption or tampering.
	ErrManifestTamper = errors.New("snapshot: manifest integrity check failed")
	// ErrShardCheckpoint reports a shard checkpoint whose payload digest
	// or chain value does not recompute from its contents.
	ErrShardCheckpoint = errors.New("snapshot: shard checkpoint corrupt")
	// ErrShardMismatch reports a shard checkpoint that is internally
	// consistent but disagrees with the manifest record for its shard —
	// a stale or swapped file.
	ErrShardMismatch = errors.New("snapshot: shard checkpoint does not match manifest")
	// ErrCampaignMismatch reports campaign state written by a different
	// campaign configuration than the one resuming it.
	ErrCampaignMismatch = errors.New("snapshot: campaign fingerprint mismatch")
	// ErrNoManifest reports a resume target with no usable campaign
	// manifest: the file is missing or empty. Distinct from
	// ErrManifestTamper (a manifest exists but lies) so callers can
	// diagnose "not a campaign state directory" — a usage error — apart
	// from corruption.
	ErrNoManifest = errors.New("snapshot: campaign manifest missing or empty")
)

// ShardCheckpoint is one shard's durable progress record. Payload is
// owner-defined (the fleet stores its gob-encoded samples); the
// checkpoint layer sees only bytes and digests them.
type ShardCheckpoint struct {
	Magic   string
	Version uint32
	// Campaign fingerprints the campaign configuration (FNV over the
	// config fields); checkpoints never resume across configurations.
	Campaign uint64
	Shard    int
	// Seq numbers this shard's checkpoints (1-based); Done counts the
	// work units (servers) completed at the quiesce point.
	Seq  uint64
	Done uint64
	// PayloadHash digests Payload; PrevChainHash/ChainHash hash-chain
	// the shard's checkpoint history exactly like Envelope does.
	PayloadHash   uint64
	PrevChainHash uint64
	ChainHash     uint64
	Payload       []byte
}

// shardMix folds a shard checkpoint's identity and payload digest into
// the running chain, binding shard index, sequence, and progress — not
// just the payload bytes — into every link.
func (c *ShardCheckpoint) shardMix() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range []uint64{c.PrevChainHash, c.Campaign, uint64(c.Shard), c.Seq, c.Done, c.PayloadHash} {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Seal fills the digest fields from the payload and the previous chain
// value, returning the new chain value.
func (c *ShardCheckpoint) Seal(prevChain uint64) uint64 {
	c.Magic = ShardMagic
	c.Version = ManifestVersion
	h := fnv.New64a()
	h.Write(c.Payload)
	c.PayloadHash = h.Sum64()
	c.PrevChainHash = prevChain
	c.ChainHash = c.shardMix()
	return c.ChainHash
}

// WriteShard encodes the sealed checkpoint to path atomically and
// durably (temp file, file fsync, rename, parent-directory fsync).
func WriteShard(path string, c *ShardCheckpoint) error {
	return writeDurable(path, c)
}

// ReadShard decodes and verifies the shard checkpoint at path: magic,
// version, payload digest, and chain recomputation are all checked.
func ReadShard(path string) (*ShardCheckpoint, error) {
	c := &ShardCheckpoint{}
	if err := readGob(path, c); err != nil {
		return nil, err
	}
	if c.Magic != ShardMagic {
		return nil, fmt.Errorf("%w: bad magic %q in %s", ErrShardCheckpoint, c.Magic, path)
	}
	if c.Version != ManifestVersion {
		return nil, fmt.Errorf("%w: version %d (support %d) in %s", ErrShardCheckpoint, c.Version, ManifestVersion, path)
	}
	h := fnv.New64a()
	h.Write(c.Payload)
	if got := h.Sum64(); got != c.PayloadHash {
		return nil, fmt.Errorf("%w: payload digest %016x, recorded %016x in %s",
			ErrShardCheckpoint, got, c.PayloadHash, path)
	}
	if got := c.shardMix(); got != c.ChainHash {
		return nil, fmt.Errorf("%w: recomputed chain %016x, recorded %016x in %s",
			ErrShardCheckpoint, got, c.ChainHash, path)
	}
	return c, nil
}

// ShardStatus is a manifest record's lifecycle state.
type ShardStatus uint8

const (
	// ShardPending: not finished; Done units are checkpointed.
	ShardPending ShardStatus = iota
	// ShardDone: all units finished and checkpointed.
	ShardDone
	// ShardQuarantined: the supervisor gave up on this shard.
	ShardQuarantined
)

// ManifestShard is one shard's manifest record: where its checkpoint
// chain currently ends and how hard it has been to get there.
type ManifestShard struct {
	Shard int
	// Units is the shard's total work size; Done of them are completed
	// at checkpoint Seq whose chain digest is Chain (all zero before the
	// first checkpoint).
	Units uint64
	Done  uint64
	Seq   uint64
	Chain uint64
	// Attempts counts attempts started across the whole campaign,
	// surviving process restarts.
	Attempts uint64
	Status   ShardStatus
}

// Manifest is the campaign's durable index: one record per shard plus a
// self-digest over every field.
type Manifest struct {
	Magic    string
	Version  uint32
	Campaign uint64
	Shards   []ManifestShard
	SelfHash uint64
}

// hash computes the manifest self-digest over every field but SelfHash.
func (m *Manifest) hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(vs ...uint64) {
		for _, v := range vs {
			for i := 0; i < 8; i++ {
				buf[i] = byte(v >> (8 * i))
			}
			h.Write(buf[:])
		}
	}
	h.Write([]byte(m.Magic))
	w(uint64(m.Version), m.Campaign, uint64(len(m.Shards)))
	for _, s := range m.Shards {
		w(uint64(s.Shard), s.Units, s.Done, s.Seq, s.Chain, s.Attempts, uint64(s.Status))
	}
	return h.Sum64()
}

// Seal stamps magic, version, and the self-digest.
func (m *Manifest) Seal() {
	m.Magic = ManifestMagic
	m.Version = ManifestVersion
	m.SelfHash = m.hash()
}

// WriteManifest encodes the sealed manifest to path atomically and
// durably (temp file, file fsync, rename, parent-directory fsync).
func WriteManifest(path string, m *Manifest) error {
	return writeDurable(path, m)
}

// ReadManifest decodes and verifies the manifest at path. Any field
// edit — a flipped chain digest, a rolled-back attempt count, a changed
// status — fails the self-digest and is rejected with ErrManifestTamper.
func ReadManifest(path string) (*Manifest, error) {
	switch fi, err := vfs.Active().Stat(path); {
	case errors.Is(err, fs.ErrNotExist):
		// Keep the fs sentinel in the chain so callers probing for "any
		// state at all" via fs.ErrNotExist still work.
		return nil, fmt.Errorf("%w: %s: %w", ErrNoManifest, path, err)
	case err != nil:
		return nil, err
	case fi.Size() == 0:
		return nil, fmt.Errorf("%w: %s is empty", ErrNoManifest, path)
	}
	m := &Manifest{}
	if err := readGob(path, m); err != nil {
		return nil, err
	}
	if m.Magic != ManifestMagic {
		return nil, fmt.Errorf("%w: bad magic %q in %s", ErrManifestTamper, m.Magic, path)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("%w: version %d (support %d) in %s", ErrManifestTamper, m.Version, ManifestVersion, path)
	}
	if got := m.hash(); got != m.SelfHash {
		return nil, fmt.Errorf("%w: recomputed digest %016x, recorded %016x in %s",
			ErrManifestTamper, got, m.SelfHash, path)
	}
	for i, s := range m.Shards {
		if s.Shard != i {
			return nil, fmt.Errorf("%w: record %d claims shard %d in %s", ErrManifestTamper, i, s.Shard, path)
		}
	}
	return m, nil
}

// VerifyShardAgainstManifest cross-checks an intact shard checkpoint
// against the manifest record for its shard: campaign fingerprints and
// the (seq, chain, done) triple must agree. This is the resume-time
// "state hash versus manifest" gate — a checkpoint file that is valid
// but stale (or copied from another shard) is refused.
func VerifyShardAgainstManifest(m *Manifest, c *ShardCheckpoint) error {
	if c.Campaign != m.Campaign {
		return fmt.Errorf("%w: shard %d checkpoint campaign %016x, manifest %016x",
			ErrCampaignMismatch, c.Shard, c.Campaign, m.Campaign)
	}
	if c.Shard < 0 || c.Shard >= len(m.Shards) {
		return fmt.Errorf("%w: shard %d out of range (%d shards)", ErrShardMismatch, c.Shard, len(m.Shards))
	}
	rec := m.Shards[c.Shard]
	if rec.Seq != c.Seq || rec.Chain != c.ChainHash || rec.Done != c.Done {
		return fmt.Errorf("%w: shard %d checkpoint (seq %d chain %016x done %d), manifest (seq %d chain %016x done %d)",
			ErrShardMismatch, c.Shard, c.Seq, c.ChainHash, c.Done, rec.Seq, rec.Chain, rec.Done)
	}
	return nil
}

// readGob decodes one gob value from path, mapping decode failures to
// plain errors (never panics; arbitrary bytes are rejected).
func readGob(path string, v any) error {
	f, err := vfs.Active().Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := gob.NewDecoder(f).Decode(v); err != nil {
		return fmt.Errorf("snapshot: decode %s: %w", path, err)
	}
	return nil
}
