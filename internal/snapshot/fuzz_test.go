package snapshot

import (
	"bytes"
	"encoding/gob"
	"testing"

	"contiguitas/internal/kernel"
	"contiguitas/internal/workload"
)

// FuzzSnapshotDecode throws arbitrary byte streams at the envelope
// decoder. Decode must either return a fully verified envelope or an
// error — never panic, whatever the bytes. The seed corpus includes a
// genuine sealed envelope and single-bit corruptions of it so the
// fuzzer starts from deep inside the gob structure rather than failing
// at the magic check every time.
func FuzzSnapshotDecode(f *testing.F) {
	cfg, inj := propConfig(false, 33)
	k := kernel.New(cfg)
	r := workload.NewRunner(k, propProfile(), cfg.Seed+1)
	r.Run(20)
	e := &Envelope{Tick: k.Tick(), Machine: Machine{
		Kernel: k.ExportState(), Runner: r.ExportState(), Faults: inj.State(),
	}}
	e.Seal(0)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		f.Fatalf("encode seed envelope: %v", err)
	}
	valid := buf.Bytes()

	f.Add([]byte{})
	f.Add([]byte("CTGSNAP"))
	f.Add(valid)
	for _, off := range []int{1, len(valid) / 3, len(valid) / 2, len(valid) - 1} {
		corrupt := append([]byte(nil), valid...)
		corrupt[off] ^= 0xFF
		f.Add(corrupt)
	}
	f.Add(valid[:len(valid)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful decode means full verification passed: the recorded
		// hashes must agree with a recomputation over the decoded machine.
		if got := HashMachine(&e.Machine); got != e.StateHash {
			t.Fatalf("decode accepted an envelope whose state hash does not verify: %016x vs %016x",
				got, e.StateHash)
		}
	})
}
