// Package snapshot is the versioned, crash-consistent checkpoint
// envelope for the full simulator: kernel state (internal/kernel),
// workload runner state (internal/workload), and fault-injector state
// (internal/fault), bound together with a canonical state hash and a
// per-checkpoint chain digest.
//
// Crash consistency. Envelopes are written to a same-directory temp
// file and renamed over the target only after a successful encode and
// close, so the file at the checkpoint path is always either absent,
// the previous complete checkpoint, or the new complete checkpoint —
// never a torn write. Decoding re-verifies the magic, the version, the
// state hash (recomputed from the decoded machine state), and the chain
// digest (recomputed from PrevChainHash and the state hash); any
// mismatch — truncation, corruption, or a hand-edited field — is
// rejected with a typed error.
//
// Hash-chain semantics. Each checkpoint's StateHash is the canonical
// digest of the full machine (kernel state hash extended with the
// runner and injector digests). ChainHash links checkpoints:
//
//	chain_0 = mix(0, stateHash_0)
//	chain_n = mix(chain_{n-1}, stateHash_n)
//
// so two runs that produce the same chain value at checkpoint n agree
// on every checkpointed state up to n, not just the last one — the
// property the kill-and-resume equivalence tests lean on.
package snapshot

import (
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"contiguitas/internal/fault"
	"contiguitas/internal/kernel"
	"contiguitas/internal/vfs"
	"contiguitas/internal/workload"
)

// Magic identifies a contiguitas snapshot file; Version is the format
// revision — decoding any other version is refused.
//
// Version history:
//
//	1 — initial format.
//	2 — pressure-ladder state: kernel HasPressure fingerprint +
//	    PressureState (gate, gate PSI tracker, escalation profile, OOM
//	    history), runner OOMBackoffUntil/OOMKillsTaken, and the nine
//	    pressure counters in the kernel counter block.
const (
	Magic   = "CTGSNAP"
	Version = 2
)

// Typed decode failures.
var (
	// ErrBadMagic reports a file that is not a contiguitas snapshot.
	ErrBadMagic = errors.New("snapshot: bad magic")
	// ErrBadVersion reports an unsupported format revision.
	ErrBadVersion = errors.New("snapshot: unsupported version")
	// ErrHashMismatch reports a snapshot whose recorded state hash or
	// chain digest disagrees with the decoded state — corruption or
	// tampering.
	ErrHashMismatch = errors.New("snapshot: state/chain hash mismatch")
)

// Machine bundles the three state layers of one checkpoint. Runner and
// Faults are nil for kernel-only and faultless runs respectively.
type Machine struct {
	Kernel *kernel.State
	Runner *workload.RunnerState
	Faults *fault.InjectorState
}

// Envelope is the on-disk snapshot format.
type Envelope struct {
	Magic   string
	Version uint32
	// Seq numbers checkpoints within a run (0-based); Tick is the
	// virtual time the machine was quiesced at.
	Seq  uint64
	Tick uint64
	// StateHash is the canonical digest of Machine; PrevChainHash and
	// ChainHash are the chain links (see the package comment).
	StateHash     uint64
	PrevChainHash uint64
	ChainHash     uint64
	Machine       Machine
}

// mix folds a state hash into the running chain digest.
func mix(chain, stateHash uint64) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(chain >> (8 * i))
		buf[8+i] = byte(stateHash >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64()
}

// HashMachine computes the canonical digest of a full machine state:
// the kernel's own state hash extended with the runner and injector
// digests. Nil layers contribute a fixed marker, so a faultless
// checkpoint and a faulted one can never collide by omission.
func HashMachine(m *Machine) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(vs ...uint64) {
		for _, v := range vs {
			for i := 0; i < 8; i++ {
				buf[i] = byte(v >> (8 * i))
			}
			h.Write(buf[:])
		}
	}
	ws := func(s string) {
		w(uint64(len(s)))
		h.Write([]byte(s))
	}

	w(m.Kernel.Hash())

	if m.Runner == nil {
		w(0)
	} else {
		r := m.Runner
		w(1, r.RNGS0, r.RNGS1)
		w(uint64(len(r.Mappings)))
		for _, ms := range r.Mappings {
			w(ms.Bytes, uint64(len(ms.Blocks)))
			w(ms.Blocks...)
		}
		w(uint64(len(r.Unmov)))
		w(r.Unmov...)
		w(uint64(len(r.Small)))
		w(r.Small...)
		w(r.UnmovHeld, r.MappingHeld)
		w(uint64(len(r.Slab)))
		for _, cs := range r.Slab {
			ws(cs.Name)
			w(uint64(len(cs.Pages)))
			for _, ps := range cs.Pages {
				w(ps.PFN, uint64(len(ps.Used)))
				w(ps.Used...)
				w(uint64(ps.Live))
				if ps.Partial {
					w(1)
				} else {
					w(0)
				}
			}
			w(uint64(cs.Objects), uint64(cs.PagesHeld),
				cs.PagesGrown, cs.PagesFreed, cs.AllocCalls, cs.FreeCalls)
		}
		w(uint64(len(r.SlabObjs)))
		for _, so := range r.SlabObjs {
			w(uint64(so.Cache), so.PFN, uint64(so.Slot))
		}
		w(r.UnmovableAllocFailures, r.TicksRun, math.Float64bits(r.ChurnCarry))
		w(uint64(len(r.OOMBackoffUntil)))
		w(r.OOMBackoffUntil...)
		w(r.OOMKillsTaken)
	}

	if m.Faults == nil {
		w(0)
	} else {
		f := m.Faults
		w(1, f.Seed, uint64(len(f.Points)))
		for _, p := range f.Points {
			ws(p.Name)
			w(math.Float64bits(p.Trig.Prob), p.Trig.EveryN)
			w(uint64(len(p.Trig.OnHits)))
			w(p.Trig.OnHits...)
			w(p.Trig.From, p.Trig.Until)
			w(p.S0, p.S1, p.Hits, p.Fired)
		}
		w(uint64(len(f.Retired)))
		for _, p := range f.Retired {
			ws(p.Name)
			w(p.Hits, p.Fired)
		}
	}
	return h.Sum64()
}

// Seal fills an envelope's hash fields from its machine state and the
// previous chain value, returning the new chain value.
func (e *Envelope) Seal(prevChain uint64) uint64 {
	e.Magic = Magic
	e.Version = Version
	e.StateHash = HashMachine(&e.Machine)
	e.PrevChainHash = prevChain
	e.ChainHash = mix(prevChain, e.StateHash)
	return e.ChainHash
}

// Write encodes the envelope to path atomically and durably (temp file,
// file fsync, rename, parent-directory fsync — see fsync.go).
func Write(path string, e *Envelope) error {
	return writeDurable(path, e)
}

// Decode decodes and verifies an envelope from an arbitrary reader:
// magic, version, and both hash fields are checked against the decoded
// state before the envelope is handed back. Arbitrary byte streams are
// rejected with an error, never a panic — the fuzz target for the
// decode path leans on this contract.
func Decode(rd io.Reader) (*Envelope, error) {
	e := &Envelope{}
	if err := gob.NewDecoder(rd).Decode(e); err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	if e.Magic != Magic {
		return nil, fmt.Errorf("%w: %q", ErrBadMagic, e.Magic)
	}
	if e.Version != Version {
		return nil, fmt.Errorf("%w: %d (support %d)", ErrBadVersion, e.Version, Version)
	}
	if e.Machine.Kernel == nil {
		return nil, errors.New("snapshot: envelope carries no kernel state")
	}
	if got := HashMachine(&e.Machine); got != e.StateHash {
		return nil, fmt.Errorf("%w: recomputed state hash %016x, recorded %016x",
			ErrHashMismatch, got, e.StateHash)
	}
	if got := mix(e.PrevChainHash, e.StateHash); got != e.ChainHash {
		return nil, fmt.Errorf("%w: recomputed chain %016x, recorded %016x",
			ErrHashMismatch, got, e.ChainHash)
	}
	return e, nil
}

// Read decodes and verifies the envelope at path (see Decode). The
// open goes through the active FS so injected read faults and bit-rot
// land on the verification path that exists to catch them.
func Read(path string) (*Envelope, error) {
	f, err := vfs.Active().Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	e, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%w in %s", err, path)
	}
	return e, nil
}
