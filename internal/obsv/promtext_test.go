package obsv

import (
	"bytes"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"contiguitas/internal/telemetry"
)

func renderSnapshot(t *testing.T, s *telemetry.MetricsSnapshot) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WritePromText(&buf, s); err != nil {
		t.Fatalf("WritePromText: %v", err)
	}
	if err := LintPromText(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("rendered text fails own linter: %v\n%s", err, buf.String())
	}
	return buf.String()
}

func TestPromTextNilSnapshotLints(t *testing.T) {
	out := renderSnapshot(t, nil)
	if !strings.Contains(out, "no metrics snapshot") {
		t.Fatalf("nil snapshot body: %q", out)
	}
}

func TestPromTextRendersRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.NewCounter("mig.sw.pages").Add(42)
	reg.GaugeFunc("free.frac", func() float64 { return 0.25 })
	h := reg.NewHistogram("lat.cycles")
	for _, v := range []uint64{0, 1, 5, 17, 100, 3000, 1 << 40} {
		h.Observe(v)
	}
	out := renderSnapshot(t, reg.Capture(7))

	for _, want := range []string{
		"contiguitas_snapshot_tick 7",
		"# TYPE contiguitas_mig_sw_pages counter",
		"contiguitas_mig_sw_pages 42",
		"# TYPE contiguitas_free_frac gauge",
		"contiguitas_free_frac 0.25",
		"# TYPE contiguitas_lat_cycles histogram",
		`contiguitas_lat_cycles_bucket{le="+Inf"} 7`,
		"contiguitas_lat_cycles_count 7",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}

	// Cumulative bucket counts must be non-decreasing and end at _count,
	// and _sum must equal the sum of observations.
	bucketRe := regexp.MustCompile(`contiguitas_lat_cycles_bucket\{le="([^"]+)"\} (\d+)`)
	var last uint64
	for _, m := range bucketRe.FindAllStringSubmatch(out, -1) {
		n, _ := strconv.ParseUint(m[2], 10, 64)
		if n < last {
			t.Fatalf("cumulative bucket went backwards at le=%s: %d < %d", m[1], n, last)
		}
		last = n
	}
	if last != 7 {
		t.Fatalf("final cumulative bucket %d, want 7", last)
	}
	wantSum := uint64(0 + 1 + 5 + 17 + 100 + 3000 + 1<<40)
	if !strings.Contains(out, fmt.Sprintf("contiguitas_lat_cycles_sum %d", wantSum)) {
		t.Fatalf("histogram sum wrong in:\n%s", out)
	}
}

func TestPromTextDeterministicOrder(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.NewCounter("zzz").Inc()
	reg.NewCounter("aaa").Inc()
	out := renderSnapshot(t, reg.Capture(0))
	if strings.Index(out, "contiguitas_aaa") > strings.Index(out, "contiguitas_zzz") {
		t.Fatal("counters not sorted by name")
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"mig.sw.pages":  "contiguitas_mig_sw_pages",
		"a-b c/d":       "contiguitas_a_b_c_d",
		"shard_restart": "contiguitas_shard_restart",
		"x:y":           "contiguitas_x:y",
	} {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHistBucketMappingIsExact(t *testing.T) {
	// Adjacent telemetry buckets must translate to adjacent inclusive
	// ranges with no gap and no overlap: walk the full bucket grid via
	// the exported helpers.
	prevHi := uint64(0)
	for i := 0; ; i++ {
		lo := telemetry.HistBucketLo(i)
		if i > 0 && lo != prevHi+1 {
			t.Fatalf("bucket %d: lo %d does not abut previous hi %d", i, lo, prevHi)
		}
		hi := telemetry.HistBucketHi(lo)
		if hi == ^uint64(0) {
			break
		}
		if hi < lo {
			t.Fatalf("bucket %d inverted: [%d,%d]", i, lo, hi)
		}
		prevHi = hi
	}
}
