// Prometheus text exposition (version 0.0.4) over a MetricsSnapshot.
//
// The interesting translation is histograms: telemetry's log-linear
// buckets are (lo, count) pairs over disjoint ranges, while Prometheus
// buckets are cumulative with inclusive `le` upper bounds. Because
// observations are uint64s the mapping is exact — bucket i's upper
// bound is bucket i+1's lo minus one — so a scrape loses no precision
// versus the JSONL export, which the equality tests in obsv_test rely
// on.
package obsv

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"contiguitas/internal/telemetry"
)

// promName maps a registry metric name ("mig.success.pages") onto the
// Prometheus grammar [a-zA-Z_:][a-zA-Z0-9_:]* with the repo's
// namespace prefix.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("contiguitas_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePromText renders s in the Prometheus text format. A nil snapshot
// (nothing published yet) renders an explanatory comment and the scrape
// generation gauge only, which still lints clean.
func WritePromText(w io.Writer, s *telemetry.MetricsSnapshot) error {
	bw := &errWriter{w: w}
	if s == nil {
		bw.printf("# no metrics snapshot published yet\n")
		return bw.err
	}
	bw.printf("# TYPE contiguitas_snapshot_tick gauge\n")
	bw.printf("contiguitas_snapshot_tick %d\n", s.Tick)
	bw.printf("# TYPE contiguitas_snapshot_generation counter\n")
	bw.printf("contiguitas_snapshot_generation %d\n", s.Gen)

	// Deterministic output order regardless of registration order.
	counters := append([]telemetry.CounterSample(nil), s.Counters...)
	sort.Slice(counters, func(i, j int) bool { return counters[i].Name < counters[j].Name })
	for _, c := range counters {
		name := promName(c.Name)
		bw.printf("# HELP %s counter %q\n", name, c.Name)
		bw.printf("# TYPE %s counter\n", name)
		bw.printf("%s %d\n", name, c.Value)
	}

	gauges := append([]telemetry.GaugeSample(nil), s.Gauges...)
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].Name < gauges[j].Name })
	for _, g := range gauges {
		name := promName(g.Name)
		bw.printf("# HELP %s gauge %q\n", name, g.Name)
		bw.printf("# TYPE %s gauge\n", name)
		bw.printf("%s %s\n", name, formatFloat(g.Value))
	}

	hists := append([]telemetry.HistogramSample(nil), s.Histograms...)
	sort.Slice(hists, func(i, j int) bool { return hists[i].Name < hists[j].Name })
	for i := range hists {
		writeHistogram(bw, &hists[i])
	}
	return bw.err
}

func writeHistogram(bw *errWriter, h *telemetry.HistogramSample) {
	name := promName(h.Name)
	bw.printf("# HELP %s histogram %q\n", name, h.Name)
	bw.printf("# TYPE %s histogram\n", name)
	var cum uint64
	for _, b := range h.Buckets {
		lo, n := b[0], b[1]
		cum += n
		hi := telemetry.HistBucketHi(lo)
		if hi == ^uint64(0) {
			// The top bucket folds into +Inf below.
			continue
		}
		bw.printf("%s_bucket{le=\"%d\"} %d\n", name, hi, cum)
	}
	bw.printf("%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
	bw.printf("%s_sum %d\n", name, h.Sum)
	bw.printf("%s_count %d\n", name, h.Count)
}

// formatFloat renders a gauge value the way the exposition format
// expects (no exponent surprises for integers, NaN/Inf spelled out).
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}

// errWriter latches the first write error so the render loop needs no
// per-line checks.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
