// The campaign board: the read side of fleet progress.
//
// A Campaign is fed by the fleet layer through the structural
// fleet.ProgressSink interface — obsv deliberately imports only
// internal/supervise, not internal/fleet, so the dependency arrow runs
// compute → observability and never back. The supervisor goroutine
// delivers the ordered lifecycle stream (ObserveCampaign / Attempt /
// Event / End) while worker goroutines deliver unit counts and cache
// tallies; one mutex per campaign reconciles them, which is fine
// because every callback is a handful of integer stores.
package obsv

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"contiguitas/internal/supervise"
)

// Shard lifecycle states as reported on the wire.
const (
	shardPending     = "pending"
	shardRunning     = "running"
	shardCrashed     = "crashed"
	shardDone        = "done"
	shardQuarantined = "quarantined"
)

// ShardStatus is one shard's live progress row.
type ShardStatus struct {
	Shard      int    `json:"shard"`
	Status     string `json:"status"`
	Attempts   int    `json:"attempts"`
	Crashes    int    `json:"crashes"`
	DoneUnits  uint64 `json:"done_units"`
	TotalUnits uint64 `json:"total_units"`
}

// CacheStatus is the campaign's cumulative result-cache tallies.
type CacheStatus struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Rejects uint64 `json:"rejects"`
}

// CampaignStatus is the board row for one campaign.
type CampaignStatus struct {
	ID          int     `json:"id"`
	Name        string  `json:"name"`
	Shards      int     `json:"shards"`
	Finished    int     `json:"finished"`
	Resumed     int     `json:"resumed"`
	Quarantined int     `json:"quarantined"`
	Crashes     int     `json:"crashes"`
	DoneUnits   uint64  `json:"done_units"`
	TotalUnits  uint64  `json:"total_units"`
	// Percent is unit progress in [0,100]; 100 requires every known
	// unit done.
	Percent  float64      `json:"percent"`
	Ended    bool         `json:"ended"`
	Complete bool         `json:"complete"`
	Canceled bool         `json:"canceled"`
	Cache    *CacheStatus `json:"cache,omitempty"`
}

// Campaign accumulates one campaign's live state. It satisfies
// fleet.ProgressSink (structurally) and supervise.Observer.
type Campaign struct {
	id   int
	name string

	mu          sync.Mutex
	shards      []ShardStatus
	finished    int
	resumed     int
	quarantined int
	crashes     int
	ended       bool
	complete    bool
	canceled    bool
	cacheSeen   bool
	cache       CacheStatus
}

// ensureLocked grows the shard table to at least n rows. Needed because
// the fleet publishes initial unit totals before the supervisor's
// ObserveCampaign runs.
func (c *Campaign) ensureLocked(n int) {
	for len(c.shards) < n {
		c.shards = append(c.shards, ShardStatus{Shard: len(c.shards), Status: shardPending})
	}
}

// ObserveCampaign implements supervise.Observer.
func (c *Campaign) ObserveCampaign(shards int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureLocked(shards)
}

// ObserveAttempt implements supervise.Observer.
func (c *Campaign) ObserveAttempt(shard, attempt int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureLocked(shard + 1)
	s := &c.shards[shard]
	s.Status = shardRunning
	if attempt > s.Attempts {
		s.Attempts = attempt
	}
}

// ObserveEvent implements supervise.Observer.
func (c *Campaign) ObserveEvent(ev supervise.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureLocked(ev.Shard + 1)
	s := &c.shards[ev.Shard]
	switch ev.Kind {
	case supervise.EventCrash:
		s.Status = shardCrashed
		s.Crashes++
		c.crashes++
	case supervise.EventResume:
		s.Status = shardRunning
		c.resumed++
	case supervise.EventQuarantine:
		s.Status = shardQuarantined
		c.quarantined++
	case supervise.EventDone:
		s.Status = shardDone
		c.finished = ev.Done
	}
}

// ObserveEnd implements supervise.Observer. rep is the supervisor's
// final report; the board copies the summary rather than retaining it.
func (c *Campaign) ObserveEnd(rep *supervise.Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ended = true
	if rep == nil {
		return
	}
	c.finished = rep.Finished
	c.quarantined = rep.Quarantined
	c.crashes = rep.Crashes
	c.complete = rep.Complete
	c.canceled = rep.Canceled
	// Resumed in the report counts shards; the event stream counted
	// resume events, so prefer the authoritative final number.
	c.resumed = rep.Resumed
}

// ObserveUnits implements fleet.ProgressSink. Called from worker
// goroutines as checkpoints land.
func (c *Campaign) ObserveUnits(shard int, done, total uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureLocked(shard + 1)
	s := &c.shards[shard]
	s.DoneUnits = done
	s.TotalUnits = total
}

// ObserveCache implements fleet.ProgressSink.
func (c *Campaign) ObserveCache(hits, misses, rejects uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cacheSeen = true
	c.cache = CacheStatus{Hits: hits, Misses: misses, Rejects: rejects}
}

// MarkEnded force-ends a campaign that does not run under the
// supervisor (e.g. a plain unsupervised sweep's reference phase).
func (c *Campaign) MarkEnded(complete bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ended = true
	c.complete = complete
}

// Status renders the board row.
func (c *Campaign) Status() CampaignStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CampaignStatus{
		ID: c.id, Name: c.name, Shards: len(c.shards),
		Finished: c.finished, Resumed: c.resumed,
		Quarantined: c.quarantined, Crashes: c.crashes,
		Ended: c.ended, Complete: c.complete, Canceled: c.canceled,
	}
	for i := range c.shards {
		st.DoneUnits += c.shards[i].DoneUnits
		st.TotalUnits += c.shards[i].TotalUnits
	}
	switch {
	case st.TotalUnits > 0:
		st.Percent = 100 * float64(st.DoneUnits) / float64(st.TotalUnits)
	case st.Ended:
		st.Percent = 100
	}
	if c.cacheSeen {
		cache := c.cache
		st.Cache = &cache
	}
	return st
}

// ShardTable renders the per-shard rows.
func (c *Campaign) ShardTable() []ShardStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ShardStatus, len(c.shards))
	copy(out, c.shards)
	return out
}

// Board registers campaigns and serves the JSON endpoints.
type Board struct {
	mu        sync.Mutex
	campaigns []*Campaign
}

// NewBoard returns an empty board.
func NewBoard() *Board { return &Board{} }

// Register adds a campaign under the next id and returns it. Safe from
// any goroutine.
func (b *Board) Register(name string) *Campaign {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := &Campaign{id: len(b.campaigns), name: name}
	b.campaigns = append(b.campaigns, c)
	return c
}

// Campaign returns the campaign with the given id (nil when absent).
func (b *Board) Campaign(id int) *Campaign {
	b.mu.Lock()
	defer b.mu.Unlock()
	if id < 0 || id >= len(b.campaigns) {
		return nil
	}
	return b.campaigns[id]
}

func (b *Board) list() []*Campaign {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*Campaign, len(b.campaigns))
	copy(out, b.campaigns)
	return out
}

// serveCampaigns handles GET /campaigns: every registered campaign's
// board row, in registration order.
func (b *Board) serveCampaigns(w http.ResponseWriter, _ *http.Request) {
	campaigns := b.list()
	rows := make([]CampaignStatus, 0, len(campaigns))
	for _, c := range campaigns {
		rows = append(rows, c.Status())
	}
	writeJSON(w, rows)
}

// serveShards handles GET /campaigns/{id}/shards. The path is parsed by
// hand so the server works with any mux vintage.
func (b *Board) serveShards(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/campaigns/")
	idStr, tail, ok := strings.Cut(rest, "/")
	if !ok || tail != "shards" {
		http.NotFound(w, r)
		return
	}
	id, err := strconv.Atoi(idStr)
	if err != nil {
		http.Error(w, "bad campaign id", http.StatusBadRequest)
		return
	}
	c := b.Campaign(id)
	if c == nil {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, struct {
		Campaign CampaignStatus `json:"campaign"`
		Shards   []ShardStatus  `json:"shards"`
	}{c.Status(), c.ShardTable()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
