// EventBus fans tracepoint records out to HTTP event-stream
// subscribers without ever making the emitting goroutine wait.
//
// The bus sits behind Ring.SetSink, which means Publish runs inline on
// the simulation's hot path. Two consequences shape the design: with no
// subscribers, Publish must cost one atomic load and nothing else (the
// common case — most runs are never watched); with subscribers, a slow
// reader must shed records rather than apply backpressure, because a
// stalled curl must never stall the kernel model. Both are the same
// choices the kernel's ftrace/perf ring buffers make — drop and count,
// never block the producer.
package obsv

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"contiguitas/internal/telemetry"
)

// subscriber is one /events connection's mailbox. The channel is
// buffered; when it is full the publisher drops the record and bumps
// the subscriber's drop counter, which the SSE handler later reports
// in-band as a comment so the client knows its view has gaps.
type subscriber struct {
	ch      chan telemetry.Record
	dropped atomic.Uint64
}

// EventBus is a copy-on-write fan-out of telemetry records. Publish is
// wait-free for the producer; Subscribe/unsubscribe/Close are
// mutex-serialized (rare, reader-side).
type EventBus struct {
	// subs holds the immutable current subscriber list. Publishers only
	// load it; mutations swap in a fresh slice under mu.
	subs atomic.Pointer[[]*subscriber]
	mu   sync.Mutex
	// closed wakes every blocked SSE handler when the run ends.
	closed    chan struct{}
	closeOnce sync.Once
	// droppedTotal counts records shed across all subscribers, exposed
	// on the bus for tests and the drop comment baseline.
	droppedTotal atomic.Uint64
	published    atomic.Uint64
}

// NewEventBus returns an empty bus.
func NewEventBus() *EventBus {
	return &EventBus{closed: make(chan struct{})}
}

// Publish offers rec to every current subscriber, dropping for any
// whose buffer is full. Safe to call from the tracepoint emit path: a
// nil bus or an empty subscriber list costs one branch plus one atomic
// load, and no path ever blocks.
func (b *EventBus) Publish(rec telemetry.Record) {
	if b == nil {
		return
	}
	subs := b.subs.Load()
	if subs == nil || len(*subs) == 0 {
		return
	}
	b.published.Add(1)
	for _, s := range *subs {
		select {
		case s.ch <- rec:
		default:
			s.dropped.Add(1)
			b.droppedTotal.Add(1)
		}
	}
}

// Sink adapts the bus to the Ring.SetSink signature.
func (b *EventBus) Sink() func(telemetry.Record) {
	return func(rec telemetry.Record) { b.Publish(rec) }
}

// Subscribe registers a mailbox of the given buffer depth (min 1) and
// returns it with a cancel func. Cancel is idempotent.
func (b *EventBus) Subscribe(buf int) (*subscriber, func()) {
	if buf < 1 {
		buf = 1
	}
	s := &subscriber{ch: make(chan telemetry.Record, buf)}
	b.mu.Lock()
	b.subs.Store(appendSub(b.subs.Load(), s))
	b.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			b.mu.Lock()
			b.subs.Store(removeSub(b.subs.Load(), s))
			b.mu.Unlock()
		})
	}
	return s, cancel
}

func appendSub(cur *[]*subscriber, s *subscriber) *[]*subscriber {
	var next []*subscriber
	if cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, s)
	return &next
}

func removeSub(cur *[]*subscriber, s *subscriber) *[]*subscriber {
	next := []*subscriber{}
	if cur != nil {
		for _, x := range *cur {
			if x != s {
				next = append(next, x)
			}
		}
	}
	return &next
}

// Close wakes every subscriber's handler; Publish afterwards is still
// safe (records go nowhere once handlers unsubscribe). Idempotent.
func (b *EventBus) Close() {
	if b == nil {
		return
	}
	b.closeOnce.Do(func() { close(b.closed) })
}

// Dropped returns the total records shed across all subscribers.
func (b *EventBus) Dropped() uint64 {
	if b == nil {
		return 0
	}
	return b.droppedTotal.Load()
}

// Published returns records offered while at least one subscriber
// existed (a Publish with no subscribers does not count).
func (b *EventBus) Published() uint64 {
	if b == nil {
		return 0
	}
	return b.published.Load()
}

// busEvent is the JSON rendering of one record on the wire: the raw
// args plus the event's stable name and its per-arg names from Meta,
// so a consumer needs no side table.
type busEvent struct {
	Tick  uint64            `json:"tick"`
	Event string            `json:"event"`
	Track string            `json:"track"`
	Args  map[string]uint64 `json:"args,omitempty"`
}

func renderEvent(rec telemetry.Record) busEvent {
	ev := busEvent{Tick: rec.Tick, Event: rec.ID.String()}
	if rec.ID < telemetry.NumEvents {
		meta := telemetry.Meta[rec.ID]
		ev.Track = meta.Track.String()
		vals := [3]uint64{rec.A, rec.B, rec.C}
		for i, name := range meta.Args {
			if name != "" {
				if ev.Args == nil {
					ev.Args = make(map[string]uint64, 3)
				}
				ev.Args[name] = vals[i]
			}
		}
	}
	return ev
}

// serveEvents streams records as Server-Sent Events: one `data:` line
// of JSON per record, a `: ping` comment on idle so proxies and clients
// can detect liveness, and a `: dropped N` comment whenever the
// subscriber's shed count advances. The stream ends when the client
// disconnects or the bus closes (end of run).
func (b *EventBus) serveEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": contiguitas event stream\n\n")
	flusher.Flush()

	sub, cancel := b.Subscribe(256)
	defer cancel()
	ping := time.NewTicker(time.Second)
	defer ping.Stop()
	var reportedDrops uint64
	for {
		select {
		case rec := <-sub.ch:
			data, err := json.Marshal(renderEvent(rec))
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "data: %s\n\n", data)
			if d := sub.dropped.Load(); d != reportedDrops {
				fmt.Fprintf(w, ": dropped %d\n\n", d)
				reportedDrops = d
			}
			flusher.Flush()
		case <-ping.C:
			fmt.Fprintf(w, ": ping\n\n")
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-b.closed:
			fmt.Fprintf(w, ": closed\n\n")
			flusher.Flush()
			return
		}
	}
}
