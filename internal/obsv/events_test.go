package obsv

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"contiguitas/internal/telemetry"
)

func TestEventBusZeroSubscribersIsFree(t *testing.T) {
	b := NewEventBus()
	for i := 0; i < 1000; i++ {
		b.Publish(telemetry.Record{Tick: uint64(i)})
	}
	if b.Published() != 0 || b.Dropped() != 0 {
		t.Fatalf("publishes with no subscribers counted: pub=%d drop=%d",
			b.Published(), b.Dropped())
	}
	var nilBus *EventBus
	nilBus.Publish(telemetry.Record{}) // must not panic
	nilBus.Close()
}

func TestEventBusDropsInsteadOfBlocking(t *testing.T) {
	b := NewEventBus()
	sub, cancel := b.Subscribe(2)
	defer cancel()

	// Nobody drains sub.ch: the publisher must shed overflow instantly.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			b.Publish(telemetry.Record{Tick: uint64(i)})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a full subscriber")
	}
	if got := b.Dropped(); got != 98 {
		t.Fatalf("dropped %d records, want 98", got)
	}
	if got := sub.dropped.Load(); got != 98 {
		t.Fatalf("subscriber drop counter %d, want 98", got)
	}
	if b.Published() != 100 {
		t.Fatalf("published %d, want 100", b.Published())
	}
	// The two buffered records are the oldest ones.
	if r := <-sub.ch; r.Tick != 0 {
		t.Fatalf("first buffered tick %d, want 0", r.Tick)
	}
}

func TestEventBusCancelStopsDelivery(t *testing.T) {
	b := NewEventBus()
	_, cancel := b.Subscribe(1)
	cancel()
	cancel() // idempotent
	b.Publish(telemetry.Record{Tick: 1})
	if b.Published() != 0 {
		t.Fatalf("published to a cancelled subscriber: %d", b.Published())
	}
	b.Close()
	b.Close() // idempotent
}

// TestServeEventsStreamsAndCloses drives the real SSE handler over HTTP:
// a record published after the stream attaches must arrive as a JSON
// data frame with the event's name and named args, and Close must end
// the stream.
func TestServeEventsStreamsAndCloses(t *testing.T) {
	b := NewEventBus()
	ts := httptest.NewServer(http.HandlerFunc(b.serveEvents))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("content-type %q", ct)
	}

	// Publish until the subscriber is attached (Subscribe happens inside
	// the handler goroutine, so retry briefly).
	go func() {
		for i := 0; i < 200; i++ {
			b.Publish(telemetry.Record{Tick: 7, ID: telemetry.EvShardCrash, A: 3, B: 2, C: 1})
			if b.Published() > 0 {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	sc := bufio.NewScanner(resp.Body)
	deadline := time.AfterFunc(10*time.Second, func() { resp.Body.Close() })
	defer deadline.Stop()
	var frame struct {
		Tick  uint64            `json:"tick"`
		Event string            `json:"event"`
		Args  map[string]uint64 `json:"args"`
	}
	got := false
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &frame); err != nil {
			t.Fatalf("bad frame %q: %v", line, err)
		}
		got = true
		break
	}
	if !got {
		t.Fatal("no data frame before stream ended")
	}
	if frame.Tick != 7 || frame.Event != telemetry.EvShardCrash.String() {
		t.Fatalf("frame %+v", frame)
	}
	if frame.Args["shard"] != 3 {
		t.Fatalf("args not named from Meta: %+v", frame.Args)
	}

	// Close ends the stream: the body must reach EOF promptly.
	b.Close()
	end := make(chan struct{})
	go func() {
		for sc.Scan() {
		}
		close(end)
	}()
	select {
	case <-end:
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not end after bus close")
	}
}
