// The live-plane integration test: a real supervised fleet campaign
// with the observability plane mounted, scraped concurrently over HTTP
// while it runs. This is the -race gate for the whole read side and the
// exactness check tying the three metric views together: the Prometheus
// scrape, the JSONL export, and the registry itself must agree to the
// last unit.
package obsv_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"contiguitas/internal/core"
	"contiguitas/internal/fleet"
	"contiguitas/internal/obsv"
	"contiguitas/internal/supervise"
	"contiguitas/internal/telemetry"
)

func liveFleetConfig() fleet.Config {
	cfg := fleet.DefaultConfig()
	cfg.Servers = 12
	cfg.MemBytes = 64 << 20
	cfg.TicksMin = 20
	cfg.TicksMax = 60
	cfg.Design = core.DesignLinux
	cfg.Shards = 4
	return cfg
}

// scrape fetches /metrics, lints it, and returns every sample (bucket
// samples keyed with their labels) as name -> value. It returns an
// error instead of failing t so concurrent scraper goroutines can
// report through t.Errorf safely.
func scrape(client *http.Client, base string) (map[string]float64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	if err := obsv.LintPromText(bytes.NewReader(body)); err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Histogram bucket samples carry labels; key them by the full
		// name{labels} string so le buckets stay distinct.
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		out[fields[0]] = v
	}
	return out, nil
}

func TestLiveCampaignUnderConcurrentScrapes(t *testing.T) {
	reg := telemetry.NewRegistry()
	// The sampler fixes its column schema at creation while supervise
	// registers its metrics inside Run — pre-register them by name (Run
	// reuses existing registrations) so the JSONL covers them.
	reg.NewCounter("shard_crashes")
	reg.NewCounter("shard_resumes")
	reg.NewCounter("shard_quarantines")
	reg.NewHistogram("shard_restart")
	pub := telemetry.NewPublisher(reg)
	sampler := telemetry.NewSampler(reg, 1<<14)
	board := obsv.NewBoard()
	camp := board.Register("live")
	bus := obsv.NewEventBus()
	ring := telemetry.NewRing(1 << 10)
	ring.SetSink(bus.Sink())

	srv, err := obsv.Start(obsv.Options{
		Addr: "127.0.0.1:0", Publisher: pub, Board: board, Bus: bus,
		MetricsWait: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := srv.URL()
	client := &http.Client{Timeout: 5 * time.Second}

	// Concurrent scrapers: each checks lint + counter monotonicity on
	// every sample (all exposed counters only ever go up).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var scrapes atomic.Uint64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := map[string]float64{}
			for {
				select {
				case <-stop:
					return
				default:
				}
				cur, err := scrape(client, base)
				if err != nil {
					t.Errorf("concurrent scrape: %v", err)
					return
				}
				for name, v := range cur {
					// _sum/_count/_bucket and plain counters are all
					// monotone here; gauges are snapshot_tick only, which
					// is also monotone in this run.
					if last, ok := prev[name]; ok && v < last {
						t.Errorf("%s went backwards: %g -> %g", name, last, v)
						return
					}
					prev[name] = v
				}
				scrapes.Add(1)
			}
		}()
	}

	// The campaign: supervision metrics land in reg, events in ring,
	// progress on the board. OnEvent runs on the supervisor goroutine —
	// the same goroutine that writes reg — so sampling there is exactly
	// the writer-side boundary the design prescribes.
	var tick atomic.Uint64
	res, err := fleet.RunSupervised(context.Background(), fleet.SupervisedConfig{
		Fleet:       liveFleetConfig(),
		MaxAttempts: 64,
		BackoffBase: time.Microsecond,
		BackoffCap:  time.Millisecond,
		Faults:      fleet.FaultPlan{CrashEveryN: 3},
		Progress:    camp,
		Trace:       ring,
		Metrics:     reg,
		OnEvent: func(ev supervise.Event) {
			n := tick.Add(1)
			sampler.Sample(n)
			pub.Pump(n)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Complete {
		t.Fatalf("campaign incomplete: %s", res.Report)
	}
	if res.Report.Crashes == 0 {
		t.Fatal("fault plan injected nothing — the histogram path went unexercised")
	}
	// Final sample + publish: all three views now describe the same
	// instant.
	final := tick.Add(1)
	sampler.Sample(final)
	pub.Publish(final)

	close(stop)
	wg.Wait()
	if scrapes.Load() == 0 {
		t.Fatal("no scrape completed while the campaign ran")
	}

	// --- View 1: the final Prometheus scrape.
	prom, err := scrape(client, base)
	if err != nil {
		t.Fatal(err)
	}

	// --- View 2: the JSONL export. Contract: base[i] + sum(d[i]) equals
	// the end-of-run counter total.
	var jsonl bytes.Buffer
	if err := telemetry.WriteMetricsJSONL(&jsonl, sampler); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	var header struct {
		Counters []string `json:"counters"`
		Base     []uint64 `json:"base"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil {
		t.Fatal(err)
	}
	totals := append([]uint64(nil), header.Base...)
	for _, line := range lines[1:] {
		var row struct {
			D []uint64 `json:"d"`
		}
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatal(err)
		}
		for i, d := range row.D {
			totals[i] += d
		}
	}

	// --- View 3: the registry. All three must agree per counter.
	for i, name := range header.Counters {
		regVal := reg.Counter(name).Value()
		if totals[i] != regVal {
			t.Errorf("JSONL total for %s = %d, registry says %d", name, totals[i], regVal)
		}
		promKey := promMetricName(name)
		pv, ok := prom[promKey]
		if !ok {
			t.Errorf("counter %s missing from final scrape (looked for %s)", name, promKey)
			continue
		}
		if uint64(pv) != regVal {
			t.Errorf("scraped %s = %g, registry says %d", promKey, pv, regVal)
		}
	}

	// Histogram exactness: scraped bucket increments must sum to _count,
	// and _count/_sum must equal the registry histogram.
	h := reg.Histogram("shard_restart")
	if h == nil || h.Count() == 0 {
		t.Fatal("shard_restart histogram empty despite crashes")
	}
	histName := promMetricName("shard_restart")
	if got := prom[histName+"_count"]; uint64(got) != h.Count() {
		t.Errorf("scraped %s_count = %g, registry says %d", histName, got, h.Count())
	}
	if got := prom[histName+"_sum"]; uint64(got) != h.Sum() {
		t.Errorf("scraped %s_sum = %g, registry says %d", histName, got, h.Sum())
	}
	if got := prom[fmt.Sprintf("%s_bucket{le=\"+Inf\"}", histName)]; uint64(got) != h.Count() {
		t.Errorf("+Inf bucket %g, want %d", got, h.Count())
	}

	// Crash accounting ties the report to the metrics plane.
	if got := uint64(prom[promMetricName("shard_crashes")]); got != uint64(res.Report.Crashes) {
		t.Errorf("scraped shard_crashes = %d, report says %d", got, res.Report.Crashes)
	}

	// --- The board reached its terminal state and adds up.
	resp, err := client.Get(base + "/campaigns/0/shards")
	if err != nil {
		t.Fatal(err)
	}
	var bodyJSON struct {
		Campaign obsv.CampaignStatus `json:"campaign"`
		Shards   []obsv.ShardStatus  `json:"shards"`
	}
	err = json.NewDecoder(resp.Body).Decode(&bodyJSON)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	st := bodyJSON.Campaign
	if !st.Ended || !st.Complete || st.Percent != 100 {
		t.Fatalf("board not terminal: %+v", st)
	}
	if st.DoneUnits != uint64(liveFleetConfig().Servers) || st.DoneUnits != st.TotalUnits {
		t.Fatalf("board units %d/%d, want %d/%d", st.DoneUnits, st.TotalUnits,
			liveFleetConfig().Servers, liveFleetConfig().Servers)
	}
	if st.Crashes != res.Report.Crashes || st.Finished != res.Report.Finished {
		t.Fatalf("board %+v disagrees with report %s", st, res.Report)
	}
	var sum uint64
	for _, sh := range bodyJSON.Shards {
		if sh.Status != "done" {
			t.Fatalf("shard %d status %q at campaign end", sh.Shard, sh.Status)
		}
		sum += sh.DoneUnits
	}
	if sum != st.DoneUnits {
		t.Fatalf("shard rows sum to %d units, campaign says %d", sum, st.DoneUnits)
	}

	srv.Close()
}

// promMetricName mirrors the exposition prefix+sanitize rule for test
// lookups.
func promMetricName(name string) string {
	var b strings.Builder
	b.WriteString("contiguitas_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
