package obsv

import (
	"strings"
	"testing"
)

func TestLintAcceptsWellFormedText(t *testing.T) {
	good := `# HELP contiguitas_x counter "x"
# TYPE contiguitas_x counter
contiguitas_x 5
# TYPE contiguitas_g gauge
contiguitas_g -0.5
# TYPE contiguitas_h histogram
contiguitas_h_bucket{le="9"} 1
contiguitas_h_bucket{le="99"} 3
contiguitas_h_bucket{le="+Inf"} 4
contiguitas_h_sum 120
contiguitas_h_count 4
`
	if err := LintPromText(strings.NewReader(good)); err != nil {
		t.Fatalf("lint rejected well-formed text: %v", err)
	}
}

func TestLintRejectsMalformedText(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": "contiguitas_x 5\n",
		"duplicate TYPE": "# TYPE a counter\n# TYPE a gauge\na 1\n",
		"unknown TYPE kind": "# TYPE a summary\na 1\n",
		"bad metric name": "# TYPE 9bad counter\n9bad 1\n",
		"unparseable value": "# TYPE a counter\na five\n",
		"histogram without le": "# TYPE h histogram\nh_bucket{fe=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
		"non-increasing le": "# TYPE h histogram\nh_bucket{le=\"5\"} 1\nh_bucket{le=\"5\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
		"decreasing cumulative": "# TYPE h histogram\nh_bucket{le=\"5\"} 3\nh_bucket{le=\"9\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"missing +Inf": "# TYPE h histogram\nh_bucket{le=\"5\"} 1\nh_sum 1\nh_count 1\n",
		"+Inf != count": "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
	}
	for name, text := range cases {
		if err := LintPromText(strings.NewReader(text)); err == nil {
			t.Errorf("%s: lint accepted:\n%s", name, text)
		}
	}
}
