// Package obsv is the live observability plane: an embeddable HTTP
// server any CLI can mount behind a -serve flag to expose a running
// simulation or campaign without changing how it computes.
//
// Endpoints:
//
//	/healthz                 liveness JSON
//	/metrics                 Prometheus text exposition of the
//	                         telemetry registry (via Publisher)
//	/campaigns               JSON board of registered campaigns
//	/campaigns/{id}/shards   per-shard progress for one campaign
//	/events                  Server-Sent Events tap of the tracepoint
//	                         ring (drop-don't-block)
//	/debug/pprof/            the stdlib profiler
//
// Everything is stdlib net/http. The design constraint throughout is
// that the observed process must be unobservable to itself: readers
// never touch writer-owned state (Publisher snapshots), never apply
// backpressure (EventBus drops), and cost one predictable branch per
// writer boundary when nobody is watching.
package obsv

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync/atomic"
	"time"

	"contiguitas/internal/telemetry"
)

// Close-time quiesce bounds: a server that has served at least one
// request waits for the connection to go idle (a live prober — CI's
// obsvcheck — gets to read the campaign's terminal state before the
// process exits) but never holds process exit hostage.
const (
	quiesceIdle = 500 * time.Millisecond
	quiesceMax  = 5 * time.Second
)

// Options configures a Server. Any nil component simply disables its
// endpoints' content (they still answer, with empty or placeholder
// bodies, so probes never need to special-case partial deployments).
type Options struct {
	// Addr is the listen address (":0" for an ephemeral port).
	Addr string
	// Publisher feeds /metrics.
	Publisher *telemetry.Publisher
	// Board feeds /campaigns.
	Board *Board
	// Bus feeds /events.
	Bus *EventBus
	// MetricsWait bounds how long /metrics waits for the writer to pump
	// a fresh snapshot before serving the latest stale one (0 picks
	// 150ms).
	MetricsWait time.Duration
	// Extend, when non-nil, registers extra routes on the server's mux
	// before it starts serving. This is how a daemon (cmd/contigd) mounts
	// its own API next to the observability endpoints without obsv
	// learning about it.
	Extend func(*http.ServeMux)
	// Health, when non-nil, supplies the /healthz status string — "ok"
	// or "degraded" — so a daemon can surface read-only degraded mode to
	// probes without obsv knowing what degraded means. Nil reports "ok".
	Health func() string
}

// Server is a running observability endpoint.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	bus  *EventBus
	opts Options
	// pub is swappable so a CLI can mount the server before the
	// simulation (and its registry) exists.
	pub atomic.Pointer[telemetry.Publisher]

	sawActivity  atomic.Bool
	lastActivity atomic.Int64 // unix nanos of the most recent request
}

// Start listens on opts.Addr and serves in a background goroutine.
func Start(opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, err
	}
	if opts.MetricsWait <= 0 {
		opts.MetricsWait = 150 * time.Millisecond
	}
	s := &Server{ln: ln, bus: opts.Bus, opts: opts}
	if opts.Publisher != nil {
		s.pub.Store(opts.Publisher)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.serveHealthz)
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/campaigns", s.serveCampaigns)
	mux.HandleFunc("/campaigns/", s.serveCampaignPath)
	mux.HandleFunc("/events", s.serveEvents)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if opts.Extend != nil {
		opts.Extend(mux)
	}

	s.srv = &http.Server{Handler: s.track(mux)}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// track stamps every request for the Close-time quiesce decision.
func (s *Server) track(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.sawActivity.Store(true)
		s.lastActivity.Store(time.Now().UnixNano())
		next.ServeHTTP(w, r)
		// Long-lived streams (SSE, pprof profiles) refresh on exit too,
		// so a stream that just ended counts as recent activity.
		s.lastActivity.Store(time.Now().UnixNano())
	})
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the server's base URL.
func (s *Server) URL() string {
	if s == nil {
		return ""
	}
	addr := s.Addr()
	// net.Listen(":0") binds the wildcard address; rewrite it to a
	// dialable loopback host.
	if host, port, err := net.SplitHostPort(addr); err == nil {
		if host == "" || host == "::" || host == "0.0.0.0" {
			addr = net.JoinHostPort("127.0.0.1", port)
		}
	}
	return "http://" + addr
}

// Close shuts the server down. If any request was ever served, it first
// waits for the HTTP side to go idle (bounded by quiesceMax) so a live
// prober can observe the terminal campaign state before the process
// exits; a server nobody ever contacted closes immediately.
func (s *Server) Close() {
	if s == nil {
		return
	}
	if s.sawActivity.Load() {
		deadline := time.Now().Add(quiesceMax)
		for time.Now().Before(deadline) {
			idle := time.Since(time.Unix(0, s.lastActivity.Load()))
			if idle >= quiesceIdle {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	// Wake blocked SSE handlers so Shutdown is not held open by streams.
	s.bus.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = s.srv.Shutdown(ctx)
}

func (s *Server) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.opts.Health != nil {
		status = s.opts.Health()
	}
	writeJSON(w, struct {
		Status string `json:"status"`
	}{status})
}

// SetPublisher attaches (or replaces) the /metrics source. Safe at any
// time; scrapes before the first attachment see the no-snapshot body.
func (s *Server) SetPublisher(pub *telemetry.Publisher) {
	if s != nil && pub != nil {
		s.pub.Store(pub)
	}
}

func (s *Server) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	// Fresh asks the writer for a snapshot at its next boundary and
	// falls back to the latest stale one — a scrape can be slightly
	// old but can never block or race the simulation.
	snap := s.pub.Load().Fresh(s.opts.MetricsWait)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WritePromText(w, snap)
}

func (s *Server) serveCampaigns(w http.ResponseWriter, r *http.Request) {
	if s.opts.Board == nil {
		writeJSON(w, []CampaignStatus{})
		return
	}
	s.opts.Board.serveCampaigns(w, r)
}

func (s *Server) serveCampaignPath(w http.ResponseWriter, r *http.Request) {
	if s.opts.Board == nil {
		http.NotFound(w, r)
		return
	}
	if strings.HasSuffix(r.URL.Path, "/shards") {
		s.opts.Board.serveShards(w, r)
		return
	}
	http.NotFound(w, r)
}

func (s *Server) serveEvents(w http.ResponseWriter, r *http.Request) {
	if s.bus == nil {
		http.Error(w, "no event bus mounted", http.StatusNotFound)
		return
	}
	s.bus.serveEvents(w, r)
}

// Handle bundles the plane a CLI mounts behind its -serve flag. All
// methods are nil-safe, so call sites stay unconditional when the flag
// is off.
type Handle struct {
	Server *Server
	Bus    *EventBus
	Board  *Board
}

// MountCLI starts the plane for a -serve flag value and prints the
// standard announcement line scripts parse for the bound (possibly
// ephemeral) port. An empty addr returns a nil handle.
func MountCLI(addr string) (*Handle, error) {
	if addr == "" {
		return nil, nil
	}
	h := &Handle{Bus: NewEventBus(), Board: NewBoard()}
	srv, err := Start(Options{Addr: addr, Board: h.Board, Bus: h.Bus})
	if err != nil {
		return nil, err
	}
	h.Server = srv
	fmt.Printf("obsv: serving on %s\n", srv.URL())
	return h, nil
}

// Attach points /metrics at reg via a fresh publisher and tees ring
// into /events (either may be nil). Returns the publisher the
// simulation's writer goroutine must pump (nil handle → nil publisher,
// whose methods are all no-ops).
func (h *Handle) Attach(reg *telemetry.Registry, ring *telemetry.Ring) *telemetry.Publisher {
	if h == nil {
		return nil
	}
	var pub *telemetry.Publisher
	if reg != nil {
		pub = telemetry.NewPublisher(reg)
		h.Server.SetPublisher(pub)
	}
	if ring != nil {
		ring.SetSink(h.Bus.Sink())
	}
	return pub
}

// Close quiesces and shuts the plane down.
func (h *Handle) Close() {
	if h != nil {
		h.Server.Close()
	}
}
