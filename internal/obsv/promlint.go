// A small Prometheus text-exposition linter — enough to catch the
// mistakes a hand-rolled exporter actually makes (bad metric names,
// unparseable values, non-cumulative histogram buckets, a +Inf bucket
// that disagrees with _count) without pulling in a dependency. Shared
// by the obsv tests and the cmd/obsvcheck CI probe.
package obsv

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// LintPromText reads a text exposition and returns the first violation
// found (nil when clean). Checks:
//   - sample names match [a-zA-Z_:][a-zA-Z0-9_:]* and values parse as
//     Go floats (with +Inf/-Inf/NaN accepted),
//   - every sample's base name was declared by a preceding # TYPE line
//     with a known type (counter|gauge|histogram),
//   - histogram _bucket series have an le label, appear in increasing
//     le order, carry non-decreasing cumulative counts, and end with a
//     +Inf bucket equal to the _count sample.
func LintPromText(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	types := map[string]string{}
	type histState struct {
		lastLe    float64
		lastCum   uint64
		infCount  uint64
		sawInf    bool
		count     uint64
		sawCount  bool
		anyBucket bool
	}
	hists := map[string]*histState{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE line", lineNo)
				}
				name, typ := fields[2], fields[3]
				if !validMetricName(name) {
					return fmt.Errorf("line %d: invalid metric name %q in TYPE", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if prev, dup := types[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s (already %s)", lineNo, name, prev)
				}
				types[name] = typ
			}
			continue
		}
		name, labels, valueStr, err := splitSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if !validMetricName(name) {
			return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
		}
		value, err := parseValue(valueStr)
		if err != nil {
			return fmt.Errorf("line %d: bad value %q: %v", lineNo, valueStr, err)
		}
		base, suffix := baseName(name)
		typ, declared := types[base]
		if !declared {
			return fmt.Errorf("line %d: sample %s has no preceding TYPE for %s", lineNo, name, base)
		}
		if typ != "histogram" {
			continue
		}
		h := hists[base]
		if h == nil {
			h = &histState{lastLe: -1}
			hists[base] = h
		}
		switch suffix {
		case "_bucket":
			le, ok := labels["le"]
			if !ok {
				return fmt.Errorf("line %d: %s without le label", lineNo, name)
			}
			leVal, err := parseValue(le)
			if err != nil {
				return fmt.Errorf("line %d: bad le %q: %v", lineNo, le, err)
			}
			if leVal <= h.lastLe {
				return fmt.Errorf("line %d: %s le %q not increasing", lineNo, name, le)
			}
			h.lastLe = leVal
			cum := uint64(value)
			if cum < h.lastCum {
				return fmt.Errorf("line %d: %s cumulative count decreased (%d < %d)",
					lineNo, name, cum, h.lastCum)
			}
			h.lastCum = cum
			h.anyBucket = true
			if le == "+Inf" {
				h.sawInf = true
				h.infCount = cum
			}
		case "_count":
			h.count = uint64(value)
			h.sawCount = true
		case "_sum":
		default:
			return fmt.Errorf("line %d: histogram %s has non-histogram sample %s", lineNo, base, name)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for base, h := range hists {
		if h.anyBucket && !h.sawInf {
			return fmt.Errorf("histogram %s missing +Inf bucket", base)
		}
		if h.sawInf && h.sawCount && h.infCount != h.count {
			return fmt.Errorf("histogram %s: +Inf bucket %d != _count %d", base, h.infCount, h.count)
		}
	}
	return nil
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// baseName strips a histogram series suffix so the sample can be
// matched to its TYPE declaration.
func baseName(name string) (base, suffix string) {
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, s) {
			return strings.TrimSuffix(name, s), s
		}
	}
	return name, ""
}

// splitSample parses `name{labels} value` or `name value`.
func splitSample(line string) (name string, labels map[string]string, value string, err error) {
	labels = map[string]string{}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		end := strings.IndexByte(rest, '}')
		if end < i {
			return "", nil, "", fmt.Errorf("unterminated label set")
		}
		for _, pair := range splitLabels(rest[i+1 : end]) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				return "", nil, "", fmt.Errorf("malformed label %q", pair)
			}
			unq, uerr := strconv.Unquote(v)
			if uerr != nil {
				return "", nil, "", fmt.Errorf("label %s value %s not quoted", k, v)
			}
			labels[k] = unq
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", nil, "", fmt.Errorf("sample line needs name and value")
		}
		name = fields[0]
		rest = fields[1]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return "", nil, "", fmt.Errorf("missing value")
	}
	return name, labels, fields[0], nil
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(body string) []string {
	if body == "" {
		return nil
	}
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '"':
			if i == 0 || body[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, strings.TrimSpace(body[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(body[start:]))
	return out
}

// parseValue parses an exposition-format sample or le value.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}
