package obsv

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"contiguitas/internal/supervise"
)

func TestCampaignLifecycle(t *testing.T) {
	b := NewBoard()
	c := b.Register("t")
	c.ObserveCampaign(2)
	c.ObserveUnits(0, 0, 10)
	c.ObserveUnits(1, 0, 10)
	c.ObserveAttempt(0, 1)
	c.ObserveAttempt(1, 1)
	c.ObserveEvent(supervise.Event{Kind: supervise.EventCrash, Shard: 1, Attempt: 1})
	c.ObserveEvent(supervise.Event{Kind: supervise.EventResume, Shard: 1, Attempt: 2})
	c.ObserveAttempt(1, 2)
	c.ObserveUnits(0, 10, 10)
	c.ObserveEvent(supervise.Event{Kind: supervise.EventDone, Shard: 0, Done: 1})
	c.ObserveUnits(1, 5, 10)

	st := c.Status()
	if st.Shards != 2 || st.Finished != 1 || st.Crashes != 1 || st.Resumed != 1 {
		t.Fatalf("mid-campaign status %+v", st)
	}
	if st.DoneUnits != 15 || st.TotalUnits != 20 || st.Percent != 75 {
		t.Fatalf("units %d/%d (%.0f%%), want 15/20 (75%%)", st.DoneUnits, st.TotalUnits, st.Percent)
	}
	if st.Ended {
		t.Fatal("ended before ObserveEnd")
	}
	rows := c.ShardTable()
	if rows[0].Status != shardDone || rows[1].Status != shardRunning {
		t.Fatalf("shard states %+v", rows)
	}
	if rows[1].Attempts != 2 || rows[1].Crashes != 1 {
		t.Fatalf("shard 1 row %+v", rows[1])
	}

	c.ObserveUnits(1, 10, 10)
	c.ObserveEvent(supervise.Event{Kind: supervise.EventDone, Shard: 1, Done: 2})
	c.ObserveEnd(&supervise.Report{
		Finished: 2, Resumed: 1, Crashes: 1, Complete: true,
	})
	st = c.Status()
	if !st.Ended || !st.Complete || st.Percent != 100 || st.Finished != 2 {
		t.Fatalf("final status %+v", st)
	}
}

// TestUnitsBeforeCampaign: the fleet seeds unit totals before the
// supervisor announces the campaign — the table must grow on demand.
func TestUnitsBeforeCampaign(t *testing.T) {
	c := NewBoard().Register("seed")
	c.ObserveUnits(3, 2, 9)
	c.ObserveCampaign(4)
	rows := c.ShardTable()
	if len(rows) != 4 {
		t.Fatalf("%d shard rows, want 4", len(rows))
	}
	if rows[3].DoneUnits != 2 || rows[3].TotalUnits != 9 {
		t.Fatalf("seeded units lost: %+v", rows[3])
	}
	if rows[0].Status != shardPending {
		t.Fatalf("shard 0 status %q, want pending", rows[0].Status)
	}
}

func TestMarkEndedWithoutUnits(t *testing.T) {
	c := NewBoard().Register("ref")
	c.MarkEnded(true)
	st := c.Status()
	if !st.Ended || !st.Complete || st.Percent != 100 {
		t.Fatalf("status %+v", st)
	}
}

func TestCacheStatusOnlyWhenSeen(t *testing.T) {
	c := NewBoard().Register("c")
	if c.Status().Cache != nil {
		t.Fatal("cache block present before any ObserveCache")
	}
	c.ObserveCache(3, 2, 1)
	st := c.Status()
	if st.Cache == nil || st.Cache.Hits != 3 || st.Cache.Misses != 2 || st.Cache.Rejects != 1 {
		t.Fatalf("cache status %+v", st.Cache)
	}
}

func TestBoardHTTPEndpoints(t *testing.T) {
	b := NewBoard()
	c0 := b.Register("alpha")
	b.Register("beta")
	c0.ObserveCampaign(1)
	c0.ObserveUnits(0, 1, 2)

	rec := httptest.NewRecorder()
	b.serveCampaigns(rec, httptest.NewRequest("GET", "/campaigns", nil))
	var rows []CampaignStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Name != "alpha" || rows[1].ID != 1 {
		t.Fatalf("rows %+v", rows)
	}

	rec = httptest.NewRecorder()
	b.serveShards(rec, httptest.NewRequest("GET", "/campaigns/0/shards", nil))
	var body struct {
		Campaign CampaignStatus `json:"campaign"`
		Shards   []ShardStatus  `json:"shards"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Campaign.Name != "alpha" || len(body.Shards) != 1 || body.Shards[0].DoneUnits != 1 {
		t.Fatalf("shards body %+v", body)
	}

	for path, want := range map[string]int{
		"/campaigns/9/shards":   404, // unknown id
		"/campaigns/x/shards":   400, // unparseable id
		"/campaigns/0/nope":     404, // wrong tail
		"/campaigns/0":          404, // no tail
	} {
		rec = httptest.NewRecorder()
		b.serveShards(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != want {
			t.Errorf("%s -> %d, want %d", path, rec.Code, want)
		}
	}
}
