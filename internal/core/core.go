// Package core ties the pieces of Contiguitas together into the system
// the paper describes: a simulated machine whose kernel confines
// unmovable allocations into a dynamically resized region (§3.2),
// optionally assisted by Contiguitas-HW for pages software cannot move
// (§3.3), together with the baseline Linux layout it is compared
// against, workload attachment, and the measurement helpers behind the
// paper's evaluation (§5).
package core

import (
	"fmt"

	"contiguitas/internal/kernel"
	"contiguitas/internal/mem"
	"contiguitas/internal/trans"
	"contiguitas/internal/workload"
)

// Design selects the memory-management system under test.
type Design uint8

const (
	// DesignLinux is the baseline: one zone, fallback stealing.
	DesignLinux Design = iota
	// DesignContiguitas confines unmovable allocations (OS only).
	DesignContiguitas
	// DesignContiguitasHW adds the hardware extensions, enabling
	// migration of unmovable pages (region defragmentation and
	// unconditional shrinking).
	DesignContiguitasHW
)

// String names the design.
func (d Design) String() string {
	switch d {
	case DesignLinux:
		return "Linux"
	case DesignContiguitas:
		return "Contiguitas"
	case DesignContiguitasHW:
		return "Contiguitas-HW"
	}
	return fmt.Sprintf("design(%d)", uint8(d))
}

// MachineConfig sizes a simulated server.
type MachineConfig struct {
	Design   Design
	MemBytes uint64
	// UnmovableInit/Min/Max size the unmovable region; zero values pick
	// the paper's proportions (1/16 initial on the simulated scale,
	// 4 GB on 64 GB in production).
	UnmovableInit uint64
	UnmovableMin  uint64
	UnmovableMax  uint64
	Seed          uint64
}

// DefaultMachineConfig returns an 8 GB simulation-scale server (the
// paper's 64 GB parameters scale down proportionally; experiments
// document the scale in EXPERIMENTS.md).
func DefaultMachineConfig(d Design) MachineConfig {
	const gb = 1 << 30
	return MachineConfig{
		Design:   d,
		MemBytes: 8 * gb,
		Seed:     1,
	}
}

// Machine is one simulated server under a given design.
type Machine struct {
	Design Design
	K      *kernel.Kernel
}

// KernelConfig is the kernel configuration NewMachine boots with,
// exposed so checkpoint restore can rebuild a machine with the
// identical fingerprint (mode, memory size, region bounds, seed).
func (mc MachineConfig) KernelConfig() kernel.Config {
	mode := kernel.ModeLinux
	if mc.Design != DesignLinux {
		mode = kernel.ModeContiguitas
	}
	cfg := kernel.DefaultConfig(mode)
	cfg.MemBytes = mc.MemBytes
	cfg.Seed = mc.Seed

	init := mc.UnmovableInit
	if init == 0 {
		init = mc.MemBytes / 16
	}
	minB := mc.UnmovableMin
	if minB == 0 {
		minB = mc.MemBytes / 64
	}
	maxB := mc.UnmovableMax
	if maxB == 0 {
		maxB = mc.MemBytes / 2
	}
	cfg.InitialUnmovableBytes = init
	cfg.MinUnmovableBytes = minB
	cfg.MaxUnmovableBytes = maxB
	cfg.MaxResizeStepBytes = mc.MemBytes / 32

	if mc.Design == DesignContiguitasHW {
		cfg.HWMover = kernel.NewAnalyticMover()
	}
	return cfg
}

// NewMachine boots a server.
func NewMachine(mc MachineConfig) *Machine {
	return &Machine{Design: mc.Design, K: kernel.New(mc.KernelConfig())}
}

// RestoreMachine rebuilds a server from a checkpointed kernel state.
// mc must describe the machine the checkpoint was taken on; the
// fingerprint is validated by kernel.Restore.
func RestoreMachine(mc MachineConfig, st *kernel.State) (*Machine, error) {
	k, err := kernel.Restore(mc.KernelConfig(), st)
	if err != nil {
		return nil, err
	}
	return &Machine{Design: mc.Design, K: k}, nil
}

// Attach runs a workload profile on the machine.
func (m *Machine) Attach(p workload.Profile, seed uint64) *workload.Runner {
	return workload.NewRunner(m.K, p, seed)
}

// Scan performs the paper's full physical-memory scan.
func (m *Machine) Scan() *mem.ContiguityStats {
	return m.K.PM().Scan(mem.ScanOrders)
}

// SteadyState describes a machine after a workload warmup — the inputs
// to Figures 11 and 12 and the end-to-end model of Figure 10.
type SteadyState struct {
	Design  Design
	Profile string

	UnmovableBlockFrac map[int]float64 // per scan order
	PotentialFrac      map[int]float64
	FreeContigFrac     map[int]float64
	UnmovableFrameFrac float64

	THPCoverage float64
	Huge1GPages int

	InternalFragFree float64 // §5.2: free fraction inside unmovable 2MB blocks
}

// RunToSteadyState warms the machine with the profile and scans it.
// try1G additionally attempts a dynamic 1 GB HugeTLB allocation of up to
// max1G pages (the Web experiment).
func (m *Machine) RunToSteadyState(p workload.Profile, ticks uint64, seed uint64, max1G int) (*SteadyState, *workload.Runner) {
	r := m.Attach(p, seed)
	r.Run(ticks)

	st := m.Scan()
	ss := &SteadyState{
		Design:             m.Design,
		Profile:            p.Name,
		UnmovableBlockFrac: map[int]float64{},
		PotentialFrac:      map[int]float64{},
		FreeContigFrac:     map[int]float64{},
		UnmovableFrameFrac: st.UnmovableFrameFraction(),
		THPCoverage:        r.THPCoverage(),
	}
	for _, o := range mem.ScanOrders {
		ss.UnmovableBlockFrac[o] = st.UnmovableBlockFraction(o)
		ss.PotentialFrac[o] = st.PotentialFraction(o)
		ss.FreeContigFrac[o] = st.FreeContigFraction(o)
	}
	if m.K.Mode() == kernel.ModeContiguitas {
		fs := m.K.PM().InternalFragmentation(0, m.K.Boundary())
		ss.InternalFragFree = fs.MeanFreeInside
	}
	if max1G > 0 {
		res := m.K.AllocHugeTLB(mem.Order1G, max1G)
		ss.Huge1GPages = res.Allocated
	}
	return ss, r
}

// EndToEnd evaluates the Figure 10 performance model for a steady
// state: the achieved huge-page coverage feeds the translation model.
func (ss *SteadyState) EndToEnd(tlb trans.TLBConfig, w trans.Workload, userBytes uint64) (walkPct float64, cov trans.Coverage) {
	cov = trans.Coverage{Frac2M: ss.THPCoverage}
	if ss.Huge1GPages > 0 && userBytes > 0 {
		f1g := float64(uint64(ss.Huge1GPages)<<30) / float64(userBytes)
		if f1g > 1 {
			f1g = 1
		}
		cov.Frac1G = f1g
		cov.Frac2M *= 1 - f1g
	}
	d, i := tlb.WalkPct(w, cov)
	return d + i, cov
}
