package core

import (
	"contiguitas/internal/hw"
	"contiguitas/internal/hw/cache"
	"contiguitas/internal/hw/contighw"
	"contiguitas/internal/hw/dram"
	"contiguitas/internal/hw/engine"
	"contiguitas/internal/kernel"
	"contiguitas/internal/mem"
	"contiguitas/internal/resize"
	"contiguitas/internal/workload"
)

// This file implements the ablations DESIGN.md §5 calls out: each
// isolates one design choice of the paper and quantifies its
// contribution.

// BiasAblationRow compares the §3.2 placement bias on and off.
type BiasAblationRow struct {
	Bias            bool
	Shrinks         uint64
	ShrinkFails     uint64
	FinalUnmovBytes uint64
}

// AblationPlacementBias runs the same workload with and without the
// address bias that keeps long-lived unmovable allocations away from
// the region boundary; without it, shrinking is blocked far more often.
func AblationPlacementBias(cfg ExpConfig) []BiasAblationRow {
	var rows []BiasAblationRow
	for _, bias := range []bool{true, false} {
		kc := kernel.DefaultConfig(kernel.ModeContiguitas)
		kc.MemBytes = cfg.MemBytes
		kc.InitialUnmovableBytes = cfg.MemBytes / 8 // oversized: must shrink
		kc.MinUnmovableBytes = cfg.MemBytes / 64
		kc.MaxUnmovableBytes = cfg.MemBytes / 2
		kc.MaxResizeStepBytes = cfg.MemBytes / 32
		kc.NoPlacementBias = !bias
		kc.Seed = cfg.Seed
		k := kernel.New(kc)
		r := workload.NewRunner(k, workload.CacheA(), cfg.Seed)
		r.Run(cfg.WarmupTicks)
		rows = append(rows, BiasAblationRow{
			Bias:            bias,
			Shrinks:         k.Shrinks,
			ShrinkFails:     k.ShrinkFails,
			FinalUnmovBytes: k.UnmovableRegionBytes(),
		})
	}
	return rows
}

// StealAblationRow compares Linux with fallback stealing on and off.
type StealAblationRow struct {
	Stealing      bool
	UnmovBlockPct float64
	AllocFailures uint64
	StealsConvert uint64
	StealsPollute uint64
}

// AblationFallbackStealing isolates stealing's role: with it, unmovable
// allocations scatter but always succeed; without it, scatter vanishes
// at the price of unmovable allocation failures — exactly the tension
// Contiguitas resolves with a dynamically-sized dedicated region.
func AblationFallbackStealing(cfg ExpConfig) []StealAblationRow {
	var rows []StealAblationRow
	for _, stealing := range []bool{true, false} {
		kc := kernel.DefaultConfig(kernel.ModeLinux)
		kc.MemBytes = cfg.MemBytes
		kc.NoFallbackStealing = !stealing
		kc.Seed = cfg.Seed
		k := kernel.New(kc)
		r := workload.NewRunner(k, workload.CacheA(), cfg.Seed)
		r.Run(cfg.WarmupTicks)
		st := k.PM().Scan([]int{mem.Order2M})
		rows = append(rows, StealAblationRow{
			Stealing:      stealing,
			UnmovBlockPct: st.UnmovableBlockFraction(mem.Order2M) * 100,
			AllocFailures: r.UnmovableAllocFailures,
			StealsConvert: k.ZoneSteals().Converting,
			StealsPollute: k.ZoneSteals().Polluting,
		})
	}
	return rows
}

// ResizeSweepRow is one coefficient setting's outcome.
type ResizeSweepRow struct {
	Coeff          resize.Coefficients
	MeanUnmovBytes uint64
	UnmovFailures  uint64
	MovPressure    float64
}

// AblationResizeCoefficients sweeps the Algorithm-1 coefficients,
// exposing the waste/pressure trade-off the paper tunes empirically.
func AblationResizeCoefficients(cfg ExpConfig, coeffs []resize.Coefficients) []ResizeSweepRow {
	var rows []ResizeSweepRow
	for _, c := range coeffs {
		kc := kernel.DefaultConfig(kernel.ModeContiguitas)
		kc.MemBytes = cfg.MemBytes
		kc.InitialUnmovableBytes = cfg.MemBytes / 16
		kc.MinUnmovableBytes = cfg.MemBytes / 64
		kc.MaxUnmovableBytes = cfg.MemBytes / 2
		kc.MaxResizeStepBytes = cfg.MemBytes / 32
		kc.ResizeCoeff = c
		// Evaluate the policy frequently so the coefficients, not the
		// urgent-expansion path, dominate the trajectory.
		kc.ResizePeriodTicks = 10
		kc.Seed = cfg.Seed
		k := kernel.New(kc)
		r := workload.NewRunner(k, workload.CI(), cfg.Seed) // burstiest profile
		var sumUnmov uint64
		var samples uint64
		for t := uint64(0); t < cfg.WarmupTicks; t++ {
			r.Step()
			if t%10 == 9 {
				sumUnmov += k.UnmovableRegionBytes()
				samples++
			}
		}
		rows = append(rows, ResizeSweepRow{
			Coeff:          c,
			MeanUnmovBytes: sumUnmov / samples,
			UnmovFailures:  r.UnmovableAllocFailures,
			MovPressure:    k.PSI().Pressure(0), // psi.RegionMovable
		})
	}
	return rows
}

// TableEntriesRow reports one metadata-table capacity.
type TableEntriesRow struct {
	Entries      int
	Accepted     int
	RejectedFull int
}

// AblationTableEntries measures how many concurrent migrations each
// metadata-table capacity admits when a burst of requests arrives
// (§5.3's sizing question).
func AblationTableEntries(entries []int, burst int) []TableEntriesRow {
	var rows []TableEntriesRow
	for _, n := range entries {
		p := hw.DefaultParams()
		h := cache.New(p, dram.New(dram.DefaultConfig()))
		eng := engine.New()
		cc := contighw.DefaultConfig(contighw.Noncacheable)
		cc.EntriesPerSlice = n
		e := contighw.New(cc, h, eng)
		row := TableEntriesRow{Entries: n}
		for i := 0; i < burst; i++ {
			_, err := e.Submit(contighw.Descriptor{
				Op:  contighw.OpMigrate,
				Src: uint64(1000 + i), Dst: uint64(5000 + i),
				StartCopy: true,
			})
			switch err {
			case nil:
				row.Accepted++
			case contighw.ErrTableFull:
				row.RejectedFull++
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// SliceCopyRow compares the chained slice handoff against fully
// parallel slices.
type SliceCopyRow struct {
	Parallel bool
	Cycles   uint64
}

// AblationSliceParallelism measures one 4 KB copy under both copy
// orchestrations (§3.3 chooses chained handoff to limit interconnect
// pressure; parallel is faster).
func AblationSliceParallelism() []SliceCopyRow {
	var rows []SliceCopyRow
	for _, parallel := range []bool{false, true} {
		p := hw.DefaultParams()
		h := cache.New(p, dram.New(dram.DefaultConfig()))
		eng := engine.New()
		cc := contighw.DefaultConfig(contighw.Noncacheable)
		cc.ParallelSlices = parallel
		e := contighw.New(cc, h, eng)
		var done uint64
		if _, err := e.Submit(contighw.Descriptor{
			Op: contighw.OpMigrate, Src: 100, Dst: 200, StartCopy: true,
			OnComplete: func() { done = eng.Now() },
		}); err != nil {
			panic(err)
		}
		eng.Run()
		rows = append(rows, SliceCopyRow{Parallel: parallel, Cycles: done})
	}
	return rows
}
