package core

import (
	"testing"

	"contiguitas/internal/resize"
)

func TestAblationPlacementBias(t *testing.T) {
	cfg := testExp()
	rows := AblationPlacementBias(cfg)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	withBias, without := rows[0], rows[1]
	if !withBias.Bias || without.Bias {
		t.Fatal("row order")
	}
	// The bias exists to make shrinking succeed: the biased run must
	// not fail shrinks more often than the unbiased one, and should end
	// with a region no larger.
	if withBias.ShrinkFails > without.ShrinkFails {
		t.Fatalf("bias increased shrink failures: %d vs %d", withBias.ShrinkFails, without.ShrinkFails)
	}
	if withBias.FinalUnmovBytes > without.FinalUnmovBytes {
		t.Fatalf("bias ended with a larger region: %d vs %d",
			withBias.FinalUnmovBytes, without.FinalUnmovBytes)
	}
}

func TestAblationFallbackStealing(t *testing.T) {
	cfg := testExp()
	rows := AblationFallbackStealing(cfg)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	with, without := rows[0], rows[1]
	if !with.Stealing || without.Stealing {
		t.Fatal("row order")
	}
	if with.StealsConvert+with.StealsPollute == 0 {
		t.Fatal("stealing run must actually steal")
	}
	if without.StealsConvert+without.StealsPollute != 0 {
		t.Fatal("no-stealing run must not steal")
	}
	// The trade-off: stealing scatters unmovable memory; disabling it
	// trades scatter for unmovable allocation failures.
	if without.AllocFailures == 0 {
		t.Fatal("without stealing, unmovable allocations must eventually fail")
	}
	if with.AllocFailures > without.AllocFailures {
		t.Fatal("stealing must prevent most allocation failures")
	}
	if with.UnmovBlockPct <= without.UnmovBlockPct {
		t.Fatalf("stealing must increase scatter: %.1f%% vs %.1f%%",
			with.UnmovBlockPct, without.UnmovBlockPct)
	}
}

func TestAblationResizeCoefficients(t *testing.T) {
	cfg := testExp()
	cfg.WarmupTicks = 100
	gentle := resize.DefaultCoefficients
	aggressive := resize.Coefficients{
		UnmovExpand: 0.5, MovExpand: 0.1, UnmovShrink: 0.001, MovShrink: 0.002,
	}
	rows := AblationResizeCoefficients(cfg, []resize.Coefficients{gentle, aggressive})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Aggressive expansion with reluctant shrinking must keep a region
	// at least as large on average.
	if rows[1].MeanUnmovBytes < rows[0].MeanUnmovBytes {
		t.Fatalf("aggressive coefficients shrank more: %d vs %d",
			rows[1].MeanUnmovBytes, rows[0].MeanUnmovBytes)
	}
}

func TestAblationTableEntries(t *testing.T) {
	rows := AblationTableEntries([]int{1, 4, 16, 64}, 32)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		want := r.Entries
		if want > 32 {
			want = 32
		}
		if r.Accepted != want {
			t.Fatalf("entries=%d accepted=%d, want %d", r.Entries, r.Accepted, want)
		}
		if r.Accepted+r.RejectedFull != 32 {
			t.Fatal("accounting")
		}
		if i > 0 && r.Accepted < rows[i-1].Accepted {
			t.Fatal("capacity must not reduce admissions")
		}
	}
}

func TestAblationSliceParallelism(t *testing.T) {
	rows := AblationSliceParallelism()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	chained, parallel := rows[0], rows[1]
	if chained.Parallel || !parallel.Parallel {
		t.Fatal("row order")
	}
	if parallel.Cycles >= chained.Cycles {
		t.Fatalf("parallel (%d) must beat chained (%d)", parallel.Cycles, chained.Cycles)
	}
}
