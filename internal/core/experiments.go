package core

import (
	hwp "contiguitas/internal/hw"
	"contiguitas/internal/hw/contighw"
	"contiguitas/internal/hw/platform"
	"contiguitas/internal/kernel"
	"contiguitas/internal/mem"
	"contiguitas/internal/trans"
	"contiguitas/internal/workload"
)

// ExpConfig scales the experiments: tests run small machines, the CLI
// defaults to the simulation-scale 8 GB documented in EXPERIMENTS.md.
type ExpConfig struct {
	MemBytes    uint64
	WarmupTicks uint64
	Seed        uint64
	// Max1GPages bounds the dynamic 1 GB reservation attempt (the paper
	// allocated 4 GB worth on 64 GB servers).
	Max1GPages int
}

// DefaultExpConfig is the simulation scale used by cmd/contigsim.
func DefaultExpConfig() ExpConfig {
	return ExpConfig{
		MemBytes:    8 << 30,
		WarmupTicks: 400,
		Seed:        42,
		Max1GPages:  2,
	}
}

// Fig2Row is one hardware generation of Figure 2.
type Fig2Row struct {
	Name        string
	RelCapacity float64
	Coverage4K  float64
	Coverage2M  float64
	Coverage1G  float64
}

// Fig2 reproduces the memory-capacity versus TLB-coverage trend.
func Fig2() []Fig2Row {
	base := trans.Generations[0]
	var rows []Fig2Row
	for _, g := range trans.Generations {
		rows = append(rows, Fig2Row{
			Name:        g.Name,
			RelCapacity: g.RelativeCapacity(base),
			Coverage4K:  g.TLBCoverage(trans.Page4K),
			Coverage2M:  g.TLBCoverage(trans.Page2M),
			Coverage1G:  g.TLBCoverage(trans.Page1G),
		})
	}
	return rows
}

// Fig3Row is one bar group of Figure 3.
type Fig3Row struct {
	Service  string
	PageSize trans.PageSize
	DataPct  float64
	InstrPct float64
}

// Fig3 reproduces the page-walk-cycle characterisation: each service at
// 4 KB and 2 MB, and Web additionally with its 1 GB HugeTLB heap.
func Fig3() []Fig3Row {
	tlb := trans.DefaultTLB()
	var rows []Fig3Row
	add := func(p workload.Profile, ps trans.PageSize, cov trans.Coverage) {
		d, i := tlb.WalkPct(p.Trans, cov)
		rows = append(rows, Fig3Row{Service: p.Name, PageSize: ps, DataPct: d, InstrPct: i})
	}
	services := []workload.Profile{workload.Web(), workload.CacheA(), workload.CacheB(), workload.Ads()}
	for _, p := range services {
		add(p, trans.Page4K, trans.Coverage{})
		add(p, trans.Page2M, trans.Coverage{Frac2M: 1})
		if p.Name == "Web" {
			f1g := float64(uint64(4)<<30) / float64(p.Trans.DataFootprint)
			add(p, trans.Page1G, trans.Coverage{Frac2M: 1 - f1g, Frac1G: f1g})
		}
	}
	return rows
}

// FragSetup names the Figure 10 fragmentation scenarios.
type FragSetup uint8

const (
	FragFull FragSetup = iota
	FragPartial
	FragNone
)

// String names the setup.
func (f FragSetup) String() string {
	switch f {
	case FragFull:
		return "full"
	case FragPartial:
		return "partial"
	}
	return "none"
}

// Fig10Row is one service's end-to-end comparison.
type Fig10Row struct {
	Service string

	WalkLinuxFull    float64 // total page-walk % under each scenario
	WalkLinuxPartial float64
	WalkContiguitas  float64
	WalkContig2MOnly float64 // Contiguitas without the 1 GB reservation

	THPLinuxFull    float64
	THPLinuxPartial float64
	THPContiguitas  float64
	Huge1GPages     int

	// Relative performance of Contiguitas over each Linux scenario, and
	// the share of the win attributable to 1 GB pages (Web only).
	GainOverFull    float64
	GainOverPartial float64
	Gain1G          float64
}

// scenarioKey identifies a deterministic scenario run for caching.
type scenarioKey struct {
	cfg    ExpConfig
	design Design
	setup  FragSetup
	prof   string
	try1G  int
}

// steadyCache memoises scenario runs: Figures 11 and 12 share the same
// steady states, and experiments are deterministic by construction.
var steadyCache = map[scenarioKey]*SteadyState{}

// runScenarioCached returns the memoised steady state for a scenario.
func runScenarioCached(cfg ExpConfig, design Design, setup FragSetup, p workload.Profile, try1G int) *SteadyState {
	key := scenarioKey{cfg: cfg, design: design, setup: setup, prof: p.Name, try1G: try1G}
	if ss, ok := steadyCache[key]; ok {
		return ss
	}
	ss, _, _ := runScenario(cfg, design, setup, p, try1G)
	steadyCache[key] = ss
	return ss
}

// runScenario boots a machine, applies the fragmentation setup, runs
// the workload to steady state, and returns the scan plus runner.
func runScenario(cfg ExpConfig, design Design, setup FragSetup, p workload.Profile, try1G int) (*SteadyState, *workload.Runner, *Machine) {
	mc := DefaultMachineConfig(design)
	mc.MemBytes = cfg.MemBytes
	mc.Seed = cfg.Seed
	m := NewMachine(mc)
	switch setup {
	case FragFull:
		workload.DefaultFragmenter(cfg.Seed).Run(m.K)
	case FragPartial:
		workload.PartialFragmenter(m.K, p, cfg.WarmupTicks/2, cfg.Seed+7)
	}
	ss, r := m.RunToSteadyState(p, cfg.WarmupTicks, cfg.Seed+13, try1G)
	return ss, r, m
}

// Fig10 reproduces the end-to-end comparison for Web, Cache A and
// Cache B: Linux on fully and partially fragmented servers versus
// Contiguitas, with Web additionally reserving dynamic 1 GB pages.
func Fig10(cfg ExpConfig) []Fig10Row {
	tlb := trans.DefaultTLB()
	var rows []Fig10Row
	for _, p := range []workload.Profile{workload.Web(), workload.CacheA(), workload.CacheB()} {
		try1G := 0
		if p.Name == "Web" {
			try1G = cfg.Max1GPages
		}
		ssFull := runScenarioCached(cfg, DesignLinux, FragFull, p, try1G)
		ssPart := runScenarioCached(cfg, DesignLinux, FragPartial, p, try1G)
		ssCont := runScenarioCached(cfg, DesignContiguitas, FragNone, p, try1G)

		userBytes := uint64(float64(cfg.MemBytes) * p.UserFrac)
		wFull, _ := ssFull.EndToEnd(tlb, p.Trans, userBytes)
		wPart, _ := ssPart.EndToEnd(tlb, p.Trans, userBytes)
		wCont, _ := ssCont.EndToEnd(tlb, p.Trans, userBytes)

		// Contiguitas without 1 GB pages: same THP coverage, no 1 GB.
		no1g := *ssCont
		no1g.Huge1GPages = 0
		w2m, _ := no1g.EndToEnd(tlb, p.Trans, userBytes)

		rows = append(rows, Fig10Row{
			Service:          p.Name,
			WalkLinuxFull:    wFull,
			WalkLinuxPartial: wPart,
			WalkContiguitas:  wCont,
			WalkContig2MOnly: w2m,
			THPLinuxFull:     ssFull.THPCoverage,
			THPLinuxPartial:  ssPart.THPCoverage,
			THPContiguitas:   ssCont.THPCoverage,
			Huge1GPages:      ssCont.Huge1GPages,
			GainOverFull:     trans.RelativePerf(wFull, wCont),
			GainOverPartial:  trans.RelativePerf(wPart, wCont),
			Gain1G:           trans.RelativePerf(w2m, wCont),
		})
	}
	return rows
}

// Fig11Row is one service's unmovable-block comparison.
type Fig11Row struct {
	Service          string
	LinuxPct         float64
	ContiguitasPct   float64
	InternalFragFree float64 // §5.2, from the Contiguitas run
}

// Fig11 reproduces the unmovable 2 MB block percentages (Linux 19-42 %,
// average 31 %; Contiguitas ≤9 %, average 7 % in the paper).
func Fig11(cfg ExpConfig) []Fig11Row {
	var rows []Fig11Row
	for _, p := range workload.Profiles() {
		ssL := runScenarioCached(cfg, DesignLinux, FragNone, p, 0)
		ssC := runScenarioCached(cfg, DesignContiguitas, FragNone, p, 0)
		rows = append(rows, Fig11Row{
			Service:          p.Name,
			LinuxPct:         ssL.UnmovableBlockFrac[mem.Order2M] * 100,
			ContiguitasPct:   ssC.UnmovableBlockFrac[mem.Order2M] * 100,
			InternalFragFree: ssC.InternalFragFree,
		})
	}
	return rows
}

// Fig12Row is one service's potential-contiguity comparison.
type Fig12Row struct {
	Service string
	Order   int
	Linux   float64 // % of memory compactable into blocks of Order
	Contig  float64
}

// Fig12 reproduces potential memory contiguity under perfect software
// compaction at 2 MB, 32 MB and 1 GB.
func Fig12(cfg ExpConfig) []Fig12Row {
	var rows []Fig12Row
	for _, p := range workload.Profiles() {
		ssL := runScenarioCached(cfg, DesignLinux, FragNone, p, 0)
		ssC := runScenarioCached(cfg, DesignContiguitas, FragNone, p, 0)
		for _, o := range []int{mem.Order2M, mem.Order32M, mem.Order1G} {
			rows = append(rows, Fig12Row{
				Service: p.Name,
				Order:   o,
				Linux:   ssL.PotentialFrac[o] * 100,
				Contig:  ssC.PotentialFrac[o] * 100,
			})
		}
	}
	return rows
}

// Fig13 returns the page-unavailability series (delegating to the
// hardware platform).
func Fig13() []platform.Fig13Point { return platform.Fig13Series(8) }

// Sec53Row is one migration-rate measurement of §5.3.
type Sec53Row struct {
	App      string
	Mode     contighw.Mode
	Rate     float64 // migrations per second
	Requests uint64
	LossPct  float64 // throughput loss versus the zero-rate baseline
}

// Sec53 reproduces the migration-rate impact experiment on the
// NGINX-like and memcached-like request servers.
func Sec53(duration uint64) []Sec53Row {
	apps := []struct {
		name string
		cfg  platform.ServeConfig
	}{
		{"nginx", nginxServe(duration)},
		{"memcached", memcachedServe(duration)},
	}
	var rows []Sec53Row
	for _, app := range apps {
		for _, mode := range []contighw.Mode{contighw.Noncacheable, contighw.Cacheable} {
			var base float64
			for _, rate := range []float64{0, 100, 1000} {
				md := mode
				m := platform.NewMachine(hwp.DefaultParams(), &md)
				c := app.cfg
				c.MigrationsPerSec = rate
				res := platform.ServeBenchmark(m, c)
				if rate == 0 {
					base = res.RequestsPerMCycle
				}
				loss := 0.0
				if base > 0 {
					loss = (1 - res.RequestsPerMCycle/base) * 100
				}
				rows = append(rows, Sec53Row{
					App: app.name, Mode: mode, Rate: rate,
					Requests: res.Requests, LossPct: loss,
				})
			}
		}
	}
	return rows
}

// nginxServe configures the NGINX-like server: large static working
// set, heavier per-request buffer traffic, insensitive to huge pages.
func nginxServe(duration uint64) platform.ServeConfig {
	c := platform.DefaultServeConfig()
	c.AppPages = 8192
	c.AccessesPerRequest = 30
	c.BufAccessesPerRequest = 10
	c.WriteFrac = 0.2
	c.DurationCycles = duration
	return c
}

// memcachedServe configures the memcached-like server (the paper's
// Cache B proxy).
func memcachedServe(duration uint64) platform.ServeConfig {
	c := platform.DefaultServeConfig()
	c.DurationCycles = duration
	return c
}

// MemcachedHugePageGain reproduces the §5.3 claim that memcached
// improves by ~7 % with 2 MB pages: the memcached translation profile at
// full 2 MB coverage versus 4 KB.
func MemcachedHugePageGain() float64 {
	tlb := trans.DefaultTLB()
	w := trans.Workload{
		Name:             "memcached",
		DataFootprint:    4 << 30,
		InstrFootprint:   64 << 20,
		BaseWalkPctData:  7.0,
		BaseWalkPctInstr: 0.8,
		HotTheta:         0.7,
	}
	d4, i4 := tlb.WalkPct(w, trans.Coverage{})
	d2, i2 := tlb.WalkPct(w, trans.Coverage{Frac2M: 1})
	return trans.RelativePerf(d4+i4, d2+i2)
}

// SizingReport is the §5.3 metadata-table sizing analysis.
type SizingReport struct {
	// InvalidationWindowUs: with 40K-100K kernel entries per second per
	// core, a local invalidation opportunity arrives within ~25 µs.
	InvalidationWindowUs float64
	// CopyUs is the conservative 4 KB copy estimate used for sizing.
	CopyUs float64
	// MigrationsPerSecPerEntry is the sustainable rate of one entry.
	MigrationsPerSecPerEntry float64
	Entries                  int
	Area                     contighw.AreaModel
}

// Sizing reproduces the metadata-table sizing argument.
func Sizing() SizingReport {
	window := 25.0
	copyUs := 5.0
	return SizingReport{
		InvalidationWindowUs:     window,
		CopyUs:                   copyUs,
		MigrationsPerSecPerEntry: 1e6 / (window + copyUs),
		Entries:                  16,
		Area:                     contighw.DefaultAreaModel(),
	}
}

// MigrationCostTable exposes the software-migration cost model used in
// kernel-level accounting, for the ablation output.
func MigrationCostTable(maxVictims int) []uint64 {
	mcm := kernel.DefaultMigrationCostModel()
	var out []uint64
	for v := 1; v <= maxVictims; v++ {
		out = append(out, mcm.UnavailableCycles(v))
	}
	return out
}
