package core

import (
	"testing"

	"contiguitas/internal/hw/contighw"
	"contiguitas/internal/mem"
	"contiguitas/internal/trans"
	"contiguitas/internal/workload"
)

// testExp returns a small, fast experiment scale.
func testExp() ExpConfig {
	return ExpConfig{
		MemBytes:    512 << 20,
		WarmupTicks: 120,
		Seed:        3,
		Max1GPages:  0,
	}
}

func TestDesignString(t *testing.T) {
	if DesignLinux.String() != "Linux" || DesignContiguitas.String() != "Contiguitas" ||
		DesignContiguitasHW.String() != "Contiguitas-HW" {
		t.Fatal("design names")
	}
}

func TestNewMachineDesigns(t *testing.T) {
	for _, d := range []Design{DesignLinux, DesignContiguitas, DesignContiguitasHW} {
		mc := DefaultMachineConfig(d)
		mc.MemBytes = 256 << 20
		m := NewMachine(mc)
		if m.K == nil {
			t.Fatalf("%v: nil kernel", d)
		}
		st := m.Scan()
		if st.FreePages == 0 {
			t.Fatalf("%v: no free memory at boot", d)
		}
	}
}

func TestRunToSteadyState(t *testing.T) {
	mc := DefaultMachineConfig(DesignContiguitas)
	mc.MemBytes = 512 << 20
	m := NewMachine(mc)
	ss, r := m.RunToSteadyState(workload.Web(), 100, 5, 0)
	if ss.Profile != "Web" || ss.Design != DesignContiguitas {
		t.Fatal("labels wrong")
	}
	if ss.THPCoverage <= 0 {
		t.Fatal("no THP coverage measured")
	}
	if ss.UnmovableBlockFrac[mem.Order2M] <= 0 {
		t.Fatal("no unmovable blocks measured")
	}
	if ss.InternalFragFree <= 0 || ss.InternalFragFree >= 1 {
		t.Fatalf("internal fragmentation = %v, want in (0,1)", ss.InternalFragFree)
	}
	if r == nil {
		t.Fatal("runner missing")
	}
}

func TestFig2Shape(t *testing.T) {
	rows := Fig2()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[4].RelCapacity != 8 {
		t.Fatalf("Gen5 capacity = %v", rows[4].RelCapacity)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Coverage4K > rows[i-1].Coverage4K {
			t.Fatal("4K coverage must not grow")
		}
	}
	if rows[4].Coverage1G != 1 {
		t.Fatal("1GB coverage must stay complete")
	}
}

func TestFig3Shape(t *testing.T) {
	rows := Fig3()
	// 4 services x 2 page sizes + Web's 1GB bar.
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]Fig3Row{}
	for _, r := range rows {
		byKey[r.Service+"/"+r.PageSize.String()] = r
	}
	web4k := byKey["Web/4KB"]
	web2m := byKey["Web/2MB"]
	web1g := byKey["Web/1GB"]
	if web4k.DataPct != 14 || web4k.InstrPct != 6 {
		t.Fatalf("Web 4K anchors: %+v", web4k)
	}
	if !(web2m.InstrPct < web4k.InstrPct*0.6) {
		t.Fatal("2MB must roughly halve Web instruction walks")
	}
	if !(web1g.DataPct < web2m.DataPct && web1g.DataPct < 10) {
		t.Fatalf("1GB must cut Web data walks: %v", web1g.DataPct)
	}
}

func TestFig11Separation(t *testing.T) {
	rows := Fig11(testExp())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	var linSum, conSum float64
	for _, r := range rows {
		if r.ContiguitasPct >= r.LinuxPct {
			t.Fatalf("%s: Contiguitas %.1f%% not below Linux %.1f%%",
				r.Service, r.ContiguitasPct, r.LinuxPct)
		}
		linSum += r.LinuxPct
		conSum += r.ContiguitasPct
	}
	if linSum/4 < 1.5*(conSum/4) {
		t.Fatalf("averages not separated: linux=%.1f contiguitas=%.1f", linSum/4, conSum/4)
	}
}

func TestFig12ContiguitasDominates(t *testing.T) {
	rows := Fig12(testExp())
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Order == mem.Order2M && r.Contig < r.Linux {
			t.Fatalf("%s@2M: Contiguitas %.1f%% below Linux %.1f%%", r.Service, r.Contig, r.Linux)
		}
	}
}

func TestFig10Ordering(t *testing.T) {
	cfg := testExp()
	cfg.Max1GPages = 0
	rows := Fig10(cfg)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.GainOverFull < 1.0 {
			t.Fatalf("%s: no gain over fully fragmented Linux: %v", r.Service, r.GainOverFull)
		}
		if r.GainOverFull < r.GainOverPartial-1e-9 {
			t.Fatalf("%s: gain over full (%v) below gain over partial (%v)",
				r.Service, r.GainOverFull, r.GainOverPartial)
		}
		if r.THPContiguitas < r.THPLinuxFull {
			t.Fatalf("%s: Contiguitas THP %.2f below fragmented Linux %.2f",
				r.Service, r.THPContiguitas, r.THPLinuxFull)
		}
	}
}

func TestFig13Delegates(t *testing.T) {
	pts := Fig13()
	if len(pts) != 8 {
		t.Fatalf("points = %d", len(pts))
	}
}

func TestMemcachedHugePageGain(t *testing.T) {
	g := MemcachedHugePageGain()
	// Paper: ~7% improvement with 2MB pages.
	if g < 1.04 || g > 1.10 {
		t.Fatalf("memcached 2MB gain = %v, want ~1.07", g)
	}
}

func TestSizingReport(t *testing.T) {
	s := Sizing()
	if s.Entries != 16 {
		t.Fatal("16 entries per slice")
	}
	// One entry already sustains tens of thousands of migrations/sec
	// (paper: "a single entry already provides a very high theoretical
	// number of migrations/second").
	if s.MigrationsPerSecPerEntry < 10000 {
		t.Fatalf("per-entry rate = %v", s.MigrationsPerSecPerEntry)
	}
	if s.Area.AreaMM2() <= 0 {
		t.Fatal("area model missing")
	}
}

func TestSec53Small(t *testing.T) {
	rows := Sec53(400_000)
	// 2 apps x 2 modes x 3 rates.
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Rate == 0 && r.LossPct != 0 {
			t.Fatalf("baseline loss = %v", r.LossPct)
		}
		if r.Requests == 0 {
			t.Fatalf("%s/%v: no requests", r.App, r.Mode)
		}
		if r.Rate > 0 && r.LossPct > 2.0 {
			t.Fatalf("%s/%v@%v: loss %.2f%% too high", r.App, r.Mode, r.Rate, r.LossPct)
		}
	}
	_ = contighw.Noncacheable
}

func TestEndToEndCoverageComposition(t *testing.T) {
	ss := &SteadyState{THPCoverage: 0.8, Huge1GPages: 1}
	tlb := trans.DefaultTLB()
	w := workload.Web().Trans
	walk, cov := ss.EndToEnd(tlb, w, 4<<30)
	if cov.Frac1G <= 0 || cov.Frac2M+cov.Frac1G > 1+1e-9 {
		t.Fatalf("coverage = %+v", cov)
	}
	noHuge := &SteadyState{THPCoverage: 0.8}
	walk2, _ := noHuge.EndToEnd(tlb, w, 4<<30)
	if walk >= walk2 {
		t.Fatal("1GB pages must reduce walk cycles")
	}
}

func TestMigrationCostTable(t *testing.T) {
	tbl := MigrationCostTable(8)
	if len(tbl) != 8 {
		t.Fatal("length")
	}
	for i := 1; i < len(tbl); i++ {
		if tbl[i] <= tbl[i-1] {
			t.Fatal("must grow with victims")
		}
	}
}
