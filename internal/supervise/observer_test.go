package supervise

import (
	"context"
	"testing"
	"time"
)

// recorder captures the Observer call sequence as flat step strings so
// the ordering contract can be asserted literally.
type recorder struct {
	steps  []string
	events []Event
	rep    Report
}

func (r *recorder) ObserveCampaign(shards int) {
	r.steps = append(r.steps, "campaign")
}

func (r *recorder) ObserveAttempt(shard, attempt int) {
	r.steps = append(r.steps, "attempt")
}

func (r *recorder) ObserveEvent(ev Event) {
	r.steps = append(r.steps, "event")
	r.events = append(r.events, ev)
}

func (r *recorder) ObserveEnd(rep *Report) {
	r.steps = append(r.steps, "end")
	// The contract says copy what you retain.
	r.rep = *rep
}

// TestObserverOrdering checks the full contract on a flaky campaign:
// exactly one ObserveCampaign first, exactly one ObserveEnd last, and
// ObserveEvent seeing the same ordered stream as OnEvent.
func TestObserverOrdering(t *testing.T) {
	rec := &recorder{}
	var onEvent []Event
	rep := Run(context.Background(), Config{
		Shards:      3,
		MaxAttempts: 5,
		BackoffBase: time.Microsecond,
		Open: func(shard, attempt int) (Shard, error) {
			if shard == 1 {
				return &flakyShard{attempt: attempt, failPast: 2}, nil
			}
			return &countShard{steps: shard + 1}, nil
		},
		OnEvent:  func(ev Event) { onEvent = append(onEvent, ev) },
		Observer: rec,
	})
	if !rep.Complete {
		t.Fatalf("campaign incomplete: %s", rep)
	}

	if len(rec.steps) == 0 || rec.steps[0] != "campaign" {
		t.Fatalf("first observer call %v, want campaign", rec.steps)
	}
	if rec.steps[len(rec.steps)-1] != "end" {
		t.Fatalf("last observer call %v, want end", rec.steps)
	}
	var campaigns, ends, attempts int
	for i, s := range rec.steps {
		switch s {
		case "campaign":
			campaigns++
			if i != 0 {
				t.Fatalf("ObserveCampaign at position %d", i)
			}
		case "end":
			ends++
			if i != len(rec.steps)-1 {
				t.Fatalf("ObserveEnd at position %d of %d", i, len(rec.steps))
			}
		case "attempt":
			attempts++
		}
	}
	if campaigns != 1 || ends != 1 {
		t.Fatalf("campaign=%d end=%d, want exactly one each", campaigns, ends)
	}
	// 3 shards: shard 1 crashes twice, so 3 first attempts + 2 retries.
	if attempts != 5 {
		t.Fatalf("attempts observed = %d, want 5", attempts)
	}

	// The observer's event stream is the same stream OnEvent saw.
	if len(rec.events) != len(onEvent) {
		t.Fatalf("observer saw %d events, OnEvent saw %d", len(rec.events), len(onEvent))
	}
	for i := range onEvent {
		a, b := rec.events[i], onEvent[i]
		if a.Kind != b.Kind || a.Shard != b.Shard || a.Attempt != b.Attempt || a.Done != b.Done {
			t.Fatalf("event %d diverged: observer %+v, OnEvent %+v", i, a, b)
		}
	}

	// The copied final report matches Run's return.
	if rec.rep.Finished != rep.Finished || rec.rep.Crashes != rep.Crashes ||
		rec.rep.Complete != rep.Complete || len(rec.rep.Shards) != len(rep.Shards) {
		t.Fatalf("ObserveEnd report %s != Run report %s", &rec.rep, rep)
	}
}

// TestObserverNilIsFine: a campaign with no observer must behave
// exactly as before the hook existed.
func TestObserverNilIsFine(t *testing.T) {
	rep := Run(context.Background(), Config{
		Shards: 2,
		Open: func(shard, attempt int) (Shard, error) {
			return &countShard{steps: 2}, nil
		},
	})
	if !rep.Complete || rep.Finished != 2 {
		t.Fatalf("report = %s", rep)
	}
}
