package supervise

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"contiguitas/internal/telemetry"
)

// countShard finishes after steps calls to Step.
type countShard struct {
	steps, done int
}

func (s *countShard) Step() (bool, error) {
	s.done++
	return s.done >= s.steps, nil
}

// flakyShard crashes (error or panic) until the given attempt number.
type flakyShard struct {
	attempt  int
	failPast int
	panics   bool
	stepped  int
}

func (s *flakyShard) Step() (bool, error) {
	s.stepped++
	if s.attempt <= s.failPast {
		if s.panics {
			panic(fmt.Sprintf("injected panic on attempt %d", s.attempt))
		}
		return false, fmt.Errorf("injected error on attempt %d", s.attempt)
	}
	return s.stepped >= 3, nil
}

// stuckShard blocks inside Step until stopped — watchdog bait. After
// Stop unwedges it, Step returns cleanly and the attempt loop's
// stop-check acknowledges the abandon, which the watchdog reports as a
// heartbeat crash.
type stuckShard struct {
	stop chan struct{}
}

func (s *stuckShard) Step() (bool, error) {
	<-s.stop
	return false, nil
}

func (s *stuckShard) Stop() { close(s.stop) }

func TestAllShardsFinish(t *testing.T) {
	const n = 8
	rep := Run(context.Background(), Config{
		Shards: n,
		Open: func(shard, attempt int) (Shard, error) {
			return &countShard{steps: shard + 1}, nil
		},
	})
	if !rep.Complete || rep.Finished != n || rep.Crashes != 0 || rep.Quarantined != 0 {
		t.Fatalf("report = %s, want %d clean finishes", rep, n)
	}
	for i, st := range rep.Shards {
		if st.Status != StatusDone || st.Attempts != 1 {
			t.Fatalf("shard %d: status %s attempts %d", i, st.Status, st.Attempts)
		}
	}
}

func TestZeroShardsIsVacuouslyComplete(t *testing.T) {
	rep := Run(context.Background(), Config{Shards: 0})
	if !rep.Complete {
		t.Fatalf("empty campaign not complete: %s", rep)
	}
}

func TestCrashRetryThenFinish(t *testing.T) {
	for _, panics := range []bool{false, true} {
		var events []EventKind
		rep := Run(context.Background(), Config{
			Shards:      1,
			MaxAttempts: 5,
			BackoffBase: time.Microsecond,
			Open: func(shard, attempt int) (Shard, error) {
				return &flakyShard{attempt: attempt, failPast: 2, panics: panics}, nil
			},
			OnEvent: func(ev Event) { events = append(events, ev.Kind) },
		})
		if !rep.Complete || rep.Crashes != 2 || rep.Resumed != 1 {
			t.Fatalf("panics=%v: report = %s, want complete with 2 crashes", panics, rep)
		}
		wantKind := CrashError
		if panics {
			wantKind = CrashPanic
		}
		for _, c := range rep.Shards[0].Crashes {
			if c.Kind != wantKind {
				t.Fatalf("panics=%v: crash kind %s, want %s", panics, c.Kind, wantKind)
			}
		}
		want := []EventKind{EventCrash, EventResume, EventCrash, EventResume, EventDone}
		if len(events) != len(want) {
			t.Fatalf("panics=%v: events %v, want %v", panics, events, want)
		}
		for i := range want {
			if events[i] != want[i] {
				t.Fatalf("panics=%v: events %v, want %v", panics, events, want)
			}
		}
	}
}

func TestOpenErrorCountsAsCrash(t *testing.T) {
	rep := Run(context.Background(), Config{
		Shards:      1,
		MaxAttempts: 2,
		BackoffBase: time.Microsecond,
		Open: func(shard, attempt int) (Shard, error) {
			return nil, errors.New("open refused")
		},
	})
	if rep.Complete || rep.Quarantined != 1 || rep.Crashes != 2 {
		t.Fatalf("report = %s, want quarantine after 2 open failures", rep)
	}
	for _, c := range rep.Shards[0].Crashes {
		if c.Kind != CrashError {
			t.Fatalf("crash kind %s, want %s", c.Kind, CrashError)
		}
	}
}

func TestQuarantineDegradesNotFails(t *testing.T) {
	const n = 4
	ring := telemetry.NewRing(64)
	reg := telemetry.NewRegistry()
	rep := Run(context.Background(), Config{
		Shards:      n,
		MaxAttempts: 3,
		BackoffBase: time.Microsecond,
		Open: func(shard, attempt int) (Shard, error) {
			if shard == 1 {
				return &flakyShard{attempt: attempt, failPast: 1 << 30}, nil
			}
			return &countShard{steps: 2}, nil
		},
		Trace:   ring,
		Metrics: reg,
	})
	if rep.Complete {
		t.Fatalf("campaign with a doomed shard reported complete: %s", rep)
	}
	if rep.Finished != n-1 || rep.Quarantined != 1 {
		t.Fatalf("report = %s, want %d finished + 1 quarantined", rep, n-1)
	}
	if rep.Shards[1].Status != StatusQuarantined || rep.Shards[1].Attempts != 3 {
		t.Fatalf("shard 1: %+v, want quarantined after 3 attempts", rep.Shards[1])
	}
	if got := reg.Counter("shard_crashes").Value(); got != 3 {
		t.Fatalf("shard_crashes = %d, want 3", got)
	}
	if got := reg.Counter("shard_quarantines").Value(); got != 1 {
		t.Fatalf("shard_quarantines = %d, want 1", got)
	}
	if got := reg.Counter("shard_resumes").Value(); got != 2 {
		t.Fatalf("shard_resumes = %d, want 2", got)
	}
	if reg.Histogram("shard_restart").Count() != 2 {
		t.Fatalf("shard_restart observations = %d, want 2", reg.Histogram("shard_restart").Count())
	}
	var sawCrash, sawQuarantine bool
	for _, rec := range ring.Snapshot(nil) {
		switch rec.ID {
		case telemetry.EvShardCrash:
			sawCrash = true
		case telemetry.EvShardQuarantine:
			sawQuarantine = true
		}
	}
	if !sawCrash || !sawQuarantine {
		t.Fatalf("trace ring missing supervision events (crash=%v quarantine=%v)", sawCrash, sawQuarantine)
	}
}

func TestWatchdogAbandonsStuckShard(t *testing.T) {
	var opened atomic.Int32
	rep := Run(context.Background(), Config{
		Shards:      1,
		MaxAttempts: 3,
		BackoffBase: time.Microsecond,
		Heartbeat:   20 * time.Millisecond,
		Open: func(shard, attempt int) (Shard, error) {
			if opened.Add(1) == 1 {
				return &stuckShard{stop: make(chan struct{})}, nil
			}
			return &countShard{steps: 2}, nil
		},
	})
	if !rep.Complete || rep.Crashes != 1 {
		t.Fatalf("report = %s, want recovery after one watchdog crash", rep)
	}
	if k := rep.Shards[0].Crashes[0].Kind; k != CrashWatchdog {
		t.Fatalf("crash kind %s, want %s", k, CrashWatchdog)
	}
}

func TestCancellationStopsWithoutLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The shards never finish; cancellation is the only way out.
	time.AfterFunc(50*time.Millisecond, cancel)
	rep := Run(ctx, Config{
		Shards:  8,
		Workers: 2,
		Open: func(shard, attempt int) (Shard, error) {
			return &countShard{steps: 1 << 30}, nil
		},
	})
	if rep.Complete {
		t.Fatalf("canceled campaign reported complete: %s", rep)
	}
	if !rep.Canceled {
		t.Fatalf("canceled campaign not marked canceled: %s", rep)
	}
	if rep.Finished != 0 {
		t.Fatalf("endless shards finished: %s", rep)
	}
	// Workers and attempt goroutines must drain: allow the runtime a
	// moment, then require the goroutine count to return to baseline.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	base, cap := 5*time.Millisecond, 40*time.Millisecond
	want := []time.Duration{5, 5, 10, 20, 40, 40, 40}
	for failed, w := range want {
		if got := backoff(base, cap, failed); got != w*time.Millisecond {
			t.Fatalf("backoff(failed=%d) = %v, want %v", failed, got, w*time.Millisecond)
		}
	}
}
