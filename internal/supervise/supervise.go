// Package supervise is a fault-tolerant sharded execution engine: a
// campaign of independent shards runs across a bounded worker pool, and
// a supervisor loop keeps the campaign alive when individual shards die.
//
// Each shard attempt runs in its own goroutine behind three layers of
// containment:
//
//   - panic recovery — a panicking Step (including deliberately injected
//     kills) is converted into a crash instead of taking the process down;
//   - a heartbeat watchdog — an attempt that stops returning from Step
//     within the configured deadline is abandoned and counted as crashed
//     (the stuck goroutine is asked to stop via Stoppable and otherwise
//     left behind, exactly like a wedged worker process would be);
//   - error propagation — a Step or Open returning an error fails only
//     that attempt.
//
// Crashed shards are retried with exponential backoff; the Open callback
// is expected to resume from the shard's last checkpoint, so a retry
// repeats only the work since then. A shard that exhausts its attempt
// budget is quarantined, and the campaign finishes with an explicit
// completeness report (finished / resumed / quarantined, per-shard
// attempt histories) instead of dying — partial results degrade, they do
// not disappear.
//
// Determinism contract: the engine decides only *when* work runs, never
// *what it computes*. Shards must derive all randomness from their shard
// index (stats.ShardSeed) and merge into disjoint output slots, so the
// merged campaign result is byte-identical regardless of worker count,
// scheduling, crashes, and retries. The fleet soak gate
// (cmd/fleetscan -soak) holds this property under injected kills.
//
// All supervision telemetry (EvShardCrash / EvShardResume /
// EvShardQuarantine, the shard_restart histogram and shard counters) is
// emitted from the single supervisor goroutine, preserving the
// single-writer contract of telemetry.Ring.
package supervise

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"contiguitas/internal/telemetry"
)

// Status is a shard's lifecycle state.
type Status uint8

const (
	// StatusPending: not yet run to completion (includes canceled work).
	StatusPending Status = iota
	// StatusRunning: an attempt is in flight.
	StatusRunning
	// StatusDone: the shard finished.
	StatusDone
	// StatusQuarantined: the retry budget is exhausted; the shard's work
	// is excluded from the campaign result.
	StatusQuarantined
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusRunning:
		return "running"
	case StatusDone:
		return "done"
	case StatusQuarantined:
		return "quarantined"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// CrashKind classifies how an attempt died.
type CrashKind uint8

const (
	// CrashError: Step or Open returned an error.
	CrashError CrashKind = iota
	// CrashPanic: the attempt panicked and was recovered.
	CrashPanic
	// CrashWatchdog: the heartbeat deadline expired with no Step return.
	CrashWatchdog
)

// String names the crash kind.
func (k CrashKind) String() string {
	switch k {
	case CrashError:
		return "error"
	case CrashPanic:
		return "panic"
	case CrashWatchdog:
		return "watchdog"
	}
	return fmt.Sprintf("crash(%d)", uint8(k))
}

// Shard is one supervised unit of work. Step advances the shard by one
// small unit (one simulated server, one tick batch) and is the heartbeat
// granularity: implementations must return from Step often enough to
// beat the configured watchdog deadline. Checkpointing is the shard's
// own business — the engine only guarantees that a retry re-Opens the
// shard, which is where resume-from-checkpoint happens.
type Shard interface {
	// Step runs one unit of work. done reports completion; a non-nil
	// error crashes the attempt.
	Step() (done bool, err error)
}

// Stoppable is an optional Shard extension: Stop is called exactly once
// when the supervisor abandons the attempt (watchdog expiry or campaign
// cancellation) so a blocked Step can unwedge itself. Stop may be called
// from a different goroutine than Step.
type Stoppable interface {
	Stop()
}

// Config parameterises a supervised campaign.
type Config struct {
	// Shards is the number of shards, addressed 0..Shards-1.
	Shards int
	// Workers bounds concurrent attempts (0 = GOMAXPROCS, capped at
	// Shards).
	Workers int
	// MaxAttempts quarantines a shard after this many failed attempts
	// (0 = DefaultMaxAttempts).
	MaxAttempts int
	// BackoffBase is the delay before attempt 2; it doubles per attempt
	// and is capped at BackoffCap. Zero values pick the defaults.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Heartbeat is the watchdog deadline between Step returns
	// (0 disables the watchdog).
	Heartbeat time.Duration
	// Open creates (attempt 1) or resumes (attempt > 1, or a process
	// restart) shard's next attempt. Resuming from the shard's last
	// checkpoint — and verifying it — happens here; an error counts as a
	// crashed attempt.
	Open func(shard, attempt int) (Shard, error)
	// OnEvent, when set, observes every supervision event from the
	// supervisor goroutine (single-threaded, ordered). Campaign owners
	// use it to persist attempt counts into their manifest.
	OnEvent func(Event)
	// Observer is the read-side progress hook: unlike OnEvent (the
	// campaign owner's write path into its manifest) it exists so an
	// observability plane can mirror the campaign live without joining
	// its ownership. All four methods are invoked from the supervisor
	// goroutine, in order; see the Observer contract.
	Observer Observer
	// Trace receives EvShardCrash/EvShardResume/EvShardQuarantine
	// tracepoints (nil disables). Emitted only from the supervisor
	// goroutine.
	Trace *telemetry.Ring
	// Metrics receives the shard_restart histogram and the
	// shard_crashes/shard_resumes/shard_quarantines counters
	// (nil disables). Reuses existing registrations by name, so one
	// registry can serve several campaigns.
	Metrics *telemetry.Registry
}

// Observer mirrors a campaign's live progress for read-side consumers
// (the obsv HTTP plane's campaign board). Every method is called from
// the single supervisor goroutine, strictly ordered: one ObserveCampaign
// first, then ObserveAttempt / ObserveEvent interleaved as the campaign
// runs, then exactly one ObserveEnd before Run returns.
//
// Implementations must not block — they run inside the supervisor's
// dispatch loop — and must copy anything they retain: the *Report passed
// to ObserveEnd (including its ShardState slices) remains owned by the
// campaign and is returned to Run's caller.
type Observer interface {
	// ObserveCampaign reports the campaign starting with this many shards.
	ObserveCampaign(shards int)
	// ObserveAttempt reports an attempt being dispatched to a worker
	// (attempt numbering starts at 1).
	ObserveAttempt(shard, attempt int)
	// ObserveEvent reports one supervision decision (crash, resume,
	// quarantine, done) — the same stream OnEvent sees.
	ObserveEvent(ev Event)
	// ObserveEnd reports the campaign finishing with its final report.
	ObserveEnd(rep *Report)
}

// Defaults for zero Config fields.
const (
	DefaultMaxAttempts = 5
	DefaultBackoffBase = 5 * time.Millisecond
	DefaultBackoffCap  = 500 * time.Millisecond
)

// EventKind discriminates supervision events.
type EventKind uint8

const (
	// EventCrash: an attempt died (Crash carries the detail).
	EventCrash EventKind = iota
	// EventResume: a retry attempt was scheduled after a crash.
	EventResume
	// EventQuarantine: the shard's retry budget is exhausted.
	EventQuarantine
	// EventDone: the shard finished.
	EventDone
)

// Event is one supervision decision, reported in order.
type Event struct {
	Kind    EventKind
	Shard   int
	Attempt int
	Crash   *Crash // set for EventCrash
	// Done counts shards finished so far (set for EventDone).
	Done int
}

// Crash records one failed attempt.
type Crash struct {
	Attempt int
	Kind    CrashKind
	Reason  string
}

// ShardState is one shard's final supervision record.
type ShardState struct {
	Shard    int
	Status   Status
	Attempts int // attempts started
	Crashes  []Crash
	// Resumed reports that at least one attempt after the first ran
	// (i.e. the shard was restarted from a checkpoint or from scratch).
	Resumed bool
}

// Report is the campaign's completeness report.
type Report struct {
	Shards []ShardState
	// Finished / Resumed / Quarantined count shards; Crashes counts
	// failed attempts across the campaign.
	Finished    int
	Resumed     int
	Quarantined int
	Crashes     int
	// Complete is true iff every shard finished. Canceled reports the
	// context expired before the campaign could complete.
	Complete bool
	Canceled bool
}

// String renders the one-line completeness summary.
func (r *Report) String() string {
	s := fmt.Sprintf("%d/%d shards finished (%d resumed, %d quarantined, %d crashes)",
		r.Finished, len(r.Shards), r.Resumed, r.Quarantined, r.Crashes)
	if r.Canceled {
		s += " [canceled]"
	}
	return s
}

// attemptResult is what a worker reports back to the supervisor.
type attemptResult struct {
	shard    int
	attempt  int
	err      error
	kind     CrashKind
	canceled bool
}

// workItem is one attempt dispatched to the worker pool.
type workItem struct {
	shard   int
	attempt int
	delay   time.Duration
}

// metricSet resolves the supervision metrics on a registry, reusing
// existing registrations so repeated campaigns share one schema.
type metricSet struct {
	restart                      *telemetry.Histogram
	crashes, resumes, quarantine *telemetry.Counter
}

func newMetricSet(reg *telemetry.Registry) *metricSet {
	if reg == nil {
		return nil
	}
	m := &metricSet{}
	if m.restart = reg.Histogram("shard_restart"); m.restart == nil {
		m.restart = reg.NewHistogram("shard_restart")
	}
	counter := func(name string) *telemetry.Counter {
		if c := reg.Counter(name); c != nil {
			return c
		}
		return reg.NewCounter(name)
	}
	m.crashes = counter("shard_crashes")
	m.resumes = counter("shard_resumes")
	m.quarantine = counter("shard_quarantines")
	return m
}

// Run executes the campaign and always returns a report — supervision
// failures degrade the report, they never surface as errors. Cancel ctx
// to stop early; in-flight attempts are asked to stop and the report
// comes back with Complete=false, Canceled=true.
func Run(ctx context.Context, cfg Config) *Report {
	if cfg.Shards <= 0 || cfg.Open == nil {
		return &Report{Complete: cfg.Shards == 0}
	}
	maxAttempts := cfg.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = DefaultMaxAttempts
	}
	base := cfg.BackoffBase
	if base <= 0 {
		base = DefaultBackoffBase
	}
	cap := cfg.BackoffCap
	if cap <= 0 {
		cap = DefaultBackoffCap
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Shards {
		workers = cfg.Shards
	}

	rep := &Report{Shards: make([]ShardState, cfg.Shards)}
	for i := range rep.Shards {
		rep.Shards[i].Shard = i
	}
	metrics := newMetricSet(cfg.Metrics)

	work := make(chan workItem)
	results := make(chan attemptResult)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for item := range work {
				results <- runAttempt(ctx, &cfg, item)
			}
		}()
	}

	// The supervisor loop: single goroutine, owns all state, emits all
	// telemetry. Dispatch and collection interleave over the same select
	// so a full worker pool never deadlocks the loop.
	queue := make([]workItem, 0, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		queue = append(queue, workItem{shard: s, attempt: 1})
	}
	inflight := 0
	emit := func(ev Event) {
		if cfg.OnEvent != nil {
			cfg.OnEvent(ev)
		}
		if cfg.Observer != nil {
			cfg.Observer.ObserveEvent(ev)
		}
	}
	if cfg.Observer != nil {
		cfg.Observer.ObserveCampaign(cfg.Shards)
	}
	canceled := false
	for rep.Finished+rep.Quarantined < cfg.Shards {
		// Stop feeding new work once the context is gone; whatever is in
		// flight is collected below and reported as canceled.
		if !canceled {
			select {
			case <-ctx.Done():
				canceled = true
				queue = queue[:0]
			default:
			}
		}
		if canceled && inflight == 0 {
			break
		}

		var dispatch chan<- workItem
		var next workItem
		if len(queue) > 0 && !canceled {
			dispatch = work
			next = queue[0]
		}
		select {
		case dispatch <- next:
			queue = queue[1:]
			rep.Shards[next.shard].Status = StatusRunning
			rep.Shards[next.shard].Attempts++
			inflight++
			if cfg.Observer != nil {
				cfg.Observer.ObserveAttempt(next.shard, next.attempt)
			}
		case res := <-results:
			inflight--
			st := &rep.Shards[res.shard]
			switch {
			case res.canceled:
				// Not a crash: the campaign was asked to stop.
				st.Status = StatusPending
			case res.err == nil:
				st.Status = StatusDone
				rep.Finished++
				if st.Attempts > 1 {
					rep.Resumed++
				}
				emit(Event{Kind: EventDone, Shard: res.shard, Attempt: res.attempt, Done: rep.Finished})
			default:
				crash := Crash{Attempt: res.attempt, Kind: res.kind, Reason: res.err.Error()}
				st.Crashes = append(st.Crashes, crash)
				rep.Crashes++
				if cfg.Trace.Enabled() {
					cfg.Trace.Emit(uint64(res.attempt), telemetry.EvShardCrash,
						uint64(res.shard), uint64(res.attempt), uint64(res.kind))
				}
				if metrics != nil {
					metrics.crashes.Inc()
				}
				emit(Event{Kind: EventCrash, Shard: res.shard, Attempt: res.attempt, Crash: &crash})
				if st.Attempts >= maxAttempts {
					st.Status = StatusQuarantined
					rep.Quarantined++
					if cfg.Trace.Enabled() {
						cfg.Trace.Emit(uint64(res.attempt), telemetry.EvShardQuarantine,
							uint64(res.shard), uint64(st.Attempts), 0)
					}
					if metrics != nil {
						metrics.quarantine.Inc()
					}
					emit(Event{Kind: EventQuarantine, Shard: res.shard, Attempt: res.attempt})
					continue
				}
				st.Status = StatusPending
				st.Resumed = true
				retry := workItem{shard: res.shard, attempt: res.attempt + 1, delay: backoff(base, cap, res.attempt)}
				queue = append(queue, retry)
				if cfg.Trace.Enabled() {
					cfg.Trace.Emit(uint64(retry.attempt), telemetry.EvShardResume,
						uint64(res.shard), uint64(retry.attempt), 0)
				}
				if metrics != nil {
					metrics.resumes.Inc()
					metrics.restart.Observe(uint64(retry.attempt))
				}
				emit(Event{Kind: EventResume, Shard: res.shard, Attempt: retry.attempt})
			}
		}
	}
	close(work)
	wg.Wait()
	// Drain any results workers managed to send before seeing the close.
	for {
		select {
		case res := <-results:
			if res.canceled {
				rep.Shards[res.shard].Status = StatusPending
			}
		default:
			rep.Complete = rep.Finished == cfg.Shards
			rep.Canceled = canceled
			if cfg.Observer != nil {
				cfg.Observer.ObserveEnd(rep)
			}
			return rep
		}
	}
}

// backoff returns the delay before retrying after `failed` failed
// attempts: base doubled per failure, capped.
func backoff(base, cap time.Duration, failed int) time.Duration {
	d := base
	for i := 1; i < failed && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	return d
}

// runAttempt executes one attempt on the calling worker: backoff sleep,
// Open, then the Step loop in a child goroutine watched for heartbeat
// staleness and cancellation.
func runAttempt(ctx context.Context, cfg *Config, item workItem) attemptResult {
	res := attemptResult{shard: item.shard, attempt: item.attempt}
	if item.delay > 0 {
		select {
		case <-time.After(item.delay):
		case <-ctx.Done():
			res.canceled = true
			return res
		}
	}
	sh, err := cfg.Open(item.shard, item.attempt)
	if err != nil {
		res.err = fmt.Errorf("open: %w", err)
		res.kind = CrashError
		return res
	}

	var beats atomic.Uint64
	var stopOnce sync.Once
	stopped := make(chan struct{})
	stop := func() {
		stopOnce.Do(func() {
			close(stopped)
			if s, ok := sh.(Stoppable); ok {
				s.Stop()
			}
		})
	}
	done := make(chan attemptResult, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- attemptResult{shard: item.shard, attempt: item.attempt,
					err: fmt.Errorf("panic: %v", p), kind: CrashPanic}
			}
		}()
		for {
			select {
			case <-stopped:
				done <- attemptResult{shard: item.shard, attempt: item.attempt, canceled: true}
				return
			default:
			}
			fin, err := sh.Step()
			beats.Add(1)
			if err != nil {
				done <- attemptResult{shard: item.shard, attempt: item.attempt, err: err, kind: CrashError}
				return
			}
			if fin {
				done <- attemptResult{shard: item.shard, attempt: item.attempt}
				return
			}
		}
	}()

	var watchdog <-chan time.Time
	var timer *time.Timer
	if cfg.Heartbeat > 0 {
		timer = time.NewTimer(cfg.Heartbeat)
		defer timer.Stop()
		watchdog = timer.C
	}
	lastBeats := uint64(0)
	for {
		select {
		case r := <-done:
			return r
		case <-ctx.Done():
			// Cooperative abandon: the attempt goroutine exits at its next
			// Step boundary (or immediately, if Stoppable unwedged it). A
			// truly wedged Step is abandoned after a grace period — its
			// goroutine leaks, the in-process analogue of a hung worker.
			stop()
			grace := cfg.Heartbeat
			if grace <= 0 {
				grace = time.Second
			}
			select {
			case r := <-done:
				r.canceled = true
				return r
			case <-time.After(grace):
				res.canceled = true
				return res
			}
		case <-watchdog:
			if b := beats.Load(); b != lastBeats {
				// Progress since the last check: re-arm.
				lastBeats = b
				timer.Reset(cfg.Heartbeat)
				continue
			}
			stop()
			// Grace period: the attempt may acknowledge the abandon, or may
			// turn out to have finished while the verdict was being reached.
			select {
			case r := <-done:
				if !r.canceled {
					return r
				}
			case <-time.After(cfg.Heartbeat):
			}
			res.err = fmt.Errorf("watchdog: no heartbeat within %v (attempt %d)", cfg.Heartbeat, item.attempt)
			res.kind = CrashWatchdog
			return res
		}
	}
}
