// The campaign scheduler: bounded admission in front of a worker pool
// that drives each campaign's grid cells through fleet.RunSupervised,
// with per-campaign deadlines, retry with exponential backoff, startup
// recovery, and graceful drain.
//
// State machine (every transition is a durable store Put before the
// action it permits):
//
//	submit:   record{queued} → enqueue → 201
//	worker:   record{running} → run cells → journal each cell →
//	          write result.bin → record{done}
//	failure:  record{failed, error} (deadline, integrity verdict, or
//	          retry budget exhausted)
//	drain:    stop admitting (503), cancel in-flight runs (their shards
//	          checkpoint at the next server boundary), leave records
//	          queued/running on disk, return
//	recover:  running→queued, re-enqueue everything non-terminal
//
// Kill-safety argument, phase by phase: a SIGKILL before the queued Put
// means the client never got an acknowledgement (nothing to lose);
// between Put and completion the record is non-terminal and recovery
// re-runs it, resuming each cell from its fleet manifest (at most one
// shard's current attempt — never a checkpointed server — is redone);
// after result.bin's rename the campaign re-enters only to rewrite
// byte-identical state. The result bytes are fleet.CanonicalBytes per
// cell, so every replay converges on the same merged file.
package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"contiguitas/internal/fleet"
	"contiguitas/internal/obsv"
	"contiguitas/internal/snapshot"
	"contiguitas/internal/telemetry"
)

// SchedulerConfig wires a Scheduler. Zero values pick the defaults
// noted per field.
type SchedulerConfig struct {
	// Store journals campaigns (required).
	Store Store
	// Workers is the number of campaigns run concurrently (default 2).
	Workers int
	// QueueDepth bounds the admission queue; a submit that would exceed
	// it gets ErrQueueFull (default 8). Recovery re-admissions bypass
	// the bound — they were admitted before the restart.
	QueueDepth int
	// ShardWorkers passes through to fleet.SupervisedConfig.Workers
	// (0 picks that layer's default).
	ShardWorkers int
	// MaxAttempts is the default per-cell retry budget when a spec does
	// not set its own (default 3).
	MaxAttempts int
	// ShardMaxAttempts is the per-shard restart budget inside one cell
	// run (default 64 — generous so that under an injected fault plan
	// quarantine means "stuck", not "unlucky").
	ShardMaxAttempts int
	// BackoffBase/BackoffCap pace campaign-level retries (defaults
	// 100ms / 5s). Shard-level retries inside a run are paced by the
	// supervise layer independently.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// DefaultDeadline bounds campaigns whose spec sets no deadline
	// (0 = unbounded).
	DefaultDeadline time.Duration
	// Board, when set, registers each campaign run for the /campaigns
	// observability endpoints.
	Board *obsv.Board
	// Bus, when set, receives each run's tracepoint stream on /events.
	Bus *obsv.EventBus
	// Faults passes a fault plan into every cell run — the chaos hook
	// the soak tests and CI use to force shard kills and checkpoint
	// write failures under the service.
	Faults fleet.FaultPlan
	// StoreRetries is how many times a failing store write is attempted
	// (with BackoffBase/BackoffCap pacing) before the campaign is failed
	// with ErrStorage and the daemon degrades (default 3).
	StoreRetries int
	// ProbeInterval paces the degraded-mode store probe that decides
	// when storage has recovered (default 2s).
	ProbeInterval time.Duration
}

// Stats is a snapshot of the scheduler's monotonic counters, exposed
// at /api/stats and printed at drain.
type Stats struct {
	Submitted uint64 `json:"submitted"`
	Deduped   uint64 `json:"deduped"`
	Rejected  uint64 `json:"rejected"`
	Recovered uint64 `json:"recovered"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Retried   uint64 `json:"retried"`
	// Storage-plane counters: store write retries, store writes that
	// failed past the retry budget, journaled cells refused by their
	// digest and recomputed, and whether the daemon is currently in
	// read-only degraded mode.
	StoreRetried uint64 `json:"store_retried"`
	StoreErrors  uint64 `json:"store_errors"`
	CellsHealed  uint64 `json:"cells_healed"`
	Degraded     bool   `json:"degraded"`
	// Scrub counters, updated by the integrity scrubber's passes.
	ScrubScanned     uint64 `json:"scrub_scanned"`
	ScrubQuarantined uint64 `json:"scrub_quarantined"`
	ScrubRequeued    uint64 `json:"scrub_requeued"`
}

// Scheduler owns the queue, the worker pool, and the lifecycle of every
// campaign in the store.
type Scheduler struct {
	cfg    SchedulerConfig
	root   context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	cond    *sync.Cond
	pending []string
	stopped bool
	started bool

	draining atomic.Bool
	wg       sync.WaitGroup
	// probeWg tracks the degraded-mode probe loop separately from the
	// worker pool so drain can wait for both without an Add/Wait race.
	probeWg sync.WaitGroup

	stSubmitted atomic.Uint64
	stDeduped   atomic.Uint64
	stRejected  atomic.Uint64
	stRecovered atomic.Uint64
	stCompleted atomic.Uint64
	stFailed    atomic.Uint64
	stRetried   atomic.Uint64

	stStoreRetried atomic.Uint64
	stStoreErrors  atomic.Uint64
	stCellsHealed  atomic.Uint64
	stScrubScanned atomic.Uint64
	stScrubQuar    atomic.Uint64
	stScrubRequeue atomic.Uint64

	// degraded is the read-only mode flag; probeFails counts failed
	// recovery probes for the healed tracepoint.
	degraded   atomic.Bool
	probeFails atomic.Uint64

	// ring carries storage-plane tracepoints (degraded/healed/scrub) to
	// the event bus; ringMu serialises Emit, which is single-writer.
	ring   *telemetry.Ring
	ringMu sync.Mutex

	// Test hooks (package-internal). testKill simulates a SIGKILL at a
	// named phase boundary: when it returns true the campaign run
	// returns immediately, leaving the store exactly as a killed
	// process would. testKilled records that a simulated kill fired so
	// the runner knows not to mark the record failed.
	testKill   func(point, id string) bool
	testKilled atomic.Bool
	// now is swappable for deterministic timestamps in tests.
	now func() time.Time
}

// NewScheduler builds a Scheduler (call Start to launch workers).
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.ShardMaxAttempts <= 0 {
		cfg.ShardMaxAttempts = 64
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 100 * time.Millisecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 5 * time.Second
	}
	if cfg.StoreRetries <= 0 {
		cfg.StoreRetries = 3
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{cfg: cfg, root: ctx, cancel: cancel, now: time.Now}
	s.cond = sync.NewCond(&s.mu)
	if cfg.Bus != nil {
		s.ring = telemetry.NewRing(256)
		s.ring.SetSink(cfg.Bus.Sink())
	}
	return s
}

// emit publishes a storage-plane tracepoint (no-op without a bus).
func (s *Scheduler) emit(id telemetry.EventID, a, b, c uint64) {
	if s.ring == nil {
		return
	}
	s.ringMu.Lock()
	s.ring.Emit(uint64(s.now().Unix()), id, a, b, c)
	s.ringMu.Unlock()
}

// Recover re-admits every non-terminal campaign found in the store,
// returning how many it queued. Call before Start so recovered work is
// first in line; recovered campaigns bypass the admission bound (they
// were admitted by a previous process lifetime).
func (s *Scheduler) Recover() (int, error) {
	list, err := s.cfg.Store.List()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, c := range list {
		if c.State.Terminal() {
			continue
		}
		if c.State == StateRunning {
			// The worker that owned it is gone; make the observable
			// state truthful before it waits in the queue.
			c.State = StateQueued
			if err := s.cfg.Store.Put(c); err != nil {
				return n, err
			}
		}
		s.mu.Lock()
		s.pending = append(s.pending, c.ID)
		s.cond.Signal()
		s.mu.Unlock()
		s.stRecovered.Add(1)
		n++
	}
	return n, nil
}

// Start launches the worker pool. Idempotent.
func (s *Scheduler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Drain stops admission (new submits get ErrDraining), cancels
// in-flight campaign runs — their shards checkpoint at the next server
// boundary and their records stay non-terminal on disk for the next
// process to resume — and waits for every worker to return. Queued
// campaigns are left queued, not started.
func (s *Scheduler) Drain() {
	s.draining.Store(true)
	s.mu.Lock()
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
	s.probeWg.Wait()
}

// Stats snapshots the counters.
func (s *Scheduler) Stats() Stats {
	return Stats{
		Submitted:        s.stSubmitted.Load(),
		Deduped:          s.stDeduped.Load(),
		Rejected:         s.stRejected.Load(),
		Recovered:        s.stRecovered.Load(),
		Completed:        s.stCompleted.Load(),
		Failed:           s.stFailed.Load(),
		Retried:          s.stRetried.Load(),
		StoreRetried:     s.stStoreRetried.Load(),
		StoreErrors:      s.stStoreErrors.Load(),
		CellsHealed:      s.stCellsHealed.Load(),
		Degraded:         s.degraded.Load(),
		ScrubScanned:     s.stScrubScanned.Load(),
		ScrubQuarantined: s.stScrubQuar.Load(),
		ScrubRequeued:    s.stScrubRequeue.Load(),
	}
}

// NoteScrub folds one scrub pass's tallies into the scrub_* counters
// served at /api/stats.
func (s *Scheduler) NoteScrub(r *ScrubReport) {
	s.stScrubScanned.Add(uint64(r.Scanned))
	s.stScrubQuar.Add(uint64(len(r.Quarantined)))
	s.stScrubRequeue.Add(uint64(len(r.Requeued)))
}

// Degraded reports whether the daemon is in read-only degraded mode.
func (s *Scheduler) Degraded() bool { return s.degraded.Load() }

// Health returns the /healthz status string: "ok", or "degraded" while
// the store's write path is down and only reads are served.
func (s *Scheduler) Health() string {
	if s.degraded.Load() {
		return "degraded"
	}
	return "ok"
}

// Get returns the record for id.
func (s *Scheduler) Get(id string) (*Campaign, error) { return s.cfg.Store.Get(id) }

// List returns every record.
func (s *Scheduler) List() ([]*Campaign, error) { return s.cfg.Store.List() }

// Result returns the merged result bytes for a done campaign.
func (s *Scheduler) Result(id string) ([]byte, error) {
	c, err := s.cfg.Store.Get(id)
	if err != nil {
		return nil, err
	}
	if c.State != StateDone {
		return nil, fmt.Errorf("%w: campaign %s is %s", ErrNotDone, id, c.State)
	}
	return s.cfg.Store.GetResult(id)
}

// Submit validates and admits a campaign. The bool is true when a new
// campaign was created, false when the idempotency key deduplicated to
// an existing one. The queued record is durable before Submit returns —
// an acknowledged submission survives any kill thereafter.
func (s *Scheduler) Submit(spec Spec, key string) (*Campaign, bool, error) {
	if key == "" {
		return nil, false, ErrNoKey
	}
	if s.draining.Load() {
		s.stRejected.Add(1)
		return nil, false, ErrDraining
	}
	if s.degraded.Load() {
		// Read-only degraded mode: an admission we cannot journal is an
		// admission we could silently lose — refuse it, loudly.
		s.stRejected.Add(1)
		return nil, false, ErrDegraded
	}
	spec = spec.normalized()
	if err := spec.validate(); err != nil {
		return nil, false, err
	}
	fp := fmt.Sprintf("%016x", spec.fingerprint())
	id := CampaignID(key)

	// One critical section covers dedupe-check, admission, journal, and
	// enqueue: two racing submits with the same key must resolve to one
	// record, and the queue bound must count the record we are adding.
	s.mu.Lock()
	defer s.mu.Unlock()
	existing, err := s.cfg.Store.Get(id)
	switch {
	case err == nil:
		if existing.SpecHash != fp {
			return nil, false, fmt.Errorf("%w: key %q", ErrKeyReuse, key)
		}
		s.stDeduped.Add(1)
		return existing, false, nil
	case !errors.Is(err, ErrNotFound):
		return nil, false, err
	}
	if len(s.pending) >= s.cfg.QueueDepth {
		s.stRejected.Add(1)
		return nil, false, fmt.Errorf("%w: %d campaigns queued", ErrQueueFull, len(s.pending))
	}
	c := &Campaign{
		ID:            id,
		Key:           key,
		SpecHash:      fp,
		Spec:          spec,
		State:         StateQueued,
		Cells:         len(spec.Cells()),
		SubmittedUnix: s.now().Unix(),
	}
	if err := s.storeWrite(func() error { return s.cfg.Store.Put(c) }); err != nil {
		s.degrade()
		return nil, false, err
	}
	s.pending = append(s.pending, id)
	s.cond.Signal()
	s.stSubmitted.Add(1)
	return c.clone(), true, nil
}

// Requeue re-admits a stored campaign (the scrub heal path), bypassing
// the admission bound — the campaign was admitted long ago.
func (s *Scheduler) Requeue(id string) {
	s.mu.Lock()
	s.pending = append(s.pending, id)
	s.cond.Signal()
	s.mu.Unlock()
}

// storeWrite runs op with a bounded retry-and-backoff loop so a
// transiently failing store (a chaos window, a hiccuping disk) does not
// fail a campaign. Exhausting the budget returns the last error wrapped
// in ErrStorage — the caller's signal to degrade.
func (s *Scheduler) storeWrite(op func() error) error {
	var err error
	for attempt := 0; attempt < s.cfg.StoreRetries; attempt++ {
		if attempt > 0 {
			s.stStoreRetried.Add(1)
			if serr := sleepCtx(s.root, backoff(s.cfg.BackoffBase, s.cfg.BackoffCap, attempt)); serr != nil {
				break
			}
		}
		if err = op(); err == nil {
			return nil
		}
	}
	s.stStoreErrors.Add(1)
	return fmt.Errorf("%w: %v", ErrStorage, err)
}

// degrade flips the daemon into read-only degraded mode (idempotent)
// and starts the probe loop that lifts it once the store heals.
func (s *Scheduler) degrade() {
	if s.degraded.Swap(true) {
		return
	}
	s.emit(telemetry.EvStoreDegraded, s.stStoreErrors.Load(), 0, 0)
	s.probeWg.Add(1)
	go s.probeLoop()
}

// probeLoop polls Store.Probe until it succeeds, then lifts degraded
// mode. It exits on drain; a daemon that shuts down degraded stays
// degraded into its logs.
func (s *Scheduler) probeLoop() {
	defer s.probeWg.Done()
	for {
		if err := sleepCtx(s.root, s.cfg.ProbeInterval); err != nil {
			return
		}
		if err := s.cfg.Store.Probe(); err != nil {
			s.probeFails.Add(1)
			continue
		}
		s.degraded.Store(false)
		s.emit(telemetry.EvStoreHealed, s.probeFails.Load(), 0, 0)
		return
	}
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.pending) == 0 && !s.stopped {
			s.cond.Wait()
		}
		if s.stopped {
			// Draining: queued campaigns stay queued for the next
			// process lifetime; do not start new work.
			s.mu.Unlock()
			return
		}
		id := s.pending[0]
		s.pending = s.pending[1:]
		s.mu.Unlock()
		s.runCampaign(id)
	}
}

// kill consults the simulated-SIGKILL test hook.
func (s *Scheduler) kill(point, id string) bool {
	if s.testKill != nil && s.testKill(point, id) {
		s.testKilled.Store(true)
		return true
	}
	return false
}

// interrupted reports whether a run ended because the process is going
// away (drain or simulated kill) rather than because the campaign is
// wrong — in which case the record is left non-terminal for recovery.
func (s *Scheduler) interrupted() bool {
	return s.root.Err() != nil || s.testKilled.Load()
}

// fail marks a campaign terminally failed.
func (s *Scheduler) fail(c *Campaign, reason string) {
	c.State = StateFailed
	c.Error = reason
	c.FinishedUnix = s.now().Unix()
	_ = s.cfg.Store.Put(c)
	s.stFailed.Add(1)
}

// failStorage marks a campaign failed with a typed storage reason and
// flips the daemon into degraded mode: the store's write path is not
// trustworthy, so new admissions would be acknowledgements we might
// lose. The terminal Put is best-effort — under a dead disk the record
// stays non-terminal on disk and recovery re-runs it once storage
// heals, which is the better outcome anyway.
func (s *Scheduler) failStorage(c *Campaign, reason string) {
	s.fail(c, fmt.Sprintf("%v: %s", ErrStorage, reason))
	s.degrade()
}

// runCampaign drives one campaign end to end. Every durable write is
// ordered so that a kill at any instant leaves a state recovery maps
// forward, never one that fabricates or loses progress.
func (s *Scheduler) runCampaign(id string) {
	c, err := s.cfg.Store.Get(id)
	if err != nil {
		// The record vanished out from under the queue (test teardown,
		// operator surgery); nothing to do.
		return
	}
	if c.State.Terminal() {
		return
	}

	ctx := s.root
	cancel := context.CancelFunc(func() {})
	deadline := s.cfg.DefaultDeadline
	if c.Spec.DeadlineSec > 0 {
		deadline = time.Duration(c.Spec.DeadlineSec) * time.Second
	}
	if deadline > 0 {
		ctx, cancel = context.WithTimeout(s.root, deadline)
	}
	defer cancel()

	if s.kill("before-run", id) {
		return
	}
	c.State = StateRunning
	c.Attempts++
	if err := s.storeWrite(func() error { return s.cfg.Store.Put(c) }); err != nil {
		s.failStorage(c, fmt.Sprintf("journal running state: %v", err))
		return
	}

	cells := c.Spec.Cells()
	if len(c.CellDigests) < len(cells) {
		c.CellDigests = append(c.CellDigests, make([]string, len(cells)-len(c.CellDigests))...)
	}
	var merged bytes.Buffer
	for i, cell := range cells {
		data, done, err := s.cfg.Store.GetCell(id, i)
		if err != nil {
			s.failStorage(c, fmt.Sprintf("read cell %d journal: %v", i, err))
			return
		}
		if done && c.CellDigests[i] != "" && fmt.Sprintf("%016x", fnvSum(data)) != c.CellDigests[i] {
			// The journaled bytes no longer match the digest recorded
			// when the cell completed: rot or tamper at rest. Never merge
			// them — drop the entry and recompute the cell.
			s.stCellsHealed.Add(1)
			s.emit(telemetry.EvScrubCorrupt, 1, uint64(i), fnvSum(data))
			if err := s.cfg.Store.DropCell(id, i); err != nil {
				s.failStorage(c, fmt.Sprintf("drop corrupt cell %d: %v", i, err))
				return
			}
			done = false
		}
		if !done {
			data, err = s.runCell(ctx, c, i, cell)
			if err != nil {
				if s.interrupted() {
					return // record stays running; recovery resumes it
				}
				if errors.Is(err, context.DeadlineExceeded) {
					s.fail(c, fmt.Sprintf("deadline exceeded after %s in cell %d/%d", deadline, i, len(cells)))
					return
				}
				s.fail(c, fmt.Sprintf("cell %d: %v", i, err))
				return
			}
			if s.kill("before-cell-journal", id) {
				return
			}
			if err := s.storeWrite(func() error { return s.cfg.Store.PutCell(id, i, data) }); err != nil {
				s.failStorage(c, fmt.Sprintf("journal cell %d: %v", i, err))
				return
			}
			c.CellsDone = i + 1
			c.CellDigests[i] = fmt.Sprintf("%016x", fnvSum(data))
			// Progress is advisory — the cell file is the truth — but the
			// digest must be durable before the next cell: best effort
			// with retries, never fatal.
			_ = s.storeWrite(func() error { return s.cfg.Store.Put(c) })
		} else {
			c.CellsDone = i + 1
		}
		fmt.Fprintf(&merged, "cell design=%s mem_mib=%d jitter=%g bytes=%d\n",
			cell.Design, cell.MemMiB, cell.Jitter, len(data))
		merged.Write(data)
	}

	if s.kill("before-result", id) {
		return
	}
	if err := s.storeWrite(func() error { return s.cfg.Store.PutResult(id, merged.Bytes()) }); err != nil {
		s.failStorage(c, fmt.Sprintf("write result: %v", err))
		return
	}
	if s.kill("after-result", id) {
		return
	}
	c.State = StateDone
	c.CellsDone = len(cells)
	c.ResultDigest = fmt.Sprintf("%016x", fnvSum(merged.Bytes()))
	c.ResultBytes = int64(merged.Len())
	c.FinishedUnix = s.now().Unix()
	if err := s.storeWrite(func() error { return s.cfg.Store.Put(c) }); err == nil {
		s.stCompleted.Add(1)
	} else {
		s.degrade()
	}
}

// runCell runs one grid cell to completion, resuming from fleet
// checkpoints when they exist and retrying with backoff when a run
// comes back incomplete. Errors it returns are classified by the
// caller; integrity verdicts from the checkpoint layer are permanent
// and returned on first sight.
func (s *Scheduler) runCell(ctx context.Context, c *Campaign, idx int, cell Cell) ([]byte, error) {
	var dir string
	if sd := s.cfg.Store.StateDir(c.ID); sd != "" {
		dir = filepath.Join(sd, fmt.Sprintf("cell-%03d", idx))
	}
	attempts := c.Spec.MaxAttempts
	if attempts <= 0 {
		attempts = s.cfg.MaxAttempts
	}

	var prog fleet.ProgressSink
	if s.cfg.Board != nil {
		prog = s.cfg.Board.Register(fmt.Sprintf("%s/cell-%03d", c.displayName(), idx))
	}
	var ring *telemetry.Ring
	if s.cfg.Bus != nil {
		ring = telemetry.NewRing(1 << 10)
		ring.SetSink(s.cfg.Bus.Sink())
	}

	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			s.stRetried.Add(1)
			if err := sleepCtx(ctx, backoff(s.cfg.BackoffBase, s.cfg.BackoffCap, attempt)); err != nil {
				return nil, err
			}
		}
		resume := false
		if dir != "" {
			if _, err := os.Stat(fleet.ManifestPath(dir)); err == nil {
				resume = true
			}
		}
		res, err := fleet.RunSupervised(ctx, fleet.SupervisedConfig{
			Fleet:       c.Spec.fleetConfig(cell),
			Workers:     s.cfg.ShardWorkers,
			MaxAttempts: s.cfg.ShardMaxAttempts,
			BackoffBase: s.cfg.BackoffBase / 10,
			BackoffCap:  s.cfg.BackoffCap / 10,
			Heartbeat:   30 * time.Second,
			Dir:         dir,
			Resume:      resume,
			Faults:      s.cfg.Faults,
			Progress:    prog,
			Trace:       ring,
		})
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		if err != nil {
			if permanent(err) {
				return nil, err
			}
			continue // transient: backoff and retry
		}
		if res.Report.Complete {
			return fleet.CanonicalBytes(res.Study), nil
		}
		// Incomplete without error: quarantined shards. Retrying with
		// Resume grants them a fresh attempt budget.
	}
	return nil, fmt.Errorf("incomplete after %d attempts (retry budget exhausted)", attempts)
}

// permanent reports whether an error from the fleet/checkpoint layers
// can never be fixed by retrying: the on-disk state itself has been
// judged corrupt, mismatched, or tampered with.
func permanent(err error) bool {
	return errors.Is(err, snapshot.ErrManifestTamper) ||
		errors.Is(err, snapshot.ErrShardCheckpoint) ||
		errors.Is(err, snapshot.ErrShardMismatch) ||
		errors.Is(err, snapshot.ErrCampaignMismatch) ||
		errors.Is(err, snapshot.ErrNoManifest)
}

func backoff(base, ceil time.Duration, attempt int) time.Duration {
	d := base << (attempt - 1)
	if d > ceil || d <= 0 {
		d = ceil
	}
	return d
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func fnvSum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

func (c *Campaign) displayName() string {
	if c.Spec.Name != "" {
		return c.Spec.Name
	}
	return c.ID
}
