package service

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// flakyStore wraps a Store and fails write operations on demand: the
// first failN calls to Put/PutCell/PutResult error, later calls pass
// through. Probe shares the same switch, so the degraded-mode probe
// loop sees the backend heal exactly when writes start succeeding.
type flakyStore struct {
	Store
	mu     sync.Mutex
	failN  int // writes left to fail; negative = fail forever
	failed atomic.Uint64
}

var errFlaky = errors.New("flaky store: injected write failure")

func (f *flakyStore) broken() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failN == 0 {
		return false
	}
	if f.failN > 0 {
		f.failN--
	}
	f.failed.Add(1)
	return true
}

func (f *flakyStore) heal() {
	f.mu.Lock()
	f.failN = 0
	f.mu.Unlock()
}

func (f *flakyStore) Put(c *Campaign) error {
	if f.broken() {
		return errFlaky
	}
	return f.Store.Put(c)
}

func (f *flakyStore) PutCell(id string, cell int, data []byte) error {
	if f.broken() {
		return errFlaky
	}
	return f.Store.PutCell(id, cell, data)
}

func (f *flakyStore) PutResult(id string, data []byte) error {
	if f.broken() {
		return errFlaky
	}
	return f.Store.PutResult(id, data)
}

func (f *flakyStore) Probe() error {
	if f.broken() {
		return errFlaky
	}
	return f.Store.Probe()
}

// TestFlakyStoreCampaignCompletes: a store that fails N writes and then
// heals must cost exactly N retries — the campaign completes, nothing
// degrades, and the counters match the injected schedule.
func TestFlakyStoreCampaignCompletes(t *testing.T) {
	const faults = 4
	fs := &flakyStore{Store: NewMemory(), failN: faults}
	s := NewScheduler(SchedulerConfig{
		Store:        fs,
		Workers:      1,
		BackoffBase:  time.Microsecond,
		BackoffCap:   time.Millisecond,
		StoreRetries: faults + 2, // budget comfortably above the fault count
	})
	s.Start()
	defer s.Drain()

	c, _, err := s.Submit(tinySpec(), "flaky")
	if err != nil {
		t.Fatalf("Submit under flaky store: %v", err)
	}
	fin := waitTerminal(t, s, c.ID)
	if fin.State != StateDone {
		t.Fatalf("campaign %s: %s", fin.State, fin.Error)
	}
	st := s.Stats()
	if st.StoreRetried != faults {
		t.Fatalf("store_retried = %d, want %d (one per injected failure)", st.StoreRetried, faults)
	}
	if st.StoreErrors != 0 {
		t.Fatalf("store_errors = %d, want 0 (every retry budget held)", st.StoreErrors)
	}
	if st.Degraded {
		t.Fatal("daemon degraded although the retry budget absorbed every fault")
	}
	if got := fs.failed.Load(); got != faults {
		t.Fatalf("injected %d faults, store saw %d", faults, got)
	}
}

// TestPersistentStoreFailureDegradesAndRecovers: a store failing past
// the retry budget fails the campaign with the typed storage error and
// flips the daemon into read-only degraded mode; once the backend
// heals, the probe loop lifts degraded mode and admission resumes.
func TestPersistentStoreFailureDegradesAndRecovers(t *testing.T) {
	fs := &flakyStore{Store: NewMemory(), failN: 0}
	s := NewScheduler(SchedulerConfig{
		Store:         fs,
		Workers:       1,
		BackoffBase:   time.Microsecond,
		BackoffCap:    time.Millisecond,
		StoreRetries:  2,
		ProbeInterval: time.Millisecond,
	})
	s.Start()
	defer s.Drain()

	// Admit while healthy, then break the store before the worker's
	// first journal write.
	fs.mu.Lock()
	fs.failN = -1
	fs.mu.Unlock()
	c, _, err := s.Submit(tinySpec(), "doomed")
	if !errors.Is(err, ErrStorage) {
		t.Fatalf("Submit on dead store: err = %v, want ErrStorage", err)
	}
	if c != nil {
		t.Fatalf("campaign acknowledged on dead store: %+v", c)
	}
	if !s.Degraded() {
		t.Fatal("daemon not degraded after persistent store failure")
	}
	if s.Health() != "degraded" {
		t.Fatalf("Health() = %q, want degraded", s.Health())
	}

	// Degraded mode refuses new admissions with the typed error.
	if _, _, err := s.Submit(tinySpec(), "while-degraded"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Submit while degraded: err = %v, want ErrDegraded", err)
	}

	// Heal the backend; the probe loop must lift degraded mode.
	fs.heal()
	deadline := time.Now().Add(10 * time.Second)
	for s.Degraded() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Degraded() {
		t.Fatal("degraded mode never lifted after the store healed")
	}
	if s.Health() != "ok" {
		t.Fatalf("Health() = %q after heal, want ok", s.Health())
	}
	c, _, err = s.Submit(tinySpec(), "after-heal")
	if err != nil {
		t.Fatalf("Submit after heal: %v", err)
	}
	fin := waitTerminal(t, s, c.ID)
	if fin.State != StateDone {
		t.Fatalf("post-heal campaign %s: %s", fin.State, fin.Error)
	}
	if st := s.Stats(); st.StoreErrors == 0 {
		t.Fatalf("store_errors = 0 after a persistent failure: %+v", st)
	}
}

// TestRunningCampaignStorageFailureIsTyped: a campaign already running
// when the store dies must fail with the typed storage error (or stay
// non-terminal for recovery), never a silent or untyped failure, and
// reads must keep working in degraded mode.
func TestRunningCampaignStorageFailureIsTyped(t *testing.T) {
	fs := &flakyStore{Store: NewMemory(), failN: 0}
	s := NewScheduler(SchedulerConfig{
		Store:         fs,
		Workers:       1,
		BackoffBase:   time.Microsecond,
		BackoffCap:    time.Millisecond,
		StoreRetries:  2,
		ProbeInterval: time.Hour, // keep degraded for the duration
	})
	s.Start()
	defer s.Drain()

	done, _, err := s.Submit(tinySpec(), "done-first")
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitTerminal(t, s, done.ID); fin.State != StateDone {
		t.Fatalf("setup campaign: %s (%s)", fin.State, fin.Error)
	}

	// Break every write from now on: the next campaign's first journal
	// write (running state) fails past the budget.
	sp := tinySpec()
	sp.Seed = 99
	fs.mu.Lock()
	fs.failN = -1
	fs.mu.Unlock()
	if _, _, err := s.Submit(sp, "mid-flight"); !errors.Is(err, ErrStorage) {
		t.Fatalf("submit on dead store: %v, want ErrStorage", err)
	}
	if !s.Degraded() {
		t.Fatal("not degraded")
	}

	// Reads still serve while degraded.
	if _, err := s.Get(done.ID); err != nil {
		t.Fatalf("Get while degraded: %v", err)
	}
	if _, err := s.Result(done.ID); err != nil {
		t.Fatalf("Result while degraded: %v", err)
	}
}
