// Store is the campaign journal: records, per-cell results, and merged
// results. Two backends implement it — memory.go (fast, nothing
// survives the process) and disk.go (every acknowledged write is on
// stable storage before the call returns). The contract test suite in
// store_test.go runs against both.
package service

// Store persists campaign records and results. Implementations must be
// safe for concurrent use; Put/PutCell/PutResult must be atomic with
// respect to readers (a Get never observes a half-written record).
type Store interface {
	// Put creates or replaces the record for c.ID. The caller's value
	// is copied; later mutations do not leak into the store.
	Put(c *Campaign) error
	// Get returns a copy of the record for id, or ErrNotFound.
	Get(id string) (*Campaign, error)
	// List returns copies of every record, sorted by ID ascending.
	List() ([]*Campaign, error)
	// PutCell journals one grid cell's canonical study bytes.
	PutCell(id string, cell int, data []byte) error
	// GetCell returns a cell's journaled bytes; ok is false when the
	// cell has not completed (not an error — it is how the scheduler
	// asks "is this cell already done?").
	GetCell(id string, cell int) (data []byte, ok bool, err error)
	// DropCell removes a cell's journaled bytes so the scheduler
	// recomputes them — the heal path for an entry integrity
	// verification refused. Dropping an absent cell is a no-op.
	DropCell(id string, cell int) error
	// PutResult journals the campaign's merged result bytes.
	PutResult(id string, data []byte) error
	// GetResult returns the merged result, or ErrNotDone when absent.
	GetResult(id string) ([]byte, error)
	// Probe exercises the backend's write path end to end (durable
	// write plus read-back) and returns nil when it is healthy. The
	// degraded-mode scheduler polls it to decide when storage has
	// recovered.
	Probe() error
	// StateDir returns the directory fleet checkpoints for id should
	// live in, or "" when the backend is not durable (the scheduler
	// then runs without disk checkpoints — retries still work, process
	// kills lose the campaign's progress but never its admission).
	StateDir(id string) string
	// Close releases backend resources.
	Close() error
}
