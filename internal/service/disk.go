// The durable store: one directory per campaign holding a sealed
// CTGCAMP record, the fleet's own CTGMANI/CTGSHRD checkpoint files, the
// per-cell canonical result journal, and the merged result.
//
//	<root>/campaigns/<id>/
//	    record.ctgjob        sealed campaign record (CTGCAMP gob)
//	    cell-000/            fleet state dir for grid cell 0
//	        campaign.ctgmani
//	        shard-000.ctgshrd ...
//	    cell-000.bin         cell 0's canonical study bytes (durable ⇒ done)
//	    result.bin           merged result (durable ⇒ campaign done)
//	<root>/.quarantine/      scrubber-quarantined corrupt files, mirrored
//	                         under their original relative paths
//	<root>/probe.bin         degraded-mode health probe scratch file
//
// Every write goes through the vfs durable-write discipline (temp file,
// fsync, rename, parent-dir fsync), so a file's existence is its
// completion certificate: recovery never has to guess whether
// cell-000.bin is whole. The record itself carries an FNV self-digest
// over its gob payload; a torn or edited record decodes to
// ErrCorruptRecord, never to a silently wrong campaign. All I/O goes
// through the active FS, putting every store operation under
// storage-fault injection.
package service

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"path/filepath"
	"sort"
	"sync"

	"contiguitas/internal/vfs"
)

// Record format constants.
const (
	RecordMagic   = "CTGCAMP"
	RecordVersion = 1
	recordFile    = "record.ctgjob"
	resultFile    = "result.bin"
	// QuarantineDir is the directory (under the store root) corrupt
	// files are moved into by the scrubber, preserving their relative
	// paths for post-mortem inspection.
	QuarantineDir = ".quarantine"
	// probeFile is the scratch file Probe writes; its .bin suffix keeps
	// it inside the path filter chaos scenarios use for the cell/result
	// journal, so a probe honestly reports the journal's health.
	probeFile = "probe.bin"
)

// diskRecord is the on-disk envelope: the campaign gob-encoded as an
// opaque payload plus a digest over it, mirroring the CTGSHRD shape.
type diskRecord struct {
	Magic       string
	Version     uint32
	PayloadHash uint64
	Payload     []byte
}

// Disk is the durable Store backend rooted at a directory.
type Disk struct {
	root string
	// mu serialises multi-file operations; individual writes are atomic
	// on their own, but List-while-Put must not see a half-created
	// campaign directory set.
	mu sync.Mutex
}

// OpenDisk opens (creating if needed) a durable store rooted at root.
func OpenDisk(root string) (*Disk, error) {
	if err := vfs.Active().MkdirAll(filepath.Join(root, "campaigns"), 0o755); err != nil {
		return nil, err
	}
	// Make the root's own directory entries durable: a store opened,
	// populated, and killed must not lose the campaigns/ dir itself.
	if err := vfs.Active().SyncDir(root); err != nil {
		return nil, err
	}
	return &Disk{root: root}, nil
}

// Root returns the directory the store is rooted at.
func (d *Disk) Root() string { return d.root }

func (d *Disk) dir(id string) string {
	return filepath.Join(d.root, "campaigns", id)
}

func (d *Disk) cellPath(id string, cell int) string {
	return filepath.Join(d.dir(id), fmt.Sprintf("cell-%03d.bin", cell))
}

// EncodeRecord seals a campaign into its CTGCAMP envelope bytes.
func EncodeRecord(c *Campaign) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(c); err != nil {
		return nil, fmt.Errorf("service: encode campaign %s: %w", c.ID, err)
	}
	h := fnv.New64a()
	h.Write(payload.Bytes())
	rec := diskRecord{
		Magic:       RecordMagic,
		Version:     RecordVersion,
		PayloadHash: h.Sum64(),
		Payload:     payload.Bytes(),
	}
	var out bytes.Buffer
	if err := gob.NewEncoder(&out).Encode(&rec); err != nil {
		return nil, fmt.Errorf("service: encode record %s: %w", c.ID, err)
	}
	return out.Bytes(), nil
}

// DecodeRecord verifies and decodes CTGCAMP envelope bytes. Any
// truncation, bit flip, or edit fails a digest or the decoder and maps
// to ErrCorruptRecord — arbitrary input must never panic or decode into
// a silently wrong campaign (FuzzCampaignRecordDecode holds it to
// that).
func DecodeRecord(data []byte) (*Campaign, error) {
	var rec diskRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rec); err != nil {
		return nil, fmt.Errorf("%w: decode: %v", ErrCorruptRecord, err)
	}
	if rec.Magic != RecordMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorruptRecord, rec.Magic)
	}
	if rec.Version != RecordVersion {
		return nil, fmt.Errorf("%w: version %d (support %d)", ErrCorruptRecord, rec.Version, RecordVersion)
	}
	h := fnv.New64a()
	h.Write(rec.Payload)
	if got := h.Sum64(); got != rec.PayloadHash {
		return nil, fmt.Errorf("%w: payload digest %016x, recorded %016x",
			ErrCorruptRecord, got, rec.PayloadHash)
	}
	c := &Campaign{}
	if err := gob.NewDecoder(bytes.NewReader(rec.Payload)).Decode(c); err != nil {
		return nil, fmt.Errorf("%w: decode payload: %v", ErrCorruptRecord, err)
	}
	return c, nil
}

func (d *Disk) Put(c *Campaign) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	data, err := EncodeRecord(c)
	if err != nil {
		return err
	}
	return vfs.WriteFileDurable(vfs.Active(), filepath.Join(d.dir(c.ID), recordFile), data)
}

func (d *Disk) Get(id string) (*Campaign, error) {
	return readRecord(filepath.Join(d.dir(id), recordFile))
}

func readRecord(path string) (*Campaign, error) {
	data, err := vfs.Active().ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	c, err := DecodeRecord(data)
	if err != nil {
		return nil, fmt.Errorf("%w in %s", err, path)
	}
	return c, nil
}

// List walks the campaigns directory. A directory without a record file
// is skipped: the durable-write order (record first, then enqueue)
// means such a directory belongs to a submission that was killed before
// it was ever acknowledged — to the client it never happened.
func (d *Disk) List() ([]*Campaign, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	entries, err := vfs.Active().ReadDir(filepath.Join(d.root, "campaigns"))
	if err != nil {
		return nil, err
	}
	var out []*Campaign
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		c, err := readRecord(filepath.Join(d.dir(e.Name()), recordFile))
		if errors.Is(err, ErrNotFound) {
			continue
		}
		if err != nil {
			// A corrupt record is a finding, not a skip: recovery must
			// not silently drop an acknowledged campaign.
			return nil, err
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

func (d *Disk) PutCell(id string, cell int, data []byte) error {
	return vfs.WriteFileDurable(vfs.Active(), d.cellPath(id, cell), data)
}

func (d *Disk) GetCell(id string, cell int) ([]byte, bool, error) {
	data, err := vfs.Active().ReadFile(d.cellPath(id, cell))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// DropCell removes a cell's journal entry so the scheduler recomputes
// it — the heal path for a cell the scrubber or the merge-time digest
// check refused.
func (d *Disk) DropCell(id string, cell int) error {
	err := vfs.Active().Remove(d.cellPath(id, cell))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

func (d *Disk) PutResult(id string, data []byte) error {
	return vfs.WriteFileDurable(vfs.Active(), filepath.Join(d.dir(id), resultFile), data)
}

func (d *Disk) GetResult(id string) ([]byte, error) {
	data, err := vfs.Active().ReadFile(filepath.Join(d.dir(id), resultFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotDone
	}
	return data, err
}

// Probe exercises the store's write path end to end: a durable write of
// a small scratch file followed by a read-back. A healthy return means
// the backend can currently complete the same discipline campaign
// writes need; the degraded-mode scheduler polls it to decide when to
// lift read-only mode.
func (d *Disk) Probe() error {
	path := filepath.Join(d.root, probeFile)
	want := []byte("contigd-probe")
	if err := vfs.WriteFileDurable(vfs.Active(), path, want); err != nil {
		return err
	}
	got, err := vfs.Active().ReadFile(path)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("service: probe read-back mismatch at %s", path)
	}
	return nil
}

// Quarantine moves the file at rel (relative to the store root) into
// the quarantine directory, preserving its relative path. The move is a
// rename — the corrupt bytes are preserved for post-mortem, and the
// original path stops existing so recovery and the scheduler see a
// plain missing file instead of a corrupt one.
func (d *Disk) Quarantine(rel string) error {
	dst := filepath.Join(d.root, QuarantineDir, rel)
	if err := vfs.Active().MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	return vfs.Active().Rename(filepath.Join(d.root, rel), dst)
}

func (d *Disk) StateDir(id string) string { return d.dir(id) }

func (d *Disk) Close() error { return nil }
