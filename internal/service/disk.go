// The durable store: one directory per campaign holding a sealed
// CTGCAMP record, the fleet's own CTGMANI/CTGSHRD checkpoint files, the
// per-cell canonical result journal, and the merged result.
//
//	<root>/campaigns/<id>/
//	    record.ctgjob        sealed campaign record (CTGCAMP gob)
//	    cell-000/            fleet state dir for grid cell 0
//	        campaign.ctgmani
//	        shard-000.ctgshrd ...
//	    cell-000.bin         cell 0's canonical study bytes (durable ⇒ done)
//	    result.bin           merged result (durable ⇒ campaign done)
//
// Every write goes through the snapshot package's durable-write
// discipline (temp file, fsync, rename, parent-dir fsync), so a file's
// existence is its completion certificate: recovery never has to guess
// whether cell-000.bin is whole. The record itself carries an FNV
// self-digest over its gob payload; a torn or edited record decodes to
// ErrCorruptRecord, never to a silently wrong campaign.
package service

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"contiguitas/internal/snapshot"
)

// Record format constants.
const (
	RecordMagic   = "CTGCAMP"
	RecordVersion = 1
	recordFile    = "record.ctgjob"
	resultFile    = "result.bin"
)

// diskRecord is the on-disk envelope: the campaign gob-encoded as an
// opaque payload plus a digest over it, mirroring the CTGSHRD shape.
type diskRecord struct {
	Magic       string
	Version     uint32
	PayloadHash uint64
	Payload     []byte
}

// Disk is the durable Store backend rooted at a directory.
type Disk struct {
	root string
	// mu serialises multi-file operations; individual writes are atomic
	// on their own, but List-while-Put must not see a half-created
	// campaign directory set.
	mu sync.Mutex
}

// OpenDisk opens (creating if needed) a durable store rooted at root.
func OpenDisk(root string) (*Disk, error) {
	if err := os.MkdirAll(filepath.Join(root, "campaigns"), 0o755); err != nil {
		return nil, err
	}
	// Make the root's own directory entries durable: a store opened,
	// populated, and killed must not lose the campaigns/ dir itself.
	if err := snapshot.SyncDir(root); err != nil {
		return nil, err
	}
	return &Disk{root: root}, nil
}

func (d *Disk) dir(id string) string {
	return filepath.Join(d.root, "campaigns", id)
}

func (d *Disk) cellPath(id string, cell int) string {
	return filepath.Join(d.dir(id), fmt.Sprintf("cell-%03d.bin", cell))
}

func (d *Disk) Put(c *Campaign) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(c); err != nil {
		return fmt.Errorf("service: encode campaign %s: %w", c.ID, err)
	}
	h := fnv.New64a()
	h.Write(payload.Bytes())
	rec := diskRecord{
		Magic:       RecordMagic,
		Version:     RecordVersion,
		PayloadHash: h.Sum64(),
		Payload:     payload.Bytes(),
	}
	var out bytes.Buffer
	if err := gob.NewEncoder(&out).Encode(&rec); err != nil {
		return fmt.Errorf("service: encode record %s: %w", c.ID, err)
	}
	return snapshot.WriteFileDurable(filepath.Join(d.dir(c.ID), recordFile), out.Bytes())
}

func (d *Disk) Get(id string) (*Campaign, error) {
	return readRecord(filepath.Join(d.dir(id), recordFile))
}

func readRecord(path string) (*Campaign, error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rec diskRecord
	if err := gob.NewDecoder(f).Decode(&rec); err != nil {
		return nil, fmt.Errorf("%w: decode %s: %v", ErrCorruptRecord, path, err)
	}
	if rec.Magic != RecordMagic {
		return nil, fmt.Errorf("%w: bad magic %q in %s", ErrCorruptRecord, rec.Magic, path)
	}
	if rec.Version != RecordVersion {
		return nil, fmt.Errorf("%w: version %d (support %d) in %s", ErrCorruptRecord, rec.Version, RecordVersion, path)
	}
	h := fnv.New64a()
	h.Write(rec.Payload)
	if got := h.Sum64(); got != rec.PayloadHash {
		return nil, fmt.Errorf("%w: payload digest %016x, recorded %016x in %s",
			ErrCorruptRecord, got, rec.PayloadHash, path)
	}
	c := &Campaign{}
	if err := gob.NewDecoder(bytes.NewReader(rec.Payload)).Decode(c); err != nil {
		return nil, fmt.Errorf("%w: decode payload of %s: %v", ErrCorruptRecord, path, err)
	}
	return c, nil
}

// List walks the campaigns directory. A directory without a record file
// is skipped: the durable-write order (record first, then enqueue)
// means such a directory belongs to a submission that was killed before
// it was ever acknowledged — to the client it never happened.
func (d *Disk) List() ([]*Campaign, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	entries, err := os.ReadDir(filepath.Join(d.root, "campaigns"))
	if err != nil {
		return nil, err
	}
	var out []*Campaign
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		c, err := readRecord(filepath.Join(d.dir(e.Name()), recordFile))
		if errors.Is(err, ErrNotFound) {
			continue
		}
		if err != nil {
			// A corrupt record is a finding, not a skip: recovery must
			// not silently drop an acknowledged campaign.
			return nil, err
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

func (d *Disk) PutCell(id string, cell int, data []byte) error {
	return snapshot.WriteFileDurable(d.cellPath(id, cell), data)
}

func (d *Disk) GetCell(id string, cell int) ([]byte, bool, error) {
	data, err := os.ReadFile(d.cellPath(id, cell))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

func (d *Disk) PutResult(id string, data []byte) error {
	return snapshot.WriteFileDurable(filepath.Join(d.dir(id), resultFile), data)
}

func (d *Disk) GetResult(id string) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(d.dir(id), resultFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotDone
	}
	return data, err
}

func (d *Disk) StateDir(id string) string { return d.dir(id) }

func (d *Disk) Close() error { return nil }
