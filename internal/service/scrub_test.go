package service

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"contiguitas/internal/resultcache"
	"contiguitas/internal/vfs"
)

// runToDone drives one campaign to completion on a fresh disk store and
// returns the store root, the campaign ID, and the merged result bytes.
func runToDone(t *testing.T, key string) (string, string, []byte) {
	t.Helper()
	root := t.TempDir()
	st, err := OpenDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	s := fastSched(st)
	s.Start()
	c, _, err := s.Submit(tinySpec(), key)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, s, c.ID)
	if fin.State != StateDone {
		t.Fatalf("campaign %s: %s", fin.State, fin.Error)
	}
	want, err := s.Result(c.ID)
	if err != nil {
		t.Fatal(err)
	}
	s.Drain()
	return root, c.ID, append([]byte(nil), want...)
}

// rotFile flips one bit of the file at path, the way the injected
// bit-rot read path would — offline media rot.
func rotFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, vfs.Rot(path, data), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestScrubQuarantinesRottedCellAndHeals: rot a done campaign's cell
// journal at rest; the scrubber must quarantine the file (typed
// finding, preserved bytes), requeue the campaign, and the recompute
// must converge on the byte-identical result.
func TestScrubQuarantinesRottedCellAndHeals(t *testing.T) {
	root, id, want := runToDone(t, "scrub-heal")
	cell := filepath.Join(root, "campaigns", id, "cell-000.bin")
	rotFile(t, cell)

	st, err := OpenDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	s := fastSched(st)
	rep, err := Scrub(ScrubConfig{Disk: st, Sched: s})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 1 {
		t.Fatalf("quarantined %d files, want 1: %+v", len(rep.Quarantined), rep)
	}
	f := rep.Quarantined[0]
	if !errors.Is(f.Err, ErrScrubQuarantine) {
		t.Fatalf("finding error %v, want ErrScrubQuarantine", f.Err)
	}
	if !strings.Contains(f.Rel, "cell-000.bin") {
		t.Fatalf("quarantined %q, want the rotted cell", f.Rel)
	}
	// The corrupt bytes are preserved in quarantine, gone from the live
	// tree.
	if _, err := os.Stat(filepath.Join(root, QuarantineDir, f.Rel)); err != nil {
		t.Fatalf("quarantine copy missing: %v", err)
	}
	if _, err := os.Stat(cell); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("rotted cell still in live tree: %v", err)
	}
	if len(rep.Requeued) != 1 || rep.Requeued[0] != id {
		t.Fatalf("requeued = %v, want [%s]", rep.Requeued, id)
	}
	if st2 := s.Stats(); st2.ScrubQuarantined != 1 || st2.ScrubRequeued != 1 || st2.ScrubScanned == 0 {
		t.Fatalf("scrub counters: %+v", st2)
	}

	// The heal: the requeued campaign recomputes the quarantined cell
	// and lands on byte-identical merged results.
	s.Start()
	defer s.Drain()
	fin := waitTerminal(t, s, id)
	if fin.State != StateDone {
		t.Fatalf("healed campaign %s: %s", fin.State, fin.Error)
	}
	got, err := s.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("healed result differs: %d bytes vs %d", len(got), len(want))
	}
}

// TestScrubQuarantinesRottedResult: rot the merged result file; the
// scrubber catches it against ResultDigest and the requeued campaign
// rewrites it byte-identically from the intact cell journal.
func TestScrubQuarantinesRottedResult(t *testing.T) {
	root, id, want := runToDone(t, "scrub-result")
	rotFile(t, filepath.Join(root, "campaigns", id, resultFile))

	st, err := OpenDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	s := fastSched(st)
	rep, err := Scrub(ScrubConfig{Disk: st, Sched: s})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 1 || !strings.Contains(rep.Quarantined[0].Rel, resultFile) {
		t.Fatalf("report: %+v", rep)
	}
	s.Start()
	defer s.Drain()
	fin := waitTerminal(t, s, id)
	if fin.State != StateDone {
		t.Fatalf("healed campaign %s: %s", fin.State, fin.Error)
	}
	got, err := s.Result(id)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("healed result differs (err=%v)", err)
	}
}

// TestScrubCorruptRecordIsLostNotTrusted: a rotted CTGCAMP record
// cannot be healed — the scrubber must quarantine it and report the
// campaign lost, and recovery must see a clean (empty) store rather
// than corrupt bytes.
func TestScrubCorruptRecordIsLostNotTrusted(t *testing.T) {
	root, id, _ := runToDone(t, "scrub-record")
	rotFile(t, filepath.Join(root, "campaigns", id, recordFile))

	st, err := OpenDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	// Before the scrub, recovery refuses the store loudly.
	if _, err := st.List(); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("List over rotted record: %v, want ErrCorruptRecord", err)
	}
	rep, err := Scrub(ScrubConfig{Disk: st})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lost) != 1 || rep.Lost[0] != id {
		t.Fatalf("lost = %v, want [%s]", rep.Lost, id)
	}
	if len(rep.Requeued) != 0 {
		t.Fatalf("requeued a campaign with no trustworthy record: %v", rep.Requeued)
	}
	// After the scrub the store is readable again.
	if _, err := st.List(); err != nil {
		t.Fatalf("List after scrub: %v", err)
	}
}

// TestScrubCacheEntry: a rotted CTGCACH entry is quarantined; the next
// Get is a plain miss, so recompute heals it.
func TestScrubCacheEntry(t *testing.T) {
	root := t.TempDir()
	st, err := OpenDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	cacheDir := filepath.Join(root, "cache")
	cache := resultcache.NewDir(cacheDir, 1)
	if err := cache.Put(0xabc, []byte("payload-a")); err != nil {
		t.Fatal(err)
	}
	if err := cache.Put(0xdef, []byte("payload-b")); err != nil {
		t.Fatal(err)
	}
	rotFile(t, cache.EntryPath(0xabc))

	rep, err := Scrub(ScrubConfig{Disk: st, Cache: cache, CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 1 {
		t.Fatalf("quarantined %d entries, want 1: %+v", len(rep.Quarantined), rep)
	}
	if _, err := cache.Get(0xabc); !errors.Is(err, resultcache.ErrMiss) {
		t.Fatalf("rotted entry after scrub: %v, want ErrMiss", err)
	}
	if got, err := cache.Get(0xdef); err != nil || string(got) != "payload-b" {
		t.Fatalf("intact entry disturbed: %q, %v", got, err)
	}
}

// TestMergeTimeDigestCheckHealsWithoutScrub: even with no scrub pass, a
// requeued campaign whose journaled cell rotted must not merge the bad
// bytes — the scheduler's own digest check drops and recomputes it.
func TestMergeTimeDigestCheckHealsWithoutScrub(t *testing.T) {
	root, id, want := runToDone(t, "merge-check")
	rotFile(t, filepath.Join(root, "campaigns", id, "cell-000.bin"))

	st, err := OpenDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	// Force a re-run with no scrub: mark the record queued again.
	c, err := st.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	c.State = StateQueued
	if err := st.Put(c); err != nil {
		t.Fatal(err)
	}
	s := fastSched(st)
	s.Start()
	defer s.Drain()
	if n, err := s.Recover(); err != nil || n != 1 {
		t.Fatalf("Recover = %d, %v", n, err)
	}
	fin := waitTerminal(t, s, id)
	if fin.State != StateDone {
		t.Fatalf("campaign %s: %s", fin.State, fin.Error)
	}
	got, err := s.Result(id)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("merged result differs after in-line heal (err=%v)", err)
	}
	if st2 := s.Stats(); st2.CellsHealed != 1 {
		t.Fatalf("cells_healed = %d, want 1", st2.CellsHealed)
	}
}
