package service

import (
	"bytes"
	"testing"
	"time"
)

// The kill-at-every-phase recovery property: a campaign interrupted at
// each durable-write boundary — and mid-computation — must, after a
// "process restart" (fresh store handle, fresh scheduler, Recover),
// finish with merged result bytes identical to an uninterrupted run.
// The in-process kill hook models SIGKILL faithfully because every
// store write completes its fsync+rename before the next phase starts:
// what the hook sees on disk is exactly what a killed process leaves.
// (True torn-write/process-death coverage is the CI service-soak job,
// which SIGKILLs a real contigd.)
func TestKillAtEveryPhaseRecoversIdentically(t *testing.T) {
	sp := tinySpec()
	want := referenceMerged(sp)

	phases := []string{"before-run", "mid-run", "before-cell-journal", "before-result", "after-result"}
	for _, phase := range phases {
		phase := phase
		t.Run(phase, func(t *testing.T) {
			root := t.TempDir()
			st, err := OpenDisk(root)
			if err != nil {
				t.Fatal(err)
			}

			// Process lifetime 1: submit, then die at the phase boundary
			// (or mid-computation via drain-without-notice for "mid-run").
			s1 := fastSched(st)
			killed := make(chan struct{}, 1)
			if phase != "mid-run" {
				s1.testKill = func(point, _ string) bool {
					if point != phase {
						return false
					}
					select {
					case killed <- struct{}{}:
					default:
					}
					return true
				}
			}
			s1.Start()
			if _, _, err := s1.Submit(sp, "kill-me"); err != nil {
				t.Fatal(err)
			}
			id := CampaignID("kill-me")
			if phase == "mid-run" {
				// Let the campaign get into the fleet engine, then yank
				// the root context — shards checkpoint at their next
				// server boundary and the process "dies".
				waitForState(t, st, id, StateRunning)
				time.Sleep(20 * time.Millisecond)
			} else {
				select {
				case <-killed:
				case <-time.After(30 * time.Second):
					t.Fatalf("kill hook for %s never fired", phase)
				}
			}
			s1.Drain()
			st.Close()

			// Process lifetime 2: reopen, recover, and the campaign must
			// complete with byte-identical results.
			st2, err := OpenDisk(root)
			if err != nil {
				t.Fatal(err)
			}
			s2 := fastSched(st2)
			n, err := s2.Recover()
			if err != nil {
				t.Fatal(err)
			}
			switch {
			case n == 1:
				// The usual case: the kill landed mid-campaign.
			case n == 0 && phase == "mid-run":
				// The race the phase cannot exclude: the tiny campaign
				// finished before the drain landed. A kill after
				// completion is itself a valid crash point — the record
				// must already be done.
				if c, err := st2.Get(id); err != nil || c.State != StateDone {
					t.Fatalf("nothing recovered and campaign not done: %v", err)
				}
			default:
				t.Fatalf("recovered %d campaigns, want 1", n)
			}
			s2.Start()
			defer s2.Drain()
			fin := waitTerminal(t, s2, id)
			if fin.State != StateDone {
				t.Fatalf("recovered campaign %s: %s", fin.State, fin.Error)
			}
			got, err := s2.Result(id)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("result after kill at %s (%d bytes) != uninterrupted run (%d bytes)",
					phase, len(got), len(want))
			}
		})
	}
}

func waitForState(t *testing.T, st Store, id string, state State) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		c, err := st.Get(id)
		if err == nil && c.State == state {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("campaign never reached state %s", state)
}

// TestRecoveryIsIdempotent: recovering twice (a crash during recovery,
// then another restart) must not duplicate or corrupt anything — the
// second process lifetime sees one campaign, runs it once.
func TestRecoveryDoneCampaignsStayDone(t *testing.T) {
	root := t.TempDir()
	st, err := OpenDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	s1 := fastSched(st)
	s1.Start()
	if _, _, err := s1.Submit(tinySpec(), "finish-me"); err != nil {
		t.Fatal(err)
	}
	id := CampaignID("finish-me")
	fin := waitTerminal(t, s1, id)
	if fin.State != StateDone {
		t.Fatalf("campaign %s: %s", fin.State, fin.Error)
	}
	digest := fin.ResultDigest
	s1.Drain()
	st.Close()

	st2, err := OpenDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	s2 := fastSched(st2)
	n, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("recovery re-admitted %d terminal campaigns", n)
	}
	c, err := s2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if c.State != StateDone || c.ResultDigest != digest {
		t.Fatalf("done campaign mutated across restart: %+v", c)
	}
}

// TestDrainMidCampaignThenResume is the SIGTERM half of the drain
// contract at the scheduler level: drain interrupts a running campaign,
// its record stays non-terminal with its checkpoints durable, and the
// next lifetime resumes to a byte-identical result. (The process-level
// assertion — exit 0, grep-able drain line — is CI's service-soak job.)
func TestDrainMidCampaignThenResume(t *testing.T) {
	sp := tinySpec()
	sp.Servers = 24
	sp.Shards = 8
	want := referenceMerged(sp)

	root := t.TempDir()
	st, err := OpenDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	s1 := fastSched(st)
	s1.Start()
	if _, _, err := s1.Submit(sp, "drain-me"); err != nil {
		t.Fatal(err)
	}
	id := CampaignID("drain-me")
	waitForState(t, st, id, StateRunning)
	s1.Drain()
	st.Close()

	c := mustGet(t, root, id)
	if c.State.Terminal() {
		t.Fatalf("drained campaign already terminal: %s", c.State)
	}

	st2, err := OpenDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	s2 := fastSched(st2)
	if n, _ := s2.Recover(); n != 1 {
		t.Fatal("drained campaign not recovered")
	}
	s2.Start()
	defer s2.Drain()
	fin := waitTerminal(t, s2, id)
	if fin.State != StateDone {
		t.Fatalf("resumed campaign %s: %s", fin.State, fin.Error)
	}
	got, err := s2.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("result after drain+resume diverged from uninterrupted run")
	}
}

func mustGet(t *testing.T, root, id string) *Campaign {
	t.Helper()
	st, err := OpenDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	c, err := st.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
