package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testServer(t *testing.T, s *Scheduler) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	s.Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url string, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp, data
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp, data
}

// TestHTTPSubmitLifecycle: submit over HTTP, poll the record, download
// the result, and check the dedupe and stats faces — the whole API
// round-trip a contigd client performs.
func TestHTTPSubmitLifecycle(t *testing.T) {
	s := fastSched(NewMemory())
	s.Start()
	defer s.Drain()
	srv := testServer(t, s)

	spec, _ := json.Marshal(tinySpec())
	body := fmt.Sprintf(`{"key": "http-1", "spec": %s}`, spec)
	resp, data := postJSON(t, srv.URL+"/api/campaigns", body, nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	var sub struct {
		Created  bool     `json:"created"`
		Campaign Campaign `json:"campaign"`
	}
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	if !sub.Created || sub.Campaign.State != StateQueued {
		t.Fatalf("submit response: %s", data)
	}
	id := sub.Campaign.ID

	// Identical resubmit via the Idempotency-Key header: 200, same ID.
	resp, data = postJSON(t, srv.URL+"/api/campaigns",
		fmt.Sprintf(`{"spec": %s}`, spec), map[string]string{"Idempotency-Key": "http-1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: %d %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Created || sub.Campaign.ID != id {
		t.Fatalf("resubmit response: %s", data)
	}

	// Poll the record until done.
	deadline := time.Now().Add(30 * time.Second)
	var rec Campaign
	for {
		resp, data = getBody(t, srv.URL+"/api/campaigns/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("get: %d %s", resp.StatusCode, data)
		}
		if err := json.Unmarshal(data, &rec); err != nil {
			t.Fatal(err)
		}
		if rec.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign stuck in %s", rec.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rec.State != StateDone {
		t.Fatalf("campaign %s: %s", rec.State, rec.Error)
	}

	// The downloaded result is the canonical merged bytes.
	resp, data = getBody(t, srv.URL+"/api/campaigns/"+id+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("result content-type %q", ct)
	}
	if !bytes.Equal(data, referenceMerged(tinySpec())) {
		t.Fatal("downloaded result diverged from direct fleet run")
	}

	// List and stats see it.
	resp, data = getBody(t, srv.URL+"/api/campaigns")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), id) {
		t.Fatalf("list: %d %s", resp.StatusCode, data)
	}
	var st Stats
	_, data = getBody(t, srv.URL+"/api/stats")
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.Submitted != 1 || st.Deduped != 1 || st.Completed != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestHTTPErrorContract: every typed rejection maps to its documented
// status code and, where promised, Retry-After.
func TestHTTPErrorContract(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Store: NewMemory(), QueueDepth: 1})
	// No Start: the queue fills and nothing runs.
	srv := testServer(t, s)
	spec, _ := json.Marshal(tinySpec())

	// 400: missing key.
	resp, _ := postJSON(t, srv.URL+"/api/campaigns", fmt.Sprintf(`{"spec": %s}`, spec), nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("no key: %d", resp.StatusCode)
	}
	// 400: invalid JSON.
	resp, _ = postJSON(t, srv.URL+"/api/campaigns", `{"key": `, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d", resp.StatusCode)
	}
	// 400: bad spec.
	resp, _ = postJSON(t, srv.URL+"/api/campaigns", `{"key": "k", "spec": {"designs": ["beos"]}}`, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: %d", resp.StatusCode)
	}

	// 201 then 409: key reused with a different spec.
	resp, _ = postJSON(t, srv.URL+"/api/campaigns", fmt.Sprintf(`{"key": "k1", "spec": %s}`, spec), nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first: %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL+"/api/campaigns", `{"key": "k1", "spec": {"seed": 99}}`, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("key reuse: %d", resp.StatusCode)
	}

	// 429 + Retry-After: queue full (depth 1, one queued above).
	resp, _ = postJSON(t, srv.URL+"/api/campaigns", fmt.Sprintf(`{"key": "k2", "spec": %s}`, spec), nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue full: %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// 409: result before done, with the state in the body.
	id := CampaignID("k1")
	resp, data := getBody(t, srv.URL+"/api/campaigns/"+id+"/result")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("early result: %d %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), string(StateQueued)) {
		t.Fatalf("early result body omits state: %s", data)
	}

	// 404: unknown campaign.
	resp, _ = getBody(t, srv.URL+"/api/campaigns/c0000000000000aa")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown get: %d", resp.StatusCode)
	}
	resp, _ = getBody(t, srv.URL+"/api/campaigns/c0000000000000aa/result")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown result: %d", resp.StatusCode)
	}

	// 503 + Retry-After: draining.
	s.Drain()
	resp, _ = postJSON(t, srv.URL+"/api/campaigns", fmt.Sprintf(`{"key": "k3", "spec": %s}`, spec), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining: %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}
