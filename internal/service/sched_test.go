package service

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"contiguitas/internal/fleet"
)

// tinySpec is sized like the fleet package's supervision tests: enough
// servers for several shards, small enough that a campaign finishes in
// well under a second.
func tinySpec() Spec {
	return Spec{
		Name:     "tiny",
		Servers:  12,
		MemsMiB:  []uint64{64},
		TicksMin: 20,
		TicksMax: 60,
		Seed:     5,
		Shards:   4,
	}
}

func fastSched(st Store) *Scheduler {
	return NewScheduler(SchedulerConfig{
		Store:       st,
		Workers:     1,
		QueueDepth:  4,
		BackoffBase: time.Microsecond,
		BackoffCap:  time.Millisecond,
	})
}

// waitTerminal polls until the campaign reaches a terminal state.
func waitTerminal(t *testing.T, s *Scheduler, id string) *Campaign {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		c, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if c.State.Terminal() {
			return c
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("campaign never reached a terminal state")
	return nil
}

// referenceMerged computes what a campaign's merged result must be, by
// running each cell directly through the plain fleet engine — no
// scheduler, no store, no supervision stress.
func referenceMerged(sp Spec) []byte {
	sp = sp.normalized()
	var out bytes.Buffer
	for _, cell := range sp.Cells() {
		data := fleet.CanonicalBytes(fleet.Run(sp.fleetConfig(cell)))
		fmt.Fprintf(&out, "cell design=%s mem_mib=%d jitter=%g bytes=%d\n",
			cell.Design, cell.MemMiB, cell.Jitter, len(data))
		out.Write(data)
	}
	return out.Bytes()
}

// TestSubmitRunsToCanonicalResult: the end-to-end happy path on both
// backends — submit, run, and the merged result is byte-identical to a
// direct unsupervised computation of the same spec.
func TestSubmitRunsToCanonicalResult(t *testing.T) {
	want := referenceMerged(tinySpec())
	for name, open := range storeBackends(t) {
		t.Run(name, func(t *testing.T) {
			s := fastSched(open(t))
			s.Start()
			defer s.Drain()

			c, created, err := s.Submit(tinySpec(), "happy")
			if err != nil || !created {
				t.Fatalf("Submit = created=%v err=%v", created, err)
			}
			fin := waitTerminal(t, s, c.ID)
			if fin.State != StateDone {
				t.Fatalf("campaign %s: %s", fin.State, fin.Error)
			}
			if fin.CellsDone != fin.Cells || fin.ResultDigest == "" {
				t.Fatalf("done record incomplete: %+v", fin)
			}
			got, err := s.Result(c.ID)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("service result (%d bytes) != direct fleet run (%d bytes)", len(got), len(want))
			}
			// The record's durable Put lands an instant before the counter
			// increment; poll briefly instead of racing the worker.
			for end := time.Now().Add(time.Second); s.Stats().Completed != 1 && time.Now().Before(end); {
				time.Sleep(time.Millisecond)
			}
			if s.Stats().Completed != 1 {
				t.Fatalf("stats: %+v", s.Stats())
			}
		})
	}
}

// TestSweepGridMergesAllCells: a multi-cell grid runs every cell in
// canonical order and merges them deterministically.
func TestSweepGridMergesAllCells(t *testing.T) {
	sp := tinySpec()
	sp.Designs = []string{"linux", "contiguitas"}
	sp.Jitters = []float64{0, 0.2}
	want := referenceMerged(sp)

	s := fastSched(NewMemory())
	s.Start()
	defer s.Drain()
	c, _, err := s.Submit(sp, "grid")
	if err != nil {
		t.Fatal(err)
	}
	if c.Cells != 4 {
		t.Fatalf("grid expanded to %d cells, want 4", c.Cells)
	}
	fin := waitTerminal(t, s, c.ID)
	if fin.State != StateDone {
		t.Fatalf("campaign %s: %s", fin.State, fin.Error)
	}
	got, err := s.Result(c.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("sweep result diverged from direct per-cell runs")
	}
}

// TestIdempotentResubmit: same key + same spec dedupes to the same
// campaign (even after it finished); same key + different spec is a
// typed conflict.
func TestIdempotentResubmit(t *testing.T) {
	s := fastSched(NewMemory())
	s.Start()
	defer s.Drain()

	first, created, err := s.Submit(tinySpec(), "idem")
	if err != nil || !created {
		t.Fatalf("first submit: created=%v err=%v", created, err)
	}
	again, created, err := s.Submit(tinySpec(), "idem")
	if err != nil || created {
		t.Fatalf("resubmit: created=%v err=%v, want dedupe", created, err)
	}
	if again.ID != first.ID {
		t.Fatalf("dedupe returned a different campaign: %s != %s", again.ID, first.ID)
	}

	other := tinySpec()
	other.Seed++
	if _, _, err := s.Submit(other, "idem"); !errors.Is(err, ErrKeyReuse) {
		t.Fatalf("key reuse with changed spec = %v, want ErrKeyReuse", err)
	}

	waitTerminal(t, s, first.ID)
	done, created, err := s.Submit(tinySpec(), "idem")
	if err != nil || created {
		t.Fatalf("resubmit after done: created=%v err=%v", created, err)
	}
	if done.State != StateDone {
		t.Fatalf("resubmit after done returned state %s", done.State)
	}
	if s.Stats().Deduped != 2 {
		t.Fatalf("stats: %+v", s.Stats())
	}
}

// TestSubmitValidation: bad specs and missing keys are typed 400-class
// errors and never reach the store.
func TestSubmitValidation(t *testing.T) {
	s := fastSched(NewMemory())
	if _, _, err := s.Submit(tinySpec(), ""); !errors.Is(err, ErrNoKey) {
		t.Fatalf("no key = %v, want ErrNoKey", err)
	}
	bad := tinySpec()
	bad.Designs = []string{"windows"}
	if _, _, err := s.Submit(bad, "k"); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("bad design = %v, want ErrBadSpec", err)
	}
	bad = tinySpec()
	bad.TicksMin, bad.TicksMax = 50, 20
	if _, _, err := s.Submit(bad, "k"); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("inverted ticks = %v, want ErrBadSpec", err)
	}
	bad = tinySpec()
	bad.Jitters = []float64{1.5}
	if _, _, err := s.Submit(bad, "k"); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("jitter 1.5 = %v, want ErrBadSpec", err)
	}
	if list, _ := s.List(); len(list) != 0 {
		t.Fatalf("rejected submits reached the store: %d records", len(list))
	}
}

// TestQueueAdmissionBound: with no workers draining the queue, submits
// beyond QueueDepth get ErrQueueFull; distinct keys, distinct records.
func TestQueueAdmissionBound(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Store: NewMemory(), QueueDepth: 2})
	// Never started: the queue only fills.
	for i := 0; i < 2; i++ {
		if _, _, err := s.Submit(tinySpec(), fmt.Sprintf("q%d", i)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	_, _, err := s.Submit(tinySpec(), "q2")
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit = %v, want ErrQueueFull", err)
	}
	if st := s.Stats(); st.Submitted != 2 || st.Rejected != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// The rejected campaign left no record — a 429 means "try again",
	// and a retry with the same key must be a fresh admission, not a
	// dedupe against a ghost.
	if _, err := s.Get(CampaignID("q2")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("rejected submit left a record: %v", err)
	}
}

// TestDrainRejectsAndPreservesQueue: draining flips submissions to
// ErrDraining and leaves queued campaigns queued (for the next process
// lifetime), never starting them.
func TestDrainRejectsAndPreservesQueue(t *testing.T) {
	st := NewMemory()
	s := NewScheduler(SchedulerConfig{Store: st, QueueDepth: 4})
	if _, _, err := s.Submit(tinySpec(), "parked"); err != nil {
		t.Fatal(err)
	}
	s.Start()
	s.Drain()
	if _, _, err := s.Submit(tinySpec(), "late"); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining = %v, want ErrDraining", err)
	}
	c, err := st.Get(CampaignID("parked"))
	if err != nil {
		t.Fatal(err)
	}
	if c.State != StateQueued && c.State != StateRunning && c.State != StateDone {
		t.Fatalf("parked campaign in state %s", c.State)
	}
}

// TestDeadlineFailsCampaign: a campaign that cannot finish inside its
// deadline fails terminally with a deadline message — it does not hang
// and does not stay running forever.
func TestDeadlineFailsCampaign(t *testing.T) {
	s := NewScheduler(SchedulerConfig{
		Store:           NewMemory(),
		Workers:         1,
		DefaultDeadline: time.Millisecond,
		BackoffBase:     time.Microsecond,
		BackoffCap:      time.Millisecond,
	})
	s.Start()
	defer s.Drain()
	sp := tinySpec()
	sp.Servers = 64
	sp.TicksMin, sp.TicksMax = 200, 400
	c, _, err := s.Submit(sp, "deadline")
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, s, c.ID)
	if fin.State != StateFailed {
		t.Fatalf("campaign %s, want failed", fin.State)
	}
	if fin.Error == "" {
		t.Fatal("failed campaign carries no error")
	}
	if s.Stats().Failed != 1 {
		t.Fatalf("stats: %+v", s.Stats())
	}
}

// TestRetryThenFailOnPersistentFaults: a fault plan that makes every
// checkpoint write fail forces quarantine; the scheduler retries with
// backoff up to the budget and then fails terminally, counting the
// retries.
func TestRetryThenFailOnPersistentFaults(t *testing.T) {
	sp := tinySpec()
	sp.MaxAttempts = 2
	s := NewScheduler(SchedulerConfig{
		Store:            NewMemory(),
		Workers:          1,
		BackoffBase:      time.Microsecond,
		BackoffCap:       time.Millisecond,
		ShardMaxAttempts: 2,
		Faults:           fleet.FaultPlan{CrashEveryN: 2, CheckpointFailProb: 1.0},
	})
	s.Start()
	defer s.Drain()
	c, _, err := s.Submit(sp, "doomed")
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, s, c.ID)
	if fin.State != StateFailed {
		t.Fatalf("campaign %s (%s), want failed", fin.State, fin.Error)
	}
	st := s.Stats()
	if st.Retried == 0 {
		t.Fatalf("terminal failure without a single retry: %+v", st)
	}
}
