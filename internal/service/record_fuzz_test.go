package service

import (
	"errors"
	"testing"
)

// FuzzCampaignRecordDecode holds DecodeRecord to its contract under
// arbitrary bytes: it may accept (a valid envelope) or reject with the
// typed ErrCorruptRecord — it must never panic, and an accepted record
// must re-encode to an envelope that decodes to the same campaign.
func FuzzCampaignRecordDecode(f *testing.F) {
	// Seed with a real sealed record and targeted mutations of it, so
	// the fuzzer starts inside the format instead of random noise.
	c := &Campaign{
		ID:          "c0123456789abcdef",
		Key:         "fuzz-seed",
		SpecHash:    "00000000deadbeef",
		Spec:        tinySpec().normalized(),
		State:       StateDone,
		Attempts:    2,
		Cells:       1,
		CellsDone:   1,
		CellDigests: []string{"0123456789abcdef"},
	}
	valid, err := EncodeRecord(c)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("CTGCAMP"))
	f.Add(valid[:len(valid)/2]) // truncation
	for _, i := range []int{0, len(valid) / 2, len(valid) - 1} {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x40 // single-bit rot at the header, middle, and tail
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeRecord(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptRecord) {
				t.Fatalf("rejection not typed: %v", err)
			}
			if got != nil {
				t.Fatal("rejected decode returned a campaign")
			}
			return
		}
		// Accepted: the envelope digests held, so a round trip must be
		// stable.
		re, err := EncodeRecord(got)
		if err != nil {
			t.Fatalf("re-encode of accepted record: %v", err)
		}
		back, err := DecodeRecord(re)
		if err != nil {
			t.Fatalf("round trip of accepted record: %v", err)
		}
		if back.ID != got.ID || back.State != got.State || back.Attempts != got.Attempts {
			t.Fatalf("round trip drifted: %+v vs %+v", back, got)
		}
	})
}
