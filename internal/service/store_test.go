package service

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// The Store contract suite: every behaviour the scheduler depends on,
// run identically against both backends. A backend that passes this
// suite can be swapped in without the scheduler noticing.
func storeBackends(t *testing.T) map[string]func(t *testing.T) Store {
	return map[string]func(t *testing.T) Store{
		"memory": func(t *testing.T) Store { return NewMemory() },
		"disk": func(t *testing.T) Store {
			d, err := OpenDisk(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
	}
}

func testCampaign(key string) *Campaign {
	spec := Spec{Servers: 4, Seed: 7}.normalized()
	return &Campaign{
		ID:       CampaignID(key),
		Key:      key,
		SpecHash: fmt.Sprintf("%016x", spec.fingerprint()),
		Spec:     spec,
		State:    StateQueued,
		Cells:    len(spec.Cells()),
	}
}

func TestStoreContract(t *testing.T) {
	for name, open := range storeBackends(t) {
		t.Run(name, func(t *testing.T) {
			st := open(t)
			defer st.Close()

			// Unknown IDs are typed.
			if _, err := st.Get("c0000000000000ff"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get(unknown) = %v, want ErrNotFound", err)
			}
			if _, err := st.GetResult("c0000000000000ff"); !errors.Is(err, ErrNotDone) {
				t.Fatalf("GetResult(unknown) = %v, want ErrNotDone", err)
			}

			// Put/Get round-trips every field.
			c := testCampaign("k1")
			if err := st.Put(c); err != nil {
				t.Fatal(err)
			}
			got, err := st.Get(c.ID)
			if err != nil {
				t.Fatal(err)
			}
			if got.Key != "k1" || got.State != StateQueued || got.SpecHash != c.SpecHash {
				t.Fatalf("round-trip mismatch: %+v", got)
			}
			if len(got.Spec.Designs) != 1 || got.Spec.Designs[0] != "linux" {
				t.Fatalf("spec grid lost in round-trip: %+v", got.Spec)
			}

			// Put is an overwrite (idempotent re-put, state updates).
			c.State = StateRunning
			c.Attempts = 3
			if err := st.Put(c); err != nil {
				t.Fatal(err)
			}
			got, _ = st.Get(c.ID)
			if got.State != StateRunning || got.Attempts != 3 {
				t.Fatalf("overwrite lost: %+v", got)
			}

			// The store copies; caller mutations must not leak in.
			got.Spec.Designs[0] = "mutated"
			again, _ := st.Get(c.ID)
			if again.Spec.Designs[0] != "linux" {
				t.Fatal("store aliased a caller-visible slice")
			}

			// List is sorted by ID and sees everything.
			c2 := testCampaign("k2")
			if err := st.Put(c2); err != nil {
				t.Fatal(err)
			}
			list, err := st.List()
			if err != nil {
				t.Fatal(err)
			}
			if len(list) != 2 {
				t.Fatalf("List returned %d records, want 2", len(list))
			}
			if list[0].ID > list[1].ID {
				t.Fatalf("List unsorted: %s > %s", list[0].ID, list[1].ID)
			}

			// Cell journal: absent is (nil, false, nil), present round-trips.
			if _, ok, err := st.GetCell(c.ID, 0); ok || err != nil {
				t.Fatalf("GetCell(absent) = ok=%v err=%v, want false, nil", ok, err)
			}
			cell0 := []byte("cell-zero-bytes")
			if err := st.PutCell(c.ID, 0, cell0); err != nil {
				t.Fatal(err)
			}
			data, ok, err := st.GetCell(c.ID, 0)
			if err != nil || !ok || !bytes.Equal(data, cell0) {
				t.Fatalf("GetCell = %q ok=%v err=%v", data, ok, err)
			}

			// Result round-trip.
			res := []byte("merged-result")
			if err := st.PutResult(c.ID, res); err != nil {
				t.Fatal(err)
			}
			data, err = st.GetResult(c.ID)
			if err != nil || !bytes.Equal(data, res) {
				t.Fatalf("GetResult = %q, %v", data, err)
			}

			// Concurrent writers must not corrupt records (run with -race).
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					cc := testCampaign(fmt.Sprintf("conc-%d", i))
					for j := 0; j < 5; j++ {
						cc.Attempts = uint64(j)
						if err := st.Put(cc); err != nil {
							t.Error(err)
							return
						}
						if _, err := st.Get(cc.ID); err != nil {
							t.Error(err)
							return
						}
					}
				}(i)
			}
			wg.Wait()
			list, err = st.List()
			if err != nil {
				t.Fatal(err)
			}
			if len(list) != 10 {
				t.Fatalf("after concurrent writers List has %d records, want 10", len(list))
			}
		})
	}
}

// TestDiskStoreSurvivesReopen: the disk backend's whole point — a fresh
// open over the same root sees every acknowledged write.
func TestDiskStoreSurvivesReopen(t *testing.T) {
	root := t.TempDir()
	d, err := OpenDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	c := testCampaign("persist")
	c.State = StateRunning
	if err := d.Put(c); err != nil {
		t.Fatal(err)
	}
	if err := d.PutCell(c.ID, 0, []byte("cell")); err != nil {
		t.Fatal(err)
	}
	d.Close()

	d2, err := OpenDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d2.Get(c.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateRunning || got.Key != "persist" {
		t.Fatalf("reopened record: %+v", got)
	}
	if data, ok, _ := d2.GetCell(c.ID, 0); !ok || string(data) != "cell" {
		t.Fatalf("reopened cell journal: %q ok=%v", data, ok)
	}
}

// TestDiskStoreCorruptRecordTyped: a torn or edited record must decode
// to ErrCorruptRecord — and a corrupt record must fail List loudly, not
// silently vanish from recovery.
func TestDiskStoreCorruptRecordTyped(t *testing.T) {
	root := t.TempDir()
	d, err := OpenDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	c := testCampaign("corrupt-me")
	if err := d.Put(c); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(d.StateDir(c.ID), "record.ctgjob")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(c.ID); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("Get(corrupt) = %v, want ErrCorruptRecord", err)
	}
	if _, err := d.List(); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("List with corrupt record = %v, want ErrCorruptRecord", err)
	}
}

// TestDiskStoreSkipsUnacknowledgedDirs: a campaign directory without a
// record belongs to a submission killed before acknowledgement; List
// must skip it rather than error or invent a campaign.
func TestDiskStoreSkipsUnacknowledgedDirs(t *testing.T) {
	root := t.TempDir()
	d, err := OpenDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(root, "campaigns", "c00deadbeef00000"), 0o755); err != nil {
		t.Fatal(err)
	}
	list, err := d.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Fatalf("List = %d records, want 0", len(list))
	}
}
