// Package service is the resident campaign service: the long-lived
// daemon layer (cmd/contigd) that accepts fleet-study campaign
// submissions over HTTP, schedules them through the supervised sharded
// engine (internal/fleet + internal/supervise), journals every state
// transition durably, and survives both graceful drains (SIGTERM) and
// outright kills (SIGKILL) without losing a completed shard or
// producing a result that differs from an uninterrupted run.
//
// The layering mirrors the rest of the repository:
//
//	HTTP API (http.go)            idempotent submits, typed rejections
//	Scheduler (sched.go)          bounded admission, worker pool,
//	                              deadlines, retry/backoff, drain,
//	                              startup recovery
//	Store (store.go)              campaign records + results; memory.go
//	                              and disk.go backends
//	fleet.RunSupervised           the actual computation, checkpointed
//	                              per server through CTGMANI/CTGSHRD
//
// Durability invariant: the disk store acknowledges a submission only
// after the sealed CTGCAMP record is on stable storage (temp file,
// fsync, rename, parent-dir fsync), and every later transition rewrites
// the record the same way. A process killed at any instant therefore
// restarts into one of a small set of on-disk states, each of which
// recovery maps back into the queue; results are canonical study bytes
// (fleet.CanonicalBytes), so a resumed campaign's merged result is
// byte-identical to an uninterrupted run of the same spec.
package service

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"

	"contiguitas/internal/core"
	"contiguitas/internal/fleet"
)

// State is a campaign's lifecycle state. String-typed so records and
// API responses read the same in JSON, logs, and CI greps.
type State string

const (
	// StateQueued: durably recorded, waiting for a worker.
	StateQueued State = "queued"
	// StateRunning: a worker owns it. A record found in this state at
	// startup belonged to a killed process and is re-queued.
	StateRunning State = "running"
	// StateDone: result written; terminal.
	StateDone State = "done"
	// StateFailed: terminal failure; Error says why.
	StateFailed State = "failed"
)

// Typed service errors. The HTTP layer maps each to a status code; the
// scheduler and store return them for programmatic callers.
var (
	// ErrBadSpec reports a submission that fails validation (400).
	ErrBadSpec = errors.New("service: invalid campaign spec")
	// ErrNoKey reports a submission without an idempotency key (400).
	ErrNoKey = errors.New("service: idempotency key required")
	// ErrKeyReuse reports an idempotency key resubmitted with a
	// different spec — the one thing an idempotent endpoint must never
	// silently accept (409).
	ErrKeyReuse = errors.New("service: idempotency key reused with a different spec")
	// ErrQueueFull reports admission-control rejection: the bounded
	// queue is at capacity (429 + Retry-After).
	ErrQueueFull = errors.New("service: campaign queue full")
	// ErrDraining reports a submission during graceful shutdown (503).
	ErrDraining = errors.New("service: draining, not admitting campaigns")
	// ErrNotFound reports an unknown campaign ID (404).
	ErrNotFound = errors.New("service: campaign not found")
	// ErrNotDone reports a result request for a campaign that has not
	// finished (409).
	ErrNotDone = errors.New("service: campaign has no result yet")
	// ErrCorruptRecord reports a stored campaign record whose integrity
	// check failed — torn write survivors are detected, never trusted.
	ErrCorruptRecord = errors.New("service: campaign record corrupt")
	// ErrStorage reports a campaign failed because the store's write
	// path failed persistently (after the scheduler's retry budget). It
	// is the typed terminal reason a campaign carries when the disk —
	// not the computation — was the problem (503).
	ErrStorage = errors.New("service: storage backend failing")
	// ErrDegraded reports an admission refused because the daemon is in
	// read-only degraded mode after a storage failure; reads still work,
	// and admission resumes automatically once the store's probe passes
	// (503 + Retry-After).
	ErrDegraded = errors.New("service: degraded (read-only): storage backend unavailable")
	// ErrScrubQuarantine reports a stored artifact the integrity
	// scrubber refused and moved to quarantine.
	ErrScrubQuarantine = errors.New("service: scrub quarantined corrupt artifact")
)

// Spec is a client-submitted campaign: one fleet study per cell of the
// designs × mems × jitters grid (every grid defaults to one cell). The
// zero value of every field picks the repository default, so the
// minimal useful submission is `{}` plus an idempotency key.
type Spec struct {
	// Name labels the campaign on the observability board.
	Name string `json:"name,omitempty"`
	// Servers per cell (0 → the fleet default).
	Servers int `json:"servers,omitempty"`
	// Designs are memory-management designs ("linux", "contiguitas");
	// empty → ["linux"].
	Designs []string `json:"designs,omitempty"`
	// MemsMiB are per-server memory sizes in MiB; empty → [1024].
	MemsMiB []uint64 `json:"mems_mib,omitempty"`
	// Jitters are per-server jitter fractions in [0, 1); empty → [0.5].
	Jitters []float64 `json:"jitters,omitempty"`
	// TicksMin/TicksMax bound each server's uptime draw (0 → defaults).
	TicksMin uint64 `json:"ticks_min,omitempty"`
	TicksMax uint64 `json:"ticks_max,omitempty"`
	// Seed is the study seed (0 → 1).
	Seed uint64 `json:"seed,omitempty"`
	// Shards per cell (0 → fleet.DefaultShards).
	Shards int `json:"shards,omitempty"`
	// DeadlineSec bounds the campaign's total wall-clock runtime across
	// retries (0 → the scheduler's default; the scheduler's default may
	// itself be "none").
	DeadlineSec uint64 `json:"deadline_sec,omitempty"`
	// MaxAttempts is the campaign-level retry budget per cell (0 → the
	// scheduler's default).
	MaxAttempts int `json:"max_attempts,omitempty"`
}

// Cell is one point of the spec's grid, in canonical iteration order
// (designs outermost, jitters innermost — the same order the fleetscan
// -sweep mode walks).
type Cell struct {
	Design string  `json:"design"`
	MemMiB uint64  `json:"mem_mib"`
	Jitter float64 `json:"jitter"`
}

// normalized returns the spec with every defaultable zero value filled
// in, so fingerprints, fleet configs, and stored records all agree on
// what was actually run.
func (sp Spec) normalized() Spec {
	def := fleet.DefaultConfig()
	if sp.Servers == 0 {
		sp.Servers = def.Servers
	}
	if len(sp.Designs) == 0 {
		sp.Designs = []string{"linux"}
	}
	if len(sp.MemsMiB) == 0 {
		sp.MemsMiB = []uint64{def.MemBytes >> 20}
	}
	if len(sp.Jitters) == 0 {
		sp.Jitters = []float64{def.JitterFrac}
	}
	if sp.TicksMin == 0 {
		sp.TicksMin = def.TicksMin
	}
	if sp.TicksMax == 0 {
		sp.TicksMax = def.TicksMax
	}
	if sp.Seed == 0 {
		sp.Seed = def.Seed
	}
	return sp
}

// validate rejects a normalized spec with a typed, human-readable
// reason. Bounds are generous — this is admission sanity, not policy.
func (sp Spec) validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrBadSpec, fmt.Sprintf(format, args...))
	}
	if sp.Servers < 1 || sp.Servers > 1_000_000 {
		return bad("servers %d out of range [1, 1000000]", sp.Servers)
	}
	for _, d := range sp.Designs {
		if _, err := ParseDesign(d); err != nil {
			return bad("%v", err)
		}
	}
	for _, m := range sp.MemsMiB {
		if m < 16 || m > 1<<20 {
			return bad("mem %d MiB out of range [16, 1048576]", m)
		}
	}
	for _, j := range sp.Jitters {
		if j < 0 || j >= 1 || math.IsNaN(j) {
			return bad("jitter %g out of range [0, 1)", j)
		}
	}
	if sp.TicksMin > sp.TicksMax {
		return bad("ticks_min %d > ticks_max %d", sp.TicksMin, sp.TicksMax)
	}
	if sp.TicksMax > 1_000_000 {
		return bad("ticks_max %d out of range (max 1000000)", sp.TicksMax)
	}
	if sp.Shards < 0 || sp.Shards > 4096 {
		return bad("shards %d out of range [0, 4096]", sp.Shards)
	}
	if sp.MaxAttempts < 0 || sp.MaxAttempts > 1024 {
		return bad("max_attempts %d out of range [0, 1024]", sp.MaxAttempts)
	}
	if len(sp.Designs)*len(sp.MemsMiB)*len(sp.Jitters) > 256 {
		return bad("grid has %d cells (max 256)", len(sp.Designs)*len(sp.MemsMiB)*len(sp.Jitters))
	}
	return nil
}

// Cells expands the grid in canonical order.
func (sp Spec) Cells() []Cell {
	cells := make([]Cell, 0, len(sp.Designs)*len(sp.MemsMiB)*len(sp.Jitters))
	for _, d := range sp.Designs {
		for _, m := range sp.MemsMiB {
			for _, j := range sp.Jitters {
				cells = append(cells, Cell{Design: d, MemMiB: m, Jitter: j})
			}
		}
	}
	return cells
}

// fleetConfig builds the per-cell fleet configuration.
func (sp Spec) fleetConfig(cell Cell) fleet.Config {
	design, _ := ParseDesign(cell.Design) // validated at admission
	cfg := fleet.DefaultConfig()
	cfg.Servers = sp.Servers
	cfg.MemBytes = cell.MemMiB << 20
	cfg.Design = design
	cfg.TicksMin = sp.TicksMin
	cfg.TicksMax = sp.TicksMax
	cfg.JitterFrac = cell.Jitter
	cfg.Seed = sp.Seed
	cfg.Shards = sp.Shards
	return cfg
}

// fingerprint digests every result-shaping field of a normalized spec.
// Idempotent resubmission compares fingerprints: same key + same
// fingerprint dedupes, same key + different fingerprint is ErrKeyReuse.
// Name and DeadlineSec/MaxAttempts are deliberately included — a
// resubmission that changes *anything* is not the same request.
func (sp Spec) fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(vs ...uint64) {
		for _, v := range vs {
			for i := 0; i < 8; i++ {
				buf[i] = byte(v >> (8 * i))
			}
			h.Write(buf[:])
		}
	}
	h.Write([]byte(sp.Name))
	h.Write([]byte{0})
	w(uint64(sp.Servers), sp.TicksMin, sp.TicksMax, sp.Seed,
		uint64(sp.Shards), sp.DeadlineSec, uint64(sp.MaxAttempts))
	w(uint64(len(sp.Designs)))
	for _, d := range sp.Designs {
		h.Write([]byte(d))
		h.Write([]byte{0})
	}
	w(uint64(len(sp.MemsMiB)))
	w(sp.MemsMiB...)
	w(uint64(len(sp.Jitters)))
	for _, j := range sp.Jitters {
		w(math.Float64bits(j))
	}
	return h.Sum64()
}

// ParseDesign maps a design name to its core value, with a plain error
// (the cli.Usagef exit in fleetscan is a CLI policy, not a library one).
func ParseDesign(name string) (core.Design, error) {
	switch name {
	case "linux":
		return core.DesignLinux, nil
	case "contiguitas":
		return core.DesignContiguitas, nil
	default:
		return 0, fmt.Errorf("unknown design %q (want linux|contiguitas)", name)
	}
}

// Campaign is the durable record of one submission: spec, lifecycle
// state, attempt counts, and the result identity once done. This is
// what the store journals and the API returns.
type Campaign struct {
	// ID is derived from the idempotency key (FNV-1a, hex), so a
	// resubmission addresses the same record with no index.
	ID string `json:"id"`
	// Key is the client idempotency key.
	Key string `json:"key"`
	// SpecHash fingerprints the normalized spec (hex) for key-reuse
	// detection across restarts.
	SpecHash string `json:"spec_hash"`
	Spec     Spec   `json:"spec"`
	State    State  `json:"state"`
	// Error holds the terminal failure reason when State is failed.
	Error string `json:"error,omitempty"`
	// Attempts counts scheduler-level run attempts (across process
	// lifetimes; shard-level retries are counted by the fleet manifest).
	Attempts uint64 `json:"attempts"`
	// Cells is the grid size; CellsDone of them have durable results.
	Cells     int `json:"cells"`
	CellsDone int `json:"cells_done"`
	// CellDigests holds the FNV-1a digest (hex) of each completed
	// cell's canonical bytes, indexed by cell, "" while pending. The
	// scheduler checks a journaled cell against its digest before
	// reusing it, and the scrubber uses the same digests to detect
	// rotted cell files at rest.
	CellDigests []string `json:"cell_digests,omitempty"`
	// ResultDigest is the FNV-1a digest (hex) of the merged result
	// bytes, and ResultBytes their length, once State is done.
	ResultDigest string `json:"result_digest,omitempty"`
	ResultBytes  int64  `json:"result_bytes,omitempty"`
	// SubmittedUnix / FinishedUnix are informational wall-clock stamps
	// (unix seconds); they do not participate in any result identity.
	SubmittedUnix int64 `json:"submitted_unix,omitempty"`
	FinishedUnix  int64 `json:"finished_unix,omitempty"`
}

// CampaignID derives the record ID for an idempotency key.
func CampaignID(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return fmt.Sprintf("c%016x", h.Sum64())
}

// clone deep-copies a campaign so store backends never alias
// caller-visible slices.
func (c *Campaign) clone() *Campaign {
	cp := *c
	cp.Spec.Designs = append([]string(nil), c.Spec.Designs...)
	cp.Spec.MemsMiB = append([]uint64(nil), c.Spec.MemsMiB...)
	cp.Spec.Jitters = append([]float64(nil), c.Spec.Jitters...)
	cp.CellDigests = append([]string(nil), c.CellDigests...)
	return &cp
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }
