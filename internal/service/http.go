// The HTTP face of the scheduler, mounted onto an obsv mux via
// Options.Extend. Everything is stdlib net/http with Go 1.22 method
// patterns; bodies are JSON except result downloads, which are the raw
// canonical bytes (so CI can cmp them against a reference run).
//
//	POST /api/campaigns              submit {key, spec} (or the
//	                                 Idempotency-Key header) →
//	                                 201 created / 200 deduplicated
//	GET  /api/campaigns              all records
//	GET  /api/campaigns/{id}         one record
//	GET  /api/campaigns/{id}/result  merged canonical bytes (octet-stream)
//	GET  /api/stats                  scheduler counters
//
// Error contract (all JSON {"error": ...}):
//
//	400  invalid JSON, missing idempotency key, spec validation
//	404  unknown campaign
//	409  key reused with a different spec; result requested before done
//	429  queue full (Retry-After: 1)
//	503  draining (Retry-After: 5); degraded read-only mode or a
//	     persistent storage failure (Retry-After: 10)
package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
)

// maxBodyBytes bounds a submission body; specs are small and a bound
// keeps a misdirected upload from ballooning the daemon.
const maxBodyBytes = 1 << 20

// submitRequest is the POST body. Key may instead arrive in the
// Idempotency-Key header, which wins when both are present.
type submitRequest struct {
	Key  string `json:"key,omitempty"`
	Spec Spec   `json:"spec"`
}

// submitResponse wraps the record with whether this call created it.
type submitResponse struct {
	Created  bool `json:"created"`
	Campaign any  `json:"campaign"`
}

type errorResponse struct {
	Error string `json:"error"`
	State State  `json:"state,omitempty"`
}

// Mount registers the API routes. Shaped to be passed directly as
// obsv.Options.Extend.
func (s *Scheduler) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /api/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /api/campaigns", s.handleList)
	mux.HandleFunc("GET /api/campaigns/{id}", s.handleGet)
	mux.HandleFunc("GET /api/campaigns/{id}/result", s.handleResult)
	mux.HandleFunc("GET /api/stats", s.handleStats)
}

func (s *Scheduler) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(body) > maxBodyBytes {
		writeErr(w, http.StatusRequestEntityTooLarge, "body exceeds 1 MiB")
		return
	}
	var req submitRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeErr(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
			return
		}
	}
	if h := r.Header.Get("Idempotency-Key"); h != "" {
		req.Key = h
	}

	c, created, err := s.Submit(req.Spec, req.Key)
	if err != nil {
		status, retryAfter := submitStatus(err)
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		writeErr(w, status, err.Error())
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	writeJSON(w, code, submitResponse{Created: created, Campaign: c})
}

// submitStatus maps a typed Submit error to its HTTP status and
// optional Retry-After value.
func submitStatus(err error) (int, string) {
	switch {
	case errors.Is(err, ErrNoKey), errors.Is(err, ErrBadSpec):
		return http.StatusBadRequest, ""
	case errors.Is(err, ErrKeyReuse):
		return http.StatusConflict, ""
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, "1"
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, "5"
	case errors.Is(err, ErrDegraded), errors.Is(err, ErrStorage):
		// The store's write path is down; reads still serve. Clients
		// should retry after the probe loop has had a chance to heal.
		return http.StatusServiceUnavailable, "10"
	default:
		return http.StatusInternalServerError, ""
	}
}

func (s *Scheduler) handleList(w http.ResponseWriter, _ *http.Request) {
	list, err := s.List()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	if list == nil {
		list = []*Campaign{}
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Scheduler) handleGet(w http.ResponseWriter, r *http.Request) {
	c, err := s.Get(r.PathValue("id"))
	if errors.Is(err, ErrNotFound) {
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, c)
}

func (s *Scheduler) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	data, err := s.Result(id)
	switch {
	case errors.Is(err, ErrNotFound):
		writeErr(w, http.StatusNotFound, err.Error())
	case errors.Is(err, ErrNotDone):
		// Tell the poller where the campaign actually is so a script
		// can distinguish "still running" from "failed, stop waiting".
		c, gerr := s.Get(id)
		resp := errorResponse{Error: err.Error()}
		if gerr == nil {
			resp.State = c.State
			if c.State == StateFailed {
				resp.Error = c.Error
			}
		}
		writeJSON(w, http.StatusConflict, resp)
	case err != nil:
		writeErr(w, http.StatusInternalServerError, err.Error())
	default:
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(data)
	}
}

func (s *Scheduler) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}
