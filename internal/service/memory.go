// The in-memory store: the Store contract without durability. Used by
// tests and by a contigd started without -state-dir (which warns that
// campaigns will not survive a restart).
package service

import (
	"sort"
	"sync"
)

// Memory is an in-process Store. The zero value is not usable; call
// NewMemory.
type Memory struct {
	mu      sync.Mutex
	recs    map[string]*Campaign
	cells   map[string]map[int][]byte
	results map[string][]byte
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{
		recs:    make(map[string]*Campaign),
		cells:   make(map[string]map[int][]byte),
		results: make(map[string][]byte),
	}
}

func (m *Memory) Put(c *Campaign) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recs[c.ID] = c.clone()
	return nil
}

func (m *Memory) Get(id string) (*Campaign, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.recs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return c.clone(), nil
}

func (m *Memory) List() ([]*Campaign, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Campaign, 0, len(m.recs))
	for _, c := range m.recs {
		out = append(out, c.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

func (m *Memory) PutCell(id string, cell int, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	cs := m.cells[id]
	if cs == nil {
		cs = make(map[int][]byte)
		m.cells[id] = cs
	}
	cs[cell] = append([]byte(nil), data...)
	return nil
}

func (m *Memory) GetCell(id string, cell int) ([]byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.cells[id][cell]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), data...), true, nil
}

func (m *Memory) DropCell(id string, cell int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.cells[id], cell)
	return nil
}

func (m *Memory) PutResult(id string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.results[id] = append([]byte(nil), data...)
	return nil
}

func (m *Memory) GetResult(id string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.results[id]
	if !ok {
		return nil, ErrNotDone
	}
	return append([]byte(nil), data...), nil
}

// StateDir is empty: an in-memory campaign has no durable checkpoints.
func (m *Memory) StateDir(string) string { return "" }

// Probe always succeeds: memory cannot fail the way a disk does.
func (m *Memory) Probe() error { return nil }

func (m *Memory) Close() error { return nil }
