// The integrity scrubber: a background pass over everything the disk
// store holds at rest — sealed CTGCAMP records, journaled cell results,
// merged result files, and (optionally) a content-addressed result
// cache directory — re-verifying every digest the write path recorded.
//
// Verification on the read path catches corruption when someone asks;
// the scrubber catches it while nobody is asking, which is when media
// rot actually accumulates. Its contract:
//
//   - a corrupt file is never deleted: it is renamed into the store's
//     .quarantine/ directory under its original relative path, so the
//     evidence survives for post-mortem while the live tree stops
//     containing bytes that fail their own digests;
//   - every quarantine is surfaced: a typed ErrScrubQuarantine finding
//     in the report, an EvScrubCorrupt tracepoint, and a scrub_*
//     counter bump;
//   - corruption is healed where recompute can heal it: a campaign
//     whose cell or merged result was quarantined is re-queued, and the
//     scheduler recomputes exactly the missing pieces (surviving cells
//     are reused after passing their digest check), converging on
//     byte-identical results; a quarantined cache entry simply becomes
//     a miss and the next computation overwrites it.
//
// A quarantined *record* cannot be healed — the record was the root of
// trust for its campaign — so it is reported as lost, which is still
// strictly better than trusting it.
package service

import (
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"

	"contiguitas/internal/resultcache"
	"contiguitas/internal/telemetry"
	"contiguitas/internal/vfs"
)

// Scrub kinds, the first argument of EvScrubCorrupt.
const (
	scrubKindRecord = 0
	scrubKindCell   = 1
	scrubKindCache  = 2
	scrubKindResult = 3
)

// ScrubConfig wires one scrub pass.
type ScrubConfig struct {
	// Disk is the store to scrub (required — Memory cannot rot).
	Disk *Disk
	// Cache, when set, is a result-cache directory to scrub alongside
	// the store.
	Cache *resultcache.Dir
	// CacheDir is the directory Cache reads from (the Dir type does not
	// expose it); required when Cache is set.
	CacheDir string
	// Sched, when set, receives heal requeues, counter updates, and
	// tracepoints.
	Sched *Scheduler
}

// Finding is one corrupt artifact the scrubber refused.
type Finding struct {
	// Rel is the path relative to the scrubbed root (store root or
	// cache dir).
	Rel string
	// Err is the typed verification failure, wrapped in
	// ErrScrubQuarantine.
	Err error
}

// ScrubReport tallies one pass.
type ScrubReport struct {
	// Scanned counts artifacts whose digests were re-verified.
	Scanned int
	// Quarantined lists every corrupt artifact moved to quarantine.
	Quarantined []Finding
	// Requeued lists campaign IDs re-queued for recompute heal.
	Requeued []string
	// Lost lists campaign IDs whose sealed record itself was corrupt —
	// quarantined but unhealable.
	Lost []string
}

// String renders the report as the one-line summary contigd logs.
func (r *ScrubReport) String() string {
	return fmt.Sprintf("scrub: scanned=%d quarantined=%d requeued=%d lost=%d",
		r.Scanned, len(r.Quarantined), len(r.Requeued), len(r.Lost))
}

// Scrub runs one full integrity pass and returns its report. The pass
// itself never fails a healthy store: I/O errors reading the tree are
// reported as findings, not returned, so one unreadable file cannot
// hide the rest of the pass.
func Scrub(cfg ScrubConfig) (*ScrubReport, error) {
	if cfg.Disk == nil {
		return nil, errors.New("service: scrub requires a disk store")
	}
	rep := &ScrubReport{}
	s := &scrubber{cfg: cfg, rep: rep}

	ents, err := vfs.Active().ReadDir(filepath.Join(cfg.Disk.root, "campaigns"))
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		if e.IsDir() {
			s.scrubCampaign(e.Name())
		}
	}
	if cfg.Cache != nil {
		s.scrubCache()
	}
	if cfg.Sched != nil {
		cfg.Sched.NoteScrub(rep)
	}
	return rep, nil
}

type scrubber struct {
	cfg ScrubConfig
	rep *ScrubReport
}

// emit forwards a tracepoint to the scheduler's storage ring when one
// is wired.
func (s *scrubber) emit(kind, cell, digest uint64) {
	if s.cfg.Sched != nil {
		s.cfg.Sched.emit(telemetry.EvScrubCorrupt, kind, cell, digest)
	}
}

// quarantine moves rel (relative to the store root) aside and records
// the finding.
func (s *scrubber) quarantine(rel string, kind, cell, digest uint64, cause error) {
	ferr := fmt.Errorf("%w: %s: %v", ErrScrubQuarantine, rel, cause)
	if err := s.cfg.Disk.Quarantine(rel); err != nil {
		ferr = fmt.Errorf("%w (quarantine move failed: %v)", ferr, err)
	}
	s.rep.Quarantined = append(s.rep.Quarantined, Finding{Rel: rel, Err: ferr})
	s.emit(kind, cell, digest)
}

// scrubCampaign verifies one campaign directory: the sealed record,
// then — when the record is trustworthy — every journaled cell against
// its recorded digest and the merged result against ResultDigest.
func (s *scrubber) scrubCampaign(id string) {
	d := s.cfg.Disk
	recRel := filepath.Join("campaigns", id, recordFile)
	s.rep.Scanned++
	c, err := readRecord(filepath.Join(d.root, recRel))
	if errors.Is(err, ErrNotFound) {
		return // unacknowledged submission remnant; not an artifact
	}
	if err != nil {
		// The record is the root of trust; without it the campaign
		// cannot be healed, only preserved and reported.
		s.quarantine(recRel, scrubKindRecord, 0, 0, err)
		s.rep.Lost = append(s.rep.Lost, id)
		return
	}

	heal := false
	for i, dig := range c.CellDigests {
		if dig == "" {
			continue
		}
		data, ok, err := d.GetCell(id, i)
		if err != nil || !ok {
			continue // absent cells are recomputed by the scheduler anyway
		}
		s.rep.Scanned++
		if got := fmt.Sprintf("%016x", fnvSum(data)); got != dig {
			rel := filepath.Join("campaigns", id, fmt.Sprintf("cell-%03d.bin", i))
			s.quarantine(rel, scrubKindCell, uint64(i), fnvSum(data),
				fmt.Errorf("cell digest %s, recorded %s", got, dig))
			heal = true
		}
	}

	if c.State == StateDone && c.ResultDigest != "" {
		data, err := d.GetResult(id)
		if err == nil {
			s.rep.Scanned++
			if got := fmt.Sprintf("%016x", fnvSum(data)); got != c.ResultDigest {
				rel := filepath.Join("campaigns", id, resultFile)
				s.quarantine(rel, scrubKindResult, 0, fnvSum(data),
					fmt.Errorf("result digest %s, recorded %s", got, c.ResultDigest))
				heal = true
			}
		}
	}

	if heal && c.State == StateDone {
		// Recompute heal: put the campaign back in the queue. Surviving
		// cells are reused after passing their digest check; only the
		// quarantined pieces are recomputed, and canonical bytes make
		// the healed result byte-identical to the original.
		c.State = StateQueued
		c.Error = ""
		if err := d.Put(c); err == nil {
			s.rep.Requeued = append(s.rep.Requeued, id)
			if s.cfg.Sched != nil {
				s.cfg.Sched.Requeue(id)
			}
		}
	}
}

// scrubCache verifies every CTGCACH entry in the cache directory; a
// rejected entry is quarantined into the *store's* quarantine tree
// (under cache/) so all evidence lands in one place. The healed state
// is simply a miss: the next computation of that key overwrites it.
func (s *scrubber) scrubCache() {
	ents, err := vfs.Active().ReadDir(s.cfg.CacheDir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, ".ctgcach") {
			continue
		}
		key, err := strconv.ParseUint(strings.TrimSuffix(name, ".ctgcach"), 16, 64)
		if err != nil {
			continue
		}
		s.rep.Scanned++
		if _, err := s.cfg.Cache.Get(key); resultcache.IsReject(err) {
			ferr := fmt.Errorf("%w: %s: %v", ErrScrubQuarantine, name, err)
			qdir := filepath.Join(s.cfg.Disk.root, QuarantineDir, "cache")
			if merr := vfs.Active().MkdirAll(qdir, 0o755); merr == nil {
				if merr := vfs.Active().Rename(filepath.Join(s.cfg.CacheDir, name), filepath.Join(qdir, name)); merr != nil {
					ferr = fmt.Errorf("%w (quarantine move failed: %v)", ferr, merr)
				}
			}
			s.rep.Quarantined = append(s.rep.Quarantined, Finding{Rel: filepath.Join("cache", name), Err: ferr})
			s.emit(scrubKindCache, key, 0)
		}
	}
}
