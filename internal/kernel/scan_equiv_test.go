package kernel

import (
	"reflect"
	"testing"

	"contiguitas/internal/fault"
	"contiguitas/internal/mem"
	"contiguitas/internal/stats"
)

// requireKernelScanEquiv compares the incremental scan against the
// from-scratch reference over every order class the fleet study uses
// plus sub-pageblock orders.
func requireKernelScanEquiv(t *testing.T, k *Kernel, when string) {
	t.Helper()
	orders := []int{0, 4, mem.Order2M, mem.Order4M, mem.Order32M, mem.Order1G}
	inc := k.PM().Scan(orders)
	full := k.PM().ScanFull(orders)
	if !reflect.DeepEqual(inc, full) {
		t.Fatalf("%s: incremental scan diverged from full scan\nincremental: %+v\nfull:        %+v", when, inc, full)
	}
}

// TestKernelScanEquivalenceUnderFaults soaks both kernel modes with a
// randomized workload — allocations across classes, frees, pins,
// mappings with promotion, HugeTLB reservations, ticks that trigger
// reclaim/compaction/resizing — while every fault point misfires, and
// requires the ContigIndex-backed Scan to stay identical to ScanFull at
// every checkpoint. Faulted paths abort mid-evacuation and leave limbo
// frames around, which is exactly the state the incremental accounting
// must not misclassify.
func TestKernelScanEquivalenceUnderFaults(t *testing.T) {
	for _, mode := range []Mode{ModeLinux, ModeContiguitas} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg, inj := faultyConfig(mode, 128*mb, 99)
			cfg.HWMover = NewAnalyticMover()
			inj.Arm(fault.PointHWMover, fault.Trigger{Prob: 0.3})
			inj.Arm(fault.PointSWMigrate, fault.Trigger{Prob: 0.2})
			inj.Arm(fault.PointCompactCarve, fault.Trigger{Prob: 0.2})
			inj.Arm(fault.PointRegionResize, fault.Trigger{Prob: 0.3})
			k := New(cfg)
			rng := stats.NewRNG(1234)

			var live []*Page
			var mappings []*Mapping
			for step := 0; step < 4000; step++ {
				switch r := rng.Float64(); {
				case r < 0.35:
					order := rng.Intn(10)
					mt := mem.MigrateMovable
					src := mem.SrcUser
					switch rng.Intn(4) {
					case 1:
						mt, src = mem.MigrateUnmovable, mem.SrcSlab
					case 2:
						mt, src = mem.MigrateReclaimable, mem.SrcFilesystem
					}
					if p, err := k.Alloc(order, mt, src); err == nil {
						live = append(live, p)
					}
				case r < 0.55 && len(live) > 0:
					i := rng.Intn(len(live))
					p := live[i]
					if p.Pinned {
						k.Unpin(p)
					}
					if k.Live(p) {
						if err := k.Free(p); err != nil {
							t.Fatalf("step %d: %v", step, err)
						}
					}
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				case r < 0.62 && len(live) > 0:
					p := live[rng.Intn(len(live))]
					if k.Live(p) && !p.Pinned {
						k.Pin(p)
					}
				case r < 0.70:
					if m, err := k.AllocUser(uint64(1+rng.Intn(8))*mb, true); err == nil {
						mappings = append(mappings, m)
					}
				case r < 0.76 && len(mappings) > 0:
					i := rng.Intn(len(mappings))
					k.FreeMapping(mappings[i])
					mappings[i] = mappings[len(mappings)-1]
					mappings = mappings[:len(mappings)-1]
				case r < 0.82 && len(mappings) > 0:
					k.Promote(mappings[rng.Intn(len(mappings))], 2)
				case r < 0.86:
					res := k.AllocHugeTLB(mem.Order2M, 1)
					k.FreeHugeTLB(&res)
				default:
					k.EndTick()
				}
				if step%400 == 399 {
					requireKernelScanEquiv(t, k, mode.String())
					if err := k.CheckInvariants(); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
				}
			}
			requireKernelScanEquiv(t, k, mode.String()+" final")
		})
	}
}
