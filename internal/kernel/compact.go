package kernel

import (
	"errors"
	"fmt"

	"contiguitas/internal/fault"
	"contiguitas/internal/mem"
	"contiguitas/internal/telemetry"
)

// compactTarget is one queued candidate block awaiting a retry after a
// skippable evacuation failure.
type compactTarget struct {
	pfn   uint64
	order int
}

// compactDeferState is per-region deferred-compaction backoff: after a
// failed compaction the region is skipped for 2^shift ticks, doubling
// per consecutive failure up to 64 ticks (Linux's COMPACT_MAX_DEFER).
type compactDeferState struct {
	shift uint
	until uint64
}

// Compact tries to manufacture one free block of the given order inside
// buddy b by evacuating a candidate aligned block: movable pages are
// software-migrated elsewhere in the region, reclaimable pages are
// dropped. A candidate containing any unmovable or pinned frame is
// skipped — the fundamental limitation the paper attacks: a single
// scattered unmovable 4 KB page renders the whole block uncompactable
// (§1, §2.5). On success the evacuated block is claimed as an allocation
// of (mt, src) and its head PFN returned.
func (k *Kernel) Compact(b *mem.Buddy, order int, mt mem.MigrateType, src mem.Source) (uint64, bool) {
	k.CompactRuns++
	// Deferred compaction (Linux's defer_compaction): after repeated
	// failures the zone is skipped for exponentially growing spans, so
	// hopeless fragmentation does not burn cycles rescanning.
	if k.compactDefer == nil {
		k.compactDefer = make(map[*mem.Buddy]*compactDeferState)
	}
	ds := k.compactDefer[b]
	if ds == nil {
		ds = &compactDeferState{}
		k.compactDefer[b] = ds
	}
	if !k.directCompact && k.tick < ds.until {
		k.CompactDeferred++
		if k.tp.Enabled() {
			k.tp.Emit(k.tick, telemetry.EvCompactDefer, uint64(order), ds.until, k.compactUsed)
		}
		return 0, false
	}
	// kcompactd-style rate limiting: the THP/background path may only
	// migrate so many pages per tick; explicit HugeTLB reservations
	// compact directly without a budget.
	limit := ^uint64(0)
	if !k.directCompact && k.cfg.CompactBudgetPerTick > 0 {
		if k.compactUsed >= k.cfg.CompactBudgetPerTick {
			k.CompactDeferred++
			if k.tp.Enabled() {
				k.tp.Emit(k.tick, telemetry.EvCompactDefer, uint64(order), k.tick, k.compactUsed)
			}
			return 0, false
		}
		limit = k.cfg.CompactBudgetPerTick - k.compactUsed
	}
	cand, cost, ok := k.retryTarget(b, order, limit)
	if !ok {
		cand, cost, ok = k.findCompactionCandidate(b, order, limit)
	}
	if !ok {
		if !k.directCompact {
			if ds.shift < 6 {
				ds.shift++
			}
			ds.until = k.tick + (1 << ds.shift)
			k.CompactDeferred++
			if k.tp.Enabled() {
				k.tp.Emit(k.tick, telemetry.EvCompactDefer, uint64(order), ds.until, k.compactUsed)
			}
		}
		return 0, false
	}
	ds.shift = 0
	if limit != ^uint64(0) {
		k.compactUsed += cost
	}
	if err := k.evacuate(b, cand, cand+mem.OrderPages(order), false); err != nil {
		// Partial evacuation leaves some frames in limbo; donate them
		// back so no memory is lost. A skippable failure (carve race)
		// re-enqueues the target for a later retry.
		k.donateLimbo(b, cand, cand+mem.OrderPages(order))
		if errors.Is(err, ErrCarveFailed) {
			k.requeueTarget(b, cand, order)
		}
		return 0, false
	}
	if err := b.ClaimCarved(cand, order, mt, src); err != nil {
		// The evacuated range was disturbed before the claim; return the
		// limbo frames and retry the target later.
		k.donateLimbo(b, cand, cand+mem.OrderPages(order))
		k.requeueTarget(b, cand, order)
		return 0, false
	}
	k.CompactSuccess++
	k.noteCompactProgress(b)
	if k.tp.Enabled() {
		k.tp.Emit(k.tick, telemetry.EvCompactSuccess, cand, uint64(order), cost)
	}
	return cand, true
}

// requeueTarget pushes a failed compaction candidate onto the region's
// retry queue (bounded so repeated faults cannot grow it without limit).
func (k *Kernel) requeueTarget(b *mem.Buddy, pfn uint64, order int) {
	if k.compactRetry == nil {
		k.compactRetry = make(map[*mem.Buddy][]compactTarget)
	}
	q := k.compactRetry[b]
	for _, t := range q {
		if t.pfn == pfn && t.order == order {
			return
		}
	}
	if len(q) >= 64 {
		q = q[1:]
	}
	k.compactRetry[b] = append(q, compactTarget{pfn: pfn, order: order})
	k.CompactRequeues++
	if k.tp.Enabled() {
		k.tp.Emit(k.tick, telemetry.EvCompactRequeue, pfn, uint64(order), uint64(len(k.compactRetry[b])))
	}
	// Each requeue re-priced roughly one evacuation's worth of copy
	// work; charge it to the watchdog so a requeue→fail cycle trips.
	k.noteCompactStall(b, pfn, mem.OrderPages(order)*k.migCost.CopyCyclesPerPage)
}

// retryTarget pops the first still-eligible queued target of the given
// order, returning its evacuation cost the same way the scanner does.
// Targets that are no longer inside the region, no longer eligible, or
// of the wrong order are dropped.
func (k *Kernel) retryTarget(b *mem.Buddy, order int, limit uint64) (pfn, cost uint64, ok bool) {
	q := k.compactRetry[b]
	for len(q) > 0 {
		t := q[0]
		q = q[1:]
		k.compactRetry[b] = q
		if t.order != order {
			continue
		}
		c, eligible := k.evacCost(b, t.pfn, order, limit)
		if !eligible {
			continue
		}
		if b.FreePages() < mem.OrderPages(order)+mem.OrderPages(order)/16 {
			continue
		}
		return t.pfn, c, true
	}
	return 0, 0, false
}

// evacCost prices evacuating the aligned block at base: the number of
// occupied frames, or eligible=false when the block holds unmovable or
// pinned frames, exceeds limit, or lies outside the region.
//
// Pageblock-sized and larger candidates are priced from the cached
// pageblock summaries (O(pageblocks) instead of O(frames)); a pageblock
// holding limbo frames falls back to the frame walk, because limbo
// frames carry stale migratetype stamps and the reference walk judges
// them by those stamps.
func (k *Kernel) evacCost(b *mem.Buddy, base uint64, order int, limit uint64) (cost uint64, eligible bool) {
	bp := mem.OrderPages(order)
	if base < b.Start() || base+bp > b.End() || base&(bp-1) != 0 {
		return 0, false
	}
	pm := k.pm
	if order < mem.PageblockOrder {
		return k.evacCostFrames(base, base+bp, limit)
	}
	var c uint64
	for pb := base; pb < base+bp; pb += mem.PageblockPages {
		info := pm.PageblockInfoAt(pb)
		if info.LimboFrames != 0 {
			fc, ok := k.evacCostFrames(pb, pb+mem.PageblockPages, ^uint64(0))
			if !ok {
				return 0, false
			}
			c += fc
		} else {
			if info.UnmovFrames != 0 {
				return 0, false
			}
			c += mem.PageblockPages - info.FreePages
		}
		if c > limit {
			return 0, false
		}
	}
	return c, true
}

// evacCostFrames is the frame-granular reference pricing over [start, end).
func (k *Kernel) evacCostFrames(start, end, limit uint64) (cost uint64, eligible bool) {
	pm := k.pm
	var c uint64
	for p := start; p < end; p++ {
		if pm.IsFree(p) {
			continue
		}
		if pm.IsPinned(p) || pm.PageMT(p) == mem.MigrateUnmovable {
			return 0, false
		}
		c++
		if c > limit {
			return 0, false
		}
	}
	return c, true
}

// findCompactionCandidate scans aligned blocks of the order inside b's
// range, starting from a rotating cursor (like Linux's compaction
// scanner position), and returns the first block whose evacuation cost
// fits within limit. Blocks holding unmovable or pinned frames are
// ineligible — the scatter effect that defeats compaction.
func (k *Kernel) findCompactionCandidate(b *mem.Buddy, order int, limit uint64) (pfn, cost uint64, ok bool) {
	bp := mem.OrderPages(order)

	start := (b.Start() + bp - 1) &^ (bp - 1)
	if start+bp > b.End() {
		return 0, 0, false
	}
	nblocks := (b.End() - start) / bp
	if nblocks == 0 {
		return 0, 0, false
	}
	if k.compactCursor == nil {
		k.compactCursor = make(map[*mem.Buddy]*[mem.MaxOrder + 1]uint64)
	}
	cursors := k.compactCursor[b]
	if cursors == nil {
		cursors = &[mem.MaxOrder + 1]uint64{}
		k.compactCursor[b] = cursors
	}
	cursor := cursors[order] % nblocks

	// Bound the scan per call (the scanner position persists across
	// calls, so coverage amortises); direct compaction scans fully.
	maxScan := nblocks
	if !k.directCompact {
		if cap := nblocks / 8; cap >= 64 && maxScan > cap {
			maxScan = cap
		}
	}

	for scanned := uint64(0); scanned < maxScan; scanned++ {
		blk := (cursor + scanned) % nblocks
		base := start + blk*bp
		c, eligible := k.evacCost(b, base, order, limit)
		if !eligible {
			continue
		}
		// Feasibility: the evacuated pages need replacement frames
		// outside the block. The block's own free frames do not count
		// (they become the allocation), so with freeInside = bp - c the
		// requirement free - (bp - c) >= c reduces to free >= bp, plus
		// a small slack for allocator fragmentation.
		if b.FreePages() < bp+bp/16 {
			continue
		}
		cursors[order] = (blk + 1) % nblocks
		if k.tp.Enabled() {
			k.tp.Emit(k.tick, telemetry.EvCompactScan, uint64(order), scanned+1, base)
		}
		return base, c, true
	}
	cursors[order] = (cursor + maxScan) % nblocks
	if k.tp.Enabled() {
		k.tp.Emit(k.tick, telemetry.EvCompactScan, uint64(order), maxScan, ^uint64(0))
	}
	return 0, 0, false
}

// evacuate empties [start, end) of buddy b: free frames are carved into
// limbo, movable allocations are migrated out of the range, reclaimable
// allocations are dropped (and their frames carved), and unmovable or
// pinned allocations are relocated with Contiguitas-HW when allowHW and a
// Mover is attached. It returns ErrCarveFailed (skippable: retry the
// target later) when a carve could not remove frames from the free
// lists, and ErrEvacIncomplete when an allocation could not be cleared;
// cleared frames stay in limbo either way and the caller decides whether
// to claim or donate them back.
func (k *Kernel) evacuate(b *mem.Buddy, start, end uint64, allowHW bool) error {
	pm := k.pm

	// Pass 1: carve every free frame in the range into limbo so the
	// allocator can no longer hand out in-range frames as replacement
	// blocks during pass 2.
	for p := start; p < end; {
		if !pm.IsFree(p) {
			p++
			continue
		}
		runEnd := p
		for runEnd < end && pm.IsFree(runEnd) {
			runEnd++
		}
		if err := k.carve(b, p, runEnd-p); err != nil {
			return err
		}
		p = runEnd
	}

	// Pass 2: clear the allocations. Begin at the allocated block
	// covering start, if its head lies before the range.
	p := start
	if !pm.IsFree(p) && !pm.IsHead(p) {
		if h := k.coveringHead(p); h != noHead {
			p = h
		}
	}
	for p < end {
		if !pm.IsHead(p) || pm.IsFree(p) {
			// Limbo (carved) frame, or a freed-and-recarved frame.
			p++
			continue
		}
		handle := k.live.get(p)
		if handle == nil {
			return fmt.Errorf("%w: allocated block at %d without a live handle", ErrEvacIncomplete, p)
		}
		next := p + handle.Pages()
		if err := k.clearAllocation(b, handle, start, end, allowHW); err != nil {
			return err
		}
		p = next
	}
	return nil
}

// carve removes the free range [start, start+n) from b's lists, treating
// failure — real or injected at fault.PointCompactCarve — as a skippable
// event reported via ErrCarveFailed.
func (k *Kernel) carve(b *mem.Buddy, start, n uint64) error {
	if k.faults().Should(fault.PointCompactCarve) {
		k.CarveFails++
		return fmt.Errorf("%w: injected at [%d, %d)", ErrCarveFailed, start, start+n)
	}
	if err := b.Carve(start, n); err != nil {
		k.CarveFails++
		return fmt.Errorf("%w: %v", ErrCarveFailed, err)
	}
	return nil
}

const noHead = ^uint64(0)

// coveringHead finds the allocated head covering frame p, if any. The
// frame table stamps the covering order on every frame, so this is O(1).
func (k *Kernel) coveringHead(p uint64) uint64 {
	if h, ok := k.pm.AllocHead(p); ok {
		return h
	}
	return noHead
}

// clearAllocation removes one allocation from the evacuation range
// [start, end): dropping it if reclaimable, migrating it otherwise. The
// freed frames are immediately re-carved into limbo so replacement
// allocations cannot land back inside the range. Migration failures and
// carve failures surface as errors; the allocation either moved intact
// or stayed where it was, so the kernel remains consistent either way.
func (k *Kernel) clearAllocation(b *mem.Buddy, handle *Page, start, end uint64, allowHW bool) error {
	src := handle.PFN
	size := handle.Pages()

	switch {
	case handle.MT == mem.MigrateReclaimable && !handle.Pinned:
		if handle.cacheIdx >= 0 {
			k.reclaimable[handle.cacheIdx] = noCacheEntry
			k.reclaimablePages -= size
			handle.cacheIdx = -1
		}
		k.live.del(src)
		mustFree(b, src)
		k.ReclaimedPages += size

	case handle.MT == mem.MigrateMovable && !handle.Pinned:
		dst, ok := k.allocOutside(b, handle, start, end)
		if !ok {
			return fmt.Errorf("%w: no replacement block for movable pfn %d", ErrEvacIncomplete, src)
		}
		// The hardware path is preferred whenever a mover is attached —
		// the page stays accessible and there is no shootdown — with
		// software migration as the graceful fallback.
		if err := k.migrateTo(handle, dst, k.cfg.HWMover != nil); err != nil {
			mustFree(b, dst)
			return fmt.Errorf("%w: %v", ErrEvacIncomplete, err)
		}

	default: // unmovable or pinned
		if !allowHW || k.cfg.HWMover == nil {
			return fmt.Errorf("%w: unmovable pfn %d without hardware assist", ErrEvacIncomplete, src)
		}
		dst, ok := k.allocOutside(b, handle, start, end)
		if !ok {
			return fmt.Errorf("%w: no replacement block for unmovable pfn %d", ErrEvacIncomplete, src)
		}
		if err := k.migrateTo(handle, dst, true); err != nil {
			mustFree(b, dst)
			return fmt.Errorf("%w: %v", ErrEvacIncomplete, err)
		}
	}

	// Re-carve the just-freed frames (they may have coalesced with free
	// neighbours outside the range; Carve splits those back out).
	carveStart, carveEnd := src, src+size
	if carveStart < start {
		carveStart = start
	}
	if carveEnd > end {
		carveEnd = end
	}
	return k.carve(b, carveStart, carveEnd-carveStart)
}

// allocOutside allocates a replacement block for handle from b that does
// not overlap [start, end). Rejected in-range blocks are parked and freed
// afterwards.
func (k *Kernel) allocOutside(b *mem.Buddy, handle *Page, start, end uint64) (uint64, bool) {
	var parked []uint64
	defer func() {
		for _, pfn := range parked {
			mustFree(b, pfn)
		}
	}()
	for attempt := 0; attempt < 64; attempt++ {
		pfn, ok := b.Alloc(int(handle.Order), handle.MT, handle.Src)
		if !ok {
			return 0, false
		}
		if pfn+handle.Pages() <= start || pfn >= end {
			return pfn, true
		}
		parked = append(parked, pfn)
	}
	return 0, false
}

// donateLimbo returns any limbo frames in [start, end) to buddy b.
func (k *Kernel) donateLimbo(b *mem.Buddy, start, end uint64) {
	pm := k.pm
	p := start
	for p < end {
		if pm.IsFree(p) || pm.IsHead(p) || pm.BlockOrder(p) >= 0 {
			p++
			continue
		}
		// Frame in limbo: find the extent of the limbo run. A limbo
		// frame is not free, not a head, and not covered by any
		// allocated block.
		if k.coveringHead(p) != noHead {
			p++
			continue
		}
		runEnd := p + 1
		for runEnd < end && !pm.IsFree(runEnd) && !pm.IsHead(runEnd) && k.coveringHead(runEnd) == noHead {
			runEnd++
		}
		mustDonate(b, p, runEnd-p)
		p = runEnd
	}
}
