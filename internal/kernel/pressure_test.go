package kernel

import (
	"errors"
	"strings"
	"testing"

	"contiguitas/internal/mem"
	"contiguitas/internal/pressure"
	"contiguitas/internal/psi"
)

// pressuredConfig is a small Contiguitas machine with the full ladder
// enabled and the hardware mover attached.
func pressuredConfig(memBytes uint64) Config {
	cfg := testConfig(ModeContiguitas, memBytes)
	cfg.HWMover = NewAnalyticMover()
	cfg.Pressure = pressure.DefaultConfig()
	return cfg
}

// TestEmergencyShrinkBelowFloorRejected: a boundary already at the
// resizer floor must not move, however desperate the request.
func TestEmergencyShrinkBelowFloorRejected(t *testing.T) {
	cfg := pressuredConfig(256 * mb)
	cfg.MinUnmovableBytes = cfg.InitialUnmovableBytes // boot at the floor
	k := New(cfg)
	if moved := k.EmergencyShrink(mem.PageblockPages); moved != 0 {
		t.Fatalf("shrink below floor moved %d pages", moved)
	}
	if k.EmergencyShrinks != 0 || k.EmergencyShrinkPages != 0 {
		t.Fatalf("below-floor shrink bumped counters: %d shrinks, %d pages",
			k.EmergencyShrinks, k.EmergencyShrinkPages)
	}
}

// TestEmergencyShrinkDefersDuringMigration: a shrink requested while a
// migration copy is in flight must defer — the boundary cannot move
// under an active copy — and succeed once the copy drains.
func TestEmergencyShrinkDefersDuringMigration(t *testing.T) {
	k := New(pressuredConfig(256 * mb))
	k.migInFlight = 1
	if moved := k.EmergencyShrink(mem.PageblockPages); moved != 0 {
		t.Fatalf("shrink during migration moved %d pages", moved)
	}
	if k.EmergencyShrinkDeferred != 1 {
		t.Fatalf("EmergencyShrinkDeferred = %d, want 1", k.EmergencyShrinkDeferred)
	}
	k.migInFlight = 0
	if moved := k.EmergencyShrink(mem.PageblockPages); moved == 0 {
		t.Fatal("shrink after migration drained moved nothing")
	}
	if k.EmergencyShrinks != 1 {
		t.Fatalf("EmergencyShrinks = %d, want 1", k.EmergencyShrinks)
	}
}

// TestEmergencyShrinkDrainsPinnedPageblock: a pinned allocation at the
// top of the unmovable region blocks a software-only shrink at its
// pageblock, but the hardware mover relocates it and drains the region
// to the floor — with the pinned handle still live and pinned after.
func TestEmergencyShrinkDrainsPinnedPageblock(t *testing.T) {
	build := func(withMover bool) (*Kernel, *Page) {
		cfg := testConfig(ModeContiguitas, 128*mb)
		cfg.MaxUnmovableBytes = cfg.InitialUnmovableBytes // no expansion escape
		if withMover {
			cfg.HWMover = NewAnalyticMover()
		}
		k := New(cfg)
		var pages []*Page
		for {
			p, err := k.Alloc(mem.Order4K, mem.MigrateUnmovable, mem.SrcSlab)
			if err != nil {
				break
			}
			pages = append(pages, p)
		}
		// Pin the topmost frame, free everything else: one pinned page
		// stands between the shrink and an empty region.
		top := pages[0]
		for _, p := range pages[1:] {
			if p.PFN > top.PFN {
				top = p
			}
		}
		if err := k.Pin(top); err != nil {
			t.Fatalf("pin: %v", err)
		}
		for _, p := range pages {
			if p != top {
				if err := k.Free(p); err != nil {
					t.Fatalf("free: %v", err)
				}
			}
		}
		if top.PFN < k.Boundary()-mem.PageblockPages {
			t.Fatalf("pinned page %d not in the top pageblock (boundary %d)", top.PFN, k.Boundary())
		}
		return k, top
	}

	k, top := build(false)
	floor := k.Boundary() // region is full height before the shrink
	if moved := k.EmergencyShrink(floor); moved != 0 {
		t.Fatalf("software-only shrink moved %d pages past a pinned block", moved)
	}
	if k.ShrinkFails == 0 {
		t.Fatal("software-only shrink did not record the failure")
	}

	k, top = build(true)
	before := k.Boundary()
	if moved := k.EmergencyShrink(before); moved == 0 {
		t.Fatal("hardware-assisted shrink drained nothing")
	}
	if k.Boundary() >= before {
		t.Fatalf("boundary did not move: %d", k.Boundary())
	}
	if !k.Live(top) || !top.Pinned {
		t.Fatal("pinned allocation lost across the drain")
	}
	if top.PFN >= k.Boundary() {
		t.Fatalf("pinned page %d left outside the shrunk region (boundary %d)", top.PFN, k.Boundary())
	}
	if k.EmergencyShrinks == 0 || k.EmergencyShrinkPages == 0 {
		t.Fatal("drain did not record emergency-shrink counters")
	}
}

// TestPressureErrFormat pins the enriched failure error: it must wrap
// ErrNoMemory always, ErrOOMKill exactly when a kill fired, and carry
// the ladder diagnostics in the string.
func TestPressureErrFormat(t *testing.T) {
	k := New(pressuredConfig(128 * mb))

	lt := ladderTrace{rung: pressure.RungOOM, reclaimed: 12, compacted: 3,
		shrunk: 512, kills: 1, stallCycles: 99}
	err := k.pressureErr(mem.Order2M, mem.MigrateMovable, &lt)
	if !errors.Is(err, ErrNoMemory) || !errors.Is(err, ErrOOMKill) {
		t.Fatalf("kill error sentinels wrong: %v", err)
	}
	for _, want := range []string{"rung=oom", "reclaimed=12", "compacted=3", "shrunk=512", "kills=1", "stall_cycles=99"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}

	lt = ladderTrace{rung: pressure.RungThrottle, reclaimed: 7, stallCycles: 42}
	err = k.pressureErr(mem.Order4K, mem.MigrateMovable, &lt)
	if !errors.Is(err, ErrNoMemory) || errors.Is(err, ErrOOMKill) {
		t.Fatalf("no-kill error sentinels wrong: %v", err)
	}
	if !strings.Contains(err.Error(), "rung=throttle") || strings.Contains(err.Error(), "kills=") {
		t.Errorf("no-kill error %q has the wrong fields", err)
	}
}

// TestPressureLadderErrEndToEnd exhausts a pressured machine with no
// registered victims and checks the real failure carries the ladder
// diagnostics.
func TestPressureLadderErrEndToEnd(t *testing.T) {
	k := New(pressuredConfig(64 * mb))
	for {
		_, err := k.Alloc(mem.Order2M, mem.MigrateMovable, mem.SrcUser)
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrNoMemory) {
			t.Fatalf("exhaustion error is not ErrNoMemory: %v", err)
		}
		if !strings.Contains(err.Error(), "rung=") {
			t.Fatalf("exhaustion error lacks ladder diagnostics: %v", err)
		}
		break
	}
	if k.AllocThrottled == 0 || k.ThrottleStallCycles == 0 {
		t.Fatalf("exhaustion never throttled: %d allocs, %d cycles",
			k.AllocThrottled, k.ThrottleStallCycles)
	}
}

// fakeVictim is a minimal killable pool for kill-log tests.
type fakeVictim struct {
	name  string
	pages uint64
	adj   int64
}

func (v *fakeVictim) OOMName() string    { return v.name }
func (v *fakeVictim) OOMPages() uint64   { return v.pages }
func (v *fakeVictim) OOMScoreAdj() int64 { return v.adj }
func (v *fakeVictim) OOMKill(uint64) uint64 {
	f := v.pages
	v.pages = 0
	return f
}

// TestPressureSnapshotRoundTrip: gate state, the short-half-life gate
// tracker, the escalation profile, and the OOM-kill log must all
// survive export/restore bit-exactly (witnessed by the state hash), and
// a pressure-enabled snapshot must refuse a pressure-less config (and
// vice versa).
func TestPressureSnapshotRoundTrip(t *testing.T) {
	cfg := pressuredConfig(64 * mb)
	k := New(cfg)
	k.RegisterOOMVictim(&fakeVictim{name: "fake", pages: 1 << 10})

	// Exhaust to light up every rung and log a kill, then hammer the
	// movable PSI until the admission gate trips.
	for {
		if _, err := k.Alloc(mem.Order2M, mem.MigrateMovable, mem.SrcUser); err != nil {
			break
		}
	}
	for i := 0; i < 200 && !k.Shedding(); i++ {
		k.psi.AddStall(psi.RegionMovable, 1.0)
		k.EndTick()
	}
	if !k.Shedding() {
		t.Fatal("gate never tripped under saturated stall")
	}
	if len(k.OOMHistory()) == 0 {
		t.Fatal("no kill logged before the round trip")
	}

	st := k.ExportState()
	h := st.Hash()
	k2, err := Restore(cfg, st)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := k2.StateHash(); got != h {
		t.Fatalf("state hash diverged across restore: %016x vs %016x", got, h)
	}
	if k2.Shedding() != k.Shedding() {
		t.Fatal("gate state lost across restore")
	}
	if k2.Escalation() != k.Escalation() {
		t.Fatalf("escalation profile diverged: %+v vs %+v", k2.Escalation(), k.Escalation())
	}
	ha, hb := k.OOMHistory(), k2.OOMHistory()
	if len(ha) != len(hb) {
		t.Fatalf("kill log length diverged: %d vs %d", len(ha), len(hb))
	}
	for i := range ha {
		if ha[i] != hb[i] {
			t.Fatalf("kill %d diverged: %+v vs %+v", i, ha[i], hb[i])
		}
	}

	// Fingerprint mismatches both ways.
	noP := cfg
	noP.Pressure = nil
	if _, err := Restore(noP, st); err == nil {
		t.Fatal("pressure-enabled snapshot restored into a pressure-less config")
	}
	plain := New(noP)
	if _, err := Restore(cfg, plain.ExportState()); err == nil {
		t.Fatal("pressure-less snapshot restored into a pressure-enabled config")
	}
}

// TestAdmissionGateSheds: while the gate is shedding, movable
// allocations fail fast with ErrAllocShed; unmovable allocations and
// explicit HugeTLB reservations bypass the gate.
func TestAdmissionGateSheds(t *testing.T) {
	k := New(pressuredConfig(256 * mb))
	for i := 0; i < 200 && !k.Shedding(); i++ {
		k.psi.AddStall(psi.RegionMovable, 1.0)
		k.EndTick()
	}
	if !k.Shedding() {
		t.Fatal("gate never tripped")
	}
	if _, err := k.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcUser); !errors.Is(err, ErrAllocShed) {
		t.Fatalf("movable alloc under shedding: %v", err)
	}
	if k.AllocShed == 0 {
		t.Fatal("shed not counted")
	}
	if _, err := k.Alloc(mem.Order4K, mem.MigrateUnmovable, mem.SrcSlab); err != nil {
		t.Fatalf("unmovable alloc should bypass the gate: %v", err)
	}
	huge := k.AllocHugeTLB(mem.Order2M, 1)
	if huge.Allocated != 1 {
		t.Fatal("HugeTLB reservation should bypass the gate")
	}
	k.FreeHugeTLB(&huge)

	// Starve the tracker back below the exit threshold: the gate must
	// reopen (hysteresis heals).
	for i := 0; i < 500 && k.Shedding(); i++ {
		k.EndTick()
	}
	if k.Shedding() {
		t.Fatal("gate never reopened after pressure subsided")
	}
	if _, err := k.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcUser); err != nil {
		t.Fatalf("movable alloc after reopen: %v", err)
	}
}
