package kernel

import (
	"errors"
	"testing"

	"contiguitas/internal/fault"
	"contiguitas/internal/mem"
	"contiguitas/internal/stats"
)

// faultyConfig is testConfig plus an injector whose points are armed by
// the caller.
func faultyConfig(mode Mode, memBytes uint64, seed uint64) (Config, *fault.Injector) {
	cfg := testConfig(mode, memBytes)
	inj := fault.New(seed)
	cfg.Faults = inj
	return cfg, inj
}

// TestHWFaultFallsBackToSoftware drives a region expansion whose movable
// evacuees would normally ride the hardware mover; with the mover failing
// deterministically, every migration must degrade to the software path
// and the expansion must still succeed.
func TestHWFaultFallsBackToSoftware(t *testing.T) {
	cfg, inj := faultyConfig(ModeContiguitas, 256*mb, 42)
	cfg.HWMover = NewAnalyticMover()
	inj.Arm(fault.PointHWMover, fault.Trigger{Prob: 1})
	k := New(cfg)

	// Movable allocations are highest-first: grab everything, then free
	// 75% so live pages remain just above the boundary.
	var pages []*Page
	for {
		p, err := k.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcUser)
		if err != nil {
			break
		}
		pages = append(pages, p)
	}
	for i, p := range pages {
		if i%4 != 3 {
			k.Free(p)
			pages[i] = nil
		}
	}
	moved := k.ExpandUnmovable(16 * mb / mem.PageSize)
	if moved == 0 {
		t.Fatal("expansion failed despite the software fallback")
	}
	if k.SWFallbacks == 0 {
		t.Fatal("hardware faults must degrade to software migration")
	}
	if k.HWMigrations != 0 {
		t.Fatalf("no hardware migration can succeed under Prob=1 faults, got %d", k.HWMigrations)
	}
	if k.SWMigrations == 0 {
		t.Fatal("fallback migrations must be accounted as software")
	}
	if k.MigrationRetries == 0 || k.MigrationFailures == 0 {
		t.Fatalf("retry accounting missing: retries=%d failures=%d",
			k.MigrationRetries, k.MigrationFailures)
	}
	for _, p := range pages {
		if p == nil {
			continue
		}
		if p.PFN < k.Boundary() || !k.Live(p) {
			t.Fatalf("handle at %d lost or below boundary %d", p.PFN, k.Boundary())
		}
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestHWFaultDefersPinnedShrink pins a page near the top of the unmovable
// region and shrinks past it: pinned pages have no software fallback, so
// a failing mover must defer the migration and fail the shrink without
// corrupting anything — and the same shrink must succeed once the fault
// is lifted.
func TestHWFaultDefersPinnedShrink(t *testing.T) {
	cfg, inj := faultyConfig(ModeContiguitas, 128*mb, 7)
	cfg.HWMover = NewAnalyticMover()
	inj.Arm(fault.PointHWMover, fault.Trigger{Prob: 1})
	k := New(cfg)

	var pages []*Page
	for i := 0; i < 2000; i++ {
		p, err := k.Alloc(mem.Order4K, mem.MigrateUnmovable, mem.SrcNetworking)
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, p)
	}
	var top *Page
	for _, p := range pages {
		if top == nil || p.PFN > top.PFN {
			top = p
		}
	}
	for _, p := range pages {
		if p != top {
			k.Free(p)
		}
	}
	if err := k.Pin(top); err != nil {
		t.Fatal(err)
	}

	before := k.Boundary()
	pfnBefore := top.PFN
	if moved := k.ShrinkUnmovable(before); moved != 0 {
		t.Fatalf("shrink must fail while the mover is down, moved %d", moved)
	}
	if k.Boundary() != before {
		t.Fatal("failed shrink moved the boundary")
	}
	if k.MigrationDeferred == 0 || k.ShrinkFails == 0 {
		t.Fatalf("deferral accounting missing: deferred=%d shrinkfails=%d",
			k.MigrationDeferred, k.ShrinkFails)
	}
	if top.PFN != pfnBefore || !top.Pinned || !k.Live(top) {
		t.Fatal("pinned page disturbed by a failed shrink")
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatalf("after failed shrink: %v", err)
	}

	// Fault lifted: the deferred work completes on retry.
	inj.DisarmAll()
	if moved := k.ShrinkUnmovable(before); moved == 0 {
		t.Fatal("shrink must succeed once the mover recovers")
	}
	if top.PFN >= k.Boundary() || !top.Pinned {
		t.Fatal("pinned page not relocated below the new boundary")
	}
	if k.HWMigrations == 0 {
		t.Fatal("recovery shrink must use the hardware mover")
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatalf("after recovery shrink: %v", err)
	}
}

// TestSWMigrateRetriesThenSucceeds aborts exactly the first software
// migration attempt (a racing re-fault); the retry must complete the pin
// migration with one retry accounted and no failure.
func TestSWMigrateRetriesThenSucceeds(t *testing.T) {
	cfg, inj := faultyConfig(ModeContiguitas, 128*mb, 3)
	inj.Arm(fault.PointSWMigrate, fault.Trigger{OnHits: []uint64{1}})
	k := New(cfg)

	p, err := k.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcUser)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Pin(p); err != nil {
		t.Fatalf("pin must survive one aborted migration attempt: %v", err)
	}
	if p.PFN >= k.Boundary() {
		t.Fatal("pinned page not migrated into the unmovable region")
	}
	if k.MigrationRetries != 1 {
		t.Fatalf("retries = %d, want 1", k.MigrationRetries)
	}
	if k.MigrationFailures != 0 {
		t.Fatalf("failures = %d, want 0", k.MigrationFailures)
	}
	if k.BackoffCycles == 0 {
		t.Fatal("retry must charge backoff cycles")
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSWMigrateExhaustsRetryBudget makes every software migration attempt
// abort: the pin must fail with ErrMigrationFailed and leave the page
// exactly where it was, unpinned and live.
func TestSWMigrateExhaustsRetryBudget(t *testing.T) {
	cfg, inj := faultyConfig(ModeContiguitas, 128*mb, 3)
	inj.Arm(fault.PointSWMigrate, fault.Trigger{Prob: 1})
	k := New(cfg)

	p, err := k.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcUser)
	if err != nil {
		t.Fatal(err)
	}
	pfn := p.PFN
	err = k.Pin(p)
	if !errors.Is(err, ErrMigrationFailed) {
		t.Fatalf("pin error = %v, want ErrMigrationFailed", err)
	}
	if p.PFN != pfn || p.Pinned || !k.Live(p) {
		t.Fatal("failed pin migration must leave the page untouched")
	}
	if p.MT != mem.MigrateMovable {
		t.Fatal("failed pin migration must not restamp the migratetype")
	}
	if k.MigrationFailures == 0 {
		t.Fatal("exhausted retry budget must be accounted as a failure")
	}
	if err := k.Free(p); err != nil {
		t.Fatalf("page must still be freeable: %v", err)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCarveFaultRequeuesCompactionTarget fragments a Linux zone, fails
// compaction with an injected carve fault, and verifies the candidate is
// requeued and claimed successfully once the fault clears.
func TestCarveFaultRequeuesCompactionTarget(t *testing.T) {
	cfg, inj := faultyConfig(ModeLinux, 64*mb, 11)
	cfg.CompactBudgetPerTick = 4096
	inj.Arm(fault.PointCompactCarve, fault.Trigger{Prob: 1})
	k := New(cfg)

	// Fragment: fill the zone with base pages, then free three of four so
	// no free 2 MB block exists but every block is cheap to evacuate.
	var pages []*Page
	for {
		p, err := k.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcUser)
		if err != nil {
			break
		}
		pages = append(pages, p)
	}
	for i, p := range pages {
		if i%4 != 0 {
			k.Free(p)
			pages[i] = nil
		}
	}

	// The 2 MB slow path runs compaction; the injected carve fault must
	// fail it without corrupting state.
	if _, err := k.Alloc(mem.Order2M, mem.MigrateMovable, mem.SrcUser); err == nil {
		t.Fatal("2 MB alloc must fail while carves are faulted")
	}
	if k.CarveFails == 0 {
		t.Fatal("carve fault not accounted")
	}
	if k.CompactRequeues == 0 {
		t.Fatal("failed candidate must be requeued")
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatalf("after faulted compaction: %v", err)
	}

	// Fault lifted: the requeued target satisfies the next request.
	inj.DisarmAll()
	huge, err := k.Alloc(mem.Order2M, mem.MigrateMovable, mem.SrcUser)
	if err != nil {
		t.Fatalf("2 MB alloc must succeed after the fault clears: %v", err)
	}
	if huge.Order != mem.Order2M {
		t.Fatalf("order = %d", huge.Order)
	}
	if k.CompactSuccess == 0 {
		t.Fatal("recovery allocation must come from compaction")
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatalf("after recovery compaction: %v", err)
	}
}

// TestCheckInvariantsDetectsCorruption sanity-checks the validator itself:
// a handle deleted behind the kernel's back must be reported.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	k := New(testConfig(ModeLinux, 64*mb))
	p, err := k.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcUser)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatalf("clean kernel reported: %v", err)
	}
	k.live.del(p.PFN)
	if err := k.CheckInvariants(); err == nil {
		t.Fatal("validator missed a vanished handle")
	}
	k.live.set(p.PFN, p)
	if err := k.CheckInvariants(); err != nil {
		t.Fatalf("restored kernel reported: %v", err)
	}
}

// TestRandomisedWorkloadUnderFaults soaks both modes with a randomized
// alloc/free/pin mix while every fault point misfires with moderate
// probability; the full invariant validator must stay clean throughout.
func TestRandomisedWorkloadUnderFaults(t *testing.T) {
	for _, mode := range []Mode{ModeLinux, ModeContiguitas} {
		cfg, inj := faultyConfig(mode, 128*mb, 99)
		cfg.HWMover = NewAnalyticMover()
		inj.Arm(fault.PointHWMover, fault.Trigger{Prob: 0.2})
		inj.Arm(fault.PointSWMigrate, fault.Trigger{Prob: 0.05})
		inj.Arm(fault.PointCompactCarve, fault.Trigger{Prob: 0.1})
		inj.Arm(fault.PointRegionResize, fault.Trigger{Prob: 0.1})
		k := New(cfg)

		rng := stats.NewRNG(2024)
		var live []*Page
		var pinned []*Page
		for step := 0; step < 12000; step++ {
			switch r := rng.Float64(); {
			case r < 0.45:
				order := mem.Order4K
				if rng.Float64() < 0.1 {
					order = mem.Order2M
				}
				mt := mem.MigrateMovable
				if rng.Float64() < 0.3 {
					mt = mem.MigrateUnmovable
				}
				if p, err := k.Alloc(order, mt, mem.SrcUser); err == nil {
					live = append(live, p)
				}
			case r < 0.80 && len(live) > 0:
				i := int(rng.Uint64() % uint64(len(live)))
				p := live[i]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				if err := k.Free(p); err != nil {
					t.Fatalf("%v: free: %v", mode, err)
				}
			case r < 0.9 && len(live) > 0:
				i := int(rng.Uint64() % uint64(len(live)))
				p := live[i]
				if err := k.Pin(p); err == nil {
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
					pinned = append(pinned, p)
				}
			case len(pinned) > 0:
				i := int(rng.Uint64() % uint64(len(pinned)))
				p := pinned[i]
				pinned[i] = pinned[len(pinned)-1]
				pinned = pinned[:len(pinned)-1]
				k.Unpin(p)
				if err := k.Free(p); err != nil {
					t.Fatalf("%v: free after unpin: %v", mode, err)
				}
			}
			if step%100 == 0 {
				k.EndTick()
			}
			if step%2000 == 1999 {
				if err := k.CheckInvariants(); err != nil {
					t.Fatalf("%v: step %d: %v", mode, step, err)
				}
			}
		}
		if err := k.CheckInvariants(); err != nil {
			t.Fatalf("%v: final: %v", mode, err)
		}
		// Linux mode crosses fault points only under memory pressure this
		// mix does not generate; Contiguitas pins and resizes constantly.
		if mode == ModeContiguitas && inj.TotalFired() == 0 {
			t.Fatalf("%v: soak never injected a fault", mode)
		}
	}
}
