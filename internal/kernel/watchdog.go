package kernel

import (
	"fmt"

	"contiguitas/internal/mem"
	"contiguitas/internal/telemetry"
)

// Progress watchdog: long-horizon runs can livelock when a fault (or a
// genuinely stuck page) makes the migration retry ladder or the
// compaction requeue loop spin forever — each iteration looks locally
// productive (a retry with backoff, a requeue), but no page ever moves.
// The watchdog accumulates the cycles such loops burn and, once they
// exceed Config.LivelockCycleDeadline without a single success, abandons
// the operation with ErrLivelock, emits an EvLivelock tracepoint, and
// lets the caller's existing degradation ladder (fallback, defer,
// compaction defer window) take over. Any forward progress resets the
// accumulator, so steady-state retry churn under a survivable fault rate
// never trips it.

// watchdogArmed reports whether the livelock watchdog is configured.
func (k *Kernel) watchdogArmed() bool { return k.cfg.LivelockCycleDeadline > 0 }

// noteMigStall charges cycles of fruitless migration retrying and
// reports whether the watchdog tripped. On a trip the accumulator
// resets (each trip represents one full deadline of stall), the trip is
// counted, and the tracepoint fires; the caller must abandon the retry
// loop with ErrLivelock.
func (k *Kernel) noteMigStall(pfn, cycles uint64) bool {
	if !k.watchdogArmed() {
		return false
	}
	k.wdMigStall += cycles
	if k.wdMigStall < k.cfg.LivelockCycleDeadline {
		return false
	}
	stalled := k.wdMigStall
	k.wdMigStall = 0
	k.LivelockTrips++
	if k.tp.Enabled() {
		k.tp.Emit(k.tick, telemetry.EvLivelock, pfn, stalled, k.cfg.LivelockCycleDeadline)
	}
	return true
}

// noteMigProgress records a completed migration, resetting the
// migration-ladder stall accumulator.
func (k *Kernel) noteMigProgress() {
	k.wdMigStall = 0
}

// errLivelock builds the typed error a tripped migration returns.
func (k *Kernel) errLivelock(pfn uint64) error {
	return fmt.Errorf("%w: pfn %d burned %d cycles without progress",
		ErrLivelock, pfn, k.cfg.LivelockCycleDeadline)
}

// noteCompactStall charges cycles of compaction requeue churn (a target
// bounced back to the retry queue). A trip drops the region's retry
// queue and slams its defer window to the maximum — the escalation that
// breaks the requeue→fail→requeue cycle.
func (k *Kernel) noteCompactStall(b *mem.Buddy, pfn, cycles uint64) {
	if !k.watchdogArmed() {
		return
	}
	k.wdCompactStall += cycles
	if k.wdCompactStall < k.cfg.LivelockCycleDeadline {
		return
	}
	stalled := k.wdCompactStall
	k.wdCompactStall = 0
	k.LivelockTrips++
	if k.tp.Enabled() {
		k.tp.Emit(k.tick, telemetry.EvLivelock, pfn, stalled, k.cfg.LivelockCycleDeadline)
	}
	delete(k.compactRetry, b)
	if ds := k.compactDefer[b]; ds != nil {
		ds.shift = 6
		ds.until = k.tick + (1 << ds.shift)
	}
}

// noteCompactProgress records a successful compaction, resetting the
// requeue-loop stall accumulator.
func (k *Kernel) noteCompactProgress(b *mem.Buddy) {
	k.wdCompactStall = 0
}
