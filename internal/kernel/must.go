package kernel

import "contiguitas/internal/mem"

// The buddy allocator's Free/Donate/AdjustBounds return typed errors so
// external callers can misuse them safely, but every kernel-internal
// call operates on state the kernel just validated (a live-table handle,
// a block it allocated moments ago, bounds it computed from the frame
// table). A failure here means kernel bookkeeping is already corrupt —
// continuing would silently lose memory — so these wrappers treat it as
// a provably-unreachable invariant violation and panic.

func mustFree(b *mem.Buddy, pfn uint64) {
	if err := b.Free(pfn); err != nil {
		panic("kernel: invariant violation: " + err.Error())
	}
}

func mustDonate(b *mem.Buddy, start, n uint64) {
	if err := b.Donate(start, n); err != nil {
		panic("kernel: invariant violation: " + err.Error())
	}
}

func mustAdjustBounds(b *mem.Buddy, start, end uint64) {
	if err := b.AdjustBounds(start, end); err != nil {
		panic("kernel: invariant violation: " + err.Error())
	}
}
