package kernel

import (
	"errors"
	"fmt"

	"contiguitas/internal/mem"
	"contiguitas/internal/pressure"
	"contiguitas/internal/psi"
	"contiguitas/internal/telemetry"
)

// ErrNoMemory is returned when an allocation cannot be satisfied even
// after reclaim, compaction, and (in ModeContiguitas) urgent expansion.
// The other failure-path sentinels live in errors.go.
var ErrNoMemory = errors.New("kernel: out of memory")

// Stall penalties charged to PSI, in fractions of a tick. Direct reclaim
// and compaction put the allocating task to sleep briefly; a hard failure
// represents a much longer stall (OOM handling, retry loops).
const (
	stallDirectReclaim = 0.05
	stallCompaction    = 0.10
	stallFailure       = 1.0
)

// Alloc allocates a block of 2^order frames of the given migratetype and
// source, returning a relocatable handle. The fast path is a plain buddy
// allocation in the class's region; the slow path mirrors the kernel:
// direct reclaim, then compaction for high-order movable requests, then
// (ModeContiguitas, unmovable classes) an urgent boundary expansion.
func (k *Kernel) Alloc(order int, mt mem.MigrateType, src mem.Source) (*Page, error) {
	if k.shedAllocation(mt) {
		// Admission control: fail fast with no stall and no reclaim —
		// shedding exists precisely to stop failing requests from adding
		// pressure. Not counted as AllocFail; shed requests never entered
		// the allocator.
		k.AllocShed++
		if k.tp.Enabled() {
			k.tp.Emit(k.tick, telemetry.EvAllocShed,
				uint64(order), uint64(mt), uint64(k.gatePSI.Pressure()*1000))
		}
		return nil, k.errAllocShed()
	}
	b := k.buddyFor(mt)
	region := k.regionFor(mt)

	var stealConv, stealPoll uint64
	if k.tp.Enabled() {
		stealConv, stealPoll = b.StealsConverting, b.StealsPolluting
	}
	pfn, ok := b.Alloc(order, mt, src)
	if !ok {
		k.psi.AddStall(region, stallDirectReclaim)
		k.DirectReclaim++
		k.esc.Note(pressure.RungReclaim, k.tick)
		want := mem.OrderPages(order)
		freed := k.reclaim(b, want)
		if k.tp.Enabled() {
			k.tp.Emit(k.tick, telemetry.EvDirectReclaim, uint64(region), want, freed)
		}
		pfn, ok = b.Alloc(order, mt, src)
	}
	if !ok && order > 0 && mt == mem.MigrateMovable {
		k.psi.AddStall(region, stallCompaction)
		k.esc.Note(pressure.RungCompact, k.tick)
		if cpfn, cok := k.Compact(b, order, mt, src); cok {
			pfn, ok = cpfn, true
		}
	}
	if !ok && k.cfg.Mode == ModeContiguitas && mt != mem.MigrateMovable {
		// Urgent expansion: grow the unmovable region enough to serve
		// the request, then retry.
		need := mem.OrderPages(order) * 2
		if k.ExpandUnmovable(need) > 0 {
			pfn, ok = b.Alloc(order, mt, src)
		}
	}
	if k.tp.Enabled() {
		// Fallback stealing happens inside the buddy's Alloc; attribute
		// any steals the attempts above triggered to this allocation.
		if dc, dp := b.StealsConverting-stealConv, b.StealsPolluting-stealPoll; dc|dp != 0 {
			k.tp.Emit(k.tick, telemetry.EvFallbackSteal, pfn, dc, dp)
		}
	}
	var lt ladderTrace
	if !ok && k.pcfg != nil {
		pfn, ok = k.pressureLadder(b, region, order, mt, src, &lt)
		if k.histAllocStall != nil {
			k.histAllocStall.Observe(lt.stallCycles)
		}
	}
	if !ok {
		k.psi.AddStall(region, stallFailure)
		k.AllocFail++
		if k.tp.Enabled() {
			k.tp.Emit(k.tick, telemetry.EvAllocFail, uint64(order), uint64(mt), uint64(region))
		}
		if k.pcfg != nil {
			return nil, k.pressureErr(order, mt, &lt)
		}
		return nil, k.errNoMemory(order, mt)
	}
	k.AllocOK++
	if k.tp.Enabled() {
		k.tp.Emit(k.tick, telemetry.EvAlloc, pfn, uint64(order), uint64(mt))
	}
	p := k.newPage()
	*p = Page{PFN: pfn, Order: int8(order), MT: mt, Src: src, cacheIdx: -1}
	k.live.set(pfn, p)
	if k.sink != nil && !k.inCacheAlloc {
		k.sink.OnAlloc(p, false)
	}
	return p, nil
}

// Free releases an allocation. Pinned pages must be unpinned first.
// Misuse is reported, not fatal: freeing nil, a pinned page, or a stale
// handle (double free, reclaimed page-cache handle) returns a typed
// error and leaves the kernel untouched.
func (k *Kernel) Free(p *Page) error {
	if p == nil {
		return ErrNilHandle
	}
	if p.Pinned {
		return fmt.Errorf("%w: Free of pfn %d; Unpin first", ErrPagePinned, p.PFN)
	}
	if k.live.get(p.PFN) != p {
		return fmt.Errorf("%w: Free of pfn %d", ErrStaleHandle, p.PFN)
	}
	if k.tp.Enabled() {
		k.tp.Emit(k.tick, telemetry.EvFree, p.PFN, uint64(p.Order), uint64(p.MT))
	}
	if k.sink != nil {
		k.sink.OnFree(p)
	}
	if p.cacheIdx >= 0 {
		// Lazily detach from the reclaimable FIFO.
		k.reclaimable[p.cacheIdx] = noCacheEntry
		k.reclaimablePages -= p.Pages()
		p.cacheIdx = -1
	}
	k.live.del(p.PFN)
	mustFree(k.owningBuddy(p.PFN), p.PFN)
	return nil
}

// pageArenaChunk is the handle-arena batch size: large enough to take
// the chunk malloc off the allocation hot path, small enough that a
// chunk pinned by one long-lived handle wastes little.
const pageArenaChunk = 2048

// newPage carves the next handle from the arena. Every handle is a
// distinct, never-reused object (see the pageArena field comment).
func (k *Kernel) newPage() *Page {
	if len(k.pageArena) == 0 {
		k.pageArena = make([]Page, pageArenaChunk)
	}
	p := &k.pageArena[0]
	k.pageArena = k.pageArena[1:]
	return p
}

// errNoMemory returns the memoized allocation-failure error for the
// (order, migratetype) pair, formatting it on first use.
func (k *Kernel) errNoMemory(order int, mt mem.MigrateType) error {
	if err := k.noMemErr[order][mt]; err != nil {
		return err
	}
	err := fmt.Errorf("%w: order=%d mt=%v", ErrNoMemory, order, mt)
	k.noMemErr[order][mt] = err
	return err
}

// owningBuddy returns the buddy allocator whose range covers pfn.
func (k *Kernel) owningBuddy(pfn uint64) *mem.Buddy {
	if k.cfg.Mode == ModeLinux {
		return k.zone
	}
	if pfn < k.boundary {
		return k.unmov
	}
	return k.mov
}

// AllocPageCache allocates a droppable page-cache block. Page cache is
// movable (it migrates like user memory and lives in the movable region
// under Contiguitas) but also reclaimable: the kernel may free it at any
// time under pressure, so holders must treat the handle as advisory and
// check Live. Unmovable filesystem buffers are ordinary unmovable
// allocations, not page cache.
func (k *Kernel) AllocPageCache(order int, src mem.Source) (*Page, error) {
	k.inCacheAlloc = true
	p, err := k.Alloc(order, mem.MigrateMovable, src)
	k.inCacheAlloc = false
	if err != nil {
		return nil, err
	}
	p.cacheIdx = int32(len(k.reclaimable))
	k.reclaimable = append(k.reclaimable, uint32(p.PFN))
	k.reclaimablePages += p.Pages()
	if k.sink != nil {
		k.sink.OnAlloc(p, true)
	}
	return p, nil
}

// Live reports whether the handle still owns memory (page-cache handles
// can be reclaimed behind the holder's back).
func (k *Kernel) Live(p *Page) bool { return k.live.get(p.PFN) == p }

// Pin marks an allocation unmovable-in-place (DMA registration, RDMA,
// zero-copy send). Under ModeContiguitas, a movable-region page is first
// migrated into the unmovable region (§3.2: "Contiguitas first migrates
// them to the unmovable region and then marks them as unmovable"),
// avoiding dynamic pollution of the movable region. The migration is a
// software one — the page is not yet pinned, so access can be blocked.
func (k *Kernel) Pin(p *Page) error {
	if p.Pinned {
		return nil
	}
	if k.cfg.Mode == ModeContiguitas && p.PFN >= k.boundary {
		// Allocate a landing block in the unmovable region and move.
		dst, ok := k.unmov.Alloc(int(p.Order), mem.MigrateUnmovable, p.Src)
		if !ok {
			k.reclaim(k.unmov, p.Pages())
			dst, ok = k.unmov.Alloc(int(p.Order), mem.MigrateUnmovable, p.Src)
		}
		if !ok {
			if k.ExpandUnmovable(p.Pages()*2) > 0 {
				dst, ok = k.unmov.Alloc(int(p.Order), mem.MigrateUnmovable, p.Src)
			}
		}
		if !ok {
			k.psi.AddStall(psi.RegionUnmovable, stallFailure)
			return fmt.Errorf("%w: pin migration target order=%d", ErrNoMemory, p.Order)
		}
		if err := k.softwareMigrateTo(p, dst); err != nil {
			mustFree(k.unmov, dst)
			return fmt.Errorf("pin migration of pfn %d: %w", p.PFN, err)
		}
		p.MT = mem.MigrateUnmovable
		k.PinMigrations++
	}
	p.Pinned = true
	k.pm.SetPinned(p.PFN, true)
	if k.sink != nil {
		k.sink.OnPin(p)
	}
	return nil
}

// Unpin clears the pinned state. The page stays where it is; under
// ModeContiguitas it remains in the unmovable region until freed.
func (k *Kernel) Unpin(p *Page) {
	if !p.Pinned {
		return
	}
	p.Pinned = false
	k.pm.SetPinned(p.PFN, false)
	if k.sink != nil {
		k.sink.OnUnpin(p)
	}
}
