package kernel

import (
	"fmt"

	"contiguitas/internal/fault"
	"contiguitas/internal/mem"
	"contiguitas/internal/telemetry"
)

// Migration-path codes for the EvMigrateStart/Fail "path" argument.
const (
	pathSW uint64 = 0
	pathHW uint64 = 1
)

// MigrationCostModel prices the software page-migration procedure of
// Figure 1: clear PTE, local invalidation, IPI broadcast to every victim
// TLB, per-victim INVLPG handling (a full pipeline flush, measured at
// ~250 cycles on real hardware, §4), acknowledgements, the page copy,
// and the PTE update. The page is unavailable for the whole sequence.
type MigrationCostModel struct {
	PTEClearCycles     uint64 // step 1
	LocalInvlpgCycles  uint64 // step 2
	IPISendCycles      uint64 // step 3, per victim
	VictimInvlpgCycles uint64 // step 4, per victim (pipeline flush)
	AckCycles          uint64 // step 5, per victim
	CopyCyclesPerPage  uint64 // step 6 (≈1300 cycles per 4 KB, §5.3)
	PTEUpdateCycles    uint64 // step 7
}

// DefaultMigrationCostModel matches the paper's measurements: victim
// handling dominated by the 250-cycle INVLPG pipeline flush, a ~1300
// cycle 4 KB copy, and linear scaling in the number of victim TLBs
// (Figure 13: ~2.5 K cycles at one victim to ~8 K cycles at eight).
func DefaultMigrationCostModel() MigrationCostModel {
	return MigrationCostModel{
		PTEClearCycles:     150,
		LocalInvlpgCycles:  250,
		IPISendCycles:      400,
		VictimInvlpgCycles: 250,
		AckCycles:          120,
		CopyCyclesPerPage:  1300,
		PTEUpdateCycles:    150,
	}
}

// UnavailableCycles returns how long a 4 KB page is inaccessible during
// one software migration with the given number of victim TLBs.
func (m MigrationCostModel) UnavailableCycles(victims int) uint64 {
	if victims < 0 {
		victims = 0
	}
	perVictim := m.IPISendCycles + m.VictimInvlpgCycles + m.AckCycles
	return m.PTEClearCycles + m.LocalInvlpgCycles +
		uint64(victims)*perVictim + m.CopyCyclesPerPage + m.PTEUpdateCycles
}

// BlockUnavailableCycles prices migrating a whole block of 2^order pages
// (one shootdown, per-page copies).
func (m MigrationCostModel) BlockUnavailableCycles(victims, order int) uint64 {
	base := m.UnavailableCycles(victims)
	extra := (mem.OrderPages(order) - 1) * m.CopyCyclesPerPage
	return base + extra
}

// softwareMigrateTo copies allocation p onto the pre-allocated
// destination block dst (same order), frees the old frames, and updates
// the handle — the software path of Figure 1, usable only when access to
// the page can be blocked. A migration aborted mid-copy (the page was
// re-faulted by a racing access; modelled by the fault injector) is
// retried with cycle-priced exponential backoff; after the retry budget
// it fails with ErrMigrationFailed and p is untouched. On any error the
// caller still owns the dst block.
func (k *Kernel) softwareMigrateTo(p *Page, dst uint64) error {
	if p.Pinned {
		return fmt.Errorf("%w: software migration of pfn %d", ErrPagePinned, p.PFN)
	}
	// The region boundary must not move while a copy is in flight;
	// EmergencyShrink defers itself while this count is non-zero.
	k.migInFlight++
	defer func() { k.migInFlight-- }()
	if k.tp.Enabled() {
		k.tp.Emit(k.tick, telemetry.EvMigrateStart, p.PFN, uint64(p.Order), pathSW)
	}
	for attempt := 0; k.faults().Should(fault.PointSWMigrate); attempt++ {
		// Each aborted attempt still paid the shootdown and partial copy.
		k.SWMigrationCycles += k.migCost.BlockUnavailableCycles(k.cfg.Victims, int(p.Order))
		if attempt >= k.retryLimit() {
			k.MigrationFailures++
			if k.tp.Enabled() {
				k.tp.Emit(k.tick, telemetry.EvMigrateFail, p.PFN, uint64(attempt+1), pathSW)
			}
			return fmt.Errorf("%w: pfn %d after %d attempts", ErrMigrationFailed, p.PFN, attempt+1)
		}
		k.MigrationRetries++
		backoff := k.backoffCycles(attempt)
		k.BackoffCycles += backoff
		if k.histBackoff != nil {
			k.histBackoff.Observe(backoff)
		}
		if k.tp.Enabled() {
			k.tp.Emit(k.tick, telemetry.EvMigrateRetry, p.PFN, uint64(attempt+1), backoff)
		}
		if k.noteMigStall(p.PFN, backoff) {
			k.MigrationFailures++
			if k.tp.Enabled() {
				k.tp.Emit(k.tick, telemetry.EvMigrateFail, p.PFN, uint64(attempt+1), pathSW)
			}
			return k.errLivelock(p.PFN)
		}
	}
	src := p.PFN
	k.SWMigrations++
	k.noteMigProgress()
	cycles := k.migCost.BlockUnavailableCycles(k.cfg.Victims, int(p.Order))
	k.SWMigrationCycles += cycles
	if k.histSW != nil {
		k.histSW.Observe(cycles)
	}
	if k.tp.Enabled() {
		k.tp.Emit(k.tick, telemetry.EvTLBShootdown, src, uint64(k.cfg.Victims), cycles)
		k.tp.Emit(k.tick, telemetry.EvMigrateComplete, src, dst, cycles)
	}
	k.live.del(src)
	mustFree(k.owningBuddy(src), src)
	k.rehome(p, dst)
	// The destination block was allocated by the caller with matching
	// order; re-stamp source metadata for scanners.
	k.restamp(dst, p)
	return nil
}

// rehome points handle p at its new block head, keeping the PFN-keyed
// reclaimable-FIFO entry (if any) in step with the move.
func (k *Kernel) rehome(p *Page, dst uint64) {
	p.PFN = dst
	if p.cacheIdx >= 0 {
		k.reclaimable[p.cacheIdx] = uint32(dst)
	}
	k.live.set(dst, p)
}

// hwMigrateTo relocates allocation p using Contiguitas-HW: the page stays
// accessible throughout; only copy-engine busy cycles accrue. Valid for
// pinned and unmovable pages — the whole point of the hardware (§3.3).
// Engine aborts are retried with backoff; after the retry budget the
// migration fails with ErrMoverFailed, p is untouched, and the caller
// still owns dst (it degrades or defers).
func (k *Kernel) hwMigrateTo(p *Page, dst uint64) error {
	if k.cfg.HWMover == nil {
		return fmt.Errorf("%w: no Mover attached", ErrMoverFailed)
	}
	k.migInFlight++
	defer func() { k.migInFlight-- }()
	src := p.PFN
	if k.tp.Enabled() {
		k.tp.Emit(k.tick, telemetry.EvMigrateStart, src, uint64(p.Order), pathHW)
	}
	var busy uint64
	for attempt := 0; ; attempt++ {
		var err error
		if k.tp.Enabled() {
			k.tp.Emit(k.tick, telemetry.EvMoverBegin, src, dst, uint64(p.Order))
		}
		if k.faults().Should(fault.PointHWMover) {
			err = fmt.Errorf("%w: injected engine abort at pfn %d", ErrMoverFailed, src)
		} else {
			busy, err = k.cfg.HWMover.Migrate(src, dst, int(p.Order))
			if err != nil {
				err = fmt.Errorf("%w: %v", ErrMoverFailed, err)
			}
		}
		if k.tp.Enabled() {
			okFlag := uint64(1)
			if err != nil {
				okFlag = 0
			}
			k.tp.Emit(k.tick, telemetry.EvMoverEnd, src, busy, okFlag)
		}
		if err == nil {
			break
		}
		if attempt >= k.retryLimit() {
			k.MigrationFailures++
			if k.tp.Enabled() {
				k.tp.Emit(k.tick, telemetry.EvMigrateFail, src, uint64(attempt+1), pathHW)
			}
			return err
		}
		k.MigrationRetries++
		backoff := k.backoffCycles(attempt)
		k.BackoffCycles += backoff
		if k.histBackoff != nil {
			k.histBackoff.Observe(backoff)
		}
		if k.tp.Enabled() {
			k.tp.Emit(k.tick, telemetry.EvMigrateRetry, src, uint64(attempt+1), backoff)
		}
		if k.noteMigStall(src, backoff) {
			k.MigrationFailures++
			if k.tp.Enabled() {
				k.tp.Emit(k.tick, telemetry.EvMigrateFail, src, uint64(attempt+1), pathHW)
			}
			return k.errLivelock(src)
		}
	}
	k.HWMigrations++
	k.noteMigProgress()
	k.HWMigrationCycles += busy
	if k.histHW != nil {
		k.histHW.Observe(busy)
	}
	if k.tp.Enabled() {
		k.tp.Emit(k.tick, telemetry.EvShootdownFree, src, uint64(k.cfg.Victims), busy)
		k.tp.Emit(k.tick, telemetry.EvMigrateComplete, src, dst, busy)
	}
	wasPinned := p.Pinned
	if wasPinned {
		k.pm.SetPinned(src, false)
	}
	k.live.del(src)
	mustFree(k.owningBuddy(src), src)
	k.rehome(p, dst)
	k.restamp(dst, p)
	if wasPinned {
		k.pm.SetPinned(dst, true)
	}
	return nil
}

// migrateTo relocates p onto dst with graceful degradation: when the
// hardware path is available it is preferred (the page stays accessible,
// no shootdown), and an exhausted hardware retry budget falls back to
// software migration when access to the page can be blocked (movable,
// not pinned). Unmovable and pinned pages have no software fallback —
// the caller defers and retries later. On error the caller owns dst.
func (k *Kernel) migrateTo(p *Page, dst uint64, allowHW bool) error {
	swOK := p.MT == mem.MigrateMovable && !p.Pinned
	if allowHW && k.cfg.HWMover != nil {
		err := k.hwMigrateTo(p, dst)
		if err == nil {
			return nil
		}
		if !swOK {
			k.MigrationDeferred++
			if k.tp.Enabled() {
				k.tp.Emit(k.tick, telemetry.EvMigrateDefer, p.PFN, uint64(p.Order), 0)
			}
			return err
		}
		k.SWFallbacks++
		if k.tp.Enabled() {
			k.tp.Emit(k.tick, telemetry.EvMigrateFallback, p.PFN, uint64(p.Order), 0)
		}
	} else if !swOK {
		k.MigrationDeferred++
		if k.tp.Enabled() {
			k.tp.Emit(k.tick, telemetry.EvMigrateDefer, p.PFN, uint64(p.Order), 0)
		}
		return fmt.Errorf("%w: unmovable pfn %d without hardware assist", ErrMigrationFailed, p.PFN)
	}
	return k.softwareMigrateTo(p, dst)
}

// restamp rewrites per-frame source/migratetype metadata after a move so
// physical scans attribute the block correctly.
func (k *Kernel) restamp(pfn uint64, p *Page) {
	pm := k.pm
	if pm.BlockOrder(pfn) != int(p.Order) {
		panic(fmt.Sprintf("kernel: restamp order mismatch at %d: block=%d handle=%d",
			pfn, pm.BlockOrder(pfn), p.Order))
	}
	pm.Restamp(pfn, int(p.Order), p.MT, p.Src)
}

// AnalyticMover is a Mover priced by constants derived from the
// event-driven Contiguitas-HW simulation (internal/hw/contighw): per-line
// BusRdX + copy across the sliced LLC. It is the kernel's default stand-in
// when a full hardware simulation is not attached.
type AnalyticMover struct {
	// CyclesPerLine covers BusRdX pairs, the line copy, and Ptr update.
	CyclesPerLine uint64
	// LinesPerPage is 4096/64.
	LinesPerPage uint64
}

// NewAnalyticMover returns a mover calibrated against the event-driven
// Contiguitas-HW simulation (internal/hw/platform.TestSimVsAnalyticMover):
// each line costs two BusRdX rounds plus the LLC write, ~128 cycles of
// copy-engine work. Pipelined across slices this yields the ~2 µs
// wall-clock 4 KB migration the paper reports.
func NewAnalyticMover() *AnalyticMover {
	return &AnalyticMover{CyclesPerLine: 128, LinesPerPage: 64}
}

// Migrate implements Mover. The analytic model never fails.
func (a *AnalyticMover) Migrate(src, dst uint64, order int) (uint64, error) {
	lines := a.LinesPerPage * mem.OrderPages(order)
	return lines * a.CyclesPerLine, nil
}
