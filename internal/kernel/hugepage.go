package kernel

import (
	"contiguitas/internal/mem"
	"contiguitas/internal/telemetry"
)

// Mapping is a user-space memory area backed by a mix of page sizes —
// the outcome of THP's opportunistic huge-page allocation. The blocks
// slice holds the kernel handles backing the area.
type Mapping struct {
	Bytes  uint64
	Blocks []*Page
}

// Coverage returns the fraction of the mapping's frames backed by blocks
// of at least the given order — the huge-page coverage that drives the
// address-translation model.
func (m *Mapping) Coverage(order int) float64 {
	var total, covered uint64
	for _, b := range m.Blocks {
		total += b.Pages()
		if int(b.Order) >= order {
			covered += b.Pages()
		}
	}
	if total == 0 {
		return 0
	}
	return float64(covered) / float64(total)
}

// BlockCount returns how many blocks of exactly the given order back the
// mapping.
func (m *Mapping) BlockCount(order int) int {
	n := 0
	for _, b := range m.Blocks {
		if int(b.Order) == order {
			n++
		}
	}
	return n
}

// AllocUser allocates user anonymous memory. With thp enabled it
// attempts 2 MB blocks first (Transparent Huge Pages with THP=always,
// §2.1) and falls back to 4 KB pages per chunk; without THP everything
// is 4 KB. On failure the partial mapping is released.
func (k *Kernel) AllocUser(bytes uint64, thp bool) (*Mapping, error) {
	return k.AllocUserTHP(bytes, thp, false)
}

// AllocUserTHP additionally attempts 1 GB blocks when thp1G is set —
// the upstream-in-progress 1 GB THP support the paper's §6 discusses as
// the natural next step once Contiguitas makes gigabyte contiguity
// reliable. The fallback ladder is 1 GB → 2 MB → 4 KB.
func (k *Kernel) AllocUserTHP(bytes uint64, thp, thp1G bool) (*Mapping, error) {
	m := &Mapping{Bytes: bytes}
	remaining := mem.BytesToPages(bytes)
	for remaining > 0 {
		if thp1G && remaining >= mem.OrderPages(mem.Order1G) {
			if p, err := k.Alloc(mem.Order1G, mem.MigrateMovable, mem.SrcUser); err == nil {
				m.Blocks = append(m.Blocks, p)
				remaining -= mem.OrderPages(mem.Order1G)
				continue
			}
		}
		if thp && remaining >= mem.PageblockPages {
			if p, err := k.Alloc(mem.Order2M, mem.MigrateMovable, mem.SrcUser); err == nil {
				m.Blocks = append(m.Blocks, p)
				remaining -= mem.PageblockPages
				continue
			}
			// The huge attempt failed: back the whole 2 MB extent with base
			// pages before retrying huge for the next extent. Falling back
			// one extent at a time (rather than one page) keeps exhausted
			// runs from re-walking the 2 MB slow path per base page.
			k.THPFallbacks++
			if k.tp.Enabled() {
				k.tp.Emit(k.tick, telemetry.EvTHPFallback, mem.Order2M, remaining, 0)
			}
			for i := 0; i < mem.PageblockPages; i++ {
				p, err := k.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcUser)
				if err != nil {
					k.FreeMapping(m)
					return nil, err
				}
				m.Blocks = append(m.Blocks, p)
				remaining--
			}
			continue
		}
		p, err := k.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcUser)
		if err != nil {
			k.FreeMapping(m)
			return nil, err
		}
		m.Blocks = append(m.Blocks, p)
		remaining--
	}
	return m, nil
}

// FreeMapping releases every block of the mapping.
func (k *Kernel) FreeMapping(m *Mapping) {
	for _, b := range m.Blocks {
		if k.Live(b) {
			k.Free(b)
		}
	}
	m.Blocks = nil
}

// Promote runs a khugepaged pass over the mapping: groups of 512 base
// pages are collapsed into freshly allocated 2 MB blocks, paying one
// software migration per page moved. maxCollapses bounds the work per
// pass (0 = unlimited). Returns the number of collapses performed.
func (k *Kernel) Promote(m *Mapping, maxCollapses int) int {
	collapses := 0
	// Partition into kernel-owned scratch buffers: Promote runs for every
	// mapping every tick in the workload driver, and per-call slice growth
	// dominated allocation profiles.
	small := k.promoteSmall[:0]
	rest := k.promoteRest[:0]
	for _, b := range m.Blocks {
		if b.Order == mem.Order4K {
			small = append(small, b)
		} else {
			rest = append(rest, b)
		}
	}
	next := 0
	for len(small)-next >= mem.PageblockPages {
		if maxCollapses > 0 && collapses >= maxCollapses {
			break
		}
		huge, err := k.Alloc(mem.Order2M, mem.MigrateMovable, mem.SrcUser)
		if err != nil {
			break
		}
		group := small[next : next+mem.PageblockPages]
		next += mem.PageblockPages
		for _, p := range group {
			// Collapse: copy the base page into the huge block.
			k.SWMigrations++
			cycles := k.migCost.UnavailableCycles(k.cfg.Victims)
			k.SWMigrationCycles += cycles
			if k.histSW != nil {
				k.histSW.Observe(cycles)
			}
			k.Free(p)
		}
		rest = append(rest, huge)
		collapses++
	}
	m.Blocks = append(m.Blocks[:0], rest...)
	m.Blocks = append(m.Blocks, small[next:]...)
	k.promoteSmall = small[:0]
	k.promoteRest = rest[:0]
	return collapses
}

// HugeTLBResult reports a dynamic HugeTLB reservation attempt.
type HugeTLBResult struct {
	Requested int
	Allocated int
	Pages     []*Page
}

// AllocHugeTLB dynamically reserves count huge pages of the given order
// (2 MB or 1 GB), the way a service pre-faults its HugeTLB pool at
// startup. Each page goes through the full slow path (reclaim +
// compaction); under fragmentation with scattered unmovable pages, 1 GB
// requests fail on Linux and succeed under Contiguitas (§5.1).
func (k *Kernel) AllocHugeTLB(order, count int) HugeTLBResult {
	// Explicit reservations run direct compaction, unconstrained by the
	// background budget.
	k.directCompact = true
	defer func() { k.directCompact = false }()
	res := HugeTLBResult{Requested: count}
	for i := 0; i < count; i++ {
		p, err := k.Alloc(order, mem.MigrateMovable, mem.SrcUser)
		if err != nil {
			break
		}
		res.Pages = append(res.Pages, p)
		res.Allocated++
	}
	return res
}

// FreeHugeTLB releases a reservation.
func (k *Kernel) FreeHugeTLB(r *HugeTLBResult) {
	for _, p := range r.Pages {
		if k.Live(p) {
			k.Free(p)
		}
	}
	r.Pages = nil
	r.Allocated = 0
}
