package kernel

import (
	"errors"
	"testing"

	"contiguitas/internal/mem"
	"contiguitas/internal/resize"
	"contiguitas/internal/stats"
)

const (
	mb = uint64(1) << 20
	gb = uint64(1) << 30
)

// testConfig returns a small machine for fast tests.
func testConfig(mode Mode, memBytes uint64) Config {
	cfg := DefaultConfig(mode)
	cfg.MemBytes = memBytes
	cfg.InitialUnmovableBytes = memBytes / 8
	cfg.MinUnmovableBytes = 4 * mb
	cfg.MaxUnmovableBytes = memBytes / 2
	cfg.MaxResizeStepBytes = 32 * mb
	cfg.ResizePeriodTicks = 10
	cfg.PSIHalfLifeTicks = 50
	return cfg
}

func TestBootLinux(t *testing.T) {
	k := New(testConfig(ModeLinux, 256*mb))
	if k.Mode() != ModeLinux {
		t.Fatal("mode")
	}
	if k.FreePages() != 256*mb/mem.PageSize {
		t.Fatalf("free pages = %d", k.FreePages())
	}
	if k.Boundary() != 0 {
		t.Fatal("linux mode has no boundary")
	}
}

func TestBootContiguitas(t *testing.T) {
	k := New(testConfig(ModeContiguitas, 256*mb))
	wantBoundary := (256 * mb / 8) / mem.PageSize
	if k.Boundary() != wantBoundary {
		t.Fatalf("boundary = %d, want %d", k.Boundary(), wantBoundary)
	}
	if k.UnmovableRegionBytes() != 32*mb {
		t.Fatalf("unmovable region = %d", k.UnmovableRegionBytes())
	}
}

func TestAllocRouting(t *testing.T) {
	k := New(testConfig(ModeContiguitas, 256*mb))
	u, err := k.Alloc(mem.Order4K, mem.MigrateUnmovable, mem.SrcSlab)
	if err != nil {
		t.Fatal(err)
	}
	if u.PFN >= k.Boundary() {
		t.Fatalf("unmovable alloc at %d beyond boundary %d", u.PFN, k.Boundary())
	}
	m, err := k.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcUser)
	if err != nil {
		t.Fatal(err)
	}
	if m.PFN < k.Boundary() {
		t.Fatalf("movable alloc at %d below boundary %d", m.PFN, k.Boundary())
	}
	k.Free(u)
	k.Free(m)
	if k.LiveAllocations() != 0 {
		t.Fatal("leak")
	}
}

func TestFreeMisuseReturnsTypedErrors(t *testing.T) {
	k := New(testConfig(ModeLinux, 64*mb))
	p, _ := k.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcUser)
	if err := k.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := k.Free(p); !errors.Is(err, ErrStaleHandle) {
		t.Fatalf("double free: got %v, want ErrStaleHandle", err)
	}
	if err := k.Free(nil); !errors.Is(err, ErrNilHandle) {
		t.Fatalf("Free(nil): got %v, want ErrNilHandle", err)
	}
	q, _ := k.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcUser)
	if err := k.Pin(q); err != nil {
		t.Fatal(err)
	}
	if err := k.Free(q); !errors.Is(err, ErrPagePinned) {
		t.Fatalf("free of pinned page: got %v, want ErrPagePinned", err)
	}
	k.Unpin(q)
	if err := k.Free(q); err != nil {
		t.Fatal(err)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPinMigratesToUnmovableRegion(t *testing.T) {
	k := New(testConfig(ModeContiguitas, 256*mb))
	p, err := k.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcNetworking)
	if err != nil {
		t.Fatal(err)
	}
	if p.PFN < k.Boundary() {
		t.Fatal("movable alloc must start in movable region")
	}
	if err := k.Pin(p); err != nil {
		t.Fatal(err)
	}
	if p.PFN >= k.Boundary() {
		t.Fatalf("pinned page at %d must have moved below boundary %d", p.PFN, k.Boundary())
	}
	if !p.Pinned || !k.PM().IsPinned(p.PFN) {
		t.Fatal("page not marked pinned")
	}
	if p.MT != mem.MigrateUnmovable {
		t.Fatal("pinned page must become unmovable")
	}
	if k.PinMigrations != 1 {
		t.Fatalf("pin migrations = %d", k.PinMigrations)
	}
	k.Unpin(p)
	k.Free(p)
}

func TestPinInLinuxModeStaysPut(t *testing.T) {
	k := New(testConfig(ModeLinux, 64*mb))
	p, _ := k.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcNetworking)
	before := p.PFN
	if err := k.Pin(p); err != nil {
		t.Fatal(err)
	}
	if p.PFN != before {
		t.Fatal("linux pin must not migrate")
	}
	// The scatter: a pinned page now sits wherever it was.
	st := k.PM().Scan([]int{mem.Order2M})
	if st.UnmovableBlocks[mem.Order2M] == 0 {
		t.Fatal("pinned page must make its block unmovable")
	}
}

func TestPageCacheReclaim(t *testing.T) {
	k := New(testConfig(ModeLinux, 64*mb))
	var pages []*Page
	for i := 0; i < 100; i++ {
		p, err := k.AllocPageCache(mem.Order4K, mem.SrcFilesystem)
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, p)
	}
	freed := k.reclaim(k.zone, 50)
	if freed < 50 {
		t.Fatalf("reclaimed %d, want >= 50", freed)
	}
	// Oldest dropped first.
	if k.Live(pages[0]) {
		t.Fatal("oldest cache page must be reclaimed first")
	}
	if !k.Live(pages[99]) {
		t.Fatal("newest cache page must survive")
	}
}

func TestPageCacheHolderFree(t *testing.T) {
	k := New(testConfig(ModeLinux, 64*mb))
	p, _ := k.AllocPageCache(mem.Order4K, mem.SrcFilesystem)
	k.Free(p) // holder frees before reclaim touches it
	if freed := k.reclaim(k.zone, 10); freed != 0 {
		t.Fatalf("nothing left to reclaim, got %d", freed)
	}
}

func TestDirectReclaimOnPressure(t *testing.T) {
	cfg := testConfig(ModeLinux, 64*mb)
	k := New(cfg)
	// Fill memory with page cache (page cache is recycled by reclaim, so
	// bound the loop by capacity), then demand an allocation: the slow
	// path must reclaim instead of failing.
	capacity := int(k.zone.Pages())
	for i := 0; i < capacity; i++ {
		if _, err := k.AllocPageCache(mem.Order4K, mem.SrcFilesystem); err != nil {
			t.Fatalf("page cache alloc %d failed: %v", i, err)
		}
	}
	p, err := k.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcUser)
	if err != nil {
		t.Fatalf("alloc after reclaim failed: %v", err)
	}
	if k.DirectReclaim == 0 {
		t.Fatal("direct reclaim must have run")
	}
	k.Free(p)
}

func TestKswapdKeepsWatermark(t *testing.T) {
	cfg := testConfig(ModeLinux, 64*mb)
	k := New(cfg)
	total := k.zone.Pages()
	// Consume memory down past the low watermark with page cache.
	for k.zone.FreePages() > total/50 {
		if _, err := k.AllocPageCache(mem.Order4K, mem.SrcFilesystem); err != nil {
			break
		}
	}
	k.EndTick()
	low := uint64(float64(total) * cfg.WatermarkLow)
	if k.zone.FreePages() < low {
		t.Fatalf("kswapd left free=%d below low=%d", k.zone.FreePages(), low)
	}
	if k.KswapdRuns == 0 {
		t.Fatal("kswapd must have run")
	}
}

func TestCompactionCreatesHugePage(t *testing.T) {
	cfg := testConfig(ModeLinux, 64*mb)
	cfg.CompactBudgetPerTick = 0 // unlimited: test the mechanism itself
	k := New(cfg)
	rng := stats.NewRNG(7)
	// Fragment: fill with 4KB movable pages, free ~40% randomly.
	var pages []*Page
	for {
		p, err := k.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcUser)
		if err != nil {
			break
		}
		pages = append(pages, p)
	}
	for _, p := range pages {
		if rng.Bool(0.4) {
			k.Free(p)
		}
	}
	if k.zone.LargestFreeOrder() >= mem.Order2M {
		t.Skip("not fragmented enough for this seed")
	}
	p, err := k.Alloc(mem.Order2M, mem.MigrateMovable, mem.SrcUser)
	if err != nil {
		t.Fatalf("2MB alloc with compaction failed: %v", err)
	}
	if k.CompactSuccess == 0 {
		t.Fatal("compaction must have produced the block")
	}
	if p.Order != mem.Order2M {
		t.Fatal("wrong order")
	}
	if err := k.zone.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactionBudgetDefers(t *testing.T) {
	cfg := testConfig(ModeLinux, 64*mb)
	cfg.CompactBudgetPerTick = 64 // far below any candidate's cost
	k := New(cfg)
	rng := stats.NewRNG(7)
	var pages []*Page
	for {
		p, err := k.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcUser)
		if err != nil {
			break
		}
		pages = append(pages, p)
	}
	for _, p := range pages {
		if rng.Bool(0.4) {
			k.Free(p)
		}
	}
	if _, err := k.Alloc(mem.Order2M, mem.MigrateMovable, mem.SrcUser); err == nil {
		t.Skip("free pattern coalesced; no compaction needed")
	}
	if k.CompactDeferred == 0 {
		t.Fatal("budget-bound compaction must defer")
	}
	// Direct (HugeTLB) compaction ignores the budget.
	res := k.AllocHugeTLB(mem.Order2M, 1)
	if res.Allocated != 1 {
		t.Fatal("direct compaction must succeed despite the budget")
	}
}

func TestCompactionBlockedByScatteredUnmovable(t *testing.T) {
	cfg := testConfig(ModeLinux, 64*mb)
	k := New(cfg)
	// Allocate one unmovable 4KB page in every 2MB block: compaction
	// can no longer form any huge page — the paper's core observation.
	nblocks := k.PM().NumPageblocks()
	placed := uint64(0)
	var fill []*Page
	for placed < nblocks {
		p, err := k.Alloc(mem.Order4K, mem.MigrateUnmovable, mem.SrcSlab)
		if err != nil {
			t.Fatal(err)
		}
		blk := k.PM().PageblockOf(p.PFN)
		if blk == placed {
			placed++
			continue
		}
		fill = append(fill, p)
	}
	// Free the filler so plenty of free memory exists — yet no huge page
	// can be compacted.
	for _, p := range fill {
		k.Free(p)
	}
	if _, err := k.Alloc(mem.Order2M, mem.MigrateMovable, mem.SrcUser); err == nil {
		t.Fatal("2MB alloc must fail with one unmovable page per block")
	}
	st := k.PM().Scan([]int{mem.Order2M})
	if st.UnmovableBlockFraction(mem.Order2M) != 1.0 {
		t.Fatalf("every block must be unmovable, got %v", st.UnmovableBlockFraction(mem.Order2M))
	}
}

func TestContiguitasImmuneToScatter(t *testing.T) {
	k := New(testConfig(ModeContiguitas, 64*mb))
	// The same adversarial unmovable stream as above cannot pollute the
	// movable region: all unmovable allocations are confined.
	for i := 0; i < 500; i++ {
		if _, err := k.Alloc(mem.Order4K, mem.MigrateUnmovable, mem.SrcSlab); err != nil {
			t.Fatal(err)
		}
	}
	st := k.PM().Scan([]int{mem.Order2M})
	unmovBlocks := st.UnmovableBlocks[mem.Order2M]
	regionBlocks := k.Boundary() / mem.PageblockPages
	if unmovBlocks > regionBlocks {
		t.Fatalf("unmovable blocks %d leaked beyond region (%d blocks)", unmovBlocks, regionBlocks)
	}
	// Movable region: a 2MB alloc must still succeed trivially.
	if _, err := k.Alloc(mem.Order2M, mem.MigrateMovable, mem.SrcUser); err != nil {
		t.Fatal(err)
	}
}

func TestUrgentExpandOnUnmovablePressure(t *testing.T) {
	cfg := testConfig(ModeContiguitas, 256*mb)
	k := New(cfg)
	before := k.Boundary()
	// Exhaust the unmovable region; the next allocation must trigger an
	// urgent expansion rather than failing.
	var pages []*Page
	for {
		p, err := k.Alloc(mem.Order4K, mem.MigrateUnmovable, mem.SrcSlab)
		if err != nil {
			t.Fatalf("unmovable alloc failed despite expandable boundary: %v", err)
		}
		pages = append(pages, p)
		if k.Boundary() > before {
			break
		}
		if uint64(len(pages)) > k.PM().NPages {
			t.Fatal("runaway")
		}
	}
	if k.Expands == 0 {
		t.Fatal("expansion counter not bumped")
	}
	for _, p := range pages {
		k.Free(p)
	}
}

func TestExpandEvacuatesMovablePages(t *testing.T) {
	cfg := testConfig(ModeContiguitas, 256*mb)
	k := New(cfg)
	// Occupy the bottom of the movable region so expansion must migrate.
	// Movable allocations are highest-first, so grab everything, then
	// free the top half.
	var pages []*Page
	for {
		p, err := k.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcUser)
		if err != nil {
			break
		}
		pages = append(pages, p)
	}
	// Free 75% (the later allocations are lower; keep some low ones).
	for i, p := range pages {
		if i%4 != 3 {
			k.Free(p)
			pages[i] = nil
		}
	}
	moved := k.ExpandUnmovable(16 * mb / mem.PageSize)
	if moved == 0 {
		t.Fatal("expansion failed")
	}
	if k.SWMigrations == 0 {
		t.Fatal("expansion must have migrated pages out of the takeover range")
	}
	// All surviving handles must still point at valid allocated frames
	// in the movable region.
	for _, p := range pages {
		if p == nil {
			continue
		}
		if p.PFN < k.Boundary() {
			t.Fatalf("movable handle at %d below boundary %d", p.PFN, k.Boundary())
		}
		if !k.Live(p) {
			t.Fatal("handle lost")
		}
	}
	if err := k.mov.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := k.unmov.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShrinkWithoutHWStopsAtUnmovable(t *testing.T) {
	cfg := testConfig(ModeContiguitas, 256*mb)
	cfg.MinUnmovableBytes = 2 * mb
	k := New(cfg)
	// Place an unmovable allocation near the top of the unmovable region
	// by filling the region and freeing all but the top block.
	var pages []*Page
	for {
		p, err := k.Alloc(mem.Order4K, mem.MigrateUnmovable, mem.SrcSlab)
		if err != nil {
			break
		}
		if k.Boundary() > mem.BytesToPages(cfg.InitialUnmovableBytes) {
			k.Free(p)
			break
		}
		pages = append(pages, p)
	}
	var top *Page
	for _, p := range pages {
		if top == nil || p.PFN > top.PFN {
			top = p
		}
	}
	for _, p := range pages {
		if p != top {
			k.Free(p)
		}
	}
	got := k.ShrinkUnmovable(k.Boundary())
	// Shrink must stop above the obstacle.
	if k.Boundary() <= top.PFN {
		t.Fatalf("boundary %d fell below the unmovable page %d", k.Boundary(), top.PFN)
	}
	_ = got
	if err := k.unmov.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShrinkWithHWMovesUnmovable(t *testing.T) {
	cfg := testConfig(ModeContiguitas, 256*mb)
	cfg.HWMover = NewAnalyticMover()
	cfg.MinUnmovableBytes = 2 * mb
	k := New(cfg)
	// Same obstacle as before, but with Contiguitas-HW the page is
	// live-migrated downward and the shrink proceeds.
	var pages []*Page
	for uint64(len(pages)) < k.Boundary()/2 {
		p, err := k.Alloc(mem.Order4K, mem.MigrateUnmovable, mem.SrcNetworking)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.Pin(p); err != nil {
			t.Fatal(err)
		}
		pages = append(pages, p)
	}
	var top *Page
	for _, p := range pages {
		if top == nil || p.PFN > top.PFN {
			top = p
		}
	}
	for _, p := range pages {
		if p != top {
			k.Unpin(p)
			k.Free(p)
		}
	}
	oldB := k.Boundary()
	moved := k.ShrinkUnmovable(oldB)
	if moved == 0 {
		t.Fatal("HW-assisted shrink must succeed")
	}
	if k.HWMigrations == 0 {
		t.Fatal("the pinned page must have been HW-migrated")
	}
	if top.PFN >= k.Boundary() {
		t.Fatalf("pinned page at %d outside new unmovable region %d", top.PFN, k.Boundary())
	}
	if !k.PM().IsPinned(top.PFN) {
		t.Fatal("pin flag lost across HW migration")
	}
	if err := k.unmov.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := k.mov.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestResizerShrinksIdleRegion(t *testing.T) {
	cfg := testConfig(ModeContiguitas, 256*mb)
	cfg.ResizeThresholds = resize.Thresholds{Unmovable: 1, Movable: 1}
	k := New(cfg)
	before := k.Boundary()
	// Idle machine: pressure is zero everywhere, the resizer must
	// gradually give unmovable memory back to the movable region.
	k.RunTicks(500)
	if k.Boundary() >= before {
		t.Fatalf("boundary %d did not shrink from %d", k.Boundary(), before)
	}
	if k.Shrinks == 0 {
		t.Fatal("no shrink recorded")
	}
}

func TestAllocUserTHP(t *testing.T) {
	k := New(testConfig(ModeContiguitas, 256*mb))
	m, err := k.AllocUser(10*mb, true)
	if err != nil {
		t.Fatal(err)
	}
	if cov := m.Coverage(mem.Order2M); cov != 1.0 {
		t.Fatalf("THP coverage on fresh machine = %v, want 1", cov)
	}
	k.FreeMapping(m)
	m, err = k.AllocUser(10*mb, false)
	if err != nil {
		t.Fatal(err)
	}
	if cov := m.Coverage(mem.Order2M); cov != 0 {
		t.Fatalf("no-THP coverage = %v, want 0", cov)
	}
	if m.BlockCount(mem.Order4K) != int(10*mb/mem.PageSize) {
		t.Fatal("wrong 4K block count")
	}
	k.FreeMapping(m)
}

func TestPromoteCollapsesBasePages(t *testing.T) {
	k := New(testConfig(ModeLinux, 64*mb))
	m, err := k.AllocUser(4*mb, false)
	if err != nil {
		t.Fatal(err)
	}
	n := k.Promote(m, 0)
	if n != 2 {
		t.Fatalf("collapses = %d, want 2", n)
	}
	if cov := m.Coverage(mem.Order2M); cov != 1.0 {
		t.Fatalf("coverage after promote = %v", cov)
	}
	k.FreeMapping(m)
	if k.LiveAllocations() != 0 {
		t.Fatal("leak after promote+free")
	}
}

func TestHugeTLB1GFailsOnFragmentedLinux(t *testing.T) {
	cfg := testConfig(ModeLinux, 2*gb)
	k := New(cfg)
	// Scatter unmovable pages across the space.
	rng := stats.NewRNG(3)
	var movable []*Page
	for {
		p, err := k.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcUser)
		if err != nil {
			break
		}
		movable = append(movable, p)
	}
	for i, p := range movable {
		if rng.Bool(0.5) {
			k.Free(p)
			movable[i] = nil
		}
	}
	for i := 0; i < 200; i++ {
		k.Alloc(mem.Order4K, mem.MigrateUnmovable, mem.SrcSlab)
	}
	res := k.AllocHugeTLB(mem.Order1G, 1)
	if res.Allocated != 0 {
		t.Fatal("1GB alloc must fail on a fragmented Linux machine")
	}
}

func TestHugeTLB1GSucceedsOnContiguitas(t *testing.T) {
	cfg := testConfig(ModeContiguitas, 4*gb)
	k := New(cfg)
	// Same hostile unmovable stream; confinement keeps the movable
	// region compactable.
	for i := 0; i < 2000; i++ {
		if _, err := k.Alloc(mem.Order4K, mem.MigrateUnmovable, mem.SrcSlab); err != nil {
			t.Fatal(err)
		}
	}
	rng := stats.NewRNG(3)
	var movable []*Page
	for {
		p, err := k.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcUser)
		if err != nil {
			break
		}
		movable = append(movable, p)
	}
	for i, p := range movable {
		if rng.Bool(0.6) {
			k.Free(p)
			movable[i] = nil
		}
	}
	res := k.AllocHugeTLB(mem.Order1G, 1)
	if res.Allocated != 1 {
		t.Fatalf("1GB alloc must succeed under Contiguitas (compaction unblocked), got %d", res.Allocated)
	}
}

func TestMigrationCostModelLinearScaling(t *testing.T) {
	m := DefaultMigrationCostModel()
	c1 := m.UnavailableCycles(1)
	c8 := m.UnavailableCycles(8)
	if c8 <= c1 {
		t.Fatal("cost must grow with victims")
	}
	perVictim := (c8 - c1) / 7
	if perVictim < 500 || perVictim > 1200 {
		t.Fatalf("per-victim cost = %d cycles, want within Figure 13's range", perVictim)
	}
	// Paper calibration: ~2.5K cycles at 1 victim, ~8K at 8.
	if c1 < 2000 || c1 > 3500 {
		t.Fatalf("1-victim cost = %d", c1)
	}
	if c8 < 7000 || c8 > 9500 {
		t.Fatalf("8-victim cost = %d", c8)
	}
	if m.UnavailableCycles(-5) != m.UnavailableCycles(0) {
		t.Fatal("negative victims must clamp")
	}
}

func TestBlockMigrationCost(t *testing.T) {
	m := DefaultMigrationCostModel()
	base := m.BlockUnavailableCycles(4, 0)
	big := m.BlockUnavailableCycles(4, mem.Order2M)
	if big-base != (mem.PageblockPages-1)*m.CopyCyclesPerPage {
		t.Fatal("block copy cost must add per-page copies")
	}
}

func TestAnalyticMoverScalesWithOrder(t *testing.T) {
	mv := NewAnalyticMover()
	c0, err0 := mv.Migrate(0, 1, 0)
	c9, err9 := mv.Migrate(0, 512, mem.Order2M)
	if err0 != nil || err9 != nil {
		t.Fatalf("analytic mover failed: %v / %v", err0, err9)
	}
	if c9 != c0*512 {
		t.Fatalf("2MB move = %d, want 512x of %d", c9, c0)
	}
	// Copy-engine work for a 4KB page: ~8K cycles, overlapped across
	// slices to the paper's ~2us wall-clock migration.
	if c0 < 4000 || c0 > 12000 {
		t.Fatalf("4KB HW migration = %d cycles of engine work, want ~8000", c0)
	}
}

func TestErrNoMemoryWrapped(t *testing.T) {
	cfg := testConfig(ModeLinux, 16*mb)
	k := New(cfg)
	var pages []*Page
	for {
		p, err := k.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcUser)
		if err != nil {
			if !errors.Is(err, ErrNoMemory) {
				t.Fatalf("error not wrapped: %v", err)
			}
			break
		}
		pages = append(pages, p)
	}
	if k.AllocFail == 0 {
		t.Fatal("failure counter not bumped")
	}
	for _, p := range pages {
		k.Free(p)
	}
}

func TestPSIPressureRisesOnFailure(t *testing.T) {
	cfg := testConfig(ModeContiguitas, 64*mb)
	cfg.MaxUnmovableBytes = cfg.InitialUnmovableBytes // expansion forbidden
	k := New(cfg)
	for {
		if _, err := k.Alloc(mem.Order4K, mem.MigrateUnmovable, mem.SrcSlab); err != nil {
			break
		}
	}
	k.EndTick()
	if k.PSI().Pressure(1) == 0 { // psi.RegionUnmovable
		t.Fatal("unmovable pressure must rise after failures")
	}
}

// TestKernelRandomisedWorkload runs a mixed random workload in both modes
// and validates allocator invariants and handle consistency throughout.
func TestKernelRandomisedWorkload(t *testing.T) {
	for _, mode := range []Mode{ModeLinux, ModeContiguitas} {
		cfg := testConfig(mode, 128*mb)
		cfg.HWMover = NewAnalyticMover()
		k := New(cfg)
		rng := stats.NewRNG(99)
		var live []*Page
		for step := 0; step < 8000; step++ {
			r := rng.Float64()
			switch {
			case r < 0.40 || len(live) == 0:
				order := []int{0, 0, 0, 1, 2, 9}[rng.Intn(6)]
				mt := mem.MigrateMovable
				src := mem.SrcUser
				if rng.Bool(0.3) {
					mt = mem.MigrateUnmovable
					src = []mem.Source{mem.SrcNetworking, mem.SrcSlab, mem.SrcPageTable}[rng.Intn(3)]
				}
				if p, err := k.Alloc(order, mt, src); err == nil {
					live = append(live, p)
				}
			case r < 0.50:
				if p, err := k.AllocPageCache(mem.Order4K, mem.SrcFilesystem); err == nil {
					_ = p // kernel-owned; reclaimed under pressure
				}
			case r < 0.60:
				i := rng.Intn(len(live))
				p := live[i]
				if p.MT == mem.MigrateMovable && !p.Pinned && rng.Bool(0.5) {
					if err := k.Pin(p); err == nil && mode == ModeContiguitas && p.PFN >= k.Boundary() {
						t.Fatal("pinned page outside unmovable region")
					}
				}
			default:
				i := rng.Intn(len(live))
				p := live[i]
				if p.Pinned {
					k.Unpin(p)
				}
				k.Free(p)
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			if step%500 == 499 {
				k.EndTick()
			}
			if step%2000 == 1999 {
				k.checkInvariants(t)
				for _, p := range live {
					if !k.Live(p) {
						t.Fatal("lost a live handle")
					}
					if k.PM().BlockOrder(p.PFN) != int(p.Order) {
						t.Fatal("handle order mismatch")
					}
				}
			}
		}
	}
}

// checkInvariants validates every buddy in the kernel.
func (k *Kernel) checkInvariants(t *testing.T) {
	t.Helper()
	if k.cfg.Mode == ModeLinux {
		if err := k.zone.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return
	}
	if err := k.unmov.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := k.mov.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if k.unmov.End() != k.boundary || k.mov.Start() != k.boundary {
		t.Fatalf("boundary out of sync: %d / %d / %d", k.unmov.End(), k.boundary, k.mov.Start())
	}
}

func TestDefragUnmovableUnblocksShrink(t *testing.T) {
	cfg := testConfig(ModeContiguitas, 256*mb)
	cfg.HWMover = NewAnalyticMover()
	cfg.MinUnmovableBytes = 2 * mb
	k := New(cfg)
	// Scatter unmovable allocations across the region by allocating a
	// lot and freeing every other one.
	var pages []*Page
	for {
		p, err := k.Alloc(mem.Order4K, mem.MigrateUnmovable, mem.SrcSlab)
		if err != nil || k.Boundary() > mem.BytesToPages(cfg.InitialUnmovableBytes) {
			if err == nil {
				pages = append(pages, p)
			}
			break
		}
		pages = append(pages, p)
	}
	for i, p := range pages {
		if i%2 == 0 {
			k.Free(p)
			pages[i] = nil
		}
	}
	moved := k.DefragUnmovable()
	if moved == 0 {
		t.Fatal("defrag must relocate blocks downward")
	}
	// All survivors must have slid toward low addresses: the top
	// quarter of the region should now be free.
	top := k.Boundary() - k.Boundary()/4
	for p := top; p < k.Boundary(); p++ {
		if !k.PM().IsFree(p) {
			t.Fatalf("frame %d above %d still allocated after defrag", p, top)
		}
	}
	if err := k.unmov.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDefragRequiresHW(t *testing.T) {
	k := New(testConfig(ModeContiguitas, 64*mb))
	if k.DefragUnmovable() != 0 {
		t.Fatal("defrag without a Mover must be a no-op")
	}
	kl := New(testConfig(ModeLinux, 64*mb))
	if kl.DefragUnmovable() != 0 {
		t.Fatal("defrag in Linux mode must be a no-op")
	}
}

func TestResizerExpandsUnderSustainedPressure(t *testing.T) {
	cfg := testConfig(ModeContiguitas, 256*mb)
	cfg.ResizePeriodTicks = 5
	k := New(cfg)
	before := k.Boundary()
	// Saturate the unmovable region and keep failing allocations so
	// pressure builds; the periodic resizer (not just the urgent path)
	// must expand. Use MaxUnmovableBytes low enough that urgent
	// expansion stops, then raise pressure.
	var pages []*Page
	for {
		p, err := k.Alloc(mem.Order4K, mem.MigrateUnmovable, mem.SrcSlab)
		if err != nil {
			break
		}
		pages = append(pages, p)
		if uint64(len(pages)) > k.PM().NPages/2 {
			break
		}
	}
	if k.Boundary() <= before {
		t.Fatal("expansion should have occurred")
	}
	for _, p := range pages {
		k.Free(p)
	}
}

func TestStealStatsLinuxOnly(t *testing.T) {
	kc := New(testConfig(ModeContiguitas, 64*mb))
	if s := kc.ZoneSteals(); s.Converting != 0 || s.Polluting != 0 {
		t.Fatal("contiguitas has no zone steals")
	}
	kl := New(testConfig(ModeLinux, 64*mb))
	if _, err := kl.Alloc(mem.Order4K, mem.MigrateUnmovable, mem.SrcSlab); err != nil {
		t.Fatal(err)
	}
	if s := kl.ZoneSteals(); s.Converting+s.Polluting == 0 {
		t.Fatal("first unmovable alloc must steal from movable lists")
	}
}

func TestCompactionDeferBacksOffExponentially(t *testing.T) {
	cfg := testConfig(ModeLinux, 64*mb)
	cfg.CompactBudgetPerTick = 0
	k := New(cfg)
	// Make all blocks uncompactable: one unmovable page in every
	// pageblock (allocate until each block is covered, keeping the
	// misses allocated so placement advances).
	covered := make(map[uint64]bool)
	nblocks := k.PM().NumPageblocks()
	for uint64(len(covered)) < nblocks {
		p, err := k.Alloc(mem.Order4K, mem.MigrateUnmovable, mem.SrcSlab)
		if err != nil {
			t.Fatal(err)
		}
		covered[k.PM().PageblockOf(p.PFN)] = true
	}
	// Free scattered movable singles so memory exists but never 2MB.
	rng := stats.NewRNG(5)
	var movable []*Page
	for {
		p, err := k.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcUser)
		if err != nil {
			break
		}
		movable = append(movable, p)
	}
	for _, p := range movable {
		if rng.Bool(0.3) {
			k.Free(p)
		}
	}
	// Repeated 2MB allocations: the first runs a full (failing) scan,
	// subsequent ones in the defer window skip scanning entirely.
	k.Alloc(mem.Order2M, mem.MigrateMovable, mem.SrcUser)
	runsAfterFirst := k.CompactRuns
	deferredBefore := k.CompactDeferred
	for i := 0; i < 10; i++ {
		k.Alloc(mem.Order2M, mem.MigrateMovable, mem.SrcUser)
	}
	if k.CompactRuns != runsAfterFirst+10 {
		t.Fatal("compact entry count wrong")
	}
	if k.CompactDeferred < deferredBefore+10 {
		t.Fatalf("deferral not engaged: %d -> %d", deferredBefore, k.CompactDeferred)
	}
}

func TestAccessorsAndStrings(t *testing.T) {
	k := New(testConfig(ModeContiguitas, 64*mb))
	if k.Config().MemBytes != 64*mb {
		t.Fatal("Config accessor")
	}
	if k.Tick() != 0 {
		t.Fatal("fresh kernel tick")
	}
	k.EndTick()
	if k.Tick() != 1 {
		t.Fatal("tick must advance")
	}
	if k.String() == "" || ModeLinux.String() != "linux" || ModeContiguitas.String() != "contiguitas" {
		t.Fatal("string forms")
	}
	if New(testConfig(ModeLinux, 64*mb)).UnmovableRegionBytes() != 0 {
		t.Fatal("linux mode has no unmovable region")
	}
	if k.ReclaimablePages() != 0 {
		t.Fatal("fresh kernel holds no cache")
	}
	p, _ := k.AllocPageCache(mem.Order4K, mem.SrcFilesystem)
	if k.ReclaimablePages() != 1 {
		t.Fatal("cache accounting")
	}
	k.Free(p)
	if k.ReclaimablePages() != 0 {
		t.Fatal("cache accounting after free")
	}
}

func TestUnpinIdempotent(t *testing.T) {
	k := New(testConfig(ModeLinux, 64*mb))
	p, _ := k.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcNetworking)
	k.Unpin(p) // not pinned: no-op
	if p.Pinned {
		t.Fatal("unpin of unpinned page")
	}
	k.Pin(p)
	k.Pin(p) // already pinned: no-op
	k.Unpin(p)
	k.Unpin(p)
	k.Free(p)
}

func TestFreeHugeTLBReleasesReservation(t *testing.T) {
	k := New(testConfig(ModeContiguitas, 256*mb))
	res := k.AllocHugeTLB(mem.Order2M, 4)
	if res.Allocated != 4 {
		t.Fatalf("allocated = %d", res.Allocated)
	}
	before := k.FreePages()
	k.FreeHugeTLB(&res)
	if res.Allocated != 0 || len(res.Pages) != 0 {
		t.Fatal("reservation not cleared")
	}
	if k.FreePages() != before+4*mem.PageblockPages {
		t.Fatal("pages not returned")
	}
}

func TestCompactReclaimableCompaction(t *testing.T) {
	cfg := testConfig(ModeLinux, 64*mb)
	k := New(cfg)
	// Build a large cache FIFO, then reclaim most of it so the dead
	// prefix triggers compaction of the FIFO itself.
	for i := 0; i < 3000; i++ {
		if _, err := k.AllocPageCache(mem.Order4K, mem.SrcFilesystem); err != nil {
			t.Fatal(err)
		}
	}
	k.reclaim(k.zone, 2000)
	if len(k.reclaimable) > 1500 {
		t.Fatalf("FIFO not compacted: %d entries", len(k.reclaimable))
	}
	// Surviving entries must still free cleanly through their handles.
	k.reclaim(k.zone, 1<<30)
	if k.ReclaimablePages() != 0 {
		t.Fatal("full reclaim left cache pages")
	}
}

func TestEventSinkFiresAllEvents(t *testing.T) {
	k := New(testConfig(ModeContiguitas, 64*mb))
	sink := &countingSink{}
	k.SetEventSink(sink)
	p, _ := k.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcNetworking)
	c, _ := k.AllocPageCache(mem.Order4K, mem.SrcFilesystem)
	k.Pin(p)
	k.Unpin(p)
	k.EndTick()
	k.Free(p)
	k.Free(c)
	if sink.allocs != 1 || sink.cacheAllocs != 1 || sink.frees != 2 ||
		sink.pins != 1 || sink.unpins != 1 || sink.ticks != 1 {
		t.Fatalf("sink counts: %+v", *sink)
	}
	k.SetEventSink(nil)
	k.EndTick()
	if sink.ticks != 1 {
		t.Fatal("detached sink must not fire")
	}
}

type countingSink struct {
	allocs, cacheAllocs, frees, pins, unpins, ticks int
}

func (s *countingSink) OnAlloc(p *Page, cache bool) {
	if cache {
		s.cacheAllocs++
	} else {
		s.allocs++
	}
}
func (s *countingSink) OnFree(p *Page)  { s.frees++ }
func (s *countingSink) OnPin(p *Page)   { s.pins++ }
func (s *countingSink) OnUnpin(p *Page) { s.unpins++ }
func (s *countingSink) OnTick()         { s.ticks++ }

func TestExpandFailsWhenMovableFull(t *testing.T) {
	cfg := testConfig(ModeContiguitas, 64*mb)
	k := New(cfg)
	// Fill the movable region completely; expansion then cannot
	// evacuate the takeover range and must fail cleanly (donating any
	// carved frames back).
	var pages []*Page
	for {
		p, err := k.Alloc(mem.Order4K, mem.MigrateMovable, mem.SrcUser)
		if err != nil {
			break
		}
		pages = append(pages, p)
	}
	if got := k.ExpandUnmovable(4 * mem.PageblockPages); got != 0 {
		t.Fatalf("expansion into a full movable region returned %d", got)
	}
	if err := k.mov.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, p := range pages {
		k.Free(p)
	}
}
