package kernel

import (
	"fmt"
	"hash/fnv"
	"math"
	"reflect"

	"contiguitas/internal/mem"
	"contiguitas/internal/pressure"
	"contiguitas/internal/psi"
	"contiguitas/internal/stats"
)

// floatBits is the canonical bit pattern a float contributes to the
// state hash.
func floatBits(f float64) uint64 { return math.Float64bits(f) }

// Checkpoint/restore codec for the whole simulated machine.
//
// Quiesce point. A checkpoint is only meaningful at the EndTick
// boundary: migrations are synchronous within a tick (the retry ladder
// runs to completion inside one migrateTo call), so there is no
// in-flight migration to serialize — the ladder is quiesced by
// construction. Compaction, in contrast, keeps cross-tick state (per
// region scanner cursors, deferral backoff, and the retry queue of
// failed targets); that state is serialized explicitly, re-keyed from
// buddy pointers to stable region indices.
//
// Serialized versus re-derived:
//
//   - Serialized: the frame table (meta words, pageblock migratetypes),
//     buddy free lists in backing order, live-allocation records, the
//     reclaimable FIFO (including consumed-slot sentinels and the head
//     cursor — FIFO order is behavior), compaction cursors/defer/retry,
//     PSI tracker state, the RNG streams, counters, and the watchdog
//     stall accumulators.
//   - Re-derived on restore, then proven equivalent to the serialized
//     originals: the free-list index (VerifyFlIdxWitness), the buddy
//     block histograms and free totals (cross-checked inside
//     RestoreBuddy), the covering-order stamps (VerifyCoveringStamps),
//     the contiguity index (rebuilt cold and rescanned, compared against
//     the serialized Scan witness), and the reclaimable FIFO's linkage
//     (each handle's cacheIdx cross-checked against the FIFO slots).
//   - Rebuilt fresh, not state: page-handle identities (the arena),
//     memoized errors, scratch buffers, telemetry attachments (ring,
//     registry, sampler, sink), and the migration cost model. Callers
//     re-attach telemetry after restore; handle holders rehydrate
//     through PageAt.
//
// directCompact is not serialized: it is true only inside an explicit
// AllocHugeTLB call, never across the EndTick boundary a checkpoint is
// taken at.

// PageState is one serialized live allocation.
type PageState struct {
	PFN      uint64
	CacheIdx int32
	Order    int8
	MT       mem.MigrateType
	Src      mem.Source
	Pinned   bool
}

// CompactTargetState is one queued compaction retry target.
type CompactTargetState struct {
	PFN   uint64
	Order int
}

// CompactRegionState is one region's cross-tick compaction machinery.
// Region is the index into the kernel's region list (ModeLinux: 0 =
// zone; ModeContiguitas: 0 = unmovable, 1 = movable).
type CompactRegionState struct {
	Region     int
	Cursors    [mem.MaxOrder + 1]uint64
	DeferShift uint
	DeferUntil uint64
	Retry      []CompactTargetState
}

// State is the serializable state of one simulated machine, sufficient
// to rebuild a kernel that continues the run bit-for-bit.
type State struct {
	// Machine fingerprint: restore refuses a config that disagrees.
	MemBytes   uint64
	Mode       uint8
	Seed       uint64
	HasHWMover bool

	Tick         uint64
	Boundary     uint64
	RNGS0, RNGS1 uint64
	Counters     Counters

	WdMigStall     uint64
	WdCompactStall uint64

	Phys mem.PhysMemState
	// Regions holds the buddy states in region-list order (ModeLinux:
	// [zone]; ModeContiguitas: [unmovable, movable]).
	Regions []mem.BuddyState

	// Live lists every allocation handle in ascending PFN order.
	Live []PageState

	Reclaimable      []uint32
	ReclaimHead      int
	ReclaimablePages uint64

	Compact []CompactRegionState

	PSI psi.PerRegionState

	// Scan is the pre-checkpoint contiguity scan, kept as the
	// equivalence witness the restored (rebuilt-cold) index is proven
	// against.
	Scan *mem.ContiguityStats

	// HasPressure is part of the machine fingerprint: a snapshot taken
	// with the pressure ladder enabled must be restored with it enabled
	// (and vice versa), or the continuation would diverge.
	HasPressure bool
	// Pressure is the ladder's behavior-bearing state (nil when
	// disabled). Registered victims and the migration-in-flight count
	// are not serialized: victims re-register through their owners'
	// constructors, and checkpoints only happen at the EndTick boundary
	// where no migration is in flight.
	Pressure *PressureState
}

// PressureState is the serialized pressure-ladder state.
type PressureState struct {
	Gate       pressure.GateState
	GatePSI    psi.TrackerState
	Esc        pressure.Escalation
	OOMHistory []pressure.Kill
}

// regionBuddies returns the kernel's buddies in stable region order.
func (k *Kernel) regionBuddies() []*mem.Buddy {
	if k.cfg.Mode == ModeLinux {
		return []*mem.Buddy{k.zone}
	}
	return []*mem.Buddy{k.unmov, k.mov}
}

// ExportState serializes the machine. Call it only at the EndTick
// boundary (see the package comment on quiescing).
func (k *Kernel) ExportState() *State {
	st := &State{
		MemBytes:         k.cfg.MemBytes,
		Mode:             uint8(k.cfg.Mode),
		Seed:             k.cfg.Seed,
		HasHWMover:       k.cfg.HWMover != nil,
		Tick:             k.tick,
		Boundary:         k.boundary,
		Counters:         k.Counters,
		WdMigStall:       k.wdMigStall,
		WdCompactStall:   k.wdCompactStall,
		Phys:             k.pm.ExportState(),
		Reclaimable:      append([]uint32(nil), k.reclaimable...),
		ReclaimHead:      k.reclaimHead,
		ReclaimablePages: k.reclaimablePages,
		PSI:              k.psi.State(),
		Scan:             k.pm.Scan(mem.ScanOrders),
	}
	st.RNGS0, st.RNGS1 = k.rng.State()
	if k.pcfg != nil {
		st.HasPressure = true
		st.Pressure = &PressureState{
			Gate:       k.gate.State(),
			GatePSI:    k.gatePSI.State(),
			Esc:        k.esc,
			OOMHistory: append([]pressure.Kill(nil), k.oomHistory...),
		}
	}
	buddies := k.regionBuddies()
	for _, b := range buddies {
		st.Regions = append(st.Regions, b.ExportState())
	}
	for pfn := uint64(0); pfn < k.pm.NPages; pfn++ {
		p := k.live.get(pfn)
		if p == nil {
			continue
		}
		st.Live = append(st.Live, PageState{
			PFN: p.PFN, CacheIdx: p.cacheIdx, Order: p.Order,
			MT: p.MT, Src: p.Src, Pinned: p.Pinned,
		})
	}
	for i, b := range buddies {
		cs := CompactRegionState{Region: i}
		if cur := k.compactCursor[b]; cur != nil {
			cs.Cursors = *cur
		}
		if ds := k.compactDefer[b]; ds != nil {
			cs.DeferShift = ds.shift
			cs.DeferUntil = ds.until
		}
		for _, t := range k.compactRetry[b] {
			cs.Retry = append(cs.Retry, CompactTargetState{PFN: t.pfn, Order: t.order})
		}
		st.Compact = append(st.Compact, cs)
	}
	return st
}

// Restore rebuilds a machine from serialized state. cfg must describe
// the same machine the state was exported from (size, mode, seed, HW
// mover presence); ablation flags and cost parameters are taken from
// cfg as configuration. Telemetry is not restored — re-attach the ring,
// sampler, and sink afterwards. The injected fault state travels
// separately (fault.InjectorState); pass the rebuilt injector in
// cfg.Faults and Restore re-binds its clock to the new kernel.
//
// Restore re-derives every derived structure and proves it equivalent
// to the serialized original (see the package comment), then runs
// CheckInvariants before handing the kernel back.
func Restore(cfg Config, st *State) (*Kernel, error) {
	if cfg.MemBytes != st.MemBytes {
		return nil, fmt.Errorf("kernel: restore: config MemBytes %d, snapshot %d", cfg.MemBytes, st.MemBytes)
	}
	if uint8(cfg.Mode) != st.Mode {
		return nil, fmt.Errorf("kernel: restore: config mode %v, snapshot %v", cfg.Mode, Mode(st.Mode))
	}
	if cfg.Seed != st.Seed {
		return nil, fmt.Errorf("kernel: restore: config seed %d, snapshot %d", cfg.Seed, st.Seed)
	}
	if (cfg.HWMover != nil) != st.HasHWMover {
		return nil, fmt.Errorf("kernel: restore: config HW mover %v, snapshot %v", cfg.HWMover != nil, st.HasHWMover)
	}
	if (cfg.Pressure != nil) != st.HasPressure {
		return nil, fmt.Errorf("kernel: restore: config pressure %v, snapshot %v", cfg.Pressure != nil, st.HasPressure)
	}

	pm, err := mem.RestorePhysMem(st.Phys)
	if err != nil {
		return nil, err
	}
	wantRegions := 1
	if cfg.Mode == ModeContiguitas {
		wantRegions = 2
	}
	if len(st.Regions) != wantRegions {
		return nil, fmt.Errorf("kernel: restore: %d regions serialized, mode %v wants %d",
			len(st.Regions), cfg.Mode, wantRegions)
	}
	buddies := make([]*mem.Buddy, len(st.Regions))
	for i, bs := range st.Regions {
		b, err := mem.RestoreBuddy(pm, bs)
		if err != nil {
			return nil, fmt.Errorf("kernel: restore region %d: %w", i, err)
		}
		buddies[i] = b
	}

	k := &Kernel{
		cfg:              cfg,
		pm:               pm,
		boundary:         st.Boundary,
		psi:              psi.NewPerRegion(halfLifeOr(cfg.PSIHalfLifeTicks)),
		tick:             st.Tick,
		rng:              stats.NewRNG(cfg.Seed),
		live:             newLiveTable(pm.NPages),
		migCost:          DefaultMigrationCostModel(),
		reclaimable:      append([]uint32(nil), st.Reclaimable...),
		reclaimHead:      st.ReclaimHead,
		reclaimablePages: st.ReclaimablePages,
		wdMigStall:       st.WdMigStall,
		wdCompactStall:   st.WdCompactStall,
		Counters:         st.Counters,
	}
	k.rng.SetState(st.RNGS0, st.RNGS1)
	k.psi.SetState(st.PSI)
	if cfg.Pressure != nil {
		k.pcfg = cfg.Pressure.Normalized()
		k.gatePSI = psi.NewTracker(float64(k.pcfg.GateHalfLifeTicks))
		if st.Pressure == nil {
			return nil, fmt.Errorf("kernel: restore: HasPressure set but no pressure state serialized")
		}
		k.gate.SetState(st.Pressure.Gate)
		k.gatePSI.SetState(st.Pressure.GatePSI)
		k.esc = st.Pressure.Esc
		k.oomHistory = append([]pressure.Kill(nil), st.Pressure.OOMHistory...)
	}
	if cfg.Mode == ModeLinux {
		k.zone = buddies[0]
	} else {
		k.unmov, k.mov = buddies[0], buddies[1]
		if k.unmov.End() != st.Boundary || k.mov.Start() != st.Boundary {
			return nil, fmt.Errorf("kernel: restore: regions [%d,%d)+[%d,%d) disagree with boundary %d",
				k.unmov.Start(), k.unmov.End(), k.mov.Start(), k.mov.End(), st.Boundary)
		}
	}

	// Live handles: fresh identities, serialized contents. The frame
	// table's agreement (order, pin flags, allocated-head status) is
	// proven by CheckInvariants below.
	for _, ps := range st.Live {
		p := k.newPage()
		*p = Page{PFN: ps.PFN, cacheIdx: ps.CacheIdx, Order: ps.Order,
			MT: ps.MT, Src: ps.Src, Pinned: ps.Pinned}
		if ps.PFN >= pm.NPages {
			return nil, fmt.Errorf("kernel: restore: live pfn %d out of range", ps.PFN)
		}
		if k.live.get(ps.PFN) != nil {
			return nil, fmt.Errorf("kernel: restore: duplicate live pfn %d", ps.PFN)
		}
		k.live.set(ps.PFN, p)
	}

	// Reclaimable FIFO: the serialized slots must agree with the linkage
	// re-derived from the handles' cacheIdx fields — every live slot
	// points at a handle that points back, and no handle claims a slot
	// the FIFO does not record.
	linked := 0
	for i, e := range k.reclaimable {
		if e == noCacheEntry {
			continue
		}
		p := k.live.get(uint64(e))
		if p == nil || p.cacheIdx != int32(i) {
			return nil, fmt.Errorf("kernel: restore: reclaimable slot %d (pfn %d) has no agreeing handle", i, e)
		}
		linked++
	}
	for _, ps := range st.Live {
		if ps.CacheIdx >= 0 {
			linked--
		}
	}
	if linked != 0 {
		return nil, fmt.Errorf("kernel: restore: reclaimable FIFO and handle cacheIdx linkage disagree")
	}

	// Compaction machinery, re-keyed from region indices to the new
	// buddy pointers.
	k.compactCursor = make(map[*mem.Buddy]*[mem.MaxOrder + 1]uint64)
	k.compactDefer = make(map[*mem.Buddy]*compactDeferState)
	k.compactRetry = make(map[*mem.Buddy][]compactTarget)
	for _, cs := range st.Compact {
		if cs.Region < 0 || cs.Region >= len(buddies) {
			return nil, fmt.Errorf("kernel: restore: compact state for region %d of %d", cs.Region, len(buddies))
		}
		b := buddies[cs.Region]
		cur := cs.Cursors
		k.compactCursor[b] = &cur
		k.compactDefer[b] = &compactDeferState{shift: cs.DeferShift, until: cs.DeferUntil}
		for _, t := range cs.Retry {
			k.compactRetry[b] = append(k.compactRetry[b], compactTarget{pfn: t.PFN, order: t.Order})
		}
	}

	if cfg.Faults != nil {
		cfg.Faults.SetClock(func() uint64 { return k.tick })
	}

	// Equivalence proofs over the re-derived structures.
	if err := pm.VerifyFlIdxWitness(st.Phys.FlIdx); err != nil {
		return nil, err
	}
	if err := pm.VerifyCoveringStamps(); err != nil {
		return nil, err
	}
	if st.Scan != nil {
		rescanned := pm.Scan(mem.ScanOrders)
		if !reflect.DeepEqual(rescanned, st.Scan) {
			return nil, fmt.Errorf("kernel: restore: rebuilt contiguity index disagrees with serialized scan witness")
		}
	}
	if err := k.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("kernel: restore: invariants: %w", err)
	}
	return k, nil
}

// PageAt returns the live handle whose block starts at pfn (nil when
// none). Restore callers use it to rehydrate handles they held before
// the checkpoint; handle identity does not survive a restore, contents
// do.
func (k *Kernel) PageAt(pfn uint64) *Page { return k.live.get(pfn) }

// Hash computes the canonical state digest: a 64-bit FNV-1a over every
// serialized field in a fixed order (map-valued scan statistics are
// walked in ScanOrders order, never map order). Two machines with equal
// hashes at the same tick are byte-equivalent for every serialized
// structure; the chain hash in the snapshot envelope links these
// per-checkpoint digests into a tamper-evident history.
func (st *State) Hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(vs ...uint64) {
		for _, v := range vs {
			buf[0] = byte(v)
			buf[1] = byte(v >> 8)
			buf[2] = byte(v >> 16)
			buf[3] = byte(v >> 24)
			buf[4] = byte(v >> 32)
			buf[5] = byte(v >> 40)
			buf[6] = byte(v >> 48)
			buf[7] = byte(v >> 56)
			h.Write(buf[:])
		}
	}
	wb := func(v bool) {
		if v {
			w(1)
		} else {
			w(0)
		}
	}

	w(st.MemBytes, uint64(st.Mode), st.Seed)
	wb(st.HasHWMover)
	w(st.Tick, st.Boundary, st.RNGS0, st.RNGS1)
	w(st.WdMigStall, st.WdCompactStall)

	c := &st.Counters
	w(c.AllocOK, c.AllocFail, c.DirectReclaim, c.KswapdRuns, c.ReclaimedPages,
		c.CompactRuns, c.CompactSuccess, c.CompactDeferred,
		c.SWMigrations, c.SWMigrationCycles, c.HWMigrations, c.HWMigrationCycles, c.PinMigrations,
		c.MigrationFailures, c.MigrationRetries, c.BackoffCycles, c.SWFallbacks, c.MigrationDeferred,
		c.CarveFails, c.CompactRequeues, c.ResizeAborts, c.LivelockTrips,
		c.Expands, c.Shrinks, c.ShrinkFails, c.BoundaryMovedPages,
		c.AllocThrottled, c.ThrottleStallCycles, c.AllocShed,
		c.EmergencyShrinks, c.EmergencyShrinkPages, c.EmergencyShrinkDeferred,
		c.OOMKills, c.OOMKilledPages, c.THPFallbacks)

	w(st.Phys.NPages)
	for _, m := range st.Phys.Meta {
		w(uint64(m))
	}
	for _, m := range st.Phys.PbMT {
		w(uint64(m))
	}
	// FlIdx is a witness over the free lists hashed below; hashing it
	// too would be redundant.

	w(uint64(len(st.Regions)))
	for _, bs := range st.Regions {
		w(bs.Start, bs.End, uint64(bs.Policy))
		wb(bs.Fallback)
		w(bs.FreeTotal, bs.StealsConverting, bs.StealsPolluting)
		for _, f := range bs.FreeByList {
			w(f)
		}
		for o := 0; o <= mem.MaxOrder; o++ {
			for mt := 0; mt < mem.NumMigrateTypes; mt++ {
				l := bs.Lists[o][mt]
				w(uint64(len(l)))
				w(l...)
			}
		}
	}

	w(uint64(len(st.Live)))
	for _, p := range st.Live {
		w(p.PFN, uint64(uint32(p.CacheIdx)), uint64(uint8(p.Order)), uint64(p.MT), uint64(p.Src))
		wb(p.Pinned)
	}

	w(uint64(len(st.Reclaimable)))
	for _, e := range st.Reclaimable {
		w(uint64(e))
	}
	w(uint64(st.ReclaimHead), st.ReclaimablePages)

	w(uint64(len(st.Compact)))
	for _, cs := range st.Compact {
		w(uint64(cs.Region), uint64(cs.DeferShift), cs.DeferUntil)
		for _, cur := range cs.Cursors {
			w(cur)
		}
		w(uint64(len(cs.Retry)))
		for _, t := range cs.Retry {
			w(t.PFN, uint64(t.Order))
		}
	}

	for _, tr := range st.PSI.Trackers {
		w(floatBits(tr.Avg), floatBits(tr.Total), tr.Ticks)
	}
	for _, p := range st.PSI.Pending {
		w(floatBits(p))
	}

	if st.Scan != nil {
		s := st.Scan
		w(s.TotalPages, s.FreePages, s.UnmovableFrames)
		for _, v := range s.UnmovableBySource {
			w(v)
		}
		for _, o := range mem.ScanOrders {
			w(s.FreeContigPages[o], s.UnmovableBlocks[o], s.TotalBlocks[o], s.PotentialBlocks[o])
		}
	}

	wb(st.HasPressure)
	if st.Pressure != nil {
		p := st.Pressure
		wb(p.Gate.Shedding)
		w(p.Gate.Since)
		w(floatBits(p.GatePSI.Avg), floatBits(p.GatePSI.Total), p.GatePSI.Ticks)
		for _, v := range p.Esc.Hits {
			w(v)
		}
		for _, v := range p.Esc.FirstTick {
			w(v)
		}
		w(uint64(len(p.OOMHistory)))
		for _, kl := range p.OOMHistory {
			w(kl.Tick, uint64(len(kl.Victim)))
			h.Write([]byte(kl.Victim))
			w(uint64(kl.Badness), kl.PagesFreed)
		}
	}
	return h.Sum64()
}

// StateHash exports the machine and returns its canonical digest. It is
// O(machine size) — a checkpoint/verification operation, not a hot-path
// one.
func (k *Kernel) StateHash() uint64 { return k.ExportState().Hash() }
