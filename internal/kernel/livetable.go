package kernel

// liveTable maps block-head PFNs to their handles. It replaces a Go map
// on the allocation hot path: a flat slice over the frame space gives
// O(1) get/set/del with no hashing, no rehash garbage, and a single
// dependent load per lookup — the live-handle operations dominated
// fleet-study profiles when backed by map[uint64]*Page, and the
// two-level lazy radix that followed it still paid a chunk-pointer load
// plus a nil check per operation.
type liveTable struct {
	pages []*Page
	n     int
}

func newLiveTable(npages uint64) *liveTable {
	return &liveTable{pages: make([]*Page, npages)}
}

func (lt *liveTable) get(pfn uint64) *Page { return lt.pages[pfn] }

func (lt *liveTable) set(pfn uint64, p *Page) {
	slot := &lt.pages[pfn]
	if *slot == nil {
		lt.n++
	}
	*slot = p
}

func (lt *liveTable) del(pfn uint64) {
	slot := &lt.pages[pfn]
	if *slot != nil {
		lt.n--
		*slot = nil
	}
}

func (lt *liveTable) len() int { return lt.n }
