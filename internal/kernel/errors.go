package kernel

import "errors"

// Typed sentinel errors for the kernel's failure paths. The paper's
// machinery (§3.3) treats aborted migrations, pinned pages, and carve
// races as events to retry or route around, never as fatal conditions;
// every error below is therefore recoverable and the kernel stays
// consistent (CheckInvariants clean) after returning it.
var (
	// ErrPagePinned reports an operation that is illegal on a pinned
	// page: software migration (access cannot be blocked) or Free
	// before Unpin.
	ErrPagePinned = errors.New("kernel: page is pinned")

	// ErrMoverFailed reports a Contiguitas-HW migration the copy engine
	// aborted (in-flight DMA conflict, metadata overflow, or an
	// injected fault) after exhausting the retry budget.
	ErrMoverFailed = errors.New("kernel: hardware mover failed")

	// ErrMigrationFailed reports a software page migration that was
	// aborted after exhausting the retry budget.
	ErrMigrationFailed = errors.New("kernel: software migration failed")

	// ErrCarveFailed reports a compaction or resize carve that could
	// not remove a frame range from the free lists — a skippable event:
	// the candidate block is re-enqueued and retried later.
	ErrCarveFailed = errors.New("kernel: carve failed")

	// ErrEvacIncomplete reports an evacuation that could not clear every
	// allocation in its range (no replacement frames, or an unmovable
	// page without hardware assistance). Cleared frames are donated
	// back; the caller defers and retries.
	ErrEvacIncomplete = errors.New("kernel: evacuation incomplete")

	// ErrStaleHandle reports a Free of a handle the kernel no longer
	// recognises (double free, or a reclaimed page-cache handle).
	ErrStaleHandle = errors.New("kernel: stale or unknown handle")

	// ErrNilHandle reports a Free(nil).
	ErrNilHandle = errors.New("kernel: nil handle")

	// ErrLivelock reports that the progress watchdog detected a
	// migration retry ladder or compaction requeue loop burning cycles
	// without forward progress past the configured deadline
	// (Config.LivelockCycleDeadline). The operation is abandoned and
	// escalated to the fallback/defer path; the kernel stays consistent.
	ErrLivelock = errors.New("kernel: livelock detected")

	// ErrOOMKill marks an allocation failure during which the OOM
	// killer fired: a victim pool was freed but the request still could
	// not be served. Errors carrying it also wrap ErrNoMemory.
	ErrOOMKill = errors.New("kernel: oom kill")

	// ErrAllocShed reports an allocation refused by the admission gate:
	// sustained movable-region pressure crossed the shed threshold and
	// new requests fail fast (no reclaim, no stall) until pressure
	// decays below the exit threshold.
	ErrAllocShed = errors.New("kernel: allocation shed by admission control")
)
