package kernel

import (
	"fmt"

	"contiguitas/internal/mem"
	"contiguitas/internal/pressure"
	"contiguitas/internal/psi"
	"contiguitas/internal/resize"
	"contiguitas/internal/telemetry"
)

// This file is the mechanism half of the exhaustion-survival subsystem;
// the policies (rung ordering, throttle pricing, hysteresis, badness)
// live in internal/pressure. Enabled by Config.Pressure, it extends the
// allocation slow path with a Linux-style ladder:
//
//	fast → direct reclaim → compaction           (the pre-existing path)
//	     → throttle: cycle-priced stalls + reclaim retries
//	     → emergency region resize (shrink unmovable for movable
//	       requests, expand for unmovable ones)
//	     → OOM kill (badness-scored victim, skipped for page cache)
//
// and an admission gate that sheds new allocations outright while a
// short-half-life PSI tracker sits above the shed threshold.

// OOMVictim is a killable memory consumer. Workload pools register as
// victims; a kill must synchronously free the pool's pages back to the
// kernel (via Free/FreeMapping — never via Alloc, so kills cannot
// re-enter the ladder) and return how many frames it released. Victim
// selection is deterministic: highest badness wins, ties go to the
// earliest registration.
type OOMVictim interface {
	// OOMName identifies the victim in kill records and error strings.
	OOMName() string
	// OOMPages returns the frames currently held (0 = nothing to kill).
	OOMPages() uint64
	// OOMScoreAdj biases badness like oom_score_adj, in thousandths of
	// total memory (negative protects, positive sacrifices).
	OOMScoreAdj() int64
	// OOMKill frees the pool and returns the frames released.
	OOMKill(tick uint64) uint64
}

// RegisterOOMVictim adds a kill candidate. Registration order is the
// deterministic tie-break, so owners must register in a fixed order
// (the workload runner registers its pools at construction). Victims
// are not serialized: restore paths re-register through the same
// constructors.
func (k *Kernel) RegisterOOMVictim(v OOMVictim) {
	k.victims = append(k.victims, v)
}

// PressureConfig returns the normalized ladder config (nil = disabled).
func (k *Kernel) PressureConfig() *pressure.Config { return k.pcfg }

// Escalation returns a copy of the run's ladder-escalation profile.
func (k *Kernel) Escalation() pressure.Escalation { return k.esc }

// OOMHistory returns a copy of the kill log, oldest first.
func (k *Kernel) OOMHistory() []pressure.Kill {
	return append([]pressure.Kill(nil), k.oomHistory...)
}

// Shedding reports whether the admission gate is currently refusing
// new movable allocations.
func (k *Kernel) Shedding() bool { return k.gate.Shedding() }

// oomHistoryCap bounds the kill log; a misbehaving workload killing
// every tick must not grow the snapshot without bound.
const oomHistoryCap = 256

// shedAllocation reports whether the admission gate refuses this
// request. Only movable-class requests shed: unmovable (kernel)
// allocations are the GFP_ATOMIC analog, and explicit HugeTLB
// reservations (directCompact) carry the caller's intent to pay for
// compaction, so both bypass the gate.
func (k *Kernel) shedAllocation(mt mem.MigrateType) bool {
	return k.pcfg != nil && mt == mem.MigrateMovable && !k.directCompact &&
		k.gate.Shedding()
}

// errAllocShed memoizes the fail-fast admission refusal.
func (k *Kernel) errAllocShed() error {
	if k.shedErr == nil {
		k.shedErr = fmt.Errorf("%w (enter=%.0f%% exit=%.0f%%)",
			ErrAllocShed, k.pcfg.ShedEnterPSI, k.pcfg.ShedExitPSI)
	}
	return k.shedErr
}

// ladderTrace accumulates what one allocation's descent through the
// ladder cost and achieved; it feeds the enriched failure error and the
// per-alloc stall histogram.
type ladderTrace struct {
	rung        pressure.Rung
	reclaimed   uint64
	compacted   uint64
	shrunk      uint64
	kills       int
	stallCycles uint64
}

// pressureLadder runs the emergency rungs after the standard slow path
// (reclaim, compaction, urgent expansion) has failed. It returns the
// allocated block head on success. The cumulative stall charged to the
// allocation is bounded by ThrottleCeilingCycles by construction.
func (k *Kernel) pressureLadder(b *mem.Buddy, region psi.Region, order int, mt mem.MigrateType, src mem.Source, lt *ladderTrace) (uint64, bool) {
	cfg := k.pcfg
	want := mem.OrderPages(order)

	// Throttle rung: stall, reclaim, retry — escalating stalls, bounded
	// rounds, and an early escape when reclaim stops making progress
	// (which the PointReclaimProgress fault forces).
	lt.rung = pressure.RungThrottle
	k.esc.Note(pressure.RungThrottle, k.tick)
	k.AllocThrottled++
	for round := 0; round < cfg.ThrottleRounds; round++ {
		stall := cfg.ThrottleStall(round, lt.stallCycles)
		if stall == 0 {
			break
		}
		lt.stallCycles += stall
		k.ThrottleStallCycles += stall
		k.psi.AddStall(region, float64(stall)/float64(cfg.CyclesPerTick))
		if k.tp.Enabled() {
			k.tp.Emit(k.tick, telemetry.EvAllocThrottle, uint64(order), uint64(round), stall)
		}
		freed := k.reclaim(b, want*2)
		lt.reclaimed += freed
		if pfn, ok := b.Alloc(order, mt, src); ok {
			return pfn, true
		}
		if order > 0 && mt == mem.MigrateMovable {
			if pfn, ok := k.Compact(b, order, mt, src); ok {
				lt.compacted += want
				return pfn, true
			}
		}
		if freed == 0 {
			break
		}
	}

	// Resize rung: move the boundary in the requester's favour.
	if k.cfg.Mode == ModeContiguitas {
		lt.rung = pressure.RungResize
		k.esc.Note(pressure.RungResize, k.tick)
		var moved uint64
		if mt == mem.MigrateMovable {
			moved = k.EmergencyShrink(want * 2)
		} else {
			moved = k.ExpandUnmovable(want * 2)
		}
		lt.shrunk += moved
		if moved > 0 {
			if pfn, ok := b.Alloc(order, mt, src); ok {
				return pfn, true
			}
			if order > 0 && mt == mem.MigrateMovable {
				if pfn, ok := k.Compact(b, order, mt, src); ok {
					lt.compacted += want
					return pfn, true
				}
			}
		}
	}

	// OOM rung, the last resort. Page-cache allocations never kill —
	// like the kernel, dropping the request is strictly cheaper than
	// dropping a victim.
	if k.inCacheAlloc {
		return 0, false
	}
	lt.rung = pressure.RungOOM
	k.esc.Note(pressure.RungOOM, k.tick)
	for kill := 0; kill < cfg.MaxKillsPerAlloc; kill++ {
		idx, score := k.selectOOMVictim()
		if idx < 0 {
			break
		}
		v := k.victims[idx]
		name := v.OOMName()
		freed := v.OOMKill(k.tick)
		lt.kills++
		k.OOMKills++
		k.OOMKilledPages += freed
		k.oomHistory = append(k.oomHistory, pressure.Kill{
			Tick: k.tick, Victim: name, Badness: score, PagesFreed: freed,
		})
		if len(k.oomHistory) > oomHistoryCap {
			k.oomHistory = k.oomHistory[len(k.oomHistory)-oomHistoryCap:]
		}
		if k.tp.Enabled() {
			k.tp.Emit(k.tick, telemetry.EvOOMKill, uint64(idx), uint64(score), freed)
		}
		if pfn, ok := b.Alloc(order, mt, src); ok {
			return pfn, true
		}
		// The kill freed movable frames; manufacture contiguity or
		// region room from them before giving up or killing again.
		if order > 0 && mt == mem.MigrateMovable {
			if pfn, ok := k.Compact(b, order, mt, src); ok {
				lt.compacted += want
				return pfn, true
			}
		}
		if mt != mem.MigrateMovable && k.cfg.Mode == ModeContiguitas {
			if k.ExpandUnmovable(want*2) > 0 {
				if pfn, ok := b.Alloc(order, mt, src); ok {
					return pfn, true
				}
			}
		}
	}
	return 0, false
}

// selectOOMVictim picks the registered victim with the highest badness
// score, ties to the earliest registration. Returns (-1, 0) when no
// victim is killable (empty pools or non-positive scores).
func (k *Kernel) selectOOMVictim() (int, int64) {
	best, bestScore := -1, int64(0)
	total := k.pm.NPages
	for i, v := range k.victims {
		pages := v.OOMPages()
		if pages == 0 {
			continue
		}
		score := pressure.Badness(pages, total, v.OOMScoreAdj())
		if score <= 0 {
			continue
		}
		if best < 0 || score > bestScore {
			best, bestScore = i, score
		}
	}
	return best, bestScore
}

// EmergencyShrink shrinks the unmovable region on behalf of a starving
// movable allocation, bypassing the resizer's PSI evaluation but
// honouring its floor (MinUnmovableBytes) and per-step bound
// (MaxResizeStepBytes). A shrink requested while a migration is in
// flight (re-entered from a Mover callback) is deferred: the boundary
// must not move under an active copy. Returns the frames transferred.
func (k *Kernel) EmergencyShrink(wantPages uint64) uint64 {
	if k.cfg.Mode != ModeContiguitas {
		return 0
	}
	if k.migInFlight > 0 {
		k.EmergencyShrinkDeferred++
		return 0
	}
	floor := alignPageblock(mem.BytesToPages(k.cfg.MinUnmovableBytes))
	if floor < mem.PageblockPages {
		floor = mem.PageblockPages
	}
	maxStep := alignPageblock(mem.BytesToPages(k.cfg.MaxResizeStepBytes))
	step := resize.EmergencyStep(k.boundary, wantPages, floor, maxStep, mem.PageblockPages)
	if step == 0 {
		return 0
	}
	moved := k.ShrinkUnmovable(step)
	if moved > 0 {
		k.EmergencyShrinks++
		k.EmergencyShrinkPages += moved
		if k.tp.Enabled() {
			k.tp.Emit(k.tick, telemetry.EvEmergencyShrink, wantPages, moved, k.boundary)
		}
	}
	return moved
}

// updateAdmissionGate feeds the gate tracker one tick's pending movable
// stall (sampled before psi.EndTick clears it) and steps the hysteresis
// state machine. Called from EndTick when pressure is enabled.
func (k *Kernel) updateAdmissionGate() {
	f := k.psi.Pending(psi.RegionMovable)
	if f > 1 {
		f = 1
	}
	k.gatePSI.Tick(f)
	prev := k.gate.Since()
	if k.gate.Update(k.tick, k.gatePSI.Pressure(), k.pcfg.ShedEnterPSI, k.pcfg.ShedExitPSI) {
		if k.tp.Enabled() {
			shed := uint64(0)
			if k.gate.Shedding() {
				shed = 1
			}
			k.tp.Emit(k.tick, telemetry.EvAdmissionGate,
				shed, uint64(k.gatePSI.Pressure()*1000), k.tick-prev)
		}
	}
}

// pressureErr builds the enriched allocation-failure error: the rung
// the ladder bottomed out at and what each rung achieved, so failures
// are diagnosable from the error string alone. Errors wrap ErrNoMemory
// always and ErrOOMKill additionally when a kill fired.
func (k *Kernel) pressureErr(order int, mt mem.MigrateType, lt *ladderTrace) error {
	if lt.kills > 0 {
		return fmt.Errorf("%w after %w: order=%d mt=%v rung=%v reclaimed=%d compacted=%d shrunk=%d kills=%d stall_cycles=%d",
			ErrNoMemory, ErrOOMKill, order, mt, lt.rung, lt.reclaimed, lt.compacted, lt.shrunk, lt.kills, lt.stallCycles)
	}
	return fmt.Errorf("%w: order=%d mt=%v rung=%v reclaimed=%d compacted=%d shrunk=%d stall_cycles=%d",
		ErrNoMemory, order, mt, lt.rung, lt.reclaimed, lt.compacted, lt.shrunk, lt.stallCycles)
}
