package kernel

import (
	"contiguitas/internal/fault"
	"contiguitas/internal/mem"
	"contiguitas/internal/psi"
	"contiguitas/internal/telemetry"
)

// noCacheEntry marks a consumed or detached reclaimable-FIFO slot. PFN 0
// is a valid entry, so the sentinel is the all-ones pattern (frame counts
// stay far below 2^32-1 in any simulated machine).
const noCacheEntry = ^uint32(0)

// reclaim drops reclaimable (page-cache-like) allocations residing in
// buddy b's range, oldest first, until at least target frames have been
// freed or nothing reclaimable remains. The FIFO is consumed from a head
// cursor so repeated reclaims stay O(work done), not O(cache size);
// entries belonging to other regions are skipped in place and revisited
// only when the FIFO is compacted.
func (k *Kernel) reclaim(b *mem.Buddy, target uint64) uint64 {
	// Page cache is movable memory, so only the region hosting the
	// movable class has anything to reclaim.
	if k.buddyFor(mem.MigrateMovable) != b {
		return 0
	}
	if k.faults().Should(fault.PointReclaimProgress) {
		// Injected "reclaim makes no progress": the LRU churns but frees
		// nothing, which is what drives the pressure ladder past the
		// throttle rung in chaos runs.
		return 0
	}
	var freed uint64
	i := k.reclaimHead
	for ; i < len(k.reclaimable) && freed < target; i++ {
		e := k.reclaimable[i]
		if e == noCacheEntry {
			continue // freed by its holder or another region's pass
		}
		pfn := uint64(e)
		if !b.Owns(pfn) {
			continue
		}
		// A live FIFO entry always resolves: the slot is stamped with the
		// sentinel whenever its page is freed, detached, or reclaimed.
		p := k.live.get(pfn)
		k.live.del(pfn)
		mustFree(b, pfn)
		k.reclaimable[i] = noCacheEntry
		p.cacheIdx = -1
		freed += p.Pages()
		k.ReclaimedPages += p.Pages()
		k.reclaimablePages -= p.Pages()
	}
	// Advance the head past the leading run of consumed entries.
	for k.reclaimHead < len(k.reclaimable) && k.reclaimable[k.reclaimHead] == noCacheEntry {
		k.reclaimHead++
	}
	// Compact when the dead prefix dominates.
	if k.reclaimHead > len(k.reclaimable)/2 && k.reclaimHead > 1024 {
		k.compactReclaimable()
	}
	return freed
}

// compactReclaimable drops consumed entries and re-indexes survivors.
func (k *Kernel) compactReclaimable() {
	out := k.reclaimable[:0]
	for _, e := range k.reclaimable {
		if e != noCacheEntry {
			k.live.get(uint64(e)).cacheIdx = int32(len(out))
			out = append(out, e)
		}
	}
	k.reclaimable = out
	k.reclaimHead = 0
}

// kswapd runs the background reclaimer for one region: when free memory
// falls below the low watermark it reclaims up to the high watermark.
func (k *Kernel) kswapd(b *mem.Buddy) {
	low := uint64(float64(b.Pages()) * k.cfg.WatermarkLow)
	high := uint64(float64(b.Pages()) * k.cfg.WatermarkHigh)
	if b.FreePages() >= low {
		return
	}
	k.KswapdRuns++
	want := high - b.FreePages()
	freed := k.reclaim(b, want)
	if k.tp.Enabled() {
		region := psi.RegionMovable
		if b == k.unmov {
			region = psi.RegionUnmovable
		}
		k.tp.Emit(k.tick, telemetry.EvKswapd, uint64(region), want, freed)
	}
}

// EndTick closes one virtual millisecond: background reclaim runs for
// each region, the Contiguitas resizer thread is given a chance to run,
// and PSI windows advance.
func (k *Kernel) EndTick() {
	switch k.cfg.Mode {
	case ModeLinux:
		k.kswapd(k.zone)
	case ModeContiguitas:
		k.kswapd(k.unmov)
		k.kswapd(k.mov)
		if k.cfg.ResizePeriodTicks > 0 && k.tick%k.cfg.ResizePeriodTicks == k.cfg.ResizePeriodTicks-1 {
			k.runResizer()
		}
	}
	if k.pcfg != nil {
		// The gate samples this tick's pending movable stall before
		// EndTick folds it into the long-window trackers and zeroes it.
		k.updateAdmissionGate()
	}
	k.psi.EndTick()
	if k.sampler.Enabled() {
		k.sampler.Sample(k.tick)
	}
	k.compactUsed = 0
	k.tick++
	if k.sink != nil {
		k.sink.OnTick()
	}
}

// RunTicks advances n idle ticks (no workload activity).
func (k *Kernel) RunTicks(n uint64) {
	for i := uint64(0); i < n; i++ {
		k.EndTick()
	}
}
