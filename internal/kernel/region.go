package kernel

import (
	"contiguitas/internal/fault"
	"contiguitas/internal/mem"
	"contiguitas/internal/psi"
	"contiguitas/internal/resize"
	"contiguitas/internal/telemetry"
)

// runResizer is the Contiguitas resizer thread (§3.2): it evaluates
// Algorithm 1 against the per-region PSI pressures and moves the
// boundary toward the target, bounded per invocation so resizing stays
// off the allocation critical path. An injected fault aborts the
// evaluation — the thread lost its slot this period and tries again at
// the next one.
func (k *Kernel) runResizer() {
	if k.faults().Should(fault.PointRegionResize) {
		k.ResizeAborts++
		if k.tp.Enabled() {
			k.tp.Emit(k.tick, telemetry.EvResizeAbort, k.boundary, 0, 0)
		}
		return
	}
	in := resize.Input{
		PressureUnmov: k.psi.Pressure(psi.RegionUnmovable),
		PressureMov:   k.psi.Pressure(psi.RegionMovable),
		Thresholds:    k.cfg.ResizeThresholds,
		Coeff:         k.cfg.ResizeCoeff,
		MemUnmov:      k.boundary,
	}
	d := resize.Resize(in)
	target := resize.Clamp(d.Target,
		mem.BytesToPages(k.cfg.MinUnmovableBytes),
		mem.BytesToPages(k.cfg.MaxUnmovableBytes))
	target = alignPageblock(target)
	if k.tp.Enabled() {
		// PSI percentages carried as milli-percent so the packed uint64
		// args keep three decimal places.
		k.tp.Emit(k.tick, telemetry.EvResizeEval,
			uint64(in.PressureUnmov*1000), uint64(in.PressureMov*1000), target)
	}

	step := alignPageblock(mem.BytesToPages(k.cfg.MaxResizeStepBytes))
	switch {
	case target > k.boundary:
		delta := target - k.boundary
		if delta > step {
			delta = step
		}
		k.ExpandUnmovable(delta)
	case target < k.boundary:
		delta := k.boundary - target
		if delta > step {
			delta = step
		}
		k.ShrinkUnmovable(delta)
	}
}

// ExpandUnmovable grows the unmovable region by at least wantPages
// (rounded up to whole pageblocks), taking frames from the bottom of the
// movable region. Movable allocations in the takeover range are migrated
// upward first. It returns the number of frames actually transferred.
// The resizer calls this automatically; it is exported for manual region
// management and for experiments.
func (k *Kernel) ExpandUnmovable(wantPages uint64) uint64 {
	if k.cfg.Mode != ModeContiguitas {
		return 0
	}
	delta := (wantPages + mem.PageblockPages - 1) &^ (mem.PageblockPages - 1)
	maxB := alignPageblock(mem.BytesToPages(k.cfg.MaxUnmovableBytes))
	newB := k.boundary + delta
	if newB > maxB {
		newB = maxB
	}
	// Never consume the movable region entirely.
	if limit := k.pm.NPages - mem.PageblockPages; newB > limit {
		newB = alignPageblock(limit)
	}
	if newB <= k.boundary {
		return 0
	}
	oldB := k.boundary

	if err := k.evacuate(k.mov, oldB, newB, false); err != nil {
		// Could not clear the full range (movable region too full to
		// absorb its own pages, or a carve/migration fault). Give back
		// what was carved: expansion fails this round and the resizer
		// retries at its next period.
		k.donateLimbo(k.mov, oldB, newB)
		return 0
	}
	mustAdjustBounds(k.mov, newB, k.pm.NPages)
	mustAdjustBounds(k.unmov, 0, newB)
	for pb := oldB / mem.PageblockPages; pb < newB/mem.PageblockPages; pb++ {
		k.pm.SetPageblockMT(pb*mem.PageblockPages, mem.MigrateUnmovable)
	}
	mustDonate(k.unmov, oldB, newB-oldB)
	k.boundary = newB
	k.Expands++
	k.BoundaryMovedPages += newB - oldB
	if k.tp.Enabled() {
		k.tp.Emit(k.tick, telemetry.EvResizeGrow, oldB, newB, newB-oldB)
	}
	return newB - oldB
}

// ShrinkUnmovable releases up to wantPages frames from the top of the
// unmovable region back to the movable region. The resizer calls this
// automatically; it is exported for manual region management and for
// experiments. Allocations in the way
// are dropped (reclaimable) or relocated downward with Contiguitas-HW;
// without the hardware, the shrink stops at the highest unmovable
// allocation — the exact limitation §3.3 motivates.
func (k *Kernel) ShrinkUnmovable(wantPages uint64) uint64 {
	if k.cfg.Mode != ModeContiguitas {
		return 0
	}
	delta := alignPageblock(wantPages)
	minB := alignPageblock(mem.BytesToPages(k.cfg.MinUnmovableBytes))
	if minB < mem.PageblockPages {
		minB = mem.PageblockPages
	}
	var newB uint64
	if delta >= k.boundary {
		newB = minB
	} else {
		newB = k.boundary - delta
		if newB < minB {
			newB = minB
		}
	}
	if newB >= k.boundary {
		return 0
	}
	oldB := k.boundary

	// Without hardware assistance, find the highest obstacle and shrink
	// only above it.
	if k.cfg.HWMover == nil {
		if top := k.highestImmovable(newB, oldB); top != noHead {
			newB = (top + mem.PageblockPages) &^ (mem.PageblockPages - 1)
			if newB >= oldB {
				k.ShrinkFails++
				if k.tp.Enabled() {
					k.tp.Emit(k.tick, telemetry.EvResizeShrinkFail, oldB, newB, 0)
				}
				return 0
			}
		}
	}

	if err := k.evacuate(k.unmov, newB, oldB, true); err != nil {
		k.donateLimbo(k.unmov, newB, oldB)
		k.ShrinkFails++
		if k.tp.Enabled() {
			k.tp.Emit(k.tick, telemetry.EvResizeShrinkFail, oldB, newB, 0)
		}
		return 0
	}
	mustAdjustBounds(k.unmov, 0, newB)
	mustAdjustBounds(k.mov, newB, k.pm.NPages)
	for pb := newB / mem.PageblockPages; pb < oldB/mem.PageblockPages; pb++ {
		k.pm.SetPageblockMT(pb*mem.PageblockPages, mem.MigrateMovable)
	}
	mustDonate(k.mov, newB, oldB-newB)
	k.boundary = newB
	k.Shrinks++
	k.BoundaryMovedPages += oldB - newB
	if k.tp.Enabled() {
		k.tp.Emit(k.tick, telemetry.EvResizeShrink, oldB, newB, oldB-newB)
	}
	return oldB - newB
}

// highestImmovable returns the highest frame in [start, end) that
// software cannot clear (unmovable migratetype or pinned), or noHead.
// Pageblocks whose cached summary shows no unmovable frames are skipped
// wholesale: a qualifying frame must be allocated (limbo frames have no
// covering head), which is exactly what the summary counts.
func (k *Kernel) highestImmovable(start, end uint64) uint64 {
	pm := k.pm
	p := end
	for p > start {
		if p&(mem.PageblockPages-1) == 0 && p-start >= mem.PageblockPages {
			if pm.PageblockInfoAt(p - mem.PageblockPages).UnmovFrames == 0 {
				p -= mem.PageblockPages
				continue
			}
		}
		f := p - 1
		p--
		if pm.IsFree(f) {
			continue
		}
		if pm.IsPinned(f) || pm.PageMT(f) == mem.MigrateUnmovable {
			if k.coveringHead(f) != noHead {
				return f
			}
		}
	}
	return noHead
}

// DefragUnmovable compacts the unmovable region with Contiguitas-HW:
// allocations are relocated toward low addresses, consolidating the free
// space at the top so subsequent shrinks succeed. It does nothing
// without a Mover. Returns the number of blocks relocated.
func (k *Kernel) DefragUnmovable() int {
	if k.cfg.Mode != ModeContiguitas || k.cfg.HWMover == nil {
		return 0
	}
	pm := k.pm
	moved := 0
	// Walk from the top; try to rehome each allocation into a lower
	// free block.
	p := k.boundary
	for p > 0 {
		f := p - 1
		if pm.IsFree(f) {
			p--
			continue
		}
		h := k.coveringHead(f)
		if h == noHead {
			p--
			continue
		}
		handle := k.live.get(h)
		if handle == nil {
			p = h
			continue
		}
		dst, ok := k.unmov.Alloc(int(handle.Order), handle.MT, handle.Src)
		if !ok {
			p = h
			continue
		}
		if dst >= h {
			// No lower placement available; undo.
			mustFree(k.unmov, dst)
			p = h
			continue
		}
		if err := k.hwMigrateTo(handle, dst); err != nil {
			// Engine abort: skip this allocation, defragment the rest.
			mustFree(k.unmov, dst)
			k.MigrationDeferred++
			if k.tp.Enabled() {
				k.tp.Emit(k.tick, telemetry.EvMigrateDefer, handle.PFN, uint64(handle.Order), 0)
			}
			p = h
			continue
		}
		moved++
		p = h
	}
	return moved
}
