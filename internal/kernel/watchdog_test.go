package kernel

import (
	"errors"
	"testing"

	"contiguitas/internal/fault"
	"contiguitas/internal/mem"
	"contiguitas/internal/telemetry"
)

// TestWatchdogTripsOnPerpetualRetry forces the software-migration retry
// ladder into a livelock (every attempt aborted, an effectively
// unbounded retry budget) and requires the watchdog to abandon it: a
// typed ErrLivelock within the configured cycle deadline, a counted
// trip, and an EvLivelock tracepoint on the recovery track.
func TestWatchdogTripsOnPerpetualRetry(t *testing.T) {
	cfg := DefaultConfig(ModeContiguitas)
	cfg.MemBytes = 64 << 20
	cfg.InitialUnmovableBytes = 8 << 20
	cfg.MinUnmovableBytes = 4 << 20
	cfg.MaxUnmovableBytes = 32 << 20
	// A retry budget the test would never exhaust: without the
	// watchdog, the ladder below would retry 1<<20 times.
	cfg.MigrateRetryLimit = 1 << 20
	cfg.MigrateBackoffCycles = 2000
	cfg.LivelockCycleDeadline = 50_000

	inj := fault.New(3)
	inj.Arm(fault.PointSWMigrate, fault.Trigger{Prob: 1.0})
	cfg.Faults = inj

	k := New(cfg)
	ring := telemetry.NewRing(1024)
	k.SetTracer(ring)

	// Pin of a movable page software-migrates it into the unmovable
	// region — the migration that will now never succeed.
	p, err := k.Alloc(0, mem.MigrateMovable, mem.SrcUser)
	if err != nil {
		t.Fatal(err)
	}
	err = k.Pin(p)
	if err == nil {
		t.Fatal("pin succeeded despite a 100% migration fault rate")
	}
	if !errors.Is(err, ErrLivelock) {
		t.Fatalf("pin failed with %v, want ErrLivelock", err)
	}
	if k.LivelockTrips == 0 {
		t.Fatal("watchdog tripped but LivelockTrips is zero")
	}
	// The ladder must have been cut off near the deadline, not run to
	// the retry limit: total backoff burned stays within one deadline
	// plus the final (largest) backoff step.
	if k.MigrationRetries >= uint64(cfg.MigrateRetryLimit) {
		t.Fatalf("retry ladder ran to its limit (%d retries); watchdog did not bound it", k.MigrationRetries)
	}
	if k.BackoffCycles > 2*cfg.LivelockCycleDeadline {
		t.Fatalf("burned %d backoff cycles, deadline %d — not cut off within a deadline",
			k.BackoffCycles, cfg.LivelockCycleDeadline)
	}

	found := false
	for _, rec := range ring.Snapshot(nil) {
		if rec.ID == telemetry.EvLivelock {
			found = true
			if rec.B < cfg.LivelockCycleDeadline {
				t.Fatalf("EvLivelock reports %d stalled cycles, below the %d deadline", rec.B, cfg.LivelockCycleDeadline)
			}
			if rec.C != cfg.LivelockCycleDeadline {
				t.Fatalf("EvLivelock reports deadline %d, configured %d", rec.C, cfg.LivelockCycleDeadline)
			}
		}
	}
	if !found {
		t.Fatal("no EvLivelock tracepoint emitted")
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatalf("invariants after livelock escalation: %v", err)
	}
}

// TestWatchdogEscalatesCompaction drives the compaction requeue loop
// with carve faults firing every time: requeue churn must trip the
// watchdog, drop the retry queue, and slam the defer window shut
// instead of bouncing targets forever.
func TestWatchdogEscalatesCompaction(t *testing.T) {
	cfg := DefaultConfig(ModeLinux)
	cfg.MemBytes = 64 << 20
	cfg.LivelockCycleDeadline = 100_000
	inj := fault.New(5)
	inj.Arm(fault.PointCompactCarve, fault.Trigger{Prob: 1.0})
	cfg.Faults = inj

	k := New(cfg)
	ring := telemetry.NewRing(4096)
	k.SetTracer(ring)

	// Fragment movable memory so compaction has real work: fill with
	// base pages, free every other one.
	var pages []*Page
	for {
		p, err := k.Alloc(0, mem.MigrateMovable, mem.SrcUser)
		if err != nil {
			break
		}
		pages = append(pages, p)
	}
	for i := 0; i < len(pages); i += 2 {
		if err := k.Free(pages[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Direct compaction requests: every successful evacuation ends in a
	// faulted carve, requeueing the target. The watchdog must cut the
	// loop instead of letting the queue churn forever.
	for i := 0; i < 40 && k.LivelockTrips == 0; i++ {
		huge := k.AllocHugeTLB(mem.Order2M, 1)
		k.FreeHugeTLB(&huge)
		k.EndTick()
	}
	if k.LivelockTrips == 0 {
		t.Fatal("compaction requeue churn never tripped the watchdog")
	}
	if k.CompactRequeues == 0 {
		t.Fatal("test exercised no requeues — scenario broken")
	}
	found := false
	for _, rec := range ring.Snapshot(nil) {
		if rec.ID == telemetry.EvLivelock {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no EvLivelock tracepoint emitted")
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatalf("invariants after compaction escalation: %v", err)
	}
}
