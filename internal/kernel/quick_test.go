package kernel

import (
	"testing"
	"testing/quick"

	"contiguitas/internal/mem"
	"contiguitas/internal/stats"
)

// TestQuickAllocFreeConservation drives quick-generated operation
// sequences through a kernel and checks that memory is conserved and
// allocator invariants hold at the end of every sequence.
func TestQuickAllocFreeConservation(t *testing.T) {
	f := func(seed uint64, nOps uint16) bool {
		cfg := testConfig(ModeContiguitas, 64*mb)
		cfg.Seed = seed
		k := New(cfg)
		total := k.FreePages()
		rng := stats.NewRNG(seed)
		var live []*Page
		ops := int(nOps%600) + 50
		for i := 0; i < ops; i++ {
			if rng.Bool(0.6) || len(live) == 0 {
				order := rng.Intn(4)
				mt := mem.MigrateMovable
				if rng.Bool(0.3) {
					mt = mem.MigrateUnmovable
				}
				if p, err := k.Alloc(order, mt, mem.SrcOther); err == nil {
					live = append(live, p)
				}
			} else {
				j := rng.Intn(len(live))
				k.Free(live[j])
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		var held uint64
		for _, p := range live {
			held += p.Pages()
			k.Free(p)
		}
		// Conservation: everything allocated was either freed or held.
		return k.FreePages() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHandleStability: whatever sequence of pins and region
// operations runs, every live handle keeps pointing at an allocated
// block of its recorded order.
func TestQuickHandleStability(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := testConfig(ModeContiguitas, 64*mb)
		cfg.HWMover = NewAnalyticMover()
		cfg.Seed = seed
		k := New(cfg)
		rng := stats.NewRNG(seed ^ 0xabc)
		var live []*Page
		for i := 0; i < 400; i++ {
			switch {
			case rng.Bool(0.5) || len(live) == 0:
				if p, err := k.Alloc(rng.Intn(3), mem.MigrateMovable, mem.SrcNetworking); err == nil {
					live = append(live, p)
				}
			case rng.Bool(0.3):
				p := live[rng.Intn(len(live))]
				if !p.Pinned {
					k.Pin(p)
				}
			default:
				j := rng.Intn(len(live))
				p := live[j]
				if p.Pinned {
					k.Unpin(p)
				}
				k.Free(p)
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			if i%50 == 49 {
				k.EndTick()
			}
		}
		for _, p := range live {
			if !k.Live(p) || k.PM().BlockOrder(p.PFN) != int(p.Order) {
				return false
			}
			if p.Pinned && p.PFN >= k.Boundary() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocUser1GTHP(t *testing.T) {
	cfg := testConfig(ModeContiguitas, 4*gb)
	cfg.InitialUnmovableBytes = 256 * mb
	cfg.MinUnmovableBytes = 64 * mb
	cfg.MaxUnmovableBytes = 1 * gb
	k := New(cfg)
	m, err := k.AllocUserTHP(uint64(2)*gb+10*mb, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if n := m.BlockCount(mem.Order1G); n != 2 {
		t.Fatalf("1G blocks = %d, want 2", n)
	}
	if m.Coverage(mem.Order1G) < 0.9 {
		t.Fatalf("1G coverage = %v", m.Coverage(mem.Order1G))
	}
	// The 10MB tail rides on 2MB pages.
	if m.BlockCount(mem.Order2M) != 5 {
		t.Fatalf("2M blocks = %d, want 5", m.BlockCount(mem.Order2M))
	}
	k.FreeMapping(m)
}

func TestAllocUser1GFallsBack(t *testing.T) {
	// On a machine too small for 1GB blocks the ladder falls through to
	// 2MB without failing.
	k := New(testConfig(ModeContiguitas, 256*mb))
	m, err := k.AllocUserTHP(64*mb, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if m.BlockCount(mem.Order1G) != 0 || m.Coverage(mem.Order2M) != 1 {
		t.Fatalf("fallback wrong: 1G=%d cov2M=%v", m.BlockCount(mem.Order1G), m.Coverage(mem.Order2M))
	}
	k.FreeMapping(m)
}
