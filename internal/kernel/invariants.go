package kernel

import (
	"fmt"

	"contiguitas/internal/mem"
)

// CheckInvariants validates the kernel's global consistency: every buddy
// allocator's internal invariants, boundary agreement between the
// Contiguitas regions, and — walking the whole frame table — that every
// frame belongs to exactly one free or allocated block, that every
// allocated block has exactly one live handle agreeing on order and
// address, and that pin accounting matches between handles and frames.
//
// It is O(machine size) and meant for soak checkpoints and tests, not
// the hot path. A clean result after a fault-injected run is the
// simulator's correctness witness: whatever failed, nothing leaked and
// nothing overlaps.
func (k *Kernel) CheckInvariants() error {
	for _, reg := range k.regions() {
		if err := reg.b.CheckInvariants(); err != nil {
			return fmt.Errorf("%s region: %w", reg.name, err)
		}
	}
	if k.cfg.Mode == ModeContiguitas {
		if k.unmov.End() != k.boundary || k.mov.Start() != k.boundary {
			return fmt.Errorf("boundary out of sync: unmov end %d, boundary %d, mov start %d",
				k.unmov.End(), k.boundary, k.mov.Start())
		}
		if k.unmov.Start() != 0 || k.mov.End() != k.pm.NPages {
			return fmt.Errorf("regions do not tile memory: [%d,%d) + [%d,%d) vs %d frames",
				k.unmov.Start(), k.unmov.End(), k.mov.Start(), k.mov.End(), k.pm.NPages)
		}
	}

	// Frame-table walk: memory must tile exactly into free blocks and
	// live allocations — no limbo frames, no overlap, no orphans.
	pm := k.pm
	allocatedBlocks := 0
	var freeFrames uint64
	for p := uint64(0); p < pm.NPages; {
		if !pm.IsHead(p) {
			return fmt.Errorf("frame %d is in limbo: not covered by any free or allocated block", p)
		}
		order := pm.BlockOrder(p)
		if order < 0 || order > mem.MaxOrder {
			return fmt.Errorf("block head %d has invalid order %d", p, order)
		}
		n := mem.OrderPages(order)
		if pm.IsFree(p) {
			for i := uint64(1); i < n; i++ {
				if !pm.IsFree(p+i) || pm.IsHead(p+i) {
					return fmt.Errorf("free block %d: tail frame %d inconsistently marked", p, p+i)
				}
			}
			freeFrames += n
			p += n
			continue
		}
		handle := k.live.get(p)
		if handle == nil {
			return fmt.Errorf("allocated block at %d has no live handle", p)
		}
		if handle.PFN != p {
			return fmt.Errorf("handle for block %d records pfn %d", p, handle.PFN)
		}
		if int(handle.Order) != order {
			return fmt.Errorf("block %d: frame order %d, handle order %d", p, order, handle.Order)
		}
		if handle.Pinned != pm.IsPinned(p) {
			return fmt.Errorf("block %d: handle pinned=%v, frame pinned=%v", p, handle.Pinned, pm.IsPinned(p))
		}
		for i := uint64(1); i < n; i++ {
			if pm.IsFree(p+i) || pm.IsHead(p+i) {
				return fmt.Errorf("allocated block %d: tail frame %d inconsistently marked", p, p+i)
			}
			if pm.IsPinned(p+i) != handle.Pinned {
				return fmt.Errorf("block %d: pin flag differs across frames at %d", p, p+i)
			}
		}
		allocatedBlocks++
		p += n
	}
	if allocatedBlocks != k.live.len() {
		return fmt.Errorf("%d allocated blocks in the frame table, %d live handles", allocatedBlocks, k.live.len())
	}
	if freeFrames != k.FreePages() {
		return fmt.Errorf("frame table holds %d free frames, allocators report %d", freeFrames, k.FreePages())
	}

	// Reclaimable-FIFO accounting: live entries agree with their index
	// and sum to the tracked total.
	var cachePages uint64
	for i, e := range k.reclaimable {
		if e == noCacheEntry {
			continue
		}
		p := k.live.get(uint64(e))
		if p == nil {
			return fmt.Errorf("reclaimable entry %d (pfn %d) is not live", i, e)
		}
		if p.cacheIdx != int32(i) {
			return fmt.Errorf("reclaimable entry %d records index %d", i, p.cacheIdx)
		}
		if p.PFN != uint64(e) {
			return fmt.Errorf("reclaimable entry %d holds pfn %d, handle says %d", i, e, p.PFN)
		}
		cachePages += p.Pages()
	}
	if cachePages != k.reclaimablePages {
		return fmt.Errorf("reclaimable FIFO holds %d pages, counter says %d", cachePages, k.reclaimablePages)
	}
	return nil
}

// namedRegion pairs a buddy with its report name.
type namedRegion struct {
	name string
	b    *mem.Buddy
}

// regions lists the kernel's buddy allocators for validation.
func (k *Kernel) regions() []namedRegion {
	if k.cfg.Mode == ModeLinux {
		return []namedRegion{{"zone", k.zone}}
	}
	return []namedRegion{{"unmovable", k.unmov}, {"movable", k.mov}}
}
