package kernel

import (
	"testing"

	"contiguitas/internal/fault"
	"contiguitas/internal/mem"
	"contiguitas/internal/stats"
)

// snapDriver churns a kernel deterministically through the public API,
// tracking its pool as head PFNs so it can be cloned across a restore
// (handle identity does not survive; PFNs do).
type snapDriver struct {
	k    *Kernel
	rng  *stats.RNG
	pfns []uint64
}

func (d *snapDriver) clone(k *Kernel) *snapDriver {
	s0, s1 := d.rng.State()
	r := stats.NewRNG(1)
	r.SetState(s0, s1)
	return &snapDriver{k: k, rng: r, pfns: append([]uint64(nil), d.pfns...)}
}

func (d *snapDriver) step(t *testing.T) {
	t.Helper()
	// Free a random quarter of the pool (page-cache entries may have
	// been reclaimed behind our back — skip dead handles).
	for i := 0; i < len(d.pfns)/4 && len(d.pfns) > 0; i++ {
		j := d.rng.Intn(len(d.pfns))
		if p := d.k.PageAt(d.pfns[j]); p != nil {
			if p.Pinned {
				d.k.Unpin(p)
			}
			if err := d.k.Free(p); err != nil {
				t.Fatalf("free pfn %d: %v", d.pfns[j], err)
			}
		}
		d.pfns[j] = d.pfns[len(d.pfns)-1]
		d.pfns = d.pfns[:len(d.pfns)-1]
	}
	// Allocate a mixed batch.
	orders := []int{0, 0, 0, 1, 2, mem.Order2M}
	for i := 0; i < 48; i++ {
		order := orders[d.rng.Intn(len(orders))]
		var p *Page
		var err error
		switch d.rng.Intn(4) {
		case 0:
			p, err = d.k.Alloc(order, mem.MigrateUnmovable, mem.SrcSlab)
		case 1:
			p, err = d.k.AllocPageCache(0, mem.SrcFilesystem)
		case 2:
			p, err = d.k.Alloc(order, mem.MigrateMovable, mem.SrcUser)
			if err == nil && d.rng.Bool(0.2) {
				if perr := d.k.Pin(p); perr != nil {
					// Pin can fail under pressure; the page stays movable.
					_ = perr
				}
			}
		default:
			p, err = d.k.Alloc(order, mem.MigrateMovable, mem.SrcUser)
		}
		if err == nil {
			d.pfns = append(d.pfns, p.PFN)
		}
	}
	// Periodic contiguity demand keeps compaction's cross-tick state
	// (cursors, deferral, retries) populated.
	if d.rng.Bool(0.1) {
		huge := d.k.AllocHugeTLB(mem.Order2M, 1)
		d.k.FreeHugeTLB(&huge)
	}
	d.k.EndTick()
}

func snapTestConfig(mode Mode) Config {
	cfg := DefaultConfig(mode)
	cfg.MemBytes = 128 << 20
	cfg.InitialUnmovableBytes = 16 << 20
	cfg.MinUnmovableBytes = 4 << 20
	cfg.MaxUnmovableBytes = 64 << 20
	cfg.Seed = 7
	return cfg
}

func testSnapshotRoundTrip(t *testing.T, mode Mode, withFaults bool) {
	cfg := snapTestConfig(mode)
	if mode == ModeContiguitas {
		cfg.HWMover = NewAnalyticMover()
	}
	if withFaults {
		inj := fault.New(99)
		inj.Arm(fault.PointSWMigrate, fault.Trigger{Prob: 0.05})
		inj.Arm(fault.PointCompactCarve, fault.Trigger{Prob: 0.05})
		if mode == ModeContiguitas {
			inj.Arm(fault.PointHWMover, fault.Trigger{Prob: 0.1})
			inj.Arm(fault.PointRegionResize, fault.Trigger{Prob: 0.1})
		}
		cfg.Faults = inj
	}
	k := New(cfg)
	d := &snapDriver{k: k, rng: stats.NewRNG(42)}
	for i := 0; i < 120; i++ {
		d.step(t)
	}

	st := k.ExportState()
	h := st.Hash()

	rcfg := cfg
	if withFaults {
		// The restored machine gets its own injector rebuilt from the
		// serialized stream positions.
		rcfg.Faults = fault.FromState(cfg.Faults.State())
	}
	k2, err := Restore(rcfg, st)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got := k2.StateHash(); got != h {
		t.Fatalf("restored state hash %016x, exported %016x", got, h)
	}
	if k2.Tick() != k.Tick() || k2.Boundary() != k.Boundary() {
		t.Fatalf("tick/boundary drifted: %d/%d vs %d/%d", k2.Tick(), k2.Boundary(), k.Tick(), k.Boundary())
	}

	// Divergence check: drive both machines through the identical
	// scripted future and require bit-equal state at every boundary.
	d2 := d.clone(k2)
	for i := 0; i < 60; i++ {
		d.step(t)
		d2.step(t)
		if i%20 == 19 {
			if h1, h2 := k.StateHash(), k2.StateHash(); h1 != h2 {
				t.Fatalf("state diverged %d ticks after restore: %016x vs %016x", i+1, h1, h2)
			}
		}
	}
	if err := k2.CheckInvariants(); err != nil {
		t.Fatalf("restored kernel invariants after continuation: %v", err)
	}
}

func TestSnapshotRoundTripLinux(t *testing.T)       { testSnapshotRoundTrip(t, ModeLinux, false) }
func TestSnapshotRoundTripContiguitas(t *testing.T) { testSnapshotRoundTrip(t, ModeContiguitas, false) }
func TestSnapshotRoundTripWithFaults(t *testing.T)  { testSnapshotRoundTrip(t, ModeContiguitas, true) }

func TestRestoreRejectsFingerprintMismatch(t *testing.T) {
	cfg := snapTestConfig(ModeLinux)
	k := New(cfg)
	k.RunTicks(3)
	st := k.ExportState()

	bad := cfg
	bad.Seed++
	if _, err := Restore(bad, st); err == nil {
		t.Fatal("restore accepted a mismatched seed")
	}
	bad = cfg
	bad.MemBytes *= 2
	if _, err := Restore(bad, st); err == nil {
		t.Fatal("restore accepted a mismatched memory size")
	}
}

func TestRestoreRejectsCorruptedState(t *testing.T) {
	cfg := snapTestConfig(ModeContiguitas)
	k := New(cfg)
	d := &snapDriver{k: k, rng: stats.NewRNG(5)}
	for i := 0; i < 30; i++ {
		d.step(t)
	}
	st := k.ExportState()

	// A frame flipped free in the meta array must be caught by one of
	// the re-derivation cross-checks.
	if len(st.Live) == 0 {
		t.Fatal("no live allocations to corrupt")
	}
	st.Phys.Meta[st.Live[0].PFN] ^= 1 // flagFree
	if _, err := Restore(cfg, st); err == nil {
		t.Fatal("restore accepted a corrupted frame table")
	}
}

func TestStateHashSensitivity(t *testing.T) {
	cfg := snapTestConfig(ModeLinux)
	k := New(cfg)
	d := &snapDriver{k: k, rng: stats.NewRNG(11)}
	for i := 0; i < 20; i++ {
		d.step(t)
	}
	st := k.ExportState()
	h := st.Hash()
	st.Counters.AllocOK++
	if st.Hash() == h {
		t.Fatal("hash ignores counter changes")
	}
	st.Counters.AllocOK--
	if st.Hash() != h {
		t.Fatal("hash not deterministic")
	}
	st.Phys.Meta[0] ^= 0x80000000
	if st.Hash() == h {
		t.Fatal("hash ignores frame metadata changes")
	}
}
