// Package kernel simulates the memory-management core of an operating
// system at page-allocator fidelity: GFP-style allocation with
// migratetypes, watermark-driven reclaim, compaction, software page
// migration with TLB-shootdown costs, THP and HugeTLB, and pinning.
//
// It runs in two modes mirroring the paper's comparison:
//
//   - ModeLinux: one zone with Linux-style fallback stealing between
//     migratetypes, which scatters unmovable allocations (§2.5), and
//   - ModeContiguitas: two confined regions (unmovable low, movable
//     high) with a dynamically-resized boundary driven by per-region PSI
//     pressure and Algorithm 1, plus optional Contiguitas-HW assisted
//     migration of unmovable pages (§3).
//
// Time advances in discrete ticks (1 tick ≈ 1 ms of virtual time).
// Workloads drive allocations between ticks; EndTick runs the background
// machinery (kswapd, the resizer).
package kernel

import (
	"fmt"

	"contiguitas/internal/fault"
	"contiguitas/internal/mem"
	"contiguitas/internal/pressure"
	"contiguitas/internal/psi"
	"contiguitas/internal/resize"
	"contiguitas/internal/stats"
	"contiguitas/internal/telemetry"
)

// Mode selects the memory-management design under simulation.
type Mode uint8

const (
	// ModeLinux is the baseline: one zone, fallback stealing enabled.
	ModeLinux Mode = iota
	// ModeContiguitas confines unmovable allocations to a dedicated,
	// dynamically-resized region.
	ModeContiguitas
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeLinux {
		return "linux"
	}
	return "contiguitas"
}

// EventSink observes the kernel's public allocation API: every
// successful Alloc/AllocPageCache/Free/Pin/Unpin and every tick
// boundary. Internal kernel activity (compaction moves, resizing
// evacuations) is deliberately not reported — a replayed trace must
// trigger that machinery in the replaying kernel, not duplicate it.
// The trace package's Recorder is the canonical implementation.
type EventSink interface {
	OnAlloc(p *Page, pageCache bool)
	OnFree(p *Page)
	OnPin(p *Page)
	OnUnpin(p *Page)
	OnTick()
}

// SetEventSink attaches (or, with nil, detaches) an event sink.
func (k *Kernel) SetEventSink(s EventSink) { k.sink = s }

// Mover relocates a block of physical memory while it remains in use —
// the contract of Contiguitas-HW (§3.3). Implementations report the
// busy cycles the copy engine spent; the page is never unavailable.
// A migration may fail (the engine aborts on conflicting in-flight DMA
// or a full metadata table); the kernel retries with backoff and then
// degrades — software migration for movable pages, defer-and-retry for
// unmovable ones.
type Mover interface {
	// Migrate copies the block of 2^order pages at src to dst and
	// returns the cycles of copy-engine work. On error no page was
	// moved and the kernel's state is unchanged.
	Migrate(src, dst uint64, order int) (uint64, error)
}

// Config parameterises a simulated machine.
type Config struct {
	MemBytes uint64
	Mode     Mode

	// InitialUnmovableBytes sizes the unmovable region at boot
	// (ModeContiguitas). The paper uses 4 GB on 64 GB servers.
	InitialUnmovableBytes uint64
	// MinUnmovableBytes / MaxUnmovableBytes clamp resizing.
	MinUnmovableBytes uint64
	MaxUnmovableBytes uint64

	// WatermarkLow/High are free-memory fractions per region: kswapd
	// wakes below Low and reclaims until High.
	WatermarkLow  float64
	WatermarkHigh float64

	// PSIHalfLifeTicks controls pressure smoothing.
	PSIHalfLifeTicks float64

	// ResizePeriodTicks is how often the resizer thread evaluates
	// Algorithm 1 (0 disables resizing).
	ResizePeriodTicks uint64
	ResizeThresholds  resize.Thresholds
	ResizeCoeff       resize.Coefficients
	// MaxResizeStepBytes bounds the boundary movement per evaluation,
	// keeping resizing off the allocation critical path.
	MaxResizeStepBytes uint64

	// HWMover, when non-nil, provides Contiguitas-HW assisted migration
	// of unmovable pages (enables unmovable-region defragmentation and
	// unconditional shrinking).
	HWMover Mover

	// Victims is the number of remote TLBs a software page migration
	// must shoot down (cores - 1 on the simulated machine).
	Victims int

	// CompactBudgetPerTick bounds how many pages background/THP-path
	// compaction may migrate per tick, modelling kcompactd's rate
	// limiting and deferral (0 = unlimited). Explicit HugeTLB
	// reservations use direct compaction and ignore the budget.
	CompactBudgetPerTick uint64

	// Faults, when non-nil, injects deterministic failures at the
	// kernel's fault points (fault.Point*). The injector's clock is
	// bound to the kernel tick at boot.
	Faults *fault.Injector

	// MigrateRetryLimit is how many times a failed migration (hardware
	// or software) is retried before the kernel degrades (0 = default 3).
	MigrateRetryLimit int
	// MigrateBackoffCycles is the cycle price of the first retry
	// backoff; it doubles per attempt (0 = default 2000).
	MigrateBackoffCycles uint64

	// LivelockCycleDeadline arms the progress watchdog: when the
	// migration retry ladder or the compaction requeue loop burns this
	// many cycles without forward progress, the operation is abandoned
	// with ErrLivelock and escalated to the fallback/defer path
	// (0 = watchdog disabled).
	LivelockCycleDeadline uint64

	// Pressure, when non-nil, enables the memory-exhaustion survival
	// subsystem: the allocation ladder (throttled reclaim, emergency
	// region resize, OOM kill), the PSI-driven admission gate, and the
	// pressure counters/tracepoints. Nil keeps the legacy behaviour —
	// exhaustion fails with plain ErrNoMemory after the standard slow
	// path. Zero fields take pressure.DefaultConfig values.
	Pressure *pressure.Config

	// NoPlacementBias (ablation) disables §3.2's address bias: both
	// Contiguitas regions allocate LIFO instead of keeping long-lived
	// allocations away from the boundary.
	NoPlacementBias bool
	// NoFallbackStealing (ablation) disables Linux's inter-migratetype
	// stealing, isolating its contribution to scatter. Unmovable
	// allocations then fail once their own free lists empty.
	NoFallbackStealing bool

	Seed uint64
}

// DefaultConfig returns the paper's 64 GB production configuration.
func DefaultConfig(mode Mode) Config {
	const gb = 1 << 30
	return Config{
		MemBytes:              64 * gb,
		Mode:                  mode,
		InitialUnmovableBytes: 4 * gb,
		MinUnmovableBytes:     1 * gb,
		MaxUnmovableBytes:     32 * gb,
		WatermarkLow:          0.04,
		WatermarkHigh:         0.08,
		PSIHalfLifeTicks:      1000,
		ResizePeriodTicks:     100,
		ResizeThresholds:      resize.DefaultThresholds,
		ResizeCoeff:           resize.DefaultCoefficients,
		MaxResizeStepBytes:    512 << 20,
		Victims:               7,
		CompactBudgetPerTick:  256,
		Seed:                  1,
	}
}

// Page is the handle for one allocated block. The kernel may relocate the
// block (compaction, region resizing, Contiguitas-HW migration); PFN is
// updated in place so holders always observe the current frame, the way
// page tables would after a migration.
type Page struct {
	PFN uint64

	// cacheIdx is the allocation's index in the reclaimable FIFO, or -1.
	// int32 (with the byte-wide fields below) keeps the struct at 16
	// bytes; handles dominate the simulator's heap churn, so size
	// matters here.
	cacheIdx int32

	// Order is int8 (orders are 0..MaxOrder=18) for the same reason.
	Order  int8
	MT     mem.MigrateType
	Src    mem.Source
	Pinned bool
}

// Pages returns the number of 4 KB frames in the block.
func (p *Page) Pages() uint64 { return mem.OrderPages(int(p.Order)) }

// Counters aggregates the kernel's observable behaviour.
type Counters struct {
	AllocOK        uint64
	AllocFail      uint64
	DirectReclaim  uint64
	KswapdRuns     uint64
	ReclaimedPages uint64

	CompactRuns     uint64
	CompactSuccess  uint64
	CompactDeferred uint64

	SWMigrations      uint64
	SWMigrationCycles uint64
	HWMigrations      uint64
	HWMigrationCycles uint64
	PinMigrations     uint64

	// Robustness counters: how often migrations failed outright, how
	// many retry attempts ran (and what the backoff cost), how often a
	// failed hardware migration degraded to the software path, and how
	// often an unmovable page's migration was deferred for a later
	// retry instead.
	MigrationFailures uint64
	MigrationRetries  uint64
	BackoffCycles     uint64
	SWFallbacks       uint64
	MigrationDeferred uint64
	// CarveFails counts compaction/resize carves that failed and were
	// skipped; CompactRequeues counts failed compaction targets pushed
	// onto the retry queue; ResizeAborts counts resizer evaluations
	// aborted by an injected fault.
	CarveFails      uint64
	CompactRequeues uint64
	ResizeAborts    uint64
	// LivelockTrips counts progress-watchdog firings: retry loops that
	// burned their cycle deadline without forward progress and were
	// escalated to the fallback/defer path.
	LivelockTrips uint64

	Expands            uint64
	Shrinks            uint64
	ShrinkFails        uint64
	BoundaryMovedPages uint64

	// Pressure-ladder counters (all zero unless Config.Pressure is set,
	// except THPFallbacks which counts in every mode): throttle rounds
	// and their cycle price, admission-gate sheds, emergency
	// unmovable-region shrinks (and ones deferred by an in-flight
	// migration), OOM kills, and THP→4K fallbacks.
	AllocThrottled          uint64
	ThrottleStallCycles     uint64
	AllocShed               uint64
	EmergencyShrinks        uint64
	EmergencyShrinkPages    uint64
	EmergencyShrinkDeferred uint64
	OOMKills                uint64
	OOMKilledPages          uint64
	THPFallbacks            uint64
}

// Kernel is one simulated machine's memory manager.
type Kernel struct {
	cfg Config
	pm  *mem.PhysMem

	// ModeLinux: zone is the single allocator. ModeContiguitas: unmov
	// covers [0, boundary) and mov covers [boundary, NPages).
	zone     *mem.Buddy
	unmov    *mem.Buddy
	mov      *mem.Buddy
	boundary uint64

	psi  *psi.PerRegion
	tick uint64
	rng  *stats.RNG

	// live maps block-head PFN to its handle so relocations can update
	// holders transparently.
	live *liveTable

	// reclaimable is a FIFO of droppable (page-cache-like) allocations,
	// stored as head PFNs rather than handles so the slice is pointer-free
	// (no write barrier per append/detach, nothing for the GC to scan);
	// consumed or detached entries hold noCacheEntry. reclaimHead is the
	// consume cursor and reclaimablePages tracks the live total.
	reclaimable      []uint32
	reclaimHead      int
	reclaimablePages uint64

	migCost MigrationCostModel

	// compactUsed is this tick's consumed compaction budget;
	// directCompact marks an explicit HugeTLB reservation in progress,
	// which compacts without a budget. compactCursor remembers each
	// region's scanner position per requested order across calls, so
	// scanners resume where they left off instead of restarting (and a
	// 2 MB scan does not reset a 1 GB scan's progress).
	compactUsed   uint64
	directCompact bool
	compactCursor map[*mem.Buddy]*[mem.MaxOrder + 1]uint64
	compactDefer  map[*mem.Buddy]*compactDeferState
	// compactRetry queues compaction targets whose evacuation failed on
	// a skippable event (carve fault); they are retried before the
	// scanner looks for fresh candidates.
	compactRetry map[*mem.Buddy][]compactTarget

	// wdMigStall/wdCompactStall accumulate cycles burned without
	// forward progress in the migration retry ladder and the compaction
	// requeue loop; the progress watchdog compares them against
	// Config.LivelockCycleDeadline (see watchdog.go).
	wdMigStall     uint64
	wdCompactStall uint64

	// promoteSmall/promoteRest are scratch buffers reused across Promote
	// calls (khugepaged runs per mapping per tick).
	promoteSmall []*Page
	promoteRest  []*Page

	// pageArena batches handle allocation: Pages are carved from chunks
	// so the hot path pays one heap allocation per chunk instead of one
	// per Alloc. Handles are never recycled, so the identity-based
	// stale-handle detection keeps its exact semantics; a chunk is only
	// collected once every handle carved from it is unreachable.
	pageArena []Page
	// noMemErr memoizes the per-(order, migratetype) ErrNoMemory values:
	// overcommitted studies fail millions of allocations, and formatting
	// a fresh error per failure dominated their allocation profiles.
	noMemErr [mem.MaxOrder + 1][mem.NumMigrateTypes]error

	sink         EventSink
	inCacheAlloc bool

	// Pressure-survival machinery (nil/zero unless Config.Pressure is
	// set): pcfg is the normalized ladder config, gate the admission
	// state machine fed by gatePSI (a dedicated short-half-life movable
	// tracker), esc the run's ladder-escalation profile, and oomHistory
	// the kill log (bounded, oldest dropped). victims are the registered
	// OOM candidates in registration order — not serialized; owners
	// re-register on restore. migInFlight guards EmergencyShrink against
	// re-entry from a migration callback; it is always zero at the
	// EndTick quiesce boundary. shedErr memoizes the admission-refusal
	// error the way noMemErr memoizes allocation failures.
	pcfg        *pressure.Config
	gate        pressure.Gate
	gatePSI     *psi.Tracker
	esc         pressure.Escalation
	oomHistory  []pressure.Kill
	victims     []OOMVictim
	migInFlight int
	shedErr     error

	// Telemetry (see metrics.go): tp is the tracepoint ring — nil means
	// disabled, and the hot paths guard every Emit with tp.Enabled(), a
	// single predictable branch. reg is the lazily-built metric registry
	// binding the Counters fields; sampler snapshots it each EndTick. The
	// histograms record per-migration latencies once the registry exists.
	tp      *telemetry.Ring
	reg     *telemetry.Registry
	sampler *telemetry.Sampler
	histSW, histHW, histBackoff, histAllocStall *telemetry.Histogram

	Counters
}

// New boots a simulated machine.
func New(cfg Config) *Kernel {
	if cfg.MemBytes == 0 {
		panic("kernel: zero memory size")
	}
	pm := mem.NewPhysMem(cfg.MemBytes)
	k := &Kernel{
		cfg:     cfg,
		pm:      pm,
		psi:     psi.NewPerRegion(halfLifeOr(cfg.PSIHalfLifeTicks)),
		rng:     stats.NewRNG(cfg.Seed),
		live:    newLiveTable(pm.NPages),
		migCost: DefaultMigrationCostModel(),
	}
	switch cfg.Mode {
	case ModeLinux:
		k.zone = mem.NewBuddy(pm, 0, pm.NPages, mem.PolicyLIFO, !cfg.NoFallbackStealing, mem.MigrateMovable)
	case ModeContiguitas:
		b := mem.BytesToPages(cfg.InitialUnmovableBytes)
		b = alignPageblock(b)
		if b == 0 || b >= pm.NPages {
			panic("kernel: invalid initial unmovable size")
		}
		k.boundary = b
		unmovPolicy, movPolicy := mem.PolicyLowestPFN, mem.PolicyHighestPFN
		if cfg.NoPlacementBias {
			unmovPolicy, movPolicy = mem.PolicyLIFO, mem.PolicyLIFO
		}
		k.unmov = mem.NewBuddy(pm, 0, b, unmovPolicy, false, mem.MigrateUnmovable)
		k.mov = mem.NewBuddy(pm, b, pm.NPages, movPolicy, false, mem.MigrateMovable)
	default:
		panic("kernel: unknown mode")
	}
	if cfg.Faults != nil {
		cfg.Faults.SetClock(func() uint64 { return k.tick })
	}
	if cfg.Pressure != nil {
		k.pcfg = cfg.Pressure.Normalized()
		k.gatePSI = psi.NewTracker(float64(k.pcfg.GateHalfLifeTicks))
	}
	return k
}

// faults returns the configured injector (nil is a valid, inert value).
func (k *Kernel) faults() *fault.Injector { return k.cfg.Faults }

// retryLimit returns the migration retry budget.
func (k *Kernel) retryLimit() int {
	if k.cfg.MigrateRetryLimit > 0 {
		return k.cfg.MigrateRetryLimit
	}
	return 3
}

// backoffCycles prices the backoff before retry number attempt (0-based):
// the base doubles per attempt, modelling exponential backoff.
func (k *Kernel) backoffCycles(attempt int) uint64 {
	base := k.cfg.MigrateBackoffCycles
	if base == 0 {
		base = 2000
	}
	if attempt > 20 {
		attempt = 20
	}
	return base << uint(attempt)
}

func halfLifeOr(h float64) float64 {
	if h <= 0 {
		return 1000
	}
	return h
}

func alignPageblock(pfn uint64) uint64 {
	return pfn &^ (mem.PageblockPages - 1)
}

// PM exposes the frame table for scanners.
func (k *Kernel) PM() *mem.PhysMem { return k.pm }

// Mode returns the kernel's mode.
func (k *Kernel) Mode() Mode { return k.cfg.Mode }

// Config returns the boot configuration.
func (k *Kernel) Config() Config { return k.cfg }

// Tick returns the current virtual time in ticks.
func (k *Kernel) Tick() uint64 { return k.tick }

// Boundary returns the unmovable/movable boundary PFN (ModeContiguitas).
func (k *Kernel) Boundary() uint64 { return k.boundary }

// UnmovableRegionBytes returns the current unmovable-region size.
func (k *Kernel) UnmovableRegionBytes() uint64 {
	if k.cfg.Mode != ModeContiguitas {
		return 0
	}
	return k.boundary * mem.PageSize
}

// PSI exposes the per-region pressure trackers.
func (k *Kernel) PSI() *psi.PerRegion { return k.psi }

// FreePages returns total free frames across regions.
func (k *Kernel) FreePages() uint64 {
	if k.cfg.Mode == ModeLinux {
		return k.zone.FreePages()
	}
	return k.unmov.FreePages() + k.mov.FreePages()
}

// StealStats reports the fallback-stealing counters of the Linux zone.
type StealStats struct {
	Converting uint64 // steals that claimed whole pageblocks
	Polluting  uint64 // steals that mixed types within a pageblock
}

// ZoneSteals returns the zone's steal counters (zero in ModeContiguitas,
// which has no fallback stealing by construction).
func (k *Kernel) ZoneSteals() StealStats {
	if k.zone == nil {
		return StealStats{}
	}
	return StealStats{Converting: k.zone.StealsConverting, Polluting: k.zone.StealsPolluting}
}

// ReclaimablePages returns the frames held by live reclaimable
// (page-cache) allocations.
func (k *Kernel) ReclaimablePages() uint64 { return k.reclaimablePages }

// LiveAllocations returns the number of live allocation handles.
func (k *Kernel) LiveAllocations() int { return k.live.len() }

// buddyFor routes an allocation class to its region.
func (k *Kernel) buddyFor(mt mem.MigrateType) *mem.Buddy {
	if k.cfg.Mode == ModeLinux {
		return k.zone
	}
	if mt == mem.MigrateMovable {
		return k.mov
	}
	return k.unmov
}

func (k *Kernel) regionFor(mt mem.MigrateType) psi.Region {
	if mt == mem.MigrateMovable {
		return psi.RegionMovable
	}
	return psi.RegionUnmovable
}

// String summarises the machine.
func (k *Kernel) String() string {
	return fmt.Sprintf("kernel{%s mem=%dMB free=%d live=%d tick=%d}",
		k.cfg.Mode, k.cfg.MemBytes>>20, k.FreePages(), k.live.len(), k.tick)
}
