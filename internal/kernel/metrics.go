package kernel

import (
	"contiguitas/internal/psi"
	"contiguitas/internal/telemetry"
)

// Metrics returns the kernel's metric registry, building it on first
// use. This registration table is the single place counter names are
// defined: every Counters field is bound here by pointer, so the hot
// paths keep their plain `k.AllocOK++` increments while exporters,
// samplers, and trace.SnapshotRobustness all read through the registry.
// Counters carrying TagRobustness are the failure-handling set the
// chaos machinery snapshots.
func (k *Kernel) Metrics() *telemetry.Registry {
	if k.reg != nil {
		return k.reg
	}
	reg := telemetry.NewRegistry()
	c := &k.Counters
	rob := telemetry.TagRobustness

	reg.BindCounter("alloc_ok", &c.AllocOK)
	reg.BindCounter("alloc_fail", &c.AllocFail, rob)
	reg.BindCounter("direct_reclaim", &c.DirectReclaim)
	reg.BindCounter("kswapd_runs", &c.KswapdRuns)
	reg.BindCounter("reclaimed_pages", &c.ReclaimedPages)

	reg.BindCounter("compact_runs", &c.CompactRuns)
	reg.BindCounter("compact_success", &c.CompactSuccess)
	reg.BindCounter("compact_deferred", &c.CompactDeferred)

	reg.BindCounter("sw_migrations", &c.SWMigrations)
	reg.BindCounter("sw_migration_cycles", &c.SWMigrationCycles)
	reg.BindCounter("hw_migrations", &c.HWMigrations)
	reg.BindCounter("hw_migration_cycles", &c.HWMigrationCycles)
	reg.BindCounter("pin_migrations", &c.PinMigrations)

	reg.BindCounter("migration_failures", &c.MigrationFailures, rob)
	reg.BindCounter("migration_retries", &c.MigrationRetries, rob)
	reg.BindCounter("backoff_cycles", &c.BackoffCycles, rob)
	reg.BindCounter("sw_fallbacks", &c.SWFallbacks, rob)
	reg.BindCounter("migration_deferred", &c.MigrationDeferred, rob)
	reg.BindCounter("carve_fails", &c.CarveFails, rob)
	reg.BindCounter("compact_requeues", &c.CompactRequeues, rob)
	reg.BindCounter("resize_aborts", &c.ResizeAborts, rob)
	reg.BindCounter("livelock_trips", &c.LivelockTrips, rob)

	reg.BindCounter("expands", &c.Expands)
	reg.BindCounter("shrinks", &c.Shrinks)
	reg.BindCounter("shrink_fails", &c.ShrinkFails, rob)
	reg.BindCounter("boundary_moved_pages", &c.BoundaryMovedPages)

	reg.BindCounter("alloc_throttled", &c.AllocThrottled, rob)
	reg.BindCounter("throttle_stall_cycles", &c.ThrottleStallCycles, rob)
	reg.BindCounter("alloc_shed", &c.AllocShed, rob)
	reg.BindCounter("emergency_shrinks", &c.EmergencyShrinks, rob)
	reg.BindCounter("emergency_shrink_pages", &c.EmergencyShrinkPages)
	reg.BindCounter("emergency_shrink_deferred", &c.EmergencyShrinkDeferred, rob)
	reg.BindCounter("oom_kills", &c.OOMKills, rob)
	reg.BindCounter("oom_killed_pages", &c.OOMKilledPages)
	reg.BindCounter("thp_fallbacks", &c.THPFallbacks)

	// Fallback stealing lives in the Linux zone's buddy; ModeContiguitas
	// registers inert counters so the schema is mode-independent.
	if k.zone != nil {
		reg.BindCounter("steals_converting", &k.zone.StealsConverting)
		reg.BindCounter("steals_polluting", &k.zone.StealsPolluting)
	} else {
		reg.NewCounter("steals_converting")
		reg.NewCounter("steals_polluting")
	}

	reg.GaugeFunc("free_pages", func() float64 { return float64(k.FreePages()) })
	reg.GaugeFunc("boundary_pfn", func() float64 { return float64(k.boundary) })
	reg.GaugeFunc("psi_unmovable", func() float64 { return k.psi.Pressure(psi.RegionUnmovable) })
	reg.GaugeFunc("psi_movable", func() float64 { return k.psi.Pressure(psi.RegionMovable) })
	reg.GaugeFunc("reclaimable_pages", func() float64 { return float64(k.reclaimablePages) })
	reg.GaugeFunc("live_allocations", func() float64 { return float64(k.live.len()) })

	// The Fig. 13 latency breakdown: per-migration unavailable (software)
	// or busy (hardware) cycles, and retry-backoff prices.
	k.histSW = reg.NewHistogram("mig_sw_cycles")
	k.histHW = reg.NewHistogram("mig_hw_cycles")
	k.histBackoff = reg.NewHistogram("mig_backoff_cycles")
	// Per-allocation pressure-ladder stall, bounded by the throttle
	// ceiling; the sweep asserts its p99 against the configured cap.
	k.histAllocStall = reg.NewHistogram("alloc_stall_cycles")

	k.reg = reg
	return reg
}

// SetTracer attaches (nil detaches) a tracepoint ring. Attaching also
// builds the registry so the latency histograms start observing.
func (k *Kernel) SetTracer(tp *telemetry.Ring) {
	k.tp = tp
	if tp != nil {
		k.Metrics()
	}
}

// Tracer returns the attached tracepoint ring (nil when disabled).
func (k *Kernel) Tracer() *telemetry.Ring { return k.tp }

// AttachSampler creates, attaches, and returns a per-tick sampler over
// the kernel's registry; EndTick records one row per tick from then on.
func (k *Kernel) AttachSampler(capacity int) *telemetry.Sampler {
	k.sampler = telemetry.NewSampler(k.Metrics(), capacity)
	return k.sampler
}

// Sampler returns the attached sampler (nil when none).
func (k *Kernel) Sampler() *telemetry.Sampler { return k.sampler }
