package cli

import (
	"flag"
	"io"
	"os"
	"os/exec"
	"testing"
)

// The exit paths call os.Exit, so they are exercised by re-executing the
// test binary with CLI_TEST_MODE set and asserting on the child's code.
func TestMain(m *testing.M) {
	switch os.Getenv("CLI_TEST_MODE") {
	case "":
		os.Exit(m.Run())
	case "parse":
		fs := flag.NewFlagSet("fake", flag.ExitOnError)
		fs.SetOutput(io.Discard)
		fs.Int("n", 1, "a flag")
		Parse(fs, os.Args[1:])
		os.Exit(CodeOK)
	case "verify":
		Verifyf("invariant broken")
	case "runtime":
		Check(os.ErrNotExist)
	}
}

func rerun(t *testing.T, mode string, args ...string) int {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "CLI_TEST_MODE="+mode)
	err := cmd.Run()
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	t.Fatalf("re-exec failed: %v", err)
	return -1
}

func TestParseExitCodes(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want int
	}{
		{"clean parse", []string{"-n", "2"}, CodeOK},
		{"help is success", []string{"-h"}, CodeOK},
		{"unknown flag", []string{"-bogus"}, CodeUsage},
		{"bad flag value", []string{"-n", "owl"}, CodeUsage},
		{"positional argument", []string{"stray"}, CodeUsage},
	} {
		if got := rerun(t, "parse", tc.args...); got != tc.want {
			t.Errorf("%s: exit %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestVerifyAndRuntimeCodes(t *testing.T) {
	if got := rerun(t, "verify"); got != CodeVerify {
		t.Errorf("Verifyf exit %d, want %d", got, CodeVerify)
	}
	if got := rerun(t, "runtime"); got != CodeRuntime {
		t.Errorf("Check(err) exit %d, want %d", got, CodeRuntime)
	}
}

// Parse must also downgrade an ExitOnError FlagSet to ContinueOnError so
// the flag package cannot exit with its own hardwired code 2 — code 2 is
// reserved for verification failures.
func TestParseSucceedsInProcess(t *testing.T) {
	fs := flag.NewFlagSet("fake", flag.ExitOnError)
	fs.SetOutput(io.Discard)
	n := fs.Int("n", 1, "a flag")
	Parse(fs, []string{"-n", "7"})
	if *n != 7 {
		t.Fatalf("parsed n = %d, want 7", *n)
	}
}
