// Package cli unifies process exit semantics across the repository's
// commands (contigsim, contigchaos, contigtrace, fleetscan, migbench).
// Every command distinguishes the same four outcomes:
//
//	0 (CodeOK)      success — including -h/-help
//	1 (CodeUsage)   bad invocation: unknown flag, bad flag value,
//	                unexpected positional argument
//	2 (CodeVerify)  a verification or invariant failure: tampered
//	                snapshot, diverged replay hash, failed soak gate —
//	                the command ran, and what it checked is wrong
//	3 (CodeRuntime) an operational error: unreadable file, failed
//	                write, profiler setup
//
// CI and scripts key off these codes: 2 is the "the property we gate on
// does not hold" signal, distinct from both misuse and I/O flakes.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"os"
)

// Exit codes shared by every command.
const (
	CodeOK      = 0
	CodeUsage   = 1
	CodeVerify  = 2
	CodeRuntime = 3
)

// Parse parses args (typically os.Args[1:]) with fs, normalising the
// flag package's exit behaviour: -h/-help exits CodeOK, any parse error
// exits CodeUsage (the flag package has already printed the error and
// usage text). On success, any leftover positional arguments are
// rejected as usage errors — no command in this repository takes them.
func Parse(fs *flag.FlagSet, args []string) {
	fs.Init(fs.Name(), flag.ContinueOnError)
	err := fs.Parse(args)
	switch {
	case errors.Is(err, flag.ErrHelp):
		os.Exit(CodeOK)
	case err != nil:
		os.Exit(CodeUsage)
	}
	if fs.NArg() > 0 {
		Usagef("%s: unexpected argument %q", fs.Name(), fs.Arg(0))
	}
}

// Usagef reports a bad invocation and exits CodeUsage.
func Usagef(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(CodeUsage)
}

// Verifyf reports a verification/invariant failure and exits CodeVerify.
func Verifyf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(CodeVerify)
}

// Runtimef reports an operational error and exits CodeRuntime.
func Runtimef(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(CodeRuntime)
}

// Check exits CodeRuntime if err is non-nil; no-op otherwise.
func Check(err error) {
	if err != nil {
		Runtimef("%v", err)
	}
}
