// Package iommu models the I/O side of the platform (§3.3 Platform
// Overview): an IOMMU with its own IOTLB performing page walks for
// devices, a cache-coherent NIC with a private device TLB that caches
// translations from the IOMMU, and the memory-based invalidation queue
// through which cores synchronise device TLBs.
package iommu

import (
	"contiguitas/internal/hw"
	"contiguitas/internal/hw/tlb"
)

// IOMMU performs translations for devices.
type IOMMU struct {
	p     hw.Params
	iotlb *tlb.TLB

	// invQueue is the in-memory invalidation queue cores submit to.
	invQueue []uint64

	Walks         uint64
	Invalidations uint64
}

// New builds an IOMMU with a 64-entry IOTLB.
func New(p hw.Params) *IOMMU {
	return &IOMMU{p: p, iotlb: tlb.NewTLB(64, 4)}
}

// Translate resolves a device virtual page through the IOTLB, walking
// the page table on a miss. Returns the PPN and latency.
func (u *IOMMU) Translate(vpn uint64, pageTable func(uint64) uint64) (uint64, uint64) {
	if ppn, ok := u.iotlb.Lookup(vpn); ok {
		return ppn, 4
	}
	u.Walks++
	ppn := pageTable(vpn)
	u.iotlb.Insert(vpn, ppn)
	return ppn, 4 + 64
}

// QueueInvalidation submits an invalidation request to the queue (any
// core may do this; no IPIs are involved — §3.3).
func (u *IOMMU) QueueInvalidation(vpn uint64) {
	u.invQueue = append(u.invQueue, vpn)
}

// QueueDepth returns pending invalidations.
func (u *IOMMU) QueueDepth() int { return len(u.invQueue) }

// Device is a cache-coherent device (the NIC) with a private TLB that
// caches translations from the IOMMU.
type Device struct {
	u    *IOMMU
	dtlb *tlb.TLB

	Accesses uint64
}

// NewDevice attaches a device to the IOMMU with a 32-entry device TLB.
func NewDevice(u *IOMMU) *Device {
	return &Device{u: u, dtlb: tlb.NewTLB(32, 4)}
}

// Translate resolves through the device TLB, falling back to the IOMMU.
func (d *Device) Translate(vpn uint64, pageTable func(uint64) uint64) (uint64, uint64) {
	d.Accesses++
	if ppn, ok := d.dtlb.Lookup(vpn); ok {
		return ppn, 2
	}
	ppn, lat := d.u.Translate(vpn, pageTable)
	d.dtlb.Insert(vpn, ppn)
	return ppn, 2 + lat
}

// ProcessQueue drains the invalidation queue against the IOTLB and the
// given devices, returning the cycles consumed. Each entry invalidates
// both the IOTLB and every device TLB.
func (u *IOMMU) ProcessQueue(devices []*Device) uint64 {
	var cycles uint64
	for _, vpn := range u.invQueue {
		u.iotlb.Invalidate(vpn)
		cycles += 8
		for _, d := range devices {
			d.dtlb.Invalidate(vpn)
			cycles += 4
		}
		u.Invalidations++
	}
	u.invQueue = u.invQueue[:0]
	return cycles
}
