package iommu

import (
	"testing"

	"contiguitas/internal/hw"
)

func pt(vpn uint64) uint64 { return vpn + 7 }

func TestIOMMUTranslateAndCache(t *testing.T) {
	u := New(hw.DefaultParams())
	ppn, lat1 := u.Translate(4, pt)
	if ppn != 11 {
		t.Fatalf("ppn = %d", ppn)
	}
	if u.Walks != 1 {
		t.Fatal("first translate must walk")
	}
	_, lat2 := u.Translate(4, pt)
	if u.Walks != 1 || lat2 >= lat1 {
		t.Fatal("second translate must hit the IOTLB")
	}
}

func TestDeviceTLBCachesFromIOMMU(t *testing.T) {
	u := New(hw.DefaultParams())
	d := NewDevice(u)
	d.Translate(9, pt)
	if u.Walks != 1 {
		t.Fatal("device miss must reach the IOMMU")
	}
	_, lat := d.Translate(9, pt)
	if lat != 2 {
		t.Fatalf("device TLB hit latency = %d", lat)
	}
	if d.Accesses != 2 {
		t.Fatalf("accesses = %d", d.Accesses)
	}
}

func TestInvalidationQueue(t *testing.T) {
	u := New(hw.DefaultParams())
	d := NewDevice(u)
	d.Translate(3, pt)
	u.QueueInvalidation(3)
	if u.QueueDepth() != 1 {
		t.Fatal("queue must hold the request")
	}
	cycles := u.ProcessQueue([]*Device{d})
	if cycles == 0 || u.QueueDepth() != 0 {
		t.Fatal("queue must drain with nonzero cost")
	}
	// Both the IOTLB and the device TLB must have dropped the entry.
	walks := u.Walks
	d.Translate(3, pt)
	if u.Walks != walks+1 {
		t.Fatal("translation must walk again after invalidation")
	}
}
