package cache

import (
	"testing"

	"contiguitas/internal/hw"
	"contiguitas/internal/hw/dram"
	"contiguitas/internal/stats"
)

func newH() *Hierarchy {
	p := hw.DefaultParams()
	return New(p, dram.New(dram.DefaultConfig()))
}

func TestReadAfterWriteSameCore(t *testing.T) {
	h := newH()
	h.Access(0, 0x1000, true, 42, 0)
	v, _ := h.Access(0, 0x1000, false, 0, 10)
	if v != 42 {
		t.Fatalf("read %d, want 42", v)
	}
}

func TestCoherenceAcrossCores(t *testing.T) {
	h := newH()
	h.Access(0, 0x2000, true, 7, 0)
	v, _ := h.Access(1, 0x2000, false, 0, 100)
	if v != 7 {
		t.Fatalf("core 1 read %d, want 7", v)
	}
	// Core 1 writes; core 0 must observe it.
	h.Access(1, 0x2000, true, 9, 200)
	v, _ = h.Access(0, 0x2000, false, 0, 300)
	if v != 9 {
		t.Fatalf("core 0 read %d, want 9", v)
	}
}

func TestHitLatencyOrdering(t *testing.T) {
	h := newH()
	// Cold miss is slowest; L1 hit fastest.
	_, missDone := h.Access(0, 0x3000, false, 0, 0)
	_, hitDone := h.Access(0, 0x3000, false, 0, missDone)
	missLat := missDone - 0
	hitLat := hitDone - missDone
	if hitLat >= missLat {
		t.Fatalf("hit latency %d >= miss latency %d", hitLat, missLat)
	}
	if hitLat != h.P.L1Latency {
		t.Fatalf("L1 hit latency = %d, want %d", hitLat, h.P.L1Latency)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	h := newH()
	h.Access(0, 0x4000, false, 0, 0) // core 0 caches
	h.Access(1, 0x4000, false, 0, 0) // core 1 caches
	inv := h.Invalidations
	h.Access(0, 0x4000, true, 5, 100) // upgrade: invalidate core 1
	if h.Invalidations <= inv {
		t.Fatal("upgrade must invalidate the other sharer")
	}
	v, _ := h.Access(1, 0x4000, false, 0, 200)
	if v != 5 {
		t.Fatalf("core 1 read %d after invalidation, want 5", v)
	}
}

func TestEvictionWritebackPreservesData(t *testing.T) {
	h := newH()
	// Write a line, then stream enough conflicting lines through the
	// same private set to evict it; the value must survive via the LLC.
	h.Access(0, 0x10000, true, 77, 0)
	l2Sets := uint64(h.P.L2SizeKB) * 1024 / hw.LineBytes / uint64(h.P.L2Ways)
	for i := 1; i <= h.P.L2Ways+2; i++ {
		conflict := 0x10000 + uint64(i)*l2Sets*hw.LineBytes
		h.Access(0, conflict, false, 0, uint64(i)*100)
	}
	v, _ := h.Access(0, 0x10000, false, 0, 1e6)
	if v != 77 {
		t.Fatalf("read %d after eviction, want 77", v)
	}
}

func TestLLCEvictionBackInvalidates(t *testing.T) {
	h := newH()
	h.Access(0, 0x20000, true, 123, 0)
	// Force LLC pressure on the same slice set: stream conflicting
	// lines mapping to the same slice and set. Brute force: many lines.
	rng := stats.NewRNG(3)
	for i := 0; i < 300000; i++ {
		pa := (rng.Uint64() % (1 << 32)) &^ (hw.LineBytes - 1)
		h.Access(i%h.P.Cores, pa, false, 0, uint64(i))
	}
	if err := h.CheckInclusion(); err != nil {
		t.Fatal(err)
	}
	v, _ := h.Access(0, 0x20000, false, 0, 1e9)
	if v != 123 {
		t.Fatalf("value lost across LLC eviction: %d", v)
	}
}

func TestCollectAndInvalidate(t *testing.T) {
	h := newH()
	h.Access(2, 0x5000, true, 55, 0)
	line := hw.LineAddr(0x5000)
	val, wasM, _ := h.CollectAndInvalidate(line)
	if !wasM || val != 55 {
		t.Fatalf("collect = (%d, %v), want (55, true)", val, wasM)
	}
	if h.HasPrivate(line) {
		t.Fatal("private copy must be gone")
	}
	// Value lives in the LLC now.
	v, _ := h.ReadLLC(line)
	if v != 55 {
		t.Fatalf("LLC value = %d", v)
	}
}

func TestWriteReadDropLLC(t *testing.T) {
	h := newH()
	line := uint64(0x999)
	h.WriteLLC(line, 31)
	if v, _ := h.ReadLLC(line); v != 31 {
		t.Fatalf("ReadLLC = %d", v)
	}
	h.DropLLC(line)
	// Dirty data must have been preserved in memory.
	if v, _ := h.ReadLLC(line); v != 31 {
		t.Fatalf("value lost after DropLLC: %d", v)
	}
}

func TestNoncacheableBypass(t *testing.T) {
	h := newH()
	r := &fakeRedirector{nc: map[uint64]bool{hw.LineAddr(0x6000): true}}
	h.SetRedirector(r)
	h.Access(0, 0x6000, true, 11, 0)
	if h.HasPrivate(hw.LineAddr(0x6000)) {
		t.Fatal("noncacheable line must not enter private caches")
	}
	v, _ := h.Access(1, 0x6000, false, 0, 50)
	if v != 11 {
		t.Fatalf("noncacheable read = %d", v)
	}
	if h.NoncacheableAccesses != 2 {
		t.Fatalf("noncacheable accesses = %d", h.NoncacheableAccesses)
	}
}

func TestRedirectorTranslation(t *testing.T) {
	h := newH()
	src := hw.LineAddr(0x7000)
	dst := hw.LineAddr(0x8000)
	h.WriteLLC(dst, 99)
	h.SetRedirector(&fakeRedirector{redirect: map[uint64]uint64{src: dst}})
	v, _ := h.Access(0, 0x7000, false, 0, 0)
	if v != 99 {
		t.Fatalf("redirected read = %d, want 99", v)
	}
}

type fakeRedirector struct {
	nc       map[uint64]bool
	redirect map[uint64]uint64
}

func (f *fakeRedirector) Translate(line uint64) (uint64, uint64) {
	if to, ok := f.redirect[line]; ok {
		return to, 1
	}
	return line, 0
}
func (f *fakeRedirector) Noncacheable(line uint64) bool { return f.nc[line] }

// TestRandomisedCoherence drives random reads/writes from all cores and
// checks every read against a reference memory model — the linearised
// value of the last write to each line.
func TestRandomisedCoherence(t *testing.T) {
	h := newH()
	rng := stats.NewRNG(17)
	ref := map[uint64]uint64{}
	now := uint64(0)
	for i := 0; i < 50000; i++ {
		core := rng.Intn(h.P.Cores)
		// Small working set so lines bounce between cores.
		pa := (uint64(rng.Intn(2048)) * hw.LineBytes)
		line := hw.LineAddr(pa)
		if rng.Bool(0.4) {
			val := rng.Uint64()
			_, done := h.Access(core, pa, true, val, now)
			ref[line] = val
			now = done
		} else {
			v, done := h.Access(core, pa, false, 0, now)
			if v != ref[line] {
				t.Fatalf("step %d: core %d read %d from line %d, want %d",
					i, core, v, line, ref[line])
			}
			now = done
		}
	}
	if err := h.CheckInclusion(); err != nil {
		t.Fatal(err)
	}
}

func TestSliceDistribution(t *testing.T) {
	h := newH()
	counts := make([]int, h.NumSlices())
	for line := uint64(0); line < 80000; line++ {
		counts[h.SliceOf(line)]++
	}
	for s, c := range counts {
		frac := float64(c) / 80000
		if frac < 0.08 || frac > 0.18 {
			t.Fatalf("slice %d holds %.3f of lines; hash is skewed", s, frac)
		}
	}
}

func TestStatsCount(t *testing.T) {
	h := newH()
	h.Access(0, 0, false, 0, 0)
	h.Access(0, 0, true, 1, 10)
	if h.Loads != 1 || h.Stores != 1 {
		t.Fatalf("loads=%d stores=%d", h.Loads, h.Stores)
	}
}
