// Package cache models the memory hierarchy of the paper's simulated
// platform (Table 1): per-core private L1/L2 caches kept coherent
// through an inclusive, sliced last-level cache with a directory, slices
// connected by a ring, DRAM behind it. Lines carry data (one 64-bit
// value per 64-byte line is enough to prove migration correctness), and
// every access returns both the value and its completion cycle, with
// per-slice occupancy modelling contention.
//
// The hierarchy exposes the exact hooks Contiguitas-HW (§3.3) needs:
//   - a Redirector consulted on the LLC path, so migration mappings can
//     redirect traffic line-by-line according to copy progress,
//   - noncacheable marking, bypassing private caches for pages under
//     migration in the noncacheable design point, and
//   - CollectAndInvalidate / ReadLLC / WriteLLC, the primitives the
//     migration engine's BusRdX-and-copy sequence is built from.
package cache

import (
	"fmt"

	"contiguitas/internal/hw"
	"contiguitas/internal/hw/dram"
)

// State is a private-cache line's coherence state (MESI without E→M
// subtleties: Exclusive upgrades silently).
type State uint8

const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// Redirector lets Contiguitas-HW interpose on the LLC path.
type Redirector interface {
	// Translate returns the line address whose data must serve an
	// access to line, given migration progress. It may have side
	// effects: the cacheable design point invalidates opposite-mapping
	// private copies here to preserve the single-mapping invariant.
	// The returned extra cycles account for that work.
	Translate(line uint64) (canonical uint64, extraCycles uint64)
	// Noncacheable reports whether the line must bypass private caches
	// (the noncacheable design point for pages under migration).
	Noncacheable(line uint64) bool
}

// privEntry is one private (L2) line.
type privEntry struct {
	line  uint64
	state State
	data  uint64
	lru   uint64
	valid bool
}

// tagEntry is one L1 tag (data lives at L2).
type tagEntry struct {
	line  uint64
	lru   uint64
	valid bool
}

// private is one core's L1+L2 cache pair. L1 is a tag-only subset used
// for hit-latency modelling; coherence state and data live in L2.
type private struct {
	l1Sets  [][]tagEntry
	l2Sets  [][]privEntry
	l1Mask  uint64
	l2Mask  uint64
	lruTick uint64
}

func newPrivate(p hw.Params) *private {
	l1Lines := uint64(p.L1SizeKB) * 1024 / hw.LineBytes
	l2Lines := uint64(p.L2SizeKB) * 1024 / hw.LineBytes
	l1Sets := l1Lines / uint64(p.L1Ways)
	l2Sets := l2Lines / uint64(p.L2Ways)
	pr := &private{
		l1Sets: make([][]tagEntry, l1Sets),
		l2Sets: make([][]privEntry, l2Sets),
		l1Mask: l1Sets - 1,
		l2Mask: l2Sets - 1,
	}
	for i := range pr.l1Sets {
		pr.l1Sets[i] = make([]tagEntry, p.L1Ways)
	}
	for i := range pr.l2Sets {
		pr.l2Sets[i] = make([]privEntry, p.L2Ways)
	}
	return pr
}

func (pr *private) tick() uint64 { pr.lruTick++; return pr.lruTick }

func (pr *private) l1Lookup(line uint64) *tagEntry {
	set := pr.l1Sets[line&pr.l1Mask]
	for i := range set {
		if set[i].valid && set[i].line == line {
			return &set[i]
		}
	}
	return nil
}

func (pr *private) l2Lookup(line uint64) *privEntry {
	set := pr.l2Sets[line&pr.l2Mask]
	for i := range set {
		if set[i].valid && set[i].line == line {
			return &set[i]
		}
	}
	return nil
}

// l1Fill inserts the line into L1 tags (LRU victim drops silently).
func (pr *private) l1Fill(line uint64) {
	set := pr.l1Sets[line&pr.l1Mask]
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = tagEntry{line: line, lru: pr.tick(), valid: true}
}

func (pr *private) l1Drop(line uint64) {
	if e := pr.l1Lookup(line); e != nil {
		e.valid = false
	}
}

// llcEntry is one LLC line with directory state.
type llcEntry struct {
	line    uint64
	data    uint64
	dirty   bool
	sharers uint64 // bitmask of cores holding the line
	ownerM  int8   // core holding it Modified, or -1
	lru     uint64
	valid   bool
}

// slice is one LLC slice.
type slice struct {
	sets      [][]llcEntry
	mask      uint64
	lruTick   uint64
	busyUntil uint64
}

func newSlice(p hw.Params) *slice {
	lines := uint64(p.L3SliceKB) * 1024 / hw.LineBytes
	sets := lines / uint64(p.L3Ways)
	s := &slice{sets: make([][]llcEntry, sets), mask: sets - 1}
	for i := range s.sets {
		s.sets[i] = make([]llcEntry, p.L3Ways)
	}
	return s
}

func (s *slice) tick() uint64 { s.lruTick++; return s.lruTick }

func (s *slice) lookup(line uint64) *llcEntry {
	set := s.sets[(line/8)&s.mask] // slice-local set index
	for i := range set {
		if set[i].valid && set[i].line == line {
			return &set[i]
		}
	}
	return nil
}

// Stats aggregates hierarchy behaviour.
type Stats struct {
	Loads, Stores        uint64
	L1Hits, L2Hits       uint64
	LLCHits, LLCMiss     uint64
	Writebacks           uint64
	Invalidations        uint64
	NoncacheableAccesses uint64
}

// Hierarchy is the full cache system for one machine.
type Hierarchy struct {
	P      hw.Params
	priv   []*private
	slices []*slice
	dram   *dram.DRAM
	// mem is the backing-store value of every line ever written back or
	// never cached (zero default).
	mem map[uint64]uint64

	red Redirector

	Stats
}

// New builds the hierarchy from Table 1 parameters.
func New(p hw.Params, d *dram.DRAM) *Hierarchy {
	h := &Hierarchy{P: p, dram: d, mem: make(map[uint64]uint64)}
	for i := 0; i < p.Cores; i++ {
		h.priv = append(h.priv, newPrivate(p))
	}
	for i := 0; i < p.Cores; i++ { // one slice per core
		h.slices = append(h.slices, newSlice(p))
	}
	return h
}

// SetRedirector attaches the Contiguitas-HW interposer (nil detaches).
func (h *Hierarchy) SetRedirector(r Redirector) { h.red = r }

// SliceOf is the slice-selection hash f: a XOR fold of the line address,
// the kind of simple gate-level hash real processors use (§3.3).
func (h *Hierarchy) SliceOf(line uint64) int {
	x := line ^ (line >> 7) ^ (line >> 13)
	return int(x % uint64(len(h.slices)))
}

// ringHops returns the hop count between a core and a slice on the ring.
func (h *Hierarchy) ringHops(core, sl int) uint64 {
	n := len(h.slices)
	d := core - sl
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return uint64(d)
}

// Access performs one load or store by a core at physical address pa,
// starting at cycle now. It returns the observed value (for loads; for
// stores, the stored value) and the completion cycle.
func (h *Hierarchy) Access(core int, pa uint64, isWrite bool, val uint64, now uint64) (uint64, uint64) {
	line := hw.LineAddr(pa)
	if isWrite {
		h.Stores++
	} else {
		h.Loads++
	}

	if h.red != nil && h.red.Noncacheable(line) {
		h.NoncacheableAccesses++
		return h.noncacheableAccess(core, line, isWrite, val, now)
	}

	pr := h.priv[core]
	if e := pr.l2Lookup(line); e != nil {
		lat := h.P.L2Latency
		if l1e := pr.l1Lookup(line); l1e != nil {
			lat = h.P.L1Latency
			l1e.lru = pr.tick()
			h.L1Hits++
		} else {
			pr.l1Fill(line)
			h.L2Hits++
		}
		e.lru = pr.tick()
		if !isWrite {
			return e.data, now + lat
		}
		if e.state == Modified || e.state == Exclusive {
			e.state = Modified
			e.data = val
			h.setOwnerM(line, core)
			return val, now + lat
		}
		// Shared: upgrade through the LLC (invalidate other sharers).
		done := h.llcUpgrade(core, line, now+lat)
		e.state = Modified
		e.data = val
		h.setOwnerM(line, core)
		return val, done
	}

	// Private miss: fetch through the LLC.
	value, done := h.llcFetch(core, line, isWrite, val, now+h.P.L2Latency)
	st := Shared
	if isWrite {
		st = Modified
		value = val
	}
	h.privFill(core, line, st, value)
	return value, done
}

// privFill inserts a line into a core's L2 (and L1 tags), handling the
// eviction writeback and directory update.
func (h *Hierarchy) privFill(core int, line uint64, st State, data uint64) {
	pr := h.priv[core]
	set := pr.l2Sets[line&pr.l2Mask]
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if v := &set[victim]; v.valid {
		h.evictPrivate(core, v)
	}
	set[victim] = privEntry{line: line, state: st, data: data, lru: pr.tick(), valid: true}
	pr.l1Fill(line)
	// Directory update.
	e := h.llcLineEntry(line, true)
	e.sharers |= 1 << uint(core)
	if st == Modified {
		e.ownerM = int8(core)
	}
}

// evictPrivate removes a private line, writing Modified data back to the
// LLC and updating the directory.
func (h *Hierarchy) evictPrivate(core int, v *privEntry) {
	line := v.line
	h.priv[core].l1Drop(line)
	e := h.llcLineEntry(line, false)
	if e != nil {
		e.sharers &^= 1 << uint(core)
		if v.state == Modified {
			e.data = v.data
			e.dirty = true
			h.Writebacks++
		}
		if e.ownerM == int8(core) {
			e.ownerM = -1
		}
	} else if v.state == Modified {
		// Not in LLC (should not happen with inclusion, but be safe).
		h.mem[line] = v.data
		h.Writebacks++
	}
	v.valid = false
}

// llcLineEntry finds (or allocates) the LLC entry for a line.
func (h *Hierarchy) llcLineEntry(line uint64, alloc bool) *llcEntry {
	sl := h.slices[h.SliceOf(line)]
	if e := sl.lookup(line); e != nil {
		return e
	}
	if !alloc {
		return nil
	}
	return h.llcAlloc(sl, line, h.mem[line])
}

// llcAlloc inserts a line into a slice, evicting the LRU way (with
// back-invalidation of private copies to preserve inclusion).
func (h *Hierarchy) llcAlloc(sl *slice, line uint64, data uint64) *llcEntry {
	set := sl.sets[(line/8)&sl.mask]
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if v := &set[victim]; v.valid {
		h.llcEvict(v)
	}
	set[victim] = llcEntry{line: line, data: data, ownerM: -1, lru: sl.tick(), valid: true}
	return &set[victim]
}

// llcEvict removes an LLC entry: private copies are collected (modified
// data wins) and the line written to memory if dirty.
func (h *Hierarchy) llcEvict(v *llcEntry) {
	data, dirty := v.data, v.dirty
	for core := 0; core < h.P.Cores; core++ {
		if v.sharers&(1<<uint(core)) == 0 {
			continue
		}
		pr := h.priv[core]
		if e := pr.l2Lookup(v.line); e != nil {
			if e.state == Modified {
				data = e.data
				dirty = true
			}
			e.valid = false
			pr.l1Drop(v.line)
			h.Invalidations++
		}
	}
	if dirty {
		h.mem[v.line] = data
		h.Writebacks++
	}
	v.valid = false
}

// translate applies the redirector, if any.
func (h *Hierarchy) translate(line uint64) (uint64, uint64) {
	if h.red == nil {
		return line, 0
	}
	return h.red.Translate(line)
}

// llcFetch services a private miss: the LLC (or DRAM) supplies the data;
// coherence actions run against other cores. Returns value and done.
func (h *Hierarchy) llcFetch(core int, line uint64, forWrite bool, wval uint64, now uint64) (uint64, uint64) {
	canonical, extra := h.translate(line)
	if canonical != line {
		// The private fill will be tagged under the requested address;
		// ensure its directory entry exists before taking pointers into
		// the slice arrays (allocation may evict).
		h.llcLineEntry(line, true)
	}
	sl := h.slices[h.SliceOf(canonical)]
	start := now + extra + h.ringHops(core, h.SliceOf(canonical))*h.P.RingHopCycles
	if sl.busyUntil > start {
		start = sl.busyUntil
	}
	done := start + h.P.L3Latency
	sl.busyUntil = start + 4 // slice occupancy per request

	e := sl.lookup(canonical)
	if e == nil {
		h.LLCMiss++
		e = h.llcAlloc(sl, canonical, 0)
		e.data = h.mem[canonical]
		done = h.dram.Access(canonical<<hw.LineShift, done)
	} else {
		h.LLCHits++
	}

	// Coherence runs against the canonical entry AND, under active
	// redirection, the requested line's own entry: private copies made
	// through this same mapping are tagged (and directory-listed) under
	// the requested address, not the canonical one.
	val := e.data
	sweep := []struct {
		addr  uint64
		entry *llcEntry
	}{{canonical, e}}
	if canonical != line {
		// Non-allocating: if the entry was evicted while the canonical
		// entry was allocated, its private copies were back-invalidated
		// and there is nothing to sweep.
		if le := h.llcLineEntry(line, false); le != nil {
			sweep = append(sweep, struct {
				addr  uint64
				entry *llcEntry
			}{line, le})
		}
	}
	for _, s := range sweep {
		se := s.entry
		if se.ownerM >= 0 && int(se.ownerM) != core {
			owner := int(se.ownerM)
			if oe := h.priv[owner].l2Lookup(s.addr); oe != nil && oe.state == Modified {
				val = oe.data
				e.data = oe.data
				e.dirty = true
				if forWrite {
					oe.valid = false
					h.priv[owner].l1Drop(s.addr)
					se.sharers &^= 1 << uint(owner)
					h.Invalidations++
				} else {
					oe.state = Shared
				}
				done += h.P.L2Latency // owner probe
			}
			se.ownerM = -1
		}
		if forWrite {
			for c := 0; c < h.P.Cores; c++ {
				if c == core || se.sharers&(1<<uint(c)) == 0 {
					continue
				}
				if oe := h.priv[c].l2Lookup(s.addr); oe != nil {
					oe.valid = false
					h.priv[c].l1Drop(s.addr)
					h.Invalidations++
				}
				se.sharers &^= 1 << uint(c)
				done += h.P.RingHopCycles
			}
		}
	}
	if forWrite {
		e.data = wval
		e.dirty = true
		val = wval
	}
	e.lru = sl.tick()
	return val, done
}

// llcUpgrade handles a Shared→Modified upgrade: other sharers of the
// canonical line are invalidated.
func (h *Hierarchy) llcUpgrade(core int, line uint64, now uint64) uint64 {
	canonical, extra := h.translate(line)
	slIdx := h.SliceOf(canonical)
	sl := h.slices[slIdx]
	start := now + extra + h.ringHops(core, slIdx)*h.P.RingHopCycles
	if sl.busyUntil > start {
		start = sl.busyUntil
	}
	done := start + h.P.L3Latency
	sl.busyUntil = start + 4
	if e := sl.lookup(canonical); e != nil {
		for c := 0; c < h.P.Cores; c++ {
			if c == core || e.sharers&(1<<uint(c)) == 0 {
				continue
			}
			if oe := h.priv[c].l2Lookup(canonical); oe != nil {
				oe.valid = false
				h.priv[c].l1Drop(canonical)
				h.Invalidations++
			}
			e.sharers &^= 1 << uint(c)
			done += h.P.RingHopCycles
		}
		e.ownerM = int8(core)
	}
	// The requesting core may hold the line under a redirected address;
	// invalidate sharers of that entry too.
	if canonical != line {
		if e := h.llcLineEntry(line, false); e != nil {
			for c := 0; c < h.P.Cores; c++ {
				if c == core || e.sharers&(1<<uint(c)) == 0 {
					continue
				}
				if oe := h.priv[c].l2Lookup(line); oe != nil {
					oe.valid = false
					h.priv[c].l1Drop(line)
					h.Invalidations++
				}
				e.sharers &^= 1 << uint(c)
			}
		}
	}
	return done
}

// setOwnerM records core as the modified owner of the line's canonical
// entry (called on silent E→M upgrades and store hits).
func (h *Hierarchy) setOwnerM(line uint64, core int) {
	canonical, _ := h.translate(line)
	if e := h.llcLineEntry(canonical, false); e != nil {
		e.ownerM = int8(core)
	}
	if canonical != line {
		if e := h.llcLineEntry(line, false); e != nil {
			e.ownerM = int8(core)
		}
	}
}

// noncacheableAccess bypasses private caches: data lives at the
// canonical LLC location (filled from memory on miss).
func (h *Hierarchy) noncacheableAccess(core int, line uint64, isWrite bool, val uint64, now uint64) (uint64, uint64) {
	canonical, extra := h.translate(line)
	slIdx := h.SliceOf(canonical)
	sl := h.slices[slIdx]
	start := now + extra + h.P.L2Latency + h.ringHops(core, slIdx)*h.P.RingHopCycles
	if sl.busyUntil > start {
		start = sl.busyUntil
	}
	done := start + h.P.L3Latency
	sl.busyUntil = start + 4

	e := sl.lookup(canonical)
	if e == nil {
		h.LLCMiss++
		e = h.llcAlloc(sl, canonical, h.mem[canonical])
		done = h.dram.Access(canonical<<hw.LineShift, done)
	} else {
		h.LLCHits++
	}
	e.lru = sl.tick()
	if isWrite {
		e.data = val
		e.dirty = true
		return val, done
	}
	return e.data, done
}

// CollectAndInvalidate implements the private-cache half of a BusRdX:
// every private copy of the line is invalidated and the newest value
// returned (modified private copy wins over the LLC, which wins over
// memory). The LLC entry itself is left in place, updated with the
// newest data.
func (h *Hierarchy) CollectAndInvalidate(line uint64) (val uint64, wasModified bool, cycles uint64) {
	e := h.llcLineEntry(line, false)
	if e != nil {
		val = e.data
	} else {
		val = h.mem[line]
	}
	cycles = h.P.L3Latency
	if e != nil {
		for c := 0; c < h.P.Cores; c++ {
			if e.sharers&(1<<uint(c)) == 0 {
				continue
			}
			pr := h.priv[c]
			if pe := pr.l2Lookup(line); pe != nil {
				if pe.state == Modified {
					val = pe.data
					wasModified = true
				}
				pe.valid = false
				pr.l1Drop(line)
				h.Invalidations++
				cycles += h.P.RingHopCycles
			}
			e.sharers &^= 1 << uint(c)
		}
		e.ownerM = -1
		e.data = val
		if wasModified {
			e.dirty = true
		}
	}
	return val, wasModified, cycles
}

// HasModifiedPrivate reports whether some core holds the line Modified.
func (h *Hierarchy) HasModifiedPrivate(line uint64) bool {
	for c := 0; c < h.P.Cores; c++ {
		if e := h.priv[c].l2Lookup(line); e != nil && e.state == Modified {
			return true
		}
	}
	return false
}

// HasPrivate reports whether any core caches the line.
func (h *Hierarchy) HasPrivate(line uint64) bool {
	for c := 0; c < h.P.Cores; c++ {
		if h.priv[c].l2Lookup(line) != nil {
			return true
		}
	}
	return false
}

// ReadLLC returns the line's current value at the LLC level (or memory)
// without coherence side effects.
func (h *Hierarchy) ReadLLC(line uint64) (uint64, uint64) {
	if e := h.llcLineEntry(line, false); e != nil {
		return e.data, h.P.L3Latency
	}
	return h.mem[line], h.P.L3Latency + 100
}

// WriteLLC writes a value into the line's LLC entry (allocating it),
// marking it dirty. Used by the migration copy engine.
func (h *Hierarchy) WriteLLC(line uint64, val uint64) uint64 {
	sl := h.slices[h.SliceOf(line)]
	e := sl.lookup(line)
	if e == nil {
		e = h.llcAlloc(sl, line, val)
	}
	e.data = val
	e.dirty = true
	e.lru = sl.tick()
	return h.P.L3Latency
}

// DropLLC invalidates the line at the LLC (collecting private copies
// first) without writing it back — used to retire source-page lines once
// a migration completes.
func (h *Hierarchy) DropLLC(line uint64) {
	if e := h.llcLineEntry(line, false); e != nil {
		h.llcEvict(e)
		// llcEvict wrote dirty data to memory; that is correct for
		// retirement (the frame may be reused).
	}
}

// AddSliceBusy charges copy-engine occupancy to a slice, modelling the
// bandwidth the migration engine steals from demand requests.
func (h *Hierarchy) AddSliceBusy(sliceIdx int, from, dur uint64) {
	sl := h.slices[sliceIdx]
	if sl.busyUntil < from {
		sl.busyUntil = from
	}
	sl.busyUntil += dur
}

// NumSlices returns the slice count.
func (h *Hierarchy) NumSlices() int { return len(h.slices) }

// CheckInclusion verifies that every valid private line has an LLC
// directory entry listing the core — the invariant coherence relies on.
func (h *Hierarchy) CheckInclusion() error {
	for c, pr := range h.priv {
		for _, set := range pr.l2Sets {
			for i := range set {
				if !set[i].valid {
					continue
				}
				e := h.llcLineEntry(set[i].line, false)
				if e == nil {
					return fmt.Errorf("core %d caches line %d absent from LLC", c, set[i].line)
				}
				if e.sharers&(1<<uint(c)) == 0 {
					return fmt.Errorf("core %d caches line %d without directory bit", c, set[i].line)
				}
			}
		}
	}
	return nil
}
