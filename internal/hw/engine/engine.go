// Package engine is a minimal discrete-event simulation core: a cycle
// clock and an ordered event queue. Every hardware component in the
// simulator schedules work as closures at absolute cycles; ties are
// broken by insertion order so runs are deterministic.
package engine

import "container/heap"

type event struct {
	cycle uint64
	seq   uint64
	fn    func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].cycle != q[j].cycle {
		return q[i].cycle < q[j].cycle
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Engine is the simulation clock and scheduler.
type Engine struct {
	q    eventQueue
	now  uint64
	seq  uint64
	halt bool
}

// New returns an engine at cycle 0.
func New() *Engine { return &Engine{} }

// Now returns the current cycle.
func (e *Engine) Now() uint64 { return e.now }

// At schedules fn at the given absolute cycle (>= Now).
func (e *Engine) At(cycle uint64, fn func()) {
	if cycle < e.now {
		cycle = e.now
	}
	heap.Push(&e.q, event{cycle: cycle, seq: e.seq, fn: fn})
	e.seq++
}

// After schedules fn delay cycles from now.
func (e *Engine) After(delay uint64, fn func()) { e.At(e.now+delay, fn) }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.q) }

// Run executes events until the queue drains or Halt is called.
func (e *Engine) Run() {
	e.halt = false
	for len(e.q) > 0 && !e.halt {
		ev := heap.Pop(&e.q).(event)
		e.now = ev.cycle
		ev.fn()
	}
}

// RunUntil executes events with cycle <= limit; the clock ends at limit
// if the queue drains earlier.
func (e *Engine) RunUntil(limit uint64) {
	e.halt = false
	for len(e.q) > 0 && !e.halt {
		if e.q[0].cycle > limit {
			break
		}
		ev := heap.Pop(&e.q).(event)
		e.now = ev.cycle
		ev.fn()
	}
	if e.now < limit {
		e.now = limit
	}
}

// Halt stops Run/RunUntil after the current event.
func (e *Engine) Halt() { e.halt = true }
