package engine

import "testing"

func TestEventOrdering(t *testing.T) {
	e := New()
	var order []int
	e.At(10, func() { order = append(order, 1) })
	e.At(5, func() { order = append(order, 0) })
	e.At(10, func() { order = append(order, 2) }) // tie: insertion order
	e.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 10 {
		t.Fatalf("now = %d", e.Now())
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := New()
	var at uint64
	e.At(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.Run()
	if at != 150 {
		t.Fatalf("after fired at %d, want 150", at)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	e := New()
	fired := false
	e.At(100, func() {
		e.At(10, func() { fired = true }) // in the past: clamp to now
	})
	e.Run()
	if !fired || e.Now() != 100 {
		t.Fatalf("fired=%v now=%d", fired, e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	count := 0
	for i := uint64(1); i <= 10; i++ {
		e.At(i*10, func() { count++ })
	}
	e.RunUntil(50)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 50 {
		t.Fatalf("now = %d, want 50", e.Now())
	}
	if e.Pending() != 5 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.Run()
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

func TestHalt(t *testing.T) {
	e := New()
	count := 0
	e.At(1, func() { count++; e.Halt() })
	e.At(2, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("halt did not stop the run: count = %d", count)
	}
	e.Run()
	if count != 2 {
		t.Fatal("second run must resume")
	}
}

func TestRunUntilAdvancesClockWhenDrained(t *testing.T) {
	e := New()
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Fatalf("now = %d", e.Now())
	}
}
