// Package hw holds the architectural parameters (the paper's Table 1)
// and address helpers shared by the hardware-simulation subpackages:
// the event engine, DRAM timing, the cache hierarchy with its sliced
// LLC, TLBs, the IOMMU, and the Contiguitas-HW extensions.
package hw

// Address geometry.
const (
	LineBytes    = 64
	LineShift    = 6
	PageBytes    = 4096
	PageShift    = 12
	LinesPerPage = PageBytes / LineBytes // 64
)

// LineAddr returns the cache-line index of a physical address.
func LineAddr(pa uint64) uint64 { return pa >> LineShift }

// LineOfPage returns the line address of line i within the page at ppn.
func LineOfPage(ppn uint64, i int) uint64 {
	return ppn<<(PageShift-LineShift) + uint64(i)
}

// PageOfLine returns the PPN containing a line address.
func PageOfLine(line uint64) uint64 { return line >> (PageShift - LineShift) }

// LineIndexInPage returns the line's offset (0..63) within its page.
func LineIndexInPage(line uint64) int { return int(line & (LinesPerPage - 1)) }

// Params is Table 1 of the paper.
type Params struct {
	Cores    int
	ClockGHz float64
	ROBSize  int

	L1SizeKB  int
	L1Ways    int
	L1Latency uint64 // round trip, cycles

	L1TLBEntries int
	L1TLBWays    int
	L1TLBLatency uint64

	L2TLBEntries int
	L2TLBWays    int
	L2TLBLatency uint64

	PWCLevels  int
	PWCEntries int
	PWCLatency uint64

	L2SizeKB  int
	L2Ways    int
	L2Latency uint64

	L3SliceKB int
	L3Ways    int
	L3Latency uint64

	ContigEntries int
	ContigLatency uint64

	MemGB     int
	DRAMBanks int

	// INVLPGCycles is the measured cost of one INVLPG instruction —
	// dominated by the full pipeline flush (§4: ~250 cycles).
	INVLPGCycles uint64
	// IPIDeliveryCycles is interrupt delivery latency to a remote core.
	IPIDeliveryCycles uint64
	// IPISendCycles is the initiator's per-IPI issue cost.
	IPISendCycles uint64
	// AckCycles is the acknowledgement wire+handling cost.
	AckCycles uint64
	// RingHopCycles is the per-hop latency of the LLC ring.
	RingHopCycles uint64
}

// DefaultParams returns Table 1 verbatim.
func DefaultParams() Params {
	return Params{
		Cores:    8,
		ClockGHz: 2.0,
		ROBSize:  200,

		L1SizeKB:  32,
		L1Ways:    8,
		L1Latency: 2,

		L1TLBEntries: 64,
		L1TLBWays:    4,
		L1TLBLatency: 2,

		L2TLBEntries: 1536,
		L2TLBWays:    16,
		L2TLBLatency: 12,

		PWCLevels:  3,
		PWCEntries: 32,
		PWCLatency: 2,

		L2SizeKB:  256,
		L2Ways:    8,
		L2Latency: 14,

		L3SliceKB: 2048,
		L3Ways:    16,
		L3Latency: 40,

		ContigEntries: 16,
		ContigLatency: 1,

		MemGB:     64,
		DRAMBanks: 16,

		INVLPGCycles:      250,
		IPIDeliveryCycles: 350,
		IPISendCycles:     80,
		AckCycles:         120,
		RingHopCycles:     2,
	}
}
