package platform

import (
	"testing"

	"contiguitas/internal/hw/contighw"
	"contiguitas/internal/kernel"
	"contiguitas/internal/mem"
)

// TestSimVsAnalyticMover validates the analytic mover the kernel uses by
// default against the full event-driven Contiguitas-HW simulation: the
// per-page copy-engine work must agree within a factor of two.
func TestSimVsAnalyticMover(t *testing.T) {
	analytic := kernel.NewAnalyticMover()
	sim := NewSimMover(contighw.Noncacheable)

	a, aerr := analytic.Migrate(100, 200, mem.Order4K)
	s, serr := sim.Migrate(100, 200, mem.Order4K)
	if aerr != nil || serr != nil {
		t.Fatalf("mover errors: analytic=%v sim=%v", aerr, serr)
	}
	if s == 0 || a == 0 {
		t.Fatalf("degenerate costs: analytic=%d sim=%d", a, s)
	}
	ratio := float64(s) / float64(a)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("analytic (%d) and simulated (%d) movers disagree by %.2fx", a, s, ratio)
	}
}

// TestSimMoverDrivesKernel plugs the simulation-backed mover into a real
// kernel and exercises the HW-assisted shrink path end to end.
func TestSimMoverDrivesKernel(t *testing.T) {
	cfg := kernel.DefaultConfig(kernel.ModeContiguitas)
	cfg.MemBytes = 128 << 20
	cfg.InitialUnmovableBytes = 32 << 20
	cfg.MinUnmovableBytes = 4 << 20
	cfg.MaxUnmovableBytes = 64 << 20
	sim := NewSimMover(contighw.Noncacheable)
	cfg.HWMover = sim
	k := kernel.New(cfg)

	// Pin a page near the top of the unmovable region, then shrink the
	// region past it: the simulated hardware must carry the migration.
	var pages []*kernel.Page
	for i := 0; i < 2000; i++ {
		p, err := k.Alloc(mem.Order4K, mem.MigrateUnmovable, mem.SrcNetworking)
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, p)
	}
	var top *kernel.Page
	for _, p := range pages {
		if top == nil || p.PFN > top.PFN {
			top = p
		}
	}
	for _, p := range pages {
		if p != top {
			k.Free(p)
		}
	}
	if err := k.Pin(top); err != nil {
		t.Fatal(err)
	}
	before := k.Boundary()
	moved := k.ShrinkUnmovable(before)
	if moved == 0 {
		t.Fatal("HW-assisted shrink failed with the simulated mover")
	}
	if sim.Migrated == 0 {
		t.Fatal("the simulated hardware never ran")
	}
	if top.PFN >= k.Boundary() {
		t.Fatal("pinned page not relocated below the new boundary")
	}
}
