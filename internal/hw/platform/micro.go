package platform

import "contiguitas/internal/hw"

// Fig13Point is one x-position of the paper's Figure 13.
type Fig13Point struct {
	Victims     int
	LinuxReal   uint64 // calibrated real-hardware measurement
	LinuxSim    uint64 // our event simulation
	Contiguitas uint64 // constant: one local invalidation
}

// LinuxRealCycles returns the calibrated real-hardware cost of a 4 KB
// software page migration with the given number of victim TLBs: the
// paper measures ~2.5 K cycles at one victim growing linearly to ~8 K at
// eight, and validates its simulator within -6 % to +10 % of these.
func LinuxRealCycles(victims int) uint64 {
	if victims < 1 {
		victims = 1
	}
	return 2450 + 745*uint64(victims-1)
}

// Fig13Series reproduces Figure 13: page-unavailable cycles during one
// 4 KB migration as victim TLBs scale from 1 to maxVictims. Each
// Linux-Sim point runs the full Figure 1 procedure on a fresh machine;
// the Contiguitas series is the constant cost of a local invalidation,
// since its shootdowns need no IPIs or synchronous acknowledgements.
func Fig13Series(maxVictims int) []Fig13Point {
	var out []Fig13Point
	for v := 1; v <= maxVictims; v++ {
		p := hw.DefaultParams()
		// v remote victims need v+1 cores (the paper's x axis counts
		// remote cores receiving the shootdown).
		if p.Cores < v+1 {
			p.Cores = v + 1
		}
		m := NewMachine(p, nil)
		m.MapPage(10, 100)
		// Warm the victim TLBs so the invalidations are real.
		for c := 0; c <= v; c++ {
			m.Access(c, 10<<hw.PageShift, false, 0, 0)
		}
		victims := make([]int, v)
		for i := range victims {
			victims[i] = i + 1
		}
		rep := m.SoftwareMigrate(0, 10, 100, 200, victims)
		out = append(out, Fig13Point{
			Victims:     v,
			LinuxReal:   LinuxRealCycles(v),
			LinuxSim:    rep.UnavailableCycles,
			Contiguitas: p.INVLPGCycles,
		})
	}
	return out
}
