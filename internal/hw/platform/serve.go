package platform

import (
	"contiguitas/internal/hw"
	"contiguitas/internal/stats"
)

// ServeConfig parameterises the §5.3 performance experiment: a
// request-serving application (the paper uses NGINX and memcached) runs
// at peak throughput on every core while Contiguitas-HW migrates its
// unmovable networking buffers underneath it.
type ServeConfig struct {
	// AccessesPerRequest is the memory work per request.
	AccessesPerRequest int
	// AppPages is the application's hot dataset (Zipf-accessed).
	AppPages int
	// BufPages is the pool of unmovable networking-buffer pages; each
	// request touches one buffer (DMA'd by the NIC, read by the app).
	BufPages int
	// BufAccessesPerRequest of the per-request accesses go to the
	// request's buffer page.
	BufAccessesPerRequest int
	// WriteFrac is the store fraction.
	WriteFrac float64
	// ZipfS is the app-page popularity skew.
	ZipfS float64
	// DurationCycles is the measurement window.
	DurationCycles uint64
	// MigrationsPerSec moves unmovable buffer pages at this rate
	// (paper: Regular = 100/s, Very High = 1000/s); 0 disables.
	MigrationsPerSec float64
	// ClockHz converts the rate to cycles (Table 1: 2 GHz).
	ClockHz float64
	// DeviceWritesPerRequest models NIC DMA into the buffer before the
	// request is processed.
	DeviceWritesPerRequest int
	Seed                   uint64
}

// DefaultServeConfig returns a memcached-like setup at peak throughput.
func DefaultServeConfig() ServeConfig {
	return ServeConfig{
		AccessesPerRequest:     24,
		AppPages:               4096,
		BufPages:               256,
		BufAccessesPerRequest:  6,
		WriteFrac:              0.3,
		ZipfS:                  0.9,
		DurationCycles:         4_000_000,
		ClockHz:                2e9,
		DeviceWritesPerRequest: 2,
		Seed:                   1,
	}
}

// ServeResult reports one run.
type ServeResult struct {
	Requests   uint64
	Cycles     uint64
	Migrations uint64
	// RequestsPerMCycle is the throughput metric compared across runs.
	RequestsPerMCycle float64
	// P50/P99LatencyCycles are request-latency percentiles — the
	// paper's production metric is requests per second under a latency
	// SLA, so tail latency must stay flat under migration load.
	P50LatencyCycles float64
	P99LatencyCycles float64
}

// ServeBenchmark runs the request-serving workload on the machine. App
// pages occupy VPNs [0, AppPages); buffer pages [AppPages,
// AppPages+BufPages). Buffer pages map to a migrating physical pool.
func ServeBenchmark(m *Machine, cfg ServeConfig) ServeResult {
	rng := stats.NewRNG(cfg.Seed)
	zipf := stats.NewZipf(rng, cfg.AppPages, cfg.ZipfS)

	appBase := uint64(0)
	bufBase := uint64(cfg.AppPages)
	// Physical placement: identity for app pages; buffers start in a
	// dedicated region; fresh destination frames come from a bump
	// allocator above everything else.
	nextFree := bufBase + uint64(cfg.BufPages)
	for i := 0; i < cfg.BufPages; i++ {
		m.MapPage(bufBase+uint64(i), bufBase+uint64(i))
	}

	var res ServeResult
	var reqSeq uint64
	var latencies []float64

	// Per-core serving loop.
	var serve func(core int)
	serve = func(core int) {
		now := m.Eng.Now()
		start := now
		if now >= cfg.DurationCycles {
			return
		}
		reqSeq++
		buf := bufBase + uint64(rng.Intn(cfg.BufPages))
		// NIC DMA writes the request payload into the buffer.
		for i := 0; i < cfg.DeviceWritesPerRequest; i++ {
			va := buf<<hw.PageShift + uint64(rng.Intn(hw.LinesPerPage))*hw.LineBytes
			_, now = m.DeviceAccess(va, true, reqSeq, now)
		}
		for i := 0; i < cfg.AccessesPerRequest; i++ {
			var vpn uint64
			if i < cfg.BufAccessesPerRequest {
				vpn = buf
			} else {
				vpn = appBase + uint64(zipf.Next())
			}
			va := vpn<<hw.PageShift + uint64(rng.Intn(hw.LinesPerPage))*hw.LineBytes
			isWrite := rng.Bool(cfg.WriteFrac)
			_, now = m.Access(core, va, isWrite, reqSeq, now)
		}
		res.Requests++
		latencies = append(latencies, float64(now-start))
		m.Eng.At(now, func() { serve(core) })
	}
	for c := 0; c < m.P.Cores; c++ {
		core := c
		m.Eng.At(uint64(core), func() { serve(core) })
	}

	// Migration driver: move a random buffer page to a fresh frame at
	// the configured rate.
	if cfg.MigrationsPerSec > 0 && m.Contig != nil {
		interval := uint64(cfg.ClockHz / cfg.MigrationsPerSec)
		var migrate func()
		migrate = func() {
			if m.Eng.Now() >= cfg.DurationCycles {
				return
			}
			vpn := bufBase + uint64(rng.Intn(cfg.BufPages))
			src := m.PageTableLookup(vpn)
			dst := nextFree
			nextFree++
			err := m.StartHWMigration(vpn, src, dst, HWMigrateOptions{}, nil)
			if err == nil {
				res.Migrations++
			}
			m.Eng.After(interval, migrate)
		}
		m.Eng.After(interval, migrate)
	}

	m.Eng.RunUntil(cfg.DurationCycles)
	res.Cycles = cfg.DurationCycles
	res.RequestsPerMCycle = float64(res.Requests) / (float64(cfg.DurationCycles) / 1e6)
	res.P50LatencyCycles = stats.Percentile(latencies, 50)
	res.P99LatencyCycles = stats.Percentile(latencies, 99)
	return res
}
