package platform

import (
	"contiguitas/internal/hw"
	"contiguitas/internal/hw/contighw"
	"contiguitas/internal/mem"
)

// SimMover implements the kernel's Mover contract (hardware-assisted
// migration of unmovable pages) by running each migration through the
// full event-driven Contiguitas-HW simulation rather than the analytic
// cost model. It exists to validate the analytic mover the kernel uses
// by default: the two must agree on per-page copy-engine work to within
// a small factor, which TestSimVsAnalyticMover asserts.
type SimMover struct {
	mode contighw.Mode
	// Busy tracks total copy-engine cycles, mirroring the analytic
	// mover's accounting.
	Busy     uint64
	Migrated uint64
}

// NewSimMover returns a simulation-backed mover.
func NewSimMover(mode contighw.Mode) *SimMover { return &SimMover{mode: mode} }

// Migrate implements kernel.Mover: it simulates the migration of each
// 4 KB page of the block on a fresh machine and returns the copy-engine
// busy cycles.
func (sm *SimMover) Migrate(src, dst uint64, order int) uint64 {
	var total uint64
	pages := mem.OrderPages(order)
	for i := uint64(0); i < pages; i++ {
		md := sm.mode
		m := NewMachine(hw.DefaultParams(), &md)
		before := m.Contig.CopyBusyCycles
		vpn := uint64(10)
		m.MapPage(vpn, src+i)
		if _, err := m.HWMigrate(vpn, src+i, dst+i, HWMigrateOptions{}); err != nil {
			panic(err)
		}
		total += m.Contig.CopyBusyCycles - before
	}
	sm.Busy += total
	sm.Migrated += pages
	return total
}
