package platform

import (
	"fmt"

	"contiguitas/internal/hw"
	"contiguitas/internal/hw/contighw"
	"contiguitas/internal/mem"
)

// SimMover implements the kernel's Mover contract (hardware-assisted
// migration of unmovable pages) by running each migration through the
// full event-driven Contiguitas-HW simulation rather than the analytic
// cost model. It exists to validate the analytic mover the kernel uses
// by default: the two must agree on per-page copy-engine work to within
// a small factor, which TestSimVsAnalyticMover asserts.
type SimMover struct {
	mode contighw.Mode
	// Busy tracks total copy-engine cycles, mirroring the analytic
	// mover's accounting.
	Busy     uint64
	Migrated uint64
}

// NewSimMover returns a simulation-backed mover.
func NewSimMover(mode contighw.Mode) *SimMover { return &SimMover{mode: mode} }

// Migrate implements kernel.Mover: it simulates the migration of each
// 4 KB page of the block on a fresh machine and returns the copy-engine
// busy cycles. A simulation failure is propagated, not fatal: the kernel
// treats it like a real engine abort and retries or degrades. Cycles
// spent on pages copied before the abort still count as busy work.
func (sm *SimMover) Migrate(src, dst uint64, order int) (uint64, error) {
	var total uint64
	pages := mem.OrderPages(order)
	for i := uint64(0); i < pages; i++ {
		md := sm.mode
		m := NewMachine(hw.DefaultParams(), &md)
		before := m.Contig.CopyBusyCycles
		vpn := uint64(10)
		m.MapPage(vpn, src+i)
		if _, err := m.HWMigrate(vpn, src+i, dst+i, HWMigrateOptions{}); err != nil {
			sm.Busy += total
			return total, fmt.Errorf("platform: migrating page %d/%d of block %d: %w", i+1, pages, src, err)
		}
		total += m.Contig.CopyBusyCycles - before
	}
	sm.Busy += total
	sm.Migrated += pages
	return total, nil
}
