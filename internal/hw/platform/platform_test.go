package platform

import (
	"math"
	"testing"

	"contiguitas/internal/hw"
	"contiguitas/internal/hw/contighw"
)

func TestAccessThroughTLBAndCaches(t *testing.T) {
	m := NewMachine(hw.DefaultParams(), nil)
	m.MapPage(5, 50)
	va := uint64(5)<<hw.PageShift + 128
	m.Access(0, va, true, 88, 0)
	v, _ := m.Access(0, va, false, 0, 100)
	if v != 88 {
		t.Fatalf("read %d, want 88", v)
	}
	if m.TLBs[0].Walks != 1 {
		t.Fatalf("walks = %d, want 1 (second access hits TLB)", m.TLBs[0].Walks)
	}
}

func TestSoftwareMigrateBlocksAndScales(t *testing.T) {
	var prev uint64
	for v := 1; v <= 8; v++ {
		m := NewMachine(hw.DefaultParams(), nil)
		m.MapPage(10, 100)
		victims := make([]int, v)
		for i := range victims {
			victims[i] = i % (m.P.Cores - 1)
		}
		rep := m.SoftwareMigrate(0, 10, 100, 200, victims)
		if rep.UnavailableCycles <= prev {
			t.Fatalf("%d victims: %d cycles, not above %d", v, rep.UnavailableCycles, prev)
		}
		prev = rep.UnavailableCycles
		// The mapping must point at the destination afterwards.
		if m.PageTableLookup(10) != 200 {
			t.Fatal("PTE not updated")
		}
	}
}

func TestFig13SeriesShape(t *testing.T) {
	pts := Fig13Series(8)
	if len(pts) != 8 {
		t.Fatalf("points = %d", len(pts))
	}
	for i, p := range pts {
		// Sim within the paper's validation band of real: -6%..+10%.
		dev := (float64(p.LinuxSim) - float64(p.LinuxReal)) / float64(p.LinuxReal)
		if dev < -0.06 || dev > 0.10 {
			t.Fatalf("victims=%d: sim %d vs real %d (%.1f%% off)", p.Victims, p.LinuxSim, p.LinuxReal, dev*100)
		}
		// Contiguitas constant and far below Linux.
		if p.Contiguitas != pts[0].Contiguitas {
			t.Fatal("Contiguitas series must be constant")
		}
		if p.Contiguitas*4 > p.LinuxSim {
			t.Fatalf("victims=%d: Contiguitas %d not clearly below Linux %d", p.Victims, p.Contiguitas, p.LinuxSim)
		}
		if i > 0 && p.LinuxSim <= pts[i-1].LinuxSim {
			t.Fatal("Linux series must grow with victims")
		}
	}
	// Paper anchors: ~2.5K cycles at 1 victim, ~8K at 8.
	if pts[0].LinuxSim < 2000 || pts[0].LinuxSim > 3500 {
		t.Fatalf("1-victim sim = %d", pts[0].LinuxSim)
	}
	if pts[7].LinuxSim < 7000 || pts[7].LinuxSim > 9000 {
		t.Fatalf("8-victim sim = %d", pts[7].LinuxSim)
	}
}

func TestHWMigratePreservesDataAndMapping(t *testing.T) {
	for _, mode := range []contighw.Mode{contighw.Noncacheable, contighw.Cacheable} {
		md := mode
		m := NewMachine(hw.DefaultParams(), &md)
		m.MapPage(10, 100)
		// Populate the page through the normal access path.
		for i := 0; i < hw.LinesPerPage; i++ {
			va := uint64(10)<<hw.PageShift + uint64(i)*hw.LineBytes
			m.Access(i%m.P.Cores, va, true, 7000+uint64(i), 0)
		}
		rep, err := m.HWMigrate(10, 100, 200, HWMigrateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.UnavailableCycles != m.P.INVLPGCycles {
			t.Fatalf("unavailable = %d, want one local invalidation", rep.UnavailableCycles)
		}
		if m.PageTableLookup(10) != 200 {
			t.Fatal("PTE must point at destination")
		}
		for i := 0; i < hw.LinesPerPage; i++ {
			va := uint64(10)<<hw.PageShift + uint64(i)*hw.LineBytes
			v, _ := m.Access((i+3)%m.P.Cores, va, false, 0, m.Eng.Now())
			if v != 7000+uint64(i) {
				t.Fatalf("mode=%v line %d = %d after migration", mode, i, v)
			}
		}
	}
}

func TestHWMigrateRequiresHardware(t *testing.T) {
	m := NewMachine(hw.DefaultParams(), nil)
	if _, err := m.HWMigrate(1, 2, 3, HWMigrateOptions{}); err == nil {
		t.Fatal("baseline machine must refuse HW migration")
	}
}

func TestDeviceAccessCoherentWithCores(t *testing.T) {
	md := contighw.Noncacheable
	m := NewMachine(hw.DefaultParams(), &md)
	m.MapPage(3, 30)
	va := uint64(3) << hw.PageShift
	// NIC writes (DMA), core reads.
	m.DeviceAccess(va, true, 456, 0)
	v, _ := m.Access(0, va, false, 0, 100)
	if v != 456 {
		t.Fatalf("core read %d after DMA, want 456", v)
	}
	// Core writes, NIC reads.
	m.Access(1, va, true, 789, 200)
	v, _ = m.DeviceAccess(va, false, 0, 300)
	if v != 789 {
		t.Fatalf("NIC read %d, want 789", v)
	}
}

func TestDeviceTrafficDuringMigration(t *testing.T) {
	// The defining capability: the NIC keeps writing to a pinned buffer
	// page while Contiguitas-HW migrates it; nothing is lost.
	for _, mode := range []contighw.Mode{contighw.Noncacheable, contighw.Cacheable} {
		md := mode
		m := NewMachine(hw.DefaultParams(), &md)
		m.MapPage(20, 500)
		ref := make(map[int]uint64)
		for i := 0; i < hw.LinesPerPage; i++ {
			va := uint64(20)<<hw.PageShift + uint64(i)*hw.LineBytes
			m.DeviceAccess(va, true, uint64(i), 0)
			ref[i] = uint64(i)
		}
		done := false
		if err := m.StartHWMigration(20, 500, 600, HWMigrateOptions{}, func() { done = true }); err != nil {
			t.Fatal(err)
		}
		// Interleave NIC writes with the copy.
		step := 0
		for !done && step < 10000 {
			m.Eng.RunUntil(m.Eng.Now() + 200)
			if m.Eng.Pending() == 0 {
				break
			}
			i := step % hw.LinesPerPage
			va := uint64(20)<<hw.PageShift + uint64(i)*hw.LineBytes
			m.DeviceAccess(va, true, 100000+uint64(step), m.Eng.Now())
			ref[i] = 100000 + uint64(step)
			step++
		}
		m.Eng.Run()
		for i := 0; i < hw.LinesPerPage; i++ {
			va := uint64(20)<<hw.PageShift + uint64(i)*hw.LineBytes
			v, _ := m.Access(0, va, false, 0, m.Eng.Now())
			if v != ref[i] {
				t.Fatalf("mode=%v line %d = %d, want %d", mode, i, v, ref[i])
			}
		}
	}
}

func TestServeBenchmarkBaseline(t *testing.T) {
	md := contighw.Noncacheable
	m := NewMachine(hw.DefaultParams(), &md)
	cfg := DefaultServeConfig()
	cfg.DurationCycles = 1_000_000
	res := ServeBenchmark(m, cfg)
	if res.Requests == 0 {
		t.Fatal("no requests served")
	}
	if res.Migrations != 0 {
		t.Fatal("baseline must not migrate")
	}
}

// TestSec53MigrationOverhead reproduces the §5.3 result: at the Regular
// rate (100/s) migration overhead is negligible; even at Very High
// (1000/s) the noncacheable design loses well under 1% and the
// cacheable design is unaffected.
func TestSec53MigrationOverhead(t *testing.T) {
	run := func(mode contighw.Mode, rate float64) ServeResult {
		md := mode
		m := NewMachine(hw.DefaultParams(), &md)
		cfg := DefaultServeConfig()
		cfg.DurationCycles = 3_000_000
		cfg.MigrationsPerSec = rate
		return ServeBenchmark(m, cfg)
	}
	for _, mode := range []contighw.Mode{contighw.Noncacheable, contighw.Cacheable} {
		base := run(mode, 0)
		regular := run(mode, 100)
		veryHigh := run(mode, 1000)
		lossReg := 1 - regular.RequestsPerMCycle/base.RequestsPerMCycle
		lossHigh := 1 - veryHigh.RequestsPerMCycle/base.RequestsPerMCycle
		if math.Abs(lossReg) > 0.01 {
			t.Fatalf("%v regular-rate loss = %.3f%%, want ~0", mode, lossReg*100)
		}
		if lossHigh > 0.01 {
			t.Fatalf("%v very-high-rate loss = %.3f%%, want < 1%%", mode, lossHigh*100)
		}
	}
}

func TestServeLatencyPercentiles(t *testing.T) {
	md := contighw.Cacheable
	m := NewMachine(hw.DefaultParams(), &md)
	cfg := DefaultServeConfig()
	cfg.DurationCycles = 1_000_000
	res := ServeBenchmark(m, cfg)
	if res.P50LatencyCycles <= 0 || res.P99LatencyCycles < res.P50LatencyCycles {
		t.Fatalf("latency percentiles: p50=%v p99=%v", res.P50LatencyCycles, res.P99LatencyCycles)
	}
}

// TestSec53TailLatencyFlat is the SLA half of §5.3: migrations at the
// Very High rate must not inflate P99 request latency materially.
func TestSec53TailLatencyFlat(t *testing.T) {
	run := func(rate float64) ServeResult {
		md := contighw.Cacheable
		m := NewMachine(hw.DefaultParams(), &md)
		cfg := DefaultServeConfig()
		cfg.DurationCycles = 2_000_000
		cfg.MigrationsPerSec = rate
		return ServeBenchmark(m, cfg)
	}
	base := run(0)
	high := run(1000)
	if high.P99LatencyCycles > base.P99LatencyCycles*1.10 {
		t.Fatalf("P99 inflated by migrations: %v -> %v",
			base.P99LatencyCycles, high.P99LatencyCycles)
	}
}
